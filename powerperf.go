// Package powerperf is the public API of this reproduction of
// "Looking Back on the Language and Hardware Revolutions: Measured Power,
// Performance, and Scaling" (Esmaeilzadeh, Cao, Yang, Blackburn, McKinley;
// ASPLOS 2011).
//
// The package exposes the paper's complete measurement stack:
//
//   - a simulated fleet of the eight Intel IA32 processors of Table 3
//     (Fleet, ByName) with BIOS-style configuration of cores, SMT, clock,
//     and Turbo Boost (Config, ConfigSpace);
//   - the 61-benchmark workload of Table 1 across four equally weighted
//     groups (Benchmarks, BenchmarksByGroup);
//   - the power-measurement apparatus: per-machine Hall-effect current
//     sensors, calibration, and 50 Hz logging;
//   - the measurement methodology of Section 2 (Study.Measure and
//     Study.MeasureConfig), including reference normalization and
//     confidence intervals; and
//   - generators for every table and figure in the paper's evaluation
//     (Study.Table2 through Study.Figure12).
//
// A Study is deterministic in its seed: constructing two studies with the
// same seed reproduces every number exactly.
//
// Quick start:
//
//	study, err := powerperf.NewStudy(42)
//	if err != nil { ... }
//	rows, err := study.Table4()   // Table 4: perf & power per processor
//
// See DESIGN.md for the system inventory and the documented substitutions
// of simulated substrates for the paper's physical apparatus, and
// EXPERIMENTS.md for paper-versus-measured results for every artifact.
package powerperf

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/pareto"
	"repro/internal/proc"
	"repro/internal/sensor"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Re-exported domain types. These aliases are the package's vocabulary;
// their fields and methods are documented on the internal definitions.
type (
	// Processor is one member of the experimental fleet (Table 3).
	Processor = proc.Processor
	// Config is a BIOS-style hardware configuration (Section 2.8).
	Config = proc.Config
	// ConfiguredProcessor pairs a processor with a configuration.
	ConfiguredProcessor = proc.ConfiguredProcessor
	// Microarch is a microarchitecture family name.
	Microarch = proc.Microarch
	// Benchmark is one Table 1 workload descriptor.
	Benchmark = workload.Benchmark
	// Group is one of the four equally weighted workload groups.
	Group = workload.Group
	// Measurement is a fully measured benchmark/configuration pair.
	Measurement = harness.Measurement
	// ConfigResult is an aggregated configuration result (Section 2.6).
	ConfigResult = harness.ConfigResult
	// Reference is the four-processor normalization baseline.
	Reference = harness.Reference
	// ParetoPoint is one configuration's energy/performance position.
	ParetoPoint = pareto.Point
	// FeatureRatio is a relative perf/power/energy comparison from the
	// feature-analysis figures.
	FeatureRatio = experiments.Ratio
	// FeatureGroupEnergy is a comparison's per-group energy breakdown.
	FeatureGroupEnergy = experiments.GroupEnergy
	// Tracer records spans of the study pipeline (see SetTracer).
	Tracer = telemetry.Tracer
)

// NewTracer builds a span tracer retaining up to capacity completed
// spans (<= 0 selects the default, 4096). Attach with Study.SetTracer
// and export with Tracer.WriteChromeTrace.
func NewTracer(capacity int) *Tracer { return telemetry.NewTracer(capacity) }

// Workload groups, re-exported for callers of BenchmarksByGroup.
const (
	NativeNonScalable = workload.NativeNonScalable
	NativeScalable    = workload.NativeScalable
	JavaNonScalable   = workload.JavaNonScalable
	JavaScalable      = workload.JavaScalable
)

// Fleet processor names (the paper's shorthand).
const (
	Pentium4 = proc.Pentium4Name
	Core2D65 = proc.Core2D65Name
	Core2Q65 = proc.Core2Q65Name
	I7       = proc.I7Name
	Atom45   = proc.Atom45Name
	Core2D45 = proc.Core2D45Name
	AtomD45  = proc.AtomD45Name
	I5       = proc.I5Name
)

// Fleet returns the eight experimental processors of Table 3.
func Fleet() []*Processor { return proc.Fleet() }

// ProcessorByName returns a fleet processor by its paper shorthand, e.g.
// powerperf.I7.
func ProcessorByName(name string) (*Processor, error) { return proc.ByName(name) }

// Benchmarks returns the 61 benchmarks of Table 1.
func Benchmarks() []*Benchmark { return workload.All() }

// BenchmarkByName returns one benchmark by name.
func BenchmarkByName(name string) (*Benchmark, error) { return workload.ByName(name) }

// BenchmarksByGroup returns the benchmarks of one workload group.
func BenchmarksByGroup(g Group) []*Benchmark { return workload.ByGroup(g) }

// Groups returns the four workload groups in the paper's order.
func Groups() []Group { return workload.Groups() }

// ConfigSpace returns the paper's 45 processor configurations.
func ConfigSpace() []ConfiguredProcessor { return proc.ConfigSpace() }

// ConfigSpace45nm returns the 29 45nm configurations of the Pareto
// analysis.
func ConfigSpace45nm() []ConfiguredProcessor { return proc.ConfigSpace45nm() }

// StockConfigs returns the eight stock configurations.
func StockConfigs() []ConfiguredProcessor { return proc.StockConfigs() }

// Study owns a calibrated measurement rig, the normalization reference,
// and a measurement cache; it is the entry point for reproducing the
// paper's dataset and analyses.
type Study struct {
	ctx *experiments.Context
}

// NewStudy builds a study: it fabricates and calibrates one current
// sensor per fleet machine and measures the normalization reference
// (Section 2.6). The seed makes every subsequent number deterministic.
func NewStudy(seed int64) (*Study, error) {
	ctx, err := experiments.NewContext(seed)
	if err != nil {
		return nil, err
	}
	return &Study{ctx: ctx}, nil
}

// Measure runs the full methodology for one benchmark on one configured
// processor: the prescribed invocation counts, sensor-logged power, and
// 95% confidence intervals. Results are cached within the study.
func (s *Study) Measure(b *Benchmark, cp ConfiguredProcessor) (*Measurement, error) {
	if s == nil || s.ctx == nil {
		return nil, errors.New("powerperf: nil study")
	}
	return s.ctx.H.Measure(b, cp)
}

// MeasureConfig measures all 61 benchmarks on one configuration and
// aggregates them per Section 2.6 (equal group weighting, reference
// normalization).
func (s *Study) MeasureConfig(cp ConfiguredProcessor) (*ConfigResult, error) {
	if s == nil || s.ctx == nil {
		return nil, errors.New("powerperf: nil study")
	}
	return s.ctx.H.MeasureConfig(cp, s.ctx.Ref, nil)
}

// Reference exposes the four-processor normalization baseline.
func (s *Study) Reference() *Reference { return s.ctx.Ref }

// SetTracer attaches a span tracer to the study's harness: every
// MeasureGrid / CSV-stream batch and cell records a span, exportable
// with Tracer().WriteChromeTrace. Tracing is a pure side channel —
// study results are byte-identical with it on or off. nil disables.
func (s *Study) SetTracer(t *telemetry.Tracer) {
	if s != nil && s.ctx != nil {
		s.ctx.H.SetTracer(t)
	}
}

// Tracer returns the study's attached tracer (nil when disabled).
func (s *Study) Tracer() *telemetry.Tracer {
	if s == nil || s.ctx == nil {
		return nil
	}
	return s.ctx.H.Tracer()
}

// SetBlockSize fixes the scheduling block batch workers claim per
// dispatch. Blocking is pure scheduling: any block size produces
// byte-identical measurements, it only changes how work is handed out.
// Tune with `powerperf tune`.
//
// n must be positive — a zero or negative block would stall the claim
// loop, so it is rejected rather than silently coerced (callers that
// want the automatic size simply never call SetBlockSize, or call
// ResetBlockSize).
func (s *Study) SetBlockSize(n int) error {
	if n <= 0 {
		return fmt.Errorf("powerperf: block size must be positive, got %d (leave unset for automatic)", n)
	}
	if s != nil && s.ctx != nil {
		s.ctx.H.SetBlockSize(n)
	}
	return nil
}

// ResetBlockSize restores the automatic scheduling block.
func (s *Study) ResetBlockSize() {
	if s != nil && s.ctx != nil {
		s.ctx.H.SetBlockSize(0)
	}
}

// ValidateRig sweeps every calibrated sensor across known currents and
// reports the worst error, reproducing the paper's meter validation.
func (s *Study) ValidateRig(knownAmps []float64) ([]sensor.ValidationReport, error) {
	return s.ctx.H.Rig().Validate(knownAmps)
}

// Experiment generators: one per table and figure of the evaluation.

// Table2 regenerates Table 2 (aggregate 95% confidence intervals). A nil
// configuration list uses the eight stock processors.
func (s *Study) Table2(cps []ConfiguredProcessor) (*experiments.Table2Result, error) {
	return experiments.Table2(s.ctx, cps)
}

// Table3 returns the processor-specification rows of Table 3.
func (s *Study) Table3() []experiments.Table3Row { return experiments.Table3() }

// Table4 regenerates Table 4 (performance and power per processor).
func (s *Study) Table4() ([]experiments.Table4Row, error) { return experiments.Table4(s.ctx) }

// Table5 regenerates Table 5 (Pareto-efficient 45nm configurations).
func (s *Study) Table5() (*experiments.Table5Result, error) { return experiments.Table5(s.ctx) }

// Figure1 regenerates Figure 1 (Java multithreaded scalability).
func (s *Study) Figure1() (*experiments.Figure1Result, error) { return experiments.Figure1(s.ctx) }

// Figure2 regenerates Figure 2 (measured power versus TDP).
func (s *Study) Figure2() (*experiments.Figure2Result, error) { return experiments.Figure2(s.ctx) }

// Figure3 regenerates Figure 3 (power/performance distribution, i7).
func (s *Study) Figure3() (*experiments.Figure3Result, error) { return experiments.Figure3(s.ctx) }

// Figure4 regenerates Figure 4 (the CMP effect).
func (s *Study) Figure4() (*experiments.FeatureResult, error) { return experiments.Figure4(s.ctx) }

// Figure5 regenerates Figure 5 (the SMT effect).
func (s *Study) Figure5() (*experiments.FeatureResult, error) { return experiments.Figure5(s.ctx) }

// Figure6 regenerates Figure 6 (CMP effect on single-threaded Java).
func (s *Study) Figure6() (*experiments.Figure6Result, error) { return experiments.Figure6(s.ctx) }

// Figure7 regenerates Figure 7 (clock scaling).
func (s *Study) Figure7() (*experiments.Figure7Result, error) { return experiments.Figure7(s.ctx) }

// Figure8 regenerates Figure 8 (die shrink).
func (s *Study) Figure8() (*experiments.Figure8Result, error) { return experiments.Figure8(s.ctx) }

// Figure9 regenerates Figure 9 (gross microarchitecture change).
func (s *Study) Figure9() (*experiments.Figure9Result, error) { return experiments.Figure9(s.ctx) }

// Figure10 regenerates Figure 10 (Turbo Boost).
func (s *Study) Figure10() (*experiments.Figure10Result, error) { return experiments.Figure10(s.ctx) }

// Figure11 regenerates Figure 11 (historical overview, per-transistor).
func (s *Study) Figure11() (*experiments.Figure11Result, error) { return experiments.Figure11(s.ctx) }

// Figure12 regenerates Figure 12 (Pareto frontiers at 45nm).
func (s *Study) Figure12() (*experiments.Figure12Result, error) { return experiments.Figure12(s.ctx) }

// Extended analyses beyond the paper's numbered artifacts.

// Section31 reproduces the Section 3.1 counter drill-down behind
// Workload Finding 1: per-benchmark speedups, JVM service fractions, and
// DTLB miss ratios for single-threaded Java at one versus two cores.
func (s *Study) Section31() (*experiments.Section31Result, error) {
	return experiments.Section31(s.ctx)
}

// JVMComparison reproduces the Section 2.2 JVM cross-check: HotSpot
// versus JRockit versus J9 aggregate performance and power.
func (s *Study) JVMComparison() (*experiments.JVMComparisonResult, error) {
	return experiments.JVMComparison(s.ctx)
}

// MeterComparison contrasts the paper's on-chip rail measurement with a
// whole-system clamp-ammeter methodology (Section 5).
func (s *Study) MeterComparison() (*experiments.MeterComparisonResult, error) {
	return experiments.MeterComparison(s.ctx)
}

// KernelBug reproduces the Section 2.8 ablation: BIOS core disabling
// versus the buggy OS hotplug path whose power moves the wrong way.
func (s *Study) KernelBug() (*experiments.KernelBugResult, error) {
	return experiments.KernelBug(s.ctx)
}

// HeapSweep reproduces the methodology ablation behind the 3x-minimum
// heap choice (Section 2.2).
func (s *Study) HeapSweep() (*experiments.HeapSweepResult, error) {
	return experiments.HeapSweep(s.ctx)
}

// ScalingAnalysis compares the measured die shrinks with Dennard,
// post-Dennard, and ITRS scaling, and runs the Section 4.1 Pentium 4
// projection.
func (s *Study) ScalingAnalysis() (*experiments.ScalingResult, error) {
	return experiments.ScalingAnalysis(s.ctx)
}

// PowerBreakdown decomposes chip power by structure on the stock i7 —
// the per-structure power-meter view the paper's conclusion recommends.
func (s *Study) PowerBreakdown() (*experiments.BreakdownResult, error) {
	return experiments.PowerBreakdown(s.ctx)
}

// MeasureGrid measures the cross product of configurations and
// benchmarks across a worker pool (workers <= 0 selects GOMAXPROCS) and
// returns the measurements in grid order. Nil arguments select the eight
// stock configurations and all 61 benchmarks. Parallel execution is
// numerically identical to serial: every run derives its own noise and
// jitter streams from its identity. Cancelling ctx aborts the batch at
// cell granularity.
func (s *Study) MeasureGrid(ctx context.Context, cps []ConfiguredProcessor, benches []*Benchmark, workers int) ([]*Measurement, error) {
	if s == nil || s.ctx == nil {
		return nil, errors.New("powerperf: nil study")
	}
	return s.ctx.H.MeasureBatch(ctx, harness.GridJobs(cps, benches), workers)
}

// Findings evaluates the paper's thirteen named findings (Workload 1-4,
// Architecture 1-9) against this study's measurements — the reproduction
// report in programmatic form.
func (s *Study) Findings() (*experiments.FindingsResult, error) {
	return experiments.Findings(s.ctx)
}

// WriteMeasurementsCSV streams the companion dataset's measurements.csv
// (every benchmark on every configuration of cps; nil selects the 45
// study configurations) to w, flushing per configuration. The bytes are
// identical to the committed dataset for the same seed — the dataset
// files, the fullstudy command, and the powerperfd dataset endpoint all
// share this writer.
func (s *Study) WriteMeasurementsCSV(ctx context.Context, w io.Writer, cps []ConfiguredProcessor, workers int) error {
	if s == nil || s.ctx == nil {
		return errors.New("powerperf: nil study")
	}
	return experiments.StreamMeasurementsCSV(ctx, s.ctx, cps, w, workers)
}

// WriteAggregatesCSV streams the companion dataset's aggregates.csv
// (Section 2.6 group and weighted averages per configuration) to w.
func (s *Study) WriteAggregatesCSV(ctx context.Context, w io.Writer, cps []ConfiguredProcessor, workers int) error {
	if s == nil || s.ctx == nil {
		return errors.New("powerperf: nil study")
	}
	return experiments.StreamAggregatesCSV(ctx, s.ctx, cps, w, workers)
}
