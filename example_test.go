package powerperf_test

import (
	"fmt"
	"log"

	powerperf "repro"
)

// ExampleFleet lists the experimental processors of Table 3.
func ExampleFleet() {
	for _, p := range powerperf.Fleet() {
		fmt.Printf("%-16s %-8s %3dnm %dC%dT\n",
			p.Name, p.Arch, p.Spec.NodeNM, p.Spec.Cores, p.Spec.SMTWays)
	}
	// Output:
	// Pentium4 (130)   NetBurst 130nm 1C2T
	// Core2D (65)      Core      65nm 2C1T
	// Core2Q (65)      Core      65nm 4C1T
	// i7 (45)          Nehalem   45nm 4C2T
	// Atom (45)        Bonnell   45nm 1C2T
	// Core2D (45)      Core      45nm 2C1T
	// AtomD (45)       Bonnell   45nm 2C2T
	// i5 (32)          Nehalem   32nm 2C2T
}

// ExampleBenchmarksByGroup shows the equally weighted workload groups.
func ExampleBenchmarksByGroup() {
	for _, g := range powerperf.Groups() {
		fmt.Printf("%s: %d benchmarks\n", g, len(powerperf.BenchmarksByGroup(g)))
	}
	// Output:
	// Native Non-scalable: 27 benchmarks
	// Native Scalable: 11 benchmarks
	// Java Non-scalable: 18 benchmarks
	// Java Scalable: 5 benchmarks
}

// ExampleProcessor_Stock shows a processor's stock configuration in the
// paper's notation.
func ExampleProcessor_Stock() {
	i7, err := powerperf.ProcessorByName(powerperf.I7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(i7.Stock())
	// Output:
	// 4C2T@2.7GHz TB
}

// ExampleStudy_Measure runs the full methodology for one benchmark.
// Measurement values depend on the study seed, so this example checks
// structure rather than numbers.
func ExampleStudy_Measure() {
	study, err := powerperf.NewStudy(42)
	if err != nil {
		log.Fatal(err)
	}
	mcf, err := powerperf.BenchmarkByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	i7, err := powerperf.ProcessorByName(powerperf.I7)
	if err != nil {
		log.Fatal(err)
	}
	m, err := study.Measure(mcf, powerperf.ConfiguredProcessor{Proc: i7, Config: i7.Stock()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d runs, power below TDP: %v\n",
		len(m.Runs), m.Watts < i7.Spec.TDPWatts)
	// Output:
	// 3 runs, power below TDP: true
}

// ExampleConfigSpace shows the size of the paper's configuration space.
func ExampleConfigSpace() {
	fmt.Printf("%d configurations, %d at 45nm\n",
		len(powerperf.ConfigSpace()), len(powerperf.ConfigSpace45nm()))
	// Output:
	// 45 configurations, 29 at 45nm
}
