package powerperf

import (
	"context"
	"log/slog"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/monitor"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// The benchmark suite regenerates every table and figure of the paper's
// evaluation, one testing.B target per artifact:
//
//	go test -bench=. -benchmem
//
// All targets share one Study, as the paper's analyses share one
// dataset; each iteration replays the artifact's full generation (the
// underlying measurements are cached after the first pass, so later
// iterations measure the analysis pipeline itself).

var (
	benchOnce  sync.Once
	benchStudy *Study
	benchErr   error
)

func study(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() { benchStudy, benchErr = NewStudy(42) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

// BenchmarkTable2 regenerates Table 2: aggregate 95% confidence
// intervals for time and power over the eight stock configurations.
func BenchmarkTable2(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Table2(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Table.Overall.TimeAvg*100, "timeCI%")
		b.ReportMetric(res.Table.Overall.PowerAvg*100, "powerCI%")
	}
}

// BenchmarkTable3 regenerates the processor-specification table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := study(b).Table3(); len(rows) != 8 {
			b.Fatal("bad fleet")
		}
	}
}

// BenchmarkTable4 regenerates Table 4: performance and power per stock
// processor over all 61 benchmarks.
func BenchmarkTable4(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Result.CP.Proc.Name == I7 {
				b.ReportMetric(r.Result.PerfW, "i7-perf")
				b.ReportMetric(r.Result.WattsW, "i7-watts")
			}
		}
	}
}

// BenchmarkTable5 regenerates the Pareto-efficiency table over the 29
// 45nm configurations.
func BenchmarkTable5(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Efficient["Average"])), "efficient")
	}
}

// BenchmarkFigure1 regenerates the Java multithreaded scalability figure.
func BenchmarkFigure1(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, p := range res.Points[:5] { // the Java Scalable five
			sum += p.Speedup
		}
		b.ReportMetric(sum/5, "scalable-avg")
	}
}

// BenchmarkFigure2 regenerates the measured-power-versus-TDP scatter.
func BenchmarkFigure2(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) != 488 {
			b.Fatal("wrong point count")
		}
	}
}

// BenchmarkFigure3 regenerates the i7 power/performance distribution.
func BenchmarkFigure3(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the CMP feature analysis.
func BenchmarkFigure4(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratios[0].Energy, "i7-energy")
		b.ReportMetric(res.Ratios[1].Energy, "i5-energy")
	}
}

// BenchmarkFigure5 regenerates the SMT feature analysis.
func BenchmarkFigure5(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratios[2].Perf, "atom-smt-perf")
	}
}

// BenchmarkFigure6 regenerates the single-threaded Java CMP figure.
func BenchmarkFigure6(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, p := range res.Points {
			sum += p.Speedup
		}
		b.ReportMetric(sum/float64(len(res.Points)), "avg-speedup")
	}
}

// BenchmarkFigure7 regenerates the clock-scaling sweeps.
func BenchmarkFigure7(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		for _, srs := range res.Series {
			if srs.Proc == I5 {
				b.ReportMetric(srs.PerDoublingEnergy*100, "i5-energy/doubling%")
			}
		}
	}
}

// BenchmarkFigure8 regenerates the die-shrink comparisons.
func BenchmarkFigure8(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Matched[0].Power, "core-shrink-power")
	}
}

// BenchmarkFigure9 regenerates the gross-microarchitecture comparisons.
func BenchmarkFigure9(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratios[1].Energy, "i7/p4-energy")
	}
}

// BenchmarkFigure10 regenerates the Turbo Boost analysis.
func BenchmarkFigure10(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratios[1].Power, "i7-1c1t-power")
	}
}

// BenchmarkFigure11 regenerates the historical overview.
func BenchmarkFigure11(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure11(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12 regenerates the Pareto frontier curves.
func BenchmarkFigure12(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Curves) != 5 {
			b.Fatal("missing curves")
		}
	}
}

// BenchmarkMeasureNative measures one SPEC benchmark end to end on a
// fresh study (no cache), quantifying the cost of the three-run native
// methodology including sensor logging.
func BenchmarkMeasureNative(b *testing.B) {
	bench, err := BenchmarkByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	i7, err := ProcessorByName(I7)
	if err != nil {
		b.Fatal(err)
	}
	cp := ConfiguredProcessor{Proc: i7, Config: i7.Stock()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := harness.New(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Measure(bench, cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureManaged measures one Java benchmark end to end on a
// fresh study, quantifying the twenty-invocation, five-iteration
// methodology.
func BenchmarkMeasureManaged(b *testing.B) {
	bench, err := BenchmarkByName("lusearch")
	if err != nil {
		b.Fatal(err)
	}
	i5, err := ProcessorByName(I5)
	if err != nil {
		b.Fatal(err)
	}
	cp := ConfiguredProcessor{Proc: i5, Config: i5.Stock()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := harness.New(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Measure(bench, cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection31 regenerates the counter drill-down behind Workload
// Finding 1.
func BenchmarkSection31(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Section31()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Bench == "db" {
				b.ReportMetric(row.DTLBRatio, "db-dtlb-ratio")
			}
		}
	}
}

// BenchmarkJVMComparison regenerates the Section 2.2 JVM cross-check.
func BenchmarkJVMComparison(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.JVMComparison()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.VM == "JRockit" {
				b.ReportMetric(row.PowerVsHotSpot, "jrockit-power")
			}
		}
	}
}

// BenchmarkMeterComparison regenerates the chip-vs-wall methodology
// comparison.
func BenchmarkMeterComparison(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.MeterComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelBug regenerates the Section 2.8 OS-offlining ablation.
func BenchmarkKernelBug(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.KernelBug()
		if err != nil {
			b.Fatal(err)
		}
		anomalies := 0
		for _, r := range res.Reports {
			if r.Anomalous() {
				anomalies++
			}
		}
		b.ReportMetric(float64(anomalies), "anomalies")
	}
}

// BenchmarkHeapSweep regenerates the heap-size methodology ablation.
func BenchmarkHeapSweep(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.HeapSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingAnalysis regenerates the Dennard/ITRS scaling
// comparison and the Section 4.1 Pentium 4 projection.
func BenchmarkScalingAnalysis(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.ScalingAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.P4Projected.Power, "p4-projected-power")
	}
}

// BenchmarkPowerBreakdown regenerates the per-structure power view.
func BenchmarkPowerBreakdown(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.PowerBreakdown(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullGrid measures the study's dominant cost end to end: a
// cold harness measuring all 45 configurations x 61 benchmarks, the
// workload behind `fullstudy`. A fresh Study each iteration keeps the
// measurement cache cold so the number tracks real regeneration time.
func BenchmarkFullGrid(b *testing.B) {
	space := ConfigSpace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewStudy(42)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.MeasureGrid(context.Background(), space, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindings regenerates the full reproduction report: all
// thirteen named findings checked against the measured dataset.
func BenchmarkFindings(b *testing.B) {
	s := study(b)
	for i := 0; i < b.N; i++ {
		res, err := s.Findings()
		if err != nil {
			b.Fatal(err)
		}
		held := 0
		for _, f := range res.Findings {
			if f.Holds {
				held++
			}
		}
		b.ReportMetric(float64(held), "findings-held")
	}
}

// BenchmarkServedStudy is the tentpole end-to-end benchmark: a cold
// 2-backend cluster study (6 stock configurations x 61 benchmarks, 366
// cells) through the full serving path — HTTP, JSON, the sharded cache,
// the worker pool, and batched kernel evaluation on the backends.
// BENCH_pr6.json records its numbers against the PR 5 baseline; the CI
// perf lane replays it at -benchtime=3x. Fresh backends per iteration
// keep the cache cold so the number tracks real study work, not cache
// hits.
func BenchmarkServedStudy(b *testing.B) {
	telemetry.SetLogLevel(slog.LevelError)
	jobs := harness.GridJobs(nil, nil)[:6*61]
	seed := int64(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ts0 := httptest.NewServer(service.NewServer(service.Options{Seed: seed}).Handler())
		ts1 := httptest.NewServer(service.NewServer(service.Options{Seed: seed}).Handler())
		cl, err := cluster.New([]string{ts0.URL, ts1.URL}, cluster.Options{Seed: &seed})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if _, err := cl.MeasureBatch(context.Background(), jobs, 0); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		ts0.Close()
		ts1.Close()
		b.StartTimer()
	}
}

// TestMeasurePathAllocBudget pins the per-cell allocation count of the
// serving path's measurement kernel (MeasureUncached — what powerperfd
// runs per cache miss). The batched-kernel work brought a native cell to
// 5 allocations and a managed cell to 6 (BENCH_pr6.json); the budget is
// those numbers plus the 10% regression allowance, rounded up. A breach
// means something on the per-cell path started allocating again —
// almost always an escape or a dropped pool, worth catching at test
// time rather than in the e2e benchmark's noise.
func TestMeasurePathAllocBudget(t *testing.T) {
	h, err := harness.New(42)
	if err != nil {
		t.Fatal(err)
	}
	native, err := BenchmarkByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	managed, err := BenchmarkByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	i7, err := ProcessorByName(I7)
	if err != nil {
		t.Fatal(err)
	}
	cp := ConfiguredProcessor{Proc: i7, Config: i7.Stock()}

	measure := func(bench *Benchmark) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, err := h.MeasureUncached(bench, cp); err != nil {
				t.Fatal(err)
			}
		})
	}
	if got := measure(native); got > 6 {
		t.Errorf("native cell: %v allocs per MeasureUncached, budget 6 (recorded 5)", got)
	}
	if got := measure(managed); got > 7 {
		t.Errorf("managed cell: %v allocs per MeasureUncached, budget 7 (recorded 6)", got)
	}
}

// BenchmarkServedStudyStored is BenchmarkServedStudy with the
// persistent study store enabled on both backends: the same cold
// 366-cell cluster study, but every measure batch also runs through the
// ingest recorder (row capture + async enqueue). The store's write path
// is a single background goroutine per backend, so the timed section
// covers exactly what a client sees — the ingest-overhead gate in CI
// holds this number to within 5% of BenchmarkServedStudy
// (BENCH_pr8.json records both). The drain/fsync cost lands in the
// untimed teardown, matching a daemon's shutdown-time flush.
func BenchmarkServedStudyStored(b *testing.B) {
	telemetry.SetLogLevel(slog.LevelError)
	jobs := harness.GridJobs(nil, nil)[:6*61]
	seed := int64(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st0, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		st1, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		srv0 := service.NewServer(service.Options{Seed: seed, Store: st0})
		srv1 := service.NewServer(service.Options{Seed: seed, Store: st1})
		ts0 := httptest.NewServer(srv0.Handler())
		ts1 := httptest.NewServer(srv1.Handler())
		cl, err := cluster.New([]string{ts0.URL, ts1.URL}, cluster.Options{Seed: &seed})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if _, err := cl.MeasureBatch(context.Background(), jobs, 0); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		srv0.Drain()
		srv1.Drain()
		ts0.Close()
		ts1.Close()
		st0.Close()
		st1.Close()
		b.StartTimer()
	}
}

// BenchmarkScheduledStudy is BenchmarkServedStudy's work-stealing
// sibling: the same cold 2-backend 366-cell study, but measured through
// the pull-based scheduler and the NDJSON streaming path instead of
// rendezvous-sharded buffered batches. BENCH_pr7.json records both
// numbers; the gate is that the scheduler's no-fault overhead versus
// the sharded coordinator stays under 10%.
func BenchmarkScheduledStudy(b *testing.B) {
	telemetry.SetLogLevel(slog.LevelError)
	jobs := harness.GridJobs(nil, nil)[:6*61]
	seed := int64(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ts0 := httptest.NewServer(service.NewServer(service.Options{Seed: seed}).Handler())
		ts1 := httptest.NewServer(service.NewServer(service.Options{Seed: seed}).Handler())
		sched, err := cluster.NewScheduler([]string{ts0.URL, ts1.URL}, cluster.SchedulerOptions{Seed: &seed})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if _, err := sched.MeasureBatch(context.Background(), jobs, 0); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		ts0.Close()
		ts1.Close()
		b.StartTimer()
	}
}

// BenchmarkServedStudySLO is BenchmarkServedStudy with this PR's full
// observability stack armed on both backends: SLO engines fed by every
// request (two atomic adds on the hot path plus ring ticks on the read
// path), exemplar-carrying latency histograms, and tail-sampled
// tracers. The CI slo lane holds this number to within 5% of the plain
// served study (BENCH_pr9.json records both) — objectives must be
// close to free at serving time.
func BenchmarkServedStudySLO(b *testing.B) {
	telemetry.SetLogLevel(slog.LevelError)
	jobs := harness.GridJobs(nil, nil)[:6*61]
	seed := int64(42)
	tail := &telemetry.TailPolicy{SlowSpan: 2 * time.Second, KeepErrors: true, SampleRate: 0.05}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv0 := service.NewServer(service.Options{Seed: seed, SLO: service.DefaultSLOConfig(), TailSampling: tail})
		srv1 := service.NewServer(service.Options{Seed: seed, SLO: service.DefaultSLOConfig(), TailSampling: tail})
		ts0 := httptest.NewServer(srv0.Handler())
		ts1 := httptest.NewServer(srv1.Handler())
		cl, err := cluster.New([]string{ts0.URL, ts1.URL}, cluster.Options{Seed: &seed})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if _, err := cl.MeasureBatch(context.Background(), jobs, 0); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		srv0.Drain()
		srv1.Drain()
		ts0.Close()
		ts1.Close()
		b.StartTimer()
	}
}

// BenchmarkServedStudyTraced is BenchmarkServedStudy with this PR's
// fleet trace analytics armed: a monitor scrape loop runs against both
// backends for the whole study — sweeps, span harvests, cross-process
// assembly, and critical-path extraction all live in its background
// loop, exactly where a deployed sidecar monitor does that work. The
// timed section is the client-visible study; the sweeps and harvests
// contend with it for the backends and the CPU (the 250ms cadence here
// is still ~4x a production scrape interval). Each iteration ends
// (untimed, like
// the daemon's shutdown path) with a final harvest and a summary
// check proving assembly really ran. The CI trace lane holds this
// number to within 5% of the plain served study in the same run
// (BENCH_pr10.json records both) — waterfalls must be close to free
// at study time.
func BenchmarkServedStudyTraced(b *testing.B) {
	telemetry.SetLogLevel(slog.LevelError)
	jobs := harness.GridJobs(nil, nil)[:6*61]
	seed := int64(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv0 := service.NewServer(service.Options{Seed: seed})
		srv1 := service.NewServer(service.Options{Seed: seed})
		ts0 := httptest.NewServer(srv0.Handler())
		ts1 := httptest.NewServer(srv1.Handler())
		cl, err := cluster.New([]string{ts0.URL, ts1.URL}, cluster.Options{Seed: &seed})
		if err != nil {
			b.Fatal(err)
		}
		mon := monitor.New([]string{ts0.URL, ts1.URL}, monitor.Options{
			Interval: 250 * time.Millisecond,
			Timeout:  2 * time.Second,
			Seed:     7,
		})
		ctx, cancel := context.WithCancel(context.Background())
		mon.Start(ctx)
		for mon.Sweeps() == 0 { // cold-start sweep is setup, not study
			time.Sleep(time.Millisecond)
		}
		b.StartTimer()

		if _, err := cl.MeasureBatch(context.Background(), jobs, 0); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		mon.HarvestTraces(ctx)
		if sum := mon.TraceAnalytics().Summary(5); sum.Stats.SpansSeen == 0 {
			b.Fatal("trace analytics saw no spans")
		}
		cancel()
		srv0.Drain()
		srv1.Drain()
		ts0.Close()
		ts1.Close()
		b.StartTimer()
	}
}
