package powerperf

import (
	"context"
	"sync"
	"testing"
)

var (
	testOnce  sync.Once
	testStudy *Study
	testErr   error
)

func testingStudy(t *testing.T) *Study {
	t.Helper()
	testOnce.Do(func() { testStudy, testErr = NewStudy(42) })
	if testErr != nil {
		t.Fatal(testErr)
	}
	return testStudy
}

func TestPublicCatalogues(t *testing.T) {
	if got := len(Fleet()); got != 8 {
		t.Fatalf("Fleet = %d processors, want 8", got)
	}
	if got := len(Benchmarks()); got != 61 {
		t.Fatalf("Benchmarks = %d, want 61", got)
	}
	if got := len(ConfigSpace()); got != 45 {
		t.Fatalf("ConfigSpace = %d, want 45", got)
	}
	if got := len(ConfigSpace45nm()); got != 29 {
		t.Fatalf("ConfigSpace45nm = %d, want 29", got)
	}
	if got := len(StockConfigs()); got != 8 {
		t.Fatalf("StockConfigs = %d, want 8", got)
	}
	if got := len(Groups()); got != 4 {
		t.Fatalf("Groups = %d, want 4", got)
	}
	if got := len(BenchmarksByGroup(NativeNonScalable)); got != 27 {
		t.Fatalf("SPEC CPU2006 group = %d benchmarks, want 27", got)
	}
}

func TestPublicLookups(t *testing.T) {
	p, err := ProcessorByName(I7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec.TDPWatts != 130 {
		t.Fatalf("i7 TDP = %v", p.Spec.TDPWatts)
	}
	if _, err := ProcessorByName("nope"); err == nil {
		t.Fatal("unknown processor accepted")
	}
	b, err := BenchmarkByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	if b.Group != JavaScalable {
		t.Fatalf("lusearch group = %v", b.Group)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestStudyMeasureAndAggregate(t *testing.T) {
	s := testingStudy(t)
	b, err := BenchmarkByName("povray")
	if err != nil {
		t.Fatal(err)
	}
	atom, err := ProcessorByName(Atom45)
	if err != nil {
		t.Fatal(err)
	}
	cp := ConfiguredProcessor{Proc: atom, Config: atom.Stock()}
	m, err := s.Measure(b, cp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Watts <= 0 || m.Watts > atom.Spec.TDPWatts {
		t.Fatalf("Atom power %v outside (0, TDP]", m.Watts)
	}
	res, err := s.MeasureConfig(cp)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerfW <= 0 || res.PerfW > 1 {
		t.Fatalf("Atom weighted perf %v, want below reference", res.PerfW)
	}
	if s.Reference() == nil {
		t.Fatal("nil reference")
	}
}

func TestStudyNilGuards(t *testing.T) {
	var s *Study
	if _, err := s.Measure(nil, ConfiguredProcessor{}); err == nil {
		t.Fatal("nil study accepted")
	}
	if _, err := s.MeasureConfig(ConfiguredProcessor{}); err == nil {
		t.Fatal("nil study accepted")
	}
}

func TestStudyValidateRig(t *testing.T) {
	s := testingStudy(t)
	reports, err := s.ValidateRig([]float64{0.5, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 8 {
		t.Fatalf("%d sensor reports, want 8", len(reports))
	}
	for _, r := range reports {
		if r.R2 < 0.999 {
			t.Errorf("%s: calibration R2 %v below the paper's threshold", r.Machine, r.R2)
		}
	}
}

func TestStudyDeterminism(t *testing.T) {
	a, err := NewStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := BenchmarkByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	i5, err := ProcessorByName(I5)
	if err != nil {
		t.Fatal(err)
	}
	cp := ConfiguredProcessor{Proc: i5, Config: i5.Stock()}
	ma, err := a.Measure(bench, cp)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Measure(bench, cp)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Seconds != mb.Seconds || ma.Watts != mb.Watts {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", ma.Seconds, ma.Watts, mb.Seconds, mb.Watts)
	}
}

func TestStudyExperimentSurface(t *testing.T) {
	s := testingStudy(t)
	if rows := s.Table3(); len(rows) != 8 {
		t.Fatal("Table3 wrong size")
	}
	rows, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatal("Table4 wrong size")
	}
	f6, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Points) != 10 {
		t.Fatal("Figure6 wrong size")
	}
	f11, err := s.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(f11.Points) != 8 {
		t.Fatal("Figure11 wrong size")
	}
}

// TestStudyFullSurface exercises every experiment wrapper once; the
// shared measurement cache keeps this fast.
func TestStudyFullSurface(t *testing.T) {
	s := testingStudy(t)
	if _, err := s.Table2(nil); err != nil {
		t.Error(err)
	}
	t5, err := s.Table5()
	if err != nil {
		t.Error(err)
	} else if len(t5.All) != 29 {
		t.Errorf("Table5 over %d configs", len(t5.All))
	}
	if f, err := s.Figure1(); err != nil || len(f.Points) != 13 {
		t.Errorf("Figure1: %v", err)
	}
	if f, err := s.Figure2(); err != nil || len(f.Points) != 488 {
		t.Errorf("Figure2: %v", err)
	}
	if f, err := s.Figure3(); err != nil || len(f.Points) != 61 {
		t.Errorf("Figure3: %v", err)
	}
	if f, err := s.Figure4(); err != nil || len(f.Ratios) != 2 {
		t.Errorf("Figure4: %v", err)
	}
	if f, err := s.Figure5(); err != nil || len(f.Ratios) != 4 {
		t.Errorf("Figure5: %v", err)
	}
	if f, err := s.Figure7(); err != nil || len(f.Series) != 3 {
		t.Errorf("Figure7: %v", err)
	}
	if f, err := s.Figure8(); err != nil || len(f.Matched) != 2 {
		t.Errorf("Figure8: %v", err)
	}
	if f, err := s.Figure9(); err != nil || len(f.Ratios) != 4 {
		t.Errorf("Figure9: %v", err)
	}
	if f, err := s.Figure10(); err != nil || len(f.Ratios) != 4 {
		t.Errorf("Figure10: %v", err)
	}
	if f, err := s.Figure12(); err != nil || len(f.Curves) != 5 {
		t.Errorf("Figure12: %v", err)
	}
	if r, err := s.Section31(); err != nil || len(r.Rows) != 10 {
		t.Errorf("Section31: %v", err)
	}
	if r, err := s.JVMComparison(); err != nil || len(r.Rows) != 3 {
		t.Errorf("JVMComparison: %v", err)
	}
	if r, err := s.MeterComparison(); err != nil || len(r.Rows) != 8 {
		t.Errorf("MeterComparison: %v", err)
	}
	if r, err := s.KernelBug(); err != nil || len(r.Reports) != 6 {
		t.Errorf("KernelBug: %v", err)
	}
	if r, err := s.HeapSweep(); err != nil || len(r.Series) != 4 {
		t.Errorf("HeapSweep: %v", err)
	}
	if r, err := s.ScalingAnalysis(); err != nil || len(r.Rows) != 2 {
		t.Errorf("ScalingAnalysis: %v", err)
	}
	if r, err := s.PowerBreakdown(); err != nil || len(r.Rows) != 8 {
		t.Errorf("PowerBreakdown: %v", err)
	}
}

// TestMeasureGrid exercises the parallel measurement surface.
func TestMeasureGrid(t *testing.T) {
	s := testingStudy(t)
	atom, err := ProcessorByName(Atom45)
	if err != nil {
		t.Fatal(err)
	}
	cps := []ConfiguredProcessor{{Proc: atom, Config: atom.Stock()}}
	res, err := s.MeasureGrid(context.Background(), cps, BenchmarksByGroup(JavaScalable), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d results, want 5", len(res))
	}
	var nilStudy *Study
	if _, err := nilStudy.MeasureGrid(context.Background(), nil, nil, 0); err == nil {
		t.Fatal("nil study accepted")
	}
}

// TestStudySetBlockSizeValidation pins the fix for silently-accepted
// non-positive block sizes: zero and negatives are rejected with an
// error (the automatic block is selected by never calling SetBlockSize,
// or by ResetBlockSize), and a valid size still measures bit-identically
// — blocking is pure scheduling.
func TestStudySetBlockSizeValidation(t *testing.T) {
	study, err := NewStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, -1, -64} {
		if err := study.SetBlockSize(n); err == nil {
			t.Errorf("SetBlockSize(%d) accepted a non-positive block", n)
		}
	}
	if err := study.SetBlockSize(7); err != nil {
		t.Fatalf("SetBlockSize(7): %v", err)
	}
	cps := StockConfigs()[:1]
	blocked, err := study.MeasureGrid(context.Background(), cps, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	study.ResetBlockSize()
	auto, err := study.MeasureGrid(context.Background(), cps, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocked {
		if blocked[i].Seconds != auto[i].Seconds || blocked[i].Watts != auto[i].Watts {
			t.Fatalf("cell %d: block size changed measurement values; it must be pure scheduling", i)
		}
	}
	// Nil receivers stay inert, matching the rest of the Study surface.
	var nilStudy *Study
	if err := nilStudy.SetBlockSize(-2); err == nil {
		t.Error("nil Study SetBlockSize(-2) accepted a non-positive block")
	}
	nilStudy.ResetBlockSize()
}
