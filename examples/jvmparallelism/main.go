// JVM-induced parallelism: reproduce Workload Finding 1 interactively.
//
// The paper's most surprising workload result is that *single-threaded*
// Java programs speed up on a second core: the JVM's compiler, collector,
// and profiler threads move off the application's core, and their cache
// and TLB displacement goes with them. This example measures that effect
// across the fleet and shows where it comes from by toggling the runtime
// demands of a synthetic benchmark.
package main

import (
	"fmt"
	"log"

	powerperf "repro"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	study, err := powerperf.NewStudy(42)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: the paper's Figure 6 benchmarks on every multi-core
	// processor: one core versus two, SMT and Turbo off.
	fmt.Println("Single-threaded Java, second-core speedup (2C1T / 1C1T):")
	procs := []string{powerperf.Core2D65, powerperf.I7, powerperf.I5, powerperf.AtomD45}
	benchNames := []string{"antlr", "db", "luindex", "compress"}
	fmt.Printf("%-12s", "")
	for _, pn := range procs {
		fmt.Printf("%16s", pn)
	}
	fmt.Println()
	for _, bn := range benchNames {
		b, err := powerperf.BenchmarkByName(bn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", bn)
		for _, pn := range procs {
			p, err := powerperf.ProcessorByName(pn)
			if err != nil {
				log.Fatal(err)
			}
			speedup, err := secondCoreSpeedup(study, b, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%15.2fx", speedup)
		}
		fmt.Println()
	}

	// Part 2: where the speedup comes from. A synthetic single-threaded
	// managed workload with the runtime demands dialed up and down.
	fmt.Println("\nSynthetic single-threaded managed workload on the i7 (45):")
	i7, err := powerperf.ProcessorByName(powerperf.I7)
	if err != nil {
		log.Fatal(err)
	}
	cases := []struct {
		name          string
		service, disp float64
	}{
		{"no runtime services (native-like)", 0.001, 0},
		{"compiler+profiler only", 0.15, 0},
		{"collector displacement only", 0.001, 0.20},
		{"full managed runtime", 0.15, 0.20},
	}
	for i, c := range cases {
		// Distinct names per variant: the study caches measurements by
		// benchmark name and configuration.
		b := workload.Benchmark{
			Name: fmt.Sprintf("synthetic-%d", i), Description: "synthetic managed workload",
			Suite: workload.DaCapo9, Group: workload.JavaNonScalable,
			RefSeconds: 5, Threads: 1, ILP: 1.3, MPKI: 4, WorkingSetKB: 16 << 10,
			MLPFactor: 0.55, Activity: 0.8, BranchWeight: 0.75,
			ServiceFrac: c.service, AllocMBps: 300, Displacement: c.disp,
		}
		speedup, err := secondCoreSpeedup(study, &b, i7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-36s %.2fx\n", c.name, speedup)
	}
	fmt.Println("\nThe speedup needs both ingredients: concurrent service work to")
	fmt.Println("offload, and displacement relief when it leaves the app's caches.")
}

// secondCoreSpeedup measures a benchmark at one and two cores (single
// thread per core, no turbo) and returns t1/t2.
func secondCoreSpeedup(study *powerperf.Study, b *powerperf.Benchmark, p *powerperf.Processor) (float64, error) {
	clock := p.MaxClock()
	one := powerperf.ConfiguredProcessor{Proc: p, Config: powerperf.Config{Cores: 1, SMTWays: 1, ClockGHz: clock}}
	two := powerperf.ConfiguredProcessor{Proc: p, Config: powerperf.Config{Cores: 2, SMTWays: 1, ClockGHz: clock}}
	m1, err := study.Measure(b, one)
	if err != nil {
		return 0, err
	}
	m2, err := study.Measure(b, two)
	if err != nil {
		return 0, err
	}
	return m1.Seconds / m2.Seconds, nil
}
