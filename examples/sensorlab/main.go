// Sensor lab: exercise the power-measurement apparatus on its own.
//
// The paper's methodological contribution starts at the bench: a Hall-
// effect current sensor per machine on the isolated 12 V processor rail,
// calibrated against 28 reference currents, validated to R^2 >= 0.999,
// and logged at 50 Hz. This example walks that procedure end to end and
// then shows why calibration matters, by reading a synthetic power trace
// through a calibrated and an uncalibrated meter.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/sensor"
)

func main() {
	log.SetFlags(0)

	// Fabricate and calibrate one meter per machine, as the rig does.
	machines := []string{"Pentium4 (130)", "Core2D (65)", "i7 (45)", "Atom (45)"}
	rig, err := sensor.NewRig(machines, map[string]float64{"i7 (45)": 30}, 2026)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Calibration (28 reference currents, 300 mA .. 3 A):")
	reports, err := rig.Validate([]float64{0.4, 0.9, 1.5, 2.2, 2.9})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("  %-16s R2 %.5f   worst error %.2f%%   mean error %.2f%%\n",
			r.Machine, r.R2, r.MaxRelErr*100, r.MeanRelErr*100)
	}

	// Log a synthetic benchmark: 30 seconds of power that ramps and
	// oscillates like a phase-heavy workload, sampled at the logger's
	// 50 Hz through the i7's 30 A sensor.
	meter, err := rig.Meter("i7 (45)")
	if err != nil {
		log.Fatal(err)
	}
	lg, err := meter.NewLogger()
	if err != nil {
		log.Fatal(err)
	}
	const dt = 1.0 / sensor.SampleHz
	trueAvg := 0.0
	n := 0
	for ts := 0.0; ts < 30; ts += dt {
		watts := 28 + 6*math.Sin(2*math.Pi*ts/5) // phase oscillation
		if ts > 20 {
			watts += 10 // a hot final phase
		}
		lg.Sample(watts, dt)
		trueAvg += watts
		n++
	}
	trueAvg /= float64(n)
	trace, err := lg.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLogged synthetic benchmark on the i7 meter (%d samples @ %.0f Hz):\n",
		trace.Samples, sensor.SampleHz)
	fmt.Printf("  true average      %6.2f W\n", trueAvg)
	fmt.Printf("  measured average  %6.2f W  (error %.2f%%)\n",
		trace.AvgWatts, math.Abs(trace.AvgWatts-trueAvg)/trueAvg*100)
	fmt.Printf("  min / max         %6.2f / %.2f W\n", trace.MinWatts, trace.MaxWatts)

	// Why calibrate: raw ADC codes through the *nominal* transfer
	// function instead of the fitted one.
	raw := sensor.New(30, 777)
	code := raw.ReadRaw(2.0) // a 24 W load
	adc := sensor.ADC{Bits: 10, VRef: 5.0}
	nominalAmps := (float64(code)*adc.VoltsPerCode() - sensor.OffsetVolts) / sensor.SensitivityVoltsPerAmp
	cal, err := raw.Calibrate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA 24.0 W load read through one sensor:\n")
	fmt.Printf("  nominal transfer function: %.2f W\n", nominalAmps*sensor.SupplyVolts)
	fmt.Printf("  calibrated:                %.2f W\n", cal.Watts(code))
	fmt.Println("\nPer-part gain and offset tolerances are why the paper fits every")
	fmt.Println("sensor individually before trusting a single measurement.")
}
