// Quickstart: build a study, measure one benchmark on one processor with
// the paper's full methodology, and aggregate a whole configuration.
package main

import (
	"fmt"
	"log"

	powerperf "repro"
)

func main() {
	log.SetFlags(0)

	// A Study owns the calibrated sensor rig, the normalization
	// reference, and the measurement cache. Seed 42 makes every number
	// below reproducible.
	study, err := powerperf.NewStudy(42)
	if err != nil {
		log.Fatal(err)
	}

	// Measure a single benchmark on the stock i7 (45): for a SPEC
	// benchmark the harness performs the prescribed three executions,
	// logging chip power through the Hall-effect sensor at 50 Hz.
	bench, err := powerperf.BenchmarkByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	i7, err := powerperf.ProcessorByName(powerperf.I7)
	if err != nil {
		log.Fatal(err)
	}
	cp := powerperf.ConfiguredProcessor{Proc: i7, Config: i7.Stock()}
	m, err := study.Measure(bench, cp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s:\n", bench.Name, cp)
	fmt.Printf("  %d runs, %.1f s, %.1f W, %.0f J\n",
		len(m.Runs), m.Seconds, m.Watts, m.EnergyJ)
	fmt.Printf("  95%% CIs: time ±%.2f%%, power ±%.2f%%\n",
		m.TimeCI.Relative()*100, m.PowerCI.Relative()*100)

	// Aggregate the full 61-benchmark workload on that configuration,
	// normalized to the four-processor reference and equally weighting
	// the four workload groups (Section 2.6 of the paper).
	res, err := study.MeasureConfig(cp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s across all 61 benchmarks:\n", cp)
	for _, g := range powerperf.Groups() {
		gr := res.Groups[int(g)]
		fmt.Printf("  %-22s perf %.2fx ref, %.1f W\n", g, gr.Perf, gr.Watts)
	}
	fmt.Printf("  weighted average: perf %.2fx, %.1f W, energy %.3fx ref\n",
		res.PerfW, res.WattsW, res.EnergyW)
}
