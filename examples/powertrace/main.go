// Power trace: watch chip power evolve over a run, the way the paper's
// 50 Hz logger saw it.
//
// The paper computes one average per run, but its call for exposed
// on-chip power meters is really about what the *trace* shows: phase
// structure, serial-versus-parallel transitions, and how differently
// native and managed workloads exercise the chip. This example logs a
// few representative benchmarks on the stock i7 and renders their
// traces, phases, and per-structure breakdowns.
package main

import (
	"fmt"
	"log"

	powerperf "repro"
	"repro/internal/jvm"
	"repro/internal/native"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	i7, err := powerperf.ProcessorByName(powerperf.I7)
	if err != nil {
		log.Fatal(err)
	}
	machine, err := sim.NewMachine(i7, i7.Stock())
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"povray", "mcf", "fluidanimate", "eclipse"} {
		b, err := powerperf.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		var spec sim.ExecSpec
		if b.Managed() {
			plan, err := jvm.NewPlan(b, machine.Cfg.Contexts())
			if err != nil {
				log.Fatal(err)
			}
			spec = plan.Specs[plan.MeasuredIndex()]
		} else {
			if spec, err = native.Spec(b, machine.Cfg.Contexts()); err != nil {
				log.Fatal(err)
			}
		}

		tr := &trace.Trace{}
		res, err := machine.Run(spec, 7, tr.Append)
		if err != nil {
			log.Fatal(err)
		}
		st, err := tr.Stats()
		if err != nil {
			log.Fatal(err)
		}
		line, err := tr.Sparkline(64)
		if err != nil {
			log.Fatal(err)
		}
		phases, err := tr.Phases(0.18, res.Seconds/20)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s (%s) on %s\n", b.Name, b.Group, machine.Proc.Name)
		fmt.Printf("  |%s|\n", line)
		fmt.Printf("  %.1fs, avg %.1f W (min %.1f, max %.1f, swing %.0f%%), %d phases\n",
			res.Seconds, st.AvgWatts, st.MinWatts, st.MaxWatts, st.Swing*100, len(phases))
		bd := res.Breakdown
		fmt.Printf("  structure: uncore %.1f W, core dynamic %.1f W, leakage %.1f W, idle/gated %.1f W\n",
			bd.UncoreWatts, bd.CoreDynWatts, bd.CoreStaticWatts, bd.GatedWatts)
		if len(phases) > 1 {
			fmt.Printf("  phases:")
			for _, ph := range phases {
				fmt.Printf(" [%.1f-%.1fs @ %.1fW]", ph.StartS, ph.EndS, ph.AvgWatts)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("Note eclipse's two-level trace: the Amdahl-serial portion runs one")
	fmt.Println("core (plus warm service cores) while the parallel portion lights up")
	fmt.Println("all four — structure a single per-run average cannot show.")
}
