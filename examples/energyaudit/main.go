// Energy audit: pick the most energy-efficient hardware configuration
// for a specific deployment's workload mix.
//
// The scenario is the one the paper's Pareto analysis motivates: a team
// runs a managed, scalable service (think the DaCapo 9.12 server
// workloads) and wants to know which 45nm design point minimizes energy
// while meeting a performance floor. The answer differs sharply from the
// SPEC-only answer — Workload Finding 4: energy-efficient architecture
// design is very sensitive to workload.
package main

import (
	"fmt"
	"log"

	powerperf "repro"
	"repro/internal/pareto"
)

func main() {
	log.SetFlags(0)

	study, err := powerperf.NewStudy(42)
	if err != nil {
		log.Fatal(err)
	}

	// The deployment's performance floor, in reference units.
	const perfFloor = 2.0

	audit := func(g powerperf.Group) (best pareto.Point, frontier []pareto.Point, err error) {
		var points []pareto.Point
		for _, cp := range powerperf.ConfigSpace45nm() {
			res, err := study.MeasureConfig(cp)
			if err != nil {
				return pareto.Point{}, nil, err
			}
			gr := res.Groups[int(g)]
			points = append(points, pareto.Point{Label: cp.String(), Perf: gr.Perf, Energy: gr.Energy})
		}
		frontier = pareto.Frontier(points)
		found := false
		for _, p := range frontier {
			if p.Perf < perfFloor {
				continue
			}
			if !found || p.Energy < best.Energy {
				best, found = p, true
			}
		}
		if !found {
			return pareto.Point{}, frontier, fmt.Errorf("no configuration meets perf >= %.1f", perfFloor)
		}
		return best, frontier, nil
	}

	for _, g := range []powerperf.Group{powerperf.JavaScalable, powerperf.NativeNonScalable} {
		best, frontier, err := audit(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Workload: %s (perf floor %.1fx reference)\n", g, perfFloor)
		fmt.Printf("  Pareto frontier (%d of 29 configurations):\n", len(frontier))
		for _, p := range frontier {
			marker := "  "
			if p.Label == best.Label {
				marker = "->"
			}
			fmt.Printf("  %s %-28s perf %5.2f  energy %.3f\n", marker, p.Label, p.Perf, p.Energy)
		}
		fmt.Printf("  recommended: %s\n\n", best.Label)
	}

	fmt.Println("Note how the frontiers differ: tuning a design on SPEC CPU alone")
	fmt.Println("(Native Non-scalable) would misconfigure the managed service.")
}
