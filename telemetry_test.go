package powerperf

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/harness"
)

// renderCSVs measures a 6-configuration slice of the seed-42 grid and
// returns both CSV streams, optionally under a tracer.
func renderCSVs(t *testing.T, traced bool) (measurements, aggregates []byte, spanCount int) {
	t.Helper()
	s, err := NewStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	if traced {
		tr = NewTracer(1 << 16)
		s.SetTracer(tr)
	}
	cps := ConfigSpace()[:6]
	var mBuf, aBuf bytes.Buffer
	if err := s.WriteMeasurementsCSV(context.Background(), &mBuf, cps, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAggregatesCSV(context.Background(), &aBuf, cps, 0); err != nil {
		t.Fatal(err)
	}
	if tr != nil {
		spanCount = len(tr.Snapshot())
	}
	return mBuf.Bytes(), aBuf.Bytes(), spanCount
}

// TestCSVBytesUnchangedByTracing is the determinism golden test behind
// the telemetry subsystem's core contract: tracing observes the
// pipeline, it never touches it. The same seed must render
// byte-identical CSV streams with the tracer attached and detached —
// while the traced run actually records spans, so the equality is not
// vacuous.
func TestCSVBytesUnchangedByTracing(t *testing.T) {
	plainM, plainA, _ := renderCSVs(t, false)
	tracedM, tracedA, spans := renderCSVs(t, true)

	if spans == 0 {
		t.Fatal("traced run recorded no spans — the comparison proves nothing")
	}
	if !bytes.Equal(plainM, tracedM) {
		t.Fatalf("measurements.csv differs with tracing on (%d vs %d bytes)", len(plainM), len(tracedM))
	}
	if !bytes.Equal(plainA, tracedA) {
		t.Fatalf("aggregates.csv differs with tracing on (%d vs %d bytes)", len(plainA), len(tracedA))
	}
}

// BenchmarkMeasureBatchTraced quantifies the tracing overhead gate
// (<5% against the untraced path, recorded in BENCH_pr4.json): a cold
// harness measuring a 2-configuration grid with per-batch and per-cell
// spans enabled.
func BenchmarkMeasureBatchTraced(b *testing.B) {
	benchmarkMeasureBatch(b, true)
}

// BenchmarkMeasureBatchUntraced is the control for the overhead gate.
func BenchmarkMeasureBatchUntraced(b *testing.B) {
	benchmarkMeasureBatch(b, false)
}

func benchmarkMeasureBatch(b *testing.B, traced bool) {
	jobs := harness.GridJobs(ConfigSpace()[:2], nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := harness.New(42)
		if err != nil {
			b.Fatal(err)
		}
		if traced {
			h.SetTracer(NewTracer(len(jobs) + 8))
		}
		if _, err := h.MeasureBatch(context.Background(), jobs, 0); err != nil {
			b.Fatal(err)
		}
	}
}
