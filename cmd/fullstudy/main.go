// Command fullstudy regenerates the study's complete dataset — every
// benchmark on every one of the 45 processor configurations — and writes
// it as CSV, the analog of the paper's companion dataset in the ACM
// Digital Library ("We make all our data publicly available to encourage
// others to use it and perform further analysis").
//
// Usage:
//
//	fullstudy [-seed N] [-out DIR] [-backends URL,URL,...] [-sched steal|shard]
//	          [-batch-size N] [-trace-out trace.json]
//
// With -backends the study runs remotely against a fleet of powerperfd
// instances. The default scheduler (-sched steal) is pull-based work
// stealing: cells are sliced into leases that backends pull as fast as
// they finish, results stream back cell-by-cell over NDJSON, and a
// lease that stalls — straggler or death — is stolen by an idle backend
// with the first result per cell winning. -sched shard selects the
// rendezvous coordinator instead: cells shard by hash (maximizing
// backend cache reuse across runs), stragglers hedge to a second
// backend, failures retry and fail over. Either way the CSVs are
// byte-identical to a local run, because every cell is a pure function
// of its identity no matter which backend computes it.
//
// With -trace-out the run records spans of every batch, cell, and (in
// cluster mode) routing/retry/hedge/failover decision, and writes them
// as Chrome trace-event JSON — load the file in chrome://tracing or
// Perfetto for a flame view of where the study spent its time. Tracing
// never changes the dataset's bytes.
//
// Writes:
//
//	DIR/measurements.csv  per (configuration, benchmark) raw results
//	DIR/aggregates.csv    per configuration group-weighted aggregates
//	DIR/MANIFEST.txt      provenance: seed, configuration count, columns
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	powerperf "repro"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/profiling"
	"repro/internal/telemetry"
)

var logger = telemetry.Logger("fullstudy")

func fatal(msg string, err error) {
	logger.Error(msg, slog.Any("error", err))
	os.Exit(1)
}

func main() {
	seed := flag.Int64("seed", 42, "study seed")
	out := flag.String("out", "dataset", "output directory")
	backends := flag.String("backends", "", "comma-separated powerperfd base URLs; when set, measure remotely")
	sched := flag.String("sched", "steal", "remote scheduler: steal (pull-based work stealing, streamed results) or shard (rendezvous hashing, hedged batches)")
	hedgeDelay := flag.Duration("hedge-delay", 400*time.Millisecond, "duplicate a straggling batch to a second backend after this long (-sched shard; 0 disables)")
	leaseExpiry := flag.Duration("lease-expiry", 2*time.Second, "steal a lease after it delivers no cell for this long (-sched steal)")
	batchSize := flag.Int("batch-size", 0, "cells per scheduling block (local), per lease (-sched steal), or per measure request (-sched shard); 0 = automatic. Tune with `powerperf tune`")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run's spans to this file")
	traceBuffer := flag.Int("trace-buffer", 65536, "completed spans retained for -trace-out")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// A negative batch size would silently fall back to the automatic
	// block (local) or the 61-cell default (cluster) — reject it so a
	// typo'd flag fails loudly instead of changing the schedule.
	if *batchSize < 0 {
		fatal("flags", fmt.Errorf("-batch-size must be >= 0 (0 = automatic), got %d", *batchSize))
	}

	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal("profiling", err)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			fatal("profiling", err)
		}
	}()

	// Interrupt aborts the grid at measurement-cell granularity.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.NewTracer(*traceBuffer)
	}

	start := time.Now()
	measurements, aggregates, err := streamers(ctx, *seed, *backends, *sched, *hedgeDelay, *leaseExpiry, *batchSize, tracer)
	if err != nil {
		fatal("setup", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal("output directory", err)
	}

	space := powerperf.ConfigSpace()
	logger.Info("measuring", slog.Int("configurations", len(space)), slog.Int("benchmarks", 61))
	if err := writeCSV(ctx, filepath.Join(*out, "measurements.csv"), measurements); err != nil {
		fatal("measurements.csv", err)
	}
	if err := writeCSV(ctx, filepath.Join(*out, "aggregates.csv"), aggregates); err != nil {
		fatal("aggregates.csv", err)
	}
	manifest := fmt.Sprintf(
		"powerperf full study dataset\nseed: %d\nconfigurations: %d\nbenchmarks: %d\nrows: %d measurements, %d aggregates\ngenerated in: %s\n",
		*seed, len(space), 61, len(space)*61, len(space)*5, time.Since(start).Round(time.Millisecond))
	if err := os.WriteFile(filepath.Join(*out, "MANIFEST.txt"), []byte(manifest), 0o644); err != nil {
		fatal("MANIFEST.txt", err)
	}
	if tracer != nil {
		if err := writeTrace(*traceOut, tracer); err != nil {
			fatal("trace export", err)
		}
		logger.Info("wrote trace", slog.String("path", *traceOut),
			slog.Int("spans", len(tracer.Snapshot())))
	}
	logger.Info("wrote dataset", slog.String("dir", *out),
		slog.Duration("elapsed", time.Since(start).Round(time.Millisecond)))
}

type streamFunc = func(ctx context.Context, w io.Writer) error

// remoteSource is what both remote schedulers (work-stealing and
// rendezvous) provide on top of the measuring Source contract.
type remoteSource interface {
	experiments.Source
	Reference(context.Context, int) (*harness.Reference, error)
	Backends() []string
	StartProber(context.Context, time.Duration)
}

// streamers builds the two CSV writers, local (in-process harness) or
// remote (a scheduler over powerperfd backends). All paths produce
// byte-identical files at the same seed, traced or not, at any batch
// or lease size — scheduling is pure plumbing under the determinism
// contract.
func streamers(ctx context.Context, seed int64, backends, sched string, hedgeDelay, leaseExpiry time.Duration, batchSize int, tracer *telemetry.Tracer) (measurements, aggregates streamFunc, err error) {
	if backends == "" {
		study, err := powerperf.NewStudy(seed)
		if err != nil {
			return nil, nil, err
		}
		study.SetTracer(tracer)
		if batchSize > 0 {
			if err := study.SetBlockSize(batchSize); err != nil {
				return nil, nil, err
			}
		}
		return func(ctx context.Context, w io.Writer) error {
				return study.WriteMeasurementsCSV(ctx, w, nil, 0)
			}, func(ctx context.Context, w io.Writer) error {
				return study.WriteAggregatesCSV(ctx, w, nil, 0)
			}, nil
	}

	var urls []string
	for _, u := range strings.Split(backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	var src remoteSource
	var logStats func()
	switch sched {
	case "steal":
		sc, err := cluster.NewScheduler(urls, cluster.SchedulerOptions{
			Seed: &seed, LeaseCells: batchSize, LeaseExpiry: leaseExpiry, Tracer: tracer})
		if err != nil {
			return nil, nil, err
		}
		src = sc
		logStats = func() {
			st := sc.Stats()
			logger.Info("scheduler stats",
				slog.Int64("leases", st.LeasesIssued), slog.Int64("steals", st.Steals),
				slog.Int64("redispatches", st.Redispatches), slog.Int64("cells", st.CellsMeasured),
				slog.Int64("cells_discarded", st.CellsDiscarded),
				slog.Int64("truncations", st.StreamTruncations),
				slog.Int64("dispatch_failures", st.DispatchFailures),
				slog.Int64("breaker_opens", st.BreakerOpens))
			logBackends(st.Backends)
		}
	case "shard":
		cl, err := cluster.New(urls, cluster.Options{Seed: &seed, HedgeDelay: hedgeDelay, BatchSize: batchSize, Tracer: tracer})
		if err != nil {
			return nil, nil, err
		}
		src = cl
		logStats = func() {
			st := cl.Stats()
			logger.Info("cluster stats",
				slog.Int64("batches", st.BatchesSent), slog.Int64("cells", st.CellsMeasured),
				slog.Int64("retries", st.Retries), slog.Int64("hedges_fired", st.HedgesFired),
				slog.Int64("hedge_wins", st.HedgeWins), slog.Int64("failovers", st.Failovers),
				slog.Int64("breaker_opens", st.BreakerOpens))
			logBackends(st.Backends)
		}
	default:
		return nil, nil, fmt.Errorf("unknown -sched %q (want steal or shard)", sched)
	}
	src.StartProber(ctx, 2*time.Second)
	logger.Info("measuring through backends", slog.String("sched", sched),
		slog.Int("count", len(src.Backends())),
		slog.String("backends", strings.Join(src.Backends(), ", ")))
	ref, err := src.Reference(ctx, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("building normalization reference: %w", err)
	}
	return func(ctx context.Context, w io.Writer) error {
			err := experiments.StreamMeasurementsCSVFrom(ctx, src, ref, nil, w, 0)
			logStats()
			return err
		}, func(ctx context.Context, w io.Writer) error {
			err := experiments.StreamAggregatesCSVFrom(ctx, src, ref, nil, w, 0)
			logStats()
			return err
		}, nil
}

// logBackends logs each backend's request count and latency quantiles,
// shared by both schedulers' stat dumps.
func logBackends(backends []cluster.BackendStats) {
	for _, be := range backends {
		logger.Info("backend latency", slog.String("backend", be.URL),
			slog.Int64("requests", be.Requests), slog.Float64("p50_ms", be.P50Ms),
			slog.Float64("p90_ms", be.P90Ms), slog.Float64("p99_ms", be.P99Ms))
	}
}

func writeCSV(ctx context.Context, path string, stream streamFunc) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fd.Close()
	if err := stream(ctx, fd); err != nil {
		return err
	}
	return fd.Close()
}

func writeTrace(path string, tracer *telemetry.Tracer) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fd.Close()
	if err := tracer.WriteChromeTrace(fd, 0); err != nil {
		return err
	}
	return fd.Close()
}
