// Command fullstudy regenerates the study's complete dataset — every
// benchmark on every one of the 45 processor configurations — and writes
// it as CSV, the analog of the paper's companion dataset in the ACM
// Digital Library ("We make all our data publicly available to encourage
// others to use it and perform further analysis").
//
// Usage:
//
//	fullstudy [-seed N] [-out DIR]
//
// Writes:
//
//	DIR/measurements.csv  per (configuration, benchmark) raw results
//	DIR/aggregates.csv    per configuration group-weighted aggregates
//	DIR/MANIFEST.txt      provenance: seed, configuration count, columns
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	powerperf "repro"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fullstudy: ")
	seed := flag.Int64("seed", 42, "study seed")
	out := flag.String("out", "dataset", "output directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			log.Fatal(err)
		}
	}()

	start := time.Now()
	study, err := powerperf.NewStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	space := powerperf.ConfigSpace()
	ref := study.Reference()

	// Pre-warm the measurement cache across a worker pool; parallel and
	// serial execution are numerically identical (every run seeds its
	// own noise stream), so this is purely a wall-clock optimization.
	log.Printf("measuring %d configurations x 61 benchmarks in parallel...", len(space))
	if _, err := study.MeasureGrid(space, nil, 0); err != nil {
		log.Fatal(err)
	}

	measurements := report.NewTable(
		"configuration", "benchmark", "suite", "group",
		"seconds", "watts", "energy_j",
		"perf_norm", "energy_norm",
		"time_ci_rel", "power_ci_rel", "runs",
		"cpi", "llc_mpki", "dtlb_mpki", "service_frac")
	aggregates := report.NewTable(
		"configuration", "group", "perf_norm", "watts", "energy_norm", "benchmarks")

	for i, cp := range space {
		log.Printf("[%2d/%d] %s", i+1, len(space), cp)
		for _, b := range workload.All() {
			m, err := study.Measure(b, cp)
			if err != nil {
				log.Fatal(err)
			}
			n, err := ref.Normalize(m)
			if err != nil {
				log.Fatal(err)
			}
			measurements.AddRow(
				cp.String(), b.Name, string(b.Suite), b.Group.String(),
				f(m.Seconds), f(m.Watts), f(m.EnergyJ),
				f(n.Perf), f(n.Energy),
				f(m.TimeCI.Relative()), f(m.PowerCI.Relative()),
				fmt.Sprintf("%d", len(m.Runs)),
				f(m.Counters.CPI()), f(m.Counters.LLCMPKI()),
				f(m.Counters.DTLBMPKI()), f(m.Counters.ServiceFraction()))
		}
		res, err := study.MeasureConfig(cp)
		if err != nil {
			log.Fatal(err)
		}
		for _, g := range workload.Groups() {
			gr := res.Groups[int(g)]
			aggregates.AddRow(cp.String(), g.String(),
				f(gr.Perf), f(gr.Watts), f(gr.Energy),
				fmt.Sprintf("%d", gr.N))
		}
		aggregates.AddRow(cp.String(), "Average",
			f(res.PerfW), f(res.WattsW), f(res.EnergyW), "61")
	}

	if err := writeCSV(filepath.Join(*out, "measurements.csv"), measurements); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(filepath.Join(*out, "aggregates.csv"), aggregates); err != nil {
		log.Fatal(err)
	}
	manifest := fmt.Sprintf(
		"powerperf full study dataset\nseed: %d\nconfigurations: %d\nbenchmarks: %d\nrows: %d measurements, %d aggregates\ngenerated in: %s\n",
		*seed, len(space), 61, len(space)*61, len(space)*5, time.Since(start).Round(time.Millisecond))
	if err := os.WriteFile(filepath.Join(*out, "MANIFEST.txt"), []byte(manifest), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s in %s", *out, time.Since(start).Round(time.Millisecond))
}

func f(v float64) string { return fmt.Sprintf("%.6g", v) }

func writeCSV(path string, tbl *report.Table) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fd.Close()
	if err := tbl.WriteCSV(fd); err != nil {
		return err
	}
	return fd.Close()
}
