// Command fullstudy regenerates the study's complete dataset — every
// benchmark on every one of the 45 processor configurations — and writes
// it as CSV, the analog of the paper's companion dataset in the ACM
// Digital Library ("We make all our data publicly available to encourage
// others to use it and perform further analysis").
//
// Usage:
//
//	fullstudy [-seed N] [-out DIR] [-backends URL,URL,...]
//
// With -backends the study runs remotely against a fleet of powerperfd
// instances through the cluster coordinator: cells shard across the
// backends by rendezvous hash, stragglers hedge to a second backend,
// failures retry and fail over — and the CSVs are byte-identical to a
// local run, because every cell is a pure function of its identity no
// matter which backend computes it.
//
// Writes:
//
//	DIR/measurements.csv  per (configuration, benchmark) raw results
//	DIR/aggregates.csv    per configuration group-weighted aggregates
//	DIR/MANIFEST.txt      provenance: seed, configuration count, columns
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	powerperf "repro"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/profiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fullstudy: ")
	seed := flag.Int64("seed", 42, "study seed")
	out := flag.String("out", "dataset", "output directory")
	backends := flag.String("backends", "", "comma-separated powerperfd base URLs; when set, measure remotely")
	hedgeDelay := flag.Duration("hedge-delay", 400*time.Millisecond, "duplicate a straggling batch to a second backend after this long (cluster mode; 0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			log.Fatal(err)
		}
	}()

	// Interrupt aborts the grid at measurement-cell granularity.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	measurements, aggregates, err := streamers(ctx, *seed, *backends, *hedgeDelay)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	space := powerperf.ConfigSpace()
	log.Printf("measuring %d configurations x 61 benchmarks in parallel...", len(space))
	if err := writeCSV(ctx, filepath.Join(*out, "measurements.csv"), measurements); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(ctx, filepath.Join(*out, "aggregates.csv"), aggregates); err != nil {
		log.Fatal(err)
	}
	manifest := fmt.Sprintf(
		"powerperf full study dataset\nseed: %d\nconfigurations: %d\nbenchmarks: %d\nrows: %d measurements, %d aggregates\ngenerated in: %s\n",
		*seed, len(space), 61, len(space)*61, len(space)*5, time.Since(start).Round(time.Millisecond))
	if err := os.WriteFile(filepath.Join(*out, "MANIFEST.txt"), []byte(manifest), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s in %s", *out, time.Since(start).Round(time.Millisecond))
}

type streamFunc = func(ctx context.Context, w io.Writer) error

// streamers builds the two CSV writers, local (in-process harness) or
// remote (cluster coordinator over powerperfd backends). Both produce
// byte-identical files at the same seed.
func streamers(ctx context.Context, seed int64, backends string, hedgeDelay time.Duration) (measurements, aggregates streamFunc, err error) {
	if backends == "" {
		study, err := powerperf.NewStudy(seed)
		if err != nil {
			return nil, nil, err
		}
		return func(ctx context.Context, w io.Writer) error {
				return study.WriteMeasurementsCSV(ctx, w, nil, 0)
			}, func(ctx context.Context, w io.Writer) error {
				return study.WriteAggregatesCSV(ctx, w, nil, 0)
			}, nil
	}

	var urls []string
	for _, u := range strings.Split(backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	cl, err := cluster.New(urls, cluster.Options{Seed: &seed, HedgeDelay: hedgeDelay})
	if err != nil {
		return nil, nil, err
	}
	cl.StartProber(ctx, 2*time.Second)
	log.Printf("measuring through %d backends: %s", len(cl.Backends()), strings.Join(cl.Backends(), ", "))
	ref, err := cl.Reference(ctx, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("building normalization reference: %w", err)
	}
	logStats := func() {
		st := cl.Stats()
		log.Printf("cluster: %d batches, %d cells, %d retries, %d hedges (%d won), %d failovers, %d breaker opens",
			st.BatchesSent, st.CellsMeasured, st.Retries, st.HedgesFired, st.HedgeWins, st.Failovers, st.BreakerOpens)
	}
	return func(ctx context.Context, w io.Writer) error {
			err := experiments.StreamMeasurementsCSVFrom(ctx, cl, ref, nil, w, 0)
			logStats()
			return err
		}, func(ctx context.Context, w io.Writer) error {
			err := experiments.StreamAggregatesCSVFrom(ctx, cl, ref, nil, w, 0)
			logStats()
			return err
		}, nil
}

func writeCSV(ctx context.Context, path string, stream streamFunc) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fd.Close()
	if err := stream(ctx, fd); err != nil {
		return err
	}
	return fd.Close()
}
