// Command fullstudy regenerates the study's complete dataset — every
// benchmark on every one of the 45 processor configurations — and writes
// it as CSV, the analog of the paper's companion dataset in the ACM
// Digital Library ("We make all our data publicly available to encourage
// others to use it and perform further analysis").
//
// Usage:
//
//	fullstudy [-seed N] [-out DIR]
//
// Writes:
//
//	DIR/measurements.csv  per (configuration, benchmark) raw results
//	DIR/aggregates.csv    per configuration group-weighted aggregates
//	DIR/MANIFEST.txt      provenance: seed, configuration count, columns
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	powerperf "repro"
	"repro/internal/profiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fullstudy: ")
	seed := flag.Int64("seed", 42, "study seed")
	out := flag.String("out", "dataset", "output directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			log.Fatal(err)
		}
	}()

	// Interrupt aborts the grid at measurement-cell granularity.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	study, err := powerperf.NewStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	space := powerperf.ConfigSpace()
	log.Printf("measuring %d configurations x 61 benchmarks in parallel...", len(space))
	if err := writeCSV(ctx, filepath.Join(*out, "measurements.csv"), study.WriteMeasurementsCSV); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(ctx, filepath.Join(*out, "aggregates.csv"), study.WriteAggregatesCSV); err != nil {
		log.Fatal(err)
	}
	manifest := fmt.Sprintf(
		"powerperf full study dataset\nseed: %d\nconfigurations: %d\nbenchmarks: %d\nrows: %d measurements, %d aggregates\ngenerated in: %s\n",
		*seed, len(space), 61, len(space)*61, len(space)*5, time.Since(start).Round(time.Millisecond))
	if err := os.WriteFile(filepath.Join(*out, "MANIFEST.txt"), []byte(manifest), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s in %s", *out, time.Since(start).Round(time.Millisecond))
}

type streamFunc = func(ctx context.Context, w io.Writer, cps []powerperf.ConfiguredProcessor, workers int) error

func writeCSV(ctx context.Context, path string, stream streamFunc) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fd.Close()
	if err := stream(ctx, fd, nil, 0); err != nil {
		return err
	}
	return fd.Close()
}
