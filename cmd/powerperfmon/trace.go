package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/monitor"
	"repro/internal/telemetry"
	"repro/internal/traceanalytics"
)

// runTrace implements `powerperfmon trace`: harvest every backend's
// span retention, stitch cross-process traces, and print the fleet
// view — stage shares of critical-path time, the slowest assembled
// traces with their dominant stage, and the per-operation RED table.
// -trace renders one trace's full waterfall and critical path instead;
// -json emits the same data for scripts.
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	backends := fs.String("backends", "", "comma-separated backend base URLs (required)")
	traceID := fs.String("trace", "", "render this trace id's waterfall instead of the fleet summary")
	seed := fs.String("seed", "", "only traces of studies run at this seed")
	op := fs.String("op", "", "only traces containing a span with this name")
	minMS := fs.Float64("min-ms", 0, "only traces at least this many ms of wall time")
	top := fs.Int("top", 10, "traces to list in the summary")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	fs.Parse(args)

	var targets []string
	for _, t := range strings.Split(*backends, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "powerperfmon trace: -backends is required (comma-separated base URLs)")
		os.Exit(2)
	}

	mon := monitor.New(targets, monitor.Options{Interval: time.Second})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mon.HarvestTraces(ctx)
	eng := mon.TraceAnalytics()

	if *traceID != "" {
		id, err := telemetry.ParseID(*traceID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "powerperfmon trace: bad -trace id:", err)
			os.Exit(2)
		}
		tr := eng.Trace(telemetry.TraceID(id))
		if tr == nil {
			fmt.Fprintln(os.Stderr, "powerperfmon trace: trace not assembled:", *traceID)
			os.Exit(1)
		}
		if *jsonOut {
			emitJSON(tr)
			return
		}
		printWaterfall(tr)
		return
	}

	query := traceanalytics.Query{Seed: *seed, Op: *op, Limit: *top}
	if *minMS > 0 {
		query.MinDur = time.Duration(*minMS * 1e6)
	}
	traces := eng.Search(query)
	sum := eng.Summary(*top)

	if *jsonOut {
		digests := make([]traceanalytics.Digest, 0, len(traces))
		for _, tr := range traces {
			digests = append(digests, tr.Digest())
		}
		emitJSON(struct {
			Summary traceanalytics.Summary  `json:"summary"`
			Traces  []traceanalytics.Digest `json:"traces"`
		}{sum, digests})
		return
	}

	st := sum.Stats
	fmt.Printf("fleet: %d traces assembled from %d spans (%d held, %d duplicate scrapes, %d evicted)\n",
		st.Traces, st.SpansSeen, st.SpansHeld, st.Duplicates, st.Evicted)
	if len(sum.StageShares) > 0 {
		fmt.Println("critical-path stage shares:")
		for _, sh := range sum.StageShares {
			fmt.Printf("  %-18s %5.1f%%  %s\n", sh.Stage, sh.Frac*100, bar(sh.Frac, 40))
		}
	}
	if len(traces) > 0 {
		fmt.Println("slowest traces:")
		for _, tr := range traces {
			d := tr.Digest()
			line := fmt.Sprintf("  %s  %8.2fms  %-28s spans=%-4d sources=%s",
				d.ID, d.WallMS, d.Root, d.SpanCount, strings.Join(d.Sources, ","))
			if d.TopStage != "" {
				line += fmt.Sprintf("  top=%s %.0f%%", d.TopStage, d.TopStageFrac*100)
			}
			fmt.Println(line)
		}
	}
	if len(sum.RED) > 0 {
		fmt.Println("RED (per operation, per backend):")
		red := sum.RED
		sort.SliceStable(red, func(i, j int) bool { return red[i].Count > red[j].Count })
		for i, r := range red {
			if i >= 2*(*top) {
				fmt.Printf("  ... %d more rows (use -json for all)\n", len(red)-i)
				break
			}
			fmt.Printf("  %-26s %-28s n=%-6d err=%-4d %6.1f/s  p50=%.2fms p90=%.2fms p99=%.2fms\n",
				r.Name, r.Backend, r.Count, r.Errors, r.RatePerSec, r.P50MS, r.P90MS, r.P99MS)
		}
	}
}

// printWaterfall renders one assembled trace: the span tree with
// timeline bars, then the critical path and its stage attribution.
func printWaterfall(tr *traceanalytics.Trace) {
	fmt.Printf("trace %s  root=%s  wall=%.2fms  spans=%d  sources=%s",
		tr.ID, tr.Root, tr.WallMS, tr.SpanCount, strings.Join(tr.Sources, ","))
	if tr.Seed != "" {
		fmt.Printf("  seed=%s", tr.Seed)
	}
	if tr.Truncated {
		fmt.Printf("  (truncated)")
	}
	fmt.Println()
	wall := tr.WallMS
	if wall <= 0 {
		wall = 1
	}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		mark := " "
		if sp.OnCritical {
			mark = "*"
		}
		fmt.Printf("%s %9.2fms %s%s [%s %s] %s\n",
			mark, sp.DurMS, strings.Repeat("  ", sp.Depth), sp.Name,
			sp.Source, sp.Stage, timeline(sp.StartOffsetMS/wall, sp.DurMS/wall, 32))
	}
	fmt.Println("critical path (self time, timeline order):")
	for _, seg := range tr.Critical {
		fmt.Printf("  +%9.2fms %8.2fms  %-26s [%s]\n", seg.OffsetMS, seg.DurMS, seg.Name, seg.Stage)
	}
	fmt.Println("stage attribution:")
	for _, sh := range tr.Stages {
		fmt.Printf("  %-18s %8.2fms %5.1f%%  %s\n", sh.Stage, sh.MS, sh.Frac*100, bar(sh.Frac, 40))
	}
}

// bar renders frac of width cells as a unicode block bar.
func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

// timeline renders a span's [start, start+dur) window inside a
// fixed-width track, both as fractions of the trace wall time.
func timeline(startFrac, durFrac float64, width int) string {
	lo := int(startFrac * float64(width))
	hi := int((startFrac + durFrac) * float64(width))
	if hi <= lo {
		hi = lo + 1
	}
	if lo < 0 {
		lo = 0
	}
	if hi > width {
		hi = width
	}
	return strings.Repeat("·", lo) + strings.Repeat("█", hi-lo) + strings.Repeat("·", width-hi)
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "powerperfmon trace:", err)
		os.Exit(1)
	}
}
