package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/profiling"
	"repro/internal/telemetry"
)

// runProfile implements `powerperfmon profile`: harvest every backend's
// /debug/pprof endpoints twice (the pair is what makes allocation
// deltas and CPU busy fractions computable), then print a per-backend
// report — CPU busy, alloc rate, heap in use, and the top allocation
// regressors between the two captures — plus the fleet-merged alloc
// delta. -json emits the same report for scripts.
func runProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	backends := fs.String("backends", "", "comma-separated backend base URLs (required)")
	seconds := fs.Int("seconds", 5, "CPU sampling window per harvest, in seconds")
	gap := fs.Duration("gap", 2*time.Second, "pause between the two harvests (the alloc-delta window)")
	top := fs.Int("top", 5, "entries per top-N list")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	fs.Parse(args)

	var targets []string
	for _, t := range strings.Split(*backends, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "powerperfmon profile: -backends is required (comma-separated base URLs)")
		os.Exit(2)
	}

	fleet := profiling.NewFleet(profiling.FleetOptions{
		Backends:  targets,
		Seconds:   *seconds,
		UserAgent: "powerperfmon/" + telemetry.BuildInfo().UserAgentToken(),
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "harvest 1/2 (%ds CPU window per backend)...\n", *seconds)
	fleet.HarvestAll(ctx)
	select {
	case <-time.After(*gap):
	case <-ctx.Done():
		return
	}
	fmt.Fprintf(os.Stderr, "harvest 2/2...\n")
	fleet.HarvestAll(ctx)

	reports := fleet.Report(*top)
	merged := profiling.TopK(fleet.MergedAllocDelta(), *top)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(struct {
			Backends        []profiling.BackendReport `json:"backends"`
			FleetAllocDelta []profiling.Entry         `json:"fleet_alloc_delta,omitempty"`
		}{reports, merged}); err != nil {
			fmt.Fprintln(os.Stderr, "powerperfmon profile:", err)
			os.Exit(1)
		}
		return
	}

	for _, r := range reports {
		fmt.Printf("%s\n", r.Backend)
		if r.Err != "" {
			fmt.Printf("  ! %s\n", r.Err)
			continue
		}
		fmt.Printf("  cpu busy    %6.1f%%\n", r.CPUBusyFrac*100)
		fmt.Printf("  alloc rate  %8.2f MB/s\n", r.AllocPerSec/1e6)
		fmt.Printf("  heap inuse  %8.1f MB\n", float64(r.HeapInuse)/1e6)
		if len(r.TopCPU) > 0 {
			fmt.Println("  top cpu:")
			for _, e := range r.TopCPU {
				fmt.Printf("    %8.3fs  %s\n", float64(e.Value)/1e9, e.Name)
			}
		}
		if len(r.TopAllocDiff) > 0 {
			fmt.Println("  top alloc delta:")
			for _, e := range r.TopAllocDiff {
				fmt.Printf("    %+10.2f MB  %s\n", float64(e.Value)/1e6, e.Name)
			}
		}
	}
	if len(merged) > 0 {
		fmt.Println("fleet-merged alloc delta:")
		for _, e := range merged {
			fmt.Printf("  %+10.2f MB  %s\n", float64(e.Value)/1e6, e.Name)
		}
	}
}
