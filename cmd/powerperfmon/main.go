// Command powerperfmon watches a powerperfd fleet from the terminal:
// it runs the monitor's scrape federation loop against the named
// backends, evaluates the detector rules each sweep, and redraws a
// fleet summary — liveness, cache hit rate, queue pressure, fill
// latency, and every pending/firing/resolved alert.
//
// Usage:
//
//	powerperfmon -backends http://a:8722,http://b:8722 [-interval 5s]
//	             [-top 5] [-once] [-http :8723] [-log-level warn]
//	powerperfmon profile -backends URLS [-seconds 5] [-gap 2s] [-top 5] [-json]
//	powerperfmon trace -backends URLS [-trace ID] [-seed N] [-op NAME]
//	             [-min-ms X] [-top 10] [-json]
//
// -once runs a single sweep and prints the fleet snapshot as JSON to
// stdout (scripts and CI smoke tests consume this); otherwise the
// summary redraws in place every interval until interrupted. -http
// additionally serves GET /v1/alertz and GET /debug/dashboard from the
// same monitor, making the CLI a standalone monitoring sidecar.
//
// The profile subcommand harvests every backend's /debug/pprof
// endpoints twice and prints per-backend CPU busy, allocation rate,
// heap in use, and the top allocation regressors between the captures,
// plus the fleet-merged allocation delta.
//
// The trace subcommand harvests every backend's span retention,
// assembles cross-process traces, and prints critical-path stage
// shares, the slowest traces, and per-operation RED stats — or one
// trace's full waterfall with -trace.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/monitor"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "profile" {
		runProfile(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	backends := flag.String("backends", "", "comma-separated backend base URLs (required)")
	interval := flag.Duration("interval", 5*time.Second, "scrape-and-evaluate interval")
	top := flag.Int("top", 5, "slowest cells to show per backend (0 = hide)")
	once := flag.Bool("once", false, "one sweep, JSON snapshot to stdout, exit")
	httpAddr := flag.String("http", "", "also serve /v1/alertz and /debug/dashboard on this address")
	logLevel := flag.String("log-level", "warn", "minimum log level: debug, info, warn, error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "powerperfmon: bad -log-level:", err)
		os.Exit(2)
	}
	telemetry.SetLogLevel(level)

	var targets []string
	for _, t := range strings.Split(*backends, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "powerperfmon: -backends is required (comma-separated base URLs)")
		os.Exit(2)
	}

	mon := monitor.New(targets, monitor.Options{Interval: *interval, TopCells: topCells(*top)})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *once {
		mon.Sweep(ctx)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(mon.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "powerperfmon:", err)
			os.Exit(1)
		}
		return
	}

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /v1/alertz", mon.AlertzHandler())
		mux.Handle("GET /debug/dashboard", mon.DashboardHandler())
		go func() {
			if err := (&http.Server{Addr: *httpAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}).ListenAndServe(); err != nil {
				fmt.Fprintln(os.Stderr, "powerperfmon: http:", err)
			}
		}()
	}

	mon.Start(ctx)
	t := time.NewTicker(*interval)
	defer t.Stop()
	draw(mon, *top)
	for {
		select {
		case <-t.C:
			draw(mon, *top)
		case <-ctx.Done():
			fmt.Println()
			return
		}
	}
}

func topCells(top int) int {
	if top <= 0 {
		return -1 // disables the traces scrape entirely
	}
	return top
}

// draw clears the terminal and renders the fleet summary: one line per
// backend, then the alert list, then the slowest cells.
func draw(mon *monitor.Monitor, top int) {
	snap := mon.Snapshot()
	var b strings.Builder
	b.WriteString("\x1b[2J\x1b[H") // clear screen, home cursor
	fmt.Fprintf(&b, "powerperf fleet  %s  sweep #%d  (%d backends)\n\n",
		snap.Generated.Format("15:04:05"), snap.Sweeps, len(snap.Backends))

	w := 0
	for _, bs := range snap.Backends {
		if len(bs.URL) > w {
			w = len(bs.URL)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-8s %-9s %9s %9s %10s %9s\n",
		w, "BACKEND", "STATUS", "UPTIME", "HIT%", "QUEUE", "FILL(ms)", "SCRAPE")
	for _, bs := range snap.Backends {
		status := "up"
		switch {
		case !bs.Up:
			status = "DOWN"
		case !bs.ScrapeOK:
			status = "degraded"
		}
		fmt.Fprintf(&b, "%-*s  %-8s %-9s %8.1f%% %5.0f/%-4.0f %10.2f %7.1fms\n",
			w, bs.URL, status, fmt.Sprintf("%.0fs", bs.UptimeS),
			bs.HitRate*100, bs.QueueDepth, bs.QueueCap, bs.FillMeanMS, bs.ScrapeMS)
		if bs.Error != "" {
			fmt.Fprintf(&b, "%-*s  ! %s\n", w, "", bs.Error)
		}
	}

	b.WriteString("\nALERTS\n")
	if len(snap.Alerts) == 0 {
		b.WriteString("  none: every rule quiet\n")
	}
	for _, a := range snap.Alerts {
		fmt.Fprintf(&b, "  [%-8s] %-28s %-24s %s\n", a.State, a.Rule, a.Backend, a.Reason)
	}

	if top > 0 {
		type slow struct {
			backend string
			cell    monitor.CellLatency
		}
		var cells []slow
		for _, bs := range snap.Backends {
			for _, c := range bs.TopCells {
				cells = append(cells, slow{bs.URL, c})
			}
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].cell.Ms > cells[j].cell.Ms })
		if len(cells) > top {
			cells = cells[:top]
		}
		if len(cells) > 0 {
			b.WriteString("\nSLOWEST CELLS\n")
			for _, c := range cells {
				fmt.Fprintf(&b, "  %8.2fms  %-12s %-16s %s\n", c.cell.Ms, c.cell.Benchmark, c.cell.Processor, c.backend)
			}
		}
	}
	os.Stdout.WriteString(b.String())
}
