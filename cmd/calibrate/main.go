// Command calibrate reproduces Table 4 (average performance and power per
// processor and workload group) and prints it next to the paper's
// published values, as a model-calibration aid and a quick smoke test of
// the whole pipeline.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/proc"
)

// paper holds Table 4's published weighted averages for comparison.
var paper = map[string][2]float64{ // name -> {perfW, wattsW}
	proc.Pentium4Name: {0.82, 44.1},
	proc.Core2D65Name: {2.04, 26.4},
	proc.Core2Q65Name: {2.70, 58.1},
	proc.I7Name:       {4.46, 47.0},
	proc.Atom45Name:   {0.52, 2.4},
	proc.Core2D45Name: {2.54, 20.8},
	proc.AtomD45Name:  {0.74, 4.7},
	proc.I5Name:       {3.80, 25.7},
}

var paperGroups = map[string][8]float64{ // perf NN,NS,JN,JS then watts NN,NS,JN,JS
	proc.Pentium4Name: {0.91, 0.79, 0.80, 0.75, 42.1, 43.5, 45.1, 45.7},
	proc.Core2D65Name: {2.02, 2.10, 1.99, 2.04, 24.3, 26.6, 26.2, 28.5},
	proc.Core2Q65Name: {2.04, 3.62, 2.04, 3.09, 50.7, 61.7, 55.3, 64.6},
	proc.I7Name:       {3.11, 6.25, 3.00, 5.49, 27.2, 60.4, 37.5, 62.8},
	proc.Atom45Name:   {0.49, 0.52, 0.53, 0.52, 2.3, 2.5, 2.3, 2.4},
	proc.Core2D45Name: {2.48, 2.76, 2.49, 2.44, 19.1, 21.1, 20.5, 22.6},
	proc.AtomD45Name:  {0.53, 0.96, 0.61, 0.86, 3.7, 5.3, 4.5, 5.1},
	proc.I5Name:       {3.31, 4.46, 3.18, 4.26, 19.6, 29.2, 24.7, 29.5},
}

func main() {
	log.SetFlags(0)
	h, err := harness.New(42)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := h.Reference()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-6s  %7s %7s %7s %7s | %7s %7s\n",
		"Processor", "metric", "NN", "NS", "JN", "JS", "AvgW", "paper")
	for _, cp := range proc.StockConfigs() {
		res, err := h.MeasureConfig(cp, ref, nil)
		if err != nil {
			log.Fatal(err)
		}
		pg := paperGroups[cp.Proc.Name]
		pa := paper[cp.Proc.Name]
		fmt.Printf("%-16s perf   %7.2f %7.2f %7.2f %7.2f | %7.2f %7.2f\n",
			cp.Proc.Name,
			res.Groups[0].Perf, res.Groups[1].Perf, res.Groups[2].Perf, res.Groups[3].Perf,
			res.PerfW, pa[0])
		fmt.Printf("%-16s  paper %7.2f %7.2f %7.2f %7.2f\n", "",
			pg[0], pg[1], pg[2], pg[3])
		fmt.Printf("%-16s power  %7.1f %7.1f %7.1f %7.1f | %7.1f %7.1f\n",
			"",
			res.Groups[0].Watts, res.Groups[1].Watts, res.Groups[2].Watts, res.Groups[3].Watts,
			res.WattsW, pa[1])
		fmt.Printf("%-16s  paper %7.1f %7.1f %7.1f %7.1f   min %4.1f max %5.1f\n", "",
			pg[4], pg[5], pg[6], pg[7], res.WattsMin, res.WattsMax)
	}
	ctx := &experiments.Context{H: h, Ref: ref}
	printFigures(ctx)
	printPareto(ctx)
	_ = os.Stdout.Sync()
}
