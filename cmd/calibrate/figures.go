package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

// printFigures prints every feature-analysis figure next to the paper's
// published values, for model calibration.
func printFigures(ctx *experiments.Context) {
	fmt.Println("\n== Figure 1: Java MT scalability on i7 (4C2T/1C1T) ==")
	fmt.Println("paper:  sunflow~4.2 xalan~4.1 tomcat~3.6 lusearch~3.1 eclipse~2.4 | scalable avg 3.4; native scalable avg 3.8")
	f1, err := experiments.Figure1(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range f1.Points {
		fmt.Printf("  %-12s %.2f\n", p.Bench, p.Speedup)
	}

	fmt.Println("\n== Figure 4: CMP 2C/1C (perf, power, energy) ==")
	fmt.Println("paper: i7 1.32/1.57/1.19(~+12%)  i5 1.34/1.29(?)/0.91")
	f4, err := experiments.Figure4(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range f4.Ratios {
		fmt.Printf("  %-10s perf %.2f power %.2f energy %.2f  groupE %v\n",
			r.Label, r.Perf, r.Power, r.Energy, fmtGroups(f4.Groups[i].Energy))
	}
	fmt.Println("  paper groupE i7: [1.13 1.09 1.19 1.08]  i5: [1.04 0.81 1.00 0.82]")

	fmt.Println("\n== Figure 5: SMT 1C2T/1C1T ==")
	fmt.Println("paper: P4 1.06/1.06/0.98  i7 1.14/1.15/0.97  Atom 1.24/1.10/0.86  i5 1.17/1.10/0.89")
	f5, err := experiments.Figure5(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range f5.Ratios {
		fmt.Printf("  %-14s perf %.2f power %.2f energy %.2f  groupE %v\n",
			r.Label, r.Perf, r.Power, r.Energy, fmtGroups(f5.Groups[i].Energy))
	}
	fmt.Println("  paper groupE P4: [1.01 0.87 1.11 0.95]  i7: [1.01 0.93 1.03 0.95]  Atom: [1.05 0.75 0.91 0.78]  i5: [1.00 0.83 0.96 0.82]")

	fmt.Println("\n== Figure 6: single-threaded Java CMP (2C1T/1C1T on i7) ==")
	fmt.Println("paper: avg ~1.10, antlr highest (~1.5), db ~1.3, mpegaudio ~1.0")
	f6, err := experiments.Figure6(ctx)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, p := range f6.Points {
		fmt.Printf("  %-10s %.2f\n", p.Bench, p.Speedup)
		sum += p.Speedup
	}
	fmt.Printf("  avg %.3f\n", sum/float64(len(f6.Points)))

	fmt.Println("\n== Figure 7: clock scaling per doubling (perf/power/energy %) ==")
	fmt.Println("paper: i7 +83/+180/+60  C2D45 +73/+159/+56  i5 +78/+73/-4")
	f7, err := experiments.Figure7(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, srs := range f7.Series {
		fmt.Printf("  %-12s perf %+.0f%% power %+.0f%% energy %+.0f%%  groupE/doubling %v\n",
			srs.Proc, srs.PerDoublingPerf*100, srs.PerDoublingPower*100, srs.PerDoublingEnergy*100,
			fmtGroups(srs.GroupEnergyPerDoubling))
	}
	fmt.Println("  paper groupE i7: [63 68 50 62]%  C2D45: [57 46 45 78]%  i5: [-10 1 -5 0]%")

	fmt.Println("\n== Figure 8: die shrink new/old ==")
	fmt.Println("paper native: Core 1.25/0.79/0.65  Nehalem 1.14/0.77/0.69")
	fmt.Println("paper matched: Core 1.01/0.55/0.54  Nehalem 0.90/0.53/0.60")
	f8, err := experiments.Figure8(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range f8.Native {
		fmt.Printf("  native  %-20s perf %.2f power %.2f energy %.2f\n", r.Label, r.Perf, r.Power, r.Energy)
	}
	for i, r := range f8.Matched {
		fmt.Printf("  matched %-20s perf %.2f power %.2f energy %.2f  groupE %v\n",
			r.Label, r.Perf, r.Power, r.Energy, fmtGroups(f8.Groups[i].Energy))
	}
	fmt.Println("  paper matched groupE Core: [0.54 0.52 0.54 0.57]  Nehalem: [0.64 0.57 0.60 0.57]")

	fmt.Println("\n== Figure 9: gross uarch, Nehalem/other ==")
	fmt.Println("paper: Bonnell 2.70/2.38/0.85  NetBurst 2.60/0.33/0.13  Core45 1.14/1.14/1.00  Core65 1.14/0.55/0.48")
	f9, err := experiments.Figure9(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range f9.Ratios {
		fmt.Printf("  %-22s perf %.2f power %.2f energy %.2f  groupE %v\n",
			r.Label, r.Perf, r.Power, r.Energy, fmtGroups(f9.Groups[i].Energy))
	}
	fmt.Println("  paper groupE Bonnell: [0.65 1.04 0.84 0.95]  NetBurst: [0.12 0.14 0.13 0.13]  Core45: [0.87 1.14 0.99 1.04]  Core65: [0.45 0.52 0.50 0.47]")

	fmt.Println("\n== Figure 10: Turbo Boost on/off ==")
	fmt.Println("paper: i7 4C2T 1.05/1.19/1.19(eff~1.13)  i7 1C1T 1.07/1.49/1.39  i5 2C2T 1.03/1.07/1.04  i5 1C1T 1.05/1.05/1.00")
	f10, err := experiments.Figure10(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range f10.Ratios {
		fmt.Printf("  %-14s perf %.2f power %.2f energy %.2f  groupE %v\n",
			r.Label, r.Perf, r.Power, r.Energy, fmtGroups(f10.Groups[i].Energy))
	}
	fmt.Println("  paper groupE i7 4C2T: [1.38 1.08 1.21 1.12]  i7 1C1T: [1.37 1.45 1.37 1.36]  i5 2C2T: [1.04 1.03 1.04 1.06]  i5 1C1T: [1.00 0.99 1.03 1.00]")

	fmt.Println("\n== Table 5: Pareto-efficient 45nm configurations ==")
	fmt.Println("paper: NN all-i7 only; Atom 1C2T on Average/NS/JN/JS frontiers; no AtomD")
	t5, err := experiments.Table5(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, sel := range []string{"Average", "Native Non-scalable", "Native Scalable", "Java Non-scalable", "Java Scalable"} {
		fmt.Printf("  %-20s %v\n", sel, t5.Efficient[sel])
	}
}

func fmtGroups(g [4]float64) string {
	return fmt.Sprintf("[%.2f %.2f %.2f %.2f]", g[0], g[1], g[2], g[3])
}

// printPareto dumps the Average tradeoff points for Pareto debugging.
func printPareto(ctx *experiments.Context) {
	t5, err := experiments.Table5(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== 45nm Average (perf, energy) points ==")
	for _, p := range t5.Points["Average"] {
		fmt.Printf("  %-28s perf %5.2f energy %5.3f\n", p.Label, p.Perf, p.Energy)
	}
}
