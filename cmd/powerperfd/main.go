// Command powerperfd is the long-running study service: an HTTP JSON API
// that serves measurements, the paper's tables and figures, and the
// companion dataset from a memoized measurement cache. The determinism
// contract (a measurement is a pure function of benchmark, processor,
// config, and seed) makes the cache exact — identical requests are
// computed once and served from memory thereafter.
//
// Usage:
//
//	powerperfd [-addr :8722] [-seed 42] [-workers N] [-queue 1024]
//	           [-cache-cells 10980] [-read-timeout 30s]
//	           [-write-timeout 15m] [-idle-timeout 2m]
//
// Endpoints:
//
//	POST /v1/measure            {"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}
//	GET  /v1/experiments        list artifact ids
//	GET  /v1/experiments/{id}   e.g. table4, figure9, findings
//	GET  /v1/dataset            measurements.csv (?table=aggregates for the other file)
//	GET  /healthz               liveness; 503 while draining
//	GET  /statsz                cache hit rate, shard occupancy, queue depth
//	GET  /metricsz              the same counters in Prometheus text format
//
// SIGINT/SIGTERM starts a graceful shutdown: new work is rejected,
// queued and in-flight cells drain, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powerperfd: ")
	addr := flag.String("addr", ":8722", "listen address")
	seed := flag.Int64("seed", 42, "daemon study seed (experiments, dataset, default measure seed)")
	workers := flag.Int("workers", 0, "measurement workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "bounded measurement queue depth")
	cacheCells := flag.Int("cache-cells", 0, "measurement cache capacity in cells (0 = 4 study grids)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown limit")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "max duration to read a full request, header plus body (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 15*time.Minute, "max duration to write a full response; must cover a cold dataset stream (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time before a connection closes (0 = none)")
	flag.Parse()

	srv := service.NewServer(service.Options{
		Seed:          *seed,
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheCapacity: *cacheCells,
	})
	// Slow-client protection: bound every phase of a connection's life,
	// not just the header read, so a stalled peer cannot pin a
	// goroutine and connection forever. The write timeout is generous
	// because a cold /v1/dataset response measures the full grid while
	// streaming.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (seed %d)", *addr, *seed)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutdown: draining (limit %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Flip to draining first so /healthz goes unhealthy and new API work
	// is rejected while in-flight handlers finish under Shutdown.
	done := make(chan struct{})
	go func() { srv.Drain(); close(done) }()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	select {
	case <-done:
		log.Printf("shutdown: drained cleanly")
	case <-shutdownCtx.Done():
		log.Printf("shutdown: drain limit hit, exiting with work queued")
	}
}
