// Command powerperfd is the long-running study service: an HTTP JSON API
// that serves measurements, the paper's tables and figures, and the
// companion dataset from a memoized measurement cache. The determinism
// contract (a measurement is a pure function of benchmark, processor,
// config, and seed) makes the cache exact — identical requests are
// computed once and served from memory thereafter.
//
// Usage:
//
//	powerperfd [-addr :8722] [-seed 42] [-workers N] [-queue 1024]
//	           [-cache-cells 10980] [-cache-shards 16] [-read-timeout 30s]
//	           [-write-timeout 15m] [-idle-timeout 2m]
//	           [-trace-buffer 4096] [-pprof] [-log-level info]
//	           [-monitor-backends self,http://host:8722] [-monitor-interval 5s]
//	           [-store-dir /var/lib/powerperf]
//
// Endpoints:
//
//	POST /v1/measure            {"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}
//	GET  /v1/experiments        list artifact ids
//	GET  /v1/experiments/{id}   e.g. table4, figure9, findings
//	GET  /v1/dataset            measurements.csv (?table=aggregates for the other file)
//	GET  /v1/traces             recent request spans, Chrome trace-event JSON
//	GET  /healthz               liveness; 503 while draining
//	GET  /statsz                cache hit rate, shard occupancy, queue depth
//	GET  /metricsz              counters + latency histograms, Prometheus text
//	GET  /v1/sloz               SLO budgets and burn-rate alerts (default on; -slo=false)
//	GET  /debug/pprof/*         live profiling (only with -pprof)
//	GET  /v1/alertz             fleet alerts, JSON (only with -monitor-backends)
//	GET  /debug/dashboard       HTML fleet dashboard (only with -monitor-backends)
//	GET  /v1/studies[/...]      persistent study store query API (only with -store-dir)
//
// With -store-dir set, every completed /v1/measure batch is durably
// appended to an on-disk segment log (DESIGN.md §14) and served back
// through /v1/studies: rows, aggregates, CSV export, and the
// longitudinal Pareto-drift replay. The store recovers torn tails on
// open and seals (fsyncs) one segment per study.
//
// Every request logs one structured access line (method, path, status,
// duration, trace_id) and records a server span; requests carrying
// X-Trace-Id/X-Parent-Span headers stitch into the caller's trace.
//
// SIGINT/SIGTERM starts a graceful shutdown: new work is rejected,
// queued and in-flight cells drain, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/monitor"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8722", "listen address")
	seed := flag.Int64("seed", 42, "daemon study seed (experiments, dataset, default measure seed)")
	workers := flag.Int("workers", 0, "measurement workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "bounded measurement queue depth")
	cacheCells := flag.Int("cache-cells", 0, "measurement cache capacity in cells (0 = 4 study grids)")
	cacheShards := flag.Int("cache-shards", 0, "measurement cache shard count, a power of two (0 = 16); tune with `powerperf tune`")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown limit")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "max duration to read a full request, header plus body (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 15*time.Minute, "max duration to write a full response; must cover a cold dataset stream (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time before a connection closes (0 = none)")
	traceBuffer := flag.Int("trace-buffer", 0, "completed spans retained for /v1/traces (0 = 4096)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ live-profiling handlers")
	sloOn := flag.Bool("slo", true, "track service-level objectives: /v1/sloz, burn-rate alerts, slo_* gauges")
	sloLatency := flag.Duration("slo-latency-threshold", 2*time.Second, "measure-latency SLO good/bad boundary")
	tailSample := flag.Float64("trace-tail-sample", 0, "tail-based trace sampling keep rate in (0,1]: slow and errored traces always kept, others probabilistically (0 = keep everything)")
	monBackends := flag.String("monitor-backends", "", "comma-separated backend URLs to monitor; 'self' means this daemon (empty = monitoring off)")
	monInterval := flag.Duration("monitor-interval", 5*time.Second, "monitor scrape-and-evaluate interval")
	storeDir := flag.String("store-dir", "", "directory for the persistent study store (empty = store disabled)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	logger := telemetry.Logger("powerperfd")
	if err := setLogLevel(*logLevel); err != nil {
		logger.Error("bad -log-level", slog.Any("error", err))
		os.Exit(2)
	}
	// The shard router masks, so a non-power-of-two count would skew
	// (or skip) shards; reject it before the cache is built.
	if err := service.ValidateCacheShards(*cacheShards); err != nil {
		logger.Error("bad -cache-shards", slog.Any("error", err))
		os.Exit(2)
	}

	var studyStore *store.Store
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			logger.Error("bad -store-dir", slog.Any("error", err))
			os.Exit(2)
		}
		studyStore = st
		sst := st.Stats()
		logger.Info("study store open", slog.String("dir", *storeDir),
			slog.Int64("segments", sst.Segments), slog.Int64("rows", sst.Rows),
			slog.Int64("truncated_tail_bytes", sst.TruncatedTail))
	}

	opts := service.Options{
		Seed:          *seed,
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheCapacity: *cacheCells,
		CacheShards:   *cacheShards,
		TraceBuffer:   *traceBuffer,
		Store:         studyStore,
	}
	if *sloOn {
		cfg := service.DefaultSLOConfig()
		cfg.Objectives[0].LatencyThreshold = *sloLatency
		opts.SLO = cfg
	}
	if *tailSample > 0 {
		if *tailSample > 1 {
			logger.Error("bad -trace-tail-sample", slog.Float64("rate", *tailSample))
			os.Exit(2)
		}
		// Slow traces (by the latency SLO's own yardstick) and errored
		// traces always survive; the rate only thins the healthy bulk.
		opts.TailSampling = &telemetry.TailPolicy{
			SlowSpan:   *sloLatency,
			KeepErrors: true,
			SampleRate: *tailSample,
		}
	}
	srv := service.NewServer(opts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *monBackends != "" {
		// Fleet monitoring: scrape the named backends (or this daemon
		// itself via 'self') and serve /v1/alertz + /debug/dashboard.
		targets := monitorTargets(*monBackends, *addr)
		mon := monitor.New(targets, monitor.Options{Interval: *monInterval})
		mon.Start(ctx)
		srv.AttachMonitor(mon)
		logger.Info("monitoring", slog.Any("backends", targets),
			slog.Duration("interval", *monInterval))
	}

	handler := srv.Handler()
	if *pprofOn {
		// The profiling mux wraps the API: CPU, heap, mutex, and block
		// profiles of the live daemon via `go tool pprof`. Off by
		// default — the endpoints expose internals and cost samples.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/debug/pprof/", service.PprofHandler())
		handler = mux
		logger.Info("pprof enabled", slog.String("path", "/debug/pprof/"))
	}

	// Slow-client protection: bound every phase of a connection's life,
	// not just the header read, so a stalled peer cannot pin a
	// goroutine and connection forever. The write timeout is generous
	// because a cold /v1/dataset response measures the full grid while
	// streaming.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", slog.String("addr", *addr), slog.Int64("seed", *seed))

	select {
	case err := <-errCh:
		logger.Error("listener failed", slog.Any("error", err))
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutdown: draining", slog.Duration("limit", *drainTimeout))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Flip to draining first so /healthz goes unhealthy and new API work
	// is rejected while in-flight handlers finish under Shutdown.
	done := make(chan struct{})
	go func() { srv.Drain(); close(done) }()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", slog.Any("error", err))
	}
	select {
	case <-done:
		logger.Info("shutdown: drained cleanly")
	case <-shutdownCtx.Done():
		logger.Warn("shutdown: drain limit hit, exiting with work queued")
	}
	if studyStore != nil {
		// Drain already flushed and fsynced the ingest; this releases
		// the log file handle.
		if err := studyStore.Close(); err != nil {
			logger.Warn("study store close", slog.Any("error", err))
		}
	}
}

// monitorTargets expands the -monitor-backends list, resolving the
// 'self' shorthand to this daemon's own address so a single flag turns
// on self-monitoring.
func monitorTargets(list, addr string) []string {
	self := "http://" + addr
	if strings.HasPrefix(addr, ":") {
		self = "http://127.0.0.1" + addr
	}
	var out []string
	for _, t := range strings.Split(list, ",") {
		t = strings.TrimSpace(t)
		switch t {
		case "":
		case "self":
			out = append(out, self)
		default:
			out = append(out, t)
		}
	}
	return out
}

func setLogLevel(name string) error {
	var l slog.Level
	if err := l.UnmarshalText([]byte(name)); err != nil {
		return err
	}
	telemetry.SetLogLevel(l)
	return nil
}
