// Command paretoscan explores the measured energy/performance tradeoff
// space of Section 4.2: it evaluates the 29 45nm configurations (or the
// full 45-configuration space with -all), prints every point, marks the
// Pareto-efficient ones, and sketches the frontier as an ASCII scatter
// plot, per workload group or for the equally weighted average.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	powerperf "repro"
	"repro/internal/pareto"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paretoscan: ")
	seed := flag.Int64("seed", 42, "study seed")
	group := flag.String("group", "average", "workload selector: average, nn, ns, jn, js")
	all := flag.Bool("all", false, "scan all 45 configurations, not just the 45nm space")
	metric := flag.String("metric", "energy", "scalar objective to rank by: energy, edp, ed2p")
	flag.Parse()

	var objective pareto.Objective
	switch *metric {
	case "energy":
		objective = pareto.Energy
	case "edp":
		objective = pareto.EDP
	case "ed2p":
		objective = pareto.ED2P
	default:
		log.Fatalf("unknown metric %q (want energy, edp, ed2p)", *metric)
	}

	var groups []workload.Group
	label := "Average (four groups, equally weighted)"
	switch *group {
	case "average":
	case "nn":
		groups, label = []workload.Group{workload.NativeNonScalable}, workload.NativeNonScalable.String()
	case "ns":
		groups, label = []workload.Group{workload.NativeScalable}, workload.NativeScalable.String()
	case "jn":
		groups, label = []workload.Group{workload.JavaNonScalable}, workload.JavaNonScalable.String()
	case "js":
		groups, label = []workload.Group{workload.JavaScalable}, workload.JavaScalable.String()
	default:
		log.Fatalf("unknown group %q (want average, nn, ns, jn, js)", *group)
	}

	study, err := powerperf.NewStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	space := powerperf.ConfigSpace45nm()
	if *all {
		space = powerperf.ConfigSpace()
	}

	points := make([]pareto.Point, 0, len(space))
	for _, cp := range space {
		res, err := study.MeasureConfig(cp)
		if err != nil {
			log.Fatal(err)
		}
		perf, energy := res.PerfW, res.EnergyW
		if groups != nil {
			g := res.Groups[int(groups[0])]
			perf, energy = g.Perf, g.Energy
		}
		points = append(points, pareto.Point{Label: cp.String(), Perf: perf, Energy: energy})
	}

	front := pareto.Frontier(points)
	efficient := make(map[string]bool, len(front))
	for _, p := range front {
		efficient[p.Label] = true
	}

	fmt.Printf("Energy / performance space: %s (%d configurations)\n\n", label, len(points))
	tbl := report.NewTable("Configuration", "Perf/ref", "Energy/ref", "Pareto")
	for _, p := range points {
		mark := ""
		if efficient[p.Label] {
			mark = "x"
		}
		tbl.AddRow(p.Label, fmt.Sprintf("%.2f", p.Perf), fmt.Sprintf("%.3f", p.Energy), mark)
	}
	if err := tbl.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	plot := &report.Scatter{
		Title:  "\nPareto frontier ('*' efficient, '.' dominated)",
		XLabel: "performance / reference",
		YLabel: "energy / reference",
		Width:  72, Height: 22,
	}
	for _, p := range points {
		mark := '.'
		if efficient[p.Label] {
			mark = '*'
		}
		plot.Add(p.Perf, p.Energy, mark)
	}
	if err := plot.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if curve, err := pareto.FitCurve(points, 2); err == nil {
		fmt.Printf("\nfitted frontier: degree %d polynomial, R2 %.3f over perf [%.2f, %.2f]\n",
			curve.Fit.Degree(), curve.Fit.R2, curve.MinX, curve.MaxX)
	}

	// Scalar ranking under the chosen objective: where the paper's
	// frontier keeps every tradeoff, a single metric picks winners —
	// and EDP/ED2P pick very different ones than energy.
	ranked, scores, err := objective.Rank(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop 5 by %s:\n", objective)
	for i := 0; i < 5 && i < len(ranked); i++ {
		fmt.Printf("  %d. %-28s %s %.4f (perf %.2f, energy %.3f)\n",
			i+1, ranked[i].Label, objective, scores[i], ranked[i].Perf, ranked[i].Energy)
	}
}
