package main

import (
	"fmt"
	"strings"

	powerperf "repro"
	"repro/internal/report"
	"repro/internal/workload"
)

// renderer turns each experiment result into a report table.
type renderer struct {
	study  *powerperf.Study
	csvDir string
	fullT2 bool
}

// generator produces one artifact's table and title.
type generator func() (*report.Table, string, error)

func (r *renderer) generators() map[string]generator {
	gens := map[string]generator{
		"table2": r.table2, "table3": r.table3, "table4": r.table4, "table5": r.table5,
		"fig1": r.fig1, "fig2": r.fig2, "fig3": r.fig3, "fig4": r.fig4,
		"fig5": r.fig5, "fig6": r.fig6, "fig7": r.fig7, "fig8": r.fig8,
		"fig9": r.fig9, "fig10": r.fig10, "fig11": r.fig11, "fig12": r.fig12,
	}
	for name, g := range r.extraGenerators() {
		gens[name] = g
	}
	return gens
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func (r *renderer) table2() (*report.Table, string, error) {
	var cps []powerperf.ConfiguredProcessor
	if r.fullT2 {
		cps = powerperf.ConfigSpace()
	}
	res, err := r.study.Table2(cps)
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Group", "Time avg", "Time max", "Power avg", "Power max")
	tbl.AddRow("Average", pct(res.Table.Overall.TimeAvg), pct(res.Table.Overall.TimeMax),
		pct(res.Table.Overall.PowerAvg), pct(res.Table.Overall.PowerMax))
	for _, g := range workload.Groups() {
		row := res.Table.Groups[int(g)]
		tbl.AddRow(g.String(), pct(row.TimeAvg), pct(row.TimeMax), pct(row.PowerAvg), pct(row.PowerMax))
	}
	title := fmt.Sprintf("Table 2: aggregate 95%% confidence intervals (%d configurations)", res.Configs)
	return tbl, title, nil
}

func (r *renderer) table3() (*report.Table, string, error) {
	tbl := report.NewTable("Processor", "uArch", "Codename", "sSpec", "Release",
		"CMP/SMT", "LLC", "GHz", "nm", "MTrans", "mm2", "TDP W", "DRAM")
	for _, row := range r.study.Table3() {
		p := row.Proc
		tbl.AddRow(p.LongName, string(p.Arch), p.Codename, p.Spec.SSpec, p.Spec.Release,
			fmt.Sprintf("%dC%dT", p.Spec.Cores, p.Spec.SMTWays),
			fmt.Sprintf("%dK", p.Spec.LLCBytes>>10),
			fmt.Sprintf("%.2f", p.Spec.ClockGHz),
			fmt.Sprintf("%d", p.Spec.NodeNM),
			fmt.Sprintf("%.0f", p.Spec.TransistorsM),
			fmt.Sprintf("%.0f", p.Spec.DieMM2),
			fmt.Sprintf("%.0f", p.Spec.TDPWatts),
			p.Spec.DRAM)
	}
	return tbl, "Table 3: the eight experimental processors", nil
}

func (r *renderer) table4() (*report.Table, string, error) {
	rows, err := r.study.Table4()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Processor",
		"Perf NN", "NS", "JN", "JS", "AvgW", "rank",
		"Power NN", "NS", "JN", "JS", "AvgW", "rank")
	for _, row := range rows {
		res := row.Result
		tbl.AddRowf(res.CP.Proc.Name,
			res.Groups[0].Perf, res.Groups[1].Perf, res.Groups[2].Perf, res.Groups[3].Perf,
			res.PerfW, row.PerfRank,
			fmt.Sprintf("%.1f", res.Groups[0].Watts), fmt.Sprintf("%.1f", res.Groups[1].Watts),
			fmt.Sprintf("%.1f", res.Groups[2].Watts), fmt.Sprintf("%.1f", res.Groups[3].Watts),
			fmt.Sprintf("%.1f", res.WattsW), row.PowerRank)
	}
	return tbl, "Table 4: average performance (over reference) and power (W)", nil
}

func (r *renderer) table5() (*report.Table, string, error) {
	res, err := r.study.Table5()
	if err != nil {
		return nil, "", err
	}
	selectors := []string{"Average"}
	for _, g := range workload.Groups() {
		selectors = append(selectors, g.String())
	}
	tbl := report.NewTable("Configuration", "Avg", "NN", "NS", "JN", "JS")
	for _, cfg := range res.All {
		marks := make([]string, len(selectors))
		any := false
		for i, sel := range selectors {
			for _, eff := range res.Efficient[sel] {
				if eff == cfg {
					marks[i] = "x"
					any = true
					break
				}
			}
		}
		if any {
			tbl.AddRow(append([]string{cfg}, marks...)...)
		}
	}
	return tbl, "Table 5: Pareto-efficient 45nm configurations per workload group", nil
}

func (r *renderer) fig1() (*report.Table, string, error) {
	res, err := r.study.Figure1()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Benchmark", "4C2T / 1C1T")
	for _, p := range res.Points {
		tbl.AddRowf(p.Bench, p.Speedup)
	}
	return tbl, "Figure 1: scalability of multithreaded Java on the i7 (45)", nil
}

func (r *renderer) fig2() (*report.Table, string, error) {
	res, err := r.study.Figure2()
	if err != nil {
		return nil, "", err
	}
	// Summarize per processor: TDP versus measured min/avg/max.
	type agg struct {
		tdp, min, max, sum float64
		n                  int
	}
	per := map[string]*agg{}
	var order []string
	for _, p := range res.Points {
		a, ok := per[p.Proc]
		if !ok {
			a = &agg{tdp: p.TDP, min: p.Watts, max: p.Watts}
			per[p.Proc] = a
			order = append(order, p.Proc)
		}
		if p.Watts < a.min {
			a.min = p.Watts
		}
		if p.Watts > a.max {
			a.max = p.Watts
		}
		a.sum += p.Watts
		a.n++
	}
	tbl := report.NewTable("Processor", "TDP W", "Min W", "Avg W", "Max W", "Max/TDP")
	for _, name := range order {
		a := per[name]
		tbl.AddRowf(name, a.tdp, a.min, a.sum/float64(a.n), a.max, a.max/a.tdp)
	}
	return tbl, "Figure 2: measured benchmark power vs TDP (all below TDP)", nil
}

func (r *renderer) fig3() (*report.Table, string, error) {
	res, err := r.study.Figure3()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Benchmark", "Group", "Perf/ref", "Watts")
	for _, p := range res.Points {
		tbl.AddRowf(p.Bench, p.Group.String(), p.Perf, p.Watts)
	}
	return tbl, "Figure 3: benchmark power and performance on the i7 (45)", nil
}

func featureTable(ratios []powerperf.FeatureRatio, groups []powerperf.FeatureGroupEnergy) *report.Table {
	tbl := report.NewTable("Comparison", "Perf", "Power", "Energy",
		"E NN", "E NS", "E JN", "E JS")
	for i, rt := range ratios {
		g := groups[i]
		tbl.AddRowf(rt.Label, rt.Perf, rt.Power, rt.Energy,
			g.Energy[0], g.Energy[1], g.Energy[2], g.Energy[3])
	}
	return tbl
}

func (r *renderer) fig4() (*report.Table, string, error) {
	res, err := r.study.Figure4()
	if err != nil {
		return nil, "", err
	}
	return featureTable(res.Ratios, res.Groups),
		"Figure 4: two cores over one (no SMT, no Turbo Boost)", nil
}

func (r *renderer) fig5() (*report.Table, string, error) {
	res, err := r.study.Figure5()
	if err != nil {
		return nil, "", err
	}
	return featureTable(res.Ratios, res.Groups),
		"Figure 5: two-way SMT over a single context (one core)", nil
}

func (r *renderer) fig6() (*report.Table, string, error) {
	res, err := r.study.Figure6()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Benchmark", "2C1T / 1C1T")
	for _, p := range res.Points {
		tbl.AddRowf(p.Bench, p.Speedup)
	}
	return tbl, "Figure 6: CMP effect on single-threaded Java (i7)", nil
}

func (r *renderer) fig7() (*report.Table, string, error) {
	res, err := r.study.Figure7()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Processor", "Clock GHz", "Perf/ref", "Watts", "Energy/ref",
		"per-doubling perf", "power", "energy")
	for _, s := range res.Series {
		for i, p := range s.Points {
			d1, d2, d3 := "", "", ""
			if i == len(s.Points)-1 {
				d1, d2, d3 = pct(s.PerDoublingPerf), pct(s.PerDoublingPower), pct(s.PerDoublingEnergy)
			}
			tbl.AddRow(s.Proc, fmt.Sprintf("%.2f", p.ClockGHz),
				fmt.Sprintf("%.2f", p.Perf), fmt.Sprintf("%.1f", p.Watts),
				fmt.Sprintf("%.3f", p.Energy), d1, d2, d3)
		}
	}
	return tbl, "Figure 7: clock scaling (Turbo Boost disabled)", nil
}

func (r *renderer) fig8() (*report.Table, string, error) {
	res, err := r.study.Figure8()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Comparison", "Clocks", "Perf", "Power", "Energy",
		"E NN", "E NS", "E JN", "E JS")
	for _, rt := range res.Native {
		tbl.AddRowf(rt.Label, "native", rt.Perf, rt.Power, rt.Energy, "", "", "", "")
	}
	for i, rt := range res.Matched {
		g := res.Groups[i]
		tbl.AddRowf(rt.Label, "matched", rt.Perf, rt.Power, rt.Energy,
			g.Energy[0], g.Energy[1], g.Energy[2], g.Energy[3])
	}
	return tbl, "Figure 8: die shrink, new over old (Core 65->45nm, Nehalem 45->32nm)", nil
}

func (r *renderer) fig9() (*report.Table, string, error) {
	res, err := r.study.Figure9()
	if err != nil {
		return nil, "", err
	}
	return featureTable(res.Ratios, res.Groups),
		"Figure 9: gross microarchitecture change, Nehalem over other (matched config)", nil
}

func (r *renderer) fig10() (*report.Table, string, error) {
	res, err := r.study.Figure10()
	if err != nil {
		return nil, "", err
	}
	return featureTable(res.Ratios, res.Groups),
		"Figure 10: Turbo Boost enabled over disabled", nil
}

func (r *renderer) fig11() (*report.Table, string, error) {
	res, err := r.study.Figure11()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Processor", "Perf/ref", "Watts", "Perf/MTrans", "Watts/MTrans")
	for _, p := range res.Points {
		tbl.AddRow(p.Proc, fmt.Sprintf("%.2f", p.Perf), fmt.Sprintf("%.1f", p.Watts),
			fmt.Sprintf("%.4f", p.PerfPerMTrans), fmt.Sprintf("%.4f", p.WattsPerMTrans))
	}
	return tbl, "Figure 11: historical overview and per-transistor tradeoffs", nil
}

func (r *renderer) fig12() (*report.Table, string, error) {
	res, err := r.study.Figure12()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Frontier", "Points", "Perf range", "Fit R2", "Members")
	selectors := []string{"Average"}
	for _, g := range workload.Groups() {
		selectors = append(selectors, g.String())
	}
	for _, sel := range selectors {
		curve := res.Curves[sel]
		tbl.AddRow(sel, fmt.Sprintf("%d", len(curve.Points)),
			fmt.Sprintf("%.2f..%.2f", curve.MinX, curve.MaxX),
			fmt.Sprintf("%.3f", curve.Fit.R2),
			strings.Join(curve.Labels(), "; "))
	}
	return tbl, "Figure 12: energy/performance Pareto frontiers at 45nm", nil
}
