package main

import (
	"fmt"
	"os"

	powerperf "repro"
	"repro/internal/experiments"
	"repro/internal/report"
)

// plotters render chart views of artifacts that have a natural graphical
// form (enabled with -plot): bar charts for the feature-analysis
// figures, scatter plots for the distribution and historical figures.
func (r *renderer) plotters() map[string]func() error {
	return map[string]func() error{
		"fig2":  r.plotFig2,
		"fig3":  r.plotFig3,
		"fig4":  func() error { return r.plotFeature(r.study.Figure4, "Figure 4: CMP 2C/1C") },
		"fig5":  func() error { return r.plotFeature(r.study.Figure5, "Figure 5: SMT 1C2T/1C1T") },
		"fig11": r.plotFig11,
		"fig12": r.plotFig12,
	}
}

// plotFeature renders one feature-analysis result as grouped bars.
func (r *renderer) plotFeature(gen func() (*experiments.FeatureResult, error), title string) error {
	res, err := gen()
	if err != nil {
		return err
	}
	chart := &report.BarChart{Title: "\n" + title, Baseline: 1.0, Width: 44}
	labels := make([]string, len(res.Ratios))
	perfs := make([]float64, len(res.Ratios))
	powers := make([]float64, len(res.Ratios))
	energies := make([]float64, len(res.Ratios))
	for i, rt := range res.Ratios {
		labels[i] = rt.Label
		perfs[i] = rt.Perf
		powers[i] = rt.Power
		energies[i] = rt.Energy
	}
	chart.SetLabels(labels...)
	chart.AddSeries("perf", perfs...)
	chart.AddSeries("power", powers...)
	chart.AddSeries("energy", energies...)
	return chart.Write(os.Stdout)
}

func (r *renderer) plotFig2() error {
	res, err := r.study.Figure2()
	if err != nil {
		return err
	}
	plot := &report.Scatter{
		Title:  "\nFigure 2: measured power vs TDP (log/log; letter = processor)",
		XLabel: "TDP W", YLabel: "measured W",
		LogX: true, LogY: true, Width: 70, Height: 22,
	}
	for _, p := range res.Points {
		plot.Add(p.TDP, p.Watts, markFor(p.Proc))
	}
	if err := plot.Write(os.Stdout); err != nil {
		return err
	}
	return legend()
}

func (r *renderer) plotFig3() error {
	res, err := r.study.Figure3()
	if err != nil {
		return err
	}
	plot := &report.Scatter{
		Title:  "\nFigure 3: benchmark power/performance on the i7 (N=native, J=java; lower=non-scalable)",
		XLabel: "performance / reference", YLabel: "watts",
		Width: 70, Height: 22,
	}
	for _, p := range res.Points {
		mark := 'n'
		if p.Group.Managed() {
			mark = 'j'
		}
		if p.Group.Scalable() {
			mark = mark - 'a' + 'A' // uppercase for scalable
		}
		plot.Add(p.Perf, p.Watts, mark)
	}
	return plot.Write(os.Stdout)
}

func (r *renderer) plotFig11() error {
	res, err := r.study.Figure11()
	if err != nil {
		return err
	}
	plot := &report.Scatter{
		Title:  "\nFigure 11: power vs performance, stock processors (log/log)",
		XLabel: "performance / reference", YLabel: "watts",
		LogX: true, LogY: true, Width: 70, Height: 20,
	}
	for _, p := range res.Points {
		plot.Add(p.Perf, p.Watts, markFor(p.Proc))
	}
	if err := plot.Write(os.Stdout); err != nil {
		return err
	}
	return legend()
}

func (r *renderer) plotFig12() error {
	res, err := r.study.Figure12()
	if err != nil {
		return err
	}
	plot := &report.Scatter{
		Title:  "\nFigure 12: 45nm energy/performance space ('*' Average frontier, '.' dominated)",
		XLabel: "group performance / reference", YLabel: "normalized energy",
		Width: 70, Height: 22,
	}
	front := map[string]bool{}
	for _, l := range res.Table.Efficient["Average"] {
		front[l] = true
	}
	for _, p := range res.Table.Points["Average"] {
		mark := '.'
		if front[p.Label] {
			mark = '*'
		}
		plot.Add(p.Perf, p.Energy, mark)
	}
	return plot.Write(os.Stdout)
}

// markFor assigns a stable letter per processor for scatter plots.
func markFor(proc string) rune {
	marks := map[string]rune{
		powerperf.Pentium4: 'P',
		powerperf.Core2D65: 'c',
		powerperf.Core2Q65: 'Q',
		powerperf.I7:       '7',
		powerperf.Atom45:   'a',
		powerperf.Core2D45: 'C',
		powerperf.AtomD45:  'd',
		powerperf.I5:       '5',
	}
	if m, ok := marks[proc]; ok {
		return m
	}
	return '?'
}

func legend() error {
	_, err := fmt.Println("          P=Pentium4 c=C2D(65) Q=C2Q(65) 7=i7 a=Atom C=C2D(45) d=AtomD 5=i5")
	return err
}
