package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/slo"
)

// runSlo implements `powerperf slo`: fetch a daemon's /v1/sloz snapshot
// and render the error budgets, burn rates, and alert states as a
// terminal table (or raw JSON with -json). A firing objective's
// exemplar trace ids are printed with ready-to-paste /v1/traces URLs so
// a page goes straight to the offending request.
func runSlo(args []string) {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	daemon := fs.String("daemon", "http://localhost:8722", "powerperfd base URL")
	jsonOut := fs.Bool("json", false, "print the raw /v1/sloz snapshot as JSON")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	fs.Parse(args)

	base := strings.TrimRight(*daemon, "/")
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(base + "/v1/sloz")
	if err != nil {
		log.Fatalf("fetch %s/v1/sloz: %v", base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("read sloz: %v", err)
	}
	if resp.StatusCode == http.StatusNotFound {
		log.Fatalf("%s serves no /v1/sloz — daemon running with -slo=false?", base)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("sloz: HTTP %d: %s", resp.StatusCode, body)
	}

	var snap slo.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		log.Fatalf("sloz unparseable: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(snap); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("SLOs at %s (generated %s)\n\n", base, snap.GeneratedAt.Format(time.RFC3339))
	fmt.Printf("%-18s %-13s %8s %9s %8s %10s %10s %s\n",
		"OBJECTIVE", "KIND", "TARGET", "BUDGET", "COMPL", "FAST-BURN", "SLOW-BURN", "ALERT")
	for _, o := range snap.Objectives {
		fmt.Printf("%-18s %-13s %7.3f%% %8.1f%% %7.3f%% %10.3g %10.3g %s\n",
			o.Name, o.Kind, o.Target*100, o.BudgetRemaining*100, o.Compliance*100,
			o.Burn.Fast, o.Burn.Slow, o.AlertState)
	}
	var exemplars bool
	for _, o := range snap.Objectives {
		if len(o.Exemplars) == 0 {
			continue
		}
		if !exemplars {
			fmt.Println("\nBREACH EXEMPLARS")
			exemplars = true
		}
		for _, e := range o.Exemplars {
			fmt.Printf("  %-18s %8.3fs  %s/v1/traces?trace=%s\n", o.Name, e.Seconds, base, e.TraceID)
		}
	}
	if len(snap.Alerts) > 0 {
		fmt.Println("\nBURN ALERTS")
		for _, a := range snap.Alerts {
			fmt.Printf("  [%-8s] %-14s %-18s %s\n", a.State, a.Rule, a.Series, a.Reason)
		}
	}
}
