package main

import (
	"fmt"

	"repro/internal/report"
)

// Renderers for the extended analyses beyond the paper's numbered
// artifacts: section31, jvms, meters, kernelbug, heapsweep.

func (r *renderer) extraGenerators() map[string]generator {
	return map[string]generator{
		"section31": r.section31,
		"jvms":      r.jvms,
		"meters":    r.meters,
		"kernelbug": r.kernelbug,
		"heapsweep": r.heapsweep,
		"scaling":   r.scaling,
		"breakdown": r.breakdown,
		"findings":  r.findings,
	}
}

func (r *renderer) section31() (*report.Table, string, error) {
	res, err := r.study.Section31()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Benchmark", "Speedup 2C/1C", "JVM instr frac",
		"DTLB MPKI 1C/2C", "CPI 1C", "CPI 2C")
	for _, row := range res.Rows {
		tbl.AddRow(row.Bench,
			fmt.Sprintf("%.2f", row.Speedup),
			fmt.Sprintf("%.3f", row.ServiceFraction),
			fmt.Sprintf("%.2f", row.DTLBRatio),
			fmt.Sprintf("%.2f", row.CPIOneCore),
			fmt.Sprintf("%.2f", row.CPITwoCores))
	}
	return tbl, "Section 3.1: counter drill-down of JVM-induced parallelism (i7)", nil
}

func (r *renderer) jvms() (*report.Table, string, error) {
	res, err := r.study.JVMComparison()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("JVM", "Perf vs HotSpot", "Power vs HotSpot", "Max benchmark deviation")
	for _, row := range res.Rows {
		tbl.AddRow(row.VM,
			fmt.Sprintf("%.3f", row.PerfVsHotSpot),
			fmt.Sprintf("%.3f", row.PowerVsHotSpot),
			fmt.Sprintf("%.1f%%", row.MaxBenchDeviation*100))
	}
	return tbl, "Section 2.2: JVM cross-check on the stock i7 (Java workloads)", nil
}

func (r *renderer) meters() (*report.Table, string, error) {
	res, err := r.study.MeterComparison()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Processor", "Chip W", "Wall W", "Chip frac",
		"Chip spread", "Wall spread")
	for _, row := range res.Rows {
		tbl.AddRow(row.Proc,
			fmt.Sprintf("%.1f", row.ChipWatts),
			fmt.Sprintf("%.1f", row.WallWatts),
			fmt.Sprintf("%.2f", row.ChipFraction),
			fmt.Sprintf("%.0f%%", row.ChipSpread*100),
			fmt.Sprintf("%.0f%%", row.WallSpread*100))
	}
	return tbl, "Methodology: on-chip rail vs whole-system clamp ammeter", nil
}

func (r *renderer) kernelbug() (*report.Table, string, error) {
	res, err := r.study.KernelBug()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Processor", "Active cores", "BIOS disable W", "OS offline W", "Anomaly")
	for _, rep := range res.Reports {
		for i := range rep.BIOSWatts {
			mark := ""
			if i+1 < len(rep.OSWatts) && rep.OSWatts[i] >= rep.OSWatts[i+1] {
				mark = "x"
			}
			tbl.AddRow(rep.Proc, fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%.1f", rep.BIOSWatts[i]),
				fmt.Sprintf("%.1f", rep.OSWatts[i]), mark)
		}
	}
	return tbl, "Section 2.8: BIOS core disabling vs the buggy OS hotplug path", nil
}

func (r *renderer) heapsweep() (*report.Table, string, error) {
	res, err := r.study.HeapSweep()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Benchmark", "Heap x min", "Seconds", "Watts", "Energy J", "GC work")
	for _, s := range res.Series {
		for _, p := range s.Points {
			tbl.AddRow(s.Bench,
				fmt.Sprintf("%.1f", p.HeapFactor),
				fmt.Sprintf("%.2f", p.Seconds),
				fmt.Sprintf("%.1f", p.Watts),
				fmt.Sprintf("%.0f", p.EnergyJ),
				fmt.Sprintf("%.3f", p.GCWork))
		}
	}
	return tbl, "Section 2.2: heap-size sensitivity behind the 3x-minimum methodology", nil
}

func (r *renderer) scaling() (*report.Table, string, error) {
	res, err := r.study.ScalingAnalysis()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Transition", "Freq x", "Power x", "Perf x",
		"vs Dennard (f/P)", "vs post-Dennard (f/P)", "vs ITRS (f/P)")
	for _, row := range res.Rows {
		m := row.Measured
		tbl.AddRow(m.Label,
			fmt.Sprintf("%.2f", m.Frequency), fmt.Sprintf("%.2f", m.Power),
			fmt.Sprintf("%.2f", m.Perf),
			fmt.Sprintf("%.2f / %.2f", row.VsDennard.FreqError, row.VsDennard.PowError),
			fmt.Sprintf("%.2f / %.2f", row.VsPostDennard.FreqError, row.VsPostDennard.PowError),
			fmt.Sprintf("%.2f / %.2f", row.VsITRS.FreqError, row.VsITRS.PowError))
	}
	p4 := res.P4Projected
	tbl.AddRow(p4.Label,
		fmt.Sprintf("%.2f", p4.Frequency), fmt.Sprintf("%.2f", p4.Power),
		fmt.Sprintf("%.2f", p4.Perf), "", "", "")
	return tbl, "Technology scaling: measured shrinks vs Dennard / post-Dennard / ITRS (Findings 4-5, Section 4.1)", nil
}

func (r *renderer) breakdown() (*report.Table, string, error) {
	res, err := r.study.PowerBreakdown()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Benchmark", "Group", "Total W",
		"Uncore", "Core dyn", "Core static", "Gated/idle")
	for _, row := range res.Rows {
		tbl.AddRow(row.Bench, row.Group.String(),
			fmt.Sprintf("%.1f", row.Breakdown.TotalWatts),
			fmt.Sprintf("%.0f%%", row.UncoreFrac*100),
			fmt.Sprintf("%.0f%%", row.DynFrac*100),
			fmt.Sprintf("%.0f%%", row.StaticFrac*100),
			fmt.Sprintf("%.0f%%", row.GatedFrac*100))
	}
	return tbl, "Per-structure power on the stock i7 (the meters the paper asks vendors to expose)", nil
}

func (r *renderer) findings() (*report.Table, string, error) {
	res, err := r.study.Findings()
	if err != nil {
		return nil, "", err
	}
	tbl := report.NewTable("Finding", "Holds", "Statement", "Measured")
	for _, f := range res.Findings {
		mark := "yes"
		if !f.Holds {
			mark = "NO"
		}
		tbl.AddRow(f.ID, mark, f.Statement, f.Detail)
	}
	title := "Reproduction report: the paper's thirteen named findings"
	if res.AllHold() {
		title += " (all hold)"
	}
	return tbl, title, nil
}
