// Command powerperf regenerates the paper's tables and figures from the
// simulated measurement stack.
//
// Usage:
//
//	powerperf [-seed N] [-csv DIR] [-full-table2] [artifact ...]
//	powerperf tune [-seed N] [-configs N] [-repeats N] [-backends N] [-grid quick|full] [-out FILE]
//	powerperf query [-store-dir DIR] [-rows|-aggregates] [-processor P] [-benchmark B] [-json]
//	powerperf trend [-store-dir DIR] [-filter-seed N] [-json]
//	powerperf slo [-daemon URL] [-json]
//
// Artifacts are table2, table3, table4, table5, fig1 .. fig12, or "all"
// (the default). With -csv, each artifact's data is also written as
// DIR/<artifact>.csv, mirroring the paper's companion dataset.
//
// The query subcommand inspects a powerperfd -store-dir study store
// offline (read-only, safe against a live daemon): the study inventory,
// filtered measurement rows, or the Section 2.6 aggregates recomputed
// from the stored bits. The trend subcommand replays the stored studies
// across the fleet's technology generations and reports how the
// measured energy/performance Pareto frontier drifted.
//
// The slo subcommand fetches a live daemon's /v1/sloz snapshot and
// renders its error budgets, burn rates, and breach exemplars (with
// ready-to-paste trace URLs) as a terminal table.
//
// The tune subcommand sweeps the serving pipeline's performance knobs
// (backend workers, cache shards, batch size, hedge delay) over a
// calibration grid against in-process backends, prints the scored grid,
// and emits the knee point as ready-to-paste powerperfd and fullstudy
// flags (plus a JSON report with -out). The knobs are pure scheduling:
// study bytes are identical at every point.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	powerperf "repro"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/tune"
)

var artifactOrder = []string{
	"table2", "table3", "table4", "table5",
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	"section31", "jvms", "meters", "kernelbug", "heapsweep", "scaling", "breakdown", "findings",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("powerperf: ")
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "tune":
			runTune(os.Args[2:])
			return
		case "query":
			runQuery(os.Args[2:])
			return
		case "trend":
			runTrend(os.Args[2:])
			return
		case "slo":
			runSlo(os.Args[2:])
			return
		}
	}
	seed := flag.Int64("seed", 42, "study seed; the same seed reproduces every number")
	csvDir := flag.String("csv", "", "also write each artifact's data as CSV into this directory")
	fullT2 := flag.Bool("full-table2", false, "aggregate Table 2 over all 45 configurations instead of the 8 stock ones")
	plot := flag.Bool("plot", false, "also render ASCII charts for figures that have a graphical form")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			log.Fatal(err)
		}
	}()

	want := flag.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = artifactOrder
	}

	study, err := powerperf.NewStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	r := &renderer{study: study, csvDir: *csvDir, fullT2: *fullT2}
	for _, name := range want {
		gen, ok := r.generators()[strings.ToLower(name)]
		if !ok {
			log.Fatalf("unknown artifact %q (want one of %s, or all)", name, strings.Join(artifactOrder, " "))
		}
		tbl, title, err := gen()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("\n%s\n\n", title)
		if err := tbl.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, name, tbl); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		if *plot {
			if p, ok := r.plotters()[strings.ToLower(name)]; ok {
				if err := p(); err != nil {
					log.Fatalf("%s plot: %v", name, err)
				}
			}
		}
	}
}

// runTune drives the experiment-grid auto-tuner.
func runTune(args []string) {
	fs := flag.NewFlagSet("powerperf tune", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "study seed for the calibration runs")
	configs := fs.Int("configs", 2, "stock configurations per calibration study (x 61 benchmarks)")
	repeats := fs.Int("repeats", 1, "cold-cache repeats per grid point; the fastest scores the point")
	backends := fs.Int("backends", 2, "in-process powerperfd instances per calibration cluster")
	gridName := fs.String("grid", "quick", "sweep to run: quick (batch sizes) or full (all knobs)")
	out := fs.String("out", "", "also write the full JSON report to this file")
	_ = fs.Parse(args)

	// Calibration backends are throwaway: their per-request access lines
	// would swamp the grid report, so only warnings get through.
	telemetry.SetLogLevel(slog.LevelWarn)

	var grid tune.Grid
	switch *gridName {
	case "quick":
		grid = tune.QuickGrid()
	case "full":
		grid = tune.FullGrid()
	default:
		log.Fatalf("unknown grid %q (want quick or full)", *gridName)
	}

	rep, err := tune.Run(context.Background(), tune.Config{
		Seed:     *seed,
		Configs:  *configs,
		Repeats:  *repeats,
		Backends: *backends,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	}, grid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nswept %d grid points (%d cells each, %d backends, seed %d)\n\n",
		len(rep.Results), rep.Results[0].Cells, rep.Backends, rep.Seed)
	for _, r := range rep.Results {
		marker := " "
		if r.Point == rep.Knee {
			marker = "*"
		}
		fmt.Printf(" %s %-48s %8.3fs\n", marker, r.Point, r.Seconds)
	}
	fmt.Printf("\nknee: %s (%.3fs, best %.3fs)\n", rep.Knee, rep.KneeSeconds, rep.Best)
	fmt.Printf("  powerperfd %s\n", rep.PowerperfdFlags())
	fmt.Printf("  fullstudy  %s\n", rep.FullstudyFlags())
	for _, e := range rep.Env() {
		fmt.Printf("  %s\n", e)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *out)
	}
}

func writeCSV(dir, name string, tbl *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
