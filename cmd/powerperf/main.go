// Command powerperf regenerates the paper's tables and figures from the
// simulated measurement stack.
//
// Usage:
//
//	powerperf [-seed N] [-csv DIR] [-full-table2] [artifact ...]
//
// Artifacts are table2, table3, table4, table5, fig1 .. fig12, or "all"
// (the default). With -csv, each artifact's data is also written as
// DIR/<artifact>.csv, mirroring the paper's companion dataset.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	powerperf "repro"
	"repro/internal/profiling"
	"repro/internal/report"
)

var artifactOrder = []string{
	"table2", "table3", "table4", "table5",
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	"section31", "jvms", "meters", "kernelbug", "heapsweep", "scaling", "breakdown", "findings",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("powerperf: ")
	seed := flag.Int64("seed", 42, "study seed; the same seed reproduces every number")
	csvDir := flag.String("csv", "", "also write each artifact's data as CSV into this directory")
	fullT2 := flag.Bool("full-table2", false, "aggregate Table 2 over all 45 configurations instead of the 8 stock ones")
	plot := flag.Bool("plot", false, "also render ASCII charts for figures that have a graphical form")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			log.Fatal(err)
		}
	}()

	want := flag.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = artifactOrder
	}

	study, err := powerperf.NewStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	r := &renderer{study: study, csvDir: *csvDir, fullT2: *fullT2}
	for _, name := range want {
		gen, ok := r.generators()[strings.ToLower(name)]
		if !ok {
			log.Fatalf("unknown artifact %q (want one of %s, or all)", name, strings.Join(artifactOrder, " "))
		}
		tbl, title, err := gen()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("\n%s\n\n", title)
		if err := tbl.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, name, tbl); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		if *plot {
			if p, ok := r.plotters()[strings.ToLower(name)]; ok {
				if err := p(); err != nil {
					log.Fatalf("%s plot: %v", name, err)
				}
			}
		}
	}
}

func writeCSV(dir, name string, tbl *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
