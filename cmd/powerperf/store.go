package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro/internal/store"
	"repro/internal/trend"
)

// openStore opens the study store read-only: the CLI must be safe to
// point at a live daemon's -store-dir, so it never truncates a torn
// tail or takes the write handle.
func openStore(dir string) *store.Store {
	if dir == "" {
		log.Fatal("missing -store-dir (the daemon's -store-dir directory)")
	}
	s, err := store.OpenReadOnly(dir)
	if err != nil {
		log.Fatalf("open store %s: %v", dir, err)
	}
	return s
}

// storeQueryFlags registers the shared row filters and returns a
// closure that materializes the store.Query after parsing.
func storeQueryFlags(fs *flag.FlagSet) func() store.Query {
	processor := fs.String("processor", "", `filter rows by processor name, e.g. "i7 (45)"`)
	benchmark := fs.String("benchmark", "", "filter rows by benchmark name")
	config := fs.String("config", "", `filter rows by configuration notation, e.g. "4C2T@2.7GHz TB"`)
	seed := fs.String("filter-seed", "", "only studies sealed under this seed")
	since := fs.String("since", "", "only studies sealed at or after this time (RFC 3339 or Unix seconds)")
	until := fs.String("until", "", "only studies sealed before this time (RFC 3339 or Unix seconds)")
	return func() store.Query {
		q := store.Query{Processor: *processor, Benchmark: *benchmark, Config: *config}
		if *seed != "" {
			n, err := strconv.ParseInt(*seed, 10, 64)
			if err != nil {
				log.Fatalf("bad -filter-seed %q", *seed)
			}
			q.Seed = &n
		}
		var err error
		if q.Since, err = parseCLITime(*since); err != nil {
			log.Fatal(err)
		}
		if q.Until, err = parseCLITime(*until); err != nil {
			log.Fatal(err)
		}
		return q
	}
}

func parseCLITime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(sec, 0), nil
	}
	return time.Time{}, fmt.Errorf("bad time %q (want RFC 3339 or Unix seconds)", s)
}

// runQuery serves the `powerperf query` subcommand: inspect a study
// store offline — inventory, sealed studies, filtered rows, and the
// Section 2.6 aggregates recomputed from stored bits.
func runQuery(args []string) {
	fs := flag.NewFlagSet("powerperf query", flag.ExitOnError)
	dir := fs.String("store-dir", "", "study store directory (as given to powerperfd)")
	rows := fs.Bool("rows", false, "print matching measurement rows instead of the study list")
	aggregates := fs.Bool("aggregates", false, "aggregate the matching rows per Section 2.6")
	limit := fs.Int("limit", 50, "row cap for -rows (0 = unlimited)")
	asJSON := fs.Bool("json", false, "emit JSON instead of tables")
	query := storeQueryFlags(fs)
	_ = fs.Parse(args)
	s := openStore(*dir)
	defer s.Close()
	q := query()

	switch {
	case *rows:
		recs, err := s.Rows(q, *limit)
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			printJSON(recs)
			return
		}
		fmt.Printf("%-16s %-6s %-24s %-14s %-22s %10s %10s %12s\n",
			"study", "seed", "sealed", "benchmark", "configuration", "seconds", "watts", "energy_j")
		for _, rec := range recs {
			fmt.Printf("%-16x %-6d %-24s %-14s %-22s %10.4f %10.4f %12.4f\n",
				rec.StudyID, rec.Seed, time.Unix(0, rec.Sealed).UTC().Format(time.RFC3339),
				rec.Row.Benchmark, rec.Row.Processor+" "+rec.Row.ConfigString(),
				rec.Row.Seconds, rec.Row.Watts, rec.Row.EnergyJ)
		}
		fmt.Printf("%d row(s)\n", len(recs))
	case *aggregates:
		d, err := s.Collect(q)
		if err != nil {
			log.Fatal(err)
		}
		res, skipped, err := d.Aggregate(nil)
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			printJSON(res)
			return
		}
		fmt.Printf("%-36s %12s %12s %12s\n", "configuration", "perf_norm", "watts", "energy_norm")
		for _, r := range res {
			fmt.Printf("%-36s %12.4f %12.4f %12.4f\n", r.CP.String(), r.PerfW, r.WattsW, r.EnergyW)
		}
		if len(skipped) > 0 {
			fmt.Printf("skipped %d incomplete configuration(s)\n", len(skipped))
		}
	default:
		st := s.Stats()
		if *asJSON {
			printJSON(struct {
				Store   store.Stats  `json:"store"`
				Studies []store.Meta `json:"studies"`
			}{st, s.Studies()})
			return
		}
		fmt.Printf("store: %d segment(s), %d row(s), %d bytes", st.Segments, st.Rows, st.Bytes)
		if st.TruncatedTail > 0 {
			fmt.Printf(" (ignoring a %d-byte unsealed tail)", st.TruncatedTail)
		}
		fmt.Println()
		fmt.Printf("%-16s %-6s %-24s %8s %12s\n", "study", "seed", "sealed", "rows", "bytes")
		for _, m := range s.Studies() {
			if !q.MatchMeta(m) {
				continue
			}
			fmt.Printf("%-16x %-6d %-24s %8d %12d\n",
				m.ID, m.Seed, m.SealedTime().UTC().Format(time.RFC3339), m.Rows, m.Bytes)
		}
	}
}

// runTrend serves the `powerperf trend` subcommand: replay the stored
// studies across technology generations and print the Pareto-drift
// report.
func runTrend(args []string) {
	fs := flag.NewFlagSet("powerperf trend", flag.ExitOnError)
	dir := fs.String("store-dir", "", "study store directory (as given to powerperfd)")
	asJSON := fs.Bool("json", false, "emit the full report as JSON instead of a table")
	query := storeQueryFlags(fs)
	_ = fs.Parse(args)
	s := openStore(*dir)
	defer s.Close()

	d, err := s.Collect(query())
	if err != nil {
		log.Fatal(err)
	}
	if d.Cells() == 0 {
		log.Fatal("no stored rows match the query")
	}
	rep, err := trend.Analyze(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		printJSON(rep)
		return
	}
	fmt.Printf("replayed %d cell(s) from seed(s) %v across %d generation(s)\n\n",
		d.Cells(), d.Seeds(), len(rep.Generations))
	rep.WriteTable(os.Stdout)
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
