package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestLintCleanRegistryOutput is the contract between the histogram
// writer and the linter: whatever WritePrometheus renders must lint
// clean, labeled and unlabeled families alike, empty and populated.
func TestLintCleanRegistryOutput(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_plain_seconds", "Plain histogram.")
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 3 * time.Millisecond, time.Second} {
		h.Observe(d)
	}
	a := reg.LabeledHistogram("test_labeled_seconds", "Labeled histogram.", "backend", "a")
	b := reg.LabeledHistogram("test_labeled_seconds", "Labeled histogram.", "backend", "b")
	a.Observe(5 * time.Millisecond)
	b.Observe(50 * time.Millisecond)
	b.Observe(0) // zero-duration edge bucket
	reg.Histogram("test_empty_seconds", "Never observed.")

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if problems := LintPrometheus(buf.String()); len(problems) != 0 {
		t.Fatalf("registry output fails its own lint:\n%s\n--- exposition ---\n%s",
			strings.Join(problems, "\n"), buf.String())
	}
}

// TestLintCatchesMalformedExposition feeds the linter known-bad text
// and requires a complaint for each defect class it exists to catch.
func TestLintCatchesMalformedExposition(t *testing.T) {
	cases := []struct {
		name, text, wantSubstr string
	}{
		{
			"missing help",
			"# TYPE x_total counter\nx_total 1\n",
			"no # HELP",
		},
		{
			"missing type",
			"# HELP x_total Things.\nx_total 1\n",
			"no # TYPE",
		},
		{
			"duplicate family",
			"# HELP x_total Things.\n# TYPE x_total counter\nx_total 1\n# HELP x_total Things.\n# TYPE x_total counter\nx_total 2\n",
			"duplicate",
		},
		{
			"non-cumulative buckets",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				`h_seconds_bucket{le="0.1"} 5` + "\n" +
				`h_seconds_bucket{le="1"} 3` + "\n" +
				`h_seconds_bucket{le="+Inf"} 3` + "\n" +
				"h_seconds_sum 1\nh_seconds_count 3\n",
			"not cumulative",
		},
		{
			"non-monotone bounds",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				`h_seconds_bucket{le="1"} 1` + "\n" +
				`h_seconds_bucket{le="0.5"} 2` + "\n" +
				`h_seconds_bucket{le="+Inf"} 2` + "\n" +
				"h_seconds_sum 1\nh_seconds_count 2\n",
			"not strictly increasing",
		},
		{
			"missing +Inf",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				`h_seconds_bucket{le="1"} 1` + "\n" +
				"h_seconds_sum 1\nh_seconds_count 1\n",
			"missing +Inf",
		},
		{
			"+Inf disagrees with _count",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				`h_seconds_bucket{le="+Inf"} 2` + "\n" +
				"h_seconds_sum 1\nh_seconds_count 3\n",
			"!= _count",
		},
		{
			"garbage line",
			"# HELP x X.\n# TYPE x gauge\nx one.two\n",
			"unparseable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := LintPrometheus(tc.text)
			for _, p := range problems {
				if strings.Contains(p, tc.wantSubstr) {
					return
				}
			}
			t.Fatalf("lint missed %q; got %v", tc.wantSubstr, problems)
		})
	}
}

// TestLintAcceptsWellFormedHandwritten guards against the linter
// rejecting legal exposition it did not itself generate.
func TestLintAcceptsWellFormedHandwritten(t *testing.T) {
	text := "# HELP app_requests_total Requests served.\n" +
		"# TYPE app_requests_total counter\n" +
		`app_requests_total{endpoint="measure",code="200"} 17` + "\n" +
		"# HELP app_up Whether the app is up.\n" +
		"# TYPE app_up gauge\n" +
		"app_up 1\n"
	if problems := LintPrometheus(text); len(problems) != 0 {
		t.Fatalf("false positives: %v", problems)
	}
}
