package telemetry

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParsePrometheus drives the exposition parser with arbitrary
// pages, seeded on the exemplar syntax and the escaping edge cases the
// hand-written tests pin. Properties: the parser never panics; any
// page it accepts renders back to a page it accepts again; and one
// parse/render cycle reaches a fixpoint — render(parse(render(parse(x))))
// == render(parse(x)) — so federation re-scrapes cannot drift. (The
// fixpoint is compared as rendered text rather than DeepEqual so NaN
// sample values, which are never equal to themselves, still pass.)
func FuzzParsePrometheus(f *testing.F) {
	seeds := []string{
		// Plain families, every type.
		"# HELP a_total A.\n# TYPE a_total counter\na_total 1\n",
		"# TYPE g gauge\ng{x=\"y\"} 2.5\n# EOF\n",
		"# TYPE s summary\ns_sum 1.5\ns_count 3\n",
		// Histogram with exemplars: timestamped, timestampless, huge and
		// zero timestamps, escaped exemplar labels.
		"# TYPE h histogram\nh_bucket{le=\"0.25\"} 3 # {trace_id=\"00000000deadbeef\"} 0.21 1754640000.125\nh_bucket{le=\"+Inf\"} 4 # {trace_id=\"00000000cafef00d\"} 1.5\nh_sum 2.2\nh_count 4\n",
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"01\"} 0.5 0\n",
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"01\"} 0.5 72057594037927936\n",
		"# TYPE c counter\nc 7 # {a=\"x\\\\y\\\"z\\nw\"} 1 1e-9\n",
		// Escaped label values on the sample itself.
		"u{k=\"line\\nbreak\",q=\"say \\\"hi\\\"\",b=\"back\\\\slash\"} 9\n",
		"u{k=\"unknown \\q escape\"} 1\n",
		// '#' inside a quoted label value is not an exemplar marker.
		"u{frag=\"a#b\"} 1\n",
		// Declarations without samples, samples without declarations.
		"# HELP lonely_total Never sampled.\n# TYPE lonely_total counter\n",
		"undeclared 4\n",
		// Values in every float shape.
		"v 1e3\nw -0.0\nx +Inf\ny NaN\nz 9007199254740993\n",
		// Content after the OpenMetrics terminator is ignored.
		"# TYPE a gauge\na 1\n# EOF\ngarbage here {{{\n",
		// Malformed lines the parser must reject without panicking.
		"a{b=\"unterminated\n",
		"a{=\"\"} 1\n",
		"a 1 # 0.5\n",
		"a 1 # {} \n",
		"a 1 # {t=\"x\"} nope\n",
		"a 1 # {t=\"x\"} 1 2 3\n",
		"# TYPE a wat\n",
		"# HELP  broken\n",
		"{no_name=\"x\"} 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, page string) {
		fams, err := ParsePrometheus(page)
		if err != nil {
			return // rejection is fine; panics and hangs are the bugs
		}
		var first strings.Builder
		RenderOpenMetrics(&first, fams)
		again, err := ParsePrometheus(first.String())
		if err != nil {
			t.Fatalf("rendered page rejected: %v\ninput: %q\nrendered:\n%s", err, page, first.String())
		}
		var second strings.Builder
		RenderOpenMetrics(&second, again)
		if first.String() != second.String() {
			t.Fatalf("parse/render not a fixpoint\ninput: %q\nfirst:\n%s\nsecond:\n%s",
				page, first.String(), second.String())
		}
	})
}

// TestExemplarTimestampEdgeCases pins exact round trips for the
// timestamps the fuzzer can only probabilistically hit: zero (the unix
// epoch, still a real timestamp), sub-nanosecond fractions, and values
// far beyond any clock — all must survive parse → render → parse
// bit-exactly, with HasTS preserved.
func TestExemplarTimestampEdgeCases(t *testing.T) {
	cases := []struct {
		ts    float64
		hasTS bool
	}{
		{0, true},                      // epoch: present but zero
		{1e-9, true},                   // sub-nanosecond fraction
		{1754640000.125, true},         // a realistic stamp with fraction
		{72057594037927936, true},      // 2^56: beyond float53 integer range
		{1.7976931348623157e308, true}, // MaxFloat64
		{0, false},                     // no timestamp at all
	}
	for _, c := range cases {
		in := []MetricFamily{{
			Name: "m_total", Type: "counter", Help: "M.",
			Samples: []MetricPoint{{
				Name:  "m_total",
				Value: 1,
				Exemplar: &Exemplar{
					Labels: []Label{{Key: "trace_id", Value: "00000000deadbeef"}},
					Value:  0.5,
					TS:     c.ts,
					HasTS:  c.hasTS,
				},
			}},
		}}
		var page strings.Builder
		RenderOpenMetrics(&page, in)
		out, err := ParsePrometheus(page.String())
		if err != nil {
			t.Fatalf("ts=%v: %v\n%s", c.ts, err, page.String())
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("ts=%v (hasTS=%v) drifted:\nwant %+v\ngot  %+v\npage:\n%s",
				c.ts, c.hasTS, in, out, page.String())
		}
	}
}

// TestEscapedLabelRoundTrip pins escaping through a full cycle for
// label values on samples and exemplars alike: quotes, backslashes,
// newlines, exposition-significant bytes ('#', '{', '}', ','), and
// multi-byte UTF-8.
func TestEscapedLabelRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`with "quotes"`,
		`back\slash`,
		"line\nbreak",
		`trailing backslash \`,
		`#not-an-exemplar`,
		`braces {and} commas, equals=signs`,
		"μεσαίο 電力 🚀",
		`\" already escaped-looking`,
	}
	for _, v := range values {
		in := []MetricFamily{{
			Name: "m", Type: "gauge",
			Samples: []MetricPoint{{
				Name:   "m",
				Labels: []Label{{Key: "k", Value: v}},
				Value:  1,
				Exemplar: &Exemplar{
					Labels: []Label{{Key: "trace_id", Value: "01"}, {Key: "k", Value: v}},
					Value:  2,
				},
			}},
		}}
		var page strings.Builder
		RenderOpenMetrics(&page, in)
		out, err := ParsePrometheus(page.String())
		if err != nil {
			t.Fatalf("value %q: %v\n%s", v, err, page.String())
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("value %q drifted:\nwant %+v\ngot  %+v\npage:\n%s", v, in, out, page.String())
		}
	}
}
