package telemetry

// Exemplars bind concrete observations to histogram buckets: each
// bucket retains the most recent trace id (plus a small tenant-free
// label set) that landed in it, so a latency alert can point at an
// actual offending request instead of an anonymous count. Storage is a
// single atomic pointer per bucket — Observe stays two atomic adds and
// ObserveWithExemplar adds one pointer store — and rendering follows
// the OpenMetrics exemplar syntax:
//
//	name_bucket{le="0.25"} 31 # {trace_id="7ad6..."} 0.21 1754640000.125
//
// ParsePrometheus reads the suffix back (promparse.go), so exemplars
// survive the monitor's federation loop instead of breaking it.

import (
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Exemplar is one retained observation: the label set that identifies
// it (trace_id first, by convention), the observed value in exposition
// units (seconds for latency histograms), and an optional unix
// timestamp. Labels must be tenant-free: trace and span ids, endpoint
// families, backend URLs — never API keys or caller identity.
type Exemplar struct {
	Labels []Label
	Value  float64
	TS     float64 // unix seconds; meaningful only when HasTS
	HasTS  bool
}

// TraceID returns the exemplar's trace_id label value, "" when absent.
func (e *Exemplar) TraceID() string {
	if e == nil {
		return ""
	}
	for _, l := range e.Labels {
		if l.Key == "trace_id" {
			return l.Value
		}
	}
	return ""
}

// exemplars is the per-histogram exemplar store, separate from the
// count arrays so histograms without exemplars pay nothing at render
// time and the zero value stays ready to use.
type exemplars struct {
	slots [histBuckets]atomic.Pointer[Exemplar]
	any   atomic.Bool // fast-path skip for render when nothing stored
}

// ObserveWithExemplar records one duration exactly as Observe does and
// additionally retains (trace, attrs) as the bucket's exemplar. A zero
// trace id degrades to plain Observe — callers need no branch for the
// sampled-out case.
func (h *Histogram) ObserveWithExemplar(d time.Duration, trace TraceID, attrs ...Attr) {
	idx := bucketIndex(d)
	if d > 0 {
		h.sumNS.Add(int64(d))
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	if trace == 0 {
		return
	}
	labels := make([]Label, 0, 1+len(attrs))
	labels = append(labels, Label{Key: "trace_id", Value: trace.String()})
	for _, a := range attrs {
		labels = append(labels, Label{Key: a.Key, Value: a.Value})
	}
	ex := &Exemplar{
		Labels: labels,
		Value:  float64(d) / 1e9,
		TS:     float64(time.Now().UnixNano()) / 1e9,
		HasTS:  true,
	}
	h.ex.slots[idx].Store(ex)
	h.ex.any.Store(true)
}

// Exemplar returns the retained exemplar for bucket i, nil when none.
func (h *Histogram) Exemplar(i int) *Exemplar {
	if i < 0 || i >= histBuckets {
		return nil
	}
	return h.ex.slots[i].Load()
}

// bucketIndex maps a duration to its log2 bucket, the indexing rule
// Observe documents: non-positive durations land in bucket 0.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(d) - 1)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// appendExemplar renders e in OpenMetrics exemplar syntax (leading
// " # "), appending to b. Timestamps render in shortest 'f' form so a
// parse/render cycle reproduces the float exactly without exponent
// notation.
func appendExemplar(b *strings.Builder, e *Exemplar) {
	b.WriteString(" # {")
	for i, l := range e.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString("=")
		b.WriteString(promQuote(l.Value))
	}
	b.WriteString("} ")
	b.WriteString(formatPromValue(e.Value))
	if e.HasTS {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(e.TS, 'f', -1, 64))
	}
}
