package telemetry

import (
	"context"
	"io"
	"log/slog"
	"os"
	"sync"
)

// Structured logging: every subsystem (powerperfd, fullstudy, the
// cluster coordinator) logs through one shared handler so lines carry a
// uniform shape — level, subsystem, message, fields — and any record
// emitted under a traced context automatically carries its trace_id,
// joining logs to spans.

var (
	logMu    sync.Mutex
	logOut   io.Writer = os.Stderr
	logLevel           = func() *slog.LevelVar { v := new(slog.LevelVar); v.Set(slog.LevelInfo); return v }()
)

// SetLogOutput redirects all telemetry loggers (tests capture lines
// here). The default is stderr, never stdout: CLI data channels (CSV
// streams) stay byte-clean with logging enabled.
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	logOut = w
	logMu.Unlock()
}

// SetLogLevel adjusts the shared level for all telemetry loggers.
func SetLogLevel(l slog.Level) { logLevel.Set(l) }

// lockedWriter serializes writes and follows SetLogOutput swaps.
type lockedWriter struct{}

func (lockedWriter) Write(p []byte) (int, error) {
	logMu.Lock()
	defer logMu.Unlock()
	return logOut.Write(p)
}

// traceHandler decorates records with the current span's trace_id,
// pulled from the context slog threads through Handle.
type traceHandler struct{ inner slog.Handler }

func (h traceHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if s := SpanFromContext(ctx); s != nil {
		r.AddAttrs(slog.String("trace_id", s.Trace().String()))
	}
	return h.inner.Handle(ctx, r)
}

func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{h.inner.WithAttrs(attrs)}
}

func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{h.inner.WithGroup(name)}
}

// Logger returns a structured logger tagged with the subsystem. Use
// the ctx-aware methods (InfoContext etc.) to stamp records with the
// active trace.
func Logger(subsystem string) *slog.Logger {
	h := slog.NewTextHandler(lockedWriter{}, &slog.HandlerOptions{Level: logLevel})
	return slog.New(traceHandler{h}).With(slog.String("subsystem", subsystem))
}
