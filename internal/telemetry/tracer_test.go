package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanParentLinksAndRing(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.StartSpan(context.Background(), "root", String("kind", "test"))
	if root.Trace() == 0 || root.ID() == 0 {
		t.Fatal("root span has zero ids")
	}
	_, child := tr.StartSpan(ctx, "child")
	if child.Trace() != root.Trace() {
		t.Fatal("child did not inherit trace id")
	}
	child.Annotate(Int("n", 3))
	child.End()
	root.End()
	root.End() // idempotent

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "child" || spans[0].Parent != root.ID() {
		t.Fatalf("child span malformed: %+v", spans[0])
	}
	got := tr.TraceSpans(root.Trace())
	if len(got) != 2 {
		t.Fatalf("TraceSpans returned %d spans, want 2", len(got))
	}
}

func TestRingBufferBounded(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, s := tr.StartSpan(context.Background(), "s")
		s.End()
	}
	if got := len(tr.Snapshot()); got != 4 {
		t.Fatalf("ring holds %d spans, want 4", got)
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "noop")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer polluted the context")
	}
	s.Annotate(String("k", "v")) // all nil-safe
	s.End()
	if s.Trace() != 0 || s.ID() != 0 {
		t.Fatal("nil span has nonzero ids")
	}
}

func TestHeaderPropagation(t *testing.T) {
	tr := NewTracer(8)
	ctx, s := tr.StartSpan(context.Background(), "client")
	h := http.Header{}
	InjectHeaders(ctx, h)
	trace, parent, ok := ExtractHeaders(h)
	if !ok || trace != s.Trace() || parent != s.ID() {
		t.Fatalf("round trip: got (%v %v %v), want (%v %v true)", trace, parent, ok, s.Trace(), s.ID())
	}

	// Server side: StartRemote stitches into the caller's trace.
	srv := NewTracer(8)
	_, remote := srv.StartRemote(context.Background(), trace, parent, "server")
	if remote.Trace() != s.Trace() {
		t.Fatal("remote span did not adopt the propagated trace id")
	}
	remote.End()
	if got := srv.TraceSpans(s.Trace()); len(got) != 1 || got[0].Parent != s.ID() {
		t.Fatalf("remote span not stitched: %+v", got)
	}

	if _, _, ok := ExtractHeaders(http.Header{}); ok {
		t.Fatal("empty headers extracted as valid")
	}
	bad := http.Header{}
	bad.Set(HeaderTraceID, "not-hex")
	if _, _, ok := ExtractHeaders(bad); ok {
		t.Fatal("malformed trace id extracted as valid")
	}
}

// TestTracerConcurrent runs parallel span producers against snapshot
// readers under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(256)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot()
			}
		}
	}()
	const producers, per = 8, 500
	ids := make(chan SpanID, producers*per)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, root := tr.StartSpan(context.Background(), "root")
			defer root.End()
			for i := 0; i < per; i++ {
				_, s := tr.StartSpan(ctx, "work")
				ids <- s.ID()
				s.End()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone
	close(ids)
	seen := make(map[SpanID]bool)
	for id := range ids {
		if seen[id] {
			t.Fatal("duplicate span id under concurrency")
		}
		seen[id] = true
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartSpan(context.Background(), "batch", Int("jobs", 2))
	_, c := tr.StartSpan(ctx, "cell")
	time.Sleep(time.Millisecond)
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("event phase %v, want X", ev["ph"])
		}
		args := ev["args"].(map[string]any)
		if args["trace_id"] != root.Trace().String() {
			t.Errorf("event trace_id %v, want %v", args["trace_id"], root.Trace())
		}
	}

	// Single-trace filter excludes other traces.
	_, other := tr.StartSpan(context.Background(), "other")
	other.End()
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf, root.Trace()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "other") {
		t.Fatal("trace filter leaked spans from another trace")
	}
}

func TestLoggerCarriesSubsystemAndTraceID(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf)
	defer SetLogOutput(os.Stderr)

	tr := NewTracer(8)
	ctx, s := tr.StartSpan(context.Background(), "req")
	lg := Logger("testsys")
	lg.InfoContext(ctx, "hello", slog.Int("n", 7))
	s.End()

	line := buf.String()
	for _, want := range []string{"subsystem=testsys", "msg=hello", "n=7", "trace_id=" + s.Trace().String()} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
}
