package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count: bucket i holds observations in
// (2^(i-1), 2^i] nanoseconds, so 64 buckets span 1ns to ~584 years —
// every latency this system can produce, with ~2x resolution, in a
// fixed 512-byte array of atomics.
const histBuckets = 64

// Histogram is a lock-free log2-bucketed latency histogram: Observe is
// two atomic adds and fits hot paths (a measurement cell, an HTTP
// exchange); Snapshot and the quantile helpers read without stopping
// writers. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
	ex     exemplars
}

// Observe records one duration. Non-positive durations land in the
// first bucket, so a degenerate clock reading never panics or skews
// the upper buckets.
func (h *Histogram) Observe(d time.Duration) {
	idx := 0
	if d > 0 {
		idx = bits.Len64(uint64(d) - 1) // ceil(log2), so 2^k lands in bucket k
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
		h.sumNS.Add(int64(d))
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Because
// writers proceed during the copy, the per-bucket counts may disagree
// with Count by the handful of observations in flight; all summaries
// are computed against the bucket sum so they stay internally
// consistent.
type HistogramSnapshot struct {
	Counts [histBuckets]int64
	Count  int64
	SumNS  int64
}

// Snapshot copies the histogram counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.SumNS = h.sumNS.Load()
	return s
}

// BucketBound returns bucket i's inclusive upper bound.
func BucketBound(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << uint(i))
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1) — a conservative estimate within 2x of the true
// value, which is the fidelity log2 bucketing buys. Returns 0 when
// empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}

// Mean returns the arithmetic mean observation.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Summary is the operator-facing digest of a histogram.
type Summary struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Summary digests the snapshot into count, mean, and p50/p90/p99.
func (s HistogramSnapshot) Summary() Summary {
	return Summary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}

// Summary digests the histogram's current state.
func (h *Histogram) Summary() Summary { return h.Snapshot().Summary() }

// Registry maps metric family names to histograms and renders them in
// the Prometheus text exposition format. A family is either unlabeled
// (one histogram) or labeled (one histogram per label value, e.g. one
// per backend). Register calls are idempotent: the first caller of a
// name creates the family, later callers get the same histogram, so
// package-level instruments in different subsystems can share one
// process-global registry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type family struct {
	name, help string
	labelKey   string
	hists      map[string]*Histogram // label value -> histogram; "" for unlabeled
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Default is the process-global registry behind /metricsz; subsystem
// instruments register here at init.
var Default = NewRegistry()

// Histogram returns the unlabeled histogram family name, creating it on
// first use. Panics if name already exists as a labeled family — the
// two shapes cannot share one Prometheus family.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.histogram(name, help, "", "")
}

// LabeledHistogram returns the histogram for one label value of family
// name (e.g. backend="http://10.0.0.1:8722"), creating family and
// series on first use.
func (r *Registry) LabeledHistogram(name, help, labelKey, labelValue string) *Histogram {
	if labelKey == "" {
		panic("telemetry: LabeledHistogram requires a label key")
	}
	return r.histogram(name, help, labelKey, labelValue)
}

func (r *Registry) histogram(name, help, labelKey, labelValue string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, labelKey: labelKey, hists: make(map[string]*Histogram)}
		r.fams[name] = f
	}
	if f.labelKey != labelKey {
		panic(fmt.Sprintf("telemetry: family %s registered with label %q, requested %q", name, f.labelKey, labelKey))
	}
	h, ok := f.hists[labelValue]
	if !ok {
		h = &Histogram{}
		f.hists[labelValue] = h
	}
	return h
}

// Summaries returns the digest of every series, keyed by family name
// (labeled series append {label="value"}).
func (r *Registry) Summaries() map[string]Summary {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	out := make(map[string]Summary)
	for _, f := range fams {
		for lv, h := range f.hists {
			key := f.name
			if f.labelKey != "" {
				key = fmt.Sprintf("%s{%s=%q}", f.name, f.labelKey, lv)
			}
			out[key] = h.Summary()
		}
	}
	return out
}

// WritePrometheus renders every family as a Prometheus histogram:
// cumulative _bucket series with le in seconds, then _sum and _count.
// Families and label values are emitted in sorted order so scrapes are
// diffable; empty buckets above a series' maximum observation are
// elided to keep the page proportional to observed range.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name)
		values := make([]string, 0, len(f.hists))
		for lv := range f.hists {
			values = append(values, lv)
		}
		sort.Strings(values)
		for _, lv := range values {
			h := f.hists[lv]
			s := h.Snapshot()
			top := 0
			for i, c := range s.Counts {
				if c > 0 {
					top = i
				}
			}
			var cum int64
			var bucketSum int64
			for i := 0; i <= top; i++ {
				bucketSum += s.Counts[i]
			}
			withExemplars := h.ex.any.Load()
			for i := 0; i <= top; i++ {
				if s.Counts[i] == 0 && i != top {
					continue
				}
				cum += s.Counts[i]
				le := strconv.FormatFloat(float64(BucketBound(i))/1e9, 'g', -1, 64)
				fmt.Fprintf(&b, "%s_bucket{%s} %d", f.name, labelPairs(f.labelKey, lv, le), cum)
				if withExemplars {
					if e := h.ex.slots[i].Load(); e != nil {
						appendExemplar(&b, e)
					}
				}
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "%s_bucket{%s} %d\n", f.name, labelPairs(f.labelKey, lv, "+Inf"), bucketSum)
			suffix := ""
			if f.labelKey != "" {
				suffix = "{" + f.labelKey + "=" + promQuote(lv) + "}"
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, suffix,
				strconv.FormatFloat(float64(s.SumNS)/1e9, 'g', -1, 64))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, suffix, bucketSum)
		}
	}
	_, _ = io.WriteString(w, b.String())
}

// labelPairs renders the label set of one _bucket sample: the family
// label (if any) then le, Prometheus-quoted. promQuote, not
// strconv.Quote: Go escapes control and non-ASCII bytes in forms stock
// Prometheus parsers read literally.
func labelPairs(labelKey, labelValue, le string) string {
	if labelKey == "" {
		return `le="` + le + `"`
	}
	return labelKey + "=" + promQuote(labelValue) + `,le="` + le + `"`
}
