package telemetry

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParsePrometheusBasic(t *testing.T) {
	page := `# HELP powerperfd_cache_hits_total Measure cells served from cache.
# TYPE powerperfd_cache_hits_total counter
powerperfd_cache_hits_total 42
# HELP powerperfd_cache_shard_entries Resident entries per shard.
# TYPE powerperfd_cache_shard_entries gauge
powerperfd_cache_shard_entries{shard="0"} 3
powerperfd_cache_shard_entries{shard="1"} 5
`
	fams, err := ParsePrometheus(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	if fams[0].Type != "counter" || fams[0].Samples[0].Value != 42 {
		t.Fatalf("counter family parsed wrong: %+v", fams[0])
	}
	g := fams[1]
	if g.Type != "gauge" || len(g.Samples) != 2 {
		t.Fatalf("gauge family parsed wrong: %+v", g)
	}
	if v, ok := g.Samples[1].Label("shard"); !ok || v != "1" {
		t.Fatalf("label lookup failed: %+v", g.Samples[1])
	}
	if p := g.Sample("powerperfd_cache_shard_entries", []Label{{"shard", "1"}}); p == nil || p.Value != 5 {
		t.Fatalf("Sample lookup failed: %+v", p)
	}
}

func TestParsePrometheusHistogramFamilies(t *testing.T) {
	reg := NewRegistry()
	h := reg.LabeledHistogram("x_seconds", "An x.", "backend", "http://a")
	h.Observe(3 * time.Millisecond)
	h.Observe(70 * time.Millisecond)
	var b strings.Builder
	reg.WritePrometheus(&b)

	fams, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1: %+v", len(fams), fams)
	}
	f := fams[0]
	if f.Name != "x_seconds" || f.Type != "histogram" {
		t.Fatalf("family = %q type %q", f.Name, f.Type)
	}
	// _bucket/_sum/_count samples must all attach to the base family.
	var buckets, sums, counts int
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			buckets++
			if le, ok := s.Label("le"); !ok || le == "" {
				t.Fatalf("bucket without le: %+v", s)
			}
		case strings.HasSuffix(s.Name, "_sum"):
			sums++
		case strings.HasSuffix(s.Name, "_count"):
			counts++
			if s.Value != 2 {
				t.Fatalf("count = %v, want 2", s.Value)
			}
		}
	}
	if buckets == 0 || sums != 1 || counts != 1 {
		t.Fatalf("buckets=%d sums=%d counts=%d", buckets, sums, counts)
	}
}

func TestParsePrometheusEscaping(t *testing.T) {
	page := "# HELP f A help with backslash \\\\ and\\nnewline.\n" +
		"# TYPE f gauge\n" +
		`f{path="C:\\dir\"quote\nline"} 1` + "\n"
	fams, err := ParsePrometheus(page)
	if err != nil {
		t.Fatal(err)
	}
	if want := "A help with backslash \\ and\nnewline."; fams[0].Help != want {
		t.Fatalf("help = %q, want %q", fams[0].Help, want)
	}
	v, _ := fams[0].Samples[0].Label("path")
	if want := "C:\\dir\"quote\nline"; v != want {
		t.Fatalf("label = %q, want %q", v, want)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for _, page := range []string{
		"metric",                      // no value
		"metric{a=\"b\" 1",            // unterminated labels
		"metric{a=b} 1",               // unquoted value
		"1metric 2",                   // bad name
		"metric nope",                 // bad value
		"# TYPE m wat\nm 1",           // unknown type
		"metric{=\"v\"} 1",            // empty label name
		`metric{a="v} 1`,              // unterminated quote
		"metric{a=\"v\\\"} 1",         // dangling escape at end of quote
		"# HELP 1bad text\n",          // invalid family name in HELP
		"# TYPE onlyname\nonlyname 1", // malformed type
	} {
		if _, err := ParsePrometheus(page); err == nil {
			t.Errorf("ParsePrometheus(%q) = nil error, want failure", page)
		}
	}
}

// TestRenderParseRoundTrip pins the core identity: parsing a rendered
// page reproduces the families exactly — order, labels, values.
func TestRenderParseRoundTrip(t *testing.T) {
	fams := []MetricFamily{
		{Name: "a_total", Help: "Counts a.", Type: "counter",
			Samples: []MetricPoint{{Name: "a_total", Value: 7}}},
		{Name: "weird", Help: "Help with \\ and\nnewline.", Type: "gauge",
			Samples: []MetricPoint{
				{Name: "weird", Labels: []Label{{"k", `va"l\ue` + "\n"}}, Value: 0.25},
				{Name: "weird", Labels: []Label{{"k", "plain"}, {"z", "2"}}, Value: -3},
			}},
		{Name: "h_seconds", Help: "A histogram.", Type: "histogram",
			Samples: []MetricPoint{
				{Name: "h_seconds_bucket", Labels: []Label{{"le", "0.001"}}, Value: 1},
				{Name: "h_seconds_bucket", Labels: []Label{{"le", "+Inf"}}, Value: 2},
				{Name: "h_seconds_sum", Value: 1.5},
				{Name: "h_seconds_count", Value: 2},
			}},
	}
	var b strings.Builder
	RenderPrometheus(&b, fams)
	got, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatalf("parse of rendered page failed: %v\npage:\n%s", err, b.String())
	}
	if !reflect.DeepEqual(got, fams) {
		t.Fatalf("round trip mutated families:\n got %+v\nwant %+v\npage:\n%s", got, fams, b.String())
	}
}

// TestRegistryRoundTrip is the writer-side guard: the histogram
// registry's exposition page must parse, re-render, and re-parse to the
// identical families — including a label value that needs escaping.
func TestRegistryRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("plain_seconds", "Unlabeled.").Observe(5 * time.Millisecond)
	h := reg.LabeledHistogram("lab_seconds", "Labeled.", "backend", `http://x"y\z`)
	h.Observe(time.Millisecond)
	h.Observe(40 * time.Millisecond)

	var b strings.Builder
	reg.WritePrometheus(&b)
	if problems := LintPrometheus(b.String()); len(problems) != 0 {
		t.Fatalf("registry page not lint-clean: %v", problems)
	}
	first, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatalf("parse: %v\npage:\n%s", err, b.String())
	}
	var r strings.Builder
	RenderPrometheus(&r, first)
	second, err := ParsePrometheus(r.String())
	if err != nil {
		t.Fatalf("reparse: %v\npage:\n%s", err, r.String())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("registry page not stable under parse/render:\nfirst %+v\nsecond %+v", first, second)
	}
	f := second[1]
	if f.Name != "plain_seconds" && second[0].Name != "plain_seconds" {
		t.Fatalf("plain family missing: %+v", second)
	}
	lab := second[0]
	if lab.Name != "lab_seconds" {
		lab = second[1]
	}
	if v, ok := lab.Samples[0].Label("backend"); !ok || v != `http://x"y\z` {
		t.Fatalf("escaped backend label did not survive: %+v", lab.Samples[0])
	}
}

func TestPromQuote(t *testing.T) {
	for in, want := range map[string]string{
		"plain":       `"plain"`,
		`ba\ck"slash`: `"ba\\ck\"slash"`,
		"new\nline":   `"new\nline"`,
		"tab\there":   "\"tab\there\"", // tabs pass through, unlike strconv.Quote
	} {
		if got := PromQuote(in); got != want {
			t.Errorf("PromQuote(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestBuildInfo(t *testing.T) {
	b := BuildInfo()
	if b.GoVersion == "" {
		t.Fatal("BuildInfo GoVersion empty")
	}
	if b.Version == "" || b.Commit == "" {
		t.Fatalf("BuildInfo fields must never be empty: %+v", b)
	}
	if s := b.String(); !strings.Contains(s, b.GoVersion) {
		t.Fatalf("String() = %q missing go version", s)
	}
	tok := b.UserAgentToken()
	if !strings.HasPrefix(tok, "(") || !strings.HasSuffix(tok, ")") {
		t.Fatalf("UserAgentToken() = %q, want parenthesized token", tok)
	}
	if again := BuildInfo(); again != b {
		t.Fatalf("BuildInfo not stable: %+v vs %+v", again, b)
	}
}

func TestParsePrometheusExemplarsRoundTrip(t *testing.T) {
	page := `# HELP req_seconds Request latency.
# TYPE req_seconds histogram
req_seconds_bucket{le="0.25"} 3 # {trace_id="00000000deadbeef",endpoint="measure"} 0.21 1754640000.125
req_seconds_bucket{le="+Inf"} 4 # {trace_id="00000000cafef00d"} 1.5
req_seconds_sum 2.2
req_seconds_count 4
# HELP errs_total Errors.
# TYPE errs_total counter
errs_total 7 # {trace_id="0000000000000001"} 1
# EOF
`
	fams, err := ParsePrometheus(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	b0 := fams[0].Samples[0]
	if b0.Exemplar == nil {
		t.Fatalf("bucket lost its exemplar: %+v", b0)
	}
	if got := b0.Exemplar.TraceID(); got != "00000000deadbeef" {
		t.Fatalf("exemplar trace id = %q", got)
	}
	if b0.Exemplar.Value != 0.21 || !b0.Exemplar.HasTS || b0.Exemplar.TS != 1754640000.125 {
		t.Fatalf("exemplar parsed wrong: %+v", b0.Exemplar)
	}
	if b0.Value != 3 {
		t.Fatalf("bucket value = %v, want 3", b0.Value)
	}
	if fams[0].Samples[1].Exemplar == nil || fams[0].Samples[1].Exemplar.HasTS {
		t.Fatalf("timestampless exemplar parsed wrong: %+v", fams[0].Samples[1].Exemplar)
	}
	if fams[1].Samples[0].Exemplar == nil || fams[1].Samples[0].Value != 7 {
		t.Fatalf("counter exemplar parsed wrong: %+v", fams[1].Samples[0])
	}

	// Round trip: render with the OpenMetrics terminator, parse again,
	// families identical.
	var out strings.Builder
	RenderOpenMetrics(&out, fams)
	if !strings.HasSuffix(out.String(), "# EOF\n") {
		t.Fatalf("RenderOpenMetrics missing # EOF:\n%s", out.String())
	}
	again, err := ParsePrometheus(out.String())
	if err != nil {
		t.Fatalf("reparse: %v\npage:\n%s", err, out.String())
	}
	if !reflect.DeepEqual(fams, again) {
		t.Fatalf("round trip drifted:\nwant %+v\ngot  %+v", fams, again)
	}
}

func TestParsePrometheusEOFTerminates(t *testing.T) {
	page := "# HELP a_total A.\n# TYPE a_total counter\na_total 1\n# EOF\nthis is not exposition text\n"
	fams, err := ParsePrometheus(page)
	if err != nil {
		t.Fatalf("content after # EOF must be ignored, got error: %v", err)
	}
	if len(fams) != 1 || fams[0].Samples[0].Value != 1 {
		t.Fatalf("parsed wrong: %+v", fams)
	}
}

func TestHistogramExemplarExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.LabeledHistogram("lat_seconds", "Latency.", "endpoint", "measure")
	h.Observe(3 * time.Millisecond)
	h.ObserveWithExemplar(200*time.Millisecond, TraceID(0xdeadbeef), String("endpoint", "measure"))
	if e := h.Exemplar(bucketIndex(200 * time.Millisecond)); e == nil || e.TraceID() != TraceID(0xdeadbeef).String() {
		t.Fatalf("bucket exemplar = %+v", e)
	}

	var b strings.Builder
	reg.WritePrometheus(&b)
	page := b.String()
	if !strings.Contains(page, `# {trace_id="00000000deadbeef",endpoint="measure"} 0.2`) {
		t.Fatalf("exposition lost the exemplar:\n%s", page)
	}
	// The page must lint clean and parse back with the exemplar intact.
	if probs := LintPrometheus(page); len(probs) != 0 {
		t.Fatalf("lint problems: %v\n%s", probs, page)
	}
	fams, err := ParsePrometheus(page)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range fams[0].Samples {
		if s.Exemplar != nil && s.Exemplar.TraceID() == TraceID(0xdeadbeef).String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("parsed page lost the exemplar: %+v", fams[0].Samples)
	}
}

func TestObserveWithExemplarZeroTraceDegrades(t *testing.T) {
	var h Histogram
	h.ObserveWithExemplar(5*time.Millisecond, 0)
	if h.Snapshot().Count != 1 {
		t.Fatal("observation lost")
	}
	if e := h.Exemplar(bucketIndex(5 * time.Millisecond)); e != nil {
		t.Fatalf("zero trace must not store an exemplar: %+v", e)
	}
}
