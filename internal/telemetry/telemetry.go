// Package telemetry is the observability substrate of the study
// pipeline: request-scoped spans with monotonic timing and parent
// links, lock-free log-bucketed latency histograms, and structured
// logging with shared trace correlation.
//
// The package exists for the same reason the paper's rig pairs every
// benchmark run with a 50 Hz power logger: averages hide phase
// structure. A sharded study that retries, hedges, and fails over is
// opaque unless every decision is timestamped and attributable, so the
// tracer records where a slow study spent its time and the histograms
// record the full latency distribution, not just means.
//
// Telemetry is a pure side channel. Nothing here feeds back into the
// measurement pipeline: spans and histograms observe wall-clock
// durations and counts, never seeds or measured values, so a study's
// CSV bytes are identical with tracing enabled or disabled (enforced
// by TestStudyBytesIdenticalWithTracing).
package telemetry

import (
	"fmt"
	"strconv"
)

// TraceID identifies one request tree end to end, across processes:
// the cluster coordinator mints it and backends adopt it from the
// X-Trace-Id header, so backend spans stitch into the coordinator's
// trace.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the id as 16 lowercase hex digits, the wire form used
// in headers and log lines.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the 16-hex-digit wire form of a trace or span id.
func ParseID(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: bad id %q: %w", s, err)
	}
	return v, nil
}

// Attr is one key=value span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: strconv.Itoa(value)} }
