package telemetry

import (
	"context"
	"testing"
)

// Regression for the dangling-exemplar bug: an SLO breach exemplar
// links to a trace id, but the retention ring overwrites oldest-first,
// so by the time someone followed the link the trace was often gone.
// Pinned traces must survive arbitrary ring churn.
func TestPinSurvivesRingChurn(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.StartSpan(context.Background(), "breach.root")
	_, child := tr.StartSpan(ctx, "breach.child")
	child.End()
	root.End()
	trace := root.Trace()

	tr.Pin(trace)
	// Flood the ring far past its capacity.
	for i := 0; i < 32; i++ {
		_, s := tr.StartSpan(context.Background(), "churn")
		s.End()
	}

	got := tr.TraceSpans(trace)
	if len(got) != 2 {
		t.Fatalf("pinned trace has %d spans after churn, want 2", len(got))
	}
	if got[0].Name != "breach.child" && got[1].Name != "breach.child" {
		t.Fatalf("pinned spans malformed: %+v", got)
	}

	// Unpin releases the storage; the churned-out spans stay gone.
	tr.Unpin(trace)
	if n := len(tr.TraceSpans(trace)); n != 0 {
		t.Fatalf("unpinned trace still resolves %d spans", n)
	}
	if tr.PinnedTraces() != 0 {
		t.Fatal("pinned count nonzero after release")
	}
}

// A pinned trace must also be immune to the tail sampler: spans
// buffered pending a verdict are adopted at Pin time, and spans
// completing afterward commit straight to pinned storage even when the
// policy would drop the trace.
func TestPinOverridesTailSampling(t *testing.T) {
	tr := NewTracer(16)
	tr.SetTailPolicy(&TailPolicy{SampleRate: 0}) // drop every unremarkable trace

	ctx, root := tr.StartSpan(context.Background(), "slo.root")
	_, early := tr.StartSpan(ctx, "slo.early")
	early.End() // buffered in the pending set, verdict outstanding

	tr.Pin(root.Trace())

	_, late := tr.StartSpan(ctx, "slo.late")
	late.End()
	root.End()

	got := tr.TraceSpans(root.Trace())
	if len(got) != 3 {
		t.Fatalf("pinned trace kept %d spans under SampleRate 0, want 3", len(got))
	}
	// A sibling trace without a pin is still dropped, proving the
	// policy stayed active.
	_, other := tr.StartSpan(context.Background(), "unpinned")
	other.End()
	if n := len(tr.TraceSpans(other.Trace())); n != 0 {
		t.Fatalf("unpinned trace kept %d spans under SampleRate 0, want 0", n)
	}
}

func TestPinRefCountsAndCap(t *testing.T) {
	tr := NewTracer(8)
	_, s := tr.StartSpan(context.Background(), "shared")
	s.End()
	trace := s.Trace()

	tr.Pin(trace)
	tr.Pin(trace) // second exemplar, same trace
	for i := 0; i < 16; i++ {
		_, f := tr.StartSpan(context.Background(), "filler")
		f.End()
	}
	tr.Unpin(trace)
	if len(tr.TraceSpans(trace)) != 1 {
		t.Fatal("trace released after first Unpin despite second reference")
	}
	tr.Unpin(trace)
	if len(tr.TraceSpans(trace)) != 0 {
		t.Fatal("trace still resolves after final Unpin")
	}

	// The pin table is bounded: pins beyond the cap are refused and
	// their Unpin is a no-op.
	for i := 0; i < maxPinnedTraces+8; i++ {
		_, f := tr.StartSpan(context.Background(), "capfill")
		f.End()
		tr.Pin(f.Trace())
	}
	if got := tr.PinnedTraces(); got != maxPinnedTraces {
		t.Fatalf("pinned %d traces, cap is %d", got, maxPinnedTraces)
	}
	tr.Unpin(0) // zero id: no-op
	var nilTr *Tracer
	nilTr.Pin(1)
	nilTr.Unpin(1)
	if nilTr.PinnedTraces() != 0 {
		t.Fatal("nil tracer pin accounting")
	}
}
