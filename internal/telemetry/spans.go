package telemetry

// Raw span export. The Chrome trace format (chrome.go) rebases every
// timestamp onto a per-export origin, which is exactly wrong for fleet
// assembly: a monitor stitching spans harvested from several backends
// needs absolute wall-clock starts and stable 64-bit ids. WriteSpans
// emits the lossless form — a JSON array of SpanData — served at
// /v1/traces?format=spans and consumed by internal/traceanalytics.

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
)

// Attr returns the value of the first attribute named key, or "".
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// WriteSpans renders spans as a JSON array of raw span records with
// absolute timestamps, sorted by start time (ties broken by span id)
// so repeated exports of the same retention are byte-identical.
func WriteSpans(w io.Writer, spans []SpanData) error {
	sorted := make([]SpanData, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		if !sorted[i].Start.Equal(sorted[j].Start) {
			return sorted[i].Start.Before(sorted[j].Start)
		}
		return sorted[i].ID < sorted[j].ID
	})
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, d := range sorted {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(d)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteSpans exports the tracer's retention (or, with trace != 0, one
// trace) in raw span form. Nil tracers export an empty array.
func (t *Tracer) WriteSpans(w io.Writer, trace TraceID) error {
	var spans []SpanData
	if t != nil {
		if trace != 0 {
			spans = t.TraceSpans(trace)
		} else {
			spans = t.Snapshot()
		}
	}
	return WriteSpans(w, spans)
}
