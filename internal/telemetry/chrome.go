package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Trace Event Format "complete" event, the schema
// chrome://tracing and Perfetto load directly — the same flame view
// `go tool trace` gives the runtime, here for the study pipeline.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds from the export origin
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  uint32            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders spans in the Chrome trace-event JSON format.
// Timestamps are microseconds relative to the earliest span; each trace
// renders as one row (tid derived from the trace id), so concurrent
// studies stay visually separate.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	events := make([]chromeEvent, 0, len(spans))
	var origin int64
	for i, d := range spans {
		if ns := d.Start.UnixNano(); i == 0 || ns < origin {
			origin = ns
		}
	}
	for _, d := range spans {
		args := map[string]string{
			"trace_id": d.Trace.String(),
			"span_id":  d.ID.String(),
		}
		if d.Parent != 0 {
			args["parent_id"] = d.Parent.String()
		}
		for _, a := range d.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: d.Name,
			Cat:  "powerperf",
			Ph:   "X",
			TS:   float64(d.Start.UnixNano()-origin) / 1e3,
			Dur:  float64(d.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  uint32(d.Trace),
			Args: args,
		})
	}
	// Stable start order keeps exports diffable and viewers fast.
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	buf, err := json.MarshalIndent(events, "", " ")
	if err != nil {
		return fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// WriteChromeTrace exports the tracer's retained spans (all of them, or
// a single trace when trace != 0).
func (t *Tracer) WriteChromeTrace(w io.Writer, trace TraceID) error {
	var spans []SpanData
	if trace != 0 {
		spans = t.TraceSpans(trace)
	} else {
		spans = t.Snapshot()
	}
	return WriteChromeTrace(w, spans)
}
