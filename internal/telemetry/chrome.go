package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Trace Event Format "complete" event, the schema
// chrome://tracing and Perfetto load directly — the same flame view
// `go tool trace` gives the runtime, here for the study pipeline.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds from the export origin
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  uint32            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders spans in the Chrome trace-event JSON format.
// Timestamps are microseconds relative to the earliest span; each trace
// renders as one row (tid derived from the trace id), so concurrent
// studies stay visually separate.
//
// The export is incremental: events are marshaled one at a time into a
// buffered writer instead of materializing the whole ring as one
// indented JSON document. A full span ring used to cost one O(ring)
// event slice, one args map per span, and a monolithic MarshalIndent
// buffer per request — the /v1/traces outlier in the PR 5 latency
// profile. Chunked output is byte-different from the old indented form
// but the same JSON value; consumers (chrome://tracing, Perfetto, the
// monitor's scraper) parse it identically.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	if len(spans) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	var origin int64
	for i, d := range spans {
		if ns := d.Start.UnixNano(); i == 0 || ns < origin {
			origin = ns
		}
	}
	// Stable start order keeps exports diffable and viewers fast. The
	// microsecond TS is a monotone function of Start, so ordering by
	// Start orders by TS exactly as the event-slice sort did.
	idx := make([]int, len(spans))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return spans[idx[i]].Start.UnixNano() < spans[idx[j]].Start.UnixNano()
	})

	bw := bufio.NewWriterSize(w, 32<<10)
	// One event struct and args map serve every span: encoding/json
	// renders map keys in sorted order, so reuse keeps output
	// deterministic.
	ev := chromeEvent{Cat: "powerperf", Ph: "X", PID: 1, Args: make(map[string]string, 8)}
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for n, i := range idx {
		d := &spans[i]
		clear(ev.Args)
		ev.Args["trace_id"] = d.Trace.String()
		ev.Args["span_id"] = d.ID.String()
		if d.Parent != 0 {
			ev.Args["parent_id"] = d.Parent.String()
		}
		for _, a := range d.Attrs {
			ev.Args[a.Key] = a.Value
		}
		ev.Name = d.Name
		ev.TS = float64(d.Start.UnixNano()-origin) / 1e3
		ev.Dur = float64(d.Dur.Nanoseconds()) / 1e3
		ev.TID = uint32(d.Trace)
		buf, err := json.Marshal(&ev)
		if err != nil {
			return fmt.Errorf("telemetry: chrome trace: %w", err)
		}
		if n > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(" "); err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTrace exports the tracer's retained spans (all of them, or
// a single trace when trace != 0).
func (t *Tracer) WriteChromeTrace(w io.Writer, trace TraceID) error {
	var spans []SpanData
	if trace != 0 {
		spans = t.TraceSpans(trace)
	} else {
		spans = t.Snapshot()
	}
	return WriteChromeTrace(w, spans)
}
