package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	// Exact powers of two land in their own bucket (inclusive upper
	// bound); the next nanosecond spills into the next bucket.
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	h.Observe(1024)
	h.Observe(1025)
	h.Observe(0)
	h.Observe(-5)
	s := h.Snapshot()
	want := map[int]int64{0: 3, 1: 1, 2: 2, 10: 1, 11: 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Errorf("bucket %d: got %d want %d", i, c, want[i])
		}
	}
	if s.Count != 8 {
		t.Fatalf("count %d want 8", s.Count)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond) // bucket bound 2^20ns ≈ 1.05ms
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 > 2*time.Millisecond {
		t.Errorf("p50 %v, want ~1ms bucket bound", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 500*time.Millisecond {
		t.Errorf("p99 %v, want ~1s bucket bound", p99)
	}
	sum := s.Summary()
	if sum.Count != 100 || sum.P90 > sum.P99 || sum.P50 > sum.P90 {
		t.Errorf("summary not monotone: %+v", sum)
	}
	mean := s.Mean()
	if mean < 50*time.Millisecond || mean > 200*time.Millisecond {
		t.Errorf("mean %v, want ~100.9ms", mean)
	}
}

func TestHistogramOverflowClamped(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(1<<63 - 1))
	s := h.Snapshot()
	if s.Counts[histBuckets-1] != 1 {
		t.Fatalf("max duration not clamped into last bucket")
	}
}

// TestHistogramConcurrent exercises parallel writers against snapshot
// readers under -race: Observe must stay lock-free-correct and
// Snapshot must never see torn totals exceeding what was written.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers, per = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshot reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count > writers*per {
				t.Errorf("snapshot count %d exceeds writes %d", s.Count, writers*per)
				return
			}
			s.Summary()
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	for h.Snapshot().Count < writers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := h.Snapshot().Count; got != writers*per {
		t.Fatalf("final count %d want %d", got, writers*per)
	}
}

func TestRegistryIdempotentAndLabeled(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("x_seconds", "help")
	b := r.Histogram("x_seconds", "help")
	if a != b {
		t.Fatal("same name returned distinct histograms")
	}
	l1 := r.LabeledHistogram("y_seconds", "help", "backend", "a")
	l2 := r.LabeledHistogram("y_seconds", "help", "backend", "b")
	if l1 == l2 {
		t.Fatal("distinct label values share a histogram")
	}
	if r.LabeledHistogram("y_seconds", "help", "backend", "a") != l1 {
		t.Fatal("labeled lookup not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mixing labeled and unlabeled shapes should panic")
		}
	}()
	r.LabeledHistogram("x_seconds", "help", "backend", "a")
}

func TestRegistryPrometheusShape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("demo_seconds", "A demo histogram.")
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	lb := r.LabeledHistogram("per_backend_seconds", "Per backend.", "backend", "http://a")
	lb.Observe(10 * time.Millisecond)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP demo_seconds A demo histogram.",
		"# TYPE demo_seconds histogram",
		`demo_seconds_bucket{le="+Inf"} 2`,
		"demo_seconds_count 2",
		"# TYPE per_backend_seconds histogram",
		`per_backend_seconds_bucket{backend="http://a",le="+Inf"} 1`,
		`per_backend_seconds_count{backend="http://a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
