package telemetry

// Prometheus text-exposition linter. /metricsz is consumed by scrapers
// that silently drop malformed families, so the test suite lints the
// rendered output instead of trusting the writer: every sample must
// belong to a family with HELP and TYPE metadata, families must not be
// declared twice, and histogram series must have monotone, cumulative
// buckets whose +Inf count equals the _count sample.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// promSample is one parsed exposition line: name{labels} value, plus
// whether the line carried an OpenMetrics exemplar suffix.
type promSample struct {
	name     string
	labels   map[string]string
	value    float64
	line     int
	exemplar bool
}

// LintPrometheus parses Prometheus text exposition and returns a list
// of problems, empty when the text is well-formed.
func LintPrometheus(text string) []string {
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	helpFor := map[string]bool{}
	typeFor := map[string]string{}
	var samples []promSample
	sawEOF := false

	for i, line := range strings.Split(text, "\n") {
		n := i + 1
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if sawEOF {
			report("line %d: content after # EOF: %s", n, line)
			continue
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) < 2 || fields[1] == "" {
				report("line %d: HELP without text: %s", n, line)
			}
			if helpFor[fields[0]] {
				report("line %d: duplicate HELP for family %s", n, fields[0])
			}
			helpFor[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				report("line %d: malformed TYPE: %s", n, line)
				continue
			}
			if _, dup := typeFor[fields[0]]; dup {
				report("line %d: duplicate TYPE for family %s", n, fields[0])
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				report("line %d: unknown TYPE %q", n, fields[1])
			}
			typeFor[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		s, err := parsePromLine(line)
		if err != nil {
			report("line %d: %v", n, err)
			continue
		}
		s.line = n
		samples = append(samples, s)
	}

	// Every sample must belong to a declared family. Histogram samples
	// carry the _bucket/_sum/_count suffix; strip it to find the family.
	for _, s := range samples {
		fam := histogramFamily(s.name, typeFor)
		if !helpFor[fam] {
			report("line %d: sample %s has no # HELP for family %s", s.line, s.name, fam)
		}
		if _, ok := typeFor[fam]; !ok {
			report("line %d: sample %s has no # TYPE for family %s", s.line, s.name, fam)
		}
		// OpenMetrics allows exemplars only on counters and histogram
		// buckets; anything else is a writer bug.
		if s.exemplar && typeFor[fam] != "counter" &&
			!(typeFor[fam] == "histogram" && strings.HasSuffix(s.name, "_bucket")) {
			report("line %d: exemplar on %s, which is neither a counter nor a histogram bucket", s.line, s.name)
		}
	}

	problems = append(problems, lintHistograms(samples, typeFor)...)
	return problems
}

// histogramFamily maps a sample name to its metric family: histogram
// sample names are the family plus a _bucket/_sum/_count suffix.
func histogramFamily(name string, typeFor map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typeFor[base] == "histogram" {
			return base
		}
	}
	return name
}

// seriesKey identifies one histogram series: family plus its labels
// minus le, in sorted order.
func seriesKey(fam string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(fam)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, labels[k])
	}
	return b.String()
}

func lintHistograms(samples []promSample, typeFor map[string]string) []string {
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	type series struct {
		bounds []float64 // parsed le values, in exposition order
		counts []float64
		count  float64
		hasCnt bool
	}
	byKey := map[string]*series{}
	get := func(key string) *series {
		s := byKey[key]
		if s == nil {
			s = &series{}
			byKey[key] = s
		}
		return s
	}

	for _, s := range samples {
		fam := histogramFamily(s.name, typeFor)
		if typeFor[fam] != "histogram" {
			continue
		}
		key := seriesKey(fam, s.labels)
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				report("line %d: %s bucket without le label", s.line, s.name)
				continue
			}
			bound, err := parseLe(le)
			if err != nil {
				report("line %d: %s: %v", s.line, s.name, err)
				continue
			}
			sr := get(key)
			sr.bounds = append(sr.bounds, bound)
			sr.counts = append(sr.counts, s.value)
		case strings.HasSuffix(s.name, "_count"):
			sr := get(key)
			sr.count, sr.hasCnt = s.value, true
		}
	}

	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		sr := byKey[key]
		if len(sr.bounds) == 0 {
			report("histogram series %s has no buckets", key)
			continue
		}
		for i := 1; i < len(sr.bounds); i++ {
			if sr.bounds[i] <= sr.bounds[i-1] {
				report("histogram series %s: le bounds not strictly increasing at index %d", key, i)
			}
			if sr.counts[i] < sr.counts[i-1] {
				report("histogram series %s: bucket counts not cumulative at index %d", key, i)
			}
		}
		last := len(sr.bounds) - 1
		if sr.bounds[last] != infBound {
			report("histogram series %s missing +Inf bucket", key)
		}
		if !sr.hasCnt {
			report("histogram series %s missing _count sample", key)
		} else if sr.counts[last] != sr.count {
			report("histogram series %s: +Inf bucket %v != _count %v", key, sr.counts[last], sr.count)
		}
	}
	return problems
}

var infBound = math.Inf(1)

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return infBound, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable le %q", s)
	}
	return v, nil
}

// parsePromLine splits `name{k="v",...} value [# exemplar]` (labels
// and exemplar optional) into a sample, validating the metric-name
// charset, label quoting, and exemplar shape.
func parsePromLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest, exText := splitExemplarText(line)
	if exText != "" {
		if err := lintExemplar(exText); err != nil {
			return s, err
		}
		s.exemplar = true
	}
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unbalanced braces: %s", line)
		}
		s.name = rest[:brace]
		labelText := rest[brace+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
		for _, pair := range splitLabels(labelText) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			k := strings.TrimSpace(pair[:eq])
			v := strings.TrimSpace(pair[eq+1:])
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return s, fmt.Errorf("unquoted label value %q", pair)
			}
			s.labels[k] = v[1 : len(v)-1]
		}
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("want `name value`: %s", line)
		}
		s.name, rest = fields[0], fields[1]
	}
	if !validMetricName(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("unparseable value in %q", line)
	}
	s.value = v
	return s, nil
}

// splitExemplarText splits a sample line at the first unquoted '#',
// which by the exposition grammar can only open an exemplar: label
// values were quoted, and floats cannot contain '#'. Returns the
// sample text and the exemplar text ("" when none).
func splitExemplarText(line string) (sample, exemplar string) {
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inQuote {
			// Consume escape pairs whole: checking only the previous byte
			// misreads `\\"` (escaped backslash, then a real closing
			// quote) as an escaped quote and never leaves the string.
			switch c {
			case '\\':
				i++
			case '"':
				inQuote = false
			}
			continue
		}
		switch c {
		case '"':
			inQuote = true
		case '#':
			return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:])
		}
	}
	return line, ""
}

// lintExemplar validates the text after an exemplar's '#' marker:
// `{labels} value [timestamp]`, with the OpenMetrics 128-character
// bound on the label set.
func lintExemplar(s string) error {
	if !strings.HasPrefix(s, "{") {
		return fmt.Errorf("exemplar must open with '{': %q", s)
	}
	end := -1
	inQuote := false
	for i := 1; i < len(s) && end < 0; i++ {
		switch s[i] {
		case '"':
			if s[i-1] != '\\' {
				inQuote = !inQuote
			}
		case '}':
			if !inQuote {
				end = i
			}
		}
	}
	if end < 0 {
		return fmt.Errorf("unterminated exemplar label set: %q", s)
	}
	labelText := s[1:end]
	var setLen int
	for _, pair := range splitLabels(labelText) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("malformed exemplar label %q", pair)
		}
		v := strings.TrimSpace(pair[eq+1:])
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted exemplar label value %q", pair)
		}
		setLen += utf8.RuneCountInString(strings.TrimSpace(pair[:eq])) + utf8.RuneCountInString(v[1:len(v)-1])
	}
	if setLen > 128 {
		return fmt.Errorf("exemplar label set is %d runes, over the OpenMetrics 128 limit", setLen)
	}
	fields := strings.Fields(s[end+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("exemplar wants `{labels} value [timestamp]`: %q", s)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("unparseable exemplar value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("unparseable exemplar timestamp %q", fields[1])
		}
	}
	return nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				if p := strings.TrimSpace(s[start:i]); p != "" {
					out = append(out, p)
				}
				start = i + 1
			}
		}
	}
	if p := strings.TrimSpace(s[start:]); p != "" {
		out = append(out, p)
	}
	return out
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
