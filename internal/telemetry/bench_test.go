package telemetry

import (
	"context"
	"testing"
	"time"
)

// BenchmarkHistogramObserve is the hot-path cost floor: two atomic
// adds. Anything above ~10ns/op means the lock-free claim regressed.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

// BenchmarkHistogramObserveParallel measures contention across cores —
// the shape /metricsz instruments see under a parallel MeasureBatch.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		d := time.Millisecond
		for pb.Next() {
			h.Observe(d)
		}
	})
}

// BenchmarkSpanStartEnd is the per-cell tracing cost: id generation,
// attr copy, monotonic clock reads, and the ring commit.
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(DefaultSpanBuffer)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.StartSpan(ctx, "bench", Int("i", i))
		s.End()
	}
}

// BenchmarkSpanDisabled is the overhead with no tracer attached — the
// default in every production path — and must stay near zero.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.StartSpan(ctx, "bench")
		s.End()
	}
}
