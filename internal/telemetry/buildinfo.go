package telemetry

import (
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// Build identifies the running binary: module version, VCS commit, and
// the Go toolchain. It is stamped onto /metricsz (powerperf_build_info),
// /statsz, and the User-Agent of every coordinator and monitor request,
// so a fleet operator can see at a glance which build each process runs
// — the observability sibling of the paper's insistence on reporting
// the exact measurement rig.
type Build struct {
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	Modified  bool   `json:"modified,omitempty"`
	GoVersion string `json:"go"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// BuildInfo reads the binary's embedded build metadata once. Fields
// missing from the embedding (a non-module build, no VCS stamp) come
// back as "unknown" rather than empty, so exposition labels and log
// fields are never blank.
func BuildInfo() Build {
	buildOnce.Do(func() {
		buildInfo = Build{Version: "unknown", Commit: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			buildInfo.Version = v
		} else if v != "" {
			buildInfo.Version = "devel"
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if len(s.Value) >= 12 {
					buildInfo.Commit = s.Value[:12]
				} else if s.Value != "" {
					buildInfo.Commit = s.Value
				}
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders the build as "version (commit, go1.x)", the form the
// dashboard header and log lines use.
func (b Build) String() string {
	var sb strings.Builder
	sb.WriteString(b.Version)
	sb.WriteString(" (")
	sb.WriteString(b.Commit)
	if b.Modified {
		sb.WriteString("+dirty")
	}
	sb.WriteString(", ")
	sb.WriteString(b.GoVersion)
	sb.WriteString(")")
	return sb.String()
}

// UserAgentToken renders the build as a User-Agent comment token,
// e.g. "(abc123def456; go1.24.0)". Parentheses-safe: commit and Go
// version come from the toolchain and contain no delimiters.
func (b Build) UserAgentToken() string {
	commit := b.Commit
	if b.Modified {
		commit += "+dirty"
	}
	return "(" + commit + "; " + b.GoVersion + ")"
}
