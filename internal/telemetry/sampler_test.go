package telemetry

import (
	"context"
	"testing"
	"time"
)

// endWith forces a span's recorded duration for deterministic verdicts.
func endWith(s *Span, d time.Duration) {
	s.start = time.Now().Add(-d)
	s.End()
}

func TestTailSamplingKeepsSlowTraces(t *testing.T) {
	tr := NewTracer(64)
	tr.SetTailPolicy(&TailPolicy{SlowSpan: 100 * time.Millisecond, SampleRate: 0})

	// Fast trace: root + child, both quick — dropped entirely.
	ctx, root := tr.StartSpan(context.Background(), "fast.root")
	_, child := tr.StartSpan(ctx, "fast.child")
	endWith(child, time.Millisecond)
	endWith(root, 2*time.Millisecond)
	if n := len(tr.Snapshot()); n != 0 {
		t.Fatalf("fast trace retained %d spans, want 0", n)
	}

	// Slow trace: the child breaches, so the WHOLE trace is kept —
	// including the fast root that ends after it.
	ctx, root = tr.StartSpan(context.Background(), "slow.root")
	_, child = tr.StartSpan(ctx, "slow.child")
	endWith(child, 250*time.Millisecond)
	endWith(root, time.Millisecond)
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("slow trace retained %d spans, want 2", len(spans))
	}
	kept, dropped := tr.TailStats()
	if kept != 2 || dropped != 2 {
		t.Fatalf("tail stats kept=%d dropped=%d, want 2/2", kept, dropped)
	}
}

func TestTailSamplingKeepsErrorTraces(t *testing.T) {
	tr := NewTracer(64)
	tr.SetTailPolicy(&TailPolicy{KeepErrors: true, SampleRate: 0})
	_, s := tr.StartSpan(context.Background(), "op")
	s.Annotate(String("error", "boom"))
	endWith(s, time.Microsecond)
	if n := len(tr.Snapshot()); n != 1 {
		t.Fatalf("error trace retained %d spans, want 1", n)
	}
}

func TestTailSamplingProbabilisticIsDeterministic(t *testing.T) {
	// Same trace ids, two tracers: identical verdicts, and a rate of
	// 0.5 keeps roughly half.
	verdicts := func() (kept int, which []bool) {
		tr := NewTracer(4096)
		tr.SetTailPolicy(&TailPolicy{SampleRate: 0.5})
		for i := 1; i <= 200; i++ {
			trace := TraceID(i * 7919)
			ctx := context.Background()
			ctx, s := tr.StartRemote(ctx, trace, 0, "op")
			_ = ctx
			endWith(s, time.Microsecond)
			n := len(tr.TraceSpans(trace))
			which = append(which, n == 1)
			if n == 1 {
				kept++
			}
		}
		return
	}
	k1, w1 := verdicts()
	k2, w2 := verdicts()
	if k1 != k2 {
		t.Fatalf("verdicts not deterministic: %d vs %d", k1, k2)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("trace %d verdict differs between tracers", i)
		}
	}
	if k1 < 60 || k1 > 140 {
		t.Fatalf("rate 0.5 kept %d/200, far from half", k1)
	}
}

func TestTailSamplingBoundedPending(t *testing.T) {
	tr := NewTracer(16)
	tr.SetTailPolicy(&TailPolicy{SampleRate: 1, MaxPending: 8})
	// Start many roots and never end them: the pending set must stay
	// bounded by eviction, not grow without limit.
	for i := 0; i < 100; i++ {
		tr.StartSpan(context.Background(), "leaky")
	}
	tr.mu.Lock()
	n := len(tr.pend)
	tr.mu.Unlock()
	if n > 8 {
		t.Fatalf("pending set grew to %d, bound is 8", n)
	}
}

func TestSetTailPolicyNilFlushesAndRestores(t *testing.T) {
	tr := NewTracer(16)
	tr.SetTailPolicy(&TailPolicy{SlowSpan: time.Hour, SampleRate: 1})
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	endWith(child, time.Millisecond)
	// Root still open: the child is buffered, not visible.
	if n := len(tr.Snapshot()); n != 0 {
		t.Fatalf("buffered span leaked into ring: %d", n)
	}
	tr.SetTailPolicy(nil)
	if n := len(tr.Snapshot()); n != 1 {
		t.Fatalf("removing the policy must flush buffered spans, got %d", n)
	}
	endWith(root, time.Millisecond)
	if n := len(tr.Snapshot()); n != 2 {
		t.Fatalf("keep-everything not restored, got %d spans", n)
	}
}
