package telemetry

import (
	"context"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer mints spans and retains the most recently completed ones in a
// fixed-size ring buffer, the in-process flight recorder behind the
// /v1/traces endpoint and fullstudy's -trace-out export. A nil *Tracer
// is a valid disabled tracer: StartSpan returns a nil span and every
// span method is nil-safe, so instrumented code needs no branches.
type Tracer struct {
	// ids is the span/trace id source: a splitmix64 walk from a
	// process-unique base, so ids are unique within a process and
	// overwhelmingly likely unique across a fleet.
	ids atomic.Uint64

	mu   sync.Mutex
	ring []SpanData // completed spans, oldest first once full
	next int        // ring write cursor
	full bool

	// Tail sampling (sampler.go). policy nil means keep everything;
	// pend buffers incomplete traces awaiting a whole-trace verdict.
	policy      *TailPolicy
	pend        map[TraceID]*pendingTrace
	pendOrder   []TraceID // registration order, for bounded eviction
	tailKept    atomic.Int64
	tailDropped atomic.Int64

	// Pinned traces (pin.go) live outside the ring and the sampler so
	// exemplar links keep resolving until their alerts clear.
	pinned map[TraceID]*pinnedTrace
}

// DefaultSpanBuffer is the completed-span retention when NewTracer is
// given a non-positive capacity.
const DefaultSpanBuffer = 4096

// NewTracer builds an enabled tracer retaining up to capacity completed
// spans (<= 0 selects DefaultSpanBuffer).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanBuffer
	}
	t := &Tracer{ring: make([]SpanData, 0, capacity)}
	t.ids.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
	return t
}

// newID advances the id walk; splitmix64 finalization keeps successive
// ids uncorrelated so truncated displays (Chrome's tid) still spread.
func (t *Tracer) newID() uint64 {
	x := t.ids.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 { // ids of 0 mean "absent" on the wire
		x = 1
	}
	return x
}

// Span is one timed operation. Spans are single-goroutine values:
// start with StartSpan, annotate, then End exactly once. All methods
// tolerate a nil receiver (the disabled-tracer case).
type Span struct {
	tracer *Tracer
	data   SpanData
	start  time.Time // monotonic-clock anchor for the duration
	ended  atomic.Bool
}

// SpanData is the immutable record of a completed span.
type SpanData struct {
	Trace  TraceID       `json:"trace_id"`
	ID     SpanID        `json:"span_id"`
	Parent SpanID        `json:"parent_id,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"duration_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan begins a span named name as a child of ctx's current span
// (a new root trace when ctx has none) and returns ctx with the new
// span installed. On a nil tracer it returns ctx unchanged and a nil
// span.
func (t *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var trace TraceID
	var parent SpanID
	if p := SpanFromContext(ctx); p != nil {
		trace = p.data.Trace
		parent = p.data.ID
	} else {
		trace = TraceID(t.newID())
	}
	return t.start(ctx, trace, parent, name, attrs)
}

// StartRemote begins a span under an explicitly supplied trace and
// parent — the server side of header propagation, stitching a
// backend's spans into the coordinator's trace.
func (t *Tracer) StartRemote(ctx context.Context, trace TraceID, parent SpanID, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if trace == 0 {
		trace = TraceID(t.newID())
		parent = 0
	}
	return t.start(ctx, trace, parent, name, attrs)
}

func (t *Tracer) start(ctx context.Context, trace TraceID, parent SpanID, name string, attrs []Attr) (context.Context, *Span) {
	s := &Span{
		tracer: t,
		data: SpanData{
			Trace:  trace,
			ID:     SpanID(t.newID()),
			Parent: parent,
			Name:   name,
			Attrs:  attrs,
		},
		start: time.Now(),
	}
	s.data.Start = s.start
	t.mu.Lock()
	if t.policy != nil && t.pinned[trace] == nil {
		t.registerStart(trace)
	}
	t.mu.Unlock()
	return ContextWithSpan(ctx, s), s
}

// Trace returns the span's trace id (0 on nil).
func (s *Span) Trace() TraceID {
	if s == nil {
		return 0
	}
	return s.data.Trace
}

// ID returns the span's id (0 on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// Annotate appends key=value attributes. Not safe for concurrent use
// with End; a span belongs to one goroutine.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, attrs...)
}

// End completes the span, computing its monotonic duration and
// committing it to the tracer's ring. Only the first call records.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.data.Dur = time.Since(s.start)
	s.tracer.commit(s.data)
}

func (t *Tracer) commit(d SpanData) {
	t.mu.Lock()
	if pt := t.pinned[d.Trace]; pt != nil {
		// Pinned traces bypass both the ring (whose cursor would evict
		// them) and the sampler (whose verdict could drop them).
		pt.add(d)
	} else if t.policy != nil {
		t.sampleCommit(d)
	} else {
		t.commitLocked(d)
	}
	t.mu.Unlock()
}

// commitLocked appends one span to the retention ring. Caller holds
// t.mu.
func (t *Tracer) commitLocked(d SpanData) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, d)
	} else {
		t.ring[t.next] = d
		t.full = true
	}
	t.next = (t.next + 1) % cap(t.ring)
}

// Snapshot copies the retained spans — the ring oldest first, then any
// pinned spans not already present in the ring.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	if len(t.pinned) > 0 {
		// Spans copied into pinned storage at Pin time may still sit in
		// the ring; dedup by span id (process-unique).
		seen := make(map[SpanID]struct{}, len(out))
		for _, d := range out {
			if t.pinned[d.Trace] != nil {
				seen[d.ID] = struct{}{}
			}
		}
		for _, pt := range t.pinned {
			for _, d := range pt.spans {
				if _, dup := seen[d.ID]; !dup {
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// TraceSpans returns the retained spans of one trace, oldest first
// (pinned spans, when present, follow the ring's).
func (t *Tracer) TraceSpans(trace TraceID) []SpanData {
	all := t.Snapshot()
	out := all[:0]
	for _, d := range all {
		if d.Trace == trace {
			out = append(out, d)
		}
	}
	return out
}

// HTTP propagation headers. The coordinator injects them on every
// backend request; powerperfd adopts them so its spans join the
// caller's trace.
const (
	HeaderTraceID    = "X-Trace-Id"
	HeaderParentSpan = "X-Parent-Span"
)

// InjectHeaders stamps ctx's current span onto h; a no-op without one.
func InjectHeaders(ctx context.Context, h http.Header) {
	s := SpanFromContext(ctx)
	if s == nil {
		return
	}
	h.Set(HeaderTraceID, s.data.Trace.String())
	h.Set(HeaderParentSpan, s.data.ID.String())
}

// ExtractHeaders reads propagation headers; ok is false when no valid
// trace id is present (the parent span is optional).
func ExtractHeaders(h http.Header) (trace TraceID, parent SpanID, ok bool) {
	tv := h.Get(HeaderTraceID)
	if tv == "" {
		return 0, 0, false
	}
	tid, err := ParseID(tv)
	if err != nil || tid == 0 {
		return 0, 0, false
	}
	if pv := h.Get(HeaderParentSpan); pv != "" {
		if pid, err := ParseID(pv); err == nil {
			parent = SpanID(pid)
		}
	}
	return TraceID(tid), parent, true
}
