package telemetry

// Prometheus text-exposition parser, the inverse of the writers behind
// /metricsz and cluster.WriteMetrics. The linter (promlint.go) judges a
// page; this parser reads one back into typed families so the fleet
// monitor can federate scrapes, and RenderPrometheus closes the loop:
// parse(render(parse(page))) is the identity, which the round-trip
// tests pin against every exposition writer in the repository.

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label is one label pair. Order is preserved from the exposition text,
// so a parsed page can be re-rendered without reordering.
type Label struct {
	Key   string
	Value string
}

// MetricPoint is one parsed sample line: Name{Labels} Value, plus the
// OpenMetrics exemplar suffix when the line carried one.
type MetricPoint struct {
	Name     string
	Labels   []Label
	Value    float64
	Exemplar *Exemplar
}

// Label returns the value of the named label and whether it is present.
func (p MetricPoint) Label(key string) (string, bool) {
	for _, l := range p.Labels {
		if l.Key == key {
			return l.Value, true
		}
	}
	return "", false
}

// Key renders the point's identity — name plus labels in exposition
// order — which the fleet monitor uses as its per-backend series key.
func (p MetricPoint) Key() string {
	if len(p.Labels) == 0 {
		return p.Name
	}
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteByte('{')
	for i, l := range p.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// MetricFamily is one metric family: HELP/TYPE metadata plus its
// samples in exposition order. Histogram families carry their _bucket,
// _sum, and _count samples.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped
	Samples []MetricPoint
}

// Sample returns the family's sample with the given name and label set
// (nil matches the first sample with the name), or nil when absent.
func (f *MetricFamily) Sample(name string, labels []Label) *MetricPoint {
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name {
			continue
		}
		if labels == nil {
			return s
		}
		if len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for _, want := range labels {
			got, ok := s.Label(want.Key)
			if !ok || got != want.Value {
				match = false
				break
			}
		}
		if match {
			return s
		}
	}
	return nil
}

// ParsePrometheus parses a Prometheus text-exposition page into metric
// families in page order. Samples attach to the family they belong to
// (histogram/summary suffixes resolve to their base family); a sample
// with no declared family gets an implicit untyped one. Malformed lines
// are errors — the monitor must not silently drop a backend's series
// the way stock scrapers do.
func ParsePrometheus(text string) ([]MetricFamily, error) {
	var fams []MetricFamily
	index := map[string]int{} // family name -> fams index
	get := func(name string) *MetricFamily {
		if i, ok := index[name]; ok {
			return &fams[i]
		}
		fams = append(fams, MetricFamily{Name: name, Type: "untyped"})
		index[name] = len(fams) - 1
		return &fams[len(fams)-1]
	}
	typeFor := map[string]string{}
	declared := map[string]bool{} // families declared via HELP/TYPE

	for i, line := range strings.Split(text, "\n") {
		n := i + 1
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if fields[0] == "" || !validMetricName(fields[0]) {
				return nil, fmt.Errorf("telemetry: line %d: malformed HELP: %s", n, line)
			}
			f := get(fields[0])
			if len(fields) == 2 {
				f.Help = promUnescapeHelp(fields[1])
			}
			declared[fields[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !validMetricName(fields[0]) {
				return nil, fmt.Errorf("telemetry: line %d: malformed TYPE: %s", n, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("telemetry: line %d: unknown TYPE %q", n, fields[1])
			}
			f := get(fields[0])
			f.Type = fields[1]
			typeFor[fields[0]] = fields[1]
			declared[fields[0]] = true
		case line == "# EOF":
			// OpenMetrics terminator. Everything after it is outside the
			// exposition by definition, so parsing stops here — a page
			// truncated *after* its # EOF still federates cleanly.
			return fams, nil
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and carry no structure.
		default:
			p, err := parsePromPoint(line)
			if err != nil {
				return nil, fmt.Errorf("telemetry: line %d: %w", n, err)
			}
			fam := sampleFamily(p.Name, typeFor)
			f := get(fam)
			f.Samples = append(f.Samples, p)
		}
	}
	return fams, nil
}

// sampleFamily resolves a sample name to its family: histogram and
// summary samples carry a _bucket/_sum/_count suffix over the declared
// base name.
func sampleFamily(name string, typeFor map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			switch typeFor[base] {
			case "histogram", "summary":
				return base
			}
		}
	}
	return name
}

// parsePromPoint parses one sample line with full label-value
// unescaping (\" \\ \n), which the promlint parser — a validator, not a
// reader — skips. An OpenMetrics exemplar suffix (` # {labels} value
// [timestamp]`) parses into the point's Exemplar field.
func parsePromPoint(line string) (MetricPoint, error) {
	var p MetricPoint
	// Split any exemplar off first — its own '{' must not be mistaken
	// for the sample's label set. An unquoted '#' can only open an
	// exemplar: label values are quoted and floats cannot contain one.
	rest, exText := splitExemplarText(line)
	if exText != "" {
		ex, err := parseExemplar(exText)
		if err != nil {
			return p, fmt.Errorf("%w in %q", err, line)
		}
		p.Exemplar = ex
	}
	if brace := strings.IndexByte(rest, '{'); brace >= 0 {
		p.Name = rest[:brace]
		labels, tail, err := parseLabelBody(rest[brace+1:])
		if err != nil {
			return p, err
		}
		p.Labels = labels
		rest = strings.TrimSpace(tail)
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return p, fmt.Errorf("want `name value`: %s", line)
		}
		p.Name, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	if !validMetricName(p.Name) {
		return p, fmt.Errorf("invalid metric name %q", p.Name)
	}
	// Exposition values may carry a trailing timestamp; the writers in
	// this repository never emit one, so reject it rather than guess.
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return p, fmt.Errorf("unparseable value in %q", line)
	}
	p.Value = v
	return p, nil
}

// parseExemplar parses the text after an exemplar's '#' marker:
// `{labels} value [timestamp]`.
func parseExemplar(s string) (*Exemplar, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("exemplar must open with '{'")
	}
	labels, tail, err := parseLabelBody(s[1:])
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(tail)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("exemplar wants `{labels} value [timestamp]`")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("unparseable exemplar value %q", fields[0])
	}
	e := &Exemplar{Labels: labels, Value: v}
	if len(fields) == 2 {
		ts, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable exemplar timestamp %q", fields[1])
		}
		e.TS, e.HasTS = ts, true
	}
	return e, nil
}

// parseLabelBody scans `k="v",k2="v2"}` (the text after the opening
// brace), unescaping values, and returns the labels plus the text after
// the closing brace.
func parseLabelBody(s string) ([]Label, string, error) {
	var labels []Label
	i := 0
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label set: %q", s)
		}
		key := strings.TrimSpace(s[i : i+eq])
		if key == "" {
			return nil, "", fmt.Errorf("empty label name in %q", s)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q", key)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					// Unknown escapes pass through verbatim, matching the
					// reference Prometheus parser's tolerance.
					b.WriteByte('\\')
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Key: key, Value: b.String()})
	}
}

// RenderPrometheus writes families back in the canonical exposition
// shape the repository's writers produce: HELP then TYPE then samples,
// label values Prometheus-escaped, values in shortest round-trip form.
// Parsing the output reproduces the input families exactly.
func RenderPrometheus(w io.Writer, fams []MetricFamily) {
	var b strings.Builder
	for _, f := range fams {
		if f.Help != "" {
			b.WriteString("# HELP " + f.Name + " " + promEscapeHelp(f.Help) + "\n")
		}
		if f.Type != "" {
			b.WriteString("# TYPE " + f.Name + " " + f.Type + "\n")
		}
		for _, s := range f.Samples {
			b.WriteString(s.Key())
			b.WriteByte(' ')
			b.WriteString(formatPromValue(s.Value))
			if s.Exemplar != nil {
				appendExemplar(&b, s.Exemplar)
			}
			b.WriteByte('\n')
		}
	}
	_, _ = io.WriteString(w, b.String())
}

// RenderOpenMetrics renders families exactly as RenderPrometheus does
// and appends the OpenMetrics `# EOF` terminator, closing the
// tolerate-and-round-trip loop for pages produced by OpenMetrics-style
// renderers.
func RenderOpenMetrics(w io.Writer, fams []MetricFamily) {
	RenderPrometheus(w, fams)
	_, _ = io.WriteString(w, "# EOF\n")
}

// formatPromValue renders a sample value the way the repository's
// writers do: shortest float64 round-trip form, integers undecorated.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscape escapes a label value per the exposition format: backslash,
// double quote, and newline. (strconv.Quote is close but Go-escapes
// control and non-ASCII bytes, which stock Prometheus parsers read
// literally — the quirk the round-trip tests uncovered.)
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// promQuote renders a label value quoted and escaped for exposition.
func promQuote(v string) string { return `"` + promEscape(v) + `"` }

// PromQuote is promQuote for exposition writers outside this package
// (cluster.WriteMetrics renders backend URLs as label values).
func PromQuote(v string) string { return promQuote(v) }

// promEscapeHelp escapes HELP text: backslash and newline only (quotes
// are legal in HELP).
func promEscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promUnescapeHelp reverses promEscapeHelp.
func promUnescapeHelp(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(v[i])
	}
	return b.String()
}
