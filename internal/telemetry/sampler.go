package telemetry

// Tail-based trace sampling. Head sampling decides at span start, when
// nothing is known; tail sampling decides at trace completion, when
// duration and errors are: traces containing a slow span (at or over
// the SLO threshold) or an error keep every span, the unremarkable
// rest keep a deterministic fraction. Retention then scales with
// traffic while the ring keeps exactly the traces an SLO page needs.
//
// Mechanics: with a policy installed, completed spans buffer per trace
// until the trace's last open span ends (starts and ends are counted,
// so well-nested usage needs no explicit root marker); the verdict
// then applies to the whole buffered trace at once. Buffers are
// bounded — overflowing traces flush early on the evidence so far, and
// spans of traces evicted that way fall back to per-span verdicts — so
// a span leak cannot grow the pending set without limit.

import (
	"time"
)

// TailPolicy configures tail-based retention. The zero value keeps
// nothing but slow/error traces; a nil policy on the tracer keeps
// everything (the default, and the pre-sampling behavior).
type TailPolicy struct {
	// SlowSpan keeps the whole trace when any span's duration reaches
	// it — wire this to the latency SLO threshold so every
	// budget-burning request retains its full trace. 0 disables the
	// slow rule.
	SlowSpan time.Duration
	// KeepErrors keeps traces where any span carries an "error" attr.
	KeepErrors bool
	// SampleRate is the keep fraction for unremarkable traces, in
	// [0,1]. The verdict is a deterministic hash of the trace id, so
	// every process in a fleet keeps or drops the same trace.
	SampleRate float64
	// MaxPending bounds traces buffered awaiting completion
	// (<=0 selects 256). MaxSpansPerTrace bounds one trace's buffer
	// (<=0 selects 128).
	MaxPending       int
	MaxSpansPerTrace int
}

func (p *TailPolicy) maxPending() int {
	if p.MaxPending <= 0 {
		return 256
	}
	return p.MaxPending
}

func (p *TailPolicy) maxSpans() int {
	if p.MaxSpansPerTrace <= 0 {
		return 128
	}
	return p.MaxSpansPerTrace
}

// spanKeep reports whether this one span forces whole-trace retention.
func (p *TailPolicy) spanKeep(d SpanData) bool {
	if p.SlowSpan > 0 && d.Dur >= p.SlowSpan {
		return true
	}
	if p.KeepErrors {
		for _, a := range d.Attrs {
			if a.Key == "error" {
				return true
			}
		}
	}
	return false
}

// hashKeep is the probabilistic verdict: a splitmix64 finalizer over
// the trace id against the rate threshold, deterministic fleet-wide.
func (p *TailPolicy) hashKeep(trace TraceID) bool {
	if p.SampleRate >= 1 {
		return true
	}
	if p.SampleRate <= 0 {
		return false
	}
	x := uint64(trace)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x) < p.SampleRate*float64(1<<64)
}

// pendingTrace buffers one incomplete trace's completed spans.
type pendingTrace struct {
	open  int // started minus ended spans
	spans []SpanData
	keep  bool // a buffered span already forced retention
}

// SetTailPolicy installs (or, with nil, removes) the tail-sampling
// policy. Install before traffic: spans started before the policy was
// set are judged individually rather than as whole traces.
func (t *Tracer) SetTailPolicy(p *TailPolicy) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.policy = p
	if p == nil && t.pend != nil {
		// Flush everything buffered so no spans are stranded.
		for trace, pt := range t.pend {
			for _, d := range pt.spans {
				t.commitLocked(d)
			}
			delete(t.pend, trace)
		}
		t.pendOrder = t.pendOrder[:0]
	}
	t.mu.Unlock()
}

// TailStats returns how many spans the sampler has committed and
// dropped since the tracer was built (both zero with no policy ever
// installed).
func (t *Tracer) TailStats() (kept, dropped int64) {
	if t == nil {
		return 0, 0
	}
	return t.tailKept.Load(), t.tailDropped.Load()
}

// registerStart counts a span into its trace's pending entry. Called
// under t.mu with a policy installed.
func (t *Tracer) registerStart(trace TraceID) {
	if t.pend == nil {
		t.pend = make(map[TraceID]*pendingTrace)
	}
	pt := t.pend[trace]
	if pt == nil {
		if len(t.pend) >= t.policy.maxPending() {
			t.evictOldestLocked()
		}
		pt = &pendingTrace{}
		t.pend[trace] = pt
		t.pendOrder = append(t.pendOrder, trace)
	}
	pt.open++
}

// sampleCommit routes one completed span through the policy. Called
// under t.mu.
func (t *Tracer) sampleCommit(d SpanData) {
	pol := t.policy
	pt := t.pend[d.Trace]
	if pt == nil {
		// Trace unknown (started pre-policy, or evicted): judge the
		// span alone.
		if pol.spanKeep(d) || pol.hashKeep(d.Trace) {
			t.commitLocked(d)
			t.tailKept.Add(1)
		} else {
			t.tailDropped.Add(1)
		}
		return
	}
	pt.open--
	if pol.spanKeep(d) {
		pt.keep = true
	}
	pt.spans = append(pt.spans, d)
	if pt.open <= 0 || len(pt.spans) >= pol.maxSpans() {
		t.flushLocked(d.Trace, pt)
	}
}

// flushLocked applies the verdict to a buffered trace and removes it
// from the pending set.
func (t *Tracer) flushLocked(trace TraceID, pt *pendingTrace) {
	keep := pt.keep || t.policy.hashKeep(trace)
	if keep {
		for _, d := range pt.spans {
			t.commitLocked(d)
		}
		t.tailKept.Add(int64(len(pt.spans)))
	} else {
		t.tailDropped.Add(int64(len(pt.spans)))
	}
	delete(t.pend, trace)
	for i, id := range t.pendOrder {
		if id == trace {
			t.pendOrder = append(t.pendOrder[:i], t.pendOrder[i+1:]...)
			break
		}
	}
}

// evictOldestLocked flushes the longest-pending trace early so the
// buffer stays bounded; its still-open spans will be judged
// individually when they end.
func (t *Tracer) evictOldestLocked() {
	for len(t.pendOrder) > 0 {
		trace := t.pendOrder[0]
		pt := t.pend[trace]
		if pt == nil { // already flushed; drop the stale order entry
			t.pendOrder = t.pendOrder[1:]
			continue
		}
		t.flushLocked(trace, pt)
		return
	}
}
