package telemetry

// Trace pinning. The retention ring and the tail sampler both exist to
// forget: the ring overwrites oldest-first and an unremarkable trace
// loses the sampling coin flip. That is correct for bulk retention and
// wrong for any trace something else still points at — an SLO breach
// exemplar rendered on /metricsz and /v1/alertz links to a trace id,
// and that link must keep resolving at /v1/traces for as long as the
// page is actionable. Pin moves a trace into per-trace pinned storage
// that neither the ring cursor nor the sampler can touch; Unpin
// (ref-counted, so several exemplars may share one trace) releases it.

const (
	// maxPinnedTraces bounds distinct pinned traces; Pin beyond the cap
	// is refused (the link may then dangle, but memory stays bounded).
	maxPinnedTraces = 64
	// maxPinnedSpans bounds one pinned trace's span storage.
	maxPinnedSpans = 512
)

// pinnedTrace is the out-of-ring retention for one pinned trace.
type pinnedTrace struct {
	refs  int
	spans []SpanData
	ids   map[SpanID]struct{}
}

func (pt *pinnedTrace) add(d SpanData) {
	if len(pt.spans) >= maxPinnedSpans {
		return
	}
	if _, dup := pt.ids[d.ID]; dup {
		return
	}
	pt.ids[d.ID] = struct{}{}
	pt.spans = append(pt.spans, d)
}

// Pin protects trace from ring eviction and tail-sampling drops until
// a matching Unpin. Spans already retained in the ring and spans still
// buffered by the tail sampler are captured immediately; spans that
// complete later join the pinned storage directly. Pinning the same
// trace again increments a reference count. Nil-safe.
func (t *Tracer) Pin(trace TraceID) {
	if t == nil || trace == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pt := t.pinned[trace]; pt != nil {
		pt.refs++
		return
	}
	if len(t.pinned) >= maxPinnedTraces {
		return
	}
	if t.pinned == nil {
		t.pinned = make(map[TraceID]*pinnedTrace)
	}
	pt := &pinnedTrace{refs: 1, ids: make(map[SpanID]struct{})}
	for _, d := range t.ring {
		if d.Trace == trace {
			pt.add(d)
		}
	}
	// Adopt the sampler's pending buffer: the trace no longer awaits a
	// keep/drop verdict, so remove it from the pending set entirely
	// (registerStart and sampleCommit skip pinned traces from here on).
	if pend := t.pend[trace]; pend != nil {
		for _, d := range pend.spans {
			pt.add(d)
		}
		delete(t.pend, trace)
		for i, id := range t.pendOrder {
			if id == trace {
				t.pendOrder = append(t.pendOrder[:i], t.pendOrder[i+1:]...)
				break
			}
		}
	}
	t.pinned[trace] = pt
}

// Unpin drops one reference; at zero the trace's pinned storage is
// freed and its spans are forgotten. Unpinning a never-pinned trace
// (including a Pin refused at the cap) is a no-op. Nil-safe.
func (t *Tracer) Unpin(trace TraceID) {
	if t == nil || trace == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pt := t.pinned[trace]
	if pt == nil {
		return
	}
	if pt.refs--; pt.refs <= 0 {
		delete(t.pinned, trace)
	}
}

// PinnedTraces reports how many traces are currently pinned.
func (t *Tracer) PinnedTraces() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pinned)
}
