package pipeline

import (
	"math"
	"testing"
	"testing/quick"
)

func nehalem() Params {
	return Params{IssueWidth: 4, OutOfOrder: true, BranchPenalty: 0.15, SMTFillEff: 0.55, SMTOverhead: 0.02}
}

func bonnell() Params {
	return Params{IssueWidth: 2, OutOfOrder: false, BranchPenalty: 0.25, SMTFillEff: 0.90, SMTOverhead: 0.02}
}

func netburst() Params {
	return Params{IssueWidth: 3, OutOfOrder: true, BranchPenalty: 0.45, SMTFillEff: 0.28, SMTOverhead: 0.04}
}

func TestValidate(t *testing.T) {
	if err := nehalem().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{IssueWidth: 0},
		{IssueWidth: 9},
		{IssueWidth: 2, BranchPenalty: -1},
		{IssueWidth: 2, SMTFillEff: 1.5},
		{IssueWidth: 2, SMTOverhead: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params validated", i)
		}
	}
}

func TestIssueCPIWidthLimits(t *testing.T) {
	p := nehalem()
	// ILP above the width is clipped to the width.
	wide, err := p.IssueCPI(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wide-0.25) > 1e-12 {
		t.Fatalf("width-limited CPI = %v, want 0.25", wide)
	}
	narrow, err := p.IssueCPI(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(narrow-1) > 1e-12 {
		t.Fatalf("ILP-limited CPI = %v, want 1", narrow)
	}
}

func TestInOrderExploitsLessILP(t *testing.T) {
	ooo := Params{IssueWidth: 2, OutOfOrder: true}
	ino := Params{IssueWidth: 2, OutOfOrder: false}
	a, err := ooo.IssueCPI(1.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ino.IssueCPI(1.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatalf("in-order CPI %v not worse than OoO %v", b, a)
	}
}

func TestBranchPenaltyHurtsDeepPipelines(t *testing.T) {
	// NetBurst's deep pipeline pays more per branch than Nehalem: for
	// branchy integer code the gap must widen.
	nb, err := netburst().IssueCPI(1.4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	nh, err := nehalem().IssueCPI(1.4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if nb-nh < 0.25 {
		t.Fatalf("deep-pipeline branch gap = %v, want >= 0.25 CPI", nb-nh)
	}
}

func TestIssueCPIErrors(t *testing.T) {
	p := nehalem()
	if _, err := p.IssueCPI(0, 0); err == nil {
		t.Fatal("zero ILP accepted")
	}
	if _, err := p.IssueCPI(1, -1); err == nil {
		t.Fatal("negative branch weight accepted")
	}
	if _, err := p.ThreadCPI(1, 0, -0.5); err == nil {
		t.Fatal("negative stall CPI accepted")
	}
}

func TestThreadCPIAddsStalls(t *testing.T) {
	p := nehalem()
	base, err := p.ThreadCPI(2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := p.ThreadCPI(2, 0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stalled-base-1.5) > 1e-12 {
		t.Fatalf("stall CPI not additive: %v vs %v", stalled, base)
	}
}

func TestCoreSingleThread(t *testing.T) {
	p := nehalem()
	ct, err := p.Core(1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ct.IPC-0.5) > 1e-12 {
		t.Fatalf("IPC = %v, want 0.5", ct.IPC)
	}
	if math.Abs(ct.Utilization-0.125) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.125", ct.Utilization)
	}
	if ct.PerThreadIPC != ct.IPC {
		t.Fatal("single-thread per-thread IPC must equal core IPC")
	}
}

func TestCoreSMTGains(t *testing.T) {
	p := nehalem()
	single, err := p.Core(1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := p.Core(2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if dual.IPC <= single.IPC {
		t.Fatal("SMT must raise combined core IPC for stall-heavy threads")
	}
	if dual.PerThreadIPC >= single.PerThreadIPC {
		t.Fatal("each SMT thread individually runs slower than alone")
	}
}

func TestSMTGainLargestOnInOrderNarrow(t *testing.T) {
	// The paper's Section 3.2: the dual-issue in-order Atom gains more
	// from SMT than quad-issue Nehalem at comparable stall levels.
	gain := func(p Params, cpi float64) float64 {
		s, err := p.Core(1, cpi)
		if err != nil {
			t.Fatal(err)
		}
		d, err := p.Core(2, cpi)
		if err != nil {
			t.Fatal(err)
		}
		return d.IPC / s.IPC
	}
	atomGain := gain(bonnell(), 2.5)
	i7Gain := gain(nehalem(), 2.5)
	p4Gain := gain(netburst(), 2.5)
	if atomGain <= i7Gain {
		t.Fatalf("Atom SMT gain %v not above Nehalem %v", atomGain, i7Gain)
	}
	if p4Gain >= i7Gain {
		t.Fatalf("NetBurst SMT gain %v not below Nehalem %v", p4Gain, i7Gain)
	}
}

func TestCoreSaturatesAtWidth(t *testing.T) {
	p := Params{IssueWidth: 2, OutOfOrder: true, SMTFillEff: 1.0}
	ct, err := p.Core(2, 0.5) // each thread alone could do IPC 2
	if err != nil {
		t.Fatal(err)
	}
	if ct.IPC > 2+1e-12 {
		t.Fatalf("core IPC %v exceeds issue width", ct.IPC)
	}
}

func TestCoreErrors(t *testing.T) {
	p := nehalem()
	if _, err := p.Core(3, 1); err == nil {
		t.Fatal("3 threads per core accepted")
	}
	if _, err := p.Core(0, 1); err == nil {
		t.Fatal("0 threads accepted")
	}
	if _, err := p.Core(1, 0); err == nil {
		t.Fatal("zero CPI accepted")
	}
	bad := Params{IssueWidth: 0}
	if _, err := bad.Core(1, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// Property: SMT never reduces combined core throughput below the
// overhead-adjusted single thread, and utilization stays in (0, 1].
func TestQuickSMTBounds(t *testing.T) {
	f := func(cpiRaw uint16, widthRaw, fillRaw, ovRaw uint8) bool {
		cpi := 0.3 + float64(cpiRaw%500)/100
		p := Params{
			IssueWidth:  1 + int(widthRaw%4),
			OutOfOrder:  widthRaw%2 == 0,
			SMTFillEff:  float64(fillRaw%101) / 100,
			SMTOverhead: float64(ovRaw%20) / 100,
		}
		s, err := p.Core(1, cpi)
		if err != nil {
			return false
		}
		d, err := p.Core(2, cpi)
		if err != nil {
			return false
		}
		if d.Utilization <= 0 || d.Utilization > 1+1e-12 {
			return false
		}
		// Combined must be at least the single thread taxed by overhead.
		return d.IPC >= s.IPC*(1-p.SMTOverhead)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
