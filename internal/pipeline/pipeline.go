// Package pipeline models per-core instruction throughput: how a
// microarchitecture's issue width, ordering, and pipeline depth turn a
// workload's instruction-level parallelism into instructions per cycle,
// and how simultaneous multithreading fills the slots one thread leaves
// idle.
//
// The SMT model captures the paper's Section 3.2 finding: SMT helps most
// where single-thread slot utilization is lowest — the dual-issue
// in-order Atom, with its deep pipeline and small caches, gains more than
// the quad-issue out-of-order Nehalems, while the Pentium 4's early SMT
// implementation adds resource-partitioning overhead that can make
// cache-hungry managed workloads slower.
package pipeline

import (
	"errors"
	"fmt"
)

// Params describes one core's pipeline in the model's terms.
type Params struct {
	// IssueWidth is the peak instructions issued per cycle.
	IssueWidth int
	// OutOfOrder selects dynamic scheduling; in-order pipelines convert
	// less of the available ILP into issue.
	OutOfOrder bool
	// ILPEff scales how much of a workload's ILP this microarchitecture
	// converts into issue: NetBurst's replay storms and trace-cache
	// misses land it well below 1, Nehalem's macro-fusion above.
	// Zero means 1 (no adjustment).
	ILPEff float64
	// BranchPenalty is the CPI added per unit of workload branch weight;
	// deeper pipelines (NetBurst) set it higher.
	BranchPenalty float64
	// SMTFillEff in [0,1] is how effectively a second thread converts
	// idle issue slots into throughput.
	SMTFillEff float64
	// SMTOverhead in [0,1) is the fixed throughput tax of partitioning
	// core resources between two threads.
	SMTOverhead float64
}

// Validate checks the parameters' plausibility.
func (p Params) Validate() error {
	switch {
	case p.IssueWidth < 1 || p.IssueWidth > 8:
		return fmt.Errorf("pipeline: issue width %d outside [1,8]", p.IssueWidth)
	case p.BranchPenalty < 0:
		return errors.New("pipeline: negative branch penalty")
	case p.SMTFillEff < 0 || p.SMTFillEff > 1:
		return errors.New("pipeline: SMT fill efficiency outside [0,1]")
	case p.SMTOverhead < 0 || p.SMTOverhead >= 1:
		return errors.New("pipeline: SMT overhead outside [0,1)")
	case p.ILPEff < 0:
		return errors.New("pipeline: negative ILP efficiency")
	}
	return nil
}

// ilpEff returns the effective ILP scaling, defaulting to 1.
func (p Params) ilpEff() float64 {
	if p.ILPEff == 0 {
		return 1
	}
	return p.ILPEff
}

// inOrderEff is the fraction of a workload's ILP an in-order pipeline can
// exploit without dynamic scheduling.
const inOrderEff = 0.65

// IssueCPI returns the core-local cycles per instruction (excluding
// memory stalls) for a thread exposing the given ILP and branch weight.
func (p Params) IssueCPI(ilp, branchWeight float64) (float64, error) {
	if ilp <= 0 {
		return 0, errors.New("pipeline: ILP must be positive")
	}
	if branchWeight < 0 {
		return 0, errors.New("pipeline: negative branch weight")
	}
	eff := ilp * p.ilpEff()
	if !p.OutOfOrder {
		eff *= inOrderEff
	}
	if w := float64(p.IssueWidth); eff > w {
		eff = w
	}
	return 1/eff + p.BranchPenalty*branchWeight, nil
}

// ThreadCPI combines the issue CPI with memory stall CPI from the memory
// model into the thread's total cycles per instruction.
func (p Params) ThreadCPI(ilp, branchWeight, stallCPI float64) (float64, error) {
	issue, err := p.IssueCPI(ilp, branchWeight)
	if err != nil {
		return 0, err
	}
	if stallCPI < 0 {
		return 0, errors.New("pipeline: negative stall CPI")
	}
	return issue + stallCPI, nil
}

// CoreThroughput describes one core's achieved throughput.
type CoreThroughput struct {
	// IPC is the core's combined instructions per cycle across its
	// active threads.
	IPC float64
	// Utilization is IPC over issue width, in (0, 1].
	Utilization float64
	// PerThreadIPC is the throughput each symmetric thread receives.
	PerThreadIPC float64
}

// BusyFrac returns the fraction of cycles a thread with the given total
// and memory-stall CPI spends issuing rather than stalled; the power
// model scales switching activity by it so memory-bound cores draw less.
func BusyFrac(threadCPI, stallCPI float64) float64 {
	if threadCPI <= 0 {
		return 0
	}
	busy := (threadCPI - stallCPI) / threadCPI
	if busy < 0 {
		return 0
	}
	if busy > 1 {
		return 1
	}
	return busy
}

// Core computes the throughput of one core running `threads` symmetric
// threads with the given per-thread total CPI (which must already include
// the memory stalls computed under the appropriate cache sharing).
//
// With one thread, IPC = 1/CPI. With two SMT threads, the second thread
// fills idle slots: the combined IPC is the single-thread IPC scaled by
// 1 + SMTFillEff*(1-u), where u is single-thread slot utilization, less
// the partitioning overhead. This saturates at the issue width.
func (p Params) Core(threads int, threadCPI float64) (CoreThroughput, error) {
	if err := p.Validate(); err != nil {
		return CoreThroughput{}, err
	}
	if threadCPI <= 0 {
		return CoreThroughput{}, errors.New("pipeline: thread CPI must be positive")
	}
	if threads < 1 || threads > 2 {
		return CoreThroughput{}, fmt.Errorf("pipeline: %d threads per core unsupported (two-way SMT max)", threads)
	}
	single := 1 / threadCPI
	width := float64(p.IssueWidth)
	if single > width {
		single = width
	}
	ipc := single
	if threads == 2 {
		u := single / width
		fill := p.SMTFillEff * (1 - u)
		ipc = single * (1 + fill) * (1 - p.SMTOverhead)
		if ipc > width {
			ipc = width
		}
	}
	return CoreThroughput{
		IPC:          ipc,
		Utilization:  ipc / width,
		PerThreadIPC: ipc / float64(threads),
	}, nil
}
