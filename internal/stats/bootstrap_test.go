package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBootstrapCIMeanAgreesWithT(t *testing.T) {
	// For well-behaved data the bootstrap and Student-t intervals for
	// the mean should roughly agree.
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = 100 + rng.NormFloat64()*5
	}
	tci, err := ConfidenceInterval(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	bci, err := BootstrapCI(xs, Mean, 0.95, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bci.Mean-tci.Mean) > 1e-9 {
		t.Fatalf("point estimates differ: %v vs %v", bci.Mean, tci.Mean)
	}
	if bci.Half < tci.Half*0.5 || bci.Half > tci.Half*2 {
		t.Fatalf("bootstrap half %v far from t half %v", bci.Half, tci.Half)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a, err := BootstrapCI(xs, Mean, 0.95, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapCI(xs, Mean, 0.95, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed produced different intervals")
	}
	c, err := BootstrapCI(xs, Mean, 0.95, 500, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical intervals")
	}
}

func TestBootstrapCINonlinearStatistic(t *testing.T) {
	// The point of the bootstrap: intervals for statistics with no
	// closed-form error, like the median.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	ci, err := BootstrapCI(xs, Median, 0.9, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Mean != Median(xs) {
		t.Fatalf("point estimate %v != median", ci.Mean)
	}
	if ci.Half <= 0 {
		t.Fatal("degenerate interval")
	}
	// The outlier must not drag the median interval toward 100.
	if ci.Hi() > 50 {
		t.Fatalf("median interval contaminated by outlier: hi %v", ci.Hi())
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	if _, err := BootstrapCI([]float64{1}, Mean, 0.95, 500, 1); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := BootstrapCI([]float64{1, 2}, nil, 0.95, 500, 1); err == nil {
		t.Fatal("nil statistic accepted")
	}
	if _, err := BootstrapCI([]float64{1, 2}, Mean, 1.5, 500, 1); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := BootstrapCI([]float64{1, 2}, Mean, 0.95, 10, 1); err == nil {
		t.Fatal("too few resamples accepted")
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 2, 4}); math.Abs(got-12.0/7.0) > 1e-12 {
		t.Fatalf("HarmonicMean = %v, want 12/7", got)
	}
	if got := HarmonicMean(nil); !math.IsNaN(got) {
		t.Fatalf("empty = %v, want NaN", got)
	}
	if got := HarmonicMean([]float64{1, -1}); !math.IsNaN(got) {
		t.Fatalf("negative = %v, want NaN", got)
	}
	// Harmonic <= geometric <= arithmetic.
	xs := []float64{2, 3, 7, 11}
	if !(HarmonicMean(xs) <= GeoMean(xs) && GeoMean(xs) <= Mean(xs)) {
		t.Fatal("mean inequality violated")
	}
}

// Property: the bootstrap interval always contains its point estimate,
// and widens (weakly) with confidence level.
func TestQuickBootstrapContainsPoint(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		lo, err1 := BootstrapCI(xs, Mean, 0.80, 400, seed)
		hi, err2 := BootstrapCI(xs, Mean, 0.99, 400, seed)
		if err1 != nil || err2 != nil {
			return false
		}
		return lo.Contains(lo.Mean) && hi.Contains(hi.Mean) && hi.Half >= lo.Half-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
