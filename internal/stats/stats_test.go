package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if got := Mean(nil); !math.IsNaN(got) {
		t.Fatalf("Mean(nil) = %v, want NaN", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEqual(got, 10, 1e-12) {
		t.Fatalf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean([]float64{2, -1}); !math.IsNaN(got) {
		t.Fatalf("GeoMean with negative = %v, want NaN", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} is 32/7.
	got := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestVarianceSingleSampleNaN(t *testing.T) {
	if got := Variance([]float64{3}); !math.IsNaN(got) {
		t.Fatalf("Variance of one sample = %v, want NaN", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if got := Median(xs); got != 4 {
		t.Fatalf("Median = %v, want 4", got)
	}
	if got := Median([]float64{5, 1, 9}); got != 5 {
		t.Fatalf("Median odd = %v, want 5", got)
	}
	// Median must not mutate its input.
	if xs[0] != 5 {
		t.Fatal("Median mutated its input")
	}
}

func TestConfidenceIntervalMatchesKnownT(t *testing.T) {
	// For df=4, the 97.5th percentile of t is 2.776445.
	xs := []float64{10, 12, 9, 11, 13}
	ci, err := ConfidenceInterval(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.776445 * StdDev(xs) / math.Sqrt(5)
	if !almostEqual(ci.Half, want, 1e-4) {
		t.Fatalf("CI half = %v, want %v", ci.Half, want)
	}
	if !ci.Contains(ci.Mean) {
		t.Fatal("CI must contain its own mean")
	}
	if ci.Lo() >= ci.Hi() {
		t.Fatal("CI bounds inverted")
	}
}

func TestConfidenceIntervalErrors(t *testing.T) {
	if _, err := ConfidenceInterval([]float64{1}, 0.95); err == nil {
		t.Fatal("want error for single sample")
	}
	if _, err := ConfidenceInterval([]float64{1, 2}, 1.5); err == nil {
		t.Fatal("want error for invalid level")
	}
}

func TestCIRelative(t *testing.T) {
	ci := CI{Mean: 50, Half: 1}
	if got := ci.Relative(); got != 0.02 {
		t.Fatalf("Relative = %v, want 0.02", got)
	}
	zero := CI{Mean: 0, Half: 1}
	if got := zero.Relative(); got != 0 {
		t.Fatalf("Relative with zero mean = %v, want 0", got)
	}
}

func TestTQuantileAgainstTables(t *testing.T) {
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.975, 1, 12.7062},
		{0.975, 2, 4.30265},
		{0.975, 10, 2.22814},
		{0.975, 30, 2.04227},
		{0.95, 5, 2.01505},
		{0.995, 19, 2.86093},
	}
	for _, c := range cases {
		got := tQuantile(c.p, c.df)
		if !almostEqual(got, c.want, 5e-4) {
			t.Errorf("tQuantile(%v, %d) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []int{1, 3, 9, 25} {
		up := tQuantile(0.9, df)
		dn := tQuantile(0.1, df)
		if !almostEqual(up, -dn, 1e-6) {
			t.Errorf("df=%d: t(0.9)=%v not symmetric with t(0.1)=%v", df, up, dn)
		}
	}
}

func TestLinregressExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	fit, err := Linregress(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 3, 1e-12) || !almostEqual(fit.Intercept, 7, 1e-12) {
		t.Fatalf("fit = %+v, want slope 3 intercept 7", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	x, err := fit.Invert(13)
	if err != nil || !almostEqual(x, 2, 1e-12) {
		t.Fatalf("Invert(13) = %v, %v; want 2", x, err)
	}
}

func TestLinregressErrors(t *testing.T) {
	if _, err := Linregress([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error for one point")
	}
	if _, err := Linregress([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
	if _, err := Linregress([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("want error for degenerate xs")
	}
	degenerate := LinearFit{Slope: 0, Intercept: 1}
	if _, err := degenerate.Invert(5); err == nil {
		t.Fatal("want error inverting zero slope")
	}
}

func TestLinregressNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = 2*xs[i] + 5 + rng.NormFloat64()*0.01
	}
	fit, err := Linregress(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 0.01) || !almostEqual(fit.Intercept, 5, 0.05) {
		t.Fatalf("noisy fit = %+v", fit)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v, want >= 0.999 (the paper's sensor threshold)", fit.R2)
	}
}

func TestPolyfitExactQuadratic(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 2*x + 3*x*x
	}
	fit, err := Polyfit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, c := range fit.Coeffs {
		if !almostEqual(c, want[i], 1e-8) {
			t.Fatalf("coeff[%d] = %v, want %v", i, c, want[i])
		}
	}
	if fit.Degree() != 2 {
		t.Fatalf("Degree = %d, want 2", fit.Degree())
	}
	if !almostEqual(fit.Predict(10), 321, 1e-6) {
		t.Fatalf("Predict(10) = %v, want 321", fit.Predict(10))
	}
}

func TestPolyfitErrors(t *testing.T) {
	if _, err := Polyfit([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Fatal("want error: not enough points for degree")
	}
	if _, err := Polyfit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Fatal("want error: mismatched lengths")
	}
	if _, err := Polyfit([]float64{1, 2, 3}, []float64{1, 2, 3}, -1); err == nil {
		t.Fatal("want error: negative degree")
	}
}

// Property: the mean always lies between min and max.
func TestQuickMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shifting every sample by a constant shifts the CI mean by the
// same constant and leaves the half-width unchanged.
func TestQuickCIShiftInvariance(t *testing.T) {
	f := func(seed int64, shiftRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		shift := float64(shiftRaw)
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = xs[i] + shift
		}
		a, err1 := ConfidenceInterval(xs, 0.95)
		b, err2 := ConfidenceInterval(ys, 0.95)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(b.Mean, a.Mean+shift, 1e-9) && almostEqual(a.Half, b.Half, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a linear fit through any non-degenerate affine data recovers
// the generating coefficients.
func TestQuickLinregressRecovers(t *testing.T) {
	f := func(seed int64, slopeRaw, interceptRaw int16) bool {
		rng := rand.New(rand.NewSource(seed))
		slope := float64(slopeRaw) / 100
		intercept := float64(interceptRaw) / 100
		xs := make([]float64, 12)
		ys := make([]float64, 12)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()
			ys[i] = slope*xs[i] + intercept
		}
		fit, err := Linregress(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.Slope, slope, 1e-6) && almostEqual(fit.Intercept, intercept, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: polynomial fit residual R2 is always <= 1 and the fit of exact
// polynomial data achieves R2 ~ 1.
func TestQuickPolyfitR2(t *testing.T) {
	f := func(a, b, c int8) bool {
		xs := []float64{-3, -2, -1, 0, 1, 2, 3, 4}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = float64(a) + float64(b)*x + float64(c)*x*x
		}
		fit, err := Polyfit(xs, ys, 2)
		if err != nil {
			return false
		}
		return fit.R2 > 0.999999 && fit.R2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Fatalf("I_0 = %v, want 0", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Fatalf("I_1 = %v, want 1", got)
	}
	// I_x(1,1) = x for the uniform case.
	for _, x := range []float64{0.1, 0.35, 0.5, 0.92} {
		if got := regIncBeta(1, 1, x); !almostEqual(got, x, 1e-10) {
			t.Fatalf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
}
