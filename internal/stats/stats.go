// Package stats provides the statistical machinery used throughout the
// measurement methodology: descriptive statistics, Student-t confidence
// intervals, least-squares fitting (linear and polynomial), and the
// coefficient of determination used to validate sensor calibration.
//
// The paper reports 95% confidence intervals for every execution-time and
// power measurement (Table 2), validates each Hall-effect sensor with a
// linear fit whose R-squared must be at least 0.999 (Section 2.5), and fits
// polynomial curves through Pareto-efficient configurations (Figure 12).
// This package implements exactly those primitives on top of the standard
// library.
package stats

import (
	"errors"
	"math"
	"sort"
	"sync"
)

// ErrInsufficientData is returned when an operation needs more samples than
// were supplied (for example a confidence interval over fewer than two
// observations).
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs. It returns NaN for an empty slice
// so that missing data propagates visibly rather than silently as zero.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// any non-positive value yields NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Variance returns the unbiased (n-1) sample variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// CI describes a two-sided confidence interval around a sample mean.
type CI struct {
	Mean  float64 // sample mean
	Half  float64 // half-width of the interval (mean ± Half)
	Level float64 // confidence level, e.g. 0.95
	N     int     // number of samples
}

// Relative returns the half-width as a fraction of the mean, the form in
// which the paper reports its aggregate confidence intervals (Table 2).
// It returns 0 when the mean is zero.
func (c CI) Relative() float64 {
	if c.Mean == 0 {
		return 0
	}
	return math.Abs(c.Half / c.Mean)
}

// Lo returns the lower bound of the interval.
func (c CI) Lo() float64 { return c.Mean - c.Half }

// Hi returns the upper bound of the interval.
func (c CI) Hi() float64 { return c.Mean + c.Half }

// Contains reports whether v lies within the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo() && v <= c.Hi() }

// ConfidenceInterval computes a two-sided Student-t confidence interval for
// the mean of xs at the given level (e.g. 0.95). It requires at least two
// samples.
func ConfidenceInterval(xs []float64, level float64) (CI, error) {
	if len(xs) < 2 {
		return CI{}, ErrInsufficientData
	}
	if level <= 0 || level >= 1 {
		return CI{}, errors.New("stats: confidence level must be in (0,1)")
	}
	n := len(xs)
	m := Mean(xs)
	sd := StdDev(xs)
	t := tQuantile(1-(1-level)/2, n-1)
	half := t * sd / math.Sqrt(float64(n))
	return CI{Mean: m, Half: half, Level: level, N: n}, nil
}

// tCache memoizes tQuantile results. The study computes two confidence
// intervals per cell but only ever asks for a handful of distinct
// (level, df) pairs — 95% at n of 3, 5, or 20 — and each bisection costs
// 200 incomplete-beta evaluations, so the memo removes a measurable
// slice of the measure path. Keys are exact float levels, so a cached
// value is the exact float the bisection would return.
var tCache sync.Map // tKey -> float64

type tKey struct {
	p  float64
	df int
}

// tQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom. It inverts the CDF by bisection on top of the
// regularized incomplete beta function, which is accurate to well beyond
// the needs of 95% confidence reporting. Results are memoized per
// (p, df).
func tQuantile(p float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	if v, ok := tCache.Load(tKey{p, df}); ok {
		return v.(float64)
	}
	t := tQuantileSlow(p, df)
	tCache.Store(tKey{p, df}, t)
	return t
}

// tQuantileSlow is the uncached bisection.
func tQuantileSlow(p float64, df int) float64 {
	// The t CDF is monotone; bracket the quantile generously and bisect.
	lo, hi := -200.0, 200.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, float64(df)) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tCDF returns the CDF of Student's t distribution at x with v degrees of
// freedom, via the regularized incomplete beta function.
func tCDF(x, v float64) float64 {
	if x == 0 {
		return 0.5
	}
	ib := regIncBeta(v/2, 0.5, v/(v+x*x))
	if x > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's algorithm), following
// the classic numerical-recipes formulation.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
