package stats

import (
	"errors"
	"math"
)

// LinearFit is the result of an ordinary least-squares fit y = Slope*x +
// Intercept. The paper calibrates each current sensor with such a fit over
// 28 reference currents and requires R2 >= 0.999 before trusting the meter
// (Section 2.5).
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// Invert solves the fitted line for x given y. It returns an error when the
// slope is zero (a degenerate sensor that never responds to current).
func (f LinearFit) Invert(y float64) (float64, error) {
	if f.Slope == 0 {
		return 0, errors.New("stats: cannot invert fit with zero slope")
	}
	return (y - f.Intercept) / f.Slope, nil
}

// Linregress computes an ordinary least-squares linear fit of ys on xs.
// The slices must be the same length with at least two points, and the xs
// must not all be identical.
func Linregress(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched series lengths")
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	n := float64(len(xs))
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: int(n)}, nil
}

// PolyFit holds the coefficients of a least-squares polynomial fit,
// Coeffs[i] being the coefficient of x^i.
type PolyFit struct {
	Coeffs []float64
	R2     float64
}

// Predict evaluates the polynomial at x using Horner's rule.
func (p PolyFit) Predict(x float64) float64 {
	y := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		y = y*x + p.Coeffs[i]
	}
	return y
}

// Degree returns the degree of the fitted polynomial.
func (p PolyFit) Degree() int { return len(p.Coeffs) - 1 }

// Polyfit fits a polynomial of the given degree to (xs, ys) by solving the
// normal equations with Gaussian elimination. It needs at least degree+1
// points. The paper fits such curves through the Pareto-efficient
// configurations to draw the frontier in Figure 12.
func Polyfit(xs, ys []float64, degree int) (PolyFit, error) {
	if degree < 0 {
		return PolyFit{}, errors.New("stats: negative polynomial degree")
	}
	if len(xs) != len(ys) {
		return PolyFit{}, errors.New("stats: mismatched series lengths")
	}
	if len(xs) < degree+1 {
		return PolyFit{}, ErrInsufficientData
	}
	m := degree + 1
	// Build the normal-equation system A c = b where A[i][j] = sum x^(i+j).
	pow := make([]float64, 2*m-1)
	for _, x := range xs {
		xp := 1.0
		for k := range pow {
			pow[k] += xp
			xp *= x
		}
	}
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			a[i][j] = pow[i+j]
		}
	}
	for k, x := range xs {
		xp := 1.0
		for i := 0; i < m; i++ {
			b[i] += ys[k] * xp
			xp *= x
		}
	}
	coeffs, err := solveGauss(a, b)
	if err != nil {
		return PolyFit{}, err
	}
	fit := PolyFit{Coeffs: coeffs}
	// R2 against the mean model.
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := range xs {
		r := ys[i] - fit.Predict(xs[i])
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// solveGauss solves the linear system a*x = b with partial pivoting. The
// inputs are modified in place.
func solveGauss(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, errors.New("stats: singular system in polynomial fit")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
