package stats

import (
	"errors"
	"math/rand"
	"sort"
)

// BootstrapCI computes a percentile-bootstrap confidence interval for an
// arbitrary statistic of xs. Where the Student-t intervals of
// ConfidenceInterval assume near-normal run-to-run variation (a good fit
// for execution time and average power), the bootstrap makes no such
// assumption and is the right tool for derived quantities like energy
// (a product) or normalized ratios.
//
// resamples controls the bootstrap size (2000 is a common choice); seed
// makes the interval deterministic, in keeping with the study's
// reproducibility contract.
func BootstrapCI(xs []float64, statistic func([]float64) float64, level float64, resamples int, seed int64) (CI, error) {
	if len(xs) < 2 {
		return CI{}, ErrInsufficientData
	}
	if statistic == nil {
		return CI{}, errors.New("stats: nil statistic")
	}
	if level <= 0 || level >= 1 {
		return CI{}, errors.New("stats: confidence level must be in (0,1)")
	}
	if resamples < 100 {
		return CI{}, errors.New("stats: need at least 100 resamples")
	}
	rng := rand.New(rand.NewSource(seed))
	point := statistic(xs)
	boot := make([]float64, resamples)
	sample := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range sample {
			sample[i] = xs[rng.Intn(len(xs))]
		}
		boot[r] = statistic(sample)
	}
	sort.Float64s(boot)
	alpha := (1 - level) / 2
	lo := boot[quantileIndex(alpha, resamples)]
	hi := boot[quantileIndex(1-alpha, resamples)]
	// Report as a symmetric-looking CI around the point estimate with
	// the half-width covering the wider side, so CI.Contains covers the
	// full percentile interval.
	half := point - lo
	if hi-point > half {
		half = hi - point
	}
	if half < 0 {
		half = 0
	}
	return CI{Mean: point, Half: half, Level: level, N: len(xs)}, nil
}

// quantileIndex maps a quantile to a sorted-slice index, clamped.
func quantileIndex(q float64, n int) int {
	idx := int(q * float64(n))
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}

// HarmonicMean returns the harmonic mean of xs, the correct aggregate
// for rate-like quantities. All values must be positive.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return nan()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return nan()
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

func nan() float64 { return Mean(nil) }
