package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func flatTrace(watts float64, n int) *Trace {
	tr := &Trace{}
	for i := 0; i < n; i++ {
		tr.Append(watts, 0.02)
	}
	return tr
}

func TestAppendAndLen(t *testing.T) {
	tr := &Trace{}
	tr.Append(10, 0.02)
	tr.Append(12, 0.02)
	tr.Append(12, 0) // ignored
	tr.Append(12, -1)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if math.Abs(tr.Seconds()-0.04) > 1e-12 {
		t.Fatalf("Seconds = %v, want 0.04", tr.Seconds())
	}
	s := tr.Samples()
	s[0].Watts = -1
	if tr.Samples()[0].Watts == -1 {
		t.Fatal("Samples returned shared state")
	}
}

func TestStatsFlat(t *testing.T) {
	st, err := flatTrace(20, 100).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.AvgWatts-20) > 1e-9 || st.MinWatts != 20 || st.MaxWatts != 20 {
		t.Fatalf("flat stats wrong: %+v", st)
	}
	if st.Swing != 0 || st.StdWatts != 0 {
		t.Fatalf("flat trace has swing: %+v", st)
	}
}

func TestStatsTimeWeighted(t *testing.T) {
	tr := &Trace{}
	tr.Append(10, 3) // 30 J
	tr.Append(40, 1) // 40 J
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.AvgWatts-17.5) > 1e-9 {
		t.Fatalf("time-weighted avg = %v, want 17.5", st.AvgWatts)
	}
	if math.Abs(st.Swing-30.0/17.5) > 1e-9 {
		t.Fatalf("swing = %v", st.Swing)
	}
}

func TestStatsEmpty(t *testing.T) {
	if _, err := (&Trace{}).Stats(); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestPhasesDetectsStep(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 100; i++ { // 2s at 20W
		tr.Append(20, 0.02)
	}
	for i := 0; i < 100; i++ { // 2s at 40W
		tr.Append(40, 0.02)
	}
	phases, err := tr.Phases(0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("%d phases, want 2: %+v", len(phases), phases)
	}
	if math.Abs(phases[0].AvgWatts-20) > 1 || math.Abs(phases[1].AvgWatts-40) > 1 {
		t.Fatalf("phase means wrong: %+v", phases)
	}
	if math.Abs(phases[0].EndS-2) > 0.1 {
		t.Fatalf("phase boundary at %v, want ~2s", phases[0].EndS)
	}
}

func TestPhasesFlatIsOnePhase(t *testing.T) {
	phases, err := flatTrace(25, 200).Phases(0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Fatalf("%d phases on a flat trace, want 1", len(phases))
	}
}

func TestPhasesErrors(t *testing.T) {
	tr := flatTrace(10, 10)
	if _, err := tr.Phases(0, 0.1); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, err := tr.Phases(1.5, 0.1); err == nil {
		t.Fatal("threshold above 1 accepted")
	}
	if _, err := (&Trace{}).Phases(0.2, 0.1); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestSparkline(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 50; i++ {
		tr.Append(10, 0.02)
	}
	for i := 0; i < 50; i++ {
		tr.Append(50, 0.02)
	}
	line, err := tr.Sparkline(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(line) != 40 {
		t.Fatalf("sparkline width %d, want 40", len(line))
	}
	// The low half renders light, the high half dense.
	if !strings.Contains(line[:15], " ") {
		t.Fatalf("low phase not light: %q", line)
	}
	if !strings.Contains(line[25:], "#") {
		t.Fatalf("high phase not dense: %q", line)
	}
	if _, err := (&Trace{}).Sparkline(10); err == nil {
		t.Fatal("empty trace accepted")
	}
	// Degenerate width defaults rather than failing.
	if l, err := tr.Sparkline(0); err != nil || len(l) != 60 {
		t.Fatalf("default width: %d, %v", len(l), err)
	}
}

// Property: the time-weighted average lies within [min, max] and energy
// identity holds against a manual sum.
func TestQuickStatsConsistent(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		tr := &Trace{}
		var joules, seconds float64
		for _, r := range raw {
			w := float64(r%100) + 1
			tr.Append(w, 0.02)
			joules += w * 0.02
			seconds += 0.02
		}
		st, err := tr.Stats()
		if err != nil {
			return false
		}
		if st.AvgWatts < st.MinWatts-1e-9 || st.AvgWatts > st.MaxWatts+1e-9 {
			return false
		}
		return math.Abs(st.AvgWatts*seconds-joules) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
