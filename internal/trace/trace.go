// Package trace captures and analyzes power-over-time traces, the raw
// material of the paper's methodology: the AVR logger samples each run
// at 50 Hz and the paper computes averages over the trace. Beyond the
// average, a trace exposes the phase structure of a workload — the
// bursts, ramps, and steady plateaus that motivate the paper's call for
// on-chip power meters that software can read *during* execution.
package trace

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// Sample is one logged point.
type Sample struct {
	// T is the sample's time offset from the run start, in seconds.
	T float64
	// Watts is the logged power.
	Watts float64
}

// Trace is a time-ordered power log of one run.
type Trace struct {
	samples []Sample
	clock   float64 // running time accumulator for Append
}

// Append logs a sample of the given duration; it is shaped to serve as
// a sim.SampleFunc.
func (tr *Trace) Append(watts, dtSeconds float64) {
	if dtSeconds <= 0 {
		return
	}
	tr.clock += dtSeconds
	tr.samples = append(tr.samples, Sample{T: tr.clock, Watts: watts})
}

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.samples) }

// Samples returns a copy of the logged samples.
func (tr *Trace) Samples() []Sample {
	out := make([]Sample, len(tr.samples))
	copy(out, tr.samples)
	return out
}

// Seconds returns the trace duration.
func (tr *Trace) Seconds() float64 { return tr.clock }

// Stats summarizes a trace.
type Stats struct {
	AvgWatts float64
	MinWatts float64
	MaxWatts float64
	StdWatts float64
	// Swing is (max-min)/avg: the workload's phase amplitude.
	Swing float64
}

// Stats computes the trace summary. It errors on an empty trace.
func (tr *Trace) Stats() (Stats, error) {
	if len(tr.samples) == 0 {
		return Stats{}, errors.New("trace: empty trace")
	}
	ws := make([]float64, len(tr.samples))
	var prevT float64
	var wattSeconds float64
	for i, s := range tr.samples {
		ws[i] = s.Watts
		wattSeconds += s.Watts * (s.T - prevT)
		prevT = s.T
	}
	st := Stats{
		AvgWatts: wattSeconds / tr.clock,
		MinWatts: stats.Min(ws),
		MaxWatts: stats.Max(ws),
	}
	if len(ws) > 1 {
		st.StdWatts = stats.StdDev(ws)
	}
	if st.AvgWatts > 0 {
		st.Swing = (st.MaxWatts - st.MinWatts) / st.AvgWatts
	}
	return st, nil
}

// Phase is a contiguous stretch of roughly constant power.
type Phase struct {
	StartS   float64
	EndS     float64
	AvgWatts float64
}

// Phases segments the trace into power phases: a new phase starts when
// the smoothed power departs from the current phase's mean by more than
// the threshold fraction. minSeconds suppresses jitter-length phases.
func (tr *Trace) Phases(threshold, minSeconds float64) ([]Phase, error) {
	if len(tr.samples) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("trace: threshold %v outside (0,1)", threshold)
	}
	var phases []Phase
	cur := Phase{StartS: 0, AvgWatts: tr.samples[0].Watts}
	n := 1.0
	var prevT float64
	for _, s := range tr.samples[1:] {
		dev := math.Abs(s.Watts-cur.AvgWatts) / cur.AvgWatts
		if dev > threshold && s.T-cur.StartS >= minSeconds {
			cur.EndS = prevT
			phases = append(phases, cur)
			cur = Phase{StartS: prevT, AvgWatts: s.Watts}
			n = 1
		} else {
			cur.AvgWatts += (s.Watts - cur.AvgWatts) / (n + 1)
			n++
		}
		prevT = s.T
	}
	cur.EndS = tr.clock
	phases = append(phases, cur)
	return phases, nil
}

// Sparkline renders the trace as a fixed-width unicode-free ASCII strip
// using the ramp " .:-=+*#", for terminal inspection.
func (tr *Trace) Sparkline(width int) (string, error) {
	if len(tr.samples) == 0 {
		return "", errors.New("trace: empty trace")
	}
	if width < 1 {
		width = 60
	}
	st, err := tr.Stats()
	if err != nil {
		return "", err
	}
	ramp := []byte(" .:-=+*#")
	span := st.MaxWatts - st.MinWatts
	var sb strings.Builder
	for col := 0; col < width; col++ {
		// Time-proportional bucket average.
		lo := tr.clock * float64(col) / float64(width)
		hi := tr.clock * float64(col+1) / float64(width)
		var sum float64
		var cnt int
		for _, s := range tr.samples {
			if s.T > lo && s.T <= hi {
				sum += s.Watts
				cnt++
			}
		}
		w := st.AvgWatts
		if cnt > 0 {
			w = sum / float64(cnt)
		}
		idx := 0
		if span > 0 {
			idx = int((w - st.MinWatts) / span * float64(len(ramp)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		sb.WriteByte(ramp[idx])
	}
	return sb.String(), nil
}
