package tune

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestPointsDeterministicCrossProduct(t *testing.T) {
	g := Grid{
		Workers:     []int{1, 2},
		CacheShards: []int{4},
		BatchSizes:  []int{8, 61},
		HedgeDelays: []time.Duration{0, time.Millisecond},
	}
	a, b := g.Points(), g.Points()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Points is not deterministic")
	}
	if len(a) != 2*1*2*2 {
		t.Fatalf("got %d points, want 8", len(a))
	}
	// Axis-major order: workers outermost, hedge delay innermost.
	want0 := Point{Workers: 1, CacheShards: 4, BatchSize: 8, HedgeDelay: 0}
	if a[0] != want0 {
		t.Fatalf("first point %+v, want %+v", a[0], want0)
	}
	wantLast := Point{Workers: 2, CacheShards: 4, BatchSize: 61, HedgeDelay: time.Millisecond}
	if a[len(a)-1] != wantLast {
		t.Fatalf("last point %+v, want %+v", a[len(a)-1], wantLast)
	}
}

func TestPointsEmptyAxesCollapse(t *testing.T) {
	pts := Grid{}.Points()
	if len(pts) != 1 {
		t.Fatalf("empty grid expands to %d points, want 1 all-default point", len(pts))
	}
	if pts[0] != (Point{}) {
		t.Fatalf("default point %+v, want zero point", pts[0])
	}
}

func TestSelectKneePrefersFrugalWithinTolerance(t *testing.T) {
	results := []Result{
		{Point: Point{Workers: 8, BatchSize: 61}, Seconds: 1.00},
		{Point: Point{Workers: 2, BatchSize: 61}, Seconds: 1.05}, // within 10% of best, cheaper
		{Point: Point{Workers: 1, BatchSize: 61}, Seconds: 1.50}, // cheapest but too slow
	}
	knee, err := selectKnee(results)
	if err != nil {
		t.Fatal(err)
	}
	if knee.Point.Workers != 2 {
		t.Fatalf("knee picked workers=%d, want the frugal in-tolerance point (2)", knee.Point.Workers)
	}
}

func TestSelectKneeEmpty(t *testing.T) {
	if _, err := selectKnee(nil); err == nil {
		t.Fatal("empty results accepted")
	}
}

// TestRunSweepsAndSelects drives the full tuner against in-process
// backends on a tiny grid: every point must score, and the knee must be
// one of the swept points.
func TestRunSweepsAndSelects(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up live calibration clusters")
	}
	grid := Grid{BatchSizes: []int{16, 61}}
	var logged []string
	rep, err := Run(context.Background(), Config{
		Seed:     42,
		Configs:  1,
		Backends: 2,
		Logf:     func(f string, a ...any) { logged = append(logged, f) },
	}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("scored %d points, want 2", len(rep.Results))
	}
	found := false
	for _, r := range rep.Results {
		if r.Seconds <= 0 {
			t.Fatalf("point %s scored non-positive time %v", r.Point, r.Seconds)
		}
		if r.Cells != 61 {
			t.Fatalf("point %s measured %d cells, want 61", r.Point, r.Cells)
		}
		if r.Point == rep.Knee {
			found = true
			if r.Seconds != rep.KneeSeconds {
				t.Fatalf("knee seconds %v does not match its result %v", rep.KneeSeconds, r.Seconds)
			}
		}
	}
	if !found {
		t.Fatalf("knee %+v is not one of the swept points", rep.Knee)
	}
	if rep.KneeSeconds > rep.Best*KneeTolerance {
		t.Fatalf("knee time %v outside tolerance of best %v", rep.KneeSeconds, rep.Best)
	}
	if len(logged) != 2 {
		t.Fatalf("Logf called %d times, want once per point", len(logged))
	}
	if !strings.Contains(rep.PowerperfdFlags(), "-cache-shards") {
		t.Fatalf("bad powerperfd flags: %q", rep.PowerperfdFlags())
	}
	if !strings.Contains(rep.FullstudyFlags(), "-batch-size") {
		t.Fatalf("bad fullstudy flags: %q", rep.FullstudyFlags())
	}
	if len(rep.Env()) != 4 {
		t.Fatalf("Env emitted %d entries, want 4", len(rep.Env()))
	}
}
