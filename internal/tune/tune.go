// Package tune is the experiment-grid auto-tuner: it sweeps the
// study pipeline's performance knobs — backend worker count, cache
// shard count, coordinator batch size, and hedge delay — over a
// declarative grid, runs a short calibration study per point against
// in-process backends, and selects the knee of the cost/benefit curve.
//
// Every knob it sweeps is pure scheduling: the determinism contract
// guarantees the measured bytes are identical at every grid point, so
// the tuner only ever trades wall time against resource footprint,
// never correctness. The chosen point is emitted as ready-to-paste
// flags for powerperfd and fullstudy.
package tune

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/service"
)

// Grid declares the sweep: the cross product of every listed value.
// Empty axes collapse to the corresponding default (a single point on
// that axis), so a Grid{BatchSizes: []int{16, 61}} sweeps batch size
// alone.
type Grid struct {
	// Workers is the backend measurement worker count
	// (service.Options.Workers); 0 entries mean GOMAXPROCS.
	Workers []int
	// CacheShards is the backend cache shard count
	// (service.Options.CacheShards); 0 entries mean the default (16).
	CacheShards []int
	// BatchSizes is the coordinator's cells-per-request
	// (cluster.Options.BatchSize); 0 entries mean the default (61).
	BatchSizes []int
	// HedgeDelays is the coordinator's straggler hedge delay
	// (cluster.Options.HedgeDelay); 0 entries disable hedging.
	HedgeDelays []time.Duration
}

// QuickGrid is the default sweep: a coarse pass over the knobs that
// move the served-study benchmark, small enough to finish in seconds.
func QuickGrid() Grid {
	return Grid{
		Workers:     []int{0},
		CacheShards: []int{16},
		BatchSizes:  []int{16, 61, 122},
		HedgeDelays: []time.Duration{0},
	}
}

// FullGrid is the exhaustive sweep for commissioning new hardware.
func FullGrid() Grid {
	return Grid{
		Workers:     []int{0, 1, 2, 4, 8},
		CacheShards: []int{1, 4, 16, 64},
		BatchSizes:  []int{8, 16, 32, 61, 122},
		HedgeDelays: []time.Duration{0, 50 * time.Millisecond, 250 * time.Millisecond},
	}
}

// Point is one grid cell: a complete knob assignment.
type Point struct {
	Workers     int           `json:"workers"`
	CacheShards int           `json:"cache_shards"`
	BatchSize   int           `json:"batch_size"`
	HedgeDelay  time.Duration `json:"hedge_delay_ns"`
}

// String renders the point compactly for logs and reports.
func (p Point) String() string {
	return fmt.Sprintf("workers=%d shards=%d batch=%d hedge=%s",
		p.Workers, p.CacheShards, p.BatchSize, p.HedgeDelay)
}

// Points expands the grid into its cross product in deterministic
// axis-major order (workers outermost, hedge delay innermost), so two
// tuner runs visit identical points in identical order.
func (g Grid) Points() []Point {
	workers := orDefault(g.Workers)
	shards := orDefault(g.CacheShards)
	batches := orDefault(g.BatchSizes)
	hedges := g.HedgeDelays
	if len(hedges) == 0 {
		hedges = []time.Duration{0}
	}
	pts := make([]Point, 0, len(workers)*len(shards)*len(batches)*len(hedges))
	for _, w := range workers {
		for _, s := range shards {
			for _, b := range batches {
				for _, h := range hedges {
					pts = append(pts, Point{Workers: w, CacheShards: s, BatchSize: b, HedgeDelay: h})
				}
			}
		}
	}
	return pts
}

func orDefault(vals []int) []int {
	if len(vals) == 0 {
		return []int{0}
	}
	return vals
}

// Config shapes the calibration study run at every grid point.
type Config struct {
	// Seed is the study seed; measurements are identical at every point
	// regardless, but the seed keys backend caches. 0 selects 42.
	Seed int64
	// Configs is how many stock configurations the calibration grid
	// covers (x 61 benchmarks each); <= 0 selects 2. More configurations
	// cost proportionally more per point and separate points better.
	Configs int
	// Repeats is how many times each point's study runs; the fastest
	// repeat scores the point (minimum is the standard noise-rejecting
	// summary for wall-clock measurement). <= 0 selects 1. Backends are
	// rebuilt per repeat so every repeat pays the same cold cache.
	Repeats int
	// Backends is how many in-process powerperfd instances the
	// calibration cluster spans; <= 0 selects 2.
	Backends int
	// Logf, when set, receives one line per scored point.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Configs <= 0 {
		c.Configs = 2
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	if c.Backends <= 0 {
		c.Backends = 2
	}
	return c
}

// Result is one scored grid point.
type Result struct {
	Point   Point   `json:"point"`
	Seconds float64 `json:"seconds"` // fastest repeat's wall time
	Cells   int     `json:"cells"`
}

// Report is the tuner's output: every scored point plus the selection.
type Report struct {
	Seed     int64    `json:"seed"`
	Configs  int      `json:"configs"`
	Backends int      `json:"backends"`
	Results  []Result `json:"results"`
	// Best is the fastest point's wall time; Knee is the selected point
	// and KneeSeconds its wall time (within KneeTolerance of Best).
	Best        float64 `json:"best_seconds"`
	Knee        Point   `json:"knee"`
	KneeSeconds float64 `json:"knee_seconds"`
}

// KneeTolerance is how far above the fastest point a candidate may sit
// and still be considered knee-eligible: within 10%, differences are
// noise or not worth the extra resources.
const KneeTolerance = 1.10

// selectKnee picks the cheapest point whose time is within
// KneeTolerance of the best. Cost is resource-lexicographic — fewer
// workers, then fewer shards, then smaller batches, then no hedging —
// so the tuner prefers the most frugal configuration that keeps the
// speed. (Workers/shards/batch 0 mean "default", which is treated as
// costlier than any explicit smaller value by comparing the resolved
// magnitude.)
func selectKnee(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, errors.New("tune: no results to select from")
	}
	best := results[0].Seconds
	for _, r := range results[1:] {
		if r.Seconds < best {
			best = r.Seconds
		}
	}
	var knee Result
	found := false
	for _, r := range results {
		if r.Seconds > best*KneeTolerance {
			continue
		}
		if !found || cheaper(r.Point, knee.Point) {
			knee, found = r, true
		}
	}
	return knee, nil
}

// cheaper orders points by resource footprint, lexicographically.
func cheaper(a, b Point) bool {
	if x, y := resolved(a.Workers, 9999), resolved(b.Workers, 9999); x != y {
		return x < y
	}
	if x, y := resolved(a.CacheShards, 16), resolved(b.CacheShards, 16); x != y {
		return x < y
	}
	if x, y := resolved(a.BatchSize, 61), resolved(b.BatchSize, 61); x != y {
		return x < y
	}
	return a.HedgeDelay < b.HedgeDelay
}

// resolved maps the 0 = "default" sentinel to the default's magnitude
// for cost comparison.
func resolved(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// Run sweeps the grid: for each point it stands up Config.Backends
// in-process powerperfd instances with the point's backend knobs,
// fronts them with a coordinator carrying the point's client knobs,
// and times one calibration study per repeat. Backends are rebuilt per
// repeat, so every repeat measures the same cold-cache work.
func Run(ctx context.Context, cfg Config, grid Grid) (*Report, error) {
	cfg = cfg.withDefaults()
	pts := grid.Points()
	if len(pts) == 0 {
		return nil, errors.New("tune: empty grid")
	}
	space := proc.StockConfigs()
	if cfg.Configs > len(space) {
		cfg.Configs = len(space)
	}
	jobs := harness.GridJobs(space[:cfg.Configs], nil)

	rep := &Report{Seed: cfg.Seed, Configs: cfg.Configs, Backends: cfg.Backends,
		Results: make([]Result, 0, len(pts))}
	for _, p := range pts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		secs, err := scorePoint(ctx, cfg, p, jobs)
		if err != nil {
			return nil, fmt.Errorf("tune: point %s: %w", p, err)
		}
		rep.Results = append(rep.Results, Result{Point: p, Seconds: secs, Cells: len(jobs)})
		if cfg.Logf != nil {
			cfg.Logf("tune: %s  %.3fs (%d cells)", p, secs, len(jobs))
		}
	}
	knee, err := selectKnee(rep.Results)
	if err != nil {
		return nil, err
	}
	rep.Knee, rep.KneeSeconds = knee.Point, knee.Seconds
	rep.Best = knee.Seconds
	for _, r := range rep.Results {
		if r.Seconds < rep.Best {
			rep.Best = r.Seconds
		}
	}
	return rep, nil
}

// scorePoint times Config.Repeats cold-cache studies at one point and
// returns the fastest.
func scorePoint(ctx context.Context, cfg Config, p Point, jobs []harness.Job) (float64, error) {
	best := 0.0
	for rep := 0; rep < cfg.Repeats; rep++ {
		secs, err := runOnce(ctx, cfg, p, jobs)
		if err != nil {
			return 0, err
		}
		if rep == 0 || secs < best {
			best = secs
		}
	}
	return best, nil
}

func runOnce(ctx context.Context, cfg Config, p Point, jobs []harness.Job) (float64, error) {
	servers := make([]*httptest.Server, 0, cfg.Backends)
	defer func() {
		for _, ts := range servers {
			ts.Close()
		}
	}()
	urls := make([]string, 0, cfg.Backends)
	for i := 0; i < cfg.Backends; i++ {
		ts := httptest.NewServer(service.NewServer(service.Options{
			Seed:        cfg.Seed,
			Workers:     p.Workers,
			CacheShards: p.CacheShards,
		}).Handler())
		servers = append(servers, ts)
		urls = append(urls, ts.URL)
	}
	seed := cfg.Seed
	cl, err := cluster.New(urls, cluster.Options{
		Seed:       &seed,
		BatchSize:  p.BatchSize,
		HedgeDelay: p.HedgeDelay,
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := cl.MeasureBatch(ctx, jobs, 0); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// PowerperfdFlags renders the knee's backend knobs as powerperfd flags.
func (r *Report) PowerperfdFlags() string {
	return fmt.Sprintf("-workers %d -cache-shards %d",
		resolved(r.Knee.Workers, 0), resolved(r.Knee.CacheShards, 16))
}

// FullstudyFlags renders the knee's coordinator knobs as fullstudy
// flags.
func (r *Report) FullstudyFlags() string {
	return fmt.Sprintf("-batch-size %d -hedge-delay %s",
		resolved(r.Knee.BatchSize, 61), r.Knee.HedgeDelay)
}

// Env renders the knee as environment assignments for wrapper scripts.
func (r *Report) Env() []string {
	return []string{
		fmt.Sprintf("POWERPERF_WORKERS=%d", resolved(r.Knee.Workers, 0)),
		fmt.Sprintf("POWERPERF_CACHE_SHARDS=%d", resolved(r.Knee.CacheShards, 16)),
		fmt.Sprintf("POWERPERF_BATCH_SIZE=%d", resolved(r.Knee.BatchSize, 61)),
		fmt.Sprintf("POWERPERF_HEDGE_DELAY=%s", r.Knee.HedgeDelay),
	}
}
