package monitor

import (
	"sort"
	"sync"
)

// store holds every scraped series: backend -> series key -> ring. All
// bounds are fixed at construction — ring capacity per series and a
// series-count cap per backend — so a misbehaving backend that mints
// new label values cannot grow the monitor without bound; series beyond
// the cap are counted as dropped rather than stored.
type store struct {
	mu        sync.RWMutex
	ringCap   int
	maxSeries int
	backends  map[string]*backendSeries
}

type backendSeries struct {
	rings   map[string]*Ring
	dropped int64
}

func newStore(ringCap, maxSeries int) *store {
	return &store{
		ringCap:   ringCap,
		maxSeries: maxSeries,
		backends:  make(map[string]*backendSeries),
	}
}

// push appends one sample to the backend's series, creating the ring on
// first sight unless the backend is at its series cap.
func (st *store) push(backend, key string, s Sample) {
	st.mu.Lock()
	defer st.mu.Unlock()
	bs := st.backends[backend]
	if bs == nil {
		bs = &backendSeries{rings: make(map[string]*Ring)}
		st.backends[backend] = bs
	}
	r := bs.rings[key]
	if r == nil {
		if len(bs.rings) >= st.maxSeries {
			bs.dropped++
			return
		}
		r = NewRing(st.ringCap)
		bs.rings[key] = r
	}
	r.Push(s)
}

// samples copies a series oldest-first; nil when absent.
func (st *store) samples(backend, key string) []Sample {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bs := st.backends[backend]
	if bs == nil {
		return nil
	}
	r := bs.rings[key]
	if r == nil {
		return nil
	}
	return r.Samples()
}

// tail copies the newest n samples of a series oldest-first.
func (st *store) tail(backend, key string, n int) []Sample {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bs := st.backends[backend]
	if bs == nil {
		return nil
	}
	r := bs.rings[key]
	if r == nil {
		return nil
	}
	return r.Tail(n)
}

// last returns the newest value of a series.
func (st *store) last(backend, key string) (float64, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bs := st.backends[backend]
	if bs == nil {
		return 0, false
	}
	r := bs.rings[key]
	if r == nil {
		return 0, false
	}
	s, ok := r.Last()
	return s.V, ok
}

// seriesKeys lists a backend's series in sorted order.
func (st *store) seriesKeys(backend string) []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bs := st.backends[backend]
	if bs == nil {
		return nil
	}
	keys := make([]string, 0, len(bs.rings))
	for k := range bs.rings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// droppedSeries reports how many series the cap rejected for a backend.
func (st *store) droppedSeries(backend string) int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bs := st.backends[backend]
	if bs == nil {
		return 0
	}
	return bs.dropped
}
