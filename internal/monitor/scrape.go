package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/traceanalytics"
)

// CellLatency is one slow measurement cell observed via a backend's
// span ring — the dashboard's "top-k slowest cells" row source.
type CellLatency struct {
	Benchmark string  `json:"benchmark"`
	Processor string  `json:"processor"`
	Ms        float64 `json:"ms"`
}

// backendState is the latest non-series scrape state for one backend:
// liveness, identity, and the slow-cell leaderboard. Series data lives
// in the store.
type backendState struct {
	mu         sync.Mutex
	up         bool
	scrapeOK   bool
	lastErr    string
	lastScrape time.Time
	lastDur    time.Duration
	failures   int64
	seed       int64
	build      telemetry.Build
	topCells   []CellLatency
	histPrev   map[string]histCum // histogram series key -> last sum/count
}

type histCum struct{ sum, count float64 }

// scraper polls one fleet: /healthz for liveness, /statsz for the
// typed counters, /metricsz for every Prometheus family, and
// /v1/traces for the slowest cells. Each poll pushes samples into the
// store under stable series keys; counter-vs-gauge semantics are the
// detector's concern.
type scraper struct {
	backends  []string
	hc        *http.Client
	timeout   time.Duration
	topCells  int
	userAgent string
	store     *store
	state     map[string]*backendState
	logger    *slog.Logger
	onHealth  func(backend string, healthy bool)
	sweeps    atomic.Int64

	// analytics receives every harvested raw span set for cross-backend
	// trace assembly (trace.go); always non-nil under a Monitor.
	analytics *traceanalytics.Engine
}

// traceEvery is how many sweeps pass between /v1/traces scrapes. The
// throttle is now optional: the backend streams the export
// incrementally (telemetry.WriteChromeTrace), so a trace scrape no
// longer marshals the whole span ring into one buffer and its
// per-request cost sits near the cheap endpoints'. It is kept at 8
// anyway — the slow-cell leaderboard does not need per-sweep freshness,
// so there is no reason to spend even the cheap export every sweep.
const traceEvery = 8

func newScraper(backends []string, o Options, st *store, logger *slog.Logger) *scraper {
	sc := &scraper{
		backends:  backends,
		hc:        o.HTTPClient,
		timeout:   o.Timeout,
		topCells:  o.TopCells,
		userAgent: "powerperfmon/" + Version + " " + telemetry.BuildInfo().UserAgentToken(),
		store:     st,
		state:     make(map[string]*backendState, len(backends)),
		logger:    logger,
		onHealth:  o.OnHealth,
	}
	if sc.hc == nil {
		sc.hc = &http.Client{}
	}
	for _, be := range backends {
		sc.state[be] = &backendState{histPrev: make(map[string]histCum)}
	}
	return sc
}

// scrapeAll polls every backend concurrently and returns when the sweep
// completes. One slow backend delays only its own series, not the
// sweep's siblings; the per-request timeout bounds the whole sweep.
func (sc *scraper) scrapeAll(ctx context.Context) {
	// Traces refresh on the first sweep and every traceEvery-th after.
	withTraces := sc.topCells > 0 && (sc.sweeps.Add(1)-1)%traceEvery == 0
	var wg sync.WaitGroup
	for _, be := range sc.backends {
		wg.Add(1)
		go func(be string) {
			defer wg.Done()
			sc.scrapeOne(ctx, be, withTraces)
		}(be)
	}
	wg.Wait()
}

// scrapeOne polls one backend's endpoints and records the results. The
// up series comes from /healthz alone (a draining backend answers
// /metricsz fine but must read as down); scrape_ok additionally
// requires the metric endpoints to parse.
func (sc *scraper) scrapeOne(ctx context.Context, backend string, withTraces bool) {
	bst := sc.state[backend]
	start := time.Now()

	healthErr := sc.getOK(ctx, backend, "/healthz")
	up := healthErr == nil

	var scrapeErr error
	if err := sc.scrapeStatsz(ctx, backend, bst, start); err != nil {
		scrapeErr = err
	}
	if err := sc.scrapeMetricsz(ctx, backend, bst, start); err != nil && scrapeErr == nil {
		scrapeErr = err
	}
	if withTraces {
		if err := sc.scrapeTraces(ctx, backend, bst); err != nil && scrapeErr == nil {
			scrapeErr = err
		}
	}
	dur := time.Since(start)

	upV, okV := 0.0, 0.0
	if up {
		upV = 1
	}
	if scrapeErr == nil {
		okV = 1
	}
	sc.store.push(backend, "up", Sample{T: start, V: upV})
	sc.store.push(backend, "scrape_ok", Sample{T: start, V: okV})
	sc.store.push(backend, "scrape_duration_seconds", Sample{T: start, V: dur.Seconds()})

	bst.mu.Lock()
	bst.up = up
	bst.scrapeOK = scrapeErr == nil
	bst.lastScrape = start
	bst.lastDur = dur
	bst.lastErr = ""
	if !up {
		bst.lastErr = healthErr.Error()
	} else if scrapeErr != nil {
		bst.lastErr = scrapeErr.Error()
	}
	if bst.lastErr != "" {
		bst.failures++
	}
	lastErr := bst.lastErr
	bst.mu.Unlock()

	if lastErr != "" {
		sc.logger.DebugContext(ctx, "scrape failed",
			slog.String("backend", backend), slog.String("error", lastErr))
	}
	if sc.onHealth != nil {
		sc.onHealth(backend, up)
	}
}

// get fetches one backend path with the monitor's UA and timeout.
func (sc *scraper) get(ctx context.Context, backend, path string) ([]byte, error) {
	if sc.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sc.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+path, nil)
	if err != nil {
		return nil, fmt.Errorf("monitor: build request: %w", err)
	}
	req.Header.Set("User-Agent", sc.userAgent)
	resp, err := sc.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("monitor: %s%s: %w", backend, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("monitor: %s%s: read: %w", backend, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("monitor: %s%s: HTTP %d", backend, path, resp.StatusCode)
	}
	return body, nil
}

func (sc *scraper) getOK(ctx context.Context, backend, path string) error {
	_, err := sc.get(ctx, backend, path)
	return err
}

// scrapeStatsz flattens the /statsz JSON into statsz_* series (numbers
// and booleans; nested objects join with underscores) and captures the
// backend's identity fields for the fleet snapshot.
func (sc *scraper) scrapeStatsz(ctx context.Context, backend string, bst *backendState, t time.Time) error {
	body, err := sc.get(ctx, backend, "/statsz")
	if err != nil {
		return err
	}
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		return fmt.Errorf("monitor: %s/statsz: %w", backend, err)
	}
	flat := map[string]float64{}
	flattenJSON("statsz", raw, flat)
	// Derived pressure gauge: queue fill fraction, the saturation signal
	// the threshold rules watch.
	if capd, ok := flat["statsz_queue_capacity"]; ok && capd > 0 {
		flat["statsz_queue_fill"] = flat["statsz_queue_depth"] / capd
	}
	for k, v := range flat {
		sc.store.push(backend, k, Sample{T: t, V: v})
	}

	var ident struct {
		Seed  int64           `json:"seed"`
		Build telemetry.Build `json:"build"`
	}
	_ = json.Unmarshal(body, &ident)
	bst.mu.Lock()
	bst.seed = ident.Seed
	bst.build = ident.Build
	bst.mu.Unlock()
	return nil
}

// flattenJSON walks a decoded JSON object, emitting prefix_key paths
// for every number and boolean. Arrays and strings are skipped: they
// are either identity (handled separately) or unbounded (per-shard
// lists), and the series cap should not be spent on them.
func flattenJSON(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flattenJSON(prefix+"_"+k, x[k], out)
		}
	case float64:
		out[prefix] = x
	case bool:
		if x {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

// scrapeMetricsz parses the backend's Prometheus page and pushes every
// counter and gauge sample under its exposition key. Histogram families
// contribute their _sum and _count samples plus a derived *_mean series
// — the per-scrape-window mean in seconds, computed from the cumulative
// deltas with reset handling — which is what the CI-regression rules
// watch. Buckets are skipped: at scrape cardinality they cost more than
// the 2x quantile fidelity they would add.
func (sc *scraper) scrapeMetricsz(ctx context.Context, backend string, bst *backendState, t time.Time) error {
	body, err := sc.get(ctx, backend, "/metricsz")
	if err != nil {
		return err
	}
	fams, err := telemetry.ParsePrometheus(string(body))
	if err != nil {
		return fmt.Errorf("monitor: %s/metricsz: %w", backend, err)
	}
	type sumCount struct {
		sum, count float64
		hasSum     bool
		hasCount   bool
		labels     string
	}
	for _, f := range fams {
		switch f.Type {
		case "histogram", "summary":
			series := map[string]*sumCount{}
			for _, s := range f.Samples {
				if strings.HasSuffix(s.Name, "_bucket") {
					continue
				}
				key := s.Key()
				sc.store.push(backend, key, Sample{T: t, V: s.Value})
				base := labelsSuffix(key)
				x := series[base]
				if x == nil {
					x = &sumCount{labels: base}
					series[base] = x
				}
				if strings.HasSuffix(s.Name, "_sum") {
					x.sum, x.hasSum = s.Value, true
				} else if strings.HasSuffix(s.Name, "_count") {
					x.count, x.hasCount = s.Value, true
				}
			}
			for base, x := range series {
				if !x.hasSum || !x.hasCount {
					continue
				}
				meanKey := f.Name + "_mean" + base
				prevKey := backend + "|" + meanKey
				bst.mu.Lock()
				prev, seen := bst.histPrev[prevKey]
				bst.histPrev[prevKey] = histCum{sum: x.sum, count: x.count}
				bst.mu.Unlock()
				dc := x.count - prev.count
				ds := x.sum - prev.sum
				if !seen || dc < 0 || ds < 0 { // first scrape or counter reset
					dc, ds = x.count, x.sum
				}
				if dc > 0 {
					sc.store.push(backend, meanKey, Sample{T: t, V: ds / dc})
				}
			}
		default:
			for _, s := range f.Samples {
				sc.store.push(backend, s.Key(), Sample{T: t, V: s.Value})
			}
		}
	}
	return nil
}

// labelsSuffix extracts the "{...}" tail of a series key ("" when
// unlabeled), so _sum and _count samples of one histogram series pair
// up regardless of their name suffix.
func labelsSuffix(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[i:]
	}
	return ""
}

// scrapeTraces harvests the backend's span retention in raw form
// (/v1/traces?format=spans — absolute timestamps and stable ids, the
// only shape that stitches across processes), feeds it to the trace
// assembler, and keeps the top-k slowest measurement cells (span name
// "service.cell", deduplicated by cell, ranked by duration).
func (sc *scraper) scrapeTraces(ctx context.Context, backend string, bst *backendState) error {
	body, err := sc.get(ctx, backend, "/v1/traces?format=spans")
	if err != nil {
		return err
	}
	var spans []telemetry.SpanData
	if err := json.Unmarshal(body, &spans); err != nil {
		return fmt.Errorf("monitor: %s/v1/traces: %w", backend, err)
	}
	sc.analytics.Ingest(backend, spans)
	slowest := map[string]CellLatency{}
	for _, d := range spans {
		if d.Name != "service.cell" {
			continue
		}
		cell := CellLatency{
			Benchmark: d.Attr("benchmark"),
			Processor: d.Attr("processor"),
			Ms:        float64(d.Dur) / 1e6,
		}
		k := cell.Benchmark + "|" + cell.Processor
		if prev, ok := slowest[k]; !ok || cell.Ms > prev.Ms {
			slowest[k] = cell
		}
	}
	cells := make([]CellLatency, 0, len(slowest))
	for _, c := range slowest {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Ms != cells[j].Ms {
			return cells[i].Ms > cells[j].Ms
		}
		return cells[i].Benchmark+cells[i].Processor < cells[j].Benchmark+cells[j].Processor
	})
	if len(cells) > sc.topCells {
		cells = cells[:sc.topCells]
	}
	bst.mu.Lock()
	bst.topCells = cells
	bst.mu.Unlock()
	return nil
}
