package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/profiling"
	"repro/internal/telemetry"
	"repro/internal/traceanalytics"
)

// Version identifies the monitor subsystem on the wire (User-Agent of
// every scrape).
const Version = "0.5.0"

// Options configures a Monitor. The zero value selects sane defaults.
type Options struct {
	// Interval is the scrape-and-evaluate cadence; <= 0 selects 5s.
	Interval time.Duration
	// Jitter is the maximum random extension added to each cycle so a
	// fleet of monitors never synchronizes its scrape waves; <= 0
	// selects Interval/10.
	Jitter time.Duration
	// Timeout bounds each scrape request; <= 0 selects 5s.
	Timeout time.Duration
	// RingCap bounds samples retained per series; <= 0 selects 512.
	RingCap int
	// MaxSeriesPerBackend bounds series per backend; <= 0 selects 768.
	MaxSeriesPerBackend int
	// TopCells is how many slowest cells to retain per backend from its
	// span ring; 0 selects 8, negative disables the traces scrape.
	TopCells int
	// Rules are the detector rules; nil selects DefaultRules().
	Rules []Rule
	// Retention is how long resolved alerts stay visible; <= 0 selects
	// 10m.
	Retention time.Duration
	// OnHealth, when set, observes every /healthz probe result — the
	// cluster coordinator wires this into its circuit breakers so the
	// federation loop doubles as the health prober.
	OnHealth func(backend string, healthy bool)
	// Seed seeds the jitter generator; 0 selects 1. Jitter is the one
	// intentionally random element here, but tests still deserve
	// reproducibility.
	Seed int64
	// HTTPClient overrides the scrape transport; nil selects a dedicated
	// client.
	HTTPClient *http.Client
	// ProfileEvery turns on continuous profiling: every this many
	// sweeps, one asynchronous pprof harvest (CPU window + heap) runs
	// against each backend's /debug/pprof endpoints and feeds the
	// profile_* series (see profile.go). 0 disables profiling.
	ProfileEvery int
	// ProfileSeconds is the CPU sampling window per harvest; <= 0
	// selects 1.
	ProfileSeconds int
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.Jitter <= 0 {
		o.Jitter = o.Interval / 10
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.RingCap <= 0 {
		o.RingCap = 512
	}
	if o.MaxSeriesPerBackend <= 0 {
		o.MaxSeriesPerBackend = 768
	}
	if o.TopCells == 0 {
		o.TopCells = 8
	} else if o.TopCells < 0 {
		o.TopCells = 0
	}
	if o.Retention <= 0 {
		o.Retention = 10 * time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DefaultRules is the stock rulebook, tuned to the series every
// powerperfd backend exposes. Cluster-coordinator series (breaker
// opens, failovers) evaluate only where present, so one rulebook serves
// both shapes of scrape target.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "backend_down", Series: "up", Kind: KindThreshold, Cmp: Below, Value: 1,
			For: 2, Clear: 2,
			Help: "Backend /healthz failing or unreachable.",
		},
		{
			Name: "scrape_degraded", Series: "scrape_ok", Kind: KindThreshold, Cmp: Below, Value: 1,
			For: 3, Clear: 2,
			Help: "Backend is alive but its metric endpoints fail to fetch or parse.",
		},
		{
			Name: "queue_saturated", Series: "statsz_queue_fill", Kind: KindThreshold, Cmp: Above, Value: 0.9,
			For: 3, Clear: 3,
			Help: "Measurement queue over 90% of capacity: load is outrunning the worker pool.",
		},
		{
			Name: "cache_hit_rate_collapsed", Series: "statsz_cache_hit_rate",
			Kind: KindCI, Cmp: Below, Window: 5, Baseline: 20, RelTol: 0.05,
			Help: "Cache hit rate fell below its rolling baseline confidence interval.",
		},
		{
			Name: "fill_latency_regressed", Series: "powerperfd_cell_fill_seconds_mean",
			Kind: KindCI, Cmp: Above, Window: 5, Baseline: 20, RelTol: 0.10, Robust: true,
			Help: "Uncached cell fills are slower than the rolling baseline's bootstrap CI allows — a straggling or degraded backend.",
		},
		{
			Name: "measure_latency_regressed", Series: `powerperfd_http_request_seconds_mean{endpoint="measure"}`,
			Kind: KindCI, Cmp: Above, Window: 5, Baseline: 20, RelTol: 0.10,
			Help: "Measure-endpoint latency left its rolling baseline confidence interval.",
		},
		{
			Name: "breaker_opening", Series: "powerperf_cluster_breaker_opens_total",
			Kind: KindRate, Cmp: Above, Value: 0, Window: 5,
			Help: "Coordinator circuit breakers are tripping (scraped from a coordinator's metrics page).",
		},
		{
			Name: "uptime_drift", Series: "statsz_uptime_s",
			Kind: KindTrend, Cmp: Below, Window: 12, Value: 0.5, MinR2: 0.2,
			Help: "Backend uptime trending down across scrapes: the process is crash-looping.",
		},
		{
			Name: "alloc_rate_regressed", Series: "profile_alloc_bytes_per_sec",
			Kind: KindCI, Cmp: Above, Window: 5, Baseline: 20, RelTol: 0.25, Robust: true,
			Help: "Continuous-profiling allocation rate left its rolling baseline — an allocation regression shipped (the profile diff names the functions).",
		},
		{
			Name: "error_budget_exhausted", Series: `slo_error_budget_remaining{objective="availability"}`,
			Kind: KindThreshold, Cmp: Below, Value: 0, For: 2, Clear: 2,
			Help: "The availability SLO's rolling error budget is spent (federated from the backend's /metricsz slo gauges).",
		},
		// Critical-path shift rules watch the synthetic "fleet" backend's
		// trace_stage_share series (trace.go): the assembled traces'
		// critical-path fraction per pipeline stage. Healthy studies spend
		// their critical path in kernel compute; these stages growing
		// means time is leaking into scheduling pathologies.
		{
			Name: "critical_path_steal_shift", Series: `trace_stage_share{stage="steal_redispatch"}`,
			Kind: KindCI, Cmp: Above, Window: 5, Baseline: 20, RelTol: 0.10,
			Help: "Steal/re-dispatch time is taking a growing share of assembled traces' critical paths — lease expiries are gating studies (a straggling or dying backend).",
		},
		{
			Name: "critical_path_queue_shift", Series: `trace_stage_share{stage="queue_wait"}`,
			Kind: KindCI, Cmp: Above, Window: 5, Baseline: 20, RelTol: 0.10,
			Help: "Worker-queue wait is taking a growing share of the fleet's critical paths — backends are compute-saturated.",
		},
		{
			Name: "critical_path_hedge_shift", Series: `trace_stage_share{stage="hedge_wait"}`,
			Kind: KindCI, Cmp: Above, Window: 5, Baseline: 20, RelTol: 0.10,
			Help: "Hedge-wait time is taking a growing share of the fleet's critical paths — primaries straggle often enough that duplicates gate completion.",
		},
	}
}

// Monitor is the fleet monitor: the scrape federation loop, the series
// store, and the detector, plus the HTTP and snapshot surfaces the
// dashboard, /v1/alertz, and powerperfmon render.
type Monitor struct {
	opts     Options
	backends []string
	store    *store
	scraper  *scraper
	detector *Detector
	logger   *slog.Logger
	start    time.Time

	// analytics assembles cross-backend traces from the scraper's span
	// harvests; always on (its memory is bounded).
	analytics *traceanalytics.Engine

	// fleet is the continuous profiler, nil unless Options.ProfileEvery
	// is set; profBusy serializes harvests, harvests counts completions.
	fleet    *profiling.Fleet
	profBusy atomic.Bool
	harvests atomic.Int64

	sweeps  atomic.Int64
	running atomic.Bool
}

// New builds a monitor over the given backend base URLs.
func New(backends []string, opts Options) *Monitor {
	opts = opts.withDefaults()
	bes := make([]string, 0, len(backends))
	for _, be := range backends {
		for len(be) > 0 && be[len(be)-1] == '/' {
			be = be[:len(be)-1]
		}
		if be != "" {
			bes = append(bes, be)
		}
	}
	logger := telemetry.Logger("monitor")
	st := newStore(opts.RingCap, opts.MaxSeriesPerBackend)
	rules := opts.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	m := &Monitor{
		opts:      opts,
		backends:  bes,
		store:     st,
		scraper:   newScraper(bes, opts, st, logger),
		detector:  newDetector(rules, st, logger, opts.Retention),
		analytics: traceanalytics.New(traceanalytics.Options{}),
		logger:    logger,
		start:     time.Now(),
	}
	m.scraper.analytics = m.analytics
	if opts.ProfileEvery > 0 {
		m.fleet = profiling.NewFleet(profiling.FleetOptions{
			Backends:   bes,
			Seconds:    opts.ProfileSeconds,
			Timeout:    opts.Timeout,
			HTTPClient: opts.HTTPClient,
			UserAgent:  "powerperfmon/" + Version + " " + telemetry.BuildInfo().UserAgentToken(),
		})
	}
	return m
}

// Backends returns the monitored backend URLs.
func (m *Monitor) Backends() []string { return append([]string(nil), m.backends...) }

// Detector exposes the rule engine (tests and the CLI inspect it).
func (m *Monitor) Detector() *Detector { return m.detector }

// Sweep runs one synchronous scrape-all-then-evaluate cycle. The run
// loop calls it on the jittered interval; powerperfmon -once calls it
// directly.
func (m *Monitor) Sweep(ctx context.Context) {
	m.scraper.scrapeAll(ctx)
	now := time.Now()
	m.pushTraceSeries(now)
	// Evaluate the synthetic fleet backend too: the trace_stage_share
	// series live there, and every other rule's warmup guard keeps it
	// silent where its series do not exist.
	m.detector.Evaluate(append(append([]string(nil), m.backends...), FleetBackend), now)
	m.maybeProfile(ctx, m.sweeps.Add(1))
}

// Sweeps reports completed scrape-evaluate cycles.
func (m *Monitor) Sweeps() int64 { return m.sweeps.Load() }

// Start launches the federation loop: one Sweep per jittered interval
// until ctx is done. It returns immediately; Safe to call once.
func (m *Monitor) Start(ctx context.Context) {
	if !m.running.CompareAndSwap(false, true) {
		return
	}
	rng := rand.New(rand.NewSource(m.opts.Seed))
	var rngMu sync.Mutex
	next := func() time.Duration {
		rngMu.Lock()
		defer rngMu.Unlock()
		j := time.Duration(0)
		if m.opts.Jitter > 0 {
			j = time.Duration(rng.Int63n(int64(m.opts.Jitter) + 1))
		}
		return m.opts.Interval + j
	}
	m.logger.Info("monitor started",
		slog.Int("backends", len(m.backends)),
		slog.Duration("interval", m.opts.Interval),
		slog.Int("rules", len(m.detector.rules)))
	go func() {
		t := time.NewTimer(0) // first sweep immediately
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.Sweep(ctx)
				t.Reset(next())
			case <-ctx.Done():
				m.running.Store(false)
				return
			}
		}
	}()
}

// Series returns the newest n samples of one backend series — the
// dashboard's sparkline feed.
func (m *Monitor) Series(backend, key string, n int) []Sample {
	return m.store.tail(backend, key, n)
}

// SeriesKeys lists the series the store holds for one backend.
func (m *Monitor) SeriesKeys(backend string) []string { return m.store.seriesKeys(backend) }

// BackendSnapshot is one backend's row in the fleet view.
type BackendSnapshot struct {
	URL        string          `json:"url"`
	Up         bool            `json:"up"`
	ScrapeOK   bool            `json:"scrape_ok"`
	Error      string          `json:"error,omitempty"`
	LastScrape time.Time       `json:"last_scrape"`
	ScrapeMS   float64         `json:"scrape_ms"`
	Failures   int64           `json:"scrape_failures"`
	Seed       int64           `json:"seed"`
	Build      telemetry.Build `json:"build"`
	UptimeS    float64         `json:"uptime_s"`
	HitRate    float64         `json:"cache_hit_rate"`
	Entries    float64         `json:"cache_entries"`
	QueueDepth float64         `json:"queue_depth"`
	QueueCap   float64         `json:"queue_capacity"`
	Inflight   float64         `json:"inflight_workers"`
	Requests   float64         `json:"requests_total"`
	FillMeanMS float64         `json:"fill_mean_ms"`
	TopCells   []CellLatency   `json:"top_cells,omitempty"`

	// Study store gauges, present only when the backend runs with
	// -store-dir (the /statsz "store" block flattens to statsz_store_*).
	HasStore      bool    `json:"store,omitempty"`
	StoreSegments float64 `json:"store_segments,omitempty"`
	StoreRows     float64 `json:"store_rows,omitempty"`
	StoreBytes    float64 `json:"store_bytes,omitempty"`
	StoreLastSeal float64 `json:"store_last_seal_unix,omitempty"`
	StoreDropped  float64 `json:"store_dropped_studies,omitempty"`
	StoreWriteErr float64 `json:"store_write_errors,omitempty"`

	// SLOs federates the backend's slo_* gauges (present only when the
	// backend runs its SLO engine): per-objective error budgets, burn
	// rates, and the worst burn-alert state.
	SLOs []SLOStatus `json:"slos,omitempty"`
}

// SLOStatus is one objective's federated state, read back from the
// backend's /metricsz slo_* gauges.
type SLOStatus struct {
	Objective       string  `json:"objective"`
	BudgetRemaining float64 `json:"budget_remaining"`
	Compliance      float64 `json:"compliance"`
	FastBurn        float64 `json:"fast_burn"`
	SlowBurn        float64 `json:"slow_burn"`
	// AlertState is the worst of the objective's burn rules: inactive,
	// resolved, pending, or firing.
	AlertState string `json:"alert_state"`
}

// sloStatuses reassembles per-objective SLO state from the federated
// slo_* series of one backend.
func (m *Monitor) sloStatuses(backend string) []SLOStatus {
	const budgetPrefix = `slo_error_budget_remaining{objective="`
	var out []SLOStatus
	for _, key := range m.store.seriesKeys(backend) {
		if !strings.HasPrefix(key, budgetPrefix) || !strings.HasSuffix(key, `"}`) {
			continue
		}
		obj := key[len(budgetPrefix) : len(key)-2]
		st := SLOStatus{Objective: obj, AlertState: StateInactive.String()}
		st.BudgetRemaining, _ = m.store.last(backend, key)
		st.Compliance, _ = m.store.last(backend, fmt.Sprintf(`slo_compliance{objective=%q}`, obj))
		st.FastBurn, _ = m.store.last(backend, fmt.Sprintf(`slo_burn_rate{objective=%q,window="fast"}`, obj))
		st.SlowBurn, _ = m.store.last(backend, fmt.Sprintf(`slo_burn_rate{objective=%q,window="slow"}`, obj))
		worst := 0.0
		for _, rule := range []string{"slo_fast_burn", "slo_slow_burn"} {
			if v, ok := m.store.last(backend, fmt.Sprintf(`slo_alert_state{objective=%q,rule=%q}`, obj, rule)); ok && v > worst {
				worst = v
			}
		}
		// The gauge encodes rank(state): 0 inactive, 1 resolved, 2
		// pending, 3 firing.
		switch int(worst) {
		case 1:
			st.AlertState = StateResolved.String()
		case 2:
			st.AlertState = StatePending.String()
		case 3:
			st.AlertState = StateFiring.String()
		}
		out = append(out, st)
	}
	return out
}

// Snapshot is the whole fleet view at a moment: what powerperfmon
// prints (-once emits it as JSON) and the dashboard renders.
type Snapshot struct {
	Generated time.Time         `json:"generated"`
	Build     telemetry.Build   `json:"monitor_build"`
	Sweeps    int64             `json:"sweeps"`
	Interval  time.Duration     `json:"interval_ns"`
	Backends  []BackendSnapshot `json:"backends"`
	Alerts    []Alert           `json:"alerts"`

	// Continuous-profiling digest, present only with ProfileEvery set:
	// per-backend reports plus the fleet-merged allocation delta (which
	// functions the whole fleet's newest harvest window charged).
	Profiles        []profiling.BackendReport `json:"profiles,omitempty"`
	FleetAllocDelta []profiling.Entry         `json:"fleet_alloc_delta,omitempty"`

	// Traces is the assembled-trace digest (stage shares, top critical
	// paths, RED table), present once any spans have been harvested.
	Traces *traceanalytics.Summary `json:"traces,omitempty"`
}

// Snapshot assembles the current fleet view.
func (m *Monitor) Snapshot() Snapshot {
	snap := Snapshot{
		Generated: time.Now(),
		Build:     telemetry.BuildInfo(),
		Sweeps:    m.sweeps.Load(),
		Interval:  m.opts.Interval,
		Alerts:    m.detector.Alerts(),
	}
	for _, be := range m.backends {
		bst := m.scraper.state[be]
		bst.mu.Lock()
		bs := BackendSnapshot{
			URL:        be,
			Up:         bst.up,
			ScrapeOK:   bst.scrapeOK,
			Error:      bst.lastErr,
			LastScrape: bst.lastScrape,
			ScrapeMS:   float64(bst.lastDur.Nanoseconds()) / 1e6,
			Failures:   bst.failures,
			Seed:       bst.seed,
			Build:      bst.build,
			TopCells:   append([]CellLatency(nil), bst.topCells...),
		}
		bst.mu.Unlock()
		bs.UptimeS, _ = m.store.last(be, "statsz_uptime_s")
		bs.HitRate, _ = m.store.last(be, "statsz_cache_hit_rate")
		bs.Entries, _ = m.store.last(be, "statsz_cache_entries")
		bs.QueueDepth, _ = m.store.last(be, "statsz_queue_depth")
		bs.QueueCap, _ = m.store.last(be, "statsz_queue_capacity")
		bs.Inflight, _ = m.store.last(be, "statsz_queue_inflight_workers")
		for _, k := range []string{"statsz_requests_measure", "statsz_requests_experiments", "statsz_requests_dataset"} {
			v, _ := m.store.last(be, k)
			bs.Requests += v
		}
		if v, ok := m.store.last(be, "powerperfd_cell_fill_seconds_mean"); ok {
			bs.FillMeanMS = v * 1e3
		}
		if v, ok := m.store.last(be, "statsz_store_segments"); ok {
			bs.HasStore = true
			bs.StoreSegments = v
			bs.StoreRows, _ = m.store.last(be, "statsz_store_rows")
			bs.StoreBytes, _ = m.store.last(be, "statsz_store_bytes")
			bs.StoreLastSeal, _ = m.store.last(be, "statsz_store_last_seal_unix")
			bs.StoreDropped, _ = m.store.last(be, "statsz_store_dropped_studies")
			bs.StoreWriteErr, _ = m.store.last(be, "statsz_store_write_errors")
		}
		bs.SLOs = m.sloStatuses(be)
		snap.Backends = append(snap.Backends, bs)
	}
	if m.fleet != nil {
		snap.Profiles = m.fleet.Report(5)
		snap.FleetAllocDelta = profiling.TopK(m.fleet.MergedAllocDelta(), 10)
	}
	if sum := m.analytics.Summary(5); sum.Stats.SpansSeen > 0 {
		snap.Traces = &sum
	}
	return snap
}

// AlertzHandler serves GET /v1/alertz: the alert list plus fleet
// health, JSON.
func (m *Monitor) AlertzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := m.Snapshot()
		firing := 0
		for _, a := range snap.Alerts {
			if a.State == StateFiring {
				firing++
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(struct {
			Generated time.Time       `json:"generated"`
			Build     telemetry.Build `json:"monitor_build"`
			Firing    int             `json:"firing"`
			Alerts    []Alert         `json:"alerts"`
		}{snap.Generated, snap.Build, firing, snap.Alerts})
	})
}
