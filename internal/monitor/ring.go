// Package monitor is the fleet-watching subsystem: a scrape federation
// loop that polls each backend's /metricsz, /statsz, and /healthz on a
// jittered interval, fixed-size ring buffers holding the resulting time
// series, and a detector that evaluates threshold and statistical rules
// over them — the latter reusing internal/stats, so the system flags
// its own regressions the way the paper flags measurement noise: with
// confidence intervals, not vibes. Alerts move through a
// pending→firing→resolved state machine and surface via slog,
// GET /v1/alertz, the /debug/dashboard HTML page, and the powerperfmon
// CLI.
//
// The design budget follows Diamond et al. ("What Is the Cost of Energy
// Monitoring?"): observation must be overhead-gated. Everything here is
// bounded — rings are fixed-size, series per backend are capped, and
// the scrape loop is measured by the monitored-vs-unmonitored study
// benchmark (<2% wall-time overhead, recorded in BENCH_pr5.json).
package monitor

import "time"

// Sample is one observation of one series: a value at a scrape time.
type Sample struct {
	T time.Time
	V float64
}

// Ring is a fixed-capacity time-series buffer. Once full, each push
// evicts the oldest sample, so memory per series is constant no matter
// how long the monitor runs. Not safe for concurrent use; the store
// serializes access.
type Ring struct {
	buf  []Sample
	head int // index of the next write
	n    int // live samples, <= len(buf)
}

// NewRing builds a ring holding up to capacity samples (minimum 2: a
// series you cannot delta is not a series).
func NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	return &Ring{buf: make([]Sample, capacity)}
}

// Push appends a sample, evicting the oldest when full.
func (r *Ring) Push(s Sample) {
	r.buf[r.head] = s
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Len returns the live sample count.
func (r *Ring) Len() int { return r.n }

// At returns sample i, 0 being the oldest live sample.
func (r *Ring) At(i int) Sample {
	if i < 0 || i >= r.n {
		return Sample{}
	}
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	return r.buf[(start+i)%len(r.buf)]
}

// Last returns the newest sample and whether the ring is non-empty.
func (r *Ring) Last() (Sample, bool) {
	if r.n == 0 {
		return Sample{}, false
	}
	return r.At(r.n - 1), true
}

// Samples copies the live samples oldest-first.
func (r *Ring) Samples() []Sample {
	out := make([]Sample, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Tail copies the newest n samples oldest-first (all of them when the
// ring holds fewer).
func (r *Ring) Tail(n int) []Sample {
	if n > r.n {
		n = r.n
	}
	out := make([]Sample, n)
	for i := 0; i < n; i++ {
		out[i] = r.At(r.n - n + i)
	}
	return out
}

// Values extracts just the sample values, oldest-first.
func Values(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.V
	}
	return out
}

// CounterDeltas converts cumulative counter samples into per-interval
// increases, handling counter resets (a process restart zeroes every
// counter): a drop is read as a reset, and the post-reset value counts
// as that interval's whole increase — the convention Prometheus rate()
// uses. len(result) == len(samples)-1.
func CounterDeltas(samples []Sample) []float64 {
	if len(samples) < 2 {
		return nil
	}
	out := make([]float64, len(samples)-1)
	for i := 1; i < len(samples); i++ {
		d := samples[i].V - samples[i-1].V
		if d < 0 { // reset
			d = samples[i].V
		}
		out[i-1] = d
	}
	return out
}

// Rate returns a counter's reset-corrected increase per second over the
// sampled span, or 0 when the span is degenerate.
func Rate(samples []Sample) float64 {
	if len(samples) < 2 {
		return 0
	}
	elapsed := samples[len(samples)-1].T.Sub(samples[0].T).Seconds()
	if elapsed <= 0 {
		return 0
	}
	var total float64
	for _, d := range CounterDeltas(samples) {
		total += d
	}
	return total / elapsed
}
