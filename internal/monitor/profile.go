package monitor

// Continuous-profiling federation: the monitor's sweep loop doubles as
// the fleet profiler's clock. Every ProfileEvery-th sweep kicks one
// asynchronous harvest of each backend's /debug/pprof endpoints (CPU
// window plus heap), and each completed harvest pushes three derived
// series per backend into the same store every other rule reads:
//
//	profile_cpu_busy_frac      sampled-CPU/wall over the harvest window
//	profile_alloc_bytes_per_sec allocation rate across the harvest pair
//	profile_heap_inuse_bytes   live heap at capture
//
// Harvests are jittered by the sweep cadence itself and never overlap
// (a harvest blocks on the CPU sampling window, so a slow fleet simply
// skips beats rather than stacking collectors). Allocation regressions
// surface through the stock alloc_rate_regressed CI rule — profiles
// ride the same detector state machine as every scraped series.

import (
	"context"
	"time"

	"repro/internal/profiling"
)

// maybeProfile starts one async fleet harvest when this sweep lands on
// the profiling cadence and no harvest is already in flight.
func (m *Monitor) maybeProfile(ctx context.Context, sweep int64) {
	if m.fleet == nil {
		return
	}
	if (sweep-1)%int64(m.opts.ProfileEvery) != 0 {
		return
	}
	if !m.profBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer m.profBusy.Store(false)
		m.fleet.HarvestAll(ctx)
		now := time.Now()
		for _, be := range m.backends {
			if v, ok := m.fleet.CPUBusyFrac(be); ok {
				m.store.push(be, "profile_cpu_busy_frac", Sample{T: now, V: v})
			}
			if v, ok := m.fleet.AllocRate(be); ok {
				m.store.push(be, "profile_alloc_bytes_per_sec", Sample{T: now, V: v})
			}
			if h, ok := m.fleet.Latest(be); ok {
				m.store.push(be, "profile_heap_inuse_bytes", Sample{T: now, V: float64(h.HeapInuse)})
			}
		}
		m.harvests.Add(1)
	}()
}

// ProfileFleet exposes the fleet profiler, nil when profiling is off
// (powerperfmon's profile subcommand and tests drive it directly).
func (m *Monitor) ProfileFleet() *profiling.Fleet { return m.fleet }

// Harvests reports completed fleet profile harvests.
func (m *Monitor) Harvests() int64 { return m.harvests.Load() }
