package monitor_test

import (
	"context"
	"log/slog"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/monitor"
	"repro/internal/proc"
	"repro/internal/profiling"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// BenchmarkStudyMonitored quantifies the monitoring overhead gate (<2%
// against the unmonitored path, recorded in BENCH_pr5.json): a
// 2-backend cluster study with the scrape federation loop and detector
// sweeping every 250ms throughout — 20x the production default rate, so
// the gate holds a wide margin over real deployments. (On a single-core
// host every scrape cycle comes straight out of the study's wall clock,
// so this is the conservative end of the measurement.)
//
// Set MONITOR_BENCH_CPUPROFILE / MONITOR_BENCH_MEMPROFILE to capture
// pprof profiles of a run (one benchmark at a time — the runtime allows
// a single CPU profile session).
func BenchmarkStudyMonitored(b *testing.B) {
	benchmarkStudy(b, true)
}

// BenchmarkStudyUnmonitored is the control for the overhead gate.
func BenchmarkStudyUnmonitored(b *testing.B) {
	benchmarkStudy(b, false)
}

func benchmarkStudy(b *testing.B, monitored bool) {
	// Keep the benchmark's stdout parseable: access lines and alert
	// transitions interleave with the `go test -bench` table otherwise,
	// and the CI gate parses that table with awk.
	telemetry.SetLogLevel(slog.LevelError)
	if cpu, mem := os.Getenv("MONITOR_BENCH_CPUPROFILE"), os.Getenv("MONITOR_BENCH_MEMPROFILE"); cpu != "" || mem != "" {
		stop, err := profiling.Start(cpu, mem)
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				b.Error(err)
			}
		}()
	}

	jobs := harness.GridJobs(proc.StockConfigs()[:6], nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Fresh backends per iteration: a cold cache makes the iteration
		// measure real study work, identically for both variants.
		ts0 := httptest.NewServer(service.NewServer(service.Options{Seed: 42}).Handler())
		ts1 := httptest.NewServer(service.NewServer(service.Options{Seed: 42}).Handler())
		backends := []string{ts0.URL, ts1.URL}
		cl, err := cluster.New(backends, cluster.Options{Seed: seedPtr(42)})
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		if monitored {
			mon := monitor.New(backends, monitor.Options{
				Interval: 250 * time.Millisecond,
				Jitter:   time.Millisecond,
				Timeout:  2 * time.Second,
				Seed:     7,
			})
			mon.Start(ctx)
			// Let the startup sweep (ring allocation, the first trace
			// scrape) complete outside the timed region: a production
			// monitor is long-lived, so the gate measures what it costs
			// in steady state, not what it costs to boot.
			for mon.Sweeps() == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		b.StartTimer()

		if _, err := cl.MeasureBatch(ctx, jobs, 0); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		cancel()
		ts0.Close()
		ts1.Close()
		b.StartTimer()
	}
}
