package monitor

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// RuleKind selects how a rule judges its series.
type RuleKind int

const (
	// KindThreshold compares the series' latest value to Value.
	KindThreshold RuleKind = iota
	// KindRate compares the series' reset-corrected increase per second
	// over the last Window samples to Value (counters only).
	KindRate
	// KindCI is the paper's regression test turned on the system: the
	// mean of the last Window samples must stay inside the Student-t
	// confidence interval of the preceding Baseline samples (at Level,
	// widened by RelTol); with Robust set the baseline interval is a
	// BootstrapCI of the median instead, shrugging off outlier scrapes.
	KindCI
	// KindTrend fits Linregress over the last Window samples and fires
	// on sustained drift: projected relative change across the window
	// beyond Value with fit R2 of at least MinR2.
	KindTrend
	// KindGolden compares the series' latest value to a fixed golden
	// reference (Value) within relative tolerance RelTol — drift against
	// the committed seed-42 aggregates, detected the way the paper
	// validates sensors against reference currents.
	KindGolden
)

func (k RuleKind) String() string {
	switch k {
	case KindThreshold:
		return "threshold"
	case KindRate:
		return "rate"
	case KindCI:
		return "ci"
	case KindTrend:
		return "trend"
	case KindGolden:
		return "golden"
	}
	return "unknown"
}

// Compare orients threshold-style rules.
type Compare int

const (
	// Above fires when the observed value exceeds the limit.
	Above Compare = iota
	// Below fires when the observed value undershoots the limit.
	Below
)

// Rule is one detector rule, evaluated per backend per cycle against
// one stored series.
type Rule struct {
	// Name identifies the rule in alerts, logs, and /v1/alertz.
	Name string
	// Series is the store key to evaluate (e.g. "up",
	// "statsz_cache_hit_rate", or a full exposition key like
	// `powerperfd_http_request_seconds_mean{endpoint="measure"}`).
	Series string
	Kind   RuleKind
	Cmp    Compare
	// Value is the threshold, rate limit, trend limit (relative drift
	// per window), or golden reference, per Kind.
	Value float64
	// RelTol widens the CI (KindCI) or golden band (KindGolden) by a
	// relative margin; the CI default of 0 trusts the interval as-is.
	RelTol float64
	// Window is the recent-sample count judged by the rule; defaults to
	// 5 (KindCI/KindRate) or 12 (KindTrend).
	Window int
	// Baseline is the baseline-sample count preceding the window for
	// KindCI; defaults to 20.
	Baseline int
	// Level is the confidence level for KindCI; defaults to 0.95, the
	// paper's reporting level.
	Level float64
	// Robust selects the BootstrapCI-of-median baseline for KindCI.
	Robust bool
	// MinR2 gates KindTrend on fit quality; defaults to 0.5.
	MinR2 float64
	// MinSamples suppresses evaluation until the series holds at least
	// this many samples (warmup guard); defaults per Kind.
	MinSamples int
	// For is how many consecutive breached cycles move the alert from
	// pending to firing; defaults to 2. Clear is how many consecutive
	// clean cycles move it from firing to resolved; defaults to 2.
	For, Clear int
	// Help describes the rule on the dashboard and in alert payloads.
	Help string
}

func (r Rule) withDefaults() Rule {
	if r.Window <= 0 {
		if r.Kind == KindTrend {
			r.Window = 12
		} else {
			r.Window = 5
		}
	}
	if r.Baseline <= 0 {
		r.Baseline = 20
	}
	if r.Level <= 0 || r.Level >= 1 {
		r.Level = 0.95
	}
	if r.MinR2 <= 0 {
		r.MinR2 = 0.5
	}
	if r.For <= 0 {
		r.For = 2
	}
	if r.Clear <= 0 {
		r.Clear = 2
	}
	if r.MinSamples <= 0 {
		switch r.Kind {
		case KindThreshold, KindGolden:
			r.MinSamples = 1
		case KindRate:
			r.MinSamples = 2
		case KindCI:
			r.MinSamples = r.Baseline + r.Window
		case KindTrend:
			r.MinSamples = r.Window
		}
	}
	return r
}

// AlertState is an alert's position in the lifecycle.
type AlertState int

const (
	// StateInactive: the rule is quiet (alerts in this state are not
	// reported).
	StateInactive AlertState = iota
	// StatePending: breached, but not yet For consecutive cycles.
	StatePending
	// StateFiring: breached For consecutive cycles.
	StateFiring
	// StateResolved: previously firing, now clean; retained for
	// post-mortem visibility until the retention horizon passes.
	StateResolved
)

func (s AlertState) String() string {
	switch s {
	case StateInactive:
		return "inactive"
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	case StateResolved:
		return "resolved"
	}
	return "unknown"
}

// MarshalText renders the state for JSON payloads.
func (s AlertState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the state back, so /v1/alertz consumers
// (powerperfmon, tests) can decode alerts into the same type.
func (s *AlertState) UnmarshalText(text []byte) error {
	switch string(text) {
	case "inactive":
		*s = StateInactive
	case "pending":
		*s = StatePending
	case "firing":
		*s = StateFiring
	case "resolved":
		*s = StateResolved
	default:
		return fmt.Errorf("monitor: unknown alert state %q", text)
	}
	return nil
}

// Alert is one rule's state against one backend.
type Alert struct {
	Rule    string     `json:"rule"`
	Backend string     `json:"backend"`
	Series  string     `json:"series"`
	State   AlertState `json:"state"`
	// Value is the observation that drove the latest evaluation; Reason
	// says why it breached (or last breached).
	Value  float64 `json:"value"`
	Reason string  `json:"reason"`
	// Lifecycle timestamps; zero when the state was never entered in
	// this activation.
	PendingSince  time.Time `json:"pending_since,omitempty"`
	FiringSince   time.Time `json:"firing_since,omitempty"`
	ResolvedSince time.Time `json:"resolved_since,omitempty"`

	breachStreak int
	cleanStreak  int
}

// Detector evaluates rules over the store each cycle and drives every
// (rule, backend) alert through pending→firing→resolved, logging each
// transition.
type Detector struct {
	rules     []Rule
	store     *store
	logger    *slog.Logger
	retention time.Duration

	mu     sync.Mutex
	alerts map[string]*Alert // rule|backend -> state
	evals  int64
}

func newDetector(rules []Rule, st *store, logger *slog.Logger, retention time.Duration) *Detector {
	withDefaults := make([]Rule, len(rules))
	for i, r := range rules {
		withDefaults[i] = r.withDefaults()
	}
	if retention <= 0 {
		retention = 10 * time.Minute
	}
	return &Detector{
		rules:     withDefaults,
		store:     st,
		logger:    logger,
		retention: retention,
		alerts:    make(map[string]*Alert),
	}
}

// Rules returns the detector's rules (defaults applied).
func (d *Detector) Rules() []Rule { return append([]Rule(nil), d.rules...) }

// Evaluate runs every rule against every backend once. now stamps the
// transitions so tests can drive the clock.
func (d *Detector) Evaluate(backends []string, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.evals++
	for _, be := range backends {
		for i := range d.rules {
			d.evalRule(&d.rules[i], be, now)
		}
	}
	// Retention sweep: resolved alerts age out; inactive ones vanish.
	for k, a := range d.alerts {
		if a.State == StateResolved && now.Sub(a.ResolvedSince) > d.retention {
			delete(d.alerts, k)
		}
	}
}

func (d *Detector) evalRule(r *Rule, backend string, now time.Time) {
	samples := d.store.tail(backend, r.Series, r.MinSamples)
	if len(samples) < r.MinSamples {
		return // warmup or a series this backend does not expose
	}
	breached, value, reason := judge(r, samples)
	key := r.Name + "|" + backend
	a := d.alerts[key]
	if a == nil {
		if !breached {
			return
		}
		a = &Alert{Rule: r.Name, Backend: backend, Series: r.Series}
		d.alerts[key] = a
	}
	a.Value = value
	if breached {
		a.Reason = reason
		a.breachStreak++
		a.cleanStreak = 0
		if a.State == StateInactive || a.State == StateResolved {
			a.State = StatePending
			a.PendingSince = now
			a.FiringSince, a.ResolvedSince = time.Time{}, time.Time{}
			a.breachStreak = 1
			d.logger.Info("alert pending",
				slog.String("rule", r.Name), slog.String("backend", backend),
				slog.Float64("value", value), slog.String("reason", reason))
		}
		// Not else-if: with For of 1 a first breach fires immediately.
		if a.State == StatePending && a.breachStreak >= r.For {
			a.State = StateFiring
			a.FiringSince = now
			d.logger.Warn("alert firing",
				slog.String("rule", r.Name), slog.String("backend", backend),
				slog.Float64("value", value), slog.String("reason", reason))
		}
		return
	}
	a.cleanStreak++
	a.breachStreak = 0
	switch a.State {
	case StatePending:
		// A pending alert that clears was noise, not an incident.
		a.State = StateInactive
		delete(d.alerts, key)
	case StateFiring:
		if a.cleanStreak >= r.Clear {
			a.State = StateResolved
			a.ResolvedSince = now
			d.logger.Info("alert resolved",
				slog.String("rule", r.Name), slog.String("backend", backend),
				slog.Float64("value", value))
		}
	}
}

// judge evaluates one rule over its sample window and reports whether
// it breached, the driving observation, and a human-readable reason.
func judge(r *Rule, samples []Sample) (bool, float64, string) {
	switch r.Kind {
	case KindThreshold:
		v := samples[len(samples)-1].V
		if exceeds(r.Cmp, v, r.Value) {
			return true, v, fmt.Sprintf("%s %s %g (threshold %g)", r.Series, cmpWord(r.Cmp), v, r.Value)
		}
		return false, v, ""
	case KindRate:
		w := tailN(samples, r.Window)
		v := Rate(w)
		if exceeds(r.Cmp, v, r.Value) {
			return true, v, fmt.Sprintf("%s rate %.4g/s %s %g/s", r.Series, v, cmpWord(r.Cmp), r.Value)
		}
		return false, v, ""
	case KindCI:
		return judgeCI(r, samples)
	case KindTrend:
		return judgeTrend(r, samples)
	case KindGolden:
		v := samples[len(samples)-1].V
		if r.Value == 0 {
			return false, v, ""
		}
		drift := (v - r.Value) / r.Value
		if abs(drift) > r.RelTol {
			return true, v, fmt.Sprintf("%s %.6g drifted %+.2f%% from golden %.6g (tolerance ±%.2f%%)",
				r.Series, v, drift*100, r.Value, r.RelTol*100)
		}
		return false, v, ""
	}
	return false, 0, ""
}

// judgeCI is the statistical heart: split the window into baseline and
// recent, build a confidence interval over the baseline — Student-t
// over the mean, or bootstrap over the median when Robust — and breach
// when the recent mean leaves the (RelTol-widened) interval in the
// rule's direction. This is exactly how the paper decides two
// measurements differ: non-overlapping 95% intervals, not point
// comparisons.
func judgeCI(r *Rule, samples []Sample) (bool, float64, string) {
	if len(samples) < r.Baseline+r.Window {
		return false, 0, ""
	}
	base := Values(samples[:len(samples)-r.Window])
	recent := Values(samples[len(samples)-r.Window:])
	recentMean := stats.Mean(recent)

	var ci stats.CI
	var err error
	if r.Robust {
		ci, err = stats.BootstrapCI(base, stats.Median, r.Level, 200, 42)
	} else {
		ci, err = stats.ConfidenceInterval(base, r.Level)
	}
	if err != nil {
		return false, recentMean, ""
	}
	lo := ci.Lo() - abs(ci.Mean)*r.RelTol
	hi := ci.Hi() + abs(ci.Mean)*r.RelTol
	kind := "t"
	if r.Robust {
		kind = "bootstrap"
	}
	switch r.Cmp {
	case Above:
		if recentMean > hi {
			return true, recentMean, fmt.Sprintf(
				"%s recent mean %.6g above baseline %d%% %s-CI [%.6g, %.6g] (n=%d)",
				r.Series, recentMean, int(r.Level*100), kind, lo, hi, ci.N)
		}
	case Below:
		if recentMean < lo {
			return true, recentMean, fmt.Sprintf(
				"%s recent mean %.6g below baseline %d%% %s-CI [%.6g, %.6g] (n=%d)",
				r.Series, recentMean, int(r.Level*100), kind, lo, hi, ci.N)
		}
	}
	return false, recentMean, ""
}

// judgeTrend fits a least-squares line through the window (x in
// seconds from the window start) and breaches on sustained relative
// drift: |slope * span| / |mean| beyond the limit, with enough R2 that
// the drift is a trend rather than noise.
func judgeTrend(r *Rule, samples []Sample) (bool, float64, string) {
	w := tailN(samples, r.Window)
	if len(w) < 2 {
		return false, 0, ""
	}
	xs := make([]float64, len(w))
	ys := make([]float64, len(w))
	for i, s := range w {
		xs[i] = s.T.Sub(w[0].T).Seconds()
		ys[i] = s.V
	}
	fit, err := stats.Linregress(xs, ys)
	if err != nil {
		return false, ys[len(ys)-1], ""
	}
	mean := stats.Mean(ys)
	span := xs[len(xs)-1]
	if mean == 0 || span <= 0 {
		return false, ys[len(ys)-1], ""
	}
	drift := fit.Slope * span / abs(mean)
	directional := drift
	if r.Cmp == Below {
		directional = -drift
	}
	if directional > r.Value && fit.R2 >= r.MinR2 {
		return true, drift, fmt.Sprintf(
			"%s drifting %+.2f%% per %ds window (R2 %.2f, limit %.2f%%)",
			r.Series, drift*100, int(span), fit.R2, r.Value*100)
	}
	return false, drift, ""
}

func tailN(samples []Sample, n int) []Sample {
	if len(samples) > n {
		return samples[len(samples)-n:]
	}
	return samples
}

func exceeds(cmp Compare, v, limit float64) bool {
	if cmp == Below {
		return v < limit
	}
	return v > limit
}

func cmpWord(cmp Compare) string {
	if cmp == Below {
		return "below"
	}
	return "above"
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Alerts snapshots every live alert (pending, firing, or resolved),
// firing first, then pending, then resolved, each group sorted by rule
// then backend.
func (d *Detector) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Alert, 0, len(d.alerts))
	for _, a := range d.alerts {
		if a.State == StateInactive {
			continue
		}
		out = append(out, *a)
	}
	rank := func(s AlertState) int {
		switch s {
		case StateFiring:
			return 0
		case StatePending:
			return 1
		default:
			return 2
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if ri, rj := rank(out[i].State), rank(out[j].State); ri != rj {
			return ri < rj
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Backend < out[j].Backend
	})
	return out
}

// FiringCount returns how many alerts are currently firing.
func (d *Detector) FiringCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, a := range d.alerts {
		if a.State == StateFiring {
			n++
		}
	}
	return n
}
