package monitor

import (
	"reflect"
	"testing"
	"time"
)

func ts(sec int) time.Time { return time.Unix(int64(sec), 0) }

func pushSeq(r *Ring, vals ...float64) {
	for i, v := range vals {
		r.Push(Sample{T: ts(i), V: v})
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(3)
	pushSeq(r, 1, 2, 3, 4, 5)
	if r.Len() != 3 {
		t.Fatalf("Len=%d, want 3", r.Len())
	}
	got := Values(r.Samples())
	if want := []float64{3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Samples=%v, want %v", got, want)
	}
	if last, ok := r.Last(); !ok || last.V != 5 {
		t.Fatalf("Last=%v,%v, want 5,true", last.V, ok)
	}
	if got := Values(r.Tail(2)); !reflect.DeepEqual(got, []float64{4, 5}) {
		t.Fatalf("Tail(2)=%v, want [4 5]", got)
	}
	if got := Values(r.Tail(10)); !reflect.DeepEqual(got, []float64{3, 4, 5}) {
		t.Fatalf("Tail(10)=%v, want all live samples", got)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0) // a series you cannot delta is not a series
	pushSeq(r, 1, 2, 3)
	if got := Values(r.Samples()); !reflect.DeepEqual(got, []float64{2, 3}) {
		t.Fatalf("Samples=%v, want [2 3]", got)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(4)
	if _, ok := r.Last(); ok {
		t.Fatal("Last on empty ring reported ok")
	}
	if got := r.Samples(); len(got) != 0 {
		t.Fatalf("Samples on empty ring = %v", got)
	}
	if s := r.At(0); s != (Sample{}) {
		t.Fatalf("At(0) on empty ring = %v", s)
	}
}

func TestCounterDeltasHandlesReset(t *testing.T) {
	samples := []Sample{
		{T: ts(0), V: 10}, {T: ts(1), V: 15}, {T: ts(2), V: 3}, {T: ts(3), V: 7},
	}
	got := CounterDeltas(samples)
	// The drop 15->3 is a process restart: the post-reset value 3 counts
	// as that interval's whole increase.
	if want := []float64{5, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("CounterDeltas=%v, want %v", got, want)
	}
}

func TestRate(t *testing.T) {
	samples := []Sample{{T: ts(0), V: 0}, {T: ts(10), V: 30}}
	if got := Rate(samples); got != 3 {
		t.Fatalf("Rate=%v, want 3/s", got)
	}
	if got := Rate(samples[:1]); got != 0 {
		t.Fatalf("Rate of one sample = %v, want 0", got)
	}
	same := []Sample{{T: ts(5), V: 1}, {T: ts(5), V: 2}}
	if got := Rate(same); got != 0 {
		t.Fatalf("Rate over zero span = %v, want 0", got)
	}
}

func TestStoreSeriesCap(t *testing.T) {
	st := newStore(4, 2)
	st.push("be", "a", Sample{T: ts(0), V: 1})
	st.push("be", "b", Sample{T: ts(0), V: 2})
	st.push("be", "c", Sample{T: ts(0), V: 3}) // over the cap: dropped
	st.push("be", "a", Sample{T: ts(1), V: 4}) // existing series still grows
	if keys := st.seriesKeys("be"); !reflect.DeepEqual(keys, []string{"a", "b"}) {
		t.Fatalf("seriesKeys=%v, want [a b]", keys)
	}
	if n := st.droppedSeries("be"); n != 1 {
		t.Fatalf("droppedSeries=%d, want 1", n)
	}
	if v, ok := st.last("be", "a"); !ok || v != 4 {
		t.Fatalf("last(a)=%v,%v, want 4,true", v, ok)
	}
	if got := st.samples("be", "c"); got != nil {
		t.Fatalf("samples(c)=%v, want nil", got)
	}
	if got := st.tail("missing", "a", 3); got != nil {
		t.Fatalf("tail on unknown backend = %v, want nil", got)
	}
}
