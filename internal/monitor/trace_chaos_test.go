package monitor_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaoshttp"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/monitor"
	"repro/internal/proc"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/traceanalytics"
)

// TestCriticalPathUnderChaos is the PR's acceptance scenario: a
// scheduled (work-stealing) seed-42 study over three backends — one a
// 10x straggler, one killed mid-run — with the fleet monitor's trace
// analytics armed throughout. The monitor must assemble complete
// cross-backend waterfalls from the per-process span harvests, the
// critical path must attribute nonzero wall time to the steal
// re-dispatch that absorbed the death, per-stage self-times must sum
// to each trace's wall time within 1%, and the study's CSVs must stay
// byte-identical to a local serial run — observation and chaos both
// invisible under the determinism contract.
func TestCriticalPathUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos scenario; skipped in -short")
	}

	// Backend 0: the straggler. Every cache fill sleeps ~10x a typical
	// fill, so the work-stealing division of labor shifts around it.
	hooks0 := &service.Hooks{BeforeMeasure: func(int64, string, string) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}}
	srv0 := service.NewServer(service.Options{Seed: 42, Hooks: hooks0})
	defer srv0.Drain()
	ts0 := httptest.NewServer(srv0.Handler())
	defer ts0.Close()

	// Backend 1: healthy.
	srv1 := service.NewServer(service.Options{Seed: 42})
	defer srv1.Drain()
	ts1 := httptest.NewServer(srv1.Handler())
	defer ts1.Close()

	// Backend 2: the victim, killed mid-study after its 30th cache fill.
	// The scheduler reaches it through a chaos proxy (so the kill severs
	// the scheduler's streams) while the monitor scrapes the backend
	// directly (so the victim's span retention stays harvestable, the
	// way a sidecar monitor outlives a torn-down route).
	var proxy2 *chaoshttp.Proxy
	var pts2 *httptest.Server
	var victimFills atomic.Int64
	hooks2 := &service.Hooks{BeforeMeasure: func(int64, string, string) error {
		if victimFills.Add(1) == 30 {
			proxy2.Kill()
			pts2.CloseClientConnections()
		}
		return nil
	}}
	srv2 := service.NewServer(service.Options{Seed: 42, Hooks: hooks2})
	defer srv2.Drain()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	proxy2 = chaoshttp.New(ts2.URL, chaoshttp.Options{Seed: 2})
	pts2 = httptest.NewServer(proxy2)
	defer pts2.Close()

	// The monitor watches all three backends directly, analytics armed
	// and sweeping (trace harvests included, on the sweep throttle)
	// while the study runs.
	mon := monitor.New([]string{ts0.URL, ts1.URL, ts2.URL}, monitor.Options{
		Interval: 25 * time.Millisecond,
		Jitter:   time.Millisecond,
		Timeout:  2 * time.Second,
		Seed:     7,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mon.Start(ctx)

	sched, err := cluster.NewScheduler([]string{ts0.URL, ts1.URL, pts2.URL}, cluster.SchedulerOptions{
		Seed:             seedPtr(42),
		LeaseCells:       8,
		LeaseExpiry:      150 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		MaxLeaseFailures: 1000,
		Tracer:           telemetry.NewTracer(0),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Local serial run at the same seed: the byte-identity oracle.
	h, err := harness.New(42)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := h.Reference()
	if err != nil {
		t.Fatal(err)
	}
	cps := proc.StockConfigs()[:6]
	var wantM, gotM bytes.Buffer
	if err := experiments.StreamMeasurementsCSVFrom(ctx, h, ref, cps, &wantM, 0); err != nil {
		t.Fatal(err)
	}
	if err := experiments.StreamMeasurementsCSVFrom(ctx, sched, ref, cps, &gotM, 0); err != nil {
		t.Fatalf("scheduled study failed under chaos: %v", err)
	}
	if !bytes.Equal(gotM.Bytes(), wantM.Bytes()) {
		t.Errorf("measurements.csv differs with analytics armed (%d vs %d bytes)",
			gotM.Len(), wantM.Len())
	}
	if !proxy2.Dead() {
		t.Fatalf("victim was never killed (fills=%d)", victimFills.Load())
	}
	st := sched.Stats()
	if st.Steals+st.Redispatches == 0 {
		t.Fatalf("victim death produced no steals or re-dispatches; stats %+v", st)
	}

	// Assemble: force one full harvest of every backend's retention,
	// then stitch in the coordinator's own spans — the scheduler.lease
	// spans that join the backend fragments into one waterfall.
	mon.HarvestTraces(ctx)
	if n := mon.IngestSpans("coordinator", sched.Tracer().Snapshot()); n == 0 {
		t.Fatal("coordinator contributed no spans")
	}
	eng := mon.TraceAnalytics()

	traces := eng.Search(traceanalytics.Query{Op: "scheduler.MeasureBatch", Limit: 10})
	if len(traces) == 0 {
		t.Fatalf("no scheduled-study traces assembled; stats %+v", eng.Stats())
	}

	// Every assembled study trace must satisfy the partition invariant:
	// per-stage self-times sum to the trace's wall time within 1%.
	var best *traceanalytics.Trace
	for _, tr := range traces {
		var sum float64
		stageMS := map[string]float64{}
		for _, sh := range tr.Stages {
			sum += sh.MS
			stageMS[sh.Stage] = sh.MS
		}
		if math.Abs(sum-tr.WallMS) > tr.WallMS*0.01 {
			t.Errorf("trace %s: stage self-times sum %.3fms, wall %.3fms (>1%% off)",
				tr.ID, sum, tr.WallMS)
		}
		if best == nil && stageMS[traceanalytics.StageSteal] > 0 {
			best = tr
		}
	}
	if best == nil {
		t.Fatalf("no study trace attributes critical-path time to %s; traces: %d, sched stats %+v",
			traceanalytics.StageSteal, len(traces), st)
	}

	// The steal trace is a complete cross-process waterfall: the
	// coordinator's spans plus at least one scraped backend's.
	if len(best.Sources) < 2 {
		t.Fatalf("steal trace has sources %v, want coordinator + backend(s)", best.Sources)
	}
	hasCoord := false
	for _, s := range best.Sources {
		if s == "coordinator" {
			hasCoord = true
		}
	}
	if !hasCoord {
		t.Fatalf("steal trace sources %v missing the coordinator", best.Sources)
	}
	if best.Seed != "42" {
		t.Errorf("steal trace seed = %q, want 42", best.Seed)
	}
	var onCrit int
	for i := range best.Spans {
		if best.Spans[i].OnCritical {
			onCrit++
		}
	}
	if onCrit == 0 || len(best.Critical) == 0 {
		t.Fatalf("steal trace has no critical path (spans=%d segments=%d)", onCrit, len(best.Critical))
	}

	// The fleet surface: a sweep publishes stage-share series under the
	// synthetic fleet backend and the snapshot carries the digest.
	mon.Sweep(ctx)
	snap := mon.Snapshot()
	if snap.Traces == nil || snap.Traces.Stats.Traces == 0 {
		t.Fatal("snapshot carries no trace analytics digest")
	}
	if len(snap.Traces.StageShares) == 0 || len(snap.Traces.TopCritical) == 0 {
		t.Fatalf("snapshot digest incomplete: %+v", snap.Traces)
	}
	series := mon.Series(monitor.FleetBackend, `trace_stage_share{stage="steal_redispatch"}`, 10)
	if len(series) == 0 {
		t.Fatal("fleet steal_redispatch share series never published")
	}

	// /v1/traceview serves the waterfall end-to-end.
	tv := httptest.NewServer(mon.TraceviewHandler())
	defer tv.Close()
	var one struct {
		Trace *traceanalytics.Trace `json:"trace"`
	}
	if err := json.Unmarshal(getBody(t, tv.URL+"/?trace="+best.ID), &one); err != nil {
		t.Fatalf("traceview waterfall unparseable: %v", err)
	}
	if one.Trace == nil || len(one.Trace.Spans) == 0 || len(one.Trace.Critical) == 0 {
		t.Fatalf("traceview returned an empty waterfall: %+v", one.Trace)
	}
	var list struct {
		Traces []traceanalytics.Digest `json:"traces"`
	}
	if err := json.Unmarshal(getBody(t, tv.URL+"/?op=scheduler.MeasureBatch&seed=42"), &list); err != nil {
		t.Fatalf("traceview search unparseable: %v", err)
	}
	if len(list.Traces) == 0 {
		t.Fatal("traceview search found no scheduled-study traces")
	}
}
