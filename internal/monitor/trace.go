package monitor

// Fleet trace analytics surface: the harvest plumbing that feeds the
// traceanalytics engine, the synthetic "fleet" series the detector
// watches for critical-path shifts, and the /v1/traceview endpoint.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/traceanalytics"
)

// FleetBackend is the synthetic backend name carrying fleet-derived
// series (trace_stage_share and trace intake gauges) in the store and
// in alerts from the critical-path rules.
const FleetBackend = "fleet"

// TraceAnalytics exposes the trace-assembly engine (the CLI and tests
// query it directly).
func (m *Monitor) TraceAnalytics() *traceanalytics.Engine { return m.analytics }

// HarvestTraces forces one traces scrape of every backend right now,
// bypassing the sweep counter's 1/8 throttle — `powerperfmon trace`
// and tests use it to pull a fresh span harvest on demand.
func (m *Monitor) HarvestTraces(ctx context.Context) {
	var wg sync.WaitGroup
	for _, be := range m.backends {
		wg.Add(1)
		go func(be string) {
			defer wg.Done()
			_ = m.scraper.scrapeTraces(ctx, be, m.scraper.state[be])
		}(be)
	}
	wg.Wait()
}

// IngestSpans feeds spans from a non-scraped process — a coordinator's
// own tracer, whose scheduler.lease spans stitch the backend fragments
// together — into the assembler under the given source name. Returns
// how many spans were new.
func (m *Monitor) IngestSpans(source string, spans []telemetry.SpanData) int {
	return m.analytics.Ingest(source, spans)
}

// pushTraceSeries publishes the assembler's fleet view into the series
// store under the synthetic fleet backend, one gauge per pipeline
// stage plus intake counters, so critical-path shifts run through the
// stock detector exactly like any scraped series.
func (m *Monitor) pushTraceSeries(now time.Time) {
	shares := m.analytics.StageShares(0)
	for _, stage := range traceanalytics.Stages() {
		key := fmt.Sprintf("trace_stage_share{stage=%q}", stage)
		m.store.push(FleetBackend, key, Sample{T: now, V: shares[stage]})
	}
	st := m.analytics.Stats()
	m.store.push(FleetBackend, "trace_assembled_traces", Sample{T: now, V: float64(st.Traces)})
	m.store.push(FleetBackend, "trace_spans_held", Sample{T: now, V: float64(st.SpansHeld)})
}

// traceviewResponse is the GET /v1/traceview payload: the fleet
// summary plus search results, or one full waterfall with ?trace=.
type traceviewResponse struct {
	Generated time.Time                 `json:"generated"`
	Summary   *traceanalytics.Summary   `json:"summary,omitempty"`
	Traces    []traceanalytics.Digest   `json:"traces,omitempty"`
	Trace     *traceanalytics.Trace     `json:"trace,omitempty"`
	Flame     *traceanalytics.FlameNode `json:"flame,omitempty"`
}

// TraceviewHandler serves GET /v1/traceview:
//
//	(no params)          fleet summary: stage shares, top critical paths, RED table
//	?trace=<hex id>      one assembled trace: full waterfall + critical path
//	?seed=N              traces of studies run at seed N
//	?backend=URL         traces a given backend contributed spans to
//	?op=NAME             traces containing a span named NAME
//	?min_ms=X            traces at least X ms of wall time
//	?limit=N             result cap (default 20)
//	?flame=1             include the fleet-merged flame hierarchy
func (m *Monitor) TraceviewHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		resp := traceviewResponse{Generated: time.Now()}
		if tv := q.Get("trace"); tv != "" {
			id, err := telemetry.ParseID(tv)
			if err != nil {
				http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad trace id: "+err.Error()), http.StatusBadRequest)
				return
			}
			tr := m.analytics.Trace(telemetry.TraceID(id))
			if tr == nil {
				http.Error(w, fmt.Sprintf(`{"error":%q}`, "trace not assembled: "+tv), http.StatusNotFound)
				return
			}
			resp.Trace = tr
			writeTraceview(w, &resp)
			return
		}
		query := traceanalytics.Query{
			Seed:    q.Get("seed"),
			Backend: q.Get("backend"),
			Op:      q.Get("op"),
		}
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad min_ms: "+err.Error()), http.StatusBadRequest)
				return
			}
			query.MinDur = time.Duration(ms * 1e6)
		}
		if v := q.Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				query.Limit = n
			}
		}
		filtered := query.Seed != "" || query.Backend != "" || query.Op != "" ||
			query.MinDur > 0 || query.Limit > 0
		if !filtered {
			sum := m.analytics.Summary(5)
			resp.Summary = &sum
		}
		for _, tr := range m.analytics.Search(query) {
			resp.Traces = append(resp.Traces, tr.Digest())
		}
		if q.Get("flame") == "1" {
			resp.Flame = m.analytics.Flame()
		}
		writeTraceview(w, &resp)
	})
}

func writeTraceview(w http.ResponseWriter, resp *traceviewResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(resp)
}
