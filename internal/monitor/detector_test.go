package monitor

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// seedSeries pushes vals into one series at 1s spacing.
func seedSeries(st *store, backend, key string, vals ...float64) {
	for i, v := range vals {
		st.push(backend, key, Sample{T: ts(i), V: v})
	}
}

func newTestDetector(st *store, rules ...Rule) *Detector {
	return newDetector(rules, st, telemetry.Logger("monitor-test"), time.Minute)
}

const be = "http://backend-a"

func TestThresholdLifecycle(t *testing.T) {
	st := newStore(16, 32)
	rule := Rule{Name: "backend_down", Series: "up", Kind: KindThreshold, Cmp: Below, Value: 1, For: 2, Clear: 2}
	d := newTestDetector(st, rule)

	// Healthy: no alert at all.
	seedSeries(st, be, "up", 1)
	d.Evaluate([]string{be}, ts(0))
	if got := d.Alerts(); len(got) != 0 {
		t.Fatalf("healthy backend raised %v", got)
	}

	// First breach: pending, not yet firing.
	st.push(be, "up", Sample{T: ts(1), V: 0})
	d.Evaluate([]string{be}, ts(1))
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0].State != StatePending {
		t.Fatalf("after one breach: %+v, want one pending alert", alerts)
	}
	if alerts[0].PendingSince != ts(1) {
		t.Fatalf("PendingSince=%v, want %v", alerts[0].PendingSince, ts(1))
	}

	// Second consecutive breach: firing.
	st.push(be, "up", Sample{T: ts(2), V: 0})
	d.Evaluate([]string{be}, ts(2))
	alerts = d.Alerts()
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("after For breaches: %+v, want firing", alerts)
	}
	if d.FiringCount() != 1 {
		t.Fatalf("FiringCount=%d, want 1", d.FiringCount())
	}
	if !alerts[0].PendingSince.Before(alerts[0].FiringSince) {
		t.Fatalf("lifecycle out of order: pending %v !< firing %v",
			alerts[0].PendingSince, alerts[0].FiringSince)
	}

	// One clean cycle is not enough to resolve.
	st.push(be, "up", Sample{T: ts(3), V: 1})
	d.Evaluate([]string{be}, ts(3))
	if got := d.Alerts(); got[0].State != StateFiring {
		t.Fatalf("after one clean cycle: %v, want still firing", got[0].State)
	}

	// Second clean cycle: resolved, timestamps strictly ordered.
	st.push(be, "up", Sample{T: ts(4), V: 1})
	d.Evaluate([]string{be}, ts(4))
	alerts = d.Alerts()
	if len(alerts) != 1 || alerts[0].State != StateResolved {
		t.Fatalf("after Clear clean cycles: %+v, want resolved", alerts)
	}
	a := alerts[0]
	if !(a.PendingSince.Before(a.FiringSince) && a.FiringSince.Before(a.ResolvedSince)) {
		t.Fatalf("lifecycle timestamps out of order: %v %v %v",
			a.PendingSince, a.FiringSince, a.ResolvedSince)
	}

	// Retention: the resolved alert ages out.
	d.Evaluate([]string{be}, ts(4).Add(2*time.Minute))
	if got := d.Alerts(); len(got) != 0 {
		t.Fatalf("resolved alert survived retention: %+v", got)
	}
}

func TestPendingThatClearsIsNoise(t *testing.T) {
	st := newStore(16, 32)
	d := newTestDetector(st, Rule{Name: "down", Series: "up", Kind: KindThreshold, Cmp: Below, Value: 1, For: 3})

	st.push(be, "up", Sample{T: ts(0), V: 0})
	d.Evaluate([]string{be}, ts(0))
	if got := d.Alerts(); len(got) != 1 || got[0].State != StatePending {
		t.Fatalf("want pending, got %+v", got)
	}
	st.push(be, "up", Sample{T: ts(1), V: 1})
	d.Evaluate([]string{be}, ts(1))
	if got := d.Alerts(); len(got) != 0 {
		t.Fatalf("pending that cleared should vanish, got %+v", got)
	}
}

func TestRateRule(t *testing.T) {
	st := newStore(16, 32)
	d := newTestDetector(st, Rule{Name: "breaker_opening", Series: "opens", Kind: KindRate, Cmp: Above, Value: 0, Window: 5, For: 1})

	seedSeries(st, be, "opens", 3, 3, 3)
	d.Evaluate([]string{be}, ts(2))
	if got := d.Alerts(); len(got) != 0 {
		t.Fatalf("flat counter raised %+v", got)
	}
	st.push(be, "opens", Sample{T: ts(3), V: 5})
	d.Evaluate([]string{be}, ts(3))
	got := d.Alerts()
	if len(got) != 1 || !strings.Contains(got[0].Reason, "rate") {
		t.Fatalf("rising counter: %+v, want one rate alert", got)
	}
}

func TestCIRuleDetectsRegression(t *testing.T) {
	st := newStore(64, 32)
	rule := Rule{
		Name: "latency_regressed", Series: "lat", Kind: KindCI, Cmp: Above,
		Window: 5, Baseline: 20, RelTol: 0.05, For: 1,
	}
	d := newTestDetector(st, rule)

	// Stable baseline with mild alternation, then a 3x step: the recent
	// mean leaves the Student-t interval decisively.
	var vals []float64
	for i := 0; i < 20; i++ {
		vals = append(vals, 0.100+0.002*float64(i%5))
	}
	for i := 0; i < 5; i++ {
		vals = append(vals, 0.300)
	}
	seedSeries(st, be, "lat", vals...)
	d.Evaluate([]string{be}, ts(len(vals)))
	got := d.Alerts()
	if len(got) != 1 || got[0].State != StateFiring {
		t.Fatalf("3x latency step: %+v, want an immediately-firing CI alert (For=1)", got)
	}
	if !strings.Contains(got[0].Reason, "t-CI") {
		t.Fatalf("Reason=%q, want a t-CI explanation", got[0].Reason)
	}

	// The same shape without the step stays quiet.
	st2 := newStore(64, 32)
	d2 := newTestDetector(st2, rule)
	var flat []float64
	for i := 0; i < 25; i++ {
		flat = append(flat, 0.100+0.002*float64(i%5))
	}
	seedSeries(st2, be, "lat", flat...)
	d2.Evaluate([]string{be}, ts(len(flat)))
	if got := d2.Alerts(); len(got) != 0 {
		t.Fatalf("stable series raised %+v", got)
	}
}

func TestCIRuleRobustVariantShrugsOffOutlier(t *testing.T) {
	// One wild outlier in the baseline blows up a t-interval's width but
	// barely moves a bootstrap-of-median interval: the robust rule still
	// catches the regression.
	var vals []float64
	for i := 0; i < 19; i++ {
		vals = append(vals, 0.100+0.001*float64(i%4))
	}
	vals = append(vals, 5.0) // the outlier scrape
	for i := 0; i < 5; i++ {
		vals = append(vals, 0.200)
	}
	st := newStore(64, 32)
	d := newTestDetector(st, Rule{
		Name: "robust", Series: "lat", Kind: KindCI, Cmp: Above,
		Window: 5, Baseline: 20, RelTol: 0.10, Robust: true, For: 1,
	})
	seedSeries(st, be, "lat", vals...)
	d.Evaluate([]string{be}, ts(len(vals)))
	got := d.Alerts()
	if len(got) != 1 {
		t.Fatalf("robust CI missed the regression past an outlier: %+v", got)
	}
	if !strings.Contains(got[0].Reason, "bootstrap") {
		t.Fatalf("Reason=%q, want a bootstrap-CI explanation", got[0].Reason)
	}
}

func TestTrendRule(t *testing.T) {
	st := newStore(64, 32)
	d := newTestDetector(st, Rule{
		Name: "drifting_up", Series: "v", Kind: KindTrend, Cmp: Above,
		Window: 12, Value: 0.10, MinR2: 0.5, For: 1,
	})
	// Clean linear climb: 20% across the window with near-perfect fit.
	var vals []float64
	for i := 0; i < 12; i++ {
		vals = append(vals, 1.0+0.02*float64(i))
	}
	seedSeries(st, be, "v", vals...)
	d.Evaluate([]string{be}, ts(12))
	if got := d.Alerts(); len(got) != 1 {
		t.Fatalf("linear drift: %+v, want one trend alert", got)
	}

	// Pure noise with no slope stays quiet (R2 gate).
	st2 := newStore(64, 32)
	d2 := newTestDetector(st2, Rule{
		Name: "drifting_up", Series: "v", Kind: KindTrend, Cmp: Above,
		Window: 12, Value: 0.10, MinR2: 0.5, For: 1,
	})
	noise := []float64{1, 1.3, 0.8, 1.1, 0.9, 1.2, 1.0, 0.7, 1.3, 1.0, 0.9, 1.1}
	seedSeries(st2, be, "v", noise...)
	d2.Evaluate([]string{be}, ts(12))
	if got := d2.Alerts(); len(got) != 0 {
		t.Fatalf("noise raised a trend alert: %+v", got)
	}
}

func TestGoldenRule(t *testing.T) {
	st := newStore(16, 32)
	d := newTestDetector(st, Rule{
		Name: "power_drift", Series: "pkg_watts", Kind: KindGolden,
		Value: 42.0, RelTol: 0.02, For: 1,
	})
	st.push(be, "pkg_watts", Sample{T: ts(0), V: 42.5})
	d.Evaluate([]string{be}, ts(0))
	if got := d.Alerts(); len(got) != 0 {
		t.Fatalf("within tolerance raised %+v", got)
	}
	st.push(be, "pkg_watts", Sample{T: ts(1), V: 44.0})
	d.Evaluate([]string{be}, ts(1))
	got := d.Alerts()
	if len(got) != 1 || !strings.Contains(got[0].Reason, "golden") {
		t.Fatalf("4.8%% golden drift: %+v, want one alert", got)
	}
}

func TestWarmupSuppression(t *testing.T) {
	st := newStore(64, 32)
	d := newTestDetector(st, Rule{
		Name: "ci", Series: "lat", Kind: KindCI, Cmp: Above, Window: 5, Baseline: 20, For: 1,
	})
	// 10 samples is under Baseline+Window: the rule must stay silent no
	// matter how wild the values are.
	seedSeries(st, be, "lat", 1, 99, 1, 99, 1, 99, 1, 99, 1, 99)
	d.Evaluate([]string{be}, ts(10))
	if got := d.Alerts(); len(got) != 0 {
		t.Fatalf("warmup window raised %+v", got)
	}
}

func TestAlertsOrdering(t *testing.T) {
	st := newStore(16, 32)
	d := newTestDetector(st,
		Rule{Name: "a_down", Series: "up", Kind: KindThreshold, Cmp: Below, Value: 1, For: 1},
		Rule{Name: "b_slow", Series: "lat", Kind: KindThreshold, Cmp: Above, Value: 1, For: 5},
	)
	be2 := "http://backend-b"
	st.push(be, "up", Sample{T: ts(0), V: 0})
	st.push(be2, "lat", Sample{T: ts(0), V: 2})
	d.Evaluate([]string{be, be2}, ts(0))
	got := d.Alerts()
	if len(got) != 2 {
		t.Fatalf("want 2 alerts, got %+v", got)
	}
	// Firing ranks before pending regardless of rule name.
	if got[0].State != StateFiring || got[0].Rule != "a_down" {
		t.Fatalf("first alert %+v, want firing a_down", got[0])
	}
	if got[1].State != StatePending || got[1].Rule != "b_slow" {
		t.Fatalf("second alert %+v, want pending b_slow", got[1])
	}
}
