package monitor

// PushDetector runs the detector state machine over series pushed by
// the caller instead of scraped from a fleet — the in-process face of
// the same alerting brain. The SLO engine uses it to walk burn-rate
// alerts through inactive→pending→firing→resolved with exactly the
// lifecycle, streak, and retention semantics operators already know
// from /v1/alertz, rather than growing a second, subtly different
// state machine.

import (
	"time"

	"repro/internal/telemetry"
)

// PushDetector is a detector over a private push-fed series store.
type PushDetector struct {
	st  *store
	det *Detector
}

// NewPushDetector builds a detector for the given rules over an
// internal store. ringCap bounds samples retained per series (<=0
// selects 256); retention is how long resolved alerts linger (<=0
// selects the detector default). subsystem names the logger.
func NewPushDetector(subsystem string, rules []Rule, ringCap int, retention time.Duration) *PushDetector {
	if ringCap <= 0 {
		ringCap = 256
	}
	st := newStore(ringCap, 64)
	return &PushDetector{
		st:  st,
		det: newDetector(rules, st, telemetry.Logger(subsystem), retention),
	}
}

// Push appends one sample to target's series.
func (p *PushDetector) Push(target, series string, t time.Time, v float64) {
	p.st.push(target, series, Sample{T: t, V: v})
}

// Evaluate runs every rule against every target once, stamping
// transitions with now.
func (p *PushDetector) Evaluate(targets []string, now time.Time) {
	p.det.Evaluate(targets, now)
}

// Alerts snapshots live alerts, firing first (see Detector.Alerts).
func (p *PushDetector) Alerts() []Alert { return p.det.Alerts() }

// FiringCount returns how many alerts are currently firing.
func (p *PushDetector) FiringCount() int { return p.det.FiringCount() }

// Rules returns the rules with defaults applied.
func (p *PushDetector) Rules() []Rule { return p.det.Rules() }

// Last returns the newest pushed value of target's series.
func (p *PushDetector) Last(target, series string) (float64, bool) {
	return p.st.last(target, series)
}
