package monitor

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"time"

	"repro/internal/profiling"
	"repro/internal/traceanalytics"
)

// sparkline renders a series tail as an inline SVG polyline — no
// scripts, no external assets, so the dashboard stays a single
// self-contained response that works with any HTTP client.
func sparkline(samples []Sample, w, h int) template.HTML {
	if len(samples) < 2 {
		return template.HTML(fmt.Sprintf(
			`<svg width="%d" height="%d" class="spark"><text x="2" y="%d" class="nodata">no data</text></svg>`,
			w, h, h-3))
	}
	lo, hi := samples[0].V, samples[0].V
	for _, s := range samples[1:] {
		if s.V < lo {
			lo = s.V
		}
		if s.V > hi {
			hi = s.V
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	pad := 2.0
	var pts strings.Builder
	for i, s := range samples {
		x := pad + float64(i)/float64(len(samples)-1)*(float64(w)-2*pad)
		y := pad + (1-(s.V-lo)/span)*(float64(h)-2*pad)
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
	}
	return template.HTML(fmt.Sprintf(
		`<svg width="%d" height="%d" class="spark" role="img"><polyline points="%s" fill="none" stroke-width="1.2"/></svg>`,
		w, h, pts.String()))
}

// dashboardRow is one backend's rendered row.
type dashboardRow struct {
	BackendSnapshot
	StatusClass string
	Status      string
	LatSpark    template.HTML
	HitSpark    template.HTML
	QueueSpark  template.HTML
	RowsSpark   template.HTML
	SealAge     string
}

type dashboardAlert struct {
	Alert
	StateClass string
	Age        string
}

// dashboardSLO is one objective's error-budget gauge row.
type dashboardSLO struct {
	URL string
	SLOStatus
	GaugePct   float64 // clamped budget fraction for the bar width
	GaugeClass string  // ok / warn / crit by budget remaining
	StateClass string
}

// dashboardProfile is one backend's continuous-profiling row.
type dashboardProfile struct {
	Backend     string
	Err         string
	CPUBusyPct  float64
	AllocMBs    float64
	HeapInuseMB float64
	TopAlloc    string
	TopCPU      string
}

// dashboardStage is one pipeline stage's share of fleet critical-path
// time, rendered as a horizontal bar.
type dashboardStage struct {
	Stage  string
	Pct    float64
	BarPct float64 // clamped to [0,100] for the bar width
}

// dashboardCrit is one top-critical-path row.
type dashboardCrit struct {
	ID        string
	Root      string
	WallMS    float64
	Seed      string
	Sources   string
	SpanCount int
	TopStage  string
	TopPct    float64
}

// dashboardWF is one waterfall bar in the slowest-trace panel.
type dashboardWF struct {
	Name     string
	Source   string
	Stage    string
	IndentPx int
	LeftPct  float64
	WidthPct float64
	DurMS    float64
	Critical bool
}

type dashboardData struct {
	Generated   string
	Build       string
	Sweeps      int64
	Interval    string
	Firing      int
	Pending     int
	Rows        []dashboardRow
	StoreRows   []dashboardRow
	SLORows     []dashboardSLO
	ProfRows    []dashboardProfile
	FleetTop    string
	TraceStats  string
	StageBars   []dashboardStage
	CritRows    []dashboardCrit
	Waterfall   []dashboardWF
	WaterfallID string
	WaterfallMS float64
	Alerts      []dashboardAlert
	Rules       []Rule
}

var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="5">
<title>powerperf fleet</title>
<style>
 body { font: 13px/1.5 system-ui, sans-serif; margin: 1.2em; background: #101418; color: #d8dde3; }
 h1 { font-size: 1.25em; margin: 0 0 .2em; } h2 { font-size: 1.05em; margin: 1.4em 0 .4em; }
 h3 { font-size: .95em; margin: 1em 0 .3em; }
 .meta { color: #8a94a0; margin-bottom: 1em; }
 table { border-collapse: collapse; width: 100%; }
 th, td { text-align: left; padding: .3em .7em; border-bottom: 1px solid #232a32; white-space: nowrap; }
 th { color: #8a94a0; font-weight: 600; }
 .up { color: #5fd38a; } .down { color: #f2647b; font-weight: 700; } .warn { color: #e8b55a; }
 .spark polyline { stroke: #6ab0f3; } .spark .nodata { fill: #555e68; font-size: 9px; }
 .firing { color: #f2647b; font-weight: 700; } .pending { color: #e8b55a; } .resolved { color: #5fd38a; }
 .mono { font-family: ui-monospace, monospace; } .dim { color: #8a94a0; }
 .none { color: #5fd38a; }
 .gaugebg { width: 140px; height: 10px; background: #232a32; border-radius: 5px; overflow: hidden; }
 .gauge { height: 100%; border-radius: 5px; } .gauge.ok { background: #5fd38a; }
 .gauge.warng { background: #e8b55a; } .gauge.crit { background: #f2647b; }
 .inactive { color: #8a94a0; }
 .wfbg { width: 320px; height: 10px; background: #232a32; border-radius: 2px; }
 .wf { height: 100%; border-radius: 2px; background: #3d5a7a; }
 .wf.crit { background: #6ab0f3; }
</style>
</head>
<body>
<h1>powerperf fleet</h1>
<div class="meta">generated {{.Generated}} &middot; monitor {{.Build}} &middot; sweep #{{.Sweeps}} every {{.Interval}} &middot;
{{if .Firing}}<span class="firing">{{.Firing}} firing</span>{{else}}<span class="none">0 firing</span>{{end}}{{if .Pending}} &middot; <span class="pending">{{.Pending}} pending</span>{{end}}</div>

<h2>Backends</h2>
<table>
<tr><th>backend</th><th>status</th><th>build</th><th>seed</th><th>uptime</th><th>hit rate</th><th>hit trend</th><th>fill mean</th><th>fill trend</th><th>queue</th><th>queue trend</th><th>scrape</th></tr>
{{range .Rows}}
<tr>
 <td class="mono">{{.URL}}</td>
 <td class="{{.StatusClass}}">{{.Status}}</td>
 <td class="mono dim">{{.Build.Commit}}</td>
 <td>{{.Seed}}</td>
 <td>{{printf "%.0fs" .UptimeS}}</td>
 <td>{{printf "%.1f%%" .HitRatePct}}</td>
 <td>{{.HitSpark}}</td>
 <td>{{printf "%.2fms" .FillMeanMS}}</td>
 <td>{{.LatSpark}}</td>
 <td>{{printf "%.0f/%.0f" .QueueDepth .QueueCap}}</td>
 <td>{{.QueueSpark}}</td>
 <td class="dim">{{printf "%.1fms" .ScrapeMS}}{{if .Error}} <span class="down" title="{{.Error}}">!</span>{{end}}</td>
</tr>
{{end}}
</table>

{{if .StoreRows}}
<h2>Study store</h2>
<table>
<tr><th>backend</th><th>segments</th><th>rows</th><th>rows trend</th><th>bytes</th><th>last seal</th><th>dropped</th><th>write errors</th></tr>
{{range .StoreRows}}
<tr>
 <td class="mono">{{.URL}}</td>
 <td>{{printf "%.0f" .StoreSegments}}</td>
 <td>{{printf "%.0f" .StoreRows}}</td>
 <td>{{.RowsSpark}}</td>
 <td>{{printf "%.0f" .StoreBytes}}</td>
 <td class="dim">{{.SealAge}}</td>
 <td>{{if .StoreDropped}}<span class="warn">{{printf "%.0f" .StoreDropped}}</span>{{else}}0{{end}}</td>
 <td>{{if .StoreWriteErr}}<span class="down">{{printf "%.0f" .StoreWriteErr}}</span>{{else}}0{{end}}</td>
</tr>
{{end}}
</table>
{{end}}

{{if .SLORows}}
<h2>Service objectives</h2>
<table>
<tr><th>backend</th><th>objective</th><th>error budget</th><th>compliance</th><th>fast burn</th><th>slow burn</th><th>alert</th></tr>
{{range .SLORows}}
<tr>
 <td class="mono">{{.URL}}</td>
 <td>{{.Objective}}</td>
 <td><div class="gaugebg" title="{{printf "%.1f%%" .BudgetPct}} of budget left"><div class="gauge {{.GaugeClass}}" style="width:{{printf "%.0f" .GaugePct}}%"></div></div></td>
 <td>{{printf "%.3f%%" .CompliancePct}}</td>
 <td>{{printf "%.3g" .FastBurn}}</td>
 <td>{{printf "%.3g" .SlowBurn}}</td>
 <td class="{{.StateClass}}">{{.AlertState}}</td>
</tr>
{{end}}
</table>
{{end}}

{{if .ProfRows}}
<h2>Continuous profiling</h2>
<table>
<tr><th>backend</th><th>cpu busy</th><th>alloc rate</th><th>heap inuse</th><th>top alloc delta</th><th>top cpu</th></tr>
{{range .ProfRows}}
<tr>
 <td class="mono">{{.Backend}}</td>
 <td>{{printf "%.1f%%" .CPUBusyPct}}</td>
 <td>{{printf "%.2f MB/s" .AllocMBs}}</td>
 <td>{{printf "%.1f MB" .HeapInuseMB}}</td>
 <td class="mono dim" style="white-space:normal">{{.TopAlloc}}</td>
 <td class="mono dim" style="white-space:normal">{{.TopCPU}}</td>
</tr>
{{if .Err}}<tr><td></td><td colspan="5" class="down">{{.Err}}</td></tr>{{end}}
{{end}}
</table>
{{if .FleetTop}}<p class="dim">fleet-merged alloc delta: <span class="mono">{{.FleetTop}}</span></p>{{end}}
{{end}}

{{if .StageBars}}
<h2>Trace analytics</h2>
<p class="dim">{{.TraceStats}}</p>
<table>
<tr><th>critical-path stage</th><th>fleet share</th><th></th></tr>
{{range .StageBars}}
<tr>
 <td class="mono">{{.Stage}}</td>
 <td>{{printf "%.1f%%" .Pct}}</td>
 <td><div class="wfbg"><div class="wf crit" style="width:{{printf "%.1f" .BarPct}}%"></div></div></td>
</tr>
{{end}}
</table>
{{if .CritRows}}
<h3>Top critical paths</h3>
<table>
<tr><th>trace</th><th>root</th><th>wall</th><th>seed</th><th>sources</th><th>spans</th><th>dominant stage</th></tr>
{{range .CritRows}}
<tr>
 <td class="mono dim">{{.ID}}</td>
 <td>{{.Root}}</td>
 <td>{{printf "%.2fms" .WallMS}}</td>
 <td>{{.Seed}}</td>
 <td class="mono dim" style="white-space:normal">{{.Sources}}</td>
 <td>{{.SpanCount}}</td>
 <td>{{.TopStage}} {{printf "%.0f%%" .TopPct}}</td>
</tr>
{{end}}
</table>
{{end}}
{{if .Waterfall}}
<h3>Slowest trace <span class="mono dim">{{.WaterfallID}}</span> &middot; {{printf "%.2fms" .WaterfallMS}}</h3>
<table>
<tr><th>span</th><th>source</th><th>stage</th><th>self/total</th><th>timeline</th></tr>
{{range .Waterfall}}
<tr>
 <td class="mono" style="padding-left:{{.IndentPx}}px">{{.Name}}</td>
 <td class="mono dim">{{.Source}}</td>
 <td class="dim">{{.Stage}}</td>
 <td>{{printf "%.2fms" .DurMS}}</td>
 <td><div class="wfbg"><div class="wf{{if .Critical}} crit{{end}}" style="margin-left:{{printf "%.1f" .LeftPct}}%;width:{{printf "%.1f" .WidthPct}}%"></div></div></td>
</tr>
{{end}}
</table>
{{end}}
{{end}}

<h2>Alerts</h2>
{{if .Alerts}}
<table>
<tr><th>state</th><th>rule</th><th>backend</th><th>value</th><th>age</th><th>reason</th></tr>
{{range .Alerts}}
<tr>
 <td class="{{.StateClass}}">{{.State}}</td>
 <td>{{.Rule}}</td>
 <td class="mono">{{.Backend}}</td>
 <td>{{printf "%.4g" .Value}}</td>
 <td class="dim">{{.Age}}</td>
 <td style="white-space:normal">{{.Reason}}</td>
</tr>
{{end}}
</table>
{{else}}<p class="none">No alerts: every rule quiet across the fleet.</p>{{end}}

<h2>Slowest cells</h2>
<table>
<tr><th>backend</th><th>benchmark</th><th>processor</th><th>latency</th></tr>
{{range .Rows}}{{$url := .URL}}{{range .TopCells}}
<tr><td class="mono">{{$url}}</td><td>{{.Benchmark}}</td><td>{{.Processor}}</td><td>{{printf "%.2fms" .Ms}}</td></tr>
{{end}}{{end}}
</table>

<h2>Rules</h2>
<table>
<tr><th>rule</th><th>kind</th><th>series</th><th>for/clear</th><th>what it catches</th></tr>
{{range .Rules}}
<tr><td>{{.Name}}</td><td>{{.Kind}}</td><td class="mono">{{.Series}}</td><td>{{.For}}/{{.Clear}}</td><td style="white-space:normal" class="dim">{{.Help}}</td></tr>
{{end}}
</table>
</body>
</html>
`))

// HitRatePct converts the stored fraction for display.
func (r dashboardRow) HitRatePct() float64 { return r.HitRate * 100 }

// BudgetPct is the raw error-budget remaining as a percentage (may be
// negative once the budget is blown).
func (s dashboardSLO) BudgetPct() float64 { return s.BudgetRemaining * 100 }

// CompliancePct converts compliance for display.
func (s dashboardSLO) CompliancePct() float64 { return s.Compliance * 100 }

// sloRow builds one error-budget gauge row from a federated status.
func sloRow(url string, st SLOStatus) dashboardSLO {
	row := dashboardSLO{URL: url, SLOStatus: st}
	row.GaugePct = st.BudgetRemaining * 100
	if row.GaugePct < 0 {
		row.GaugePct = 0
	}
	if row.GaugePct > 100 {
		row.GaugePct = 100
	}
	switch {
	case st.BudgetRemaining <= 0.1:
		row.GaugeClass = "crit"
	case st.BudgetRemaining <= 0.5:
		row.GaugeClass = "warng"
	default:
		row.GaugeClass = "ok"
	}
	switch st.AlertState {
	case "firing":
		row.StateClass = "down"
	case "pending":
		row.StateClass = "warn"
	case "inactive":
		row.StateClass = "inactive"
	default:
		row.StateClass = "none"
	}
	return row
}

// topEntries formats the first n profile entries; cpu values are sampled
// nanoseconds, alloc values are byte deltas (signed).
func topEntries(entries []profiling.Entry, n int, cpu bool) string {
	var b strings.Builder
	for i, e := range entries {
		if i >= n {
			break
		}
		if i > 0 {
			b.WriteString("; ")
		}
		name := e.Name
		if idx := strings.LastIndex(name, "/"); idx >= 0 {
			name = name[idx+1:]
		}
		if cpu {
			fmt.Fprintf(&b, "%s %.2fs", name, float64(e.Value)/1e9)
		} else {
			fmt.Fprintf(&b, "%s %+.2f MB", name, float64(e.Value)/1e6)
		}
	}
	return b.String()
}

// slowestWaterfall renders the slowest assembled trace's span tree as
// timeline bars, capped at maxRows spans.
func (m *Monitor) slowestWaterfall(maxRows int) ([]dashboardWF, string, float64) {
	traces := m.analytics.Search(traceanalytics.Query{Limit: 1})
	if len(traces) == 0 {
		return nil, "", 0
	}
	tr := traces[0]
	wall := tr.WallMS
	if wall <= 0 {
		wall = 1
	}
	var rows []dashboardWF
	for i := range tr.Spans {
		if len(rows) >= maxRows {
			break
		}
		sp := &tr.Spans[i]
		width := sp.DurMS / wall * 100
		if width < 0.5 {
			width = 0.5
		}
		left := sp.StartOffsetMS / wall * 100
		if left+width > 100 {
			left = 100 - width
		}
		if left < 0 {
			left = 0
		}
		rows = append(rows, dashboardWF{
			Name:     sp.Name,
			Source:   sp.Source,
			Stage:    sp.Stage,
			IndentPx: sp.Depth * 12,
			LeftPct:  left,
			WidthPct: width,
			DurMS:    sp.DurMS,
			Critical: sp.OnCritical,
		})
	}
	return rows, tr.ID, tr.WallMS
}

// DashboardHandler serves GET /debug/dashboard: a self-contained HTML
// fleet view (no scripts, no external assets) that meta-refreshes every
// 5 seconds.
func (m *Monitor) DashboardHandler() http.Handler {
	const sparkN, sparkW, sparkH = 60, 140, 26
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := m.Snapshot()
		data := dashboardData{
			Generated: snap.Generated.UTC().Format(time.RFC3339),
			Build:     snap.Build.String(),
			Sweeps:    snap.Sweeps,
			Interval:  m.opts.Interval.String(),
			Rules:     m.detector.Rules(),
		}
		for _, bs := range snap.Backends {
			row := dashboardRow{BackendSnapshot: bs}
			switch {
			case !bs.Up:
				row.StatusClass, row.Status = "down", "DOWN"
			case !bs.ScrapeOK:
				row.StatusClass, row.Status = "warn", "degraded"
			default:
				row.StatusClass, row.Status = "up", "up"
			}
			row.LatSpark = sparkline(m.Series(bs.URL, "powerperfd_cell_fill_seconds_mean", sparkN), sparkW, sparkH)
			row.HitSpark = sparkline(m.Series(bs.URL, "statsz_cache_hit_rate", sparkN), sparkW, sparkH)
			row.QueueSpark = sparkline(m.Series(bs.URL, "statsz_queue_depth", sparkN), sparkW, sparkH)
			data.Rows = append(data.Rows, row)
			if bs.HasStore {
				srow := row
				srow.RowsSpark = sparkline(m.Series(bs.URL, "statsz_store_rows", sparkN), sparkW, sparkH)
				if bs.StoreLastSeal > 0 {
					age := snap.Generated.Sub(time.Unix(int64(bs.StoreLastSeal), 0))
					if age < 0 {
						age = 0
					}
					srow.SealAge = age.Truncate(time.Second).String() + " ago"
				} else {
					srow.SealAge = "never"
				}
				data.StoreRows = append(data.StoreRows, srow)
			}
			for _, st := range bs.SLOs {
				data.SLORows = append(data.SLORows, sloRow(bs.URL, st))
			}
		}
		for _, pr := range snap.Profiles {
			data.ProfRows = append(data.ProfRows, dashboardProfile{
				Backend:     pr.Backend,
				Err:         pr.Err,
				CPUBusyPct:  pr.CPUBusyFrac * 100,
				AllocMBs:    pr.AllocPerSec / 1e6,
				HeapInuseMB: float64(pr.HeapInuse) / 1e6,
				TopAlloc:    topEntries(pr.TopAllocDiff, 3, false),
				TopCPU:      topEntries(pr.TopCPU, 3, true),
			})
		}
		data.FleetTop = topEntries(snap.FleetAllocDelta, 5, false)
		if snap.Traces != nil {
			st := snap.Traces.Stats
			data.TraceStats = fmt.Sprintf("%d traces assembled from %d spans (%d held, %d duplicate scrapes, %d evicted)",
				st.Traces, st.SpansSeen, st.SpansHeld, st.Duplicates, st.Evicted)
			for _, sh := range snap.Traces.StageShares {
				bar := sh.Frac * 100
				if bar > 100 {
					bar = 100
				}
				data.StageBars = append(data.StageBars, dashboardStage{
					Stage: sh.Stage, Pct: sh.Frac * 100, BarPct: bar,
				})
			}
			for _, d := range snap.Traces.TopCritical {
				data.CritRows = append(data.CritRows, dashboardCrit{
					ID:        d.ID,
					Root:      d.Root,
					WallMS:    d.WallMS,
					Seed:      d.Seed,
					Sources:   strings.Join(d.Sources, ", "),
					SpanCount: d.SpanCount,
					TopStage:  d.TopStage,
					TopPct:    d.TopStageFrac * 100,
				})
			}
			data.Waterfall, data.WaterfallID, data.WaterfallMS = m.slowestWaterfall(40)
		}
		for _, a := range snap.Alerts {
			da := dashboardAlert{Alert: a, StateClass: a.State.String()}
			var since time.Time
			switch a.State {
			case StateFiring:
				since = a.FiringSince
			case StatePending:
				since = a.PendingSince
			default:
				since = a.ResolvedSince
			}
			if !since.IsZero() {
				da.Age = snap.Generated.Sub(since).Truncate(time.Second).String()
			}
			switch a.State {
			case StateFiring:
				data.Firing++
			case StatePending:
				data.Pending++
			}
			data.Alerts = append(data.Alerts, da)
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = dashboardTmpl.Execute(w, data)
	})
}
