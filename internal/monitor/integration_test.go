package monitor_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/monitor"
	"repro/internal/proc"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// deadable simulates a backend process death: once dead, every request
// is severed without a response, exactly as the cluster tests do it.
// The handler binds late so a monitor can be attached to the server
// after its sibling URLs are known.
type deadable struct {
	h    atomic.Pointer[http.Handler]
	dead atomic.Bool
}

func (d *deadable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	h := d.h.Load()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	(*h).ServeHTTP(w, r)
}

func (d *deadable) bind(h http.Handler) { d.h.Store(&h) }

func newBackend(t *testing.T, opts service.Options) (*service.Server, *httptest.Server, *deadable) {
	t.Helper()
	srv := service.NewServer(opts)
	d := &deadable{}
	d.bind(srv.Handler())
	ts := httptest.NewServer(d)
	t.Cleanup(ts.Close)
	return srv, ts, d
}

func seedPtr(v int64) *int64 { return &v }

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestScrapeFederatesLiveBackend points a monitor at a real powerperfd
// handler and asserts the federation loop lands every layer: healthz
// into up, statsz into flattened gauges, metricsz families under their
// exposition keys, derived histogram means, and the build identity.
func TestScrapeFederatesLiveBackend(t *testing.T) {
	_, ts, _ := newBackend(t, service.Options{Seed: 42})

	// Give the backend some traffic so latency histograms exist.
	body := `{"cells":[{"benchmark":"mcf","processor":"i7 (45)"},{"benchmark":"jess","processor":"i5 (32)"}]}`
	resp, err := http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mon := monitor.New([]string{ts.URL}, monitor.Options{Interval: time.Second, Seed: 7})
	ctx := context.Background()
	mon.Sweep(ctx)
	mon.Sweep(ctx) // second sweep so deltas and means exist

	keys := mon.SeriesKeys(ts.URL)
	has := func(k string) bool {
		for _, x := range keys {
			if x == k {
				return true
			}
		}
		return false
	}
	for _, want := range []string{
		"up", "scrape_ok", "scrape_duration_seconds",
		"statsz_uptime_s", "statsz_cache_hit_rate", "statsz_queue_capacity", "statsz_queue_fill",
		"powerperfd_cell_fill_seconds_mean",
	} {
		if !has(want) {
			t.Errorf("series %q missing after scrape; have %d series", want, len(keys))
		}
	}
	if v, _ := last(mon, ts.URL, "up"); v != 1 {
		t.Errorf("up=%v, want 1 for a live backend", v)
	}
	if v, _ := last(mon, ts.URL, "scrape_ok"); v != 1 {
		t.Errorf("scrape_ok=%v, want 1", v)
	}

	snap := mon.Snapshot()
	if len(snap.Backends) != 1 {
		t.Fatalf("snapshot has %d backends, want 1", len(snap.Backends))
	}
	bs := snap.Backends[0]
	if !bs.Up || !bs.ScrapeOK {
		t.Fatalf("snapshot says up=%v scrapeOK=%v err=%q", bs.Up, bs.ScrapeOK, bs.Error)
	}
	if bs.Seed != 42 {
		t.Errorf("snapshot seed=%d, want 42", bs.Seed)
	}
	if bs.Build.GoVersion == "" {
		t.Errorf("snapshot build identity empty: %+v", bs.Build)
	}
	if len(bs.TopCells) == 0 {
		t.Errorf("no slow cells captured despite measure traffic")
	}
	if snap.Sweeps != 2 {
		t.Errorf("Sweeps=%d, want 2", snap.Sweeps)
	}
}

func last(mon *monitor.Monitor, backend, key string) (float64, bool) {
	s := mon.Series(backend, key, 1)
	if len(s) == 0 {
		return 0, false
	}
	return s[0].V, true
}

// TestMetricszRoundTrips is the exposition round-trip guard on a live
// daemon: the /metricsz page must lint clean, parse, and survive
// render→parse with every family intact.
func TestMetricszRoundTrips(t *testing.T) {
	_, ts, _ := newBackend(t, service.Options{Seed: 42})
	body := `{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`
	resp, err := http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	text := string(getBody(t, ts.URL+"/metricsz"))
	if problems := telemetry.LintPrometheus(text); len(problems) != 0 {
		t.Fatalf("/metricsz lint problems: %v", problems)
	}
	fams, err := telemetry.ParsePrometheus(text)
	if err != nil {
		t.Fatalf("/metricsz does not parse: %v", err)
	}
	if f := findFamily(fams, "powerperf_build_info"); f == nil {
		t.Fatalf("/metricsz missing powerperf_build_info")
	} else if len(f.Samples) != 1 || f.Samples[0].Value != 1 {
		t.Fatalf("build_info samples %+v, want one sample of value 1", f.Samples)
	}

	var rendered bytes.Buffer
	telemetry.RenderPrometheus(&rendered, fams)
	again, err := telemetry.ParsePrometheus(rendered.String())
	if err != nil {
		t.Fatalf("rendered /metricsz does not re-parse: %v", err)
	}
	if !reflect.DeepEqual(fams, again) {
		t.Fatalf("/metricsz round-trip lost information: %d vs %d families", len(fams), len(again))
	}
}

// TestStoreGaugesFederate scrapes a store-enabled backend and asserts
// the /statsz store block lands in the snapshot's store gauges and the
// dashboard grows a Study store panel; a storeless backend stays out.
func TestStoreGaugesFederate(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, ts, _ := newBackend(t, service.Options{Seed: 42, Store: st})
	_, plainTS, _ := newBackend(t, service.Options{Seed: 42})

	body := `{"cells":[{"benchmark":"mcf","processor":"i7 (45)"},{"benchmark":"jess","processor":"i5 (32)"}]}`
	resp, err := http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The ingest is async: wait for the study to seal before scraping.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := srv.Stats().Store; s != nil && s.Segments >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("study never sealed into the store")
		}
		time.Sleep(10 * time.Millisecond)
	}

	mon := monitor.New([]string{ts.URL, plainTS.URL}, monitor.Options{Interval: time.Second, Seed: 7})
	ctx := context.Background()
	mon.Sweep(ctx)
	mon.Sweep(ctx)

	snap := mon.Snapshot()
	byURL := map[string]monitor.BackendSnapshot{}
	for _, bs := range snap.Backends {
		byURL[bs.URL] = bs
	}
	bs := byURL[ts.URL]
	if !bs.HasStore {
		t.Fatalf("store-enabled backend snapshot has no store gauges: %+v", bs)
	}
	if bs.StoreSegments != 1 || bs.StoreRows != 2 {
		t.Errorf("store gauges segments=%v rows=%v, want 1 and 2", bs.StoreSegments, bs.StoreRows)
	}
	if bs.StoreBytes <= 0 || bs.StoreLastSeal <= 0 {
		t.Errorf("store gauges bytes=%v last_seal=%v, want both positive", bs.StoreBytes, bs.StoreLastSeal)
	}
	if bs.StoreDropped != 0 || bs.StoreWriteErr != 0 {
		t.Errorf("store gauges dropped=%v write_errors=%v, want 0", bs.StoreDropped, bs.StoreWriteErr)
	}
	if plain := byURL[plainTS.URL]; plain.HasStore {
		t.Errorf("storeless backend claims store gauges: %+v", plain)
	}

	rr := httptest.NewRecorder()
	mon.DashboardHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/dashboard", nil))
	html := rr.Body.String()
	if !strings.Contains(html, "Study store") {
		t.Errorf("dashboard missing the Study store panel")
	}
	if n := strings.Count(html, "<td class=\"mono\">"+ts.URL+"</td>"); n < 2 {
		t.Errorf("store backend appears %d times in dashboard tables, want >= 2 (backends + study store)", n)
	}
}

func findFamily(fams []telemetry.MetricFamily, name string) *telemetry.MetricFamily {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// TestAlertLifecycleOnBackendDeath is the acceptance test: a 3-backend
// fleet runs a study through the cluster coordinator while the monitor
// federates it; one backend is killed mid-study, the backend_down rule
// walks pending→firing on /v1/alertz (served by a surviving powerperfd
// via AttachMonitor), and after revival it resolves — with the
// lifecycle timestamps strictly ordered.
func TestAlertLifecycleOnBackendDeath(t *testing.T) {
	var victim *deadable
	var victimTS *httptest.Server
	var victimCells atomic.Int64
	killAt := int64(20)
	hooks := &service.Hooks{BeforeMeasure: func(seed int64, bench, processor string) error {
		if victimCells.Add(1) == killAt {
			victim.dead.Store(true)
			victimTS.CloseClientConnections()
		}
		return nil
	}}

	_, ts0, d0 := newBackend(t, service.Options{Seed: 42, Hooks: hooks})
	victim, victimTS = d0, ts0
	srv1, ts1, d1 := newBackend(t, service.Options{Seed: 42})
	_, ts2, _ := newBackend(t, service.Options{Seed: 42})

	mon := monitor.New([]string{ts0.URL, ts1.URL, ts2.URL}, monitor.Options{
		Interval: 25 * time.Millisecond,
		Jitter:   time.Millisecond,
		Timeout:  2 * time.Second,
		Seed:     7,
		Rules: []monitor.Rule{{
			Name: "backend_down", Series: "up", Kind: monitor.KindThreshold,
			Cmp: monitor.Below, Value: 1, For: 2, Clear: 2,
		}},
	})
	// Re-bind the surviving backend's handler with the monitor attached,
	// so /v1/alertz and /debug/dashboard serve through powerperfd itself.
	srv1.AttachMonitor(mon)
	d1.bind(srv1.Handler())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mon.Start(ctx)

	cl, err := cluster.New([]string{ts0.URL, ts1.URL, ts2.URL}, cluster.Options{
		Seed:             seedPtr(42),
		MaxAttempts:      3,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	cps := proc.StockConfigs()
	jobs := harness.GridJobs(cps[:6], nil)
	studyDone := make(chan error, 1)
	go func() {
		_, err := cl.MeasureBatch(ctx, jobs, 0)
		studyDone <- err
	}()

	alertState := func() (monitor.Alert, bool) {
		var payload struct {
			Alerts []monitor.Alert `json:"alerts"`
		}
		resp, err := http.Get(ts1.URL + "/v1/alertz")
		if err != nil {
			return monitor.Alert{}, false
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			return monitor.Alert{}, false
		}
		for _, a := range payload.Alerts {
			if a.Rule == "backend_down" && a.Backend == ts0.URL {
				return a, true
			}
		}
		return monitor.Alert{}, false
	}
	waitFor := func(state monitor.AlertState, deadline time.Duration) monitor.Alert {
		t.Helper()
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			if a, ok := alertState(); ok && a.State == state {
				return a
			}
			time.Sleep(10 * time.Millisecond)
		}
		a, ok := alertState()
		t.Fatalf("backend_down never reached %v (last alert %+v, present=%v)", state, a, ok)
		return monitor.Alert{}
	}

	firing := waitFor(monitor.StateFiring, 10*time.Second)
	if firing.PendingSince.IsZero() || firing.FiringSince.IsZero() {
		t.Fatalf("firing alert missing lifecycle stamps: %+v", firing)
	}
	if !firing.PendingSince.Before(firing.FiringSince) {
		t.Fatalf("pending %v !< firing %v", firing.PendingSince, firing.FiringSince)
	}
	if !victim.dead.Load() {
		t.Fatalf("victim was never killed (cells=%d)", victimCells.Load())
	}

	// The study must still complete correctly: failover absorbs the death.
	if err := <-studyDone; err != nil {
		t.Fatalf("study failed during backend death: %v", err)
	}

	// Revive the backend; the alert must resolve.
	victim.dead.Store(false)
	resolved := waitFor(monitor.StateResolved, 10*time.Second)
	if !(resolved.PendingSince.Before(resolved.FiringSince) &&
		resolved.FiringSince.Before(resolved.ResolvedSince)) {
		t.Fatalf("lifecycle timestamps out of order: pending=%v firing=%v resolved=%v",
			resolved.PendingSince, resolved.FiringSince, resolved.ResolvedSince)
	}

	// The dashboard serves from the same daemon, self-contained.
	dash := string(getBody(t, ts1.URL+"/debug/dashboard"))
	for _, want := range []string{"powerperf fleet", ts0.URL, "backend_down", "<svg"} {
		if !strings.Contains(dash, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(dash, "<script") || strings.Contains(dash, "http://cdn") {
		t.Errorf("dashboard is not self-contained")
	}
}

// TestCSVBytesUnchangedByMonitoring is the golden guard: with the
// scrape loop and detector running against live backends, a full
// seed-42 study through the cluster still produces CSVs byte-identical
// to the committed dataset — observation must not perturb measurement.
func TestCSVBytesUnchangedByMonitoring(t *testing.T) {
	if testing.Short() {
		t.Skip("full-study golden guard; skipped in -short")
	}
	_, ts0, _ := newBackend(t, service.Options{Seed: 42})
	_, ts1, _ := newBackend(t, service.Options{Seed: 42})

	mon := monitor.New([]string{ts0.URL, ts1.URL}, monitor.Options{
		Interval: 30 * time.Millisecond,
		Jitter:   time.Millisecond,
		Timeout:  2 * time.Second,
		Seed:     7,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mon.Start(ctx)

	cl, err := cluster.New([]string{ts0.URL, ts1.URL}, cluster.Options{Seed: seedPtr(42)})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cl.Reference(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mbuf, abuf bytes.Buffer
	if err := experiments.StreamMeasurementsCSVFrom(ctx, cl, ref, nil, &mbuf, 0); err != nil {
		t.Fatal(err)
	}
	if err := experiments.StreamAggregatesCSVFrom(ctx, cl, ref, nil, &abuf, 0); err != nil {
		t.Fatal(err)
	}

	if mon.Sweeps() == 0 {
		t.Fatal("monitor never swept during the study; the guard proved nothing")
	}
	for file, got := range map[string][]byte{
		"measurements.csv": mbuf.Bytes(),
		"aggregates.csv":   abuf.Bytes(),
	} {
		want, err := os.ReadFile(filepath.Join("..", "..", "dataset", file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: study under monitoring differs from committed dataset (%d vs %d bytes)",
				file, len(got), len(want))
		}
	}
	// Latency-regression rules may legitimately fire as study load ramps;
	// what a healthy fleet must never show is an availability alert.
	for _, a := range mon.Detector().Alerts() {
		if (a.Rule == "backend_down" || a.Rule == "scrape_degraded") && a.State == monitor.StateFiring {
			t.Errorf("healthy fleet shows availability alert: %+v", a)
		}
	}
}

// TestPowerperfmonOnceShape mirrors the CLI's -once path: one sweep,
// then the snapshot must marshal with the fields scripts consume.
func TestPowerperfmonOnceShape(t *testing.T) {
	_, ts, _ := newBackend(t, service.Options{Seed: 42})
	mon := monitor.New([]string{ts.URL}, monitor.Options{Interval: time.Second, Seed: 7})
	mon.Sweep(context.Background())

	buf, err := json.Marshal(mon.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Backends []struct {
			URL string `json:"url"`
			Up  bool   `json:"up"`
		} `json:"backends"`
		Sweeps int64 `json:"sweeps"`
	}
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Backends) != 1 || !decoded.Backends[0].Up || decoded.Backends[0].URL != ts.URL {
		t.Fatalf("snapshot JSON shape wrong: %s", buf)
	}
	if decoded.Sweeps != 1 {
		t.Fatalf("sweeps=%d, want 1", decoded.Sweeps)
	}
}

// TestMonitorUserAgent asserts every scrape identifies itself with the
// build-stamped token.
func TestMonitorUserAgent(t *testing.T) {
	var ua atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ua.Store(r.UserAgent())
		http.NotFound(w, r)
	}))
	defer ts.Close()

	mon := monitor.New([]string{ts.URL}, monitor.Options{Interval: time.Second, Seed: 7})
	mon.Sweep(context.Background())
	got, _ := ua.Load().(string)
	want := "powerperfmon/" + monitor.Version + " " + telemetry.BuildInfo().UserAgentToken()
	if got != want {
		t.Fatalf("scrape User-Agent %q, want %q", got, want)
	}
}
