package monitor_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaoshttp"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/monitor"
	"repro/internal/proc"
	"repro/internal/service"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

func postMeasureBody(t *testing.T, base, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/measure", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/measure: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func slozSnapshot(t *testing.T, base string) slo.Snapshot {
	t.Helper()
	var snap slo.Snapshot
	if err := json.Unmarshal(getBody(t, base+"/v1/sloz"), &snap); err != nil {
		t.Fatalf("sloz unparseable: %v", err)
	}
	return snap
}

func latencyStatus(snap slo.Snapshot) *slo.ObjectiveStatus {
	for i := range snap.Objectives {
		if snap.Objectives[i].Name == service.SLOLatency {
			return &snap.Objectives[i]
		}
	}
	return nil
}

// TestSLOBurnLifecycleUnderChaos is the PR's acceptance scenario: a
// three-backend cluster study with one backend killed mid-run and a 10x
// straggler behind a chaoshttp proxy. The straggler's latency SLO must
// walk the full fast-burn lifecycle at /v1/sloz —
// inactive→pending→firing→resolved — the firing alert must carry a
// breach exemplar whose trace resolves at /v1/traces, the study must
// survive the death with failover attributed to the victim, and the
// fleet profiler's federated allocation diff must be non-empty.
func TestSLOBurnLifecycleUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos scenario; skipped in -short")
	}

	// Backend 0: the straggler. Cache fills sleep while the fault is
	// armed, so its server-side measure latency breaches the threshold
	// by ~2x (and breaches the 10x network delay on top via the proxy).
	var stragglerNS atomic.Int64
	stragglerNS.Store(int64(50 * time.Millisecond))
	hooks0 := &service.Hooks{BeforeMeasure: func(int64, string, string) error {
		time.Sleep(time.Duration(stragglerNS.Load()))
		return nil
	}}
	sloCfg := &slo.Config{
		Objectives: []slo.Objective{
			{Name: service.SLOLatency, Kind: slo.KindLatency, Target: 0.99, LatencyThreshold: 25 * time.Millisecond},
			{Name: service.SLOAvailability, Kind: slo.KindAvailability, Target: 0.95},
		},
		Resolution:   10 * time.Millisecond,
		BudgetWindow: time.Minute,
		FastShort:    50 * time.Millisecond,
		FastLong:     200 * time.Millisecond,
		SlowShort:    time.Second,
		SlowLong:     2 * time.Second,
	}
	srv0 := service.NewServer(service.Options{
		Seed: 42, Hooks: hooks0, SLO: sloCfg,
		TailSampling: &telemetry.TailPolicy{
			SlowSpan: 25 * time.Millisecond, KeepErrors: true, SampleRate: 0.1,
		},
	})
	defer srv0.Drain()
	ts0 := httptest.NewServer(srv0.Handler())
	defer ts0.Close()
	// The cluster reaches the straggler through a chaos proxy that adds
	// a 10x network delay on every request.
	proxy0 := chaoshttp.New(ts0.URL, chaoshttp.Options{Seed: 1, DelayProb: 1, Delay: 30 * time.Millisecond})
	pts0 := httptest.NewServer(proxy0)
	defer pts0.Close()

	// Backend 1: healthy, with /debug/pprof mounted so the fleet
	// profiler can harvest it.
	srv1 := service.NewServer(service.Options{Seed: 42})
	defer srv1.Drain()
	mux1 := http.NewServeMux()
	mux1.Handle("/", srv1.Handler())
	mux1.Handle("/debug/pprof/", service.PprofHandler())
	ts1 := httptest.NewServer(mux1)
	defer ts1.Close()

	// Backend 2: killed mid-run after its 5th cache fill, behind a
	// transparent chaos proxy whose Kill severs in-flight streams.
	var proxy2 *chaoshttp.Proxy
	var pts2 *httptest.Server
	var victimCells atomic.Int64
	hooks2 := &service.Hooks{BeforeMeasure: func(int64, string, string) error {
		if victimCells.Add(1) == 5 {
			proxy2.Kill()
			pts2.CloseClientConnections()
		}
		return nil
	}}
	srv2 := service.NewServer(service.Options{Seed: 42, Hooks: hooks2})
	defer srv2.Drain()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	proxy2 = chaoshttp.New(ts2.URL, chaoshttp.Options{Seed: 2})
	pts2 = httptest.NewServer(proxy2)
	defer pts2.Close()

	// Before any traffic: every objective must be inactive.
	for _, o := range slozSnapshot(t, ts0.URL).Objectives {
		if o.AlertState != "inactive" {
			t.Fatalf("objective %s starts %q, want inactive", o.Name, o.AlertState)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cl, err := cluster.New([]string{pts0.URL, ts1.URL, pts2.URL}, cluster.Options{
		Seed:             seedPtr(42),
		HedgeDelay:       10 * time.Millisecond,
		MaxAttempts:      3,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := harness.GridJobs(proc.StockConfigs()[:6], nil)
	studyDone := make(chan error, 1)
	go func() {
		_, err := cl.MeasureBatch(ctx, jobs, 0)
		studyDone <- err
	}()

	// Drive unique-seed fills straight at the straggler (each one
	// misses the cache, sleeps 50ms, breaches the 25ms threshold) until
	// the fast-burn rule fires.
	var firing *slo.AlertStatus
	seed := int64(1000)
	deadline := time.Now().Add(20 * time.Second)
	for firing == nil {
		if time.Now().After(deadline) {
			t.Fatalf("latency fast-burn never fired; last snapshot: %+v", slozSnapshot(t, ts0.URL))
		}
		body := fmt.Sprintf(`{"seed":%d,"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`, seed)
		seed++
		if st, b := postMeasureBody(t, ts0.URL, body); st != http.StatusOK {
			t.Fatalf("measure status %d: %s", st, b)
		}
		snap := slozSnapshot(t, ts0.URL)
		for i := range snap.Alerts {
			a := &snap.Alerts[i]
			if a.Rule == slo.RuleFastBurn && a.Backend == service.SLOLatency && a.State == monitor.StateFiring {
				firing = a
			}
		}
	}

	// The detector's lifecycle stamps prove inactive→pending→firing.
	if firing.PendingSince.IsZero() || firing.FiringSince.IsZero() {
		t.Fatalf("firing alert missing lifecycle stamps: %+v", firing)
	}
	if firing.FiringSince.Before(firing.PendingSince) {
		t.Fatalf("pending %v !<= firing %v", firing.PendingSince, firing.FiringSince)
	}
	// The page links to the offending request: at least one breach
	// exemplar whose trace id resolves at /v1/traces.
	if len(firing.Exemplars) == 0 {
		t.Fatalf("firing fast-burn alert carries no exemplars: %+v", firing)
	}
	trace := firing.Exemplars[0].TraceID
	if trace == "" {
		t.Fatal("exemplar has empty trace id")
	}
	traceBody := getBody(t, ts0.URL+"/v1/traces?trace="+trace)
	if !bytes.Contains(traceBody, []byte("http.measure")) {
		t.Fatalf("exemplar trace %s does not resolve to a measure span: %s", trace, traceBody)
	}

	// The study must survive the mid-run death of backend 2.
	if err := <-studyDone; err != nil {
		t.Fatalf("study failed under chaos: %v", err)
	}
	if !proxy2.Dead() {
		t.Fatalf("victim was never killed (fills=%d)", victimCells.Load())
	}
	// The coordinator absorbs the death through whichever resilience
	// path gets there first — a hedge duplicate winning against the
	// severed primary, or retries exhausting into failover. Either way
	// the victim's breaker must register the failures, and the
	// intervention must be attributed to the victim, not a survivor.
	st := cl.Stats()
	for _, be := range st.Backends {
		if be.URL != pts2.URL {
			continue
		}
		if be.Opens == 0 && be.FailedOver == 0 {
			t.Errorf("killed backend shows no breaker opens and no failover; stats %+v", st)
		}
		if be.FailedOver+be.HedgeLosses == 0 {
			t.Errorf("death not attributed to the killed backend; stats %+v", st)
		}
	}

	// Disarm the straggler and push cheap cached traffic through the
	// measure family until the windows flush and the alert resolves.
	stragglerNS.Store(0)
	deadline = time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("latency fast-burn never resolved; last snapshot: %+v", slozSnapshot(t, ts0.URL))
		}
		postMeasureBody(t, ts0.URL, `{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`)
		lat := latencyStatus(slozSnapshot(t, ts0.URL))
		if lat == nil {
			t.Fatal("latency objective vanished")
		}
		if lat.AlertState == "resolved" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Federated continuous profiling: two harvests bracketing study
	// traffic must produce a non-empty fleet-merged allocation diff.
	mon := monitor.New([]string{ts1.URL}, monitor.Options{
		Interval:       time.Second,
		Seed:           7,
		ProfileEvery:   1,
		ProfileSeconds: 1,
	})
	waitHarvest := func(n int64) {
		t.Helper()
		end := time.Now().Add(15 * time.Second)
		for mon.Harvests() < n {
			if time.Now().After(end) {
				t.Fatalf("harvest %d never completed; fleet err: %v", n, mon.ProfileFleet().LastError(ts1.URL))
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	mon.Sweep(ctx)
	waitHarvest(1)
	// Allocation churn between captures so the diff has content. Heap
	// profiles sample allocation sites (~512KB granularity), so one
	// round of churn may not register; keep harvesting over fresh churn
	// until a delta shows up.
	diffDeadline := time.Now().Add(30 * time.Second)
	harvests := int64(1)
	for len(mon.ProfileFleet().MergedAllocDelta()) == 0 {
		if time.Now().After(diffDeadline) {
			t.Fatal("federated profile diff still empty after repeated harvests")
		}
		for i := 0; i < 100; i++ {
			getBody(t, ts1.URL+"/v1/experiments")
		}
		mon.Sweep(ctx)
		harvests++
		waitHarvest(harvests)
	}
}
