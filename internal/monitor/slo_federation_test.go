package monitor_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/monitor"
	"repro/internal/service"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// sloBackendOptions compresses the SLO windows so federation tests can
// observe budget state without waiting on production window lengths.
func sloBackendOptions() service.Options {
	return service.Options{
		Seed: 42,
		SLO: &slo.Config{
			Objectives: []slo.Objective{
				{Name: service.SLOLatency, Kind: slo.KindLatency, Target: 0.99, LatencyThreshold: 2 * time.Second},
				{Name: service.SLOAvailability, Kind: slo.KindAvailability, Target: 0.95},
			},
			Resolution:   10 * time.Millisecond,
			BudgetWindow: time.Minute,
			FastShort:    50 * time.Millisecond,
			FastLong:     200 * time.Millisecond,
			SlowShort:    time.Second,
			SlowLong:     2 * time.Second,
		},
	}
}

// TestSLOGaugesFederateToSnapshotAndDashboard: slo_* gauges exposed on a
// backend's /metricsz ride the ordinary scrape into per-backend SLO
// statuses and error-budget gauges on the dashboard — no SLO-specific
// scrape code involved.
func TestSLOGaugesFederateToSnapshotAndDashboard(t *testing.T) {
	_, ts, _ := newBackend(t, sloBackendOptions())

	// Healthy traffic only: budget should stay intact.
	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/v1/experiments")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	mon := monitor.New([]string{ts.URL}, monitor.Options{Interval: time.Second, Seed: 7})
	ctx := context.Background()
	mon.Sweep(ctx)
	time.Sleep(30 * time.Millisecond) // let the SLO clock tick past the traffic
	mon.Sweep(ctx)

	snap := mon.Snapshot()
	if len(snap.Backends) != 1 {
		t.Fatalf("backends = %d, want 1", len(snap.Backends))
	}
	slos := snap.Backends[0].SLOs
	if len(slos) == 0 {
		t.Fatalf("no SLO statuses federated; series keys: %v", mon.SeriesKeys(ts.URL))
	}
	byName := map[string]monitor.SLOStatus{}
	for _, s := range slos {
		byName[s.Objective] = s
	}
	avail, ok := byName[service.SLOAvailability]
	if !ok {
		t.Fatalf("availability objective missing from federated statuses: %+v", slos)
	}
	if avail.BudgetRemaining < 0.99 {
		t.Fatalf("healthy backend burned budget: %+v", avail)
	}
	if avail.AlertState != "inactive" {
		t.Fatalf("healthy backend alert state = %q, want inactive", avail.AlertState)
	}
	if _, ok := byName[service.SLOLatency]; !ok {
		t.Fatalf("latency objective missing: %+v", slos)
	}

	// The dashboard renders the federated statuses as budget gauges.
	rec := httptest.NewRecorder()
	mon.DashboardHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/dashboard", nil))
	page := rec.Body.String()
	for _, want := range []string{"Service objectives", "error budget", `class="gauge `, service.SLOAvailability} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}

// TestFleetProfilingFederates: with ProfileEvery set, a sweep kicks an
// async pprof harvest whose derived series land in the store, the
// snapshot carries per-backend profile reports, and the dashboard grows
// a continuous-profiling panel.
func TestFleetProfilingFederates(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU profile window needs ~1s wall clock")
	}
	srv := service.NewServer(service.Options{Seed: 42})
	defer srv.Drain()
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/debug/pprof/", service.PprofHandler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	mon := monitor.New([]string{ts.URL}, monitor.Options{
		Interval:       time.Second,
		Seed:           7,
		ProfileEvery:   1,
		ProfileSeconds: 1,
	})
	if mon.ProfileFleet() == nil {
		t.Fatal("ProfileEvery set but fleet is nil")
	}
	ctx := context.Background()
	mon.Sweep(ctx)
	deadline := time.Now().Add(15 * time.Second)
	for mon.Harvests() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no harvest completed; fleet err: %v", mon.ProfileFleet().LastError(ts.URL))
		}
		time.Sleep(50 * time.Millisecond)
	}

	mon.Sweep(ctx) // fold the freshly pushed profile_* series into the snapshot
	keys := mon.SeriesKeys(ts.URL)
	var sawHeap bool
	for _, k := range keys {
		if k == "profile_heap_inuse_bytes" {
			sawHeap = true
		}
	}
	if !sawHeap {
		t.Fatalf("profile_heap_inuse_bytes not in store; keys: %v", keys)
	}

	snap := mon.Snapshot()
	if len(snap.Profiles) == 0 {
		t.Fatal("snapshot carries no profile reports")
	}
	pr := snap.Profiles[0]
	if pr.Err != "" {
		t.Fatalf("harvest error: %s", pr.Err)
	}
	if pr.HeapInuse <= 0 {
		t.Fatalf("heap inuse not captured: %+v", pr)
	}

	rec := httptest.NewRecorder()
	mon.DashboardHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/dashboard", nil))
	if !strings.Contains(rec.Body.String(), "Continuous profiling") {
		t.Fatal("dashboard missing profiling panel")
	}
}

// TestCSVBytesUnchangedBySLOAndProfiling is this PR's golden guard:
// with SLO engines, tail-sampled tracers, the scrape federation loop,
// AND the fleet profiler's pprof harvests all running against live
// backends, a full seed-42 study through the cluster still produces
// CSVs byte-identical to the committed dataset — objectives and
// profiling must observe the serving plane without perturbing the
// measured bits.
func TestCSVBytesUnchangedBySLOAndProfiling(t *testing.T) {
	if testing.Short() {
		t.Skip("full-study golden guard; skipped in -short")
	}
	newObservedBackend := func() *httptest.Server {
		opts := sloBackendOptions()
		opts.TailSampling = &telemetry.TailPolicy{
			SlowSpan: 50 * time.Millisecond, KeepErrors: true, SampleRate: 0.05,
		}
		srv := service.NewServer(opts)
		t.Cleanup(srv.Drain)
		mux := http.NewServeMux()
		mux.Handle("/", srv.Handler())
		mux.Handle("/debug/pprof/", service.PprofHandler())
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	ts0 := newObservedBackend()
	ts1 := newObservedBackend()

	mon := monitor.New([]string{ts0.URL, ts1.URL}, monitor.Options{
		Interval:       30 * time.Millisecond,
		Jitter:         time.Millisecond,
		Timeout:        2 * time.Second,
		Seed:           7,
		ProfileEvery:   2,
		ProfileSeconds: 1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mon.Start(ctx)

	cl, err := cluster.New([]string{ts0.URL, ts1.URL}, cluster.Options{Seed: seedPtr(42)})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cl.Reference(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mbuf, abuf bytes.Buffer
	if err := experiments.StreamMeasurementsCSVFrom(ctx, cl, ref, nil, &mbuf, 0); err != nil {
		t.Fatal(err)
	}
	if err := experiments.StreamAggregatesCSVFrom(ctx, cl, ref, nil, &abuf, 0); err != nil {
		t.Fatal(err)
	}

	if mon.Sweeps() == 0 {
		t.Fatal("monitor never swept during the study; the guard proved nothing")
	}
	// The guard must have actually exercised the new machinery: SLO
	// engines fed by the study traffic, and at least one pprof harvest.
	for _, ts := range []*httptest.Server{ts0, ts1} {
		page := string(getBody(t, ts.URL+"/metricsz"))
		if !strings.Contains(page, "slo_error_budget_remaining{objective=") {
			t.Fatalf("%s ran without SLO gauges; the guard proved nothing", ts.URL)
		}
	}
	harvestWait := time.Now().Add(10 * time.Second)
	for mon.Harvests() == 0 {
		if time.Now().After(harvestWait) {
			t.Fatal("no profile harvest completed; the guard proved nothing")
		}
		time.Sleep(25 * time.Millisecond)
	}

	for file, got := range map[string][]byte{
		"measurements.csv": mbuf.Bytes(),
		"aggregates.csv":   abuf.Bytes(),
	} {
		want, err := os.ReadFile(filepath.Join("..", "..", "dataset", file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: study under SLO+profiling differs from committed dataset (%d vs %d bytes)",
				file, len(got), len(want))
		}
	}
}
