package native

import (
	"testing"

	"repro/internal/workload"
)

func TestRunsPerSuite(t *testing.T) {
	cases := map[string]int{
		"perlbench":    3, // SPEC prescribes three
		"gamess":       3,
		"blackscholes": 5, // the paper uses five for PARSEC
	}
	for name, want := range cases {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Runs(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: %d runs, want %d", name, got, want)
		}
	}
}

func TestRunsRejectsManaged(t *testing.T) {
	b, err := workload.ByName("sunflow")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Runs(b); err == nil {
		t.Fatal("managed benchmark accepted")
	}
}

func TestSpecSingleThreaded(t *testing.T) {
	b, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Spec(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if spec.AppThreads != 1 {
		t.Fatalf("AppThreads = %d, want 1", spec.AppThreads)
	}
	if spec.ServiceWork != 0 || spec.CoLocPenalty != 0 {
		t.Fatal("native spec must carry no runtime services")
	}
	if spec.Work != b.Instructions() {
		t.Fatal("native spec must carry the full instruction count")
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecScalableSizesToContexts(t *testing.T) {
	b, err := workload.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	for _, contexts := range []int{1, 2, 8} {
		spec, err := Spec(b, contexts)
		if err != nil {
			t.Fatal(err)
		}
		if spec.AppThreads != contexts {
			t.Fatalf("contexts %d: AppThreads = %d", contexts, spec.AppThreads)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	if _, err := Spec(nil, 4); err == nil {
		t.Fatal("nil benchmark accepted")
	}
	managed, err := workload.ByName("xalan")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Spec(managed, 4); err == nil {
		t.Fatal("managed benchmark accepted")
	}
	nat, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Spec(nat, 0); err == nil {
		t.Fatal("zero contexts accepted")
	}
	bad := *nat
	bad.ILP = 0
	if _, err := Spec(&bad, 4); err == nil {
		t.Fatal("invalid benchmark accepted")
	}
}

func TestJitterSmallerThanManaged(t *testing.T) {
	// Table 2: native run-to-run variation is several times smaller than
	// Java's. The constants must preserve that ordering.
	if RateJitterSD >= 0.02 {
		t.Fatalf("native rate jitter %v too large", RateJitterSD)
	}
}
