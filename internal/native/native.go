// Package native models the execution of ahead-of-time compiled
// workloads: SPEC CPU2006 binaries built with icc -o3 and PARSEC built
// with its gcc -O3 scripts (Section 2.1 of the paper). A native process
// simply presents the benchmark's own character to the machine — there
// are no runtime service threads, and run-to-run variation is small
// (Table 2 measures ~0.4% for native suites versus several percent for
// managed ones).
package native

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// RateJitterSD is the run-to-run execution-time variation of native
// code, chosen to reproduce Table 2's native confidence intervals.
const RateJitterSD = 0.004

// PowerJitterSD is the corresponding run-to-run power variation.
const PowerJitterSD = 0.035

// Runs returns the prescribed invocation count per suite: SPEC prescribes
// three executions; the paper uses five for PARSEC.
func Runs(b *workload.Benchmark) (int, error) {
	switch b.Suite {
	case workload.SPECInt, workload.SPECFP:
		return 3, nil
	case workload.PARSEC:
		return 5, nil
	default:
		return 0, fmt.Errorf("native: %s is not a native benchmark (suite %s)", b.Name, b.Suite)
	}
}

// Spec builds the machine execution spec for a native benchmark on a
// machine exposing the given number of hardware contexts.
func Spec(b *workload.Benchmark, contexts int) (sim.ExecSpec, error) {
	if b == nil {
		return sim.ExecSpec{}, errors.New("native: nil benchmark")
	}
	if b.Managed() {
		return sim.ExecSpec{}, fmt.Errorf("native: %s is a managed benchmark", b.Name)
	}
	if err := b.Validate(); err != nil {
		return sim.ExecSpec{}, err
	}
	if contexts < 1 {
		return sim.ExecSpec{}, errors.New("native: need at least one hardware context")
	}
	return sim.ExecSpec{
		Work:          b.Instructions(),
		AppThreads:    b.ThreadsOn(contexts),
		ParallelFrac:  b.ParallelFrac,
		SyncOverhead:  b.SyncOverhead,
		ILP:           b.ILP,
		MPKI:          b.MPKI,
		WorkingSetKB:  b.WorkingSetKB,
		MLPFactor:     b.MLPFactor,
		Activity:      b.Activity,
		BranchWeight:  b.BranchWeight,
		RateJitterSD:  RateJitterSD,
		PowerJitterSD: PowerJitterSD,
	}, nil
}
