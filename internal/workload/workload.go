// Package workload describes the paper's 61 benchmarks (Table 1): their
// suites, the four equally weighted groups, the published reference
// running times, and the synthetic execution characteristics that stand in
// for the real binaries.
//
// The paper draws its workloads from SPEC CPU2006, PARSEC, SPECjvm, two
// DaCapo releases, and pjbb2005 — proprietary suites we cannot ship. Each
// Benchmark therefore carries a behavioural descriptor (instruction-level
// parallelism, memory intensity, working set, parallel fraction, switching
// activity, and managed-runtime demands) distilled from the suites'
// published characterizations. DESIGN.md records this substitution; the
// simulator executes descriptors instead of binaries but exercises the
// same measurement pipeline.
package workload

import (
	"errors"
	"fmt"
)

// Group is one of the paper's four equally weighted workload groups.
type Group int

// The four groups of Section 2.1.
const (
	NativeNonScalable Group = iota
	NativeScalable
	JavaNonScalable
	JavaScalable
	numGroups
)

// Groups returns all four groups in the paper's order.
func Groups() []Group {
	return []Group{NativeNonScalable, NativeScalable, JavaNonScalable, JavaScalable}
}

// String returns the paper's name for the group.
func (g Group) String() string {
	switch g {
	case NativeNonScalable:
		return "Native Non-scalable"
	case NativeScalable:
		return "Native Scalable"
	case JavaNonScalable:
		return "Java Non-scalable"
	case JavaScalable:
		return "Java Scalable"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// Managed reports whether the group runs under the managed runtime.
func (g Group) Managed() bool { return g == JavaNonScalable || g == JavaScalable }

// Scalable reports whether the group's benchmarks scale with hardware
// contexts.
func (g Group) Scalable() bool { return g == NativeScalable || g == JavaScalable }

// Suite identifies the benchmark suite of origin, using the paper's
// abbreviations from Table 1.
type Suite string

// Suites of Table 1.
const (
	SPECInt  Suite = "SI" // SPEC CINT2006
	SPECFP   Suite = "SF" // SPEC CFP2006
	PARSEC   Suite = "PA" // PARSEC
	SPECjvm  Suite = "SJ" // SPECjvm98
	DaCapo06 Suite = "D6" // DaCapo 06-10-MR2
	DaCapo9  Suite = "D9" // DaCapo 9.12
	PJBB2005 Suite = "JB" // pjbb2005
)

// Benchmark is one entry of Table 1 plus the behavioural descriptor the
// simulator executes.
type Benchmark struct {
	Name        string
	Description string
	Suite       Suite
	Group       Group

	// RefSeconds is Table 1's reference running time, used by the
	// normalization methodology of Section 2.6.
	RefSeconds float64

	// Threads is the number of application threads the benchmark spawns:
	// 1 for single-threaded codes, a fixed small count for multithreaded
	// non-scalable codes, and 0 for scalable codes that size their pool
	// to the available hardware contexts.
	Threads int

	// ILP is the instruction-level parallelism the code exposes to the
	// issue logic: achieved instructions per cycle on an ideal memory
	// system for a wide out-of-order core.
	ILP float64

	// MPKI is the benchmark's misses per kilo-instruction past the
	// mid-level cache when the working set fits nowhere; the memory
	// model attenuates it by the cache share actually available.
	MPKI float64

	// WorkingSetKB is the benchmark's primary working-set size.
	WorkingSetKB float64

	// MLPFactor scales how much of the processor's memory-level
	// parallelism applies to this benchmark's misses: dependent
	// pointer-chasing misses (managed heaps, mcf) overlap poorly (<1),
	// streaming prefetchable misses overlap well (>1). Zero means 1.
	MLPFactor float64

	// ParallelFrac is the Amdahl parallel fraction (0 for single-threaded
	// codes; meaningful for multithreaded ones).
	ParallelFrac float64

	// SyncOverhead is the per-extra-context fractional throughput tax of
	// synchronization and load imbalance.
	SyncOverhead float64

	// Activity is the switching-activity factor driving dynamic power:
	// 1.0 switches the core's full dynamic capacitance every cycle.
	Activity float64

	// BranchWeight scales the microarchitecture's branch penalty: 1.0 is
	// heavily control-dependent integer code, 0 is straight-line float.
	BranchWeight float64

	// ServiceFrac is the fraction of total work executed by the managed
	// runtime's service threads (JIT, GC, profiling). Zero for native.
	ServiceFrac float64

	// AllocMBps is the steady-state allocation rate, driving GC
	// frequency in the managed-runtime model. Zero for native.
	AllocMBps float64

	// Displacement is the managed runtime's cache/TLB displacement
	// sensitivity: the slowdown the collector and JIT inflict when they
	// share a hardware context and its caches with the application
	// (db's DTLB behaviour in Section 3.1 is the extreme case).
	Displacement float64
}

// Managed reports whether the benchmark runs on the managed runtime.
func (b *Benchmark) Managed() bool { return b.Group.Managed() }

// ThreadsOn returns the number of application threads the benchmark runs
// with the given number of available hardware contexts.
func (b *Benchmark) ThreadsOn(contexts int) int {
	if contexts < 1 {
		return 0
	}
	if b.Threads == 0 { // scalable: one worker per context
		return contexts
	}
	return b.Threads
}

// Validate checks descriptor invariants; the suite data is static, but
// user-constructed benchmarks (tests, examples) go through the same gate.
func (b *Benchmark) Validate() error {
	switch {
	case b.Name == "":
		return errors.New("workload: benchmark needs a name")
	case b.RefSeconds <= 0:
		return fmt.Errorf("workload: %s: reference time must be positive", b.Name)
	case b.Threads < 0:
		return fmt.Errorf("workload: %s: negative thread count", b.Name)
	case b.ILP <= 0:
		return fmt.Errorf("workload: %s: ILP must be positive", b.Name)
	case b.MPKI < 0:
		return fmt.Errorf("workload: %s: negative MPKI", b.Name)
	case b.WorkingSetKB <= 0:
		return fmt.Errorf("workload: %s: working set must be positive", b.Name)
	case b.ParallelFrac < 0 || b.ParallelFrac > 1:
		return fmt.Errorf("workload: %s: parallel fraction outside [0,1]", b.Name)
	case b.Activity <= 0 || b.Activity > 1.2:
		return fmt.Errorf("workload: %s: activity outside (0, 1.2]", b.Name)
	case b.Group.Managed() && b.ServiceFrac <= 0:
		return fmt.Errorf("workload: %s: managed benchmark needs a service fraction", b.Name)
	case !b.Group.Managed() && (b.ServiceFrac != 0 || b.AllocMBps != 0 || b.Displacement != 0):
		return fmt.Errorf("workload: %s: native benchmark with managed-runtime fields", b.Name)
	}
	return nil
}

// Instructions returns the benchmark's total dynamic instruction count in
// the model's units. It is defined so that a nominal 1-instruction-per-
// cycle machine at 1 GHz would run for RefSeconds: normalization divides
// reference time back out, so only consistency matters, not the constant.
func (b *Benchmark) Instructions() float64 {
	const nominalRate = 1e9
	return b.RefSeconds * nominalRate
}
