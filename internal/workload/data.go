package workload

import (
	"fmt"
	"sync"
)

// allTemplate memoizes the validated Table 1 suite: the construction —
// 61 literals plus validation — runs once per process, and All hands out
// fresh value copies of the template, preserving the caller-isolation
// contract (a Benchmark is a flat value type, so a struct copy is a deep
// copy). byNameIdx maps names into the template for O(1) ByName.
var (
	allOnce     sync.Once
	allTemplate []Benchmark
	byNameIdx   map[string]int
)

func allInit() {
	allOnce.Do(func() {
		bs := buildAll()
		allTemplate = make([]Benchmark, len(bs))
		byNameIdx = make(map[string]int, len(bs))
		for i, b := range bs {
			allTemplate[i] = *b
			byNameIdx[b.Name] = i
		}
	})
}

// All returns the 61 benchmarks of Table 1 in the paper's order. Callers
// receive fresh copies.
//
// The behavioural fields (ILP, MPKI, working set, parallel fraction,
// activity) are distilled from the suites' published characterizations:
// SPEC CPU2006's memory-bound outliers (mcf, lbm, libquantum, milc,
// GemsFDTD) carry the large working sets and high miss rates reported for
// them; PARSEC's scaling behaviour follows Bienia et al.'s technical
// report (scales to 8 contexts); DaCapo 9.12 carries larger working sets
// than SPECjvm98 per Blackburn et al.; the managed-runtime fields
// (ServiceFrac, AllocMBps, Displacement) encode the JVM behaviour the
// paper isolates in Section 3.1 (antlr spends up to 50% of its time in
// the JVM; db's collector displacement dominates its DTLB behaviour).
func All() []*Benchmark {
	allInit()
	out := make([]*Benchmark, len(allTemplate))
	for i := range allTemplate {
		b := allTemplate[i]
		out[i] = &b
	}
	return out
}

// buildAll constructs and validates the suite; it runs once (see allInit).
func buildAll() []*Benchmark {
	bs := make([]*Benchmark, 0, 61)
	add := func(b Benchmark) {
		if err := b.Validate(); err != nil {
			panic(fmt.Sprintf("workload: invalid built-in benchmark: %v", err))
		}
		bs = append(bs, &b)
	}

	// --- Native Non-scalable: SPEC CINT2006 (12) ---------------------
	nn := func(name string, suite Suite, ref, ilp, mpki, wsKB, act, br, mlp float64, desc string) {
		add(Benchmark{
			Name: name, Description: desc, Suite: suite,
			Group: NativeNonScalable, RefSeconds: ref, Threads: 1,
			ILP: ilp, MPKI: mpki, WorkingSetKB: wsKB, MLPFactor: mlp,
			Activity: act, BranchWeight: br,
		})
	}
	nn("perlbench", SPECInt, 1037, 1.8, 1.0, 25<<10, 0.64, 0.90, 1.0, "Perl programming language")
	nn("bzip2", SPECInt, 1563, 1.6, 3.0, 8<<10, 0.62, 0.70, 1.0, "bzip2 compression")
	nn("gcc", SPECInt, 851, 1.4, 5.5, 80<<10, 0.60, 0.90, 1.0, "C optimizing compiler")
	nn("mcf", SPECInt, 894, 0.9, 30, 400<<10, 0.52, 0.60, 0.55, "Combinatorial opt / vehicle scheduling")
	nn("gobmk", SPECInt, 1113, 1.3, 0.8, 25<<10, 0.64, 1.00, 1.0, "AI: Go game")
	nn("hmmer", SPECInt, 1024, 2.2, 0.4, 20<<10, 0.70, 0.30, 1.0, "Gene sequence database search")
	nn("sjeng", SPECInt, 1315, 1.4, 0.5, 170<<10, 0.64, 0.90, 1.0, "AI: tree search & pattern recognition")
	nn("libquantum", SPECInt, 629, 1.5, 25, 64<<10, 0.55, 0.40, 1.35, "Physics / quantum computing")
	nn("h264ref", SPECInt, 1533, 2.0, 0.6, 25<<10, 0.72, 0.50, 1.0, "H.264/AVC video compression")
	nn("omnetpp", SPECInt, 905, 1.1, 12, 150<<10, 0.50, 0.80, 0.7, "Ethernet network simulation (OMNeT++)")
	nn("astar", SPECInt, 1154, 1.2, 8, 180<<10, 0.58, 0.70, 0.75, "Portable 2D path-finding library")
	nn("xalancbmk", SPECInt, 787, 1.4, 10, 190<<10, 0.60, 0.90, 0.8, "XSLT processor for XML transformation")

	// --- Native Non-scalable: SPEC CFP2006 (15) ----------------------
	nn("gamess", SPECFP, 3505, 2.2, 0.2, 1<<10, 0.72, 0.20, 1.0, "Quantum chemical computations")
	nn("milc", SPECFP, 640, 1.3, 16, 680<<10, 0.60, 0.15, 1.25, "Physics / quantum chromodynamics")
	nn("zeusmp", SPECFP, 1541, 1.8, 5, 500<<10, 0.68, 0.20, 1.15, "Physics / magnetohydrodynamics (ZEUS-MP)")
	nn("gromacs", SPECFP, 983, 2.0, 0.7, 14<<10, 0.72, 0.25, 1.0, "Molecular dynamics simulation")
	nn("cactusADM", SPECFP, 1994, 1.7, 5, 700<<10, 0.66, 0.10, 1.15, "Cactus/BenchADM relativity kernels")
	nn("leslie3d", SPECFP, 1512, 1.8, 8, 120<<10, 0.66, 0.15, 1.2, "Linear-Eddy Model 3D fluid dynamics")
	nn("namd", SPECFP, 1225, 2.2, 0.3, 46<<10, 0.74, 0.20, 1.0, "Parallel biomolecular simulation")
	nn("dealII", SPECFP, 832, 1.9, 1.5, 120<<10, 0.68, 0.40, 1.0, "Adaptive finite element PDE solver")
	nn("soplex", SPECFP, 1024, 1.2, 12, 250<<10, 0.58, 0.50, 1.0, "Simplex linear program solver")
	nn("povray", SPECFP, 636, 1.9, 0.1, 3<<10, 0.72, 0.60, 1.0, "Ray-tracer")
	nn("calculix", SPECFP, 1130, 2.1, 1.0, 60<<10, 0.70, 0.30, 1.0, "Finite element structural application")
	nn("GemsFDTD", SPECFP, 1648, 1.6, 10, 800<<10, 0.62, 0.15, 1.2, "Maxwell equations in 3D, time domain")
	nn("tonto", SPECFP, 1439, 1.8, 1.2, 45<<10, 0.70, 0.30, 1.0, "Quantum crystallography")
	nn("lbm", SPECFP, 1298, 1.6, 20, 400<<10, 0.60, 0.05, 1.35, "Lattice Boltzmann incompressible fluids")
	nn("sphinx3", SPECFP, 2007, 1.7, 3.5, 180<<10, 0.66, 0.40, 1.0, "Speech recognition")

	// --- Native Scalable: PARSEC (11) --------------------------------
	ns := func(name string, ref, ilp, mpki, wsKB, pf, sync, act float64, desc string) {
		add(Benchmark{
			Name: name, Description: desc, Suite: PARSEC,
			Group: NativeScalable, RefSeconds: ref, Threads: 0,
			ILP: ilp, MPKI: mpki, WorkingSetKB: wsKB, MLPFactor: 1.1,
			ParallelFrac: pf, SyncOverhead: sync,
			Activity: act, BranchWeight: 0.35,
		})
	}
	ns("blackscholes", 482, 2.0, 0.15, 2<<10, 0.960, 0.015, 0.88, "Prices options with Black-Scholes PDE")
	ns("bodytrack", 471, 1.8, 0.6, 8<<10, 0.930, 0.045, 0.86, "Tracks a markerless human body")
	ns("canneal", 301, 1.1, 5.5, 96<<10, 0.890, 0.045, 0.80, "Cache-aware simulated annealing for routing")
	ns("facesim", 1230, 1.8, 1.6, 64<<10, 0.920, 0.045, 0.90, "Simulates human face motions")
	ns("ferret", 738, 1.7, 1.2, 64<<10, 0.940, 0.038, 0.90, "Image search")
	ns("fluidanimate", 812, 1.9, 0.8, 128<<10, 0.930, 0.038, 1.00, "SPH fluid physics for realtime animation")
	ns("raytrace", 1970, 1.8, 0.4, 128<<10, 0.940, 0.030, 0.90, "Physical simulation for visualization")
	ns("streamcluster", 629, 1.4, 4.0, 110<<10, 0.920, 0.038, 0.84, "Online clustering of a data stream")
	ns("swaptions", 612, 2.1, 0.1, 1<<10, 0.965, 0.015, 0.94, "Prices swaptions (Heath-Jarrow-Morton)")
	ns("vips", 297, 1.8, 0.8, 16<<10, 0.930, 0.038, 0.90, "Applies transformations to an image")
	ns("x264", 265, 2.0, 0.4, 16<<10, 0.910, 0.045, 0.94, "MPEG-4 AVC / H.264 video encoder")

	// --- Java Non-scalable (18) ---------------------------------------
	// Single-threaded benchmarks carry the JVM-induced parallelism the
	// paper measures in Figure 6 via ServiceFrac and Displacement.
	jn := func(name string, suite Suite, ref float64, threads int, ilp, mpki, wsKB, pf, act, sf, alloc, disp float64, desc string) {
		add(Benchmark{
			Name: name, Description: desc, Suite: suite,
			Group: JavaNonScalable, RefSeconds: ref, Threads: threads,
			ILP: ilp, MPKI: mpki, WorkingSetKB: wsKB, MLPFactor: 0.55,
			ParallelFrac: pf, SyncOverhead: 0.03,
			Activity: act, BranchWeight: 0.75,
			ServiceFrac: sf, AllocMBps: alloc, Displacement: disp,
		})
	}
	jn("compress", SPECjvm, 5.3, 1, 1.7, 2.2, 100, 0, 0.84, 0.02, 20, 0.02, "Lempel-Ziv compression")
	jn("jess", SPECjvm, 1.4, 1, 1.4, 1.4, 2<<10, 0, 0.82, 0.06, 250, 0.04, "Java expert system shell")
	jn("db", SPECjvm, 6.8, 1, 1.0, 12, 16<<10, 0, 0.74, 0.05, 80, 0.25, "Small data management program")
	jn("javac", SPECjvm, 3.0, 1, 1.4, 3.5, 8<<10, 0, 0.80, 0.05, 200, 0.03, "The JDK 1.0.2 Java compiler")
	jn("mpegaudio", SPECjvm, 3.1, 1, 2.0, 0.45, 600, 0, 0.86, 0.01, 10, 0.01, "MPEG-3 audio stream decoder")
	jn("mtrt", SPECjvm, 0.8, 2, 1.6, 1.7, 4<<10, 0.65, 0.86, 0.08, 300, 0.04, "Dual-threaded raytracer")
	jn("jack", SPECjvm, 2.4, 1, 1.4, 1.4, 2<<10, 0, 0.82, 0.10, 270, 0.08, "Parser generator with lexical analysis")
	jn("antlr", DaCapo06, 2.9, 1, 1.3, 2.9, 4<<10, 0, 0.80, 0.30, 390, 0.12, "Parser and translator generator")
	jn("bloat", DaCapo06, 7.6, 1, 1.2, 4.2, 12<<10, 0, 0.78, 0.08, 320, 0.06, "Java bytecode optimization and analysis")
	jn("avrora", DaCapo9, 11.3, 6, 1.2, 1.4, 1<<10, 0.40, 0.80, 0.06, 60, 0.03, "Simulates the AVR microcontroller")
	jn("batik", DaCapo9, 4.0, 2, 1.5, 2.9, 32<<10, 0.20, 0.82, 0.08, 180, 0.05, "Scalable Vector Graphics (SVG) toolkit")
	jn("fop", DaCapo9, 1.8, 1, 1.3, 4.2, 24<<10, 0, 0.80, 0.15, 340, 0.08, "Output-independent print formatter")
	jn("h2", DaCapo9, 14.4, 4, 1.1, 10, 500<<10, 0.10, 0.76, 0.07, 450, 0.06, "An SQL relational database engine in Java")
	jn("jython", DaCapo9, 8.5, 2, 1.3, 3.5, 24<<10, 0.45, 0.80, 0.09, 520, 0.05, "Python interpreter in Java")
	jn("pmd", DaCapo9, 6.9, 4, 1.3, 5.8, 48<<10, 0.25, 0.78, 0.09, 380, 0.06, "Source code analyzer for Java")
	jn("tradebeans", DaCapo9, 18.4, 8, 1.2, 8.3, 200<<10, 0.55, 0.76, 0.08, 270, 0.05, "Tradebeans Daytrader benchmark")
	jn("luindex", DaCapo9, 2.4, 1, 1.4, 2.9, 16<<10, 0, 0.82, 0.20, 290, 0.10, "A text indexing tool")
	jn("pjbb2005", PJBB2005, 10.6, 8, 1.3, 9.6, 400<<10, 0.70, 0.80, 0.08, 600, 0.05, "Transaction processing (SPECjbb2005, fixed workload)")

	// --- Java Scalable: DaCapo 9.12 (5) -------------------------------
	js := func(name string, ref float64, ilp, mpki, wsKB, pf, act, sf, alloc float64, desc string) {
		add(Benchmark{
			Name: name, Description: desc, Suite: DaCapo9,
			Group: JavaScalable, RefSeconds: ref, Threads: 0,
			ILP: ilp, MPKI: mpki, WorkingSetKB: wsKB, MLPFactor: 0.55,
			ParallelFrac: pf, SyncOverhead: 0.02,
			Activity: act, BranchWeight: 0.75,
			ServiceFrac: sf, AllocMBps: alloc, Displacement: 0.05,
		})
	}
	js("eclipse", 50.5, 1.3, 5.8, 200<<10, 0.722, 0.92, 0.10, 380, "Integrated development environment")
	js("lusearch", 7.9, 1.4, 7, 32<<10, 0.838, 0.96, 0.10, 2300, "Text search tool")
	js("sunflow", 19.4, 1.7, 2.9, 16<<10, 0.958, 1.00, 0.08, 1100, "Photo-realistic rendering system")
	js("tomcat", 8.6, 1.3, 5.8, 64<<10, 0.894, 0.92, 0.10, 420, "Tomcat servlet container")
	js("xalan", 6.9, 1.4, 8.3, 48<<10, 0.937, 0.96, 0.10, 830, "XSLT processor for XML documents")

	return bs
}

// ByName returns the benchmark with the given name.
func ByName(name string) (*Benchmark, error) {
	allInit()
	i, ok := byNameIdx[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	b := allTemplate[i]
	return &b, nil
}

// ByGroup returns the benchmarks of one group, in Table 1 order.
func ByGroup(g Group) []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.Group == g {
			out = append(out, b)
		}
	}
	return out
}

// GroupSizes returns the benchmark count per group: 27, 11, 18, and 5 in
// the paper.
func GroupSizes() map[Group]int {
	sizes := make(map[Group]int, 4)
	for _, b := range All() {
		sizes[b.Group]++
	}
	return sizes
}

// MultithreadedJava returns the 13 multithreaded Java benchmarks whose
// scalability Figure 1 plots, in the figure's descending order.
func MultithreadedJava() []*Benchmark {
	names := []string{
		"sunflow", "xalan", "tomcat", "lusearch", "eclipse",
		"pjbb2005", "mtrt", "tradebeans", "jython", "avrora",
		"batik", "pmd", "h2",
	}
	out := make([]*Benchmark, 0, len(names))
	for _, n := range names {
		b, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, b)
	}
	return out
}

// SingleThreadedJava returns the single-threaded Java benchmarks whose
// CMP behaviour Figure 6 plots, in the figure's order.
func SingleThreadedJava() []*Benchmark {
	names := []string{
		"antlr", "luindex", "fop", "jack", "db",
		"bloat", "jess", "compress", "mpegaudio", "javac",
	}
	out := make([]*Benchmark, 0, len(names))
	for _, n := range names {
		b, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, b)
	}
	return out
}

// Suites returns the seven suite tags of Table 1 in its order.
func Suites() []Suite {
	return []Suite{SPECInt, SPECFP, PARSEC, SPECjvm, DaCapo06, DaCapo9, PJBB2005}
}

// SuiteName returns the full name of a suite abbreviation.
func SuiteName(s Suite) string {
	switch s {
	case SPECInt:
		return "SPEC CINT2006"
	case SPECFP:
		return "SPEC CFP2006"
	case PARSEC:
		return "PARSEC"
	case SPECjvm:
		return "SPECjvm98"
	case DaCapo06:
		return "DaCapo 06-10-MR2"
	case DaCapo9:
		return "DaCapo 9.12"
	case PJBB2005:
		return "pjbb2005"
	default:
		return string(s)
	}
}

// BySuite returns the benchmarks drawn from one suite, in Table 1 order.
func BySuite(s Suite) []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.Suite == s {
			out = append(out, b)
		}
	}
	return out
}

// Exclusion records a benchmark the paper considered but excluded from
// Table 1, and why — part of the suite-construction methodology of
// Section 2.1.
type Exclusion struct {
	Name   string
	Suite  Suite
	Reason string
}

// Exclusions returns the benchmarks the paper excluded. They are not
// runnable here (matching the paper), but the catalog documents the
// workload's construction.
func Exclusions() []Exclusion {
	return []Exclusion{
		{"410.bwaves", SPECFP, "failed to execute when compiled with the Intel compiler"},
		{"481.wrf", SPECFP, "failed to execute when compiled with the Intel compiler"},
		{"freqmine", PARSEC, "not amenable to the scaling experiments (does not use POSIX threads)"},
		{"dedup", PARSEC, "working set exceeds the 2003 Pentium 4 machine's memory"},
		{"tradesoap", DaCapo9, "heavy socket use suffered timeouts on the slowest machines"},
	}
}
