package workload

import (
	"testing"
	"testing/quick"
)

func TestAllHas61Benchmarks(t *testing.T) {
	bs := All()
	if len(bs) != 61 {
		t.Fatalf("got %d benchmarks, want the paper's 61", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestGroupSizesMatchPaper(t *testing.T) {
	sizes := GroupSizes()
	want := map[Group]int{
		NativeNonScalable: 27, // 12 CINT + 15 CFP
		NativeScalable:    11, // PARSEC
		JavaNonScalable:   18,
		JavaScalable:      5,
	}
	for g, n := range want {
		if sizes[g] != n {
			t.Errorf("%s: %d benchmarks, want %d", g, sizes[g], n)
		}
	}
}

func TestAllValidate(t *testing.T) {
	for _, b := range All() {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestReferenceTimesMatchTable1(t *testing.T) {
	cases := map[string]float64{
		"perlbench": 1037, "bzip2": 1563, "gamess": 3505, "sphinx3": 2007,
		"blackscholes": 482, "x264": 265, "compress": 5.3, "mtrt": 0.8,
		"eclipse": 50.5, "xalan": 6.9, "pjbb2005": 10.6, "tradebeans": 18.4,
	}
	for name, ref := range cases {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.RefSeconds != ref {
			t.Errorf("%s: ref time %v, want %v", name, b.RefSeconds, ref)
		}
	}
}

func TestNativeRunsLongerThanManaged(t *testing.T) {
	// Section 2.6: native workloads execute far longer than managed ones
	// (more repetition, not more sophistication).
	var natMin, javaMax float64 = 1e18, 0
	for _, b := range All() {
		if b.Managed() {
			if b.RefSeconds > javaMax {
				javaMax = b.RefSeconds
			}
		} else if b.RefSeconds < natMin {
			natMin = b.RefSeconds
		}
	}
	if natMin < javaMax {
		t.Fatalf("shortest native (%vs) shorter than longest managed (%vs)", natMin, javaMax)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("doom3"); err == nil {
		t.Fatal("want error for unknown benchmark")
	}
}

func TestByGroupPartitionsAll(t *testing.T) {
	total := 0
	for _, g := range Groups() {
		total += len(ByGroup(g))
	}
	if total != 61 {
		t.Fatalf("groups cover %d benchmarks, want 61", total)
	}
}

func TestGroupPredicates(t *testing.T) {
	if !JavaScalable.Managed() || !JavaNonScalable.Managed() {
		t.Fatal("Java groups must be managed")
	}
	if NativeScalable.Managed() || NativeNonScalable.Managed() {
		t.Fatal("native groups must not be managed")
	}
	if !JavaScalable.Scalable() || !NativeScalable.Scalable() {
		t.Fatal("scalable groups must be scalable")
	}
	if JavaNonScalable.Scalable() || NativeNonScalable.Scalable() {
		t.Fatal("non-scalable groups must not be scalable")
	}
}

func TestGroupStrings(t *testing.T) {
	if NativeNonScalable.String() != "Native Non-scalable" {
		t.Fatalf("got %q", NativeNonScalable.String())
	}
	if got := Group(9).String(); got != "Group(9)" {
		t.Fatalf("got %q", got)
	}
}

func TestThreadsOn(t *testing.T) {
	scalable, err := ByName("sunflow")
	if err != nil {
		t.Fatal(err)
	}
	if got := scalable.ThreadsOn(8); got != 8 {
		t.Fatalf("scalable ThreadsOn(8) = %d, want 8", got)
	}
	st, err := ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.ThreadsOn(8); got != 1 {
		t.Fatalf("single-threaded ThreadsOn(8) = %d, want 1", got)
	}
	fixed, err := ByName("pjbb2005")
	if err != nil {
		t.Fatal(err)
	}
	if got := fixed.ThreadsOn(2); got != 8 {
		t.Fatalf("fixed-thread ThreadsOn(2) = %d, want 8 (threads oversubscribe)", got)
	}
	if got := st.ThreadsOn(0); got != 0 {
		t.Fatalf("ThreadsOn(0) = %d, want 0", got)
	}
}

func TestValidateRejectsBadDescriptors(t *testing.T) {
	good, err := ByName("sunflow")
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(b *Benchmark){
		func(b *Benchmark) { b.Name = "" },
		func(b *Benchmark) { b.RefSeconds = 0 },
		func(b *Benchmark) { b.Threads = -1 },
		func(b *Benchmark) { b.ILP = 0 },
		func(b *Benchmark) { b.MPKI = -1 },
		func(b *Benchmark) { b.WorkingSetKB = 0 },
		func(b *Benchmark) { b.ParallelFrac = 1.5 },
		func(b *Benchmark) { b.Activity = 0 },
		func(b *Benchmark) { b.ServiceFrac = 0 }, // managed without service
	}
	for i, mutate := range cases {
		cp := *good
		mutate(&cp)
		if err := cp.Validate(); err == nil {
			t.Errorf("case %d: mutation passed validation", i)
		}
	}
	// Native benchmark with managed fields must fail.
	nat, err := ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	cp := *nat
	cp.ServiceFrac = 0.1
	if err := cp.Validate(); err == nil {
		t.Fatal("native benchmark with ServiceFrac passed validation")
	}
}

func TestManagedBenchmarksHaveRuntimeDemands(t *testing.T) {
	for _, b := range All() {
		if b.Managed() {
			if b.ServiceFrac <= 0 || b.AllocMBps <= 0 {
				t.Errorf("%s: managed benchmark missing runtime demands", b.Name)
			}
		} else if b.ServiceFrac != 0 || b.AllocMBps != 0 || b.Displacement != 0 {
			t.Errorf("%s: native benchmark has runtime fields", b.Name)
		}
	}
}

func TestScalableBenchmarksDeclareParallelism(t *testing.T) {
	for _, b := range All() {
		if b.Group.Scalable() {
			if b.Threads != 0 {
				t.Errorf("%s: scalable benchmark with fixed threads", b.Name)
			}
			if b.ParallelFrac < 0.7 {
				t.Errorf("%s: scalable benchmark with parallel fraction %v", b.Name, b.ParallelFrac)
			}
		}
	}
	// Native non-scalable are strictly single-threaded (Section 2.1).
	for _, b := range ByGroup(NativeNonScalable) {
		if b.Threads != 1 {
			t.Errorf("%s: native non-scalable must be single-threaded", b.Name)
		}
	}
}

func TestFigureBenchmarkLists(t *testing.T) {
	mt := MultithreadedJava()
	if len(mt) != 13 {
		t.Fatalf("Figure 1 list has %d benchmarks, want 13", len(mt))
	}
	for _, b := range mt {
		if !b.Managed() {
			t.Errorf("%s in Figure 1 list is not Java", b.Name)
		}
		if b.Threads == 1 {
			t.Errorf("%s in Figure 1 list is single-threaded", b.Name)
		}
	}
	st := SingleThreadedJava()
	if len(st) != 10 {
		t.Fatalf("Figure 6 list has %d benchmarks, want 10", len(st))
	}
	for _, b := range st {
		if b.Threads != 1 || !b.Managed() {
			t.Errorf("%s in Figure 6 list is not single-threaded Java", b.Name)
		}
	}
}

func TestInstructionsProportionalToRefTime(t *testing.T) {
	a, err := ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("db")
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Instructions() / a.RefSeconds
	rb := b.Instructions() / b.RefSeconds
	if ra != rb {
		t.Fatalf("instruction rate constant differs: %v vs %v", ra, rb)
	}
}

// Property: All returns deep-enough copies that callers cannot corrupt the
// suite data.
func TestQuickAllIsolation(t *testing.T) {
	f := func(idx uint8) bool {
		bs := All()
		i := int(idx) % len(bs)
		orig := *bs[i]
		bs[i].RefSeconds = -1
		bs[i].Name = "corrupted"
		fresh := All()
		return *fresh[i] == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSuitesPartitionTable1(t *testing.T) {
	wantCounts := map[Suite]int{
		SPECInt: 12, SPECFP: 15, PARSEC: 11,
		SPECjvm: 7, DaCapo06: 2, DaCapo9: 13, PJBB2005: 1,
	}
	total := 0
	for _, s := range Suites() {
		got := len(BySuite(s))
		if got != wantCounts[s] {
			t.Errorf("%s (%s): %d benchmarks, want %d", s, SuiteName(s), got, wantCounts[s])
		}
		total += got
	}
	if total != 61 {
		t.Fatalf("suites cover %d benchmarks, want 61", total)
	}
	for _, s := range Suites() {
		if SuiteName(s) == string(s) {
			t.Errorf("suite %s has no full name", s)
		}
	}
	if SuiteName(Suite("zz")) != "zz" {
		t.Error("unknown suite not passed through")
	}
}

func TestExclusionsDocumented(t *testing.T) {
	ex := Exclusions()
	if len(ex) != 5 {
		t.Fatalf("%d exclusions, want the paper's 5", len(ex))
	}
	for _, e := range ex {
		if e.Reason == "" {
			t.Errorf("%s: exclusion without a reason", e.Name)
		}
		// Excluded benchmarks must not be in the runnable suite.
		if _, err := ByName(e.Name); err == nil {
			t.Errorf("%s: excluded benchmark present in Table 1", e.Name)
		}
	}
}

func TestDescriptionsComplete(t *testing.T) {
	for _, b := range All() {
		if b.Description == "" {
			t.Errorf("%s: missing description", b.Name)
		}
	}
}
