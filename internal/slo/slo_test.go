package slo

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/telemetry"
)

// clock is a fake time source the tests advance by hand.
type clock struct{ t time.Time }

func (c *clock) now() time.Time       { return c.t }
func (c *clock) step(d time.Duration) { c.t = c.t.Add(d) }

func testConfig(clk *clock, objs ...Objective) Config {
	return Config{
		Objectives:   objs,
		Resolution:   time.Second,
		BudgetWindow: 2 * time.Minute,
		FastShort:    5 * time.Second,
		FastLong:     20 * time.Second,
		SlowShort:    40 * time.Second,
		SlowLong:     80 * time.Second,
		FastBurn:     10,
		SlowBurn:     1,
		For:          2,
		Clear:        2,
		ExemplarCap:  4,
		Now:          clk.now,
	}
}

func latencyObjective() Objective {
	return Objective{
		Name:             "measure-latency",
		Kind:             KindLatency,
		Target:           0.99,
		LatencyThreshold: 50 * time.Millisecond,
	}
}

func findAlert(alerts []monitor.Alert, target, rule string) (monitor.Alert, bool) {
	for _, a := range alerts {
		if a.Backend == target && a.Rule == rule {
			return a, true
		}
	}
	return monitor.Alert{}, false
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Objectives: []Objective{{Name: "x", Target: 1.5}}}); err == nil {
		t.Fatal("target outside (0,1) accepted")
	}
	if _, err := New(Config{Objectives: []Objective{
		{Name: "x", Target: 0.9}, {Name: "x", Target: 0.9},
	}}); err == nil {
		t.Fatal("duplicate objective accepted")
	}
}

// TestBurnRateLifecycle drives the latency SLO through the full alert
// lifecycle: healthy traffic (inactive), a sustained all-bad episode
// (pending, then firing with exemplars), then recovery (resolved).
func TestBurnRateLifecycle(t *testing.T) {
	clk := &clock{t: time.Unix(1_754_000_000, 0)}
	e, err := New(testConfig(clk, latencyObjective()))
	if err != nil {
		t.Fatal(err)
	}

	// Healthy phase: 10 ticks of fast requests.
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			e.ObserveLatency("measure-latency", 5*time.Millisecond, telemetry.TraceID(1000+uint64(i*20+j)))
		}
		clk.step(time.Second)
		e.Advance(clk.t)
	}
	snap := e.Snapshot(clk.t)
	if got := snap.Objectives[0].AlertState; got != "inactive" {
		t.Fatalf("healthy traffic left alert state %q", got)
	}
	if snap.Objectives[0].Burn.Fast != 0 {
		t.Fatalf("healthy fast burn = %v", snap.Objectives[0].Burn.Fast)
	}
	if snap.Objectives[0].BudgetRemaining != 1 {
		t.Fatalf("healthy budget = %v", snap.Objectives[0].BudgetRemaining)
	}

	// Breach phase: every request blows the threshold. Burn over any
	// window climbs to 1/(1-0.99) = 100 >> the fast threshold of 10.
	var pendingSeen, firingSeen bool
	for i := 0; i < 25; i++ {
		for j := 0; j < 20; j++ {
			e.ObserveLatency("measure-latency", 400*time.Millisecond, telemetry.TraceID(0xabc000+uint64(i*20+j)))
		}
		clk.step(time.Second)
		e.Advance(clk.t)
		if a, ok := findAlert(e.Alerts(), "measure-latency", RuleFastBurn); ok {
			switch a.State {
			case monitor.StatePending:
				pendingSeen = true
			case monitor.StateFiring:
				firingSeen = true
			}
		}
	}
	if !pendingSeen || !firingSeen {
		t.Fatalf("breach phase: pending=%v firing=%v", pendingSeen, firingSeen)
	}

	snap = e.Snapshot(clk.t)
	obj := snap.Objectives[0]
	if obj.AlertState != "firing" {
		t.Fatalf("breach alert state = %q", obj.AlertState)
	}
	if obj.Burn.Fast < 10 {
		t.Fatalf("breach fast burn = %v", obj.Burn.Fast)
	}
	if obj.BudgetRemaining >= 1 {
		t.Fatalf("breach left budget untouched: %v", obj.BudgetRemaining)
	}
	if len(obj.Exemplars) == 0 {
		t.Fatal("breach retained no exemplars")
	}
	if len(obj.Exemplars) > 4 {
		t.Fatalf("exemplar cap ignored: %d retained", len(obj.Exemplars))
	}
	// Newest first, and each one carries a resolvable trace id.
	for _, ex := range obj.Exemplars {
		if ex.TraceID == "" || ex.Seconds < 0.4 {
			t.Fatalf("bad exemplar: %+v", ex)
		}
	}
	// The firing alert itself links the traces.
	var firing *AlertStatus
	for i := range snap.Alerts {
		if snap.Alerts[i].Rule == RuleFastBurn && snap.Alerts[i].Backend == "measure-latency" {
			firing = &snap.Alerts[i]
		}
	}
	if firing == nil || firing.State != monitor.StateFiring {
		t.Fatalf("fast burn alert missing from snapshot: %+v", snap.Alerts)
	}
	if len(firing.Exemplars) == 0 {
		t.Fatal("firing alert carries no exemplar traces")
	}

	// Recovery: fast traffic again. Once the short windows slide past
	// the episode, min(short, long) collapses and the alert resolves.
	resolved := false
	for i := 0; i < 40 && !resolved; i++ {
		for j := 0; j < 20; j++ {
			e.ObserveLatency("measure-latency", 5*time.Millisecond, telemetry.TraceID(0xdef000+uint64(i*20+j)))
		}
		clk.step(time.Second)
		e.Advance(clk.t)
		if a, ok := findAlert(e.Alerts(), "measure-latency", RuleFastBurn); ok && a.State == monitor.StateResolved {
			resolved = true
		}
	}
	if !resolved {
		t.Fatal("fast burn alert never resolved after recovery")
	}
}

// TestAvailabilityAndBreachRecording exercises the plain Observe feed
// plus RecordBreach exemplars.
func TestAvailabilityAndBreachRecording(t *testing.T) {
	clk := &clock{t: time.Unix(1_754_000_000, 0)}
	avail := Objective{Name: "availability", Kind: KindAvailability, Target: 0.95}
	e, err := New(testConfig(clk, avail))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			good := j != 0 // 10% errors: burn = 0.1/0.05 = 2 < fast threshold 10
			e.Observe("availability", good)
			if !good {
				e.RecordBreach("availability", telemetry.TraceID(0x500+uint64(i)), 0)
			}
		}
		clk.step(time.Second)
		e.Advance(clk.t)
	}
	snap := e.Snapshot(clk.t)
	obj := snap.Objectives[0]
	if obj.Burn.FastShort < 1.9 || obj.Burn.FastShort > 2.1 {
		t.Fatalf("10%% errors at target 0.95: fast-short burn = %v", obj.Burn.FastShort)
	}
	// Slow pair threshold is 1: burn 2 > 1 should walk the slow rule up.
	if a, ok := findAlert(e.Alerts(), "availability", RuleSlowBurn); !ok || a.State == monitor.StateInactive {
		t.Fatalf("slow burn rule idle despite burn 2: %+v", e.Alerts())
	}
	if len(obj.Exemplars) == 0 {
		t.Fatal("RecordBreach left no exemplars")
	}
	if obj.Compliance < 0.89 || obj.Compliance > 0.91 {
		t.Fatalf("compliance = %v", obj.Compliance)
	}
	// 10% errors against a 5% budget: the whole budget is spent twice over.
	if obj.BudgetRemaining > -0.9 {
		t.Fatalf("budget remaining = %v", obj.BudgetRemaining)
	}
	// Unknown objectives must be a no-op, not a panic.
	e.Observe("no-such-objective", true)
	e.ObserveLatency("no-such-objective", time.Second, 1)
	e.RecordBreach("no-such-objective", 1, 0)
}

// TestDurabilitySource samples cumulative counters at each tick.
func TestDurabilitySource(t *testing.T) {
	clk := &clock{t: time.Unix(1_754_000_000, 0)}
	var good, total atomic.Int64
	obj := Objective{
		Name:   "ingest-durability",
		Kind:   KindDurability,
		Target: 0.999,
		Source: func() (int64, int64) { return good.Load(), total.Load() },
	}
	e, err := New(testConfig(clk, obj))
	if err != nil {
		t.Fatal(err)
	}
	// Baseline tick before any rows so window deltas cover everything
	// the engine's lifetime saw.
	e.Advance(clk.t)
	// 1000 rows/tick, all committed.
	for i := 0; i < 10; i++ {
		good.Add(1000)
		total.Add(1000)
		clk.step(time.Second)
		e.Advance(clk.t)
	}
	snap := e.Snapshot(clk.t)
	if snap.Objectives[0].Burn.Fast != 0 {
		t.Fatalf("lossless ingest burn = %v", snap.Objectives[0].Burn.Fast)
	}
	// Drop everything for a stretch.
	for i := 0; i < 10; i++ {
		total.Add(1000)
		clk.step(time.Second)
		e.Advance(clk.t)
	}
	snap = e.Snapshot(clk.t)
	if snap.Objectives[0].Burn.FastShort < 100 {
		t.Fatalf("total loss at target 0.999: fast-short burn = %v", snap.Objectives[0].Burn.FastShort)
	}
	if snap.Objectives[0].Total != 20000 || snap.Objectives[0].Good != 10000 {
		t.Fatalf("window counts good=%d total=%d", snap.Objectives[0].Good, snap.Objectives[0].Total)
	}
}

// TestAdvanceCatchUp: a long idle gap must not replay thousands of
// ticks, and the engine must stay correct afterwards.
func TestAdvanceCatchUp(t *testing.T) {
	clk := &clock{t: time.Unix(1_754_000_000, 0)}
	e, err := New(testConfig(clk, latencyObjective()))
	if err != nil {
		t.Fatal(err)
	}
	e.Advance(clk.t)
	clk.step(3 * time.Hour) // 10800 missed ticks at 1s resolution
	done := make(chan struct{})
	go func() {
		e.Advance(clk.t)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Advance stuck replaying idle ticks")
	}
	e.ObserveLatency("measure-latency", time.Millisecond, 1)
	clk.step(time.Second)
	snap := e.Snapshot(clk.t)
	if snap.Objectives[0].Total == 0 {
		t.Fatal("engine dead after catch-up")
	}
}

// TestWriteMetricsLintsAndParses: the /metricsz exposition the monitor
// federates must be lint-clean and machine-parseable.
func TestWriteMetricsLintsAndParses(t *testing.T) {
	clk := &clock{t: time.Unix(1_754_000_000, 0)}
	e, err := New(testConfig(clk,
		latencyObjective(),
		Objective{Name: "availability", Kind: KindAvailability, Target: 0.95},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		e.ObserveLatency("measure-latency", 400*time.Millisecond, telemetry.TraceID(uint64(i+1)))
		e.Observe("availability", i%2 == 0)
		clk.step(time.Second)
		e.Advance(clk.t)
	}
	var b strings.Builder
	e.WriteMetrics(&b, clk.t)
	page := b.String()

	if problems := telemetry.LintPrometheus(page); len(problems) != 0 {
		t.Fatalf("slo exposition fails lint: %v\n%s", problems, page)
	}
	fams, err := telemetry.ParsePrometheus(page)
	if err != nil {
		t.Fatalf("slo exposition unparseable: %v\n%s", err, page)
	}
	want := map[string]bool{
		"slo_error_budget_remaining": false,
		"slo_compliance":             false,
		"slo_burn_rate":              false,
		"slo_alert_state":            false,
	}
	for _, f := range fams {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("family %s missing from exposition:\n%s", name, page)
		}
	}
	if !strings.Contains(page, `slo_burn_rate{objective="measure-latency",window="fast"}`) {
		t.Fatalf("burn gauge missing objective/window labels:\n%s", page)
	}
}

// fakePinner records pin reference counts so the exemplar lifecycle is
// observable without a real tracer.
type fakePinner struct {
	mu   sync.Mutex
	refs map[telemetry.TraceID]int
	pins int
}

func (p *fakePinner) Pin(id telemetry.TraceID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.refs == nil {
		p.refs = make(map[telemetry.TraceID]int)
	}
	p.refs[id]++
	p.pins++
}

func (p *fakePinner) Unpin(id telemetry.TraceID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refs[id]--
	if p.refs[id] < 0 {
		panic("unpin without pin")
	}
	if p.refs[id] == 0 {
		delete(p.refs, id)
	}
}

func (p *fakePinner) live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.refs)
}

// TestExemplarPinLifecycle is the regression for the dangling exemplar
// link: every breach exemplar pins its trace, cap-trimmed exemplars
// release theirs immediately, and once the objective's alerts resolve
// every remaining pin is released — no leaks, no double-unpins.
func TestExemplarPinLifecycle(t *testing.T) {
	clk := &clock{t: time.Unix(1_754_000_000, 0)}
	pinner := &fakePinner{}
	cfg := testConfig(clk, latencyObjective())
	cfg.Pinner = pinner
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Breach phase: far more breaches than the exemplar cap of 4.
	fired := false
	for i := 0; i < 25; i++ {
		for j := 0; j < 20; j++ {
			e.ObserveLatency("measure-latency", 400*time.Millisecond, telemetry.TraceID(0xaa00+uint64(i*20+j)+1))
		}
		clk.step(time.Second)
		e.Advance(clk.t)
		if a, ok := findAlert(e.Alerts(), "measure-latency", RuleFastBurn); ok && a.State == monitor.StateFiring {
			fired = true
		}
	}
	if !fired {
		t.Fatal("breach phase never fired")
	}
	if got := pinner.live(); got != 4 {
		t.Fatalf("%d traces pinned while firing, want exemplar cap 4", got)
	}
	if pinner.pins != 25*20 {
		t.Fatalf("pins = %d, want one per breach (%d)", pinner.pins, 25*20)
	}

	// Recovery: pins are held while ANY burn alert for the objective is
	// still pending or firing (the fast rule resolves well before the
	// slow rule's longer windows drain), and released on the falling
	// edge once the last one clears.
	quiet := false
	for i := 0; i < 200 && !quiet; i++ {
		for j := 0; j < 20; j++ {
			e.ObserveLatency("measure-latency", 5*time.Millisecond, 0)
		}
		clk.step(time.Second)
		e.Advance(clk.t)
		quiet = true
		for _, a := range e.Alerts() {
			if a.Backend == "measure-latency" && (a.State == monitor.StatePending || a.State == monitor.StateFiring) {
				quiet = false
			}
		}
	}
	if !quiet {
		t.Fatal("burn alerts never cleared")
	}
	if got := pinner.live(); got != 0 {
		t.Fatalf("%d traces still pinned after resolution", got)
	}
	// The exemplars themselves stay listed for the resolved page.
	snap := e.Snapshot(clk.t)
	if len(snap.Objectives[0].Exemplars) == 0 {
		t.Fatal("resolution erased the exemplar list")
	}
	// A fresh breach episode pins again (the falling edge resets).
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			e.ObserveLatency("measure-latency", 400*time.Millisecond, telemetry.TraceID(0xbb00+uint64(i*20+j)+1))
		}
		clk.step(time.Second)
		e.Advance(clk.t)
	}
	if got := pinner.live(); got == 0 {
		t.Fatal("second breach episode pinned nothing")
	}
}
