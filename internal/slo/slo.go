// Package slo closes the observability loop: it defines service-level
// objectives (latency, availability, ingest durability) over the
// event streams the serving path already produces, tracks each
// objective's rolling error budget, and fires multi-window burn-rate
// alerts through the monitor's detector state machine.
//
// The mechanics follow the SRE-workbook recipe. An objective with
// target T has an error budget of 1-T; the burn rate over a window is
// the observed bad fraction divided by that budget, so burn 1 spends
// the budget exactly at the sustainable pace. Alerts pair a short
// confirmation window with a long smoothing window and fire only when
// BOTH exceed the threshold — implemented by pushing min(short, long)
// as one series, which breaches exactly when the pair does:
//
//	fast page:  burn(5m)  > 14.4 AND burn(1h) > 14.4  (2% budget/hour)
//	slow page:  burn(6h)  > 1    AND burn(3d) > 1     (budget pace)
//
// Observation is two atomic adds per request; windows are cumulative
// (good, total) snapshots taken on a fixed resolution, so burn over
// any window is two ring lookups. The engine never touches the
// measurement pipeline — CSVs are byte-identical with SLO tracking on,
// enforced by TestCSVBytesUnchangedBySLOAndProfiling.
package slo

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/monitor"
	"repro/internal/telemetry"
)

// Kind classifies an objective.
type Kind string

const (
	// KindLatency judges request durations against LatencyThreshold.
	KindLatency Kind = "latency"
	// KindAvailability judges request success (non-5xx).
	KindAvailability Kind = "availability"
	// KindDurability judges ingest outcomes (rows committed vs dropped),
	// sampled from cumulative counters via Source.
	KindDurability Kind = "durability"
)

// Objective is one service-level objective.
type Objective struct {
	// Name identifies the objective in /v1/sloz, metrics, and alerts
	// (it is the detector's target, so alerts read rule+objective).
	Name        string
	Kind        Kind
	Description string
	// Target is the good fraction promised, e.g. 0.99; the error budget
	// is 1-Target.
	Target float64
	// LatencyThreshold is the good/bad boundary for KindLatency:
	// requests at or under it are good.
	LatencyThreshold time.Duration
	// Source, when set, is sampled each tick for cumulative (good,
	// total) counts instead of per-event Observe calls — the shape of
	// ingest-durability counters.
	Source func() (good, total int64)
}

// Config configures an Engine. Zero values select the production
// defaults noted per field; tests compress the windows.
type Config struct {
	Objectives []Objective
	// Resolution is the tick width: how often cumulative snapshots are
	// taken and rules evaluated (default 10s).
	Resolution time.Duration
	// BudgetWindow is the rolling error-budget period (default 24h).
	BudgetWindow time.Duration
	// Multi-window pairs (defaults 5m/1h and 6h/3d) and their burn
	// thresholds (defaults 14.4 and 1).
	FastShort, FastLong time.Duration
	SlowShort, SlowLong time.Duration
	FastBurn, SlowBurn  float64
	// For/Clear are the detector streaks (default 2 each).
	For, Clear int
	// ExemplarCap bounds retained breach exemplars per objective
	// (default 8).
	ExemplarCap int
	// Pinner, when set, protects exemplar-referenced traces from ring
	// eviction and tail-sampling drops: each breach exemplar pins its
	// trace on capture and releases it when the exemplar is trimmed or
	// the objective's burn alerts leave the pending/firing states — so
	// a firing page's /v1/traces links keep resolving for as long as
	// the page is actionable. The server wires its tracer here.
	Pinner Pinner
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Pinner is the trace-retention hook (telemetry.Tracer satisfies it).
type Pinner interface {
	Pin(telemetry.TraceID)
	Unpin(telemetry.TraceID)
}

func (c Config) withDefaults() Config {
	if c.Resolution <= 0 {
		c.Resolution = 10 * time.Second
	}
	if c.BudgetWindow <= 0 {
		c.BudgetWindow = 24 * time.Hour
	}
	if c.FastShort <= 0 {
		c.FastShort = 5 * time.Minute
	}
	if c.FastLong <= 0 {
		c.FastLong = time.Hour
	}
	if c.SlowShort <= 0 {
		c.SlowShort = 6 * time.Hour
	}
	if c.SlowLong <= 0 {
		c.SlowLong = 72 * time.Hour
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 14.4
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 1
	}
	if c.For <= 0 {
		c.For = 2
	}
	if c.Clear <= 0 {
		c.Clear = 2
	}
	if c.ExemplarCap <= 0 {
		c.ExemplarCap = 8
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Rule and series names the engine drives through the detector.
const (
	RuleFastBurn   = "slo_fast_burn"
	RuleSlowBurn   = "slo_slow_burn"
	SeriesFastBurn = "slo_burn_fast"
	SeriesSlowBurn = "slo_burn_slow"
)

// cumSample is one resolution tick's cumulative counters.
type cumSample struct {
	t           time.Time
	good, total int64
}

type objective struct {
	Objective
	good, total atomic.Int64

	// ring of cumulative snapshots, engine.mu-guarded, sized to cover
	// the longest window at the configured resolution.
	ring []cumSample
	head int // next write slot
	n    int // filled entries

	exMu      sync.Mutex
	exemplars []BreachExemplar // newest last, bounded by ExemplarCap

	// alertActive tracks whether any of this objective's burn alerts is
	// pending or firing (engine.mu-guarded); the falling edge releases
	// the exemplar trace pins.
	alertActive bool
}

// BreachExemplar links one budget-burning observation to its trace.
type BreachExemplar struct {
	TraceID string    `json:"trace_id"`
	Seconds float64   `json:"seconds"`
	Time    time.Time `json:"time"`

	// tid/pinned track the Pinner reference so a trace is unpinned
	// exactly once — on trim or on alert resolution, whichever first.
	tid    telemetry.TraceID
	pinned bool
}

// Engine tracks objectives and drives burn-rate alerts.
type Engine struct {
	cfg    Config
	objs   []*objective
	byName map[string]*objective
	names  []string
	det    *monitor.PushDetector

	mu       sync.Mutex
	lastTick time.Time
}

// New builds an engine. Objectives with empty names or out-of-range
// targets are rejected.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives")
	}
	maxWin := cfg.SlowLong
	if cfg.BudgetWindow > maxWin {
		maxWin = cfg.BudgetWindow
	}
	ringLen := int(maxWin/cfg.Resolution) + 2
	const maxRing = 1 << 17 // ~3MB of cumSamples per objective, the ceiling
	if ringLen > maxRing {
		ringLen = maxRing
	}
	e := &Engine{cfg: cfg, byName: make(map[string]*objective)}
	for _, o := range cfg.Objectives {
		if o.Name == "" {
			return nil, fmt.Errorf("slo: objective with empty name")
		}
		if o.Target <= 0 || o.Target >= 1 {
			return nil, fmt.Errorf("slo: objective %s target %v outside (0,1)", o.Name, o.Target)
		}
		if _, dup := e.byName[o.Name]; dup {
			return nil, fmt.Errorf("slo: duplicate objective %s", o.Name)
		}
		obj := &objective{Objective: o, ring: make([]cumSample, ringLen)}
		e.objs = append(e.objs, obj)
		e.byName[o.Name] = obj
		e.names = append(e.names, o.Name)
	}
	rules := []monitor.Rule{
		{
			Name: RuleFastBurn, Series: SeriesFastBurn, Kind: monitor.KindThreshold,
			Cmp: monitor.Above, Value: cfg.FastBurn, For: cfg.For, Clear: cfg.Clear,
			Help: fmt.Sprintf("Error-budget burn over both the %v and %v windows exceeds %.3g — the page-now pace.",
				cfg.FastShort, cfg.FastLong, cfg.FastBurn),
		},
		{
			Name: RuleSlowBurn, Series: SeriesSlowBurn, Kind: monitor.KindThreshold,
			Cmp: monitor.Above, Value: cfg.SlowBurn, For: cfg.For, Clear: cfg.Clear,
			Help: fmt.Sprintf("Error-budget burn over both the %v and %v windows exceeds %.3g — spending faster than the budget period allows.",
				cfg.SlowShort, cfg.SlowLong, cfg.SlowBurn),
		},
	}
	e.det = monitor.NewPushDetector("slo", rules, 512, 0)
	return e, nil
}

// Names returns the objective names in configuration order.
func (e *Engine) Names() []string { return append([]string(nil), e.names...) }

// Rules returns the burn-rate rules (defaults applied).
func (e *Engine) Rules() []monitor.Rule { return e.det.Rules() }

// Observe records one event against an objective: two atomic adds, hot
// path safe. Unknown objectives are ignored (a nil-engine-like no-op
// rather than a panic in the serving path).
func (e *Engine) Observe(name string, good bool) {
	obj := e.byName[name]
	if obj == nil {
		return
	}
	obj.total.Add(1)
	if good {
		obj.good.Add(1)
	}
}

// ObserveLatency judges one request duration against a latency
// objective's threshold and, on breach, retains the trace as an
// exemplar so the eventual page links to a concrete offending request.
func (e *Engine) ObserveLatency(name string, d time.Duration, trace telemetry.TraceID) {
	obj := e.byName[name]
	if obj == nil {
		return
	}
	good := d <= obj.LatencyThreshold
	obj.total.Add(1)
	if good {
		obj.good.Add(1)
	} else if trace != 0 {
		e.recordBreach(obj, trace, float64(d)/1e9)
	}
}

// RecordBreach attaches a breach exemplar to an objective directly —
// for bad events whose badness is not a duration (an availability
// error, a dropped batch with a known trace).
func (e *Engine) RecordBreach(name string, trace telemetry.TraceID, seconds float64) {
	obj := e.byName[name]
	if obj == nil || trace == 0 {
		return
	}
	e.recordBreach(obj, trace, seconds)
}

func (e *Engine) recordBreach(obj *objective, trace telemetry.TraceID, seconds float64) {
	ex := BreachExemplar{TraceID: trace.String(), Seconds: seconds, Time: e.cfg.Now(), tid: trace}
	var unpin []telemetry.TraceID
	obj.exMu.Lock()
	if e.cfg.Pinner != nil {
		e.cfg.Pinner.Pin(trace)
		ex.pinned = true
	}
	obj.exemplars = append(obj.exemplars, ex)
	if over := len(obj.exemplars) - e.cfg.ExemplarCap; over > 0 {
		for _, old := range obj.exemplars[:over] {
			if old.pinned {
				unpin = append(unpin, old.tid)
			}
		}
		obj.exemplars = append(obj.exemplars[:0], obj.exemplars[over:]...)
	}
	obj.exMu.Unlock()
	for _, tid := range unpin {
		e.cfg.Pinner.Unpin(tid)
	}
}

// Advance moves the engine's clock to now: at each elapsed resolution
// boundary it snapshots cumulative counters, recomputes burn rates,
// and evaluates the detector. Call it from any read path (it is how
// /v1/sloz and /metricsz keep the state machine moving without a
// dedicated goroutine) or from a ticker. Catch-up after an idle gap is
// capped; the detector just sees a late, current evaluation.
func (e *Engine) Advance(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	res := e.cfg.Resolution
	if e.lastTick.IsZero() {
		e.lastTick = now
		e.tickLocked(now)
		return
	}
	const maxCatchup = 16
	steps := 0
	for steps < maxCatchup && !now.Before(e.lastTick.Add(res)) {
		e.lastTick = e.lastTick.Add(res)
		e.tickLocked(e.lastTick)
		steps++
	}
	if steps == maxCatchup && !now.Before(e.lastTick.Add(res)) {
		e.lastTick = now // long idle: jump rather than replay hours
		e.tickLocked(now)
	}
}

func (e *Engine) tickLocked(t time.Time) {
	for _, obj := range e.objs {
		if obj.Source != nil {
			g, tot := obj.Source()
			obj.good.Store(g)
			obj.total.Store(tot)
		}
		if obj.n == 0 {
			// Seed a zero baseline one resolution back so window deltas
			// cover events observed before the first tick. Source-fed
			// objectives baseline at their current counters instead: the
			// engine cannot attribute a process's pre-engine history.
			base := cumSample{t: t.Add(-e.cfg.Resolution)}
			if obj.Source != nil {
				base.good, base.total = obj.good.Load(), obj.total.Load()
			}
			obj.ring[obj.head] = base
			obj.head = (obj.head + 1) % len(obj.ring)
			obj.n++
		}
		obj.ring[obj.head] = cumSample{t: t, good: obj.good.Load(), total: obj.total.Load()}
		obj.head = (obj.head + 1) % len(obj.ring)
		if obj.n < len(obj.ring) {
			obj.n++
		}
		fast := minF(e.burnLocked(obj, t, e.cfg.FastShort), e.burnLocked(obj, t, e.cfg.FastLong))
		slow := minF(e.burnLocked(obj, t, e.cfg.SlowShort), e.burnLocked(obj, t, e.cfg.SlowLong))
		e.det.Push(obj.Name, SeriesFastBurn, t, fast)
		e.det.Push(obj.Name, SeriesSlowBurn, t, slow)
	}
	e.det.Evaluate(e.names, t)
	if e.cfg.Pinner != nil {
		e.releasePinsLocked()
	}
}

// releasePinsLocked unpins each objective's exemplar traces on the
// falling edge of its alert activity: once no burn alert is pending or
// firing, the page is over and the exemplars' traces may rejoin normal
// ring retention. The exemplars themselves stay listed — only the
// retention guarantee lapses. Caller holds e.mu.
func (e *Engine) releasePinsLocked() {
	active := make(map[string]bool, len(e.names))
	for _, a := range e.det.Alerts() {
		if a.State == monitor.StatePending || a.State == monitor.StateFiring {
			active[a.Backend] = true
		}
	}
	for _, obj := range e.objs {
		now := active[obj.Name]
		was := obj.alertActive
		obj.alertActive = now
		if !was || now {
			continue
		}
		var unpin []telemetry.TraceID
		obj.exMu.Lock()
		for i := range obj.exemplars {
			if obj.exemplars[i].pinned {
				unpin = append(unpin, obj.exemplars[i].tid)
				obj.exemplars[i].pinned = false
			}
		}
		obj.exMu.Unlock()
		for _, tid := range unpin {
			e.cfg.Pinner.Unpin(tid)
		}
	}
}

// at returns the newest cumulative snapshot at or before cutoff,
// falling back to the oldest retained (short-uptime semantics: the
// window is however much history exists).
func (obj *objective) at(cutoff time.Time) (cumSample, bool) {
	if obj.n == 0 {
		return cumSample{}, false
	}
	var best cumSample
	found := false
	for i := 0; i < obj.n; i++ {
		s := obj.ring[(obj.head-obj.n+i+2*len(obj.ring))%len(obj.ring)]
		if i == 0 {
			best = s // oldest fallback
			found = true
		}
		if s.t.After(cutoff) {
			break
		}
		best = s
	}
	return best, found
}

// newest returns the latest snapshot.
func (obj *objective) newest() (cumSample, bool) {
	if obj.n == 0 {
		return cumSample{}, false
	}
	return obj.ring[(obj.head-1+len(obj.ring))%len(obj.ring)], true
}

// burnLocked computes the burn rate over the trailing window ending at
// now: bad fraction across the window divided by the error budget.
func (e *Engine) burnLocked(obj *objective, now time.Time, window time.Duration) float64 {
	cur, ok := obj.newest()
	if !ok {
		return 0
	}
	base, ok := obj.at(now.Add(-window))
	if !ok {
		return 0
	}
	dTotal := cur.total - base.total
	if dTotal <= 0 {
		return 0
	}
	dBad := (cur.total - cur.good) - (base.total - base.good)
	if dBad < 0 {
		dBad = 0
	}
	badFrac := float64(dBad) / float64(dTotal)
	return badFrac / (1 - obj.Target)
}

// windowCounts returns (good, total) deltas over the trailing window.
func (e *Engine) windowCounts(obj *objective, now time.Time, window time.Duration) (good, total int64) {
	cur, ok := obj.newest()
	if !ok {
		return 0, 0
	}
	base, ok := obj.at(now.Add(-window))
	if !ok {
		return 0, 0
	}
	return cur.good - base.good, cur.total - base.total
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// BurnRates is the windowed burn-rate digest of one objective.
type BurnRates struct {
	FastShort float64 `json:"fast_short"`
	FastLong  float64 `json:"fast_long"`
	SlowShort float64 `json:"slow_short"`
	SlowLong  float64 `json:"slow_long"`
	// Fast and Slow are the min of each pair — the values the alert
	// rules judge.
	Fast float64 `json:"fast"`
	Slow float64 `json:"slow"`
}

// ObjectiveStatus is one objective's externally served state.
type ObjectiveStatus struct {
	Name               string           `json:"name"`
	Kind               Kind             `json:"kind"`
	Description        string           `json:"description,omitempty"`
	Target             float64          `json:"target"`
	LatencyThresholdNS int64            `json:"latency_threshold_ns,omitempty"`
	Good               int64            `json:"good"`
	Total              int64            `json:"total"`
	Compliance         float64          `json:"compliance"`
	BudgetRemaining    float64          `json:"budget_remaining"`
	Burn               BurnRates        `json:"burn"`
	AlertState         string           `json:"alert_state"`
	Exemplars          []BreachExemplar `json:"exemplars,omitempty"`
}

// AlertStatus is a detector alert annotated with the objective's
// breach exemplars, so a firing page carries resolvable trace ids.
type AlertStatus struct {
	monitor.Alert
	Exemplars []BreachExemplar `json:"exemplars,omitempty"`
}

// Snapshot is the /v1/sloz payload.
type Snapshot struct {
	GeneratedAt    time.Time         `json:"generated_at"`
	ResolutionNS   int64             `json:"resolution_ns"`
	BudgetWindowNS int64             `json:"budget_window_ns"`
	Objectives     []ObjectiveStatus `json:"objectives"`
	Alerts         []AlertStatus     `json:"alerts"`
}

// Snapshot advances the engine to now and assembles the full state.
func (e *Engine) Snapshot(now time.Time) Snapshot {
	e.Advance(now)
	e.mu.Lock()
	defer e.mu.Unlock()

	alerts := e.det.Alerts()
	stateFor := func(name string) string {
		worst := monitor.StateInactive
		for _, a := range alerts {
			if a.Backend != name {
				continue
			}
			if rank(a.State) > rank(worst) {
				worst = a.State
			}
		}
		return worst.String()
	}

	snap := Snapshot{
		GeneratedAt:    now,
		ResolutionNS:   int64(e.cfg.Resolution),
		BudgetWindowNS: int64(e.cfg.BudgetWindow),
	}
	for _, obj := range e.objs {
		good, total := e.windowCounts(obj, now, e.cfg.BudgetWindow)
		st := ObjectiveStatus{
			Name:               obj.Name,
			Kind:               obj.Kind,
			Description:        obj.Description,
			Target:             obj.Target,
			LatencyThresholdNS: int64(obj.LatencyThreshold),
			Good:               good,
			Total:              total,
			Compliance:         1,
			BudgetRemaining:    1,
			Burn: BurnRates{
				FastShort: e.burnLocked(obj, now, e.cfg.FastShort),
				FastLong:  e.burnLocked(obj, now, e.cfg.FastLong),
				SlowShort: e.burnLocked(obj, now, e.cfg.SlowShort),
				SlowLong:  e.burnLocked(obj, now, e.cfg.SlowLong),
			},
			AlertState: stateFor(obj.Name),
		}
		st.Burn.Fast = minF(st.Burn.FastShort, st.Burn.FastLong)
		st.Burn.Slow = minF(st.Burn.SlowShort, st.Burn.SlowLong)
		if total > 0 {
			st.Compliance = float64(good) / float64(total)
			bad := float64(total - good)
			allowed := float64(total) * (1 - obj.Target)
			if allowed > 0 {
				st.BudgetRemaining = 1 - bad/allowed
			} else if bad > 0 {
				st.BudgetRemaining = 0
			}
		}
		obj.exMu.Lock()
		if len(obj.exemplars) > 0 {
			st.Exemplars = make([]BreachExemplar, len(obj.exemplars))
			// Newest first: the trace an operator clicks is the freshest.
			for i, ex := range obj.exemplars {
				st.Exemplars[len(obj.exemplars)-1-i] = ex
			}
		}
		obj.exMu.Unlock()
		snap.Objectives = append(snap.Objectives, st)
	}
	for _, a := range alerts {
		as := AlertStatus{Alert: a}
		if obj := e.byName[a.Backend]; obj != nil {
			obj.exMu.Lock()
			for i := len(obj.exemplars) - 1; i >= 0; i-- {
				as.Exemplars = append(as.Exemplars, obj.exemplars[i])
			}
			obj.exMu.Unlock()
		}
		snap.Alerts = append(snap.Alerts, as)
	}
	return snap
}

func rank(s monitor.AlertState) int {
	switch s {
	case monitor.StateFiring:
		return 3
	case monitor.StatePending:
		return 2
	case monitor.StateResolved:
		return 1
	}
	return 0
}

// Alerts returns the detector's live alerts (firing first).
func (e *Engine) Alerts() []monitor.Alert { return e.det.Alerts() }

// WriteMetrics renders the engine's state as Prometheus gauges for
// /metricsz, which is how the fleet monitor federates SLO state onto
// the dashboard: budget gauges per objective, burn rates per window
// pair, and a numeric alert state per rule.
func (e *Engine) WriteMetrics(w io.Writer, now time.Time) {
	snap := e.Snapshot(now)
	var b strings.Builder
	b.WriteString("# HELP slo_error_budget_remaining Fraction of the rolling error budget left (1 untouched, <=0 exhausted).\n# TYPE slo_error_budget_remaining gauge\n")
	for _, o := range snap.Objectives {
		fmt.Fprintf(&b, "slo_error_budget_remaining{objective=%s} %s\n",
			telemetry.PromQuote(o.Name), formatGauge(o.BudgetRemaining))
	}
	b.WriteString("# HELP slo_compliance Good fraction over the budget window.\n# TYPE slo_compliance gauge\n")
	for _, o := range snap.Objectives {
		fmt.Fprintf(&b, "slo_compliance{objective=%s} %s\n",
			telemetry.PromQuote(o.Name), formatGauge(o.Compliance))
	}
	b.WriteString("# HELP slo_burn_rate Error-budget burn rate, min of each multi-window pair.\n# TYPE slo_burn_rate gauge\n")
	for _, o := range snap.Objectives {
		fmt.Fprintf(&b, "slo_burn_rate{objective=%s,window=\"fast\"} %s\n",
			telemetry.PromQuote(o.Name), formatGauge(o.Burn.Fast))
		fmt.Fprintf(&b, "slo_burn_rate{objective=%s,window=\"slow\"} %s\n",
			telemetry.PromQuote(o.Name), formatGauge(o.Burn.Slow))
	}
	b.WriteString("# HELP slo_alert_state Burn-rate alert state per objective and rule (0 inactive, 1 resolved, 2 pending, 3 firing).\n# TYPE slo_alert_state gauge\n")
	alerts := snap.Alerts
	for _, o := range snap.Objectives {
		for _, rule := range []string{RuleFastBurn, RuleSlowBurn} {
			state := 0
			for _, a := range alerts {
				if a.Backend == o.Name && a.Rule == rule {
					state = rank(a.State)
				}
			}
			fmt.Fprintf(&b, "slo_alert_state{objective=%s,rule=%q} %d\n",
				telemetry.PromQuote(o.Name), rule, state)
		}
	}
	_, _ = io.WriteString(w, b.String())
}

func formatGauge(v float64) string {
	// Clamp pathological negatives so the exposition stays readable;
	// the JSON snapshot carries the raw value.
	if v < -1e6 {
		v = -1e6
	}
	s := fmt.Sprintf("%.6g", v)
	return s
}

// SortObjectiveNames sorts a copy of names for deterministic display.
func SortObjectiveNames(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
