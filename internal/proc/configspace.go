package proc

import "fmt"

// ConfiguredProcessor pairs a processor with one of its validated hardware
// configurations. The paper's Section 2.8 evaluates 45 such configurations
// across the eight stock processors.
type ConfiguredProcessor struct {
	Proc   *Processor
	Config Config
}

// String renders the paper's notation, e.g. "i7 (45) 4C2T@2.7GHz TB".
func (cp ConfiguredProcessor) String() string {
	return cp.Proc.Name + " " + cp.Config.String()
}

// IsStock reports whether the configuration is the part's stock setting.
func (cp ConfiguredProcessor) IsStock() bool {
	return cp.Config == cp.Proc.Stock()
}

// ConfigSpace returns the full 45-configuration space the paper explores:
// every stock configuration plus the BIOS-controlled variations of core
// count, SMT, clock, and Turbo Boost. Every returned configuration is
// validated against its part; construction panics on an internal
// inconsistency because the space is static program data.
func ConfigSpace() []ConfiguredProcessor {
	var out []ConfiguredProcessor
	add := func(p *Processor, cfgs ...Config) {
		for _, c := range cfgs {
			if err := p.Validate(c); err != nil {
				panic(fmt.Sprintf("proc: invalid built-in config %v on %s: %v", c, p.Name, err))
			}
			out = append(out, ConfiguredProcessor{Proc: p, Config: c})
		}
	}

	p4, _ := ByName(Pentium4Name)
	add(p4,
		Config{Cores: 1, SMTWays: 2, ClockGHz: 2.4}, // stock
		Config{Cores: 1, SMTWays: 1, ClockGHz: 2.4}, // SMT off
	)

	c2d65, _ := ByName(Core2D65Name)
	add(c2d65,
		Config{Cores: 2, SMTWays: 1, ClockGHz: 2.4}, // stock
		Config{Cores: 2, SMTWays: 1, ClockGHz: 1.6},
		Config{Cores: 1, SMTWays: 1, ClockGHz: 2.4},
	)

	c2q65, _ := ByName(Core2Q65Name)
	add(c2q65,
		Config{Cores: 4, SMTWays: 1, ClockGHz: 2.4}, // stock
		Config{Cores: 4, SMTWays: 1, ClockGHz: 1.6},
		Config{Cores: 2, SMTWays: 1, ClockGHz: 2.4},
	)

	i7, _ := ByName(I7Name)
	// The i7 is the paper's most thoroughly configured part: a grid over
	// cores x SMT x clock with Turbo variants at the top clock, 20 total.
	for _, cores := range []int{1, 2, 4} {
		for _, smt := range []int{1, 2} {
			add(i7,
				Config{Cores: cores, SMTWays: smt, ClockGHz: 1.60},
				Config{Cores: cores, SMTWays: smt, ClockGHz: 2.67},
				Config{Cores: cores, SMTWays: smt, ClockGHz: 2.67, Turbo: true},
			)
		}
	}
	add(i7,
		Config{Cores: 4, SMTWays: 2, ClockGHz: 2.13},
		Config{Cores: 1, SMTWays: 2, ClockGHz: 2.40},
	)

	atom, _ := ByName(Atom45Name)
	add(atom,
		Config{Cores: 1, SMTWays: 2, ClockGHz: 1.7}, // stock
		Config{Cores: 1, SMTWays: 1, ClockGHz: 1.7},
	)

	c2d45, _ := ByName(Core2D45Name)
	add(c2d45,
		Config{Cores: 2, SMTWays: 1, ClockGHz: 3.1}, // stock
		Config{Cores: 2, SMTWays: 1, ClockGHz: 2.4},
		Config{Cores: 2, SMTWays: 1, ClockGHz: 1.6},
	)

	atomD, _ := ByName(AtomD45Name)
	add(atomD,
		Config{Cores: 2, SMTWays: 2, ClockGHz: 1.7}, // stock
		Config{Cores: 2, SMTWays: 1, ClockGHz: 1.7},
		Config{Cores: 1, SMTWays: 2, ClockGHz: 1.7},
		Config{Cores: 1, SMTWays: 1, ClockGHz: 1.7},
	)

	i5, _ := ByName(I5Name)
	add(i5,
		Config{Cores: 2, SMTWays: 2, ClockGHz: 3.46, Turbo: true}, // stock
		Config{Cores: 2, SMTWays: 2, ClockGHz: 3.46},
		Config{Cores: 2, SMTWays: 1, ClockGHz: 3.46, Turbo: true},
		Config{Cores: 1, SMTWays: 2, ClockGHz: 3.46, Turbo: true},
		Config{Cores: 1, SMTWays: 1, ClockGHz: 3.46, Turbo: true},
		Config{Cores: 1, SMTWays: 1, ClockGHz: 3.46},
		Config{Cores: 2, SMTWays: 2, ClockGHz: 2.66},
		Config{Cores: 2, SMTWays: 2, ClockGHz: 1.20},
	)

	return out
}

// ConfigSpace45nm returns the 29 configurations of the four 45nm
// processors, the design-point proxies of the paper's Pareto analysis
// (Section 4.2).
func ConfigSpace45nm() []ConfiguredProcessor {
	var out []ConfiguredProcessor
	for _, cp := range ConfigSpace() {
		if cp.Proc.Spec.NodeNM == 45 {
			out = append(out, cp)
		}
	}
	return out
}

// StockConfigs returns the eight stock configurations in fleet order.
func StockConfigs() []ConfiguredProcessor {
	fleet := Fleet()
	out := make([]ConfiguredProcessor, len(fleet))
	for i, p := range fleet {
		out[i] = ConfiguredProcessor{Proc: p, Config: p.Stock()}
	}
	return out
}
