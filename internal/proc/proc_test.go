package proc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestFleetHasEightProcessors(t *testing.T) {
	fleet := Fleet()
	if len(fleet) != 8 {
		t.Fatalf("fleet size = %d, want 8", len(fleet))
	}
	seen := map[string]bool{}
	for _, p := range fleet {
		if seen[p.Name] {
			t.Fatalf("duplicate processor %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestFleetMatchesTable3(t *testing.T) {
	cases := []struct {
		name   string
		sspec  string
		cores  int
		smt    int
		clock  float64
		node   int
		transM float64
		tdp    float64
		llc    int64
	}{
		{Pentium4Name, "SL6WF", 1, 2, 2.4, 130, 55, 66, 512 << 10},
		{Core2D65Name, "SL9S8", 2, 1, 2.4, 65, 291, 65, 4 << 20},
		{Core2Q65Name, "SL9UM", 4, 1, 2.4, 65, 582, 105, 8 << 20},
		{I7Name, "SLBCH", 4, 2, 2.67, 45, 731, 130, 8 << 20},
		{Atom45Name, "SLB6Z", 1, 2, 1.7, 45, 47, 4, 512 << 10},
		{Core2D45Name, "SLGTD", 2, 1, 3.1, 45, 228, 65, 3 << 20},
		{AtomD45Name, "SLBLA", 2, 2, 1.7, 45, 176, 13, 1 << 20},
		{I5Name, "SLBLT", 2, 2, 3.46, 32, 382, 73, 4 << 20},
	}
	for _, c := range cases {
		p, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		s := p.Spec
		if s.SSpec != c.sspec || s.Cores != c.cores || s.SMTWays != c.smt ||
			s.NodeNM != c.node || s.TransistorsM != c.transM ||
			s.TDPWatts != c.tdp || s.LLCBytes != c.llc {
			t.Errorf("%s: spec mismatch: %+v", c.name, s)
		}
		if math.Abs(s.ClockGHz-c.clock) > 1e-9 {
			t.Errorf("%s: clock = %v, want %v", c.name, s.ClockGHz, c.clock)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("i9 (14)"); err == nil {
		t.Fatal("want error for unknown processor")
	}
}

func TestFleetReturnsFreshCopies(t *testing.T) {
	a := Fleet()
	a[0].Spec.TDPWatts = -1
	b := Fleet()
	if b[0].Spec.TDPWatts == -1 {
		t.Fatal("Fleet returned shared state")
	}
}

func TestReferenceNamesCoverGenerationsAndArchs(t *testing.T) {
	names := ReferenceNames()
	if len(names) != 4 {
		t.Fatalf("got %d reference processors, want 4", len(names))
	}
	nodes := map[int]bool{}
	archs := map[Microarch]bool{}
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		nodes[p.Spec.NodeNM] = true
		archs[p.Arch] = true
	}
	// All four technology generations and all four microarchitectures.
	for _, node := range []int{130, 65, 45, 32} {
		if !nodes[node] {
			t.Errorf("reference set missing %dnm", node)
		}
	}
	for _, a := range []Microarch{NetBurst, Core, Bonnell, Nehalem} {
		if !archs[a] {
			t.Errorf("reference set missing %s", a)
		}
	}
}

func TestVoltsAtInterpolates(t *testing.T) {
	p, err := ByName(I7Name)
	if err != nil {
		t.Fatal(err)
	}
	lo := p.VoltsAt(p.MinClock())
	hi := p.VoltsAt(p.MaxClock())
	if lo >= hi {
		t.Fatalf("voltage not increasing: %v >= %v", lo, hi)
	}
	mid := p.VoltsAt((p.MinClock() + p.MaxClock()) / 2)
	if mid <= lo || mid >= hi {
		t.Fatalf("interpolated voltage %v outside (%v, %v)", mid, lo, hi)
	}
	// Below-range clamps; above-range extrapolates for turbo headroom.
	if got := p.VoltsAt(0.1); got != lo {
		t.Fatalf("below-range VoltsAt = %v, want clamp to %v", got, lo)
	}
	if got := p.VoltsAt(p.MaxClock() + 0.266); got <= hi {
		t.Fatalf("turbo-range VoltsAt = %v, want > %v", got, hi)
	}
}

func TestVoltsAtSinglePointTable(t *testing.T) {
	p, err := ByName(Atom45Name)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.VoltsAt(1.7); got != p.Model.VF[0].Volts {
		t.Fatalf("VoltsAt = %v, want table value", got)
	}
}

func TestReleaseTimesParseAndSpanTheDecade(t *testing.T) {
	// Table 3's printed order is not strictly chronological (the i7 row
	// precedes the earlier-released Atom 230), so we only require that
	// all dates parse and the fleet spans 2003 through 2010.
	fleet := Fleet()
	first, err := fleet[0].ReleaseTime()
	if err != nil {
		t.Fatal(err)
	}
	last, err := fleet[len(fleet)-1].ReleaseTime()
	if err != nil {
		t.Fatal(err)
	}
	if first.Year() != 2003 || last.Year() != 2010 {
		t.Fatalf("fleet spans %d..%d, want 2003..2010", first.Year(), last.Year())
	}
	for _, p := range fleet {
		if _, err := p.ReleaseTime(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestStockConfigValidates(t *testing.T) {
	for _, p := range Fleet() {
		if err := p.Validate(p.Stock()); err != nil {
			t.Errorf("%s stock config invalid: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	i7, err := ByName(I7Name)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		cfg  Config
		want error
	}{
		{Config{Cores: 0, SMTWays: 1, ClockGHz: 2.67}, ErrBadCores},
		{Config{Cores: 5, SMTWays: 1, ClockGHz: 2.67}, ErrBadCores},
		{Config{Cores: 4, SMTWays: 3, ClockGHz: 2.67}, ErrBadSMT},
		{Config{Cores: 4, SMTWays: 2, ClockGHz: 0.8}, ErrBadClock},
		{Config{Cores: 4, SMTWays: 2, ClockGHz: 4.0}, ErrBadClock},
		{Config{Cores: 4, SMTWays: 2, ClockGHz: 1.6, Turbo: true}, ErrBadTurbo},
	}
	for _, c := range cases {
		if err := i7.Validate(c.cfg); !errors.Is(err, c.want) {
			t.Errorf("Validate(%v) = %v, want %v", c.cfg, err, c.want)
		}
	}
	// Turbo on a part without it.
	c2d, err := ByName(Core2D65Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2d.Validate(Config{Cores: 2, SMTWays: 1, ClockGHz: 2.4, Turbo: true}); !errors.Is(err, ErrBadTurbo) {
		t.Errorf("want ErrBadTurbo on non-turbo part, got %v", err)
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Cores: 4, SMTWays: 2, ClockGHz: 2.67, Turbo: true}
	if got := c.String(); got != "4C2T@2.7GHz TB" {
		t.Fatalf("String = %q", got)
	}
	c.Turbo = false
	if got := c.String(); got != "4C2T@2.7GHz" {
		t.Fatalf("String = %q", got)
	}
}

func TestConfigSpaceSize(t *testing.T) {
	all := ConfigSpace()
	if len(all) != 45 {
		t.Fatalf("config space = %d configurations, want the paper's 45", len(all))
	}
	at45 := ConfigSpace45nm()
	if len(at45) != 29 {
		t.Fatalf("45nm space = %d configurations, want the paper's 29", len(at45))
	}
	seen := map[string]bool{}
	for _, cp := range all {
		key := cp.String()
		if seen[key] {
			t.Fatalf("duplicate configuration %s", key)
		}
		seen[key] = true
	}
}

func TestConfigSpaceIncludesAllStocks(t *testing.T) {
	all := ConfigSpace()
	for _, p := range Fleet() {
		found := false
		for _, cp := range all {
			if cp.Proc.Name == p.Name && cp.IsStock() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("config space missing stock configuration of %s", p.Name)
		}
	}
}

func TestConfigSpaceAtomD45HasAllFour(t *testing.T) {
	// Table 5 notes that all four AtomD (45) configurations fail to be
	// Pareto efficient; the space must therefore contain exactly four.
	n := 0
	for _, cp := range ConfigSpace45nm() {
		if cp.Proc.Name == AtomD45Name {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("AtomD (45) has %d configurations, want 4", n)
	}
}

func TestStockConfigsOrder(t *testing.T) {
	stocks := StockConfigs()
	if len(stocks) != 8 {
		t.Fatalf("stock configs = %d, want 8", len(stocks))
	}
	for _, cp := range stocks {
		if !cp.IsStock() {
			t.Errorf("%s: not stock", cp)
		}
	}
}

func TestHWContexts(t *testing.T) {
	i7, err := ByName(I7Name)
	if err != nil {
		t.Fatal(err)
	}
	if got := i7.HWContexts(); got != 8 {
		t.Fatalf("i7 contexts = %d, want 8", got)
	}
	if got := (Config{Cores: 2, SMTWays: 2}).Contexts(); got != 4 {
		t.Fatalf("config contexts = %d, want 4", got)
	}
}

func TestTurboCapability(t *testing.T) {
	for _, c := range []struct {
		name string
		want bool
	}{
		{I7Name, true}, {I5Name, true},
		{Pentium4Name, false}, {Core2D45Name, false}, {Atom45Name, false},
	} {
		p, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if p.HasTurbo() != c.want {
			t.Errorf("%s HasTurbo = %v, want %v", c.name, p.HasTurbo(), c.want)
		}
	}
}

// Property: every config in the space validates against its own part, and
// VoltsAt is monotone non-decreasing across each part's DVFS range.
func TestQuickVoltsMonotone(t *testing.T) {
	f := func(stepRaw uint8) bool {
		for _, p := range Fleet() {
			lo, hi := p.MinClock(), p.MaxClock()
			if hi == lo {
				continue
			}
			step := (hi - lo) / (2 + float64(stepRaw%16))
			prev := p.VoltsAt(lo)
			for g := lo + step; g <= hi+1e-9; g += step {
				cur := p.VoltsAt(g)
				if cur < prev-1e-12 {
					return false
				}
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestVIDRangeBracketsVFTable(t *testing.T) {
	for _, p := range Fleet() {
		if p.Spec.VIDMinV == 0 {
			continue // unpublished (Pentium 4)
		}
		for _, vf := range p.Model.VF {
			if vf.Volts < p.Spec.VIDMinV-1e-9 || vf.Volts > p.Spec.VIDMaxV+1e-9 {
				t.Errorf("%s: VF point %+v outside VID range [%v, %v]",
					p.Name, vf, p.Spec.VIDMinV, p.Spec.VIDMaxV)
			}
		}
	}
}
