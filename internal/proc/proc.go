// Package proc describes the experimental processor fleet: the eight Intel
// IA32 processors of Table 3, their microarchitectures, process
// technologies, DVFS operating points, and the hardware configuration
// space (cores, SMT, clock, Turbo Boost) that the paper controls through
// the BIOS (Section 2.8).
//
// Each Processor carries two kinds of data:
//
//   - the published specifications from Table 3 (release date/price, core
//     and SMT counts, LLC size, clock, node, transistor count, die area,
//     VID range, TDP, memory configuration), used directly by Table 3 and
//     the per-transistor analysis of Figure 11(b); and
//
//   - model parameters for the performance/power simulator (issue width,
//     ordering, effective memory latency and bandwidth, per-structure
//     power coefficients), set from public microarchitectural facts and
//     calibrated so the fleet reproduces the paper's measured shapes.
//     DESIGN.md documents this substitution.
package proc

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Microarch identifies one of the four microarchitecture families in the
// study.
type Microarch string

// The four microarchitectures of Table 3.
const (
	NetBurst Microarch = "NetBurst" // Pentium 4: deep pipeline, trace cache
	Core     Microarch = "Core"     // Conroe/Kentsfield/Wolfdale
	Bonnell  Microarch = "Bonnell"  // Atom: dual-issue in-order
	Nehalem  Microarch = "Nehalem"  // Bloomfield/Clarkdale
)

// VFPoint is one DVFS operating point: a clock frequency and the core
// voltage the part requires at that frequency.
type VFPoint struct {
	GHz   float64
	Volts float64
}

// Spec holds the published Table 3 data for one processor.
type Spec struct {
	SSpec        string  // Intel sSpec ordering code, e.g. "SLBCH"
	Release      string  // release date, e.g. "Nov '08"
	PriceUSD     float64 // release price; 0 when unpublished (Pentium 4)
	Cores        int     // physical cores
	SMTWays      int     // hardware threads per core (1 = no SMT)
	LLCBytes     int64   // last-level cache size
	ClockGHz     float64 // stock base clock
	NodeNM       int     // process technology
	TransistorsM float64 // transistors in the package, millions
	DieMM2       float64 // die area
	VIDMinV      float64 // VID range low (0 when unpublished)
	VIDMaxV      float64 // VID range high
	TDPWatts     float64 // thermal design power
	FSBMHz       float64 // front-side bus, 0 for QPI/DMI parts
	MemBWGBs     float64 // memory bandwidth for FSB-less parts
	DRAM         string  // DRAM technology
}

// Model holds the simulator parameters for one processor. These express
// the microarchitecture in the performance/power model's terms.
type Model struct {
	IssueWidth    int     // peak instructions issued per cycle
	OutOfOrder    bool    // OoO window vs in-order pipeline
	PipelineDepth int     // stages; deep pipelines pay higher penalties
	IssueEff      float64 // fraction of workload ILP converted into issue
	MLPHiding     float64 // fraction of memory stall hidden by OoO/MLP, 0..1
	BranchPenalty float64 // extra CPI per branch-heavy workload unit
	SMTFillEff    float64 // how well a 2nd thread fills idle issue slots
	SMTOverhead   float64 // fixed throughput tax of SMT resource partitioning

	MemLatencyNs float64 // effective DRAM access latency seen by a miss
	DRAMBWGBs    float64 // sustainable memory bandwidth
	L2KBPerCore  float64 // effective private/mid-level capacity per core

	// Power model (see internal/power): P = uncore + sum over cores of
	// dynamic + static, with dynamic scaled by f*V^2 relative to the
	// stock operating point and by workload activity.
	UncoreWatts   float64 // chip-wide always-on power at stock voltage
	CoreDynWatts  float64 // one core's dynamic power at stock f, V, activity=1
	CoreStatWatts float64 // one core's leakage at stock voltage, nominal temp
	GatingEff     float64 // fraction of an idle core's leakage removed by gating
	IdleDynFrac   float64 // dynamic power an idle enabled core still draws (pre-Nehalem parts keep clocking)
	SMTActivity   float64 // extra core activity when a 2nd SMT thread runs
	IdleActivity  float64 // activity floor of an active but stalled core

	// Turbo Boost (Nehalem parts only; zero elsewhere).
	TurboStepGHz    float64 // one turbo step (133 MHz on Nehalem)
	TurboStepsAll   int     // steps available with >1 active core
	TurboStepsOne   int     // steps available with exactly 1 active core
	TurboVoltsBoost float64 // extra volts applied while boosting

	// VF is the DVFS table from the part's minimum to maximum clock.
	// Entries must be ordered by ascending frequency.
	VF []VFPoint
}

// Processor is one member of the experimental fleet.
type Processor struct {
	// Name is the paper's shorthand, e.g. "i7 (45)".
	Name string
	// LongName is the marketing name, e.g. "Core i7 920".
	LongName string
	// Arch is the microarchitecture family.
	Arch Microarch
	// Codename is the family codename, e.g. "Bloomfield".
	Codename string
	Spec     Spec
	Model    Model
}

// HWContexts returns the total hardware contexts (cores x SMT ways).
func (p *Processor) HWContexts() int { return p.Spec.Cores * p.Spec.SMTWays }

// HasTurbo reports whether the part implements Turbo Boost.
func (p *Processor) HasTurbo() bool { return p.Model.TurboStepsAll > 0 }

// MinClock returns the lowest DVFS frequency.
func (p *Processor) MinClock() float64 { return p.Model.VF[0].GHz }

// MaxClock returns the highest DVFS frequency (the stock clock).
func (p *Processor) MaxClock() float64 { return p.Model.VF[len(p.Model.VF)-1].GHz }

// VoltsAt interpolates the DVFS table to the core voltage at the given
// frequency. Frequencies outside the table clamp to its ends.
func (p *Processor) VoltsAt(ghz float64) float64 {
	vf := p.Model.VF
	if ghz <= vf[0].GHz {
		return vf[0].Volts
	}
	last := vf[len(vf)-1]
	if ghz >= last.GHz {
		// Extrapolate linearly above the table for turbo frequencies.
		if len(vf) >= 2 {
			prev := vf[len(vf)-2]
			slope := (last.Volts - prev.Volts) / (last.GHz - prev.GHz)
			return last.Volts + slope*(ghz-last.GHz)
		}
		return last.Volts
	}
	for i := 1; i < len(vf); i++ {
		if ghz <= vf[i].GHz {
			lo, hi := vf[i-1], vf[i]
			frac := (ghz - lo.GHz) / (hi.GHz - lo.GHz)
			return lo.Volts + frac*(hi.Volts-lo.Volts)
		}
	}
	return last.Volts
}

// ReleaseTime parses the Release field ("Nov '08") into a time for
// historical ordering. The Pentium 4's "May '03" parses like the rest.
func (p *Processor) ReleaseTime() (time.Time, error) {
	t, err := time.Parse("Jan '06", p.Spec.Release)
	if err != nil {
		return time.Time{}, fmt.Errorf("proc: bad release date %q: %w", p.Spec.Release, err)
	}
	return t, nil
}

// Config is one BIOS-style hardware configuration of a processor: the
// paper's controlled-experiment knobs from Section 2.8.
type Config struct {
	Cores    int     // enabled cores, 1..Spec.Cores
	SMTWays  int     // enabled threads per core, 1..Spec.SMTWays
	ClockGHz float64 // operating frequency, within the DVFS range
	Turbo    bool    // Turbo Boost enabled (only at max clock, Nehalem only)
}

// Contexts returns the configuration's hardware contexts.
func (c Config) Contexts() int { return c.Cores * c.SMTWays }

// configStrings memoizes Config.String: the rendered notation keys the
// harness's machine memo, the daemon's cache keys, and every CSV row, so
// the study formats the same few dozen configurations millions of times.
// Config is a flat value type, so it keys the memo directly.
var configStrings sync.Map // Config -> string

// String renders the paper's compact notation, e.g. "4C2T@2.7GHz" or
// "1C1T@2.7GHz NoTB" for a turbo-capable part with turbo disabled.
func (c Config) String() string {
	if s, ok := configStrings.Load(c); ok {
		return s.(string)
	}
	s := fmt.Sprintf("%dC%dT@%.1fGHz", c.Cores, c.SMTWays, c.ClockGHz)
	if c.Turbo {
		s += " TB"
	}
	configStrings.Store(c, s)
	return s
}

// Stock returns the processor's stock configuration: all cores, all SMT
// ways, maximum clock, Turbo enabled where the part has it.
func (p *Processor) Stock() Config {
	return Config{
		Cores:    p.Spec.Cores,
		SMTWays:  p.Spec.SMTWays,
		ClockGHz: p.MaxClock(),
		Turbo:    p.HasTurbo(),
	}
}

// Errors returned by Validate.
var (
	ErrBadCores = errors.New("proc: core count outside the part's range")
	ErrBadSMT   = errors.New("proc: SMT ways outside the part's range")
	ErrBadClock = errors.New("proc: clock outside the part's DVFS range")
	ErrBadTurbo = errors.New("proc: turbo requires a turbo-capable part at max clock")
)

// Validate checks that the configuration is achievable on this part, the
// way the BIOS constrains the paper's experiments: cores and SMT within
// range, clock within the DVFS table, and Turbo only on Nehalem parts at
// their highest clock setting (Section 3.6).
func (p *Processor) Validate(c Config) error {
	if c.Cores < 1 || c.Cores > p.Spec.Cores {
		return fmt.Errorf("%w: %d on %s", ErrBadCores, c.Cores, p.Name)
	}
	if c.SMTWays < 1 || c.SMTWays > p.Spec.SMTWays {
		return fmt.Errorf("%w: %d on %s", ErrBadSMT, c.SMTWays, p.Name)
	}
	const tol = 1e-9
	if c.ClockGHz < p.MinClock()-tol || c.ClockGHz > p.MaxClock()+tol {
		return fmt.Errorf("%w: %.2f on %s [%.2f, %.2f]",
			ErrBadClock, c.ClockGHz, p.Name, p.MinClock(), p.MaxClock())
	}
	if c.Turbo {
		if !p.HasTurbo() {
			return fmt.Errorf("%w: %s has no Turbo Boost", ErrBadTurbo, p.Name)
		}
		if c.ClockGHz < p.MaxClock()-tol {
			return fmt.Errorf("%w: turbo only engages at the max clock (%s at %.2f)",
				ErrBadTurbo, p.Name, c.ClockGHz)
		}
	}
	return nil
}
