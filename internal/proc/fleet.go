package proc

import "fmt"

// Fleet names, using the paper's shorthand: the microarchitecture or brand
// followed by the process node in nanometres.
const (
	Pentium4Name = "Pentium4 (130)"
	Core2D65Name = "Core2D (65)"
	Core2Q65Name = "Core2Q (65)"
	I7Name       = "i7 (45)"
	Atom45Name   = "Atom (45)"
	Core2D45Name = "Core2D (45)"
	AtomD45Name  = "AtomD (45)"
	I5Name       = "i5 (32)"
)

// Fleet returns the eight experimental processors of Table 3, ordered by
// release date as in the paper. Callers receive fresh copies; mutating the
// result does not affect subsequent calls.
func Fleet() []*Processor {
	ps := []*Processor{
		pentium4(), core2D65(), core2Q65(), i7_45(),
		atom45(), core2D45(), atomD45(), i5_32(),
	}
	return ps
}

// ByName returns the fleet processor with the given paper shorthand.
func ByName(name string) (*Processor, error) {
	for _, p := range Fleet() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("proc: unknown processor %q", name)
}

// ReferenceNames lists the four processors whose average execution time
// defines the paper's reference time (Section 2.6): one from each
// microarchitecture and each technology generation.
func ReferenceNames() []string {
	return []string{Pentium4Name, Core2D65Name, Atom45Name, I5Name}
}

// pentium4 is the 2003 Northwood Pentium 4: the NetBurst deep-pipeline
// design, first commercial SMT, 130nm. Its VID range is unpublished; the
// model uses the family's nominal 1.5V.
func pentium4() *Processor {
	return &Processor{
		Name:     Pentium4Name,
		LongName: "Pentium 4",
		Arch:     NetBurst,
		Codename: "Northwood",
		Spec: Spec{
			SSpec: "SL6WF", Release: "May '03", PriceUSD: 0,
			Cores: 1, SMTWays: 2, LLCBytes: 512 << 10,
			ClockGHz: 2.4, NodeNM: 130, TransistorsM: 55, DieMM2: 131,
			TDPWatts: 66, FSBMHz: 800, DRAM: "DDR-400",
		},
		Model: Model{
			IssueWidth: 3, OutOfOrder: true, PipelineDepth: 20,
			IssueEff: 0.58, MLPHiding: 0.15, BranchPenalty: 1.00,
			SMTFillEff: 0.45, SMTOverhead: 0.14,
			MemLatencyNs: 130, DRAMBWGBs: 3.2, L2KBPerCore: 512,
			UncoreWatts: 14, CoreDynWatts: 29, CoreStatWatts: 8,
			GatingEff: 0.25, IdleDynFrac: 0.30, SMTActivity: 1.05, IdleActivity: 0.72,
			VF: []VFPoint{{2.4, 1.50}},
		},
	}
}

// core2D65 is the 2006 Conroe Core 2 Duo E6600: the Core microarchitecture
// at 65nm.
func core2D65() *Processor {
	return &Processor{
		Name:     Core2D65Name,
		LongName: "Core 2 Duo E6600",
		Arch:     Core,
		Codename: "Conroe",
		Spec: Spec{
			SSpec: "SL9S8", Release: "Jul '06", PriceUSD: 316,
			Cores: 2, SMTWays: 1, LLCBytes: 4 << 20,
			ClockGHz: 2.4, NodeNM: 65, TransistorsM: 291, DieMM2: 143,
			VIDMinV: 0.85, VIDMaxV: 1.50,
			TDPWatts: 65, FSBMHz: 1066, DRAM: "DDR2-800",
		},
		Model: Model{
			IssueWidth: 4, OutOfOrder: true, PipelineDepth: 14,
			IssueEff: 1.0, MLPHiding: 0.30, BranchPenalty: 0.18,
			MemLatencyNs: 95, DRAMBWGBs: 5.5, L2KBPerCore: 2048,
			UncoreWatts: 9, CoreDynWatts: 9.5, CoreStatWatts: 3.0,
			GatingEff: 0.10, IdleDynFrac: 0.45, SMTActivity: 1, IdleActivity: 0.50,
			VF: []VFPoint{{1.6, 1.09}, {2.0, 1.18}, {2.4, 1.30}},
		},
	}
}

// core2Q65 is the 2007 Kentsfield Core 2 Quad Q6600: two Conroe dies in
// one package, the fleet's top-of-market 65nm part.
func core2Q65() *Processor {
	return &Processor{
		Name:     Core2Q65Name,
		LongName: "Core 2 Quad Q6600",
		Arch:     Core,
		Codename: "Kentsfield",
		Spec: Spec{
			SSpec: "SL9UM", Release: "Jan '07", PriceUSD: 851,
			Cores: 4, SMTWays: 1, LLCBytes: 8 << 20,
			ClockGHz: 2.4, NodeNM: 65, TransistorsM: 582, DieMM2: 286,
			VIDMinV: 0.85, VIDMaxV: 1.50,
			TDPWatts: 105, FSBMHz: 1066, DRAM: "DDR2-800",
		},
		Model: Model{
			IssueWidth: 4, OutOfOrder: true, PipelineDepth: 14,
			IssueEff: 1.0, MLPHiding: 0.30, BranchPenalty: 0.18,
			MemLatencyNs: 98, DRAMBWGBs: 5.5, L2KBPerCore: 2048,
			UncoreWatts: 17, CoreDynWatts: 11.5, CoreStatWatts: 4.0,
			GatingEff: 0.10, IdleDynFrac: 0.45, SMTActivity: 1, IdleActivity: 0.50,
			VF: []VFPoint{{1.6, 1.09}, {2.0, 1.18}, {2.4, 1.30}},
		},
	}
}

// i7_45 is the 2008 Bloomfield Core i7 920: the first Nehalem, 45nm,
// integrated memory controller, QPI, SMT, and Turbo Boost.
func i7_45() *Processor {
	return &Processor{
		Name:     I7Name,
		LongName: "Core i7 920",
		Arch:     Nehalem,
		Codename: "Bloomfield",
		Spec: Spec{
			SSpec: "SLBCH", Release: "Nov '08", PriceUSD: 284,
			Cores: 4, SMTWays: 2, LLCBytes: 8 << 20,
			ClockGHz: 2.67, NodeNM: 45, TransistorsM: 731, DieMM2: 263,
			VIDMinV: 0.80, VIDMaxV: 1.38,
			TDPWatts: 130, MemBWGBs: 25.6, DRAM: "DDR3-1066",
		},
		Model: Model{
			IssueWidth: 4, OutOfOrder: true, PipelineDepth: 14,
			IssueEff: 1.11, MLPHiding: 0.45, BranchPenalty: 0.15,
			SMTFillEff: 0.50, SMTOverhead: 0.02,
			MemLatencyNs: 60, DRAMBWGBs: 16, L2KBPerCore: 2048,
			UncoreWatts: 4, CoreDynWatts: 11.0, CoreStatWatts: 2.5,
			GatingEff: 0.55, IdleDynFrac: 0.08, SMTActivity: 1.20, IdleActivity: 0.35,
			TurboStepGHz: 0.133, TurboStepsAll: 1, TurboStepsOne: 2,
			TurboVoltsBoost: 0.10,
			VF: []VFPoint{
				{1.60, 0.97}, {2.13, 1.07}, {2.40, 1.14}, {2.67, 1.22},
			},
		},
	}
}

// atom45 is the 2008 Diamondville Atom 230: Bonnell's dual-issue in-order
// pipeline at the extreme low-power end of the market.
func atom45() *Processor {
	return &Processor{
		Name:     Atom45Name,
		LongName: "Atom 230",
		Arch:     Bonnell,
		Codename: "Diamondville",
		Spec: Spec{
			SSpec: "SLB6Z", Release: "Jun '08", PriceUSD: 29,
			Cores: 1, SMTWays: 2, LLCBytes: 512 << 10,
			ClockGHz: 1.7, NodeNM: 45, TransistorsM: 47, DieMM2: 26,
			VIDMinV: 0.90, VIDMaxV: 1.16,
			TDPWatts: 4, FSBMHz: 533, DRAM: "DDR2-800",
		},
		Model: Model{
			IssueWidth: 2, OutOfOrder: false, PipelineDepth: 16,
			IssueEff: 0.42, MLPHiding: 0.05, BranchPenalty: 0.55,
			SMTFillEff: 0.75, SMTOverhead: 0.02,
			MemLatencyNs: 95, DRAMBWGBs: 3.0, L2KBPerCore: 512,
			UncoreWatts: 1.35, CoreDynWatts: 1.00, CoreStatWatts: 0.30,
			GatingEff: 0.40, IdleDynFrac: 0.25, SMTActivity: 1.18, IdleActivity: 0.55,
			VF: []VFPoint{{1.7, 1.05}},
		},
	}
}

// core2D45 is the 2009 Wolfdale Core 2 Duo E7600: the Core die shrink to
// 45nm, paired with Conroe for the die-shrink study (Figure 8).
func core2D45() *Processor {
	return &Processor{
		Name:     Core2D45Name,
		LongName: "Core 2 Duo E7600",
		Arch:     Core,
		Codename: "Wolfdale",
		Spec: Spec{
			SSpec: "SLGTD", Release: "May '09", PriceUSD: 133,
			Cores: 2, SMTWays: 1, LLCBytes: 3 << 20,
			ClockGHz: 3.1, NodeNM: 45, TransistorsM: 228, DieMM2: 82,
			VIDMinV: 0.85, VIDMaxV: 1.36,
			TDPWatts: 65, FSBMHz: 1066, DRAM: "DDR2-800",
		},
		Model: Model{
			IssueWidth: 4, OutOfOrder: true, PipelineDepth: 14,
			IssueEff: 1.06, MLPHiding: 0.32, BranchPenalty: 0.17,
			MemLatencyNs: 92, DRAMBWGBs: 6.0, L2KBPerCore: 1536,
			UncoreWatts: 7, CoreDynWatts: 8.0, CoreStatWatts: 2.0,
			GatingEff: 0.15, IdleDynFrac: 0.45, SMTActivity: 1, IdleActivity: 0.50,
			VF: []VFPoint{{1.6, 1.02}, {2.4, 1.19}, {3.1, 1.36}},
		},
	}
}

// atomD45 is the 2009 Pineview Atom D510: dual-core Bonnell with the
// memory controller and GPU moved into the package.
func atomD45() *Processor {
	return &Processor{
		Name:     AtomD45Name,
		LongName: "Atom D510",
		Arch:     Bonnell,
		Codename: "Pineview",
		Spec: Spec{
			SSpec: "SLBLA", Release: "Dec '09", PriceUSD: 63,
			Cores: 2, SMTWays: 2, LLCBytes: 1 << 20,
			ClockGHz: 1.7, NodeNM: 45, TransistorsM: 176, DieMM2: 87,
			VIDMinV: 0.80, VIDMaxV: 1.17,
			TDPWatts: 13, FSBMHz: 665, DRAM: "DDR2-800",
		},
		Model: Model{
			IssueWidth: 2, OutOfOrder: false, PipelineDepth: 16,
			IssueEff: 0.42, MLPHiding: 0.05, BranchPenalty: 0.55,
			SMTFillEff: 0.73, SMTOverhead: 0.02,
			MemLatencyNs: 88, DRAMBWGBs: 4.0, L2KBPerCore: 512,
			UncoreWatts: 2.2, CoreDynWatts: 1.20, CoreStatWatts: 0.35,
			GatingEff: 0.40, IdleDynFrac: 0.25, SMTActivity: 1.18, IdleActivity: 0.55,
			VF: []VFPoint{{1.7, 1.02}},
		},
	}
}

// i5_32 is the 2010 Clarkdale Core i5 670: the Nehalem die shrink to 32nm
// (Westmere core), with a 45nm GPU die sharing the package.
func i5_32() *Processor {
	return &Processor{
		Name:     I5Name,
		LongName: "Core i5 670",
		Arch:     Nehalem,
		Codename: "Clarkdale",
		Spec: Spec{
			SSpec: "SLBLT", Release: "Jan '10", PriceUSD: 284,
			Cores: 2, SMTWays: 2, LLCBytes: 4 << 20,
			ClockGHz: 3.46, NodeNM: 32, TransistorsM: 382, DieMM2: 81,
			VIDMinV: 0.65, VIDMaxV: 1.40,
			TDPWatts: 73, MemBWGBs: 21.0, DRAM: "DDR3-1333",
		},
		Model: Model{
			IssueWidth: 4, OutOfOrder: true, PipelineDepth: 14,
			IssueEff: 1.12, MLPHiding: 0.45, BranchPenalty: 0.15,
			SMTFillEff: 0.50, SMTOverhead: 0.02,
			MemLatencyNs: 75, DRAMBWGBs: 12, L2KBPerCore: 2048,
			UncoreWatts: 8, CoreDynWatts: 10.5, CoreStatWatts: 2.0,
			GatingEff: 0.80, IdleDynFrac: 0.03, SMTActivity: 1.20, IdleActivity: 0.35,
			TurboStepGHz: 0.133, TurboStepsAll: 1, TurboStepsOne: 2,
			TurboVoltsBoost: 0.02,
			VF: []VFPoint{
				{1.20, 0.90}, {2.00, 0.94}, {2.66, 0.99}, {3.46, 1.12},
			},
		},
	}
}
