package governor

import (
	"testing"
	"testing/quick"

	"repro/internal/proc"
)

func i5(t *testing.T) *proc.Processor {
	t.Helper()
	p, err := proc.ByName(proc.I5Name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPolicies(t *testing.T) {
	p := i5(t)
	perf, err := New(p, Performance)
	if err != nil {
		t.Fatal(err)
	}
	if perf.Freq() != p.MaxClock() {
		t.Fatalf("performance starts at %v, want max", perf.Freq())
	}
	save, err := New(p, Powersave)
	if err != nil {
		t.Fatal(err)
	}
	if save.Freq() != p.MinClock() {
		t.Fatalf("powersave starts at %v, want min", save.Freq())
	}
	if _, err := New(nil, Performance); err == nil {
		t.Fatal("nil processor accepted")
	}
	if _, err := New(p, Policy(99)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestStaticPoliciesNeverMove(t *testing.T) {
	p := i5(t)
	for _, pol := range []Policy{Performance, Powersave} {
		g, err := New(p, pol)
		if err != nil {
			t.Fatal(err)
		}
		start := g.Freq()
		for _, u := range []float64{0, 0.5, 1, 0.2, 0.99} {
			f, err := g.Tick(u)
			if err != nil {
				t.Fatal(err)
			}
			if f != start {
				t.Fatalf("%v moved from %v to %v", pol, start, f)
			}
		}
	}
}

func TestOndemandJumpsAndDecays(t *testing.T) {
	p := i5(t)
	g, err := New(p, Ondemand)
	if err != nil {
		t.Fatal(err)
	}
	// High load: straight to maximum (the ondemand signature).
	f, err := g.Tick(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if f != p.MaxClock() {
		t.Fatalf("ondemand under load at %v, want max %v", f, p.MaxClock())
	}
	// Idle: steps down one DVFS point per sample, eventually to min.
	prev := f
	for i := 0; i < 10; i++ {
		f, err = g.Tick(0.05)
		if err != nil {
			t.Fatal(err)
		}
		if f > prev {
			t.Fatal("ondemand stepped up while idle")
		}
		prev = f
	}
	if f != p.MinClock() {
		t.Fatalf("ondemand idled at %v, want min %v", f, p.MinClock())
	}
	// Moderate load between the thresholds holds steady.
	g2, err := New(p, Ondemand)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Tick(0.95); err != nil {
		t.Fatal(err)
	}
	before := g2.Freq()
	if f, err := g2.Tick(0.6); err != nil || f != before {
		t.Fatalf("moderate load moved freq %v -> %v (%v)", before, f, err)
	}
}

func TestUserspace(t *testing.T) {
	p := i5(t)
	g, err := New(p, Userspace)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetFreq(2.0); err != nil {
		t.Fatal(err)
	}
	if f, err := g.Tick(1.0); err != nil || f != 2.0 {
		t.Fatalf("userspace moved: %v (%v)", f, err)
	}
	// Clamping.
	if err := g.SetFreq(99); err != nil {
		t.Fatal(err)
	}
	if g.Freq() != p.MaxClock() {
		t.Fatalf("SetFreq(99) = %v, want clamp to max", g.Freq())
	}
	perf, err := New(p, Performance)
	if err != nil {
		t.Fatal(err)
	}
	if err := perf.SetFreq(2.0); err == nil {
		t.Fatal("SetFreq under performance accepted")
	}
}

func TestTickRejectsBadUtilization(t *testing.T) {
	g, err := New(i5(t), Ondemand)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Tick(-0.1); err == nil {
		t.Fatal("negative utilization accepted")
	}
	if _, err := g.Tick(1.1); err == nil {
		t.Fatal("utilization above 1 accepted")
	}
}

// burstyTrace is quiet with periodic bursts, the shape where ondemand
// earns its keep.
func burstyTrace() []Trace {
	var tr []Trace
	for i := 0; i < 50; i++ {
		u := 0.1
		if i%10 < 2 {
			u = 0.95
		}
		tr = append(tr, Trace{Utilization: u, Seconds: 0.1})
	}
	return tr
}

func TestSimulatePolicyOrdering(t *testing.T) {
	p := i5(t)
	run := func(pol Policy) SimResult {
		g, err := New(p, pol)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Simulate(burstyTrace(), 0.8)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	perf := run(Performance)
	save := run(Powersave)
	ond := run(Ondemand)
	// Powersave uses the least energy, performance the most; ondemand
	// sits between on energy while recovering most of the work.
	if !(save.EnergyJ < ond.EnergyJ && ond.EnergyJ < perf.EnergyJ) {
		t.Fatalf("energy ordering: save %v, ondemand %v, perf %v",
			save.EnergyJ, ond.EnergyJ, perf.EnergyJ)
	}
	if !(save.WorkDone < ond.WorkDone && ond.WorkDone <= perf.WorkDone) {
		t.Fatalf("work ordering: save %v, ondemand %v, perf %v",
			save.WorkDone, ond.WorkDone, perf.WorkDone)
	}
	if ond.Switches == 0 {
		t.Fatal("ondemand never switched on a bursty trace")
	}
	if perf.Switches != 0 || save.Switches != 0 {
		t.Fatal("static policies switched")
	}
}

func TestSimulateErrors(t *testing.T) {
	g, err := New(i5(t), Ondemand)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Simulate(nil, 0.8); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := g.Simulate([]Trace{{Utilization: 0.5, Seconds: 0}}, 0.8); err == nil {
		t.Fatal("zero-length interval accepted")
	}
	if _, err := g.Simulate(burstyTrace(), 0); err == nil {
		t.Fatal("zero activity accepted")
	}
}

func TestKernelBugInversion(t *testing.T) {
	// Section 2.8: under the buggy OS hotplug path, removing cores does
	// not reduce power the way BIOS disabling does — and shows the
	// paper's observed inversion on multicore parts.
	for _, name := range []string{proc.I7Name, proc.Core2Q65Name} {
		p, err := proc.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunBugReport(p, 0.8, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		// BIOS path: strictly increasing power with active cores.
		for i := 1; i < len(r.BIOSWatts); i++ {
			if r.BIOSWatts[i] <= r.BIOSWatts[i-1] {
				t.Errorf("%s: BIOS power not increasing with cores: %v", name, r.BIOSWatts)
			}
		}
		// OS path: the anomaly appears.
		if !r.Anomalous() {
			t.Errorf("%s: OS offlining shows no anomaly: %v", name, r.OSWatts)
		}
		// And OS offlining always burns more than BIOS disabling for
		// the same active-core count (with any core actually offlined).
		for i := 0; i < len(r.OSWatts)-1; i++ {
			if r.OSWatts[i] <= r.BIOSWatts[i] {
				t.Errorf("%s: OS offline %v not above BIOS disable %v at %d cores",
					name, r.OSWatts[i], r.BIOSWatts[i], i+1)
			}
		}
	}
}

func TestOfflinePowerErrors(t *testing.T) {
	p := i5(t)
	if _, err := OfflinePower(nil, 1, BIOSDisable, 0.8, 0.5); err == nil {
		t.Fatal("nil processor accepted")
	}
	if _, err := OfflinePower(p, 0, BIOSDisable, 0.8, 0.5); err == nil {
		t.Fatal("zero active cores accepted")
	}
	if _, err := OfflinePower(p, 99, BIOSDisable, 0.8, 0.5); err == nil {
		t.Fatal("too many active cores accepted")
	}
}

func TestMethodStrings(t *testing.T) {
	if BIOSDisable.String() == OSOffline.String() {
		t.Fatal("method names collide")
	}
	if Ondemand.String() != "ondemand" || Policy(42).String() == "" {
		t.Fatal("policy names wrong")
	}
}

// Property: a governor's frequency always stays within the DVFS range.
func TestQuickFreqBounded(t *testing.T) {
	p := i5(t)
	f := func(utils []uint8, polRaw uint8) bool {
		g, err := New(p, Policy(polRaw%3))
		if err != nil {
			return false
		}
		for _, u := range utils {
			freq, err := g.Tick(float64(u%101) / 100)
			if err != nil {
				return false
			}
			if freq < p.MinClock()-1e-9 || freq > p.MaxClock()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
