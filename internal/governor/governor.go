// Package governor models operating-system DVFS governors and the OS
// context-scaling bug that drove the paper to configure its hardware
// through the BIOS instead.
//
// Section 2.8: "We experimented with operating system configuration,
// which is far more convenient, but it was not sufficiently reliable.
// For example, operating system scaling of hardware contexts often
// caused power consumption to increase as hardware resources were
// decreased! Extensive investigation revealed a bug in the Linux
// kernel." This package reproduces both halves: the classic cpufreq
// governors (performance, powersave, ondemand, userspace) over a
// processor's DVFS table, and the buggy OS core-offlining path whose
// power goes the wrong way.
package governor

import (
	"errors"
	"fmt"

	"repro/internal/power"
	"repro/internal/proc"
)

// Policy names a cpufreq governor.
type Policy int

// The governors of the paper's 2.6.31-era cpufreq subsystem.
const (
	// Performance pins the maximum frequency.
	Performance Policy = iota
	// Powersave pins the minimum frequency.
	Powersave
	// Ondemand jumps to maximum when utilization crosses its up
	// threshold and steps down gradually when load falls (Pallipadi &
	// Starikovskiy, cited as [26] in the paper).
	Ondemand
	// Userspace holds whatever frequency was last requested.
	Userspace
)

// String returns the sysfs name.
func (p Policy) String() string {
	switch p {
	case Performance:
		return "performance"
	case Powersave:
		return "powersave"
	case Ondemand:
		return "ondemand"
	case Userspace:
		return "userspace"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Governor drives one processor's frequency from observed utilization.
type Governor struct {
	Policy Policy
	// UpThreshold is ondemand's trigger utilization (default 0.80, the
	// kernel's historical default).
	UpThreshold float64

	proc *proc.Processor
	freq float64
}

// New builds a governor for the processor, starting at the policy's
// natural frequency.
func New(p *proc.Processor, policy Policy) (*Governor, error) {
	if p == nil {
		return nil, errors.New("governor: nil processor")
	}
	g := &Governor{Policy: policy, UpThreshold: 0.80, proc: p}
	switch policy {
	case Performance:
		g.freq = p.MaxClock()
	case Powersave:
		g.freq = p.MinClock()
	case Ondemand, Userspace:
		g.freq = p.MinClock()
	default:
		return nil, fmt.Errorf("governor: unknown policy %v", policy)
	}
	return g, nil
}

// Freq returns the currently selected frequency.
func (g *Governor) Freq() float64 { return g.freq }

// SetFreq services a userspace request, clamped to the DVFS range.
func (g *Governor) SetFreq(ghz float64) error {
	if g.Policy != Userspace {
		return fmt.Errorf("governor: SetFreq under %v policy", g.Policy)
	}
	if ghz < g.proc.MinClock() {
		ghz = g.proc.MinClock()
	}
	if ghz > g.proc.MaxClock() {
		ghz = g.proc.MaxClock()
	}
	g.freq = ghz
	return nil
}

// Tick advances the governor by one sampling interval with the observed
// utilization in [0,1] and returns the frequency for the next interval.
func (g *Governor) Tick(utilization float64) (float64, error) {
	if utilization < 0 || utilization > 1 {
		return 0, fmt.Errorf("governor: utilization %v outside [0,1]", utilization)
	}
	switch g.Policy {
	case Performance, Powersave, Userspace:
		return g.freq, nil
	case Ondemand:
		if utilization >= g.UpThreshold {
			// Jump straight to the maximum, the ondemand signature.
			g.freq = g.proc.MaxClock()
			return g.freq, nil
		}
		// Step down one DVFS point when there is clear headroom.
		if utilization < g.UpThreshold*0.5 {
			g.freq = stepDown(g.proc, g.freq)
		}
		return g.freq, nil
	default:
		return 0, fmt.Errorf("governor: unknown policy %v", g.Policy)
	}
}

// stepDown returns the next-lower DVFS point, or the minimum.
func stepDown(p *proc.Processor, ghz float64) float64 {
	vf := p.Model.VF
	for i := len(vf) - 1; i >= 0; i-- {
		if vf[i].GHz < ghz-1e-9 {
			return vf[i].GHz
		}
	}
	return p.MinClock()
}

// Trace is one interval of a utilization trace.
type Trace struct {
	Utilization float64
	Seconds     float64
}

// SimResult summarizes a governed run over a utilization trace.
type SimResult struct {
	EnergyJ    float64
	AvgWatts   float64
	AvgClock   float64
	WorkDone   float64 // utilization-weighted clock-seconds: a proxy for work
	Seconds    float64
	Switches   int // frequency transitions
	FinalClock float64
}

// Simulate runs the governor over a utilization trace on a single active
// core of the processor and integrates power with the same model the
// machine simulator uses. It is the package's test bench for comparing
// policies (ondemand's energy savings versus its reaction lag).
func (g *Governor) Simulate(trace []Trace, activity float64) (SimResult, error) {
	if len(trace) == 0 {
		return SimResult{}, errors.New("governor: empty trace")
	}
	if activity <= 0 || activity > 1.2 {
		return SimResult{}, fmt.Errorf("governor: activity %v outside (0, 1.2]", activity)
	}
	var res SimResult
	loads := make([]power.CoreLoad, g.proc.Spec.Cores)
	for _, iv := range trace {
		if iv.Seconds <= 0 {
			return SimResult{}, errors.New("governor: non-positive interval")
		}
		prev := g.freq
		f, err := g.Tick(iv.Utilization)
		if err != nil {
			return SimResult{}, err
		}
		if f != prev {
			res.Switches++
		}
		for i := range loads {
			loads[i] = power.CoreLoad{}
			if i == 0 {
				loads[i] = power.CoreLoad{
					Active: true, Enabled: true,
					Activity:    activity,
					Utilization: iv.Utilization,
				}
			}
		}
		op := power.Operating{ClockGHz: f, Volts: g.proc.VoltsAt(f), TempC: 55}
		bd, err := power.Chip(g.proc, op, loads)
		if err != nil {
			return SimResult{}, err
		}
		res.EnergyJ += bd.TotalWatts * iv.Seconds
		res.AvgClock += f * iv.Seconds
		res.WorkDone += iv.Utilization * f * iv.Seconds
		res.Seconds += iv.Seconds
	}
	res.AvgWatts = res.EnergyJ / res.Seconds
	res.AvgClock /= res.Seconds
	res.FinalClock = g.freq
	return res, nil
}
