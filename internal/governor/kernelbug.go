package governor

import (
	"errors"

	"repro/internal/power"
	"repro/internal/proc"
)

// OfflineMethod selects how a core is removed from service.
type OfflineMethod int

const (
	// BIOSDisable removes the core at the firmware level: it is power
	// gated and invisible to the OS — the paper's chosen method.
	BIOSDisable OfflineMethod = iota
	// OSOffline removes the core through the 2.6.31 kernel's CPU
	// hotplug path. The kernel bug the paper hit (bugzilla #5471 lineage)
	// leaves the offlined core in a shallow idle loop without deep
	// C-states and blocks package-level idle states, so chip power can
	// *increase* as hardware resources decrease.
	OSOffline
)

// String names the method.
func (m OfflineMethod) String() string {
	if m == BIOSDisable {
		return "BIOS disable"
	}
	return "OS offline (buggy)"
}

// OfflinePower computes chip power for the processor with `active` cores
// running the given load and the remainder removed by the chosen method.
// It is the package's controlled experiment for the paper's Section 2.8
// observation.
func OfflinePower(p *proc.Processor, active int, method OfflineMethod, activity, utilization float64) (float64, error) {
	if p == nil {
		return 0, errors.New("governor: nil processor")
	}
	if active < 1 || active > p.Spec.Cores {
		return 0, errors.New("governor: active cores out of range")
	}
	loads := make([]power.CoreLoad, p.Spec.Cores)
	for i := range loads {
		switch {
		case i < active:
			loads[i] = power.CoreLoad{
				Active: true, Enabled: true,
				Activity: activity, Utilization: utilization,
			}
		case method == BIOSDisable:
			loads[i] = power.CoreLoad{} // gated
		default:
			// The buggy hotplug path: the "offline" core never reaches a
			// C-state and spins in a tight polling loop — which, unlike
			// real work, never stalls on memory. It can therefore draw
			// *more* than a working core, which is exactly the inversion
			// the paper observed.
			loads[i] = power.CoreLoad{
				Active: true, Enabled: true,
				Activity:    activity * 0.95,
				Utilization: 0.95,
			}
		}
	}
	f := p.MaxClock()
	op := power.Operating{ClockGHz: f, Volts: p.VoltsAt(f), TempC: 55}
	bd, err := power.Chip(p, op, loads)
	if err != nil {
		return 0, err
	}
	return bd.TotalWatts, nil
}

// BugReport compares the two offlining methods across core counts for a
// processor, reproducing the anomaly: under the buggy OS path, chip
// power fails to decrease (and can increase) as cores are removed.
type BugReport struct {
	Proc string
	// BIOSWatts[i] and OSWatts[i] are chip power with i+1 active cores.
	BIOSWatts []float64
	OSWatts   []float64
}

// Anomalous reports whether the OS path shows the paper's inversion:
// power with fewer active cores at or above power with more.
func (r BugReport) Anomalous() bool {
	for i := 1; i < len(r.OSWatts); i++ {
		if r.OSWatts[i-1] >= r.OSWatts[i] {
			return true
		}
	}
	return false
}

// RunBugReport evaluates both methods for every active-core count.
func RunBugReport(p *proc.Processor, activity, utilization float64) (BugReport, error) {
	if p == nil {
		return BugReport{}, errors.New("governor: nil processor")
	}
	r := BugReport{Proc: p.Name}
	for active := 1; active <= p.Spec.Cores; active++ {
		bw, err := OfflinePower(p, active, BIOSDisable, activity, utilization)
		if err != nil {
			return BugReport{}, err
		}
		ow, err := OfflinePower(p, active, OSOffline, activity, utilization)
		if err != nil {
			return BugReport{}, err
		}
		r.BIOSWatts = append(r.BIOSWatts, bw)
		r.OSWatts = append(r.OSWatts, ow)
	}
	return r, nil
}
