package sensor

import (
	"errors"
	"math"

	"repro/internal/fastrand"
)

// Logger models the AVR Stick data logger: it samples a calibrated sensor
// at 50Hz for the duration of a benchmark and accumulates the readings so
// the harness can compute the average power over the run, exactly as the
// paper does ("We execute each benchmark, log its measured power values,
// and then compute the average power consumption over the duration of the
// benchmark").
type Logger struct {
	read   func(amps float64) int
	reseed func(seed int64) // nil for loggers on the sensor's own stream
	cal    Calibration

	sumWatts float64 // watt-seconds
	sumSq    float64 // watt^2-seconds
	weight   float64 // total sampled seconds
	n        int
	maxWatts float64
	minWatts float64
}

// NewLogger wires a calibrated sensor into a logger using the sensor's
// own noise stream (single-goroutine use). It refuses a calibration that
// fails the paper's validity threshold.
func NewLogger(s *Sensor, cal Calibration) (*Logger, error) {
	if s == nil {
		return nil, errors.New("sensor: nil sensor")
	}
	return newLogger(s.ReadRaw, cal)
}

// NewLoggerSeeded wires a calibrated sensor into a logger with an
// independent, deterministic noise stream, safe to use concurrently
// with other loggers on the same sensor.
func NewLoggerSeeded(s *Sensor, cal Calibration, seed int64) (*Logger, error) {
	if s == nil {
		return nil, errors.New("sensor: nil sensor")
	}
	rng := fastrand.New(seed)
	l, err := newLogger(func(amps float64) int { return s.readWith(amps, rng) }, cal)
	if err != nil {
		return nil, err
	}
	l.reseed = rng.Seed
	return l, nil
}

func newLogger(read func(float64) int, cal Calibration) (*Logger, error) {
	if !cal.Valid() {
		return nil, ErrBadCalibration
	}
	return &Logger{read: read, cal: cal, minWatts: math.Inf(1), maxWatts: math.Inf(-1)}, nil
}

// Reseed clears the accumulators and re-arms the logger's noise stream
// from the seed, leaving it indistinguishable from a logger freshly built
// by NewLoggerSeeded with that seed. It lets the harness pool loggers
// across the study's many runs instead of building one per invocation.
// Loggers on the sensor's own stream (NewLogger) cannot be reseeded.
func (l *Logger) Reseed(seed int64) error {
	if l.reseed == nil {
		return errors.New("sensor: logger has no independent noise stream to reseed")
	}
	l.reseed(seed)
	l.Reset()
	return nil
}

// Sample senses the instantaneous chip power (supplied by the machine
// simulator as watts on the 12V rail), pushes it through the physical
// sensing chain (watts -> amps -> Hall voltage -> ADC code -> calibrated
// watts), and accumulates it. weight is the duration in seconds the sample
// represents; the simulator integrates with adaptive steps, so a sample
// may stand for more than one 20ms logger tick.
func (l *Logger) Sample(trueWatts, weight float64) {
	if weight <= 0 {
		return
	}
	code := l.read(trueWatts / SupplyVolts)
	w := l.cal.Watts(code)
	l.sumWatts += w * weight
	l.sumSq += w * w * weight
	l.weight += weight
	l.n++
	if w > l.maxWatts {
		l.maxWatts = w
	}
	if w < l.minWatts {
		l.minWatts = w
	}
}

// Trace summarizes a completed logging run.
type Trace struct {
	AvgWatts float64 // time-weighted average power over the run
	StdWatts float64 // time-weighted standard deviation of the samples
	MinWatts float64
	MaxWatts float64
	Samples  int     // number of raw samples taken
	Seconds  float64 // total weighted duration
}

// Finish returns the accumulated trace. It returns an error when no
// samples were taken, which would otherwise surface as NaN averages deep
// inside the harness.
func (l *Logger) Finish() (Trace, error) {
	if l.n == 0 {
		return Trace{}, errors.New("sensor: logger finished with no samples")
	}
	total := l.weight
	avg := l.sumWatts / total
	varW := l.sumSq/total - avg*avg
	if varW < 0 {
		varW = 0
	}
	return Trace{
		AvgWatts: avg,
		StdWatts: math.Sqrt(varW),
		MinWatts: l.minWatts,
		MaxWatts: l.maxWatts,
		Samples:  l.n,
		Seconds:  total,
	}, nil
}

// Reset clears the logger for reuse across benchmark invocations.
func (l *Logger) Reset() {
	l.sumWatts, l.sumSq, l.weight, l.n = 0, 0, 0, 0
	l.minWatts, l.maxWatts = math.Inf(1), math.Inf(-1)
}
