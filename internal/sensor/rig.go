package sensor

import (
	"fmt"
	"sort"
	"sync"
)

// Rig models the lab bench used to calibrate and validate the full set of
// meters before any measurement runs: one sensor per experimental machine,
// each calibrated against the reference current ladder and validated
// against known loads. The paper fabricated and calibrated one sensor per
// motherboard (acknowledgements and Section 2.5).
type Rig struct {
	meters map[string]*Meter
}

// Meter pairs a physical sensor with its accepted calibration. It keeps
// a pool of reseedable loggers so the harness's tens of thousands of runs
// (one logger each — a hundred per Java benchmark) recycle sample
// accumulators instead of allocating fresh ones.
type Meter struct {
	Machine string
	Sensor  *Sensor
	Cal     Calibration

	pool sync.Pool
}

// NewLogger creates a fresh logger over this meter's calibration, using
// the sensor's own noise stream (single-goroutine use).
func (m *Meter) NewLogger() (*Logger, error) { return NewLogger(m.Sensor, m.Cal) }

// NewLoggerSeeded creates a logger with an independent deterministic
// noise stream; concurrent measurement runs each take their own.
func (m *Meter) NewLoggerSeeded(seed int64) (*Logger, error) {
	return NewLoggerSeeded(m.Sensor, m.Cal, seed)
}

// AcquireLogger returns a pooled logger reseeded to the given stream, or
// a fresh one when the pool is empty — numerically indistinguishable from
// NewLoggerSeeded. Return it with ReleaseLogger once its trace is read.
func (m *Meter) AcquireLogger(seed int64) (*Logger, error) {
	if l, ok := m.pool.Get().(*Logger); ok {
		if err := l.Reseed(seed); err != nil {
			return nil, err
		}
		return l, nil
	}
	return NewLoggerSeeded(m.Sensor, m.Cal, seed)
}

// ReleaseLogger returns a logger obtained from AcquireLogger to the pool.
func (m *Meter) ReleaseLogger(l *Logger) {
	if l != nil {
		m.pool.Put(l)
	}
}

// NewRig builds and calibrates one meter per named machine. maxAmps maps a
// machine name to its sensor's rated range (the i7 needs the 30A part; the
// others use 5A parts). Machines absent from maxAmps default to 5A.
// Calibration failures abort rig construction: the paper does not proceed
// with an invalid meter.
func NewRig(machines []string, maxAmps map[string]float64, seed int64) (*Rig, error) {
	rig := &Rig{meters: make(map[string]*Meter, len(machines))}
	for i, name := range machines {
		rated := 5.0
		if a, ok := maxAmps[name]; ok {
			rated = a
		}
		s := New(rated, seed+int64(i)*7919)
		cal, err := s.Calibrate()
		if err != nil {
			return nil, fmt.Errorf("sensor: machine %s: %w", name, err)
		}
		rig.meters[name] = &Meter{Machine: name, Sensor: s, Cal: cal}
	}
	return rig, nil
}

// Meter returns the calibrated meter for the named machine.
func (r *Rig) Meter(machine string) (*Meter, error) {
	m, ok := r.meters[machine]
	if !ok {
		return nil, fmt.Errorf("sensor: no meter for machine %q", machine)
	}
	return m, nil
}

// Machines returns the rig's machine names in sorted order.
func (r *Rig) Machines() []string {
	names := make([]string, 0, len(r.meters))
	for n := range r.meters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ValidationReport summarizes a validation sweep of one meter against
// known currents, reporting the worst relative error observed.
type ValidationReport struct {
	Machine      string
	R2           float64
	MaxRelErr    float64
	MeanRelErr   float64
	PointsTested int
}

// Validate sweeps each meter across the supplied known currents and
// reports the calibrated reading error, mimicking the paper's validation
// that any given sample is within about 1% (the fidelity of the 103-point
// quantization).
func (r *Rig) Validate(knownAmps []float64) ([]ValidationReport, error) {
	if len(knownAmps) == 0 {
		return nil, fmt.Errorf("sensor: no validation currents supplied")
	}
	reports := make([]ValidationReport, 0, len(r.meters))
	for _, name := range r.Machines() {
		m := r.meters[name]
		var worst, sum float64
		for _, amps := range knownAmps {
			if amps <= 0 {
				return nil, fmt.Errorf("sensor: validation current must be positive, got %v", amps)
			}
			// Average several reads as the rig would.
			const reads = 16
			acc := 0.0
			for i := 0; i < reads; i++ {
				acc += m.Cal.Amps(m.Sensor.ReadRaw(amps))
			}
			got := acc / reads
			rel := abs(got-amps) / amps
			sum += rel
			if rel > worst {
				worst = rel
			}
		}
		reports = append(reports, ValidationReport{
			Machine:      name,
			R2:           m.Cal.R2,
			MaxRelErr:    worst,
			MeanRelErr:   sum / float64(len(knownAmps)),
			PointsTested: len(knownAmps),
		})
	}
	return reports, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
