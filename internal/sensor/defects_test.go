package sensor

import (
	"errors"
	"testing"
)

// The calibration gate (R^2 >= 0.999) is only worth its name if it
// rejects broken hardware. Each failure mode must either fail
// calibration outright or — for the slow-drift case — be caught by the
// post-calibration validation sweep.

func TestHealthyDefectIsIdentical(t *testing.T) {
	a := New(5, 99)
	b := NewDefective(5, 99, DefectNone)
	calA, errA := a.Calibrate()
	calB, errB := b.Calibrate()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if calA.CodeToAmps != calB.CodeToAmps {
		t.Fatal("DefectNone changed the sensor")
	}
}

func TestNonlinearSensorFailsCalibration(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := NewDefective(5, seed, DefectNonlinear)
		cal, err := s.Calibrate()
		if err == nil {
			t.Fatalf("seed %d: nonlinear sensor calibrated with R2 %v", seed, cal.R2)
		}
		if !errors.Is(err, ErrBadCalibration) {
			t.Fatalf("seed %d: wrong error %v", seed, err)
		}
	}
}

func TestStuckSensorFailsCalibration(t *testing.T) {
	s := NewDefective(5, 7, DefectStuck)
	if _, err := s.Calibrate(); err == nil {
		t.Fatal("stuck sensor calibrated")
	}
}

func TestNoisySensorFailsCalibration(t *testing.T) {
	failures := 0
	for seed := int64(0); seed < 8; seed++ {
		s := NewDefective(5, seed, DefectNoisy)
		if _, err := s.Calibrate(); err != nil {
			failures++
		}
	}
	if failures < 6 {
		t.Fatalf("only %d/8 noisy sensors rejected", failures)
	}
}

func TestDriftingSensorCaughtByValidation(t *testing.T) {
	// Drift is slow: the calibration ladder may still fit well, but the
	// validation sweep afterwards sees the walked-away offset.
	caught := 0
	for seed := int64(0); seed < 8; seed++ {
		s := NewDefective(5, seed, DefectDrift)
		cal, err := s.Calibrate()
		if err != nil {
			caught++ // rejected at calibration: also fine
			continue
		}
		// Validation: re-read known currents through the calibration.
		worst := 0.0
		for _, amps := range []float64{0.5, 1.0, 2.0, 2.8} {
			const reads = 32
			sum := 0.0
			for i := 0; i < reads; i++ {
				sum += cal.Amps(s.ReadRaw(amps))
			}
			got := sum / reads
			rel := abs(got-amps) / amps
			if rel > worst {
				worst = rel
			}
		}
		if worst > 0.015 { // beyond the paper's ~1% fidelity budget
			caught++
		}
	}
	if caught < 6 {
		t.Fatalf("only %d/8 drifting sensors caught", caught)
	}
}

func TestDefectStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range []Defect{DefectNone, DefectNonlinear, DefectNoisy, DefectStuck, DefectDrift} {
		name := d.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("bad defect name %q", name)
		}
		seen[name] = true
	}
	if Defect(42).String() != "unknown" {
		t.Fatal("unknown defect not labeled")
	}
}
