package sensor

import (
	"encoding/binary"
	"math"
	"testing"
)

// refsFromBytes decodes fuzz input into a reference-current ladder: each
// 8-byte chunk is one float64, bit pattern taken verbatim so NaNs,
// infinities, subnormals, and negative zero all appear.
func refsFromBytes(data []byte) []float64 {
	refs := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		refs = append(refs, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
		data = data[8:]
	}
	return refs
}

func refsToBytes(refs []float64) []byte {
	b := make([]byte, 0, 8*len(refs))
	for _, v := range refs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// FuzzCalibrate drives CalibrateWith with arbitrary reference currents:
// it must never panic, and a calibration it accepts must be entirely
// finite — fit coefficients, R^2, and every conversion over the ADC's
// code range.
func FuzzCalibrate(f *testing.F) {
	f.Add(int64(42), refsToBytes(ReferenceCurrents()))
	f.Add(int64(1), refsToBytes([]float64{0.3, 3.0}))
	f.Add(int64(2), refsToBytes([]float64{math.NaN(), 1, 2}))
	f.Add(int64(3), refsToBytes([]float64{math.Inf(1), math.Inf(-1)}))
	f.Add(int64(4), refsToBytes([]float64{math.MaxFloat64, -math.MaxFloat64, 1}))
	f.Add(int64(5), refsToBytes([]float64{1, 1, 1}))      // degenerate: one code
	f.Add(int64(6), refsToBytes([]float64{0.5}))          // too few points
	f.Add(int64(7), refsToBytes(nil))                     // empty
	f.Add(int64(8), refsToBytes([]float64{-0.0, 5e-324})) // signed zero, subnormal

	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		refs := refsFromBytes(data)
		s := New(5.0, seed)
		cal, err := s.CalibrateWith(refs)
		if err != nil {
			return // rejection is always acceptable; panicking is not
		}
		finite := func(name string, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted calibration has non-finite %s = %v (refs %v)", name, v, refs)
			}
		}
		finite("slope", cal.CodeToAmps.Slope)
		finite("intercept", cal.CodeToAmps.Intercept)
		finite("R2", cal.R2)
		if !cal.Valid() {
			t.Fatalf("nil error but R^2 %v below threshold (refs %v)", cal.R2, refs)
		}
		if cal.Points != len(refs) {
			t.Fatalf("Points = %d, want %d", cal.Points, len(refs))
		}
		// Every code the 10-bit logger can emit must convert to finite
		// amps and watts.
		for _, code := range []int{0, 1, 511, 1022, 1023} {
			finite("Amps", cal.Amps(code))
			finite("Watts", cal.Watts(code))
		}
	})
}
