package sensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestADCConvertBounds(t *testing.T) {
	adc := ADC{Bits: 10, VRef: 5.0}
	if got := adc.Convert(-1); got != 0 {
		t.Fatalf("negative volts -> %d, want 0", got)
	}
	if got := adc.Convert(6); got != 1023 {
		t.Fatalf("over-range volts -> %d, want 1023", got)
	}
	mid := adc.Convert(2.5)
	if mid < 511 || mid > 513 {
		t.Fatalf("2.5V -> %d, want ~512", mid)
	}
}

func TestADCMonotone(t *testing.T) {
	adc := ADC{Bits: 10, VRef: 5.0}
	prev := -1
	for v := 0.0; v <= 5.0; v += 0.01 {
		code := adc.Convert(v)
		if code < prev {
			t.Fatalf("ADC not monotone at %v: %d < %d", v, code, prev)
		}
		prev = code
	}
}

func TestADCVoltsPerCode(t *testing.T) {
	adc := ADC{Bits: 10, VRef: 5.0}
	want := 5.0 / 1023.0
	if got := adc.VoltsPerCode(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("VoltsPerCode = %v, want %v", got, want)
	}
}

func TestReferenceCurrentsSpanPaperRange(t *testing.T) {
	refs := ReferenceCurrents()
	if len(refs) != 28 {
		t.Fatalf("got %d reference currents, want 28", len(refs))
	}
	if refs[0] != 0.3 || math.Abs(refs[27]-3.0) > 1e-12 {
		t.Fatalf("range = [%v, %v], want [0.3, 3.0]", refs[0], refs[27])
	}
	for i := 1; i < len(refs); i++ {
		if refs[i] <= refs[i-1] {
			t.Fatalf("reference currents not increasing at %d", i)
		}
	}
}

func TestCalibrationMeetsPaperThreshold(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := New(5, seed)
		cal, err := s.Calibrate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cal.R2 < MinR2 {
			t.Fatalf("seed %d: R2 = %v below paper threshold %v", seed, cal.R2, MinR2)
		}
		if cal.Points != 28 {
			t.Fatalf("calibrated over %d points, want 28", cal.Points)
		}
	}
}

func TestCalibratedReadingAccuracy(t *testing.T) {
	s := New(5, 42)
	cal, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	// A calibrated sample should be within ~1.5% at moderate currents,
	// matching the paper's ~1% quantization fidelity claim plus noise.
	for _, amps := range []float64{0.5, 1.0, 2.0, 2.8} {
		const reads = 64
		sum := 0.0
		for i := 0; i < reads; i++ {
			sum += cal.Amps(s.ReadRaw(amps))
		}
		got := sum / reads
		if rel := math.Abs(got-amps) / amps; rel > 0.015 {
			t.Errorf("at %vA: read %vA (rel err %.3f)", amps, got, rel)
		}
	}
}

func TestCalibrationWattsUsesRail(t *testing.T) {
	s := New(30, 7)
	cal, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	code := s.ReadRaw(2.0)
	if w, a := cal.Watts(code), cal.Amps(code); math.Abs(w-a*SupplyVolts) > 1e-9 {
		t.Fatalf("Watts=%v, Amps*12=%v", w, a*SupplyVolts)
	}
}

func TestCalibrateWithTooFewPoints(t *testing.T) {
	s := New(5, 1)
	if _, err := s.CalibrateWith([]float64{1.0}); err == nil {
		t.Fatal("want error for single calibration point")
	}
}

func TestSensorSaturates(t *testing.T) {
	s := New(5, 3)
	avg := func(amps float64) float64 {
		const reads = 128
		sum := 0.0
		for i := 0; i < reads; i++ {
			sum += float64(s.ReadRaw(amps))
		}
		return sum / reads
	}
	// Far-over-range input must clamp to the same mean code as the rated
	// maximum (reads are noisy, so compare averages).
	if hi, atMax := avg(100), avg(5); math.Abs(hi-atMax) > 1.0 {
		t.Fatalf("saturated read %v != at-range read %v", hi, atMax)
	}
	if lo, atMin := avg(-100), avg(-5); math.Abs(lo-atMin) > 1.0 {
		t.Fatalf("negative saturation %v != %v", lo, atMin)
	}
}

func TestLoggerAveragesPower(t *testing.T) {
	s := New(30, 11)
	cal, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLogger(s, cal)
	if err != nil {
		t.Fatal(err)
	}
	// 10 seconds at 24W: current is 2A, well within calibration range.
	for i := 0; i < 500; i++ {
		lg.Sample(24.0, 0.02)
	}
	tr, err := lg.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.AvgWatts-24) > 24*0.02 {
		t.Fatalf("AvgWatts = %v, want ~24", tr.AvgWatts)
	}
	if math.Abs(tr.Seconds-10) > 1e-9 {
		t.Fatalf("Seconds = %v, want 10", tr.Seconds)
	}
	if tr.Samples != 500 {
		t.Fatalf("Samples = %d, want 500", tr.Samples)
	}
	if tr.MinWatts > tr.AvgWatts || tr.MaxWatts < tr.AvgWatts {
		t.Fatalf("min/avg/max inconsistent: %v/%v/%v", tr.MinWatts, tr.AvgWatts, tr.MaxWatts)
	}
}

func TestLoggerWeightedAverage(t *testing.T) {
	s := New(30, 13)
	cal, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLogger(s, cal)
	if err != nil {
		t.Fatal(err)
	}
	// Half the time at 12W, half at 36W -> time-weighted mean 24W.
	for i := 0; i < 200; i++ {
		lg.Sample(12, 0.05)
		lg.Sample(36, 0.05)
	}
	tr, err := lg.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.AvgWatts-24) > 24*0.03 {
		t.Fatalf("weighted AvgWatts = %v, want ~24", tr.AvgWatts)
	}
	if tr.StdWatts < 5 {
		t.Fatalf("StdWatts = %v, want bimodal spread ~12", tr.StdWatts)
	}
}

func TestLoggerEmptyFinishErrors(t *testing.T) {
	s := New(5, 17)
	cal, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLogger(s, cal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Finish(); err == nil {
		t.Fatal("want error finishing empty logger")
	}
}

func TestLoggerReset(t *testing.T) {
	s := New(5, 19)
	cal, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLogger(s, cal)
	if err != nil {
		t.Fatal(err)
	}
	lg.Sample(24, 1)
	lg.Reset()
	if _, err := lg.Finish(); err == nil {
		t.Fatal("want error after reset with no samples")
	}
}

func TestLoggerRejectsInvalidCalibration(t *testing.T) {
	s := New(5, 23)
	if _, err := NewLogger(s, Calibration{R2: 0.5}); !errors.Is(err, ErrBadCalibration) {
		t.Fatalf("err = %v, want ErrBadCalibration", err)
	}
	if _, err := NewLogger(nil, Calibration{R2: 1}); err == nil {
		t.Fatal("want error for nil sensor")
	}
}

func TestLoggerIgnoresNonPositiveWeight(t *testing.T) {
	s := New(5, 29)
	cal, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLogger(s, cal)
	if err != nil {
		t.Fatal(err)
	}
	lg.Sample(24, 0)
	lg.Sample(24, -1)
	if _, err := lg.Finish(); err == nil {
		t.Fatal("zero/negative weights must not count as samples")
	}
}

func TestRigBuildsAndValidates(t *testing.T) {
	machines := []string{"Pentium4", "Core2D65", "i7"}
	rig, err := NewRig(machines, map[string]float64{"i7": 30}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.Machines(); len(got) != 3 {
		t.Fatalf("Machines = %v", got)
	}
	m, err := rig.Meter("i7")
	if err != nil {
		t.Fatal(err)
	}
	if m.Sensor.MaxAmps != 30 {
		t.Fatalf("i7 sensor range = %v, want 30", m.Sensor.MaxAmps)
	}
	reports, err := rig.Validate([]float64{0.5, 1.5, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.R2 < MinR2 {
			t.Errorf("%s: R2 = %v", r.Machine, r.R2)
		}
		if r.MaxRelErr > 0.03 {
			t.Errorf("%s: max rel err = %v", r.Machine, r.MaxRelErr)
		}
	}
}

func TestRigUnknownMachine(t *testing.T) {
	rig, err := NewRig([]string{"a"}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Meter("nope"); err == nil {
		t.Fatal("want error for unknown machine")
	}
}

func TestRigValidateRejectsBadInput(t *testing.T) {
	rig, err := NewRig([]string{"a"}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Validate(nil); err == nil {
		t.Fatal("want error for empty validation set")
	}
	if _, err := rig.Validate([]float64{-1}); err == nil {
		t.Fatal("want error for non-positive current")
	}
}

// Property: sensors are deterministic given a seed — the same seed yields
// an identical calibration.
func TestQuickSensorDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a, errA := New(5, seed).Calibrate()
		b, errB := New(5, seed).Calibrate()
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return a.CodeToAmps == b.CodeToAmps && a.R2 == b.R2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: calibrated readings are monotone in true current across the
// rated range (averaging out noise).
func TestQuickCalibratedMonotone(t *testing.T) {
	f := func(seedRaw uint8) bool {
		s := New(5, int64(seedRaw))
		cal, err := s.Calibrate()
		if err != nil {
			return false
		}
		read := func(amps float64) float64 {
			sum := 0.0
			for i := 0; i < 48; i++ {
				sum += cal.Amps(s.ReadRaw(amps))
			}
			return sum / 48
		}
		prev := read(0.3)
		for amps := 0.8; amps <= 3.0; amps += 0.5 {
			cur := read(amps)
			if cur <= prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
