// Package sensor models the paper's power-measurement apparatus: a Pololu
// ACS714 carrier for Allegro's Hall-effect linear current sensor placed on
// the isolated 12V processor supply line, logged over USB by an Atmel AVR
// Stick at 50Hz (Section 2.5 of the paper).
//
// The chain is: processor current -> Hall-effect transfer function
// (185mV/A centered at 2.5V, <1.5% typical error) -> ADC quantization to
// the integer range the paper reports (400-503, i.e. about 103
// quantization points giving ~1% sample error) -> calibration against 28
// reference currents with a per-sensor linear fit (R^2 >= 0.999 required)
// -> average watts over the run.
//
// The substitution for real hardware is documented in DESIGN.md: the same
// code path is exercised end to end, with the sensed current supplied by
// the machine simulator instead of a physical rail.
package sensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Electrical and apparatus constants from Section 2.5 of the paper.
const (
	// SupplyVolts is the processor supply rail voltage. The paper
	// measured it as stable within 1%.
	SupplyVolts = 12.0

	// SensitivityVoltsPerAmp is the ACS714 transfer slope: 185 mV/A.
	SensitivityVoltsPerAmp = 0.185

	// OffsetVolts is the ACS714 zero-current output, centered at 2.5V.
	OffsetVolts = 2.5

	// TypicalErrorFraction is the sensor's typical error: under 1.5%.
	TypicalErrorFraction = 0.015

	// SampleHz is the AVR data logger's sampling rate.
	SampleHz = 50.0

	// CalibrationPoints is the number of reference currents used to
	// calibrate each meter (28 currents between 300 mA and 3 A).
	CalibrationPoints = 28

	// MinR2 is the calibration acceptance threshold from the paper:
	// every sensor achieved R^2 of 0.999 or better.
	MinR2 = 0.999
)

// Sensor models one ACS714 Hall-effect current sensor plus its ADC.
// Individual boards differ slightly in gain and offset (that is why the
// paper calibrates each one); those per-part deviations are drawn
// deterministically from the seed.
type Sensor struct {
	// MaxAmps is the sensor's rated bidirectional range. The paper used
	// ±5A parts except on the i7, which needed a ±30A part.
	MaxAmps float64

	gain      float64 // actual volts/amp of this physical part
	offset    float64 // actual zero-current output voltage
	noiseAmps float64 // RMS noise referred to the input, in amps
	adc       ADC
	rng       *rand.Rand

	// Failure-injection state (see defects.go).
	defect    Defect
	driftAmps float64
	driftRng  *rand.Rand
}

// ADC models the data logger's analog-to-digital conversion. The paper's
// logger reports integers in roughly the 400-503 range across the
// calibrated span, i.e. about 103 quantization points (~1% error).
type ADC struct {
	// Bits is the converter resolution (the AVR's ADC is 10-bit).
	Bits int
	// VRef is the full-scale reference voltage.
	VRef float64
}

// Convert quantizes an input voltage to an ADC code, clamped to range.
func (a ADC) Convert(volts float64) int {
	levels := (1 << a.Bits) - 1
	code := int(math.Round(volts / a.VRef * float64(levels)))
	if code < 0 {
		code = 0
	}
	if code > levels {
		code = levels
	}
	return code
}

// VoltsPerCode returns the quantization step in volts.
func (a ADC) VoltsPerCode() float64 {
	levels := (1 << a.Bits) - 1
	return a.VRef / float64(levels)
}

// New creates a sensor with per-part gain/offset tolerance derived
// deterministically from seed. maxAmps selects the part's rated range
// (5A for most processors, 30A for the i7).
func New(maxAmps float64, seed int64) *Sensor {
	rng := rand.New(rand.NewSource(seed))
	// Per-part tolerance: gain within ±1.5%, offset within ±10 mV.
	gain := SensitivityVoltsPerAmp * (1 + (rng.Float64()*2-1)*TypicalErrorFraction)
	offset := OffsetVolts + (rng.Float64()*2-1)*0.010
	return &Sensor{
		MaxAmps:   maxAmps,
		gain:      gain,
		offset:    offset,
		noiseAmps: 0.008,
		adc:       ADC{Bits: 10, VRef: 5.0},
		rng:       rng,
	}
}

// ReadRaw senses the given current and returns the raw ADC code, applying
// the part's true transfer function, input-referred noise, and
// quantization. Currents beyond the rated range saturate. ReadRaw uses
// the sensor's own noise stream and is not safe for concurrent use; the
// harness reads through per-run Readers instead (see Reader).
func (s *Sensor) ReadRaw(amps float64) int {
	return s.readWith(amps, s.rng)
}

// Reader returns an independent reading function with its own
// deterministic noise stream. Concurrent measurement runs each hold
// their own Reader, so results do not depend on goroutine scheduling.
func (s *Sensor) Reader(seed int64) func(amps float64) int {
	rng := rand.New(rand.NewSource(seed))
	return func(amps float64) int { return s.readWith(amps, rng) }
}

// readWith performs one reading with the supplied noise stream.
func (s *Sensor) readWith(amps float64, rng *rand.Rand) int {
	if amps > s.MaxAmps {
		amps = s.MaxAmps
	}
	if amps < -s.MaxAmps {
		amps = -s.MaxAmps
	}
	if s.defect != DefectNone {
		perturbed, stuck := s.applyDefect(amps, rng)
		if stuck {
			return s.adc.Convert(s.offset) // wedged at the zero-current code
		}
		amps = perturbed
	}
	noisy := amps + rng.NormFloat64()*s.noiseAmps
	return s.adc.Convert(s.offset + s.gain*noisy)
}

// Calibration holds a per-sensor linear fit from ADC code to amps,
// produced by CalibrateWith.
type Calibration struct {
	CodeToAmps linearFit
	R2         float64
	Points     int
}

// linearFit is a minimal code->amps line; we keep it local so the sensor
// package has no dependency on the stats package (the calibration rig in
// rig.go performs the full statistical validation).
type linearFit struct {
	Slope, Intercept float64
}

// Amps converts a raw ADC code to a calibrated current reading.
func (c Calibration) Amps(code int) float64 {
	return c.CodeToAmps.Slope*float64(code) + c.CodeToAmps.Intercept
}

// Watts converts a raw ADC code to instantaneous chip power, using the
// measured (stable) 12V rail voltage.
func (c Calibration) Watts(code int) float64 {
	return c.Amps(code) * SupplyVolts
}

// Valid reports whether the calibration meets the paper's acceptance
// threshold of R^2 >= 0.999.
func (c Calibration) Valid() bool { return c.R2 >= MinR2 }

// ErrBadCalibration is returned when a sensor cannot be calibrated to the
// paper's R^2 threshold.
var ErrBadCalibration = errors.New("sensor: calibration R^2 below 0.999 threshold")

// CalibrateWith calibrates the sensor against the supplied reference
// currents, mimicking the paper's current-source procedure, and returns
// the fitted code->amps mapping. For each reference current the sensor is
// read repeatedly and the mean code is used, as a real rig would.
func (s *Sensor) CalibrateWith(refAmps []float64) (Calibration, error) {
	if len(refAmps) < 2 {
		return Calibration{}, errors.New("sensor: need at least two reference currents")
	}
	// A current source cannot emit NaN or infinity; rejecting them here
	// keeps the fit (and every Watts conversion derived from it) finite.
	for i, amps := range refAmps {
		if math.IsNaN(amps) || math.IsInf(amps, 0) {
			return Calibration{}, fmt.Errorf("sensor: reference current %d is not finite", i)
		}
	}
	codes := make([]float64, len(refAmps))
	for i, amps := range refAmps {
		const reads = 32
		sum := 0.0
		for r := 0; r < reads; r++ {
			sum += float64(s.ReadRaw(amps))
		}
		codes[i] = sum / reads
	}
	slope, intercept, r2, err := fitLine(codes, refAmps)
	if err != nil {
		return Calibration{}, fmt.Errorf("sensor: calibration fit: %w", err)
	}
	// Finite references can still overflow the least-squares sums (e.g.
	// currents near MaxFloat64); a non-finite fit is a failed calibration,
	// never a usable one.
	if math.IsNaN(slope) || math.IsInf(slope, 0) ||
		math.IsNaN(intercept) || math.IsInf(intercept, 0) ||
		math.IsNaN(r2) || math.IsInf(r2, 0) {
		return Calibration{}, errors.New("sensor: calibration fit is not finite")
	}
	cal := Calibration{
		CodeToAmps: linearFit{Slope: slope, Intercept: intercept},
		R2:         r2,
		Points:     len(refAmps),
	}
	if !cal.Valid() {
		return cal, ErrBadCalibration
	}
	return cal, nil
}

// Calibrate runs CalibrateWith over the paper's 28 reference currents
// spaced between 300 mA and 3 A.
func (s *Sensor) Calibrate() (Calibration, error) {
	return s.CalibrateWith(ReferenceCurrents())
}

// ReferenceCurrents returns the paper's calibration ladder: 28 currents
// evenly spaced between 300 mA and 3 A.
func ReferenceCurrents() []float64 {
	refs := make([]float64, CalibrationPoints)
	for i := range refs {
		refs[i] = 0.3 + float64(i)*(3.0-0.3)/float64(CalibrationPoints-1)
	}
	return refs
}

// fitLine is ordinary least squares of ys on xs with R^2, local to avoid
// an import cycle with the stats package's tests.
func fitLine(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	n := float64(len(xs))
	if n < 2 {
		return 0, 0, 0, errors.New("need two points")
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("degenerate x values")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	r2 = 1.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return slope, intercept, r2, nil
}
