package sensor

import (
	"math"
	"math/rand"
)

// Defect models a failure mode of a physical sensor board. The paper's
// rig trusts a meter only after its calibration fit reaches R^2 >= 0.999
// (Section 2.5); these injectable defects are how the test suite proves
// that gate actually rejects bad hardware rather than waving it through.
type Defect int

const (
	// DefectNone is a healthy board.
	DefectNone Defect = iota
	// DefectNonlinear bends the transfer function: the Hall element
	// saturates progressively instead of at the rated limit, a classic
	// failure of an overheated or mis-biased part.
	DefectNonlinear
	// DefectNoisy multiplies the input-referred noise by an order of
	// magnitude: a broken solder joint or unshielded supply.
	DefectNoisy
	// DefectStuck wedges the ADC output at a constant code: a dead
	// logger channel.
	DefectStuck
	// DefectDrift adds a slow random walk to the offset: thermal drift
	// in an uncompensated board.
	DefectDrift
)

// String names the defect.
func (d Defect) String() string {
	switch d {
	case DefectNone:
		return "healthy"
	case DefectNonlinear:
		return "nonlinear"
	case DefectNoisy:
		return "noisy"
	case DefectStuck:
		return "stuck"
	case DefectDrift:
		return "drifting"
	default:
		return "unknown"
	}
}

// NewDefective builds a sensor with the given failure mode injected.
// A DefectNone sensor is identical to New's.
func NewDefective(maxAmps float64, seed int64, defect Defect) *Sensor {
	s := New(maxAmps, seed)
	s.defect = defect
	s.driftRng = rand.New(rand.NewSource(seed ^ 0x5eed))
	return s
}

// applyDefect perturbs a raw current reading according to the board's
// failure mode; called from readWith before quantization. Defective
// sensors are a single-goroutine test facility: the drift walk is
// shared state.
func (s *Sensor) applyDefect(amps float64, rng *rand.Rand) (float64, bool) {
	switch s.defect {
	case DefectNonlinear:
		// Progressive compression: readings sag toward a soft ceiling.
		return s.MaxAmps * 0.6 * math.Tanh(amps/(s.MaxAmps*0.6)) * 1.15, false
	case DefectNoisy:
		return amps + rng.NormFloat64()*s.noiseAmps*45, false
	case DefectStuck:
		return 0, true // caller substitutes the stuck code
	case DefectDrift:
		s.driftAmps += s.driftRng.NormFloat64() * 0.02
		return amps + s.driftAmps, false
	default:
		return amps, false
	}
}
