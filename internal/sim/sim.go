// Package sim is the machine simulator: it executes a placement-resolved
// workload specification on one configured processor and produces the
// run's duration and true power trace, which the harness then pushes
// through the sensor substrate exactly as the paper's rig logged real
// rails.
//
// A run is modeled as two sequential segments — the Amdahl serial portion
// on one thread and the parallel portion across the configured hardware
// contexts — each executed by a time-stepped loop that integrates work,
// evolves the thermal state, resolves Turbo Boost, and samples power with
// per-phase modulation. The substitution of this simulator for the
// paper's physical fleet is documented in DESIGN.md.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/counters"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/proc"
	"repro/internal/thermal"
)

// Machine is one processor in one hardware configuration.
type Machine struct {
	Proc *proc.Processor
	Cfg  proc.Config

	hier mem.Hierarchy
	pipe pipeline.Params
}

// NewMachine validates the configuration and builds the machine.
func NewMachine(p *proc.Processor, cfg proc.Config) (*Machine, error) {
	if p == nil {
		return nil, errors.New("sim: nil processor")
	}
	if err := p.Validate(cfg); err != nil {
		return nil, err
	}
	hier, err := mem.FromModel(
		p.Model.L2KBPerCore, float64(p.Spec.LLCBytes),
		p.Model.MemLatencyNs, p.Model.DRAMBWGBs, p.Model.MLPHiding)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", p.Name, err)
	}
	pipe := pipeline.Params{
		IssueWidth:    p.Model.IssueWidth,
		OutOfOrder:    p.Model.OutOfOrder,
		ILPEff:        p.Model.IssueEff,
		BranchPenalty: p.Model.BranchPenalty,
		SMTFillEff:    p.Model.SMTFillEff,
		SMTOverhead:   p.Model.SMTOverhead,
	}
	if err := pipe.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", p.Name, err)
	}
	return &Machine{Proc: p, Cfg: cfg, hier: hier, pipe: pipe}, nil
}

// ExecSpec is a placement-resolved execution request: what to run and how
// the runtime (native loader or managed runtime) has arranged it. The
// native and jvm packages construct these from workload descriptors.
type ExecSpec struct {
	// Work is the application instruction count to retire.
	Work float64
	// AppThreads is the number of application threads.
	AppThreads int
	// ParallelFrac and SyncOverhead shape multithreaded scaling.
	ParallelFrac float64
	SyncOverhead float64

	// Workload character (see workload.Benchmark for semantics).
	ILP          float64
	MPKI         float64
	WorkingSetKB float64
	MLPFactor    float64 // 0 means the neutral 1
	Activity     float64
	BranchWeight float64

	// ServiceWork is the fraction of Work executed by runtime service
	// threads (JIT/GC); zero for native code.
	ServiceWork float64
	// ServiceThreads is how many service threads want contexts.
	ServiceThreads int
	// CoLocPenalty is the fractional slowdown services inflict when they
	// share the application's hardware context (cache/TLB displacement).
	CoLocPenalty float64

	// RateJitterSD and PowerJitterSD model run-to-run non-determinism
	// (small for AOT native code, larger for JIT/GC-driven Java).
	RateJitterSD  float64
	PowerJitterSD float64
}

// Validate checks the spec.
func (s ExecSpec) Validate() error {
	switch {
	case s.Work <= 0:
		return errors.New("sim: work must be positive")
	case s.AppThreads < 1:
		return errors.New("sim: need at least one application thread")
	case s.ParallelFrac < 0 || s.ParallelFrac > 1:
		return errors.New("sim: parallel fraction outside [0,1]")
	case s.ILP <= 0 || s.WorkingSetKB <= 0 || s.Activity <= 0:
		return errors.New("sim: workload character must be positive")
	case s.MPKI < 0 || s.BranchWeight < 0 || s.SyncOverhead < 0:
		return errors.New("sim: negative workload parameter")
	case s.ServiceWork < 0 || s.ServiceWork >= 1:
		return errors.New("sim: service work outside [0,1)")
	case s.ServiceThreads < 0 || s.CoLocPenalty < 0:
		return errors.New("sim: negative service parameter")
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	Seconds     float64 // wall-clock duration
	AvgWatts    float64 // true (pre-sensor) time-weighted average power
	EnergyJ     float64 // true energy
	PeakWatts   float64
	AvgClockGHz float64 // time-weighted, including turbo steps
	Steps       int     // integration steps taken

	// Counters holds the run's architectural events, the quantities the
	// paper pairs with its power measurements (Section 3.1).
	Counters counters.Counters

	// Breakdown is the time-weighted average per-structure power — the
	// decomposition the paper's conclusion asks vendors to expose
	// ("structure specific power meters for cores, caches, and other
	// structures").
	Breakdown power.Breakdown
}

// SampleFunc receives each integration step's true power and duration;
// the harness wires it to the sensor logger.
type SampleFunc func(trueWatts, dtSeconds float64)

// segment is one steady-state portion of a run.
type segment struct {
	workFrac    float64 // fraction of app work retired in this segment
	rate        float64 // instructions per second
	loads       []power.CoreLoad
	op          power.Operating
	activeCores int

	// Event rates for the hardware counters.
	missPerInstr float64 // LLC misses per application instruction
	dtlbMPKI     float64 // DTLB misses per kilo-instruction
}

// Run executes the spec. The seed makes the run deterministic; different
// seeds model the paper's repeated invocations. sample may be nil.
func (m *Machine) Run(spec ExecSpec, seed int64, sample SampleFunc) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(seed))

	segs, err := m.plan(spec)
	if err != nil {
		return Result{}, err
	}

	// Run-to-run jitter: one multiplicative draw per run, as JIT and GC
	// placement decisions persist for a run's lifetime.
	rateJitter := 1 + rng.NormFloat64()*spec.RateJitterSD
	if rateJitter < 0.5 {
		rateJitter = 0.5
	}
	powerJitter := 1 + rng.NormFloat64()*spec.PowerJitterSD
	if powerJitter < 0.7 {
		powerJitter = 0.7
	}

	therm, err := thermal.New(m.Proc.Spec.TDPWatts)
	if err != nil {
		return Result{}, err
	}

	var res Result
	var clockSeconds float64
	for _, sg := range segs {
		if sg.workFrac <= 0 {
			continue
		}
		segWork := spec.Work * sg.workFrac
		rate := sg.rate * rateJitter
		if rate <= 0 {
			return Result{}, fmt.Errorf("sim: non-positive rate on %s %s", m.Proc.Name, m.Cfg)
		}
		segTime := segWork / rate
		steps := stepsFor(segTime)
		dt := segTime / float64(steps)
		for i := 0; i < steps; i++ {
			op := sg.op
			op.TempC = therm.TempC()
			// Thermal throttle: drop turbo when the junction saturates.
			if therm.Throttling() && op.ClockGHz > m.Cfg.ClockGHz {
				op.ClockGHz = m.Cfg.ClockGHz
				op.Volts = m.Proc.VoltsAt(m.Cfg.ClockGHz)
			}
			phase := 1 + 0.06*math.Sin(2*math.Pi*float64(i)/math.Max(8, float64(steps)/3)) +
				rng.NormFloat64()*0.02
			loads := make([]power.CoreLoad, len(sg.loads))
			copy(loads, sg.loads)
			for j := range loads {
				if loads[j].Active {
					loads[j].Activity *= phase * powerJitter
					if loads[j].Activity > 1.2 {
						loads[j].Activity = 1.2
					}
					if loads[j].Activity < 0.05 {
						loads[j].Activity = 0.05
					}
				}
			}
			bd, err := power.Chip(m.Proc, op, loads)
			if err != nil {
				return Result{}, err
			}
			w := bd.TotalWatts
			therm.Step(w, dt)
			if sample != nil {
				sample(w, dt)
			}
			res.Breakdown.UncoreWatts += bd.UncoreWatts * dt
			res.Breakdown.CoreDynWatts += bd.CoreDynWatts * dt
			res.Breakdown.CoreStaticWatts += bd.CoreStaticWatts * dt
			res.Breakdown.GatedWatts += bd.GatedWatts * dt
			res.AvgWatts += w * dt
			if w > res.PeakWatts {
				res.PeakWatts = w
			}
			clockSeconds += op.ClockGHz * dt
			res.Steps++
		}
		res.Seconds += segTime

		// Hardware counters for the segment (Section 3.1's pairing of
		// events with power).
		serviceInstr := segWork * spec.ServiceWork
		res.Counters.Add(counters.Counters{
			Cycles:              segTime * sg.op.ClockGHz * 1e9 * float64(sg.activeCores),
			Instructions:        segWork + serviceInstr,
			AppInstructions:     segWork,
			ServiceInstructions: serviceInstr,
			LLCMisses:           segWork * sg.missPerInstr,
			DTLBMisses:          segWork * sg.dtlbMPKI / 1000,
			BranchInstructions:  segWork * spec.BranchWeight * 0.2,
		})
	}
	if res.Seconds <= 0 {
		return Result{}, errors.New("sim: run completed no work")
	}
	res.AvgWatts /= res.Seconds
	res.Breakdown.UncoreWatts /= res.Seconds
	res.Breakdown.CoreDynWatts /= res.Seconds
	res.Breakdown.CoreStaticWatts /= res.Seconds
	res.Breakdown.GatedWatts /= res.Seconds
	res.Breakdown.TotalWatts = res.Breakdown.UncoreWatts + res.Breakdown.CoreDynWatts +
		res.Breakdown.CoreStaticWatts + res.Breakdown.GatedWatts
	res.EnergyJ = res.AvgWatts * res.Seconds
	res.AvgClockGHz = clockSeconds / res.Seconds
	return res, nil
}

// stepsFor bounds the integration cost: short Java iterations take tens
// of steps; thousand-second SPEC runs take a few hundred larger ones.
func stepsFor(segSeconds float64) int {
	steps := int(segSeconds / 0.02) // the logger's native 50Hz
	if steps < 24 {
		steps = 24
	}
	if steps > 360 {
		steps = 360
	}
	return steps
}
