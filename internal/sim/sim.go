// Package sim is the machine simulator: it executes a placement-resolved
// workload specification on one configured processor and produces the
// run's duration and true power trace, which the harness then pushes
// through the sensor substrate exactly as the paper's rig logged real
// rails.
//
// A run is modeled as two sequential segments — the Amdahl serial portion
// on one thread and the parallel portion across the configured hardware
// contexts — each executed by a time-stepped loop that integrates work,
// evolves the thermal state, resolves Turbo Boost, and samples power with
// per-phase modulation. The substitution of this simulator for the
// paper's physical fleet is documented in DESIGN.md.
//
// Planning and execution are split: a Runner pre-compiles each segment's
// power model into flat coefficients (power.Kernel) once, and then
// replays the run for any number of seeds with zero heap allocations per
// integration step. Machine.Run remains the one-shot convenience path.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/counters"
	"repro/internal/fastrand"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/proc"
	"repro/internal/thermal"
)

// Machine is one processor in one hardware configuration.
type Machine struct {
	Proc *proc.Processor
	Cfg  proc.Config

	hier mem.Hierarchy
	pipe pipeline.Params

	// planMu/plans memoize compiled segment plans per spec: a study block
	// re-plans the same (machine, spec) pair for every run and every
	// serving request, and a compiled plan — segments, turbo resolution,
	// flattened power kernels — is immutable once built, so one compile
	// serves every Runner that replays the spec. ExecSpec is a flat value
	// type, so it keys the memo directly.
	planMu sync.Mutex
	plans  map[ExecSpec][]segment

	// states pools per-run mutable state (RNG and thermal model) across
	// the Runners of this machine: a Runner reseeds and resets both on
	// every Run, so reuse is invisible to results.
	states sync.Pool
}

// NewMachine validates the configuration and builds the machine.
func NewMachine(p *proc.Processor, cfg proc.Config) (*Machine, error) {
	if p == nil {
		return nil, errors.New("sim: nil processor")
	}
	if err := p.Validate(cfg); err != nil {
		return nil, err
	}
	hier, err := mem.FromModel(
		p.Model.L2KBPerCore, float64(p.Spec.LLCBytes),
		p.Model.MemLatencyNs, p.Model.DRAMBWGBs, p.Model.MLPHiding)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", p.Name, err)
	}
	pipe := pipeline.Params{
		IssueWidth:    p.Model.IssueWidth,
		OutOfOrder:    p.Model.OutOfOrder,
		ILPEff:        p.Model.IssueEff,
		BranchPenalty: p.Model.BranchPenalty,
		SMTFillEff:    p.Model.SMTFillEff,
		SMTOverhead:   p.Model.SMTOverhead,
	}
	if err := pipe.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", p.Name, err)
	}
	return &Machine{Proc: p, Cfg: cfg, hier: hier, pipe: pipe}, nil
}

// ExecSpec is a placement-resolved execution request: what to run and how
// the runtime (native loader or managed runtime) has arranged it. The
// native and jvm packages construct these from workload descriptors.
type ExecSpec struct {
	// Work is the application instruction count to retire.
	Work float64
	// AppThreads is the number of application threads.
	AppThreads int
	// ParallelFrac and SyncOverhead shape multithreaded scaling.
	ParallelFrac float64
	SyncOverhead float64

	// Workload character (see workload.Benchmark for semantics).
	ILP          float64
	MPKI         float64
	WorkingSetKB float64
	MLPFactor    float64 // 0 means the neutral 1
	Activity     float64
	BranchWeight float64

	// ServiceWork is the fraction of Work executed by runtime service
	// threads (JIT/GC); zero for native code.
	ServiceWork float64
	// ServiceThreads is how many service threads want contexts.
	ServiceThreads int
	// CoLocPenalty is the fractional slowdown services inflict when they
	// share the application's hardware context (cache/TLB displacement).
	CoLocPenalty float64

	// RateJitterSD and PowerJitterSD model run-to-run non-determinism
	// (small for AOT native code, larger for JIT/GC-driven Java).
	RateJitterSD  float64
	PowerJitterSD float64
}

// Validate checks the spec.
func (s ExecSpec) Validate() error {
	switch {
	case s.Work <= 0:
		return errors.New("sim: work must be positive")
	case s.AppThreads < 1:
		return errors.New("sim: need at least one application thread")
	case s.ParallelFrac < 0 || s.ParallelFrac > 1:
		return errors.New("sim: parallel fraction outside [0,1]")
	case s.ILP <= 0 || s.WorkingSetKB <= 0 || s.Activity <= 0:
		return errors.New("sim: workload character must be positive")
	case s.MPKI < 0 || s.BranchWeight < 0 || s.SyncOverhead < 0:
		return errors.New("sim: negative workload parameter")
	case s.ServiceWork < 0 || s.ServiceWork >= 1:
		return errors.New("sim: service work outside [0,1)")
	case s.ServiceThreads < 0 || s.CoLocPenalty < 0:
		return errors.New("sim: negative service parameter")
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	Seconds     float64 // wall-clock duration
	AvgWatts    float64 // true (pre-sensor) time-weighted average power
	EnergyJ     float64 // true energy
	PeakWatts   float64
	AvgClockGHz float64 // time-weighted, including turbo steps
	Steps       int     // integration steps taken

	// Counters holds the run's architectural events, the quantities the
	// paper pairs with its power measurements (Section 3.1).
	Counters counters.Counters

	// Breakdown is the time-weighted average per-structure power — the
	// decomposition the paper's conclusion asks vendors to expose
	// ("structure specific power meters for cores, caches, and other
	// structures").
	Breakdown power.Breakdown
}

// SampleFunc receives each integration step's true power and duration;
// the harness wires it to the sensor logger.
type SampleFunc func(trueWatts, dtSeconds float64)

// segment is one steady-state portion of a run, with its power model
// pre-compiled for the integration loop.
type segment struct {
	workFrac    float64 // fraction of app work retired in this segment
	rate        float64 // instructions per second
	op          power.Operating
	activeCores int

	// kern is the compiled power model at the segment's resolved (turbo)
	// operating point; kernThrottled is the same load picture at the base
	// clock, used when the junction saturates. canThrottle records whether
	// the two differ (turbo headroom exists above the configured clock).
	kern          power.Kernel
	kernThrottled power.Kernel
	canThrottle   bool

	// Event rates for the hardware counters.
	missPerInstr float64 // LLC misses per application instruction
	dtlbMPKI     float64 // DTLB misses per kilo-instruction
}

// Runner is a planned run: the spec validated, segments resolved, and
// each segment's power model compiled to flat coefficients. A Runner
// replays the same spec under different seeds without re-planning, which
// is exactly the harness's repeated-invocation methodology. A Runner is
// not safe for concurrent use (it owns one RNG and one thermal state);
// concurrent measurements each build their own. Runners replaying the
// same spec on one machine share its cached compiled plan.
type Runner struct {
	m    *Machine
	spec ExecSpec
	segs []segment

	state *runState
}

// runState is the per-run mutable state a Runner owns; everything else a
// Runner holds is immutable and shared. Pooled per machine.
type runState struct {
	rng   *rand.Rand
	therm *thermal.Model
}

// planFor returns the machine's compiled plan for spec, building it on
// first use. Plans are immutable after construction, so one instance
// serves every concurrent Runner replaying the spec.
func (m *Machine) planFor(spec ExecSpec) ([]segment, error) {
	m.planMu.Lock()
	defer m.planMu.Unlock()
	if segs, ok := m.plans[spec]; ok {
		return segs, nil
	}
	segs, err := m.plan(spec)
	if err != nil {
		return nil, err
	}
	if m.plans == nil {
		m.plans = make(map[ExecSpec][]segment)
	}
	m.plans[spec] = segs
	return segs, nil
}

// NewRunner validates the spec and resolves its compiled plan, reusing
// the machine's cached plan when the spec was planned before.
func (m *Machine) NewRunner(spec ExecSpec) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	segs, err := m.planFor(spec)
	if err != nil {
		return nil, err
	}
	st, _ := m.states.Get().(*runState)
	if st == nil {
		therm, err := thermal.New(m.Proc.Spec.TDPWatts)
		if err != nil {
			return nil, err
		}
		st = &runState{rng: fastrand.New(0), therm: therm}
	}
	return &Runner{m: m, spec: spec, segs: segs, state: st}, nil
}

// Release returns the Runner's mutable state to the machine's pool. The
// Runner must not be used afterwards. Optional: an unreleased Runner is
// simply garbage-collected.
func (r *Runner) Release() {
	if r.state == nil {
		return
	}
	r.m.states.Put(r.state)
	r.state = nil
}

// Run executes the spec. The seed makes the run deterministic; different
// seeds model the paper's repeated invocations. sample may be nil.
func (m *Machine) Run(spec ExecSpec, seed int64, sample SampleFunc) (Result, error) {
	r, err := m.NewRunner(spec)
	if err != nil {
		return Result{}, err
	}
	return r.Run(seed, sample)
}

// Run replays the planned spec for one seed. The integration loop
// performs no heap allocations: all per-step state lives in the compiled
// kernels and the Runner's reusable RNG and thermal model.
func (r *Runner) Run(seed int64, sample SampleFunc) (Result, error) {
	rng, therm := r.state.rng, r.state.therm
	rng.Seed(seed)
	therm.Reset()
	spec := r.spec

	// Run-to-run jitter: one multiplicative draw per run, as JIT and GC
	// placement decisions persist for a run's lifetime.
	rateJitter := 1 + rng.NormFloat64()*spec.RateJitterSD
	if rateJitter < 0.5 {
		rateJitter = 0.5
	}
	powerJitter := 1 + rng.NormFloat64()*spec.PowerJitterSD
	if powerJitter < 0.7 {
		powerJitter = 0.7
	}

	var res Result
	var bd power.Breakdown
	var clockSeconds float64
	for si := range r.segs {
		sg := &r.segs[si]
		if sg.workFrac <= 0 {
			continue
		}
		segWork := spec.Work * sg.workFrac
		rate := sg.rate * rateJitter
		if rate <= 0 {
			return Result{}, fmt.Errorf("sim: non-positive rate on %s %s", r.m.Proc.Name, r.m.Cfg)
		}
		segTime := segWork / rate
		steps := stepsFor(segTime)
		dt := segTime / float64(steps)
		sins := sinTable(steps)
		for i := 0; i < steps; i++ {
			// Thermal throttle: drop turbo when the junction saturates.
			k := &sg.kern
			if sg.canThrottle && therm.Throttling() {
				k = &sg.kernThrottled
			}
			phase := 1 + 0.06*sins[i] +
				rng.NormFloat64()*0.02
			k.EvalInto(&bd, therm.TempC(), phase*powerJitter)
			w := bd.TotalWatts
			therm.Step(w, dt)
			if sample != nil {
				sample(w, dt)
			}
			res.Breakdown.UncoreWatts += bd.UncoreWatts * dt
			res.Breakdown.CoreDynWatts += bd.CoreDynWatts * dt
			res.Breakdown.CoreStaticWatts += bd.CoreStaticWatts * dt
			res.Breakdown.GatedWatts += bd.GatedWatts * dt
			res.AvgWatts += w * dt
			if w > res.PeakWatts {
				res.PeakWatts = w
			}
			clockSeconds += k.ClockGHz * dt
			res.Steps++
		}
		res.Seconds += segTime

		// Hardware counters for the segment (Section 3.1's pairing of
		// events with power).
		serviceInstr := segWork * spec.ServiceWork
		res.Counters.Add(counters.Counters{
			Cycles:              segTime * sg.op.ClockGHz * 1e9 * float64(sg.activeCores),
			Instructions:        segWork + serviceInstr,
			AppInstructions:     segWork,
			ServiceInstructions: serviceInstr,
			LLCMisses:           segWork * sg.missPerInstr,
			DTLBMisses:          segWork * sg.dtlbMPKI / 1000,
			BranchInstructions:  segWork * spec.BranchWeight * 0.2,
		})
	}
	if res.Seconds <= 0 {
		return Result{}, errors.New("sim: run completed no work")
	}
	res.AvgWatts /= res.Seconds
	res.Breakdown.UncoreWatts /= res.Seconds
	res.Breakdown.CoreDynWatts /= res.Seconds
	res.Breakdown.CoreStaticWatts /= res.Seconds
	res.Breakdown.GatedWatts /= res.Seconds
	res.Breakdown.TotalWatts = res.Breakdown.UncoreWatts + res.Breakdown.CoreDynWatts +
		res.Breakdown.CoreStaticWatts + res.Breakdown.GatedWatts
	res.EnergyJ = res.AvgWatts * res.Seconds
	res.AvgClockGHz = clockSeconds / res.Seconds
	return res, nil
}

// stepsFor bounds the integration cost: short Java iterations take tens
// of steps; thousand-second SPEC runs take a few hundred larger ones.
func stepsFor(segSeconds float64) int {
	steps := int(segSeconds / 0.02) // the logger's native 50Hz
	if steps < 24 {
		steps = 24
	}
	if steps > 360 {
		steps = 360
	}
	return steps
}

// sinTables memoizes the per-step phase modulation sin(2*pi*i/period)
// per step count. The phase period is a pure function of the step count
// and stepsFor clamps counts to [24, 360], so at most 337 small tables
// exist process-wide, and each entry holds the exact float the inline
// math.Sin call produced before — the modulation is bit-identical.
var sinTables sync.Map // int -> []float64

// sinTable returns the phase table for a step count.
func sinTable(steps int) []float64 {
	if t, ok := sinTables.Load(steps); ok {
		return t.([]float64)
	}
	phasePeriod := math.Max(8, float64(steps)/3)
	t := make([]float64, steps)
	for i := range t {
		t[i] = math.Sin(2 * math.Pi * float64(i) / phasePeriod)
	}
	sinTables.Store(steps, t)
	return t
}
