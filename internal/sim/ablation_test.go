package sim

import (
	"testing"

	"repro/internal/proc"
)

// Ablation tests: each test removes one model mechanism that DESIGN.md
// calls out and verifies the corresponding paper finding degrades or
// disappears — evidence the mechanism, not a tuning accident, carries
// the result.

// ablate returns a fleet processor with a mutation applied.
func ablate(t *testing.T, name string, mutate func(*proc.Processor)) *proc.Processor {
	t.Helper()
	p, err := proc.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	mutate(p)
	return p
}

func runOn(t *testing.T, p *proc.Processor, cfg proc.Config, spec ExecSpec) Result {
	t.Helper()
	m, err := NewMachine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(spec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAblationTurboVoltageKick: Architecture Finding 8 (Turbo Boost is
// energy-negative on the i7) rests on the chip-wide voltage kick. With
// the kick removed, boosting becomes nearly free and the energy penalty
// collapses.
func TestAblationTurboVoltageKick(t *testing.T) {
	spec := nativeSpec()
	energyRatio := func(p *proc.Processor) float64 {
		on := runOn(t, p, proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.67, Turbo: true}, spec)
		off := runOn(t, p, proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.67}, spec)
		return on.EnergyJ / off.EnergyJ
	}
	stock, err := proc.ByName(proc.I7Name)
	if err != nil {
		t.Fatal(err)
	}
	withKick := energyRatio(stock)
	noKick := energyRatio(ablate(t, proc.I7Name, func(p *proc.Processor) {
		p.Model.TurboVoltsBoost = 0
	}))
	if withKick < 1.15 {
		t.Fatalf("baseline turbo energy ratio %v: finding 8 absent even before ablation", withKick)
	}
	if noKick > 1.06 {
		t.Fatalf("no-kick turbo energy ratio %v: voltage kick is not the carrier", noKick)
	}
}

// TestAblationPowerGating: the i7's low Native Non-scalable power (its
// Figure 2/Table 4 outlier status) depends on gating idle cores. With
// gating removed and the idle clock grid left running, single-threaded
// power jumps.
func TestAblationPowerGating(t *testing.T) {
	spec := nativeSpec()
	cfg := proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 2.67}
	stock, err := proc.ByName(proc.I7Name)
	if err != nil {
		t.Fatal(err)
	}
	gated := runOn(t, stock, cfg, spec)
	ungated := runOn(t, ablate(t, proc.I7Name, func(p *proc.Processor) {
		p.Model.GatingEff = 0
		p.Model.IdleDynFrac = 0.45 // the pre-Nehalem idle behaviour
	}), cfg, spec)
	if ungated.AvgWatts < gated.AvgWatts*1.25 {
		t.Fatalf("ungated single-thread power %v vs gated %v: gating not load-bearing",
			ungated.AvgWatts, gated.AvgWatts)
	}
}

// TestAblationMemoryLatency: Figure 7's sub-linear clock scaling comes
// from DRAM latency being fixed in time. With a (non-physical) zero
// latency, performance scales linearly with clock.
func TestAblationMemoryLatency(t *testing.T) {
	spec := nativeSpec()
	spec.MPKI = 8
	spec.WorkingSetKB = 100 << 10
	speedup := func(p *proc.Processor) float64 {
		lo := runOn(t, p, proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 1.6}, spec)
		hi := runOn(t, p, proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 2.67}, spec)
		return lo.Seconds / hi.Seconds
	}
	stock, err := proc.ByName(proc.I7Name)
	if err != nil {
		t.Fatal(err)
	}
	const fRatio = 2.67 / 1.6
	withMem := speedup(stock)
	noMem := speedup(ablate(t, proc.I7Name, func(p *proc.Processor) {
		p.Model.MemLatencyNs = 0.001
	}))
	if withMem >= fRatio*0.98 {
		t.Fatalf("baseline clock speedup %v already linear", withMem)
	}
	if noMem < fRatio*0.99 {
		t.Fatalf("zero-latency speedup %v not linear in clock", noMem)
	}
}

// TestAblationSMTFill: the Atom's outsized SMT benefit (Architecture
// Finding 2) is carried by its high fill efficiency. With Nehalem-level
// fill, the Atom's gain drops to Nehalem levels.
func TestAblationSMTFill(t *testing.T) {
	gain := func(p *proc.Processor) float64 {
		one := runOn(t, p, proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 1.7}, scalableSpec(1))
		two := runOn(t, p, proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 1.7}, scalableSpec(2))
		return one.Seconds / two.Seconds
	}
	stock, err := proc.ByName(proc.Atom45Name)
	if err != nil {
		t.Fatal(err)
	}
	full := gain(stock)
	nerfed := gain(ablate(t, proc.Atom45Name, func(p *proc.Processor) {
		p.Model.SMTFillEff = 0.28 // the Pentium 4's first-generation value
	}))
	if full-nerfed < 0.1 {
		t.Fatalf("SMT fill ablation moved Atom gain only %v -> %v", full, nerfed)
	}
}

// TestAblationServiceThreads: Workload Finding 1 (single-threaded Java
// speeds up on a second core) disappears entirely when the runtime has
// no concurrent service work or displacement — i.e., for native code.
func TestAblationServiceThreads(t *testing.T) {
	stock, err := proc.ByName(proc.I7Name)
	if err != nil {
		t.Fatal(err)
	}
	speedup := func(spec ExecSpec) float64 {
		one := runOn(t, stock, proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.67}, spec)
		two := runOn(t, stock, proc.Config{Cores: 2, SMTWays: 1, ClockGHz: 2.67}, spec)
		return one.Seconds / two.Seconds
	}
	managed := speedup(javaSpec())
	ablated := speedup(nativeSpec())
	if managed < 1.15 {
		t.Fatalf("managed second-core speedup %v: finding 1 absent before ablation", managed)
	}
	if ablated > 1.03 {
		t.Fatalf("native second-core speedup %v: effect survives without services", ablated)
	}
}

// TestAblationVoltageCurve: Architecture Finding 3 (the i5's flat
// energy across its clock range) depends on its shallow V(f) curve.
// Giving the i5 the i7's steep curve makes high clocks expensive.
func TestAblationVoltageCurve(t *testing.T) {
	spec := nativeSpec()
	energySlope := func(p *proc.Processor) float64 {
		lo := runOn(t, p, proc.Config{Cores: 2, SMTWays: 2, ClockGHz: 1.2}, spec)
		hi := runOn(t, p, proc.Config{Cores: 2, SMTWays: 2, ClockGHz: 3.46}, spec)
		return hi.EnergyJ / lo.EnergyJ
	}
	stock, err := proc.ByName(proc.I5Name)
	if err != nil {
		t.Fatal(err)
	}
	flat := energySlope(stock)
	steep := energySlope(ablate(t, proc.I5Name, func(p *proc.Processor) {
		p.Model.VF = []proc.VFPoint{
			{GHz: 1.20, Volts: 0.80}, {GHz: 2.00, Volts: 0.97},
			{GHz: 2.66, Volts: 1.10}, {GHz: 3.46, Volts: 1.30},
		}
	}))
	if steep < flat*1.15 {
		t.Fatalf("steep-curve energy slope %v vs flat %v: V(f) not the carrier", steep, flat)
	}
}
