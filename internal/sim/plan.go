package sim

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/power"
)

// serviceMode describes where the managed runtime's service threads
// landed relative to the application (Section 3.1 of the paper: the JVM
// parallelizes even single-threaded applications when given spare
// hardware contexts).
type serviceMode int

const (
	serviceNone     serviceMode = iota // native code: no services
	serviceColoc                       // services share the app's contexts
	serviceSMT                         // services ride an idle SMT sibling
	serviceSeparate                    // services own an idle core
)

// plan resolves the spec into sequential steady-state segments: the
// Amdahl serial portion on one thread and the parallel portion across
// the configured contexts.
func (m *Machine) plan(spec ExecSpec) ([]segment, error) {
	contexts := m.Cfg.Contexts()
	concurrency := spec.AppThreads
	if concurrency > contexts {
		concurrency = contexts
	}

	if spec.AppThreads == 1 || spec.ParallelFrac == 0 || concurrency == 1 {
		sg, err := m.segmentFor(spec, 1, 0)
		if err != nil {
			return nil, err
		}
		sg.workFrac = 1
		return []segment{sg}, nil
	}

	// During the serial portion of a managed multithreaded run the other
	// cores stay warm: worker pools spin and the collector and compiler
	// keep executing, which is part of why Java Scalable draws nearly as
	// much power as Native Scalable on the big chips (Table 4).
	warm := 0
	if spec.ServiceWork > 0 {
		warm = concurrency - 1
		if max := m.Cfg.Cores - 1; warm > max {
			warm = max
		}
	}
	serial, err := m.segmentFor(spec, 1, warm)
	if err != nil {
		return nil, err
	}
	serial.workFrac = 1 - spec.ParallelFrac

	par, err := m.segmentFor(spec, concurrency, 0)
	if err != nil {
		return nil, err
	}
	par.workFrac = spec.ParallelFrac
	// Synchronization and load imbalance tax the parallel segment.
	sync := 1 + spec.SyncOverhead*float64(concurrency-1)
	// Oversubscribed thread pools context-switch among themselves.
	if spec.AppThreads > contexts {
		sync *= 1 + 0.02*float64(spec.AppThreads-contexts)/float64(contexts)
	}
	par.rate /= sync
	return []segment{serial, par}, nil
}

// segmentFor computes the steady-state rate, power loads, and operating
// point for `threads` application threads on the machine. warmCores is
// the number of additional cores kept spinning by a managed runtime's
// worker pools during a serial phase.
func (m *Machine) segmentFor(spec ExecSpec, threads, warmCores int) (segment, error) {
	cores := m.Cfg.Cores
	smtWays := m.Cfg.SMTWays

	// Spread application threads across cores first, then SMT ways: the
	// OS scheduler's behaviour on the paper's kernels.
	coresUsed := threads
	if coresUsed > cores {
		coresUsed = cores
	}
	perCore := make([]int, coresUsed)
	for i := 0; i < threads && i < cores*smtWays; i++ {
		perCore[i%coresUsed]++
	}

	mode := m.serviceModeFor(spec, threads, coresUsed, perCore)

	activeCores := coresUsed
	if mode == serviceSeparate {
		activeCores++
	}
	// Service threads on an SMT sibling contend for the core's cache; a
	// service thread on its own core touches little of the LLC (it runs
	// at a low duty cycle), so it does not count as an LLC sharer —
	// otherwise offloading the collector would *cost* cache-bound
	// benchmarks like db instead of relieving them (Section 3.1).
	threadsTotal := threads
	if mode == serviceSMT {
		threadsTotal++
	}

	// Service duty cycle: how often a service thread competes for the
	// core resources it shares (GC and JIT run in bursts).
	duty := math.Min(1, spec.ServiceWork*2.5+spec.CoLocPenalty*2.0)

	// Loads cover every physical core: cores the BIOS disabled draw only
	// their gated residual; cores enabled but idle in this segment draw
	// their C-state power.
	loads := make([]power.CoreLoad, m.Proc.Spec.Cores)
	for i := 0; i < m.Cfg.Cores; i++ {
		loads[i].Enabled = true
	}
	var aggIPC, aggMissPerInstr, memFracAcc float64
	for i, k := range perCore {
		smtShare := k
		if mode == serviceSMT && i == 0 {
			smtShare++ // the service sibling contends for core 0's cache
		}
		share := mem.Share{ThreadsOnCore: smtShare, ActiveCores: activeCores, ThreadsTotal: threadsTotal}
		miss, err := m.hier.MissPerInstr(spec.MPKI, spec.WorkingSetKB, share)
		if err != nil {
			return segment{}, err
		}
		stall := m.hier.StallCPI(miss, m.Cfg.ClockGHz, spec.MLPFactor)
		cpi, err := m.pipe.ThreadCPI(spec.ILP, spec.BranchWeight, stall)
		if err != nil {
			return segment{}, err
		}
		busy := pipeline.BusyFrac(cpi, stall)

		var ipc float64
		smtActive := false
		switch {
		case k >= 2:
			ct, err := m.pipe.Core(2, cpi)
			if err != nil {
				return segment{}, err
			}
			ipc, smtActive = ct.IPC, true
		case mode == serviceSMT && i == 0:
			// The app thread shares core 0 with a duty-cycled service
			// thread: it runs alone (1-duty) of the time and splits the
			// core the rest.
			solo, err := m.pipe.Core(1, cpi)
			if err != nil {
				return segment{}, err
			}
			both, err := m.pipe.Core(2, cpi)
			if err != nil {
				return segment{}, err
			}
			ipc = (1-duty)*solo.IPC + duty*both.PerThreadIPC
			smtActive = true
		default:
			ct, err := m.pipe.Core(1, cpi)
			if err != nil {
				return segment{}, err
			}
			ipc = ct.IPC
		}
		aggIPC += ipc
		aggMissPerInstr += miss * ipc
		if cpi > 0 {
			memFracAcc += (stall / cpi) * ipc
		}
		loads[i] = power.CoreLoad{
			Active:      true,
			Enabled:     true,
			Activity:    spec.Activity,
			Utilization: busy,
			SMTActive:   smtActive,
		}
	}
	if mode == serviceSeparate && coresUsed < cores {
		loads[coresUsed] = power.CoreLoad{
			Active:      true,
			Enabled:     true,
			Activity:    spec.Activity * 0.7 * math.Max(duty, 0.2),
			Utilization: 0.5,
		}
	}
	for w := 0; w < warmCores; w++ {
		idx := coresUsed + w
		if mode == serviceSeparate {
			idx++
		}
		if idx >= cores {
			break
		}
		loads[idx] = power.CoreLoad{
			Active:      true,
			Enabled:     true,
			Activity:    spec.Activity * 0.60,
			Utilization: 0.35,
		}
		activeCores++
	}

	if aggIPC <= 0 {
		return segment{}, fmt.Errorf("sim: zero aggregate IPC on %s %s", m.Proc.Name, m.Cfg)
	}
	missPerInstr := aggMissPerInstr / aggIPC
	memFrac := memFracAcc / aggIPC

	// Resolve the operating point (Turbo Boost) from the load picture.
	op, err := power.TurboPoint(m.Proc, m.Cfg, activeCores, loads)
	if err != nil {
		return segment{}, err
	}

	rate := aggIPC * op.ClockGHz * 1e9

	// Bandwidth ceiling: scalable memory-bound workloads saturate DRAM.
	demand := m.hier.TrafficGBs(rate, missPerInstr)
	rate *= m.hier.BandwidthThrottle(demand, memFrac)

	// Co-located services steal cycles and displace cache/TLB state.
	// The stolen cycles tax aggregate throughput in full — collector
	// work has to retire somewhere — while the displacement penalty
	// dilutes across many app threads.
	if mode == serviceColoc {
		rate /= 1 + spec.ServiceWork + spec.CoLocPenalty/float64(threads)
	}

	// DTLB pressure: pages touched grow with the working set, and a
	// co-resident collector displaces translation state — the mechanism
	// behind db's Section 3.1 behaviour. Offloading services to their
	// own core removes the displacement entirely.
	dtlbMPKI := 0.2 + spec.WorkingSetKB/131072
	if mode == serviceColoc || mode == serviceSMT {
		factor := 8 * spec.CoLocPenalty
		if mode == serviceSMT {
			factor *= 0.7 // the sibling shares the DTLB but not timeslices
		}
		dtlbMPKI *= 1 + factor
	}
	if dtlbMPKI > 8 {
		dtlbMPKI = 8
	}

	// Compile the segment's power model once: the integration loop then
	// evaluates flat coefficients instead of re-deriving scaling and
	// leakage terms per step. A segment boosted above the configured
	// clock gets a second kernel at the base clock for thermal throttling.
	sg := segment{
		rate: rate, op: op, activeCores: activeCores,
		missPerInstr: missPerInstr, dtlbMPKI: dtlbMPKI,
	}
	if sg.kern, err = power.Compile(m.Proc, op, loads); err != nil {
		return segment{}, err
	}
	sg.canThrottle = op.ClockGHz > m.Cfg.ClockGHz
	if sg.canThrottle {
		baseOp := power.Operating{
			ClockGHz: m.Cfg.ClockGHz,
			Volts:    m.Proc.VoltsAt(m.Cfg.ClockGHz),
		}
		if sg.kernThrottled, err = power.Compile(m.Proc, baseOp, loads); err != nil {
			return segment{}, err
		}
	}
	return sg, nil
}

// serviceModeFor decides where service threads land: an idle core if one
// exists, else an idle SMT sibling, else co-located with the application.
func (m *Machine) serviceModeFor(spec ExecSpec, threads, coresUsed int, perCore []int) serviceMode {
	if spec.ServiceWork == 0 && spec.CoLocPenalty == 0 {
		return serviceNone
	}
	if coresUsed < m.Cfg.Cores {
		return serviceSeparate
	}
	if threads < m.Cfg.Contexts() && perCore[0] < m.Cfg.SMTWays {
		return serviceSMT
	}
	return serviceColoc
}
