package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/proc"
)

// nativeSpec is a plain single-threaded compute workload.
func nativeSpec() ExecSpec {
	return ExecSpec{
		Work:         5e9,
		AppThreads:   1,
		ILP:          1.6,
		MPKI:         2,
		WorkingSetKB: 8 << 10,
		Activity:     0.7,
		BranchWeight: 0.5,
	}
}

// scalableSpec is a parallel workload sized to the machine.
func scalableSpec(threads int) ExecSpec {
	s := nativeSpec()
	s.AppThreads = threads
	s.ParallelFrac = 0.95
	s.SyncOverhead = 0.02
	return s
}

// javaSpec is a single-threaded managed workload with service threads.
func javaSpec() ExecSpec {
	s := nativeSpec()
	s.ServiceWork = 0.15
	s.ServiceThreads = 2
	s.CoLocPenalty = 0.10
	return s
}

func machine(t *testing.T, name string, cores, smt int, clock float64, turbo bool) *Machine {
	t.Helper()
	p, err := proc.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p, proc.Config{Cores: cores, SMTWays: smt, ClockGHz: clock, Turbo: turbo})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func run(t *testing.T, m *Machine, spec ExecSpec) Result {
	t.Helper()
	res, err := m.Run(spec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewMachineValidates(t *testing.T) {
	p, err := proc.ByName(proc.I7Name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(nil, proc.Config{}); err == nil {
		t.Fatal("nil processor accepted")
	}
	if _, err := NewMachine(p, proc.Config{Cores: 99, SMTWays: 1, ClockGHz: 2.67}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	m := machine(t, proc.I7Name, 4, 2, 2.67, false)
	a, err := m.Run(nativeSpec(), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(nativeSpec(), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
	c, err := m.Run(nativeSpec(), 43, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical results")
	}
}

func TestRunValidatesSpec(t *testing.T) {
	m := machine(t, proc.I7Name, 4, 2, 2.67, false)
	bad := nativeSpec()
	bad.Work = 0
	if _, err := m.Run(bad, 1, nil); err == nil {
		t.Fatal("zero work accepted")
	}
	bad = nativeSpec()
	bad.ServiceWork = 1.5
	if _, err := m.Run(bad, 1, nil); err == nil {
		t.Fatal("service work above 1 accepted")
	}
}

func TestSampleWeightsSumToDuration(t *testing.T) {
	m := machine(t, proc.Core2D65Name, 2, 1, 2.4, false)
	var total float64
	res, err := m.Run(nativeSpec(), 5, func(w, dt float64) {
		if w <= 0 || dt <= 0 {
			t.Fatalf("bad sample w=%v dt=%v", w, dt)
		}
		total += dt
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-res.Seconds) > 1e-9 {
		t.Fatalf("sample weights sum to %v, run took %v", total, res.Seconds)
	}
}

func TestPowerBelowTDP(t *testing.T) {
	for _, p := range proc.Fleet() {
		m, err := NewMachine(p, p.Stock())
		if err != nil {
			t.Fatal(err)
		}
		spec := scalableSpec(p.HWContexts())
		spec.Activity = 1.0
		res, err := m.Run(spec, 3, nil)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.PeakWatts >= p.Spec.TDPWatts {
			t.Errorf("%s: peak %v exceeds TDP %v", p.Name, res.PeakWatts, p.Spec.TDPWatts)
		}
		if res.AvgWatts <= 0 || res.Seconds <= 0 {
			t.Errorf("%s: degenerate result %+v", p.Name, res)
		}
	}
}

func TestSingleThreadIgnoresExtraCores(t *testing.T) {
	// A native single-threaded workload runs no faster on more cores
	// (Section 3.1: "performance for Native Non-scalable is unaffected")
	// but the chip draws slightly more power with extra cores enabled.
	one := run(t, machine(t, proc.I7Name, 1, 1, 2.67, false), nativeSpec())
	four := run(t, machine(t, proc.I7Name, 4, 1, 2.67, false), nativeSpec())
	if rel := math.Abs(one.Seconds-four.Seconds) / one.Seconds; rel > 0.02 {
		t.Fatalf("single-threaded time changed %.1f%% with cores", rel*100)
	}
	if four.AvgWatts <= one.AvgWatts {
		t.Fatal("enabled idle cores must add some power")
	}
}

func TestScalableSpeedsUpWithCores(t *testing.T) {
	one := run(t, machine(t, proc.I7Name, 1, 1, 2.67, false), scalableSpec(1))
	four := run(t, machine(t, proc.I7Name, 4, 1, 2.67, false), scalableSpec(4))
	speedup := one.Seconds / four.Seconds
	if speedup < 2.5 || speedup > 4 {
		t.Fatalf("4-core speedup = %v, want Amdahl-limited in (2.5, 4)", speedup)
	}
	if four.AvgWatts <= one.AvgWatts*1.5 {
		t.Fatalf("4 active cores power %v vs 1 core %v: too little", four.AvgWatts, one.AvgWatts)
	}
}

func TestSMTSpeedupOrdering(t *testing.T) {
	// Section 3.2: the in-order Atom gains most from SMT; the Pentium
	// 4's early implementation gains least.
	gain := func(name string, clock float64) float64 {
		base := run(t, machine(t, name, 1, 1, clock, false), scalableSpec(1))
		smt := run(t, machine(t, name, 1, 2, clock, false), scalableSpec(2))
		return base.Seconds / smt.Seconds
	}
	atom := gain(proc.Atom45Name, 1.7)
	i7 := gain(proc.I7Name, 2.67)
	p4 := gain(proc.Pentium4Name, 2.4)
	if !(atom > i7 && i7 > p4) {
		t.Fatalf("SMT gains: atom %v, i7 %v, p4 %v; want atom > i7 > p4", atom, i7, p4)
	}
	if p4 < 1 {
		t.Fatalf("P4 SMT slowed scalable code: %v", p4)
	}
}

func TestClockScalingSubLinear(t *testing.T) {
	// Figure 7: memory latency is fixed in time, so doubling the clock
	// buys less than double the performance.
	spec := nativeSpec()
	spec.MPKI = 8
	spec.WorkingSetKB = 100 << 10
	lo := run(t, machine(t, proc.I7Name, 4, 2, 1.6, false), spec)
	hi := run(t, machine(t, proc.I7Name, 4, 2, 2.67, false), spec)
	speedup := lo.Seconds / hi.Seconds
	fRatio := 2.67 / 1.6
	if speedup >= fRatio {
		t.Fatalf("speedup %v not sub-linear in clock ratio %v", speedup, fRatio)
	}
	if speedup < 1.2 {
		t.Fatalf("speedup %v implausibly low", speedup)
	}
	if hi.AvgWatts <= lo.AvgWatts {
		t.Fatal("higher clock and voltage must draw more power")
	}
}

func TestTurboBoostsClockAndPower(t *testing.T) {
	off := run(t, machine(t, proc.I7Name, 1, 1, 2.67, false), nativeSpec())
	on := run(t, machine(t, proc.I7Name, 1, 1, 2.67, true), nativeSpec())
	// Single active core: two steps (Section 3.6).
	wantClock := 2.67 + 2*0.133
	if math.Abs(on.AvgClockGHz-wantClock) > 0.01 {
		t.Fatalf("turbo clock = %v, want %v", on.AvgClockGHz, wantClock)
	}
	if off.AvgClockGHz > 2.68 {
		t.Fatalf("no-turbo clock = %v", off.AvgClockGHz)
	}
	if on.Seconds >= off.Seconds {
		t.Fatal("turbo must speed execution")
	}
	if on.AvgWatts <= off.AvgWatts {
		t.Fatal("turbo must cost power")
	}
	// Architecture Finding 8: on the i7, turbo costs more energy than
	// the performance it buys.
	if on.EnergyJ <= off.EnergyJ {
		t.Fatalf("i7 turbo energy %v not above no-turbo %v", on.EnergyJ, off.EnergyJ)
	}
}

func TestJVMServiceOffloadSpeedsSingleThread(t *testing.T) {
	// Workload Finding 1: single-threaded Java runs faster on two cores
	// because the runtime's service threads move off the app's core.
	one := run(t, machine(t, proc.I7Name, 1, 1, 2.67, false), javaSpec())
	two := run(t, machine(t, proc.I7Name, 2, 1, 2.67, false), javaSpec())
	speedup := one.Seconds / two.Seconds
	if speedup < 1.15 || speedup > 1.35 {
		t.Fatalf("service-offload speedup = %v, want ~1+ServiceWork+CoLocPenalty", speedup)
	}
	// Native single-threaded code sees no such effect.
	oneN := run(t, machine(t, proc.I7Name, 1, 1, 2.67, false), nativeSpec())
	twoN := run(t, machine(t, proc.I7Name, 2, 1, 2.67, false), nativeSpec())
	if nat := oneN.Seconds / twoN.Seconds; nat > 1.05 {
		t.Fatalf("native speedup from 2nd core = %v, want ~1", nat)
	}
}

func TestBandwidthCeilingThrottles(t *testing.T) {
	// A memory-streaming workload on all four Kentsfield cores shares
	// one FSB: it must scale strictly worse than a compute-bound one.
	speedup := func(mpki float64) float64 {
		spec := scalableSpec(4)
		spec.MPKI = mpki
		spec.WorkingSetKB = 1 << 20
		spec.MLPFactor = 1.3
		spec.ILP = 2.4
		one := spec
		one.AppThreads = 1
		r1 := run(t, machine(t, proc.Core2Q65Name, 1, 1, 2.4, false), one)
		r4 := run(t, machine(t, proc.Core2Q65Name, 4, 1, 2.4, false), spec)
		return r1.Seconds / r4.Seconds
	}
	stream := speedup(60)
	compute := speedup(0.2)
	if stream >= compute {
		t.Fatalf("streaming speedup %v not below compute speedup %v", stream, compute)
	}

	// Drive the ceiling explicitly with a narrow memory bus: the same
	// streaming workload on a 1 GB/s variant of the chip must saturate.
	p, err := proc.ByName(proc.Core2Q65Name)
	if err != nil {
		t.Fatal(err)
	}
	narrow := *p
	narrow.Model.DRAMBWGBs = 1
	spec := scalableSpec(4)
	spec.MPKI = 60
	spec.WorkingSetKB = 1 << 20
	spec.MLPFactor = 1.3
	one := spec
	one.AppThreads = 1
	m1, err := NewMachine(&narrow, proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.4})
	if err != nil {
		t.Fatal(err)
	}
	m4, err := NewMachine(&narrow, proc.Config{Cores: 4, SMTWays: 1, ClockGHz: 2.4})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m1.Run(one, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := m4.Run(spec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sat := r1.Seconds / r4.Seconds; sat > 2.2 {
		t.Fatalf("narrow-bus streaming speedup = %v, want hard saturation", sat)
	}
}

func TestOversubscriptionDoesNotCrash(t *testing.T) {
	// pjbb runs 8 threads even on a single-context machine.
	spec := scalableSpec(8)
	res := run(t, machine(t, proc.Pentium4Name, 1, 1, 2.4, false), spec)
	if res.Seconds <= 0 {
		t.Fatal("degenerate result")
	}
}

func TestDieShrinkSavesPower(t *testing.T) {
	// Figure 8: at matched clock and contexts, the newer node draws
	// substantially less power for the same work.
	old := run(t, machine(t, proc.Core2D65Name, 2, 1, 2.4, false), scalableSpec(2))
	new_ := run(t, machine(t, proc.Core2D45Name, 2, 1, 2.4, false), scalableSpec(2))
	ratio := new_.AvgWatts / old.AvgWatts
	if ratio > 0.75 {
		t.Fatalf("die-shrink power ratio = %v, want well below 0.75", ratio)
	}
	if rel := math.Abs(new_.Seconds-old.Seconds) / old.Seconds; rel > 0.15 {
		t.Fatalf("matched-clock performance differs %.0f%%", rel*100)
	}
}

// Property: runtime scales linearly with work for a fixed machine/spec.
func TestQuickWorkLinearity(t *testing.T) {
	m := machine(t, proc.Core2D45Name, 2, 1, 3.1, false)
	f := func(mult uint8) bool {
		k := float64(mult%8) + 1
		a := nativeSpec()
		a.RateJitterSD = 0
		b := a
		b.Work = a.Work * k
		ra, err1 := m.Run(a, 9, nil)
		rb, err2 := m.Run(b, 9, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(rb.Seconds/ra.Seconds-k)/k < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy equals average power times duration.
func TestQuickEnergyIdentity(t *testing.T) {
	m := machine(t, proc.I5Name, 2, 2, 3.46, true)
	f := func(seed int64) bool {
		res, err := m.Run(javaSpec(), seed, nil)
		if err != nil {
			return false
		}
		return math.Abs(res.EnergyJ-res.AvgWatts*res.Seconds) < 1e-6*res.EnergyJ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestThermalEnvelopeHolds(t *testing.T) {
	// The thermal envelope invariant: because packages are sized so the
	// steady-state junction at TDP sits below the throttle threshold,
	// and the Turbo gate keeps power at or below TDP, no sustained
	// full-load run ever trips thermal throttling — which is why the
	// paper "verified empirically that all cores ran 133MHz faster"
	// whenever Turbo was enabled: the headroom is structural. The
	// throttle branch in Run is therefore defensive; the thermal
	// package's own tests exercise it directly.
	for _, p := range proc.Fleet() {
		m, err := NewMachine(p, p.Stock())
		if err != nil {
			t.Fatal(err)
		}
		spec := scalableSpec(p.HWContexts())
		spec.Activity = 1.0
		spec.Work = 5e11 // long enough to reach thermal steady state
		res, err := m.Run(spec, 1, nil)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// Turbo-capable parts must hold their boost for the whole run:
		// at least one step during the parallel portion, up to two
		// during the single-core serial portion.
		if p.HasTurbo() {
			lo := p.MaxClock() + p.Model.TurboStepGHz
			hi := p.MaxClock() + 2*p.Model.TurboStepGHz
			if res.AvgClockGHz < lo-0.01 || res.AvgClockGHz > hi+0.01 {
				t.Errorf("%s: avg clock %v outside sustained boost band [%v, %v]",
					p.Name, res.AvgClockGHz, lo, hi)
			}
		}
	}
}
