package sim

import (
	"testing"

	"repro/internal/proc"
)

// BenchmarkSimRun measures one seeded replay of a planned run — the
// operation the harness repeats for every invocation of every benchmark
// on every configuration, so it dominates the full study's wall time.
// The Runner is built once, as the harness builds it once per spec; the
// replay itself must not allocate (the kernel refactor's contract).
func BenchmarkSimRun(b *testing.B) {
	p, err := proc.ByName(proc.I7Name)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMachine(p, p.Stock())
	if err != nil {
		b.Fatal(err)
	}
	r, err := m.NewRunner(scalableSpec(p.HWContexts()))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(int64(i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewRunner measures the planning cost the Runner pays once per
// spec: segment planning, turbo solving, and power-kernel compilation.
func BenchmarkNewRunner(b *testing.B) {
	p, err := proc.ByName(proc.I7Name)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMachine(p, p.Stock())
	if err != nil {
		b.Fatal(err)
	}
	spec := scalableSpec(p.HWContexts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.NewRunner(spec); err != nil {
			b.Fatal(err)
		}
	}
}
