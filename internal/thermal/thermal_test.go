package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadTDP(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero TDP accepted")
	}
	if _, err := New(-5); err == nil {
		t.Fatal("negative TDP accepted")
	}
}

func TestStartsAtAmbient(t *testing.T) {
	m, err := New(65)
	if err != nil {
		t.Fatal(err)
	}
	if m.TempC() != AmbientC {
		t.Fatalf("initial temp = %v, want ambient %v", m.TempC(), AmbientC)
	}
}

func TestSteadyStateAtTDPBelowThrottle(t *testing.T) {
	for _, tdp := range []float64{4, 65, 130} {
		m, err := New(tdp)
		if err != nil {
			t.Fatal(err)
		}
		steady := m.SteadyC(tdp)
		if steady >= MaxJunctionC {
			t.Errorf("TDP %v: steady %v at or above throttle %v", tdp, steady, MaxJunctionC)
		}
		if steady <= AmbientC {
			t.Errorf("TDP %v: steady %v not above ambient", tdp, steady)
		}
	}
}

func TestStepApproachesSteady(t *testing.T) {
	m, err := New(65)
	if err != nil {
		t.Fatal(err)
	}
	const watts = 50
	target := m.SteadyC(watts)
	for i := 0; i < 1000; i++ {
		m.Step(watts, 0.1)
	}
	if math.Abs(m.TempC()-target) > 0.1 {
		t.Fatalf("temp %v did not converge to %v", m.TempC(), target)
	}
}

func TestStepMonotoneWarming(t *testing.T) {
	m, err := New(65)
	if err != nil {
		t.Fatal(err)
	}
	prev := m.TempC()
	for i := 0; i < 50; i++ {
		cur := m.Step(60, 0.5)
		if cur < prev {
			t.Fatalf("warming not monotone at step %d", i)
		}
		prev = cur
	}
}

func TestCoolingAfterLoad(t *testing.T) {
	m, err := New(65)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		m.Step(60, 0.5)
	}
	hot := m.TempC()
	for i := 0; i < 200; i++ {
		m.Step(5, 0.5)
	}
	if m.TempC() >= hot {
		t.Fatal("chip did not cool after load dropped")
	}
}

func TestZeroDtIsNoOp(t *testing.T) {
	m, err := New(65)
	if err != nil {
		t.Fatal(err)
	}
	before := m.TempC()
	if got := m.Step(60, 0); got != before {
		t.Fatalf("zero-dt step changed temp: %v", got)
	}
}

func TestResetAndThrottling(t *testing.T) {
	m, err := New(65)
	if err != nil {
		t.Fatal(err)
	}
	// Drive far beyond TDP until throttling.
	for i := 0; i < 2000 && !m.Throttling(); i++ {
		m.Step(500, 0.5)
	}
	if !m.Throttling() {
		t.Fatal("sustained 500W did not reach throttle threshold")
	}
	m.Reset()
	if m.TempC() != AmbientC || m.Throttling() {
		t.Fatal("reset did not return to ambient")
	}
}

// Property: temperature always stays between ambient and the steady state
// of the maximum power applied.
func TestQuickTempBounded(t *testing.T) {
	f := func(powers []uint8) bool {
		m, err := New(65)
		if err != nil {
			return false
		}
		maxP := 0.0
		for _, raw := range powers {
			p := float64(raw)
			if p > maxP {
				maxP = p
			}
			m.Step(p, 0.25)
			if m.TempC() < AmbientC-1e-9 || m.TempC() > m.SteadyC(maxP)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
