// Package thermal models the junction temperature of a package as a
// first-order (lumped RC) system: temperature rises toward the
// steady-state implied by the dissipated power and the package's thermal
// resistance, with an exponential time constant.
//
// The thermal state feeds back into the power model (leakage grows with
// temperature) and gates Turbo Boost, which the paper notes engages only
// "if temperature, power, and current conditions allow" (Section 3.6).
package thermal

import (
	"errors"
	"math"
)

// AmbientC is the case/ambient temperature the model assumes.
const AmbientC = 40

// MaxJunctionC is the throttle threshold: above it, Turbo must disengage.
const MaxJunctionC = 95

// Model is a lumped thermal RC node.
type Model struct {
	// ResistanceCPerW is the junction-to-ambient thermal resistance.
	ResistanceCPerW float64
	// TimeConstantS is the RC time constant in seconds.
	TimeConstantS float64

	tempC float64

	// lastDt/lastAlpha memoize the exponential step factor: the
	// integrator calls Step with a constant dt for every step of a
	// segment, so the transcendental evaluates once per segment instead
	// of once per step. The cached value is the exact float the direct
	// computation would produce, so results are bit-identical.
	lastDt    float64
	lastAlpha float64
}

// New builds a thermal model sized for a part with the given TDP: at TDP
// the steady-state junction temperature sits near (but below) the
// throttle threshold, which is how vendors size their thermal envelopes.
func New(tdpWatts float64) (*Model, error) {
	if tdpWatts <= 0 {
		return nil, errors.New("thermal: TDP must be positive")
	}
	return &Model{
		ResistanceCPerW: (MaxJunctionC - 10 - AmbientC) / tdpWatts,
		TimeConstantS:   12,
		tempC:           AmbientC,
	}, nil
}

// TempC returns the current junction temperature.
func (m *Model) TempC() float64 { return m.tempC }

// SteadyC returns the steady-state temperature at the given power.
func (m *Model) SteadyC(watts float64) float64 {
	return AmbientC + m.ResistanceCPerW*watts
}

// Step advances the model by dt seconds at the given dissipated power and
// returns the new temperature.
func (m *Model) Step(watts, dt float64) float64 {
	if dt <= 0 {
		return m.tempC
	}
	target := m.SteadyC(watts)
	if dt != m.lastDt {
		m.lastDt = dt
		m.lastAlpha = 1 - math.Exp(-dt/m.TimeConstantS)
	}
	m.tempC += (target - m.tempC) * m.lastAlpha
	return m.tempC
}

// Reset returns the junction to ambient, as between benchmark runs.
func (m *Model) Reset() { m.tempC = AmbientC }

// Throttling reports whether the junction has reached the throttle
// threshold.
func (m *Model) Throttling() bool { return m.tempC >= MaxJunctionC }
