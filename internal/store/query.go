package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/workload"
)

// Query filters stored measurement rows. Zero-valued fields match
// everything; string fields are exact matches against the paper's
// shorthand forms ("i7 (45)", "lusearch", "4C2T@2.7GHz TB").
type Query struct {
	Processor string
	Benchmark string
	// Config matches the compact configuration notation rendered by
	// proc.Config.String().
	Config string
	// Seed, when non-nil, selects studies sealed under that seed.
	Seed *int64
	// Since/Until bound the seal time (inclusive since, exclusive
	// until); zero values are unbounded.
	Since time.Time
	Until time.Time
}

// MatchMeta reports whether a segment can contain matching rows.
func (q Query) MatchMeta(m Meta) bool {
	if q.Seed != nil && m.Seed != *q.Seed {
		return false
	}
	sealed := m.SealedTime()
	if !q.Since.IsZero() && sealed.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !sealed.Before(q.Until) {
		return false
	}
	return true
}

// matchRow reports whether one row passes the per-row filters.
func (q Query) matchRow(r *Row) bool {
	if q.Processor != "" && r.Processor != q.Processor {
		return false
	}
	if q.Benchmark != "" && r.Benchmark != q.Benchmark {
		return false
	}
	if q.Config != "" && r.ConfigString() != q.Config {
		return false
	}
	return true
}

// ConfigString renders the row's configuration in the paper's compact
// notation — the same bytes proc.Config.String() produces, so filters
// and CSV rows agree with the live system.
func (r *Row) ConfigString() string {
	return proc.Config{Cores: r.Cores, SMTWays: r.SMTWays, ClockGHz: r.ClockGHz, Turbo: r.Turbo}.String()
}

// RowRecord is one matching row with its study identity attached.
type RowRecord struct {
	StudyID uint64
	Seed    int64
	Sealed  int64
	Row     Row
}

// Rows returns the rows matching q in log order, capped at limit
// (limit <= 0 means unlimited).
func (s *Store) Rows(q Query, limit int) ([]RowRecord, error) {
	var out []RowRecord
	for _, m := range s.Studies() {
		if !q.MatchMeta(m) {
			continue
		}
		st, err := s.Load(m)
		if err != nil {
			return nil, err
		}
		for i := range st.Rows {
			if !q.matchRow(&st.Rows[i]) {
				continue
			}
			out = append(out, RowRecord{StudyID: st.ID, Seed: st.Seed, Sealed: st.SealedUnixNano, Row: st.Rows[i]})
			if limit > 0 && len(out) >= limit {
				return out, nil
			}
		}
	}
	return out, nil
}

// ErrMissingCell marks a dataset lookup for a cell the store has no row
// for.
var ErrMissingCell = errors.New("store: cell not in stored dataset")

// Dataset is a queried slice of the store materialized as harness
// measurements, keyed by cell identity with later studies winning on
// duplicates (the determinism contract makes duplicates bit-identical,
// so the choice is moot for same-seed data). It satisfies the
// experiments.Source interface and harness.MeasureFunc, so the live
// aggregation (harness.AggregateConfig) and CSV export
// (experiments.Stream*CSVFrom) code paths run unchanged over stored
// data — stored aggregates match live ones exactly because they are
// computed by the same code in the same order from bit-identical
// inputs.
type Dataset struct {
	byCell map[string]*harness.Measurement
	cps    []proc.ConfiguredProcessor
	seeds  map[int64]int
}

// Collect scans the store and materializes the rows matching q.
func (s *Store) Collect(q Query) (*Dataset, error) {
	benches := workload.All()
	benchByName := make(map[string]*workload.Benchmark, len(benches))
	for _, b := range benches {
		benchByName[b.Name] = b
	}
	fleet := proc.Fleet()
	procByName := make(map[string]*proc.Processor, len(fleet))
	for _, p := range fleet {
		procByName[p.Name] = p
	}
	d := &Dataset{byCell: make(map[string]*harness.Measurement), seeds: make(map[int64]int)}
	seenCP := make(map[string]bool)
	for _, m := range s.Studies() {
		if !q.MatchMeta(m) {
			continue
		}
		st, err := s.Load(m)
		if err != nil {
			return nil, err
		}
		for i := range st.Rows {
			r := &st.Rows[i]
			if !q.matchRow(r) {
				continue
			}
			b, ok := benchByName[r.Benchmark]
			if !ok {
				return nil, fmt.Errorf("store: workload: unknown benchmark %q in study %x", r.Benchmark, st.ID)
			}
			p, ok := procByName[r.Processor]
			if !ok {
				return nil, fmt.Errorf("store: proc: unknown processor %q in study %x", r.Processor, st.ID)
			}
			cp := proc.ConfiguredProcessor{Proc: p, Config: proc.Config{
				Cores: r.Cores, SMTWays: r.SMTWays, ClockGHz: r.ClockGHz, Turbo: r.Turbo,
			}}
			key := r.Benchmark + "|" + cp.String()
			d.byCell[key] = r.Measurement(b, cp)
			d.seeds[st.Seed]++
			if cpKey := cp.String(); !seenCP[cpKey] {
				seenCP[cpKey] = true
				d.cps = append(d.cps, cp)
			}
		}
	}
	return d, nil
}

// Measurement reconstructs the harness measurement a row was flattened
// from. Per-run samples are not persisted; Runs carries the recorded
// run count (the only per-run property the dataset CSVs report).
func (r *Row) Measurement(b *workload.Benchmark, cp proc.ConfiguredProcessor) *harness.Measurement {
	return &harness.Measurement{
		Bench:    b,
		CP:       cp,
		Runs:     make([]harness.RunSample, r.Runs),
		Seconds:  r.Seconds,
		Watts:    r.Watts,
		EnergyJ:  r.EnergyJ,
		Counters: r.Counters,
		TimeCI:   r.TimeCI.Stats(),
		PowerCI:  r.PowerCI.Stats(),
	}
}

// Cells reports how many distinct cells the dataset holds.
func (d *Dataset) Cells() int { return len(d.byCell) }

// Seeds lists the seeds contributing rows, ascending.
func (d *Dataset) Seeds() []int64 {
	out := make([]int64, 0, len(d.seeds))
	for s := range d.seeds {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Configs returns the distinct configurations present, in the canonical
// study order (proc.ConfigSpace) first, then any others sorted by
// label. The canonical ordering keeps aggregate listings and exports in
// the committed dataset's row order.
func (d *Dataset) Configs() []proc.ConfiguredProcessor {
	present := make(map[string]proc.ConfiguredProcessor, len(d.cps))
	for _, cp := range d.cps {
		present[cp.String()] = cp
	}
	var out []proc.ConfiguredProcessor
	for _, cp := range proc.ConfigSpace() {
		if got, ok := present[cp.String()]; ok {
			out = append(out, got)
			delete(present, cp.String())
		}
	}
	var rest []proc.ConfiguredProcessor
	for _, cp := range present {
		rest = append(rest, cp)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].String() < rest[j].String() })
	return append(out, rest...)
}

// Measure is the dataset's harness.MeasureFunc: a pure lookup.
func (d *Dataset) Measure(b *workload.Benchmark, cp proc.ConfiguredProcessor) (*harness.Measurement, error) {
	m, ok := d.byCell[b.Name+"|"+cp.String()]
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrMissingCell, b.Name, cp)
	}
	return m, nil
}

// MeasureBatch satisfies the experiments.Source interface so the
// dataset CSV streamers run unchanged over stored data. Lookups are
// cheap, so workers is ignored.
func (d *Dataset) MeasureBatch(ctx context.Context, jobs []harness.Job, workers int) ([]*harness.Measurement, error) {
	out := make([]*harness.Measurement, len(jobs))
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := d.Measure(j.Bench, j.CP)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// Reference rebuilds the Section 2.6 normalization table from stored
// reference-cell rows — the same accumulation order as the live
// harness, over bit-identical inputs, so the table is bit-identical.
func (d *Dataset) Reference() (*harness.Reference, error) {
	return harness.BuildReference(d.Measure)
}

// Complete reports whether every benchmark of the given groups (nil =
// all four) has a stored row on cp.
func (d *Dataset) Complete(cp proc.ConfiguredProcessor, groups []workload.Group) bool {
	if groups == nil {
		groups = workload.Groups()
	}
	suffix := "|" + cp.String()
	for _, g := range groups {
		for _, b := range workload.ByGroup(g) {
			if _, ok := d.byCell[b.Name+suffix]; !ok {
				return false
			}
		}
	}
	return true
}

// Aggregate runs the paper's Section 2.6 aggregation
// (harness.AggregateConfig — the exact live code path) over every
// complete configuration in the dataset, in canonical order. It returns
// the aggregates plus the labels of configurations skipped as
// incomplete.
func (d *Dataset) Aggregate(groups []workload.Group) ([]*harness.ConfigResult, []string, error) {
	ref, err := d.Reference()
	if err != nil {
		return nil, nil, fmt.Errorf("store: normalization reference from stored rows: %w", err)
	}
	var out []*harness.ConfigResult
	var skipped []string
	for _, cp := range d.Configs() {
		if !d.Complete(cp, groups) {
			skipped = append(skipped, cp.String())
			continue
		}
		res, err := harness.AggregateConfig(cp, d.Measure, ref, groups)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
	}
	return out, skipped, nil
}
