package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// writeStore seals n studies and returns the log bytes plus the sealed
// segment boundaries (cumulative offsets).
func writeStore(t *testing.T, dir string, n int) ([]byte, []int64) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for i := 0; i < n; i++ {
		if _, err := s.Append(testStudy(int64(40+i), time.Unix(1700000000+int64(i), 0).UnixNano(), 7+i)); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, s.Stats().Bytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	return raw, ends
}

// TestCrashRecoveryTornTail simulates a SIGKILL mid-segment-write at
// every byte position of the final segment (and a sample of earlier
// positions): the log is cut to that length, reopened, and the store
// must (a) truncate exactly back to the last wholly sealed segment and
// (b) serve every sealed segment byte-identically.
func TestCrashRecoveryTornTail(t *testing.T) {
	src := t.TempDir()
	raw, ends := writeStore(t, src, 3)

	full := s3Studies(t, src)

	// Every cut inside the last segment, plus a coarse sweep of cuts
	// inside the earlier ones.
	var cuts []int64
	for c := ends[1]; c < ends[2]; c++ {
		cuts = append(cuts, c)
	}
	for c := int64(0); c < ends[1]; c += 97 {
		cuts = append(cuts, c)
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, LogName), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		// Sealed segments strictly before the cut survive; everything
		// else is the torn tail.
		wantSealed := 0
		for _, e := range ends {
			if cut >= e {
				wantSealed++
			}
		}
		metas := s.Studies()
		if len(metas) != wantSealed {
			t.Fatalf("cut %d: recovered %d segments, want %d", cut, len(metas), wantSealed)
		}
		for i, m := range metas {
			got, err := s.Load(m)
			if err != nil {
				t.Fatalf("cut %d: load segment %d: %v", cut, i, err)
			}
			if !reflect.DeepEqual(got, full[i]) {
				t.Fatalf("cut %d: segment %d not byte-identical after recovery", cut, i)
			}
		}
		// The tail is gone from disk: the log ends at the last sealed
		// boundary and its bytes match the original's prefix exactly.
		onDisk, err := os.ReadFile(filepath.Join(dir, LogName))
		if err != nil {
			t.Fatal(err)
		}
		wantLen := int64(0)
		if wantSealed > 0 {
			wantLen = ends[wantSealed-1]
		}
		if int64(len(onDisk)) != wantLen || !bytes.Equal(onDisk, raw[:wantLen]) {
			t.Fatalf("cut %d: recovered log is %d bytes, want the %d-byte sealed prefix", cut, len(onDisk), wantLen)
		}
		s.Close()
	}
}

// TestCrashRecoveryCorruptTail flips one byte inside the last segment's
// body: recovery must drop that segment (checksum mismatch) while the
// earlier sealed segments stay intact and byte-identical.
func TestCrashRecoveryCorruptTail(t *testing.T) {
	src := t.TempDir()
	raw, ends := writeStore(t, src, 3)
	full := s3Studies(t, src)

	corrupt := append([]byte(nil), raw...)
	corrupt[ends[1]+headerSize+5] ^= 0x40 // inside segment 3's body

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	metas := s.Studies()
	if len(metas) != 2 {
		t.Fatalf("recovered %d segments past corruption, want 2", len(metas))
	}
	for i, m := range metas {
		got, err := s.Load(m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, full[i]) {
			t.Fatalf("segment %d damaged by tail corruption recovery", i)
		}
	}
	if got := s.Stats().TruncatedTail; got != int64(len(raw))-ends[1] {
		t.Fatalf("truncated %d bytes, want %d", got, int64(len(raw))-ends[1])
	}
}

// TestAppendAfterRecovery proves the store stays writable after a torn
// tail: recover, append a fresh study, reopen, and all segments decode.
func TestAppendAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	raw, ends := writeStore(t, dir, 2)
	// Tear the second segment.
	if err := os.WriteFile(filepath.Join(dir, LogName), raw[:ends[0]+13], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(testStudy(99, time.Now().UnixNano(), 5)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	metas := s2.Studies()
	if len(metas) != 2 {
		t.Fatalf("got %d segments after append-over-torn-tail, want 2", len(metas))
	}
	if metas[1].Seed != 99 {
		t.Fatalf("appended segment seed = %d, want 99", metas[1].Seed)
	}
	if _, err := s2.Load(metas[1]); err != nil {
		t.Fatal(err)
	}
}

// s3Studies loads every sealed study from a healthy store directory.
func s3Studies(t *testing.T, dir string) []*Study {
	t.Helper()
	s, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var out []*Study
	if err := s.Scan(func(st *Study) error { out = append(out, st); return nil }); err != nil {
		t.Fatal(err)
	}
	return out
}
