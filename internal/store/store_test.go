package store

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/counters"
	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/workload"
)

// testRow fabricates a deterministic row from an index, exercising
// negative, subnormal-ish, and non-round float values so the bit-exact
// round-trip claim is actually tested.
func testRow(i int) Row {
	f := float64(i)
	return Row{
		Benchmark: []string{"mcf", "lusearch", "bloat", "fft"}[i%4],
		Processor: []string{proc.I7Name, proc.AtomD45Name, proc.Pentium4Name}[i%3],
		Cores:     1 + i%4,
		SMTWays:   1 + i%2,
		ClockGHz:  2.661 + f*0.133,
		Turbo:     i%5 == 0,
		Runs:      3 + i%20,
		Seconds:   1.0/3.0 + f*0.77,
		Watts:     23.456789 * (1 + f/97),
		EnergyJ:   math.Pi * f,
		TimeCI:    CI{Mean: 1.1 * f, Half: 0.01 * f, Level: 0.95, N: 3 + i%20},
		PowerCI:   CI{Mean: 23.4 * f, Half: 0.2 * f, Level: 0.95, N: 3 + i%20},
		Counters: counters.Counters{
			Cycles:              1e9 + f,
			Instructions:        2e9 + f,
			AppInstructions:     1.9e9 + f,
			ServiceInstructions: 1e8 - f,
			LLCMisses:           1e6 * f,
			DTLBMisses:          5e5 + f,
			BranchInstructions:  3e8 + f,
		},
	}
}

func testStudy(seed int64, sealed int64, n int) *Study {
	st := &Study{Seed: seed, SealedUnixNano: sealed}
	for i := 0; i < n; i++ {
		st.Rows = append(st.Rows, testRow(i))
	}
	return st
}

func TestSegmentRoundTrip(t *testing.T) {
	st := testStudy(42, 1700000000000000001, 61)
	st.ID = studyID(st)
	buf, err := encodeSegment(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeSegment(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatal("decoded study differs from encoded study")
	}
}

func TestAppendQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a := testStudy(42, time.Now().UnixNano(), 12)
	b := testStudy(7, time.Now().UnixNano()+1, 8)
	idA, err := s.Append(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(b); err != nil {
		t.Fatal(err)
	}
	if idA == 0 {
		t.Fatal("append assigned zero study id")
	}

	// Reopen: the index must rebuild from footers alone.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	metas := s2.Studies()
	if len(metas) != 2 {
		t.Fatalf("got %d studies after reopen, want 2", len(metas))
	}
	got, err := s2.Load(metas[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, a.Rows) {
		t.Fatal("study A rows not bit-identical after reopen")
	}

	st := s2.Stats()
	if st.Segments != 2 || st.Rows != 20 {
		t.Fatalf("stats = %+v, want 2 segments / 20 rows", st)
	}
	if st.LastSealUnix == 0 {
		t.Fatal("stats missing last seal time")
	}

	// The advisory index file exists and lists both segments.
	idx, err := os.ReadFile(filepath.Join(dir, IndexName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(idx), "\n"); lines != 4 { // 2 comments + 2 segments
		t.Fatalf("index file has %d lines, want 4:\n%s", lines, idx)
	}
}

// TestAppendDeferSyncGroupCommit covers the ingest writer's group
// commit: deferred-sync seals are immediately readable and survive a
// reopen once Sync ran, with the advisory index rewritten at the sync
// rather than per seal.
func TestAppendDeferSyncGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := testStudy(42, 1700000000000000001, 7)
	b := testStudy(42, 1700000000000000002, 9)
	if _, err := s.AppendDeferSync(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendDeferSync(b); err != nil {
		t.Fatal(err)
	}

	// Both seals are visible to readers before any fsync.
	if st := s.Stats(); st.Segments != 2 || st.Rows != 16 {
		t.Fatalf("stats before sync = %+v, want 2 segments / 16 rows", st)
	}
	metas := s.Studies()
	if len(metas) != 2 {
		t.Fatalf("%d studies listed before sync, want 2", len(metas))
	}
	got, err := s.Load(metas[1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, b.Rows) {
		t.Fatal("deferred-sync study not bit-identical on read-back")
	}

	// The advisory index is deferred with the fsync.
	if _, err := os.Stat(filepath.Join(dir, IndexName)); err == nil {
		if idx, _ := os.ReadFile(filepath.Join(dir, IndexName)); strings.Count(string(idx), "\n") > 2 {
			t.Fatal("index rewritten per deferred seal, want deferred to Sync")
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	idx, err := os.ReadFile(filepath.Join(dir, IndexName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(idx), "\n"); lines != 4 { // 2 comments + 2 segments
		t.Fatalf("index after Sync has %d lines, want 4:\n%s", lines, idx)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Segments != 2 || st.Rows != 16 || st.TruncatedTail != 0 {
		t.Fatalf("stats after reopen = %+v, want 2 clean segments", st)
	}
}

func TestQueryFilters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	if _, err := s.Append(testStudy(42, base.UnixNano(), 12)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(testStudy(7, base.Add(time.Hour).UnixNano(), 12)); err != nil {
		t.Fatal(err)
	}

	seed42 := int64(42)
	cases := []struct {
		name string
		q    Query
		want int
	}{
		{"all", Query{}, 24},
		{"seed", Query{Seed: &seed42}, 12},
		{"processor", Query{Processor: proc.I7Name}, 8},
		{"benchmark", Query{Benchmark: "mcf"}, 6},
		// The fabricated clock varies per row index, so one config
		// matches exactly its index's row in each of the two studies.
		{"config", Query{Config: func() string { r := testRow(0); return r.ConfigString() }()}, 2},
		{"since", Query{Since: base.Add(time.Minute)}, 12},
		{"until", Query{Until: base.Add(time.Minute)}, 12},
		{"none", Query{Processor: "nope"}, 0},
	}
	for _, tc := range cases {
		rows, err := s.Rows(tc.q, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(rows) != tc.want {
			t.Errorf("%s: got %d rows, want %d", tc.name, len(rows), tc.want)
		}
	}

	// Limit caps the result.
	rows, err := s.Rows(Query{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("limit 5 returned %d rows", len(rows))
	}
}

func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(testStudy(42, time.Now().UnixNano(), 4)); err != nil {
		t.Fatal(err)
	}
	// Leave a torn tail behind the sealed segment.
	f, err := os.OpenFile(filepath.Join(dir, LogName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(segMagic + "partial"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s.Close()

	before, err := os.Stat(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if got := len(ro.Studies()); got != 1 {
		t.Fatalf("read-only open indexed %d studies, want 1", got)
	}
	if _, err := ro.Append(testStudy(1, 1, 1)); err == nil {
		t.Fatal("append on read-only store succeeded")
	}
	after, err := os.Stat(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("read-only open changed the log size: %d -> %d", before.Size(), after.Size())
	}
	if ro.Stats().TruncatedTail == 0 {
		t.Fatal("read-only stats should report the ignored tail")
	}
}

// TestDatasetAggregateMatchesLive stores a real measured slice of the
// study (the four reference processors plus one extra config, all 61
// benchmarks), then checks the store-side aggregation — reference
// rebuild plus harness.AggregateConfig over stored rows — is
// bit-identical to aggregating the live measurements directly.
func TestDatasetAggregateMatchesLive(t *testing.T) {
	h, err := harness.New(42)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := harness.ReferenceCells()
	if err != nil {
		t.Fatal(err)
	}
	i7, err := proc.ByName(proc.I7Name)
	if err != nil {
		t.Fatal(err)
	}
	cps := append(refs, proc.ConfiguredProcessor{Proc: i7, Config: i7.Stock()})

	st := &Study{Seed: 42, SealedUnixNano: time.Now().UnixNano()}
	for _, cp := range cps {
		for _, b := range workload.All() {
			m, err := h.Measure(b, cp)
			if err != nil {
				t.Fatal(err)
			}
			st.Rows = append(st.Rows, RowFromMeasurement(m))
		}
	}

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(st); err != nil {
		t.Fatal(err)
	}

	d, err := s.Collect(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cells() != len(cps)*61 {
		t.Fatalf("dataset holds %d cells, want %d", d.Cells(), len(cps)*61)
	}
	got, skipped, err := d.Aggregate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("unexpected incomplete configs: %v", skipped)
	}
	if len(got) != len(cps) {
		t.Fatalf("aggregated %d configs, want %d", len(got), len(cps))
	}

	ref, err := h.Reference()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range got {
		live, err := harness.AggregateConfig(res.CP, h.Measure, ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.PerfW != live.PerfW || res.WattsW != live.WattsW || res.EnergyW != live.EnergyW ||
			res.PerfB != live.PerfB || res.WattsB != live.WattsB || res.EnergyB != live.EnergyB {
			t.Fatalf("%s: stored aggregate differs from live:\nstored %+v\nlive   %+v", res.CP, res, live)
		}
	}
}
