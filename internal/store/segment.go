package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// On-disk segment layout (all integers little-endian):
//
//	header  magic "PPS1" (4) | body length u64 (8)
//	body    study id u64 | seed i64 | sealed unix-nanos i64 | row count u32
//	        | column data (see encodeBody)
//	footer  CRC-32 (IEEE) of body u32 | magic "PPSF" (4)
//
// The body is columnar: one column per determinism-tuple field
// (benchmark, processor, cores, SMT, clock, turbo — seed and seal time
// are segment-level, a study has exactly one of each) followed by the
// measured-output columns. The two string columns are
// dictionary-encoded: the study grid repeats 61 benchmark names and at
// most 8 processor names thousands of times, so indexes beat inline
// strings by an order of magnitude. Float columns store raw IEEE-754
// bits — the store's fidelity contract is bit-exact round-trip, never
// a decimal rendering.
const (
	segMagic   = "PPS1"
	footMagic  = "PPSF"
	headerSize = 4 + 8
	footerSize = 4 + 4
	bodyFixed  = 8 + 8 + 8 + 4
	// maxSegmentBytes bounds one segment: far above any real study
	// (a full 45x61 grid encodes under 1 MiB) and low enough that a
	// corrupt length field cannot make recovery or decode allocate
	// unboundedly.
	maxSegmentBytes = 64 << 20
	// maxSegmentRows bounds a segment's row count the same way.
	maxSegmentRows = 1 << 20
)

// Errors surfaced by the codec and recovery scan.
var (
	ErrTornSegment    = errors.New("store: torn or truncated segment")
	ErrCorruptSegment = errors.New("store: corrupt segment")
)

// encodeSegment renders one sealed study as a complete segment
// (header, columnar body, checksummed footer), appending to dst.
func encodeSegment(dst []byte, st *Study) ([]byte, error) {
	if len(st.Rows) == 0 {
		return nil, errors.New("store: study has no rows")
	}
	if len(st.Rows) > maxSegmentRows {
		return nil, fmt.Errorf("store: study of %d rows exceeds the %d-row segment bound", len(st.Rows), maxSegmentRows)
	}
	body := encodeBody(make([]byte, 0, bodyFixed+64*len(st.Rows)), st)
	if len(body) > maxSegmentBytes {
		return nil, fmt.Errorf("store: %d-byte segment exceeds the %d-byte bound", len(body), maxSegmentBytes)
	}
	dst = append(dst, segMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(body)))
	dst = append(dst, body...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	dst = append(dst, footMagic...)
	return dst, nil
}

func encodeBody(b []byte, st *Study) []byte {
	rows := st.Rows
	b = binary.LittleEndian.AppendUint64(b, st.ID)
	b = binary.LittleEndian.AppendUint64(b, uint64(st.Seed))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.SealedUnixNano))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rows)))

	// Dictionary string columns: unique values in first-seen order, then
	// one uvarint index per row.
	b = encodeStringColumn(b, rows, func(r *Row) string { return r.Benchmark })
	b = encodeStringColumn(b, rows, func(r *Row) string { return r.Processor })

	// Config columns.
	b = encodeUvarintColumn(b, rows, func(r *Row) uint64 { return uint64(r.Cores) })
	b = encodeUvarintColumn(b, rows, func(r *Row) uint64 { return uint64(r.SMTWays) })
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.ClockGHz })
	b = encodeBitColumn(b, rows, func(r *Row) bool { return r.Turbo })

	// Measured outputs.
	b = encodeUvarintColumn(b, rows, func(r *Row) uint64 { return uint64(r.Runs) })
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.Seconds })
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.Watts })
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.EnergyJ })
	for _, ci := range []func(*Row) *CI{
		func(r *Row) *CI { return &r.TimeCI },
		func(r *Row) *CI { return &r.PowerCI },
	} {
		b = encodeFloatColumn(b, rows, func(r *Row) float64 { return ci(r).Mean })
		b = encodeFloatColumn(b, rows, func(r *Row) float64 { return ci(r).Half })
		b = encodeFloatColumn(b, rows, func(r *Row) float64 { return ci(r).Level })
		b = encodeUvarintColumn(b, rows, func(r *Row) uint64 { return uint64(ci(r).N) })
	}
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.Counters.Cycles })
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.Counters.Instructions })
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.Counters.AppInstructions })
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.Counters.ServiceInstructions })
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.Counters.LLCMisses })
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.Counters.DTLBMisses })
	b = encodeFloatColumn(b, rows, func(r *Row) float64 { return r.Counters.BranchInstructions })
	return b
}

func encodeStringColumn(b []byte, rows []Row, get func(*Row) string) []byte {
	dict := make(map[string]uint64, 64)
	var values []string
	idx := make([]uint64, len(rows))
	for i := range rows {
		v := get(&rows[i])
		id, ok := dict[v]
		if !ok {
			id = uint64(len(values))
			dict[v] = id
			values = append(values, v)
		}
		idx[i] = id
	}
	b = binary.AppendUvarint(b, uint64(len(values)))
	for _, v := range values {
		b = binary.AppendUvarint(b, uint64(len(v)))
		b = append(b, v...)
	}
	for _, id := range idx {
		b = binary.AppendUvarint(b, id)
	}
	return b
}

func encodeUvarintColumn(b []byte, rows []Row, get func(*Row) uint64) []byte {
	for i := range rows {
		b = binary.AppendUvarint(b, get(&rows[i]))
	}
	return b
}

func encodeFloatColumn(b []byte, rows []Row, get func(*Row) float64) []byte {
	for i := range rows {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(get(&rows[i])))
	}
	return b
}

func encodeBitColumn(b []byte, rows []Row, get func(*Row) bool) []byte {
	n := (len(rows) + 7) / 8
	off := len(b)
	b = append(b, make([]byte, n)...)
	for i := range rows {
		if get(&rows[i]) {
			b[off+i/8] |= 1 << (i % 8)
		}
	}
	return b
}

// bodyReader is a bounds-checked cursor over a segment body. Every read
// fails cleanly at the end of the buffer, so a truncated or corrupt body
// surfaces as ErrCorruptSegment rather than a panic (pinned by
// FuzzSegmentDecode).
type bodyReader struct {
	b   []byte
	off int
}

func (r *bodyReader) remaining() int { return len(r.b) - r.off }

func (r *bodyReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrCorruptSegment
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *bodyReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrCorruptSegment
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *bodyReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrCorruptSegment
	}
	r.off += n
	return v, nil
}

func (r *bodyReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrCorruptSegment
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

// decodeSegmentBody decodes a verified segment body back into a Study.
// Allocation is bounded by the body length: row counts and dictionary
// sizes are validated against the bytes actually present before any
// slice is sized from them.
func decodeSegmentBody(body []byte) (*Study, error) {
	r := &bodyReader{b: body}
	id, err := r.u64()
	if err != nil {
		return nil, err
	}
	seedU, err := r.u64()
	if err != nil {
		return nil, err
	}
	sealedU, err := r.u64()
	if err != nil {
		return nil, err
	}
	nRows, err := r.u32()
	if err != nil {
		return nil, err
	}
	// A row costs at least 30 bytes on disk (two dict indexes, four
	// varints, 22 eight-byte floats is far more — use the cheapest
	// possible row as the bound), so a claimed count beyond what the
	// remaining bytes could hold is corruption, rejected before the
	// rows slice is allocated.
	if nRows == 0 || nRows > maxSegmentRows || int(nRows) > r.remaining() {
		return nil, ErrCorruptSegment
	}
	st := &Study{
		ID:             id,
		Seed:           int64(seedU),
		SealedUnixNano: int64(sealedU),
		Rows:           make([]Row, nRows),
	}
	rows := st.Rows

	if err := decodeStringColumn(r, rows, func(row *Row, v string) { row.Benchmark = v }); err != nil {
		return nil, err
	}
	if err := decodeStringColumn(r, rows, func(row *Row, v string) { row.Processor = v }); err != nil {
		return nil, err
	}
	if err := decodeUvarintColumn(r, rows, func(row *Row, v uint64) { row.Cores = int(v) }); err != nil {
		return nil, err
	}
	if err := decodeUvarintColumn(r, rows, func(row *Row, v uint64) { row.SMTWays = int(v) }); err != nil {
		return nil, err
	}
	if err := decodeFloatColumn(r, rows, func(row *Row, v float64) { row.ClockGHz = v }); err != nil {
		return nil, err
	}
	if err := decodeBitColumn(r, rows, func(row *Row, v bool) { row.Turbo = v }); err != nil {
		return nil, err
	}
	if err := decodeUvarintColumn(r, rows, func(row *Row, v uint64) { row.Runs = int(v) }); err != nil {
		return nil, err
	}
	if err := decodeFloatColumn(r, rows, func(row *Row, v float64) { row.Seconds = v }); err != nil {
		return nil, err
	}
	if err := decodeFloatColumn(r, rows, func(row *Row, v float64) { row.Watts = v }); err != nil {
		return nil, err
	}
	if err := decodeFloatColumn(r, rows, func(row *Row, v float64) { row.EnergyJ = v }); err != nil {
		return nil, err
	}
	for _, ci := range []func(*Row) *CI{
		func(row *Row) *CI { return &row.TimeCI },
		func(row *Row) *CI { return &row.PowerCI },
	} {
		if err := decodeFloatColumn(r, rows, func(row *Row, v float64) { ci(row).Mean = v }); err != nil {
			return nil, err
		}
		if err := decodeFloatColumn(r, rows, func(row *Row, v float64) { ci(row).Half = v }); err != nil {
			return nil, err
		}
		if err := decodeFloatColumn(r, rows, func(row *Row, v float64) { ci(row).Level = v }); err != nil {
			return nil, err
		}
		if err := decodeUvarintColumn(r, rows, func(row *Row, v uint64) { ci(row).N = int(v) }); err != nil {
			return nil, err
		}
	}
	for _, set := range []func(*Row, float64){
		func(row *Row, v float64) { row.Counters.Cycles = v },
		func(row *Row, v float64) { row.Counters.Instructions = v },
		func(row *Row, v float64) { row.Counters.AppInstructions = v },
		func(row *Row, v float64) { row.Counters.ServiceInstructions = v },
		func(row *Row, v float64) { row.Counters.LLCMisses = v },
		func(row *Row, v float64) { row.Counters.DTLBMisses = v },
		func(row *Row, v float64) { row.Counters.BranchInstructions = v },
	} {
		if err := decodeFloatColumn(r, rows, set); err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, ErrCorruptSegment
	}
	return st, nil
}

func decodeStringColumn(r *bodyReader, rows []Row, set func(*Row, string)) error {
	nVals, err := r.uvarint()
	if err != nil {
		return err
	}
	// Each dictionary value costs at least one length byte; each row
	// costs at least one index byte.
	if nVals == 0 || int64(nVals) > int64(r.remaining()) {
		return ErrCorruptSegment
	}
	values := make([]string, nVals)
	for i := range values {
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		raw, err := r.bytes(int(n))
		if err != nil {
			return err
		}
		values[i] = string(raw)
	}
	for i := range rows {
		id, err := r.uvarint()
		if err != nil {
			return err
		}
		if id >= nVals {
			return ErrCorruptSegment
		}
		set(&rows[i], values[id])
	}
	return nil
}

func decodeUvarintColumn(r *bodyReader, rows []Row, set func(*Row, uint64)) error {
	for i := range rows {
		v, err := r.uvarint()
		if err != nil {
			return err
		}
		set(&rows[i], v)
	}
	return nil
}

func decodeFloatColumn(r *bodyReader, rows []Row, set func(*Row, float64)) error {
	for i := range rows {
		v, err := r.u64()
		if err != nil {
			return err
		}
		set(&rows[i], math.Float64frombits(v))
	}
	return nil
}

func decodeBitColumn(r *bodyReader, rows []Row, set func(*Row, bool)) error {
	raw, err := r.bytes((len(rows) + 7) / 8)
	if err != nil {
		return err
	}
	for i := range rows {
		set(&rows[i], raw[i/8]&(1<<(i%8)) != 0)
	}
	return nil
}

// DecodeSegment parses one complete segment (header through footer) from
// the front of b, returning the study and the bytes consumed. It
// distinguishes a segment that is merely cut short (ErrTornSegment —
// recovery truncates here) from one whose bytes are present but wrong
// (ErrCorruptSegment). It never panics on arbitrary input (pinned by
// FuzzSegmentDecode).
func DecodeSegment(b []byte) (*Study, int, error) {
	if len(b) < headerSize {
		return nil, 0, ErrTornSegment
	}
	if string(b[:4]) != segMagic {
		return nil, 0, ErrCorruptSegment
	}
	bodyLen := binary.LittleEndian.Uint64(b[4:])
	if bodyLen < bodyFixed || bodyLen > maxSegmentBytes {
		return nil, 0, ErrCorruptSegment
	}
	total := headerSize + int(bodyLen) + footerSize
	if len(b) < total {
		return nil, 0, ErrTornSegment
	}
	body := b[headerSize : headerSize+int(bodyLen)]
	foot := b[headerSize+int(bodyLen) : total]
	if string(foot[4:8]) != footMagic {
		return nil, 0, ErrCorruptSegment
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(foot) {
		return nil, 0, ErrCorruptSegment
	}
	st, err := decodeSegmentBody(body)
	if err != nil {
		return nil, 0, err
	}
	return st, total, nil
}
