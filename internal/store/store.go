// Package store is the daemon's persistent study store: an append-only
// log of sealed study segments that survives process restarts, so the
// longitudinal analyses the paper is built on (efficiency trends across
// processor generations) can run over the repo's own accumulated
// measurements instead of evaporating with each process.
//
// The design is deliberately minimal and stdlib-only:
//
//   - One append-only file, segments.log. Each completed study is
//     sealed as one self-contained segment: a columnar block of
//     measurement rows (column per determinism-tuple field plus the
//     measured outputs) framed by a length header and a CRC-32 footer.
//   - Appends write the whole segment in one Write call and fsync on
//     seal, so a sealed segment is durable and a crash can only tear
//     the segment being written.
//   - There is no memory-mapped or authoritative index file: Open
//     rebuilds the index by scanning segment footers from the front of
//     the log, truncates a torn tail (and only the tail — every sealed
//     segment before it is untouched), and then rewrites the advisory
//     index file for humans and tooling.
//
// Fidelity contract: floats are stored as raw IEEE-754 bits, so a row
// queried back is bit-identical to the measurement that produced it.
// Combined with the repo's determinism contract, stored aggregates and
// exported CSVs match live ones byte for byte.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/counters"
	"repro/internal/harness"
	"repro/internal/stats"
)

// LogName is the append-only segment log inside the store directory.
const LogName = "segments.log"

// IndexName is the advisory index file: one line per sealed segment,
// rebuilt on every open by scanning the log's segment footers. It is
// never read back — the log is the single source of truth — but it
// makes a store directory inspectable with cat.
const IndexName = "INDEX"

// CI is the persisted form of a confidence interval; identical field
// semantics to stats.CI.
type CI struct {
	Mean  float64
	Half  float64
	Level float64
	N     int
}

// Stats converts to the stats package's form.
func (c CI) Stats() stats.CI { return stats.CI{Mean: c.Mean, Half: c.Half, Level: c.Level, N: c.N} }

// FromStatsCI converts a stats confidence interval to the persisted form.
func FromStatsCI(ci stats.CI) CI { return CI{Mean: ci.Mean, Half: ci.Half, Level: ci.Level, N: ci.N} }

// Row is one measured cell as persisted: the determinism tuple's
// per-cell fields (benchmark, processor, configuration — seed and seal
// time live on the segment) plus the aggregated methodology outputs.
type Row struct {
	Benchmark string
	Processor string
	Cores     int
	SMTWays   int
	ClockGHz  float64
	Turbo     bool

	Runs     int
	Seconds  float64
	Watts    float64
	EnergyJ  float64
	TimeCI   CI
	PowerCI  CI
	Counters counters.Counters
}

// RowFromMeasurement flattens a harness measurement into its persisted
// form.
func RowFromMeasurement(m *harness.Measurement) Row {
	return Row{
		Benchmark: m.Bench.Name,
		Processor: m.CP.Proc.Name,
		Cores:     m.CP.Config.Cores,
		SMTWays:   m.CP.Config.SMTWays,
		ClockGHz:  m.CP.Config.ClockGHz,
		Turbo:     m.CP.Config.Turbo,
		Runs:      len(m.Runs),
		Seconds:   m.Seconds,
		Watts:     m.Watts,
		EnergyJ:   m.EnergyJ,
		TimeCI:    FromStatsCI(m.TimeCI),
		PowerCI:   FromStatsCI(m.PowerCI),
		Counters:  m.Counters,
	}
}

// Study is one sealed batch of measurement rows: a completed
// /v1/measure study, durably recorded as one segment.
type Study struct {
	// ID is content-derived (FNV-1a over seed, seal time, and row
	// identities), assigned at append time when zero.
	ID             uint64
	Seed           int64
	SealedUnixNano int64
	Rows           []Row
}

// Meta summarizes one sealed segment for listings and index entries.
type Meta struct {
	ID     uint64 `json:"id"`
	Seed   int64  `json:"seed"`
	Sealed int64  `json:"sealed_unix_nano"`
	Rows   int    `json:"rows"`
	Offset int64  `json:"offset"`
	Bytes  int64  `json:"bytes"`
}

// SealedTime returns the seal timestamp.
func (m Meta) SealedTime() time.Time { return time.Unix(0, m.Sealed) }

// Stats is the store's operational summary, surfaced on /statsz and the
// monitor dashboard.
type Stats struct {
	Segments      int64 `json:"segments"`
	Rows          int64 `json:"rows"`
	Bytes         int64 `json:"bytes"`
	LastSealUnix  int64 `json:"last_seal_unix"`
	TruncatedTail int64 `json:"truncated_tail_bytes"`
}

// Store is an open study store. All methods are safe for concurrent
// use: appends are serialized under the mutex, reads go through ReadAt
// against sealed (immutable) regions of the log.
type Store struct {
	dir      string
	readOnly bool

	mu       sync.Mutex
	f        *os.File
	size     int64
	segs     []Meta
	rows     int64
	torn     int64 // bytes truncated (writer) or ignored (read-only) at open
	buf      []byte
	idxDirty bool // seals since the advisory index was last rewritten
	close    sync.Once
}

// Open opens (creating if needed) the store in dir for writing: it
// scans the segment log from the front, verifying each footer checksum,
// rebuilds the in-memory index, truncates a torn tail back to the last
// sealed segment, and rewrites the advisory index file.
func Open(dir string) (*Store, error) { return open(dir, false) }

// OpenReadOnly opens an existing store for querying without modifying
// it: a torn tail is ignored rather than truncated, so query tooling
// can safely inspect the directory of a live daemon.
func OpenReadOnly(dir string) (*Store, error) { return open(dir, true) }

func open(dir string, readOnly bool) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	flags := os.O_RDWR | os.O_CREATE
	if readOnly {
		flags = os.O_RDONLY
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, LogName), flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	s := &Store{dir: dir, readOnly: readOnly, f: f}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if !readOnly {
		s.writeIndexLocked()
	}
	return s, nil
}

// recover scans the log, building the index and locating the end of the
// last sealed segment. In write mode anything after it — a segment the
// previous process died inside, or garbage — is truncated away; sealed
// segments are never touched. In read-only mode the tail is left on
// disk and simply not indexed.
func (s *Store) recover() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat log: %w", err)
	}
	raw := make([]byte, fi.Size())
	if _, err := s.f.ReadAt(raw, 0); err != nil && fi.Size() > 0 {
		return fmt.Errorf("store: read log: %w", err)
	}
	off := 0
	for off < len(raw) {
		st, n, err := DecodeSegment(raw[off:])
		if err != nil {
			// Torn or corrupt from here on: everything before off is
			// sealed and verified; everything after is the tail a crash
			// left behind.
			break
		}
		s.segs = append(s.segs, Meta{
			ID:     st.ID,
			Seed:   st.Seed,
			Sealed: st.SealedUnixNano,
			Rows:   len(st.Rows),
			Offset: int64(off),
			Bytes:  int64(n),
		})
		s.rows += int64(len(st.Rows))
		off += n
	}
	s.size = int64(off)
	s.torn = fi.Size() - int64(off)
	if s.torn > 0 && !s.readOnly {
		if err := s.f.Truncate(s.size); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: sync after truncate: %w", err)
		}
	}
	return nil
}

// writeIndexLocked rewrites the advisory index file from the in-memory
// index. Best-effort: the index is rebuilt from footers on every open,
// so a failed write costs nothing but inspectability.
func (s *Store) writeIndexLocked() {
	b := make([]byte, 0, 64*(len(s.segs)+1))
	b = append(b, "# powerperf study store index — advisory, rebuilt on open from segment footers\n"...)
	b = append(b, "# id seed sealed_unix_nano rows offset bytes\n"...)
	for _, m := range s.segs {
		b = strconv.AppendUint(b, m.ID, 16)
		b = append(b, ' ')
		b = strconv.AppendInt(b, m.Seed, 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, m.Sealed, 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(m.Rows), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, m.Offset, 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, m.Bytes, 10)
		b = append(b, '\n')
	}
	_ = os.WriteFile(filepath.Join(s.dir, IndexName), b, 0o644)
}

// fnv1a over the study identity for content-derived IDs.
func studyID(st *Study) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(st.Seed))
	mix(uint64(st.SealedUnixNano))
	mix(uint64(len(st.Rows)))
	for i := range st.Rows {
		r := &st.Rows[i]
		for j := 0; j < len(r.Benchmark); j++ {
			h ^= uint64(r.Benchmark[j])
			h *= prime
		}
		for j := 0; j < len(r.Processor); j++ {
			h ^= uint64(r.Processor[j])
			h *= prime
		}
	}
	return h
}

// Append seals one study as a new segment: encode, single write, fsync.
// It returns the study's ID (assigned content-derived when zero). On a
// write error the log is truncated back to the last sealed segment so
// the store never exposes a half-written tail to its own process.
func (s *Store) Append(st *Study) (uint64, error) { return s.append(st, true) }

// AppendDeferSync seals one study without forcing it to stable storage;
// the caller promises a following Sync. The ingest writer uses it for
// group commit: under backlog, several seals share one fsync. A crash
// inside the unsynced window leaves at worst a shorter valid prefix —
// recovery keeps every segment up to the first invalid byte and
// truncates the rest, exactly as for a torn single-segment tail.
func (s *Store) AppendDeferSync(st *Study) (uint64, error) { return s.append(st, false) }

func (s *Store) append(st *Study, sync bool) (uint64, error) {
	if s.readOnly {
		return 0, errors.New("store: append to read-only store")
	}
	if st.SealedUnixNano == 0 {
		st.SealedUnixNano = time.Now().UnixNano()
	}
	if st.ID == 0 {
		st.ID = studyID(st)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, errors.New("store: closed")
	}
	buf, err := encodeSegment(s.buf[:0], st)
	if err != nil {
		return 0, err
	}
	s.buf = buf[:0] // recycle the encode buffer across seals
	if _, err := s.f.WriteAt(buf, s.size); err != nil {
		_ = s.f.Truncate(s.size)
		return 0, fmt.Errorf("store: append segment: %w", err)
	}
	if sync {
		if err := s.f.Sync(); err != nil {
			_ = s.f.Truncate(s.size)
			return 0, fmt.Errorf("store: fsync segment: %w", err)
		}
	}
	s.segs = append(s.segs, Meta{
		ID:     st.ID,
		Seed:   st.Seed,
		Sealed: st.SealedUnixNano,
		Rows:   len(st.Rows),
		Offset: s.size,
		Bytes:  int64(len(buf)),
	})
	s.size += int64(len(buf))
	s.rows += int64(len(st.Rows))
	// The advisory index is deferred to Sync/Close: rewriting a file
	// per seal is measurable on the serving path's ingest writer, and
	// the log is the source of truth anyway.
	s.idxDirty = true
	return st.ID, nil
}

// Studies lists the sealed segments in log order.
func (s *Store) Studies() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Meta(nil), s.segs...)
}

// Stats snapshots the store's operational counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:      int64(len(s.segs)),
		Rows:          s.rows,
		Bytes:         s.size,
		TruncatedTail: s.torn,
	}
	if n := len(s.segs); n > 0 {
		st.LastSealUnix = s.segs[n-1].Sealed / int64(time.Second)
	}
	return st
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Load decodes one sealed study by its index entry.
func (s *Store) Load(m Meta) (*Study, error) {
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	if f == nil {
		return nil, errors.New("store: closed")
	}
	raw := make([]byte, m.Bytes)
	if _, err := f.ReadAt(raw, m.Offset); err != nil {
		return nil, fmt.Errorf("store: read segment at %d: %w", m.Offset, err)
	}
	st, _, err := DecodeSegment(raw)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Scan decodes every sealed study in log order, calling fn for each.
// Returning an error from fn stops the scan and propagates it.
func (s *Store) Scan(fn func(*Study) error) error {
	for _, m := range s.Studies() {
		st, err := s.Load(m)
		if err != nil {
			return err
		}
		if err := fn(st); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the log to stable storage (appends already fsync per
// seal; Sync exists for shutdown belt-and-braces) and rewrites the
// advisory index if seals landed since the last rewrite.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil || s.readOnly {
		return nil
	}
	if s.idxDirty {
		s.writeIndexLocked()
		s.idxDirty = false
	}
	return s.f.Sync()
}

// Close syncs and closes the log. Idempotent.
func (s *Store) Close() error {
	var err error
	s.close.Do(func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.f == nil {
			return
		}
		if !s.readOnly {
			if s.idxDirty {
				s.writeIndexLocked()
				s.idxDirty = false
			}
			err = s.f.Sync()
		}
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	})
	return err
}
