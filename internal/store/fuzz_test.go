package store

import (
	"bytes"
	"testing"
	"time"
)

// FuzzSegmentDecode hardens the segment decoder the way FuzzStreamDecode
// hardens the NDJSON stream decoder: arbitrary bytes must never panic,
// never allocate unboundedly (row and dictionary counts are validated
// against the bytes actually present before sizing any slice), and a
// valid segment must round-trip through a decode-encode-decode cycle.
func FuzzSegmentDecode(f *testing.F) {
	// Seed corpus: valid segments of several shapes plus systematic
	// mutilations of one.
	for _, n := range []int{1, 3, 61} {
		st := testStudy(42, time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC).UnixNano(), n)
		st.ID = studyID(st)
		buf, err := encodeSegment(nil, st)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)/2])    // torn mid-body
		f.Add(buf[:headerSize-3])  // torn mid-header
		f.Add(append(buf, buf...)) // trailing second segment
		mut := append([]byte(nil), buf...)
		mut[headerSize+9] ^= 0xff // corrupt body
		f.Add(mut)
		bad := append([]byte(nil), buf...)
		bad[5] = 0xff // absurd body length
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add([]byte("PPS1\xff\xff\xff\xff\xff\xff\xff\xff garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, n, err := DecodeSegment(data)
		if err != nil {
			if st != nil || n != 0 {
				t.Fatalf("error return carried a study or consumed bytes: %v, %d", st, n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(st.Rows) == 0 {
			t.Fatal("decoded segment with zero rows")
		}
		// Bounded allocation: a decoded row can never outnumber the
		// bytes that encoded it (each row costs well over one byte on
		// disk).
		if len(st.Rows) > n {
			t.Fatalf("%d rows decoded from %d bytes", len(st.Rows), n)
		}
		// Round-trip: re-encoding the decoded study reproduces the
		// consumed bytes exactly (dictionary order is first-seen, so
		// the encoding is canonical for a decoded study).
		re, err := encodeSegment(nil, st)
		if err != nil {
			t.Fatalf("re-encode of decoded study failed: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatal("decode-encode round trip changed segment bytes")
		}
	})
}
