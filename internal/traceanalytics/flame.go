package traceanalytics

// Flame-style hierarchy: retained traces merged by span-name path.
// Two study runs produce structurally identical trees (measure →
// cell → queue …), so merging by name collapses thousands of spans
// into a handful of nodes whose totals show where fleet time goes.

import "sort"

// FlameNode is one merged name-path with its aggregate times.
type FlameNode struct {
	Name     string       `json:"name"`
	Count    int64        `json:"count"`
	TotalMS  float64      `json:"total_ms"`
	SelfMS   float64      `json:"self_ms"`
	Children []*FlameNode `json:"children,omitempty"`
}

func (n *FlameNode) child(name string) *FlameNode {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	c := &FlameNode{Name: name}
	n.Children = append(n.Children, c)
	return c
}

const maxFlameDepth = 12

// mergeTrace folds one assembled trace into the root. The waterfall is
// pre-order with depths, so a depth-indexed stack recovers the path.
func (n *FlameNode) mergeTrace(t *Trace) {
	stack := make([]*FlameNode, 1, 8)
	stack[0] = n
	for i := range t.Spans {
		sp := &t.Spans[i]
		depth := sp.Depth + 1 // stack[0] is the root
		if depth > maxFlameDepth {
			continue
		}
		if depth > len(stack) {
			// Child of a skipped ancestor; clamp to the deepest merged.
			depth = len(stack)
		}
		parent := stack[depth-1]
		node := parent.child(sp.Name)
		node.Count++
		node.TotalMS += sp.DurMS
		node.SelfMS += sp.SelfCritMS
		stack = append(stack[:depth], node)
	}
}

func (n *FlameNode) sortDesc() {
	sort.SliceStable(n.Children, func(i, j int) bool {
		return n.Children[i].TotalMS > n.Children[j].TotalMS
	})
	for _, c := range n.Children {
		c.sortDesc()
	}
}
