package traceanalytics

import (
	"math"
	"testing"
	"time"

	"repro/internal/telemetry"
)

var base = time.Unix(1700000000, 0)

// mkSpan builds one span with millisecond offsets from base.
func mkSpan(trace, id, parent uint64, name string, startMS, durMS float64, attrs ...telemetry.Attr) telemetry.SpanData {
	return telemetry.SpanData{
		Trace:  telemetry.TraceID(trace),
		ID:     telemetry.SpanID(id),
		Parent: telemetry.SpanID(parent),
		Name:   name,
		Start:  base.Add(time.Duration(startMS * 1e6)),
		Dur:    time.Duration(durMS * 1e6),
		Attrs:  attrs,
	}
}

// checkPartition asserts the trace's critical-path invariant: segments
// cover [0, wall] exactly once, in order, and per-stage self times sum
// to the wall time.
func checkPartition(t *testing.T, tr *Trace) {
	t.Helper()
	const eps = 1e-6
	cur := 0.0
	for i, seg := range tr.Critical {
		if math.Abs(seg.OffsetMS-cur) > eps {
			t.Fatalf("segment %d starts at %.6fms, want %.6fms (gap or overlap)", i, seg.OffsetMS, cur)
		}
		if seg.DurMS <= 0 {
			t.Fatalf("segment %d has non-positive duration %.6fms", i, seg.DurMS)
		}
		cur = seg.OffsetMS + seg.DurMS
	}
	if math.Abs(cur-tr.WallMS) > eps {
		t.Fatalf("segments end at %.6fms, wall is %.6fms", cur, tr.WallMS)
	}
	var stageSum float64
	for _, sh := range tr.Stages {
		stageSum += sh.MS
	}
	if math.Abs(stageSum-tr.WallMS) > eps {
		t.Fatalf("stage self-times sum to %.6fms, wall is %.6fms", stageSum, tr.WallMS)
	}
}

func TestAssembleCriticalPathPartition(t *testing.T) {
	// coordinator: MeasureBatch [0,100] -> lease(first) [2,50],
	// lease(steal) [55,95]; backend: http.measure [10,45] under first
	// lease -> cell(miss) [12,40] -> queue [12,15]; second backend:
	// http.measure [60,92] under steal lease -> cell(hit) [62,90].
	spans := []telemetry.SpanData{
		mkSpan(1, 1, 0, "scheduler.MeasureBatch", 0, 100),
		mkSpan(1, 2, 1, "scheduler.lease", 2, 48, telemetry.String("kind", "first")),
		mkSpan(1, 3, 1, "scheduler.lease", 55, 40, telemetry.String("kind", "steal")),
		mkSpan(1, 4, 2, "http.measure", 10, 35),
		mkSpan(1, 5, 4, "service.cell", 12, 28, telemetry.String("outcome", "miss"), telemetry.String("seed", "42")),
		mkSpan(1, 6, 5, "service.queue", 12, 3),
		mkSpan(1, 7, 3, "http.measure", 60, 32),
		mkSpan(1, 8, 7, "service.cell", 62, 28, telemetry.String("outcome", "hit")),
	}
	e := New(Options{})
	e.Ingest("coordinator", spans[:3])
	e.Ingest("http://be-a", spans[3:6])
	e.Ingest("http://be-b", spans[6:])

	tr := e.Trace(1)
	if tr == nil {
		t.Fatal("trace 1 not assembled")
	}
	if tr.Root != "scheduler.MeasureBatch" {
		t.Fatalf("root = %q, want scheduler.MeasureBatch", tr.Root)
	}
	if tr.WallMS != 100 {
		t.Fatalf("wall = %.2fms, want 100", tr.WallMS)
	}
	if tr.Seed != "42" {
		t.Fatalf("seed = %q, want 42", tr.Seed)
	}
	if len(tr.Sources) != 3 {
		t.Fatalf("sources = %v, want 3 entries", tr.Sources)
	}
	checkPartition(t, tr)

	stages := map[string]float64{}
	for _, sh := range tr.Stages {
		stages[sh.Stage] = sh.MS
	}
	// The steal lease [55,95] is covered by http [60,92] and cell
	// [62,90]: lease self = [55,60)+[92,95) = 8ms on steal_redispatch.
	if math.Abs(stages[StageSteal]-8) > 1e-6 {
		t.Fatalf("steal_redispatch self = %.4fms, want 8", stages[StageSteal])
	}
	// Kernel span [12,40] minus queue [12,15] = 25ms of compute.
	if math.Abs(stages[StageKernel]-25) > 1e-6 {
		t.Fatalf("kernel_compute self = %.4fms, want 25", stages[StageKernel])
	}
	if math.Abs(stages[StageQueueWait]-3) > 1e-6 {
		t.Fatalf("queue_wait self = %.4fms, want 3", stages[StageQueueWait])
	}
	// Cache-hit cell [62,90] is a leaf: full 28ms.
	if math.Abs(stages[StageCacheLookup]-28) > 1e-6 {
		t.Fatalf("cache_lookup self = %.4fms, want 28", stages[StageCacheLookup])
	}

	// Every OnCritical span must have self time; their sum equals wall.
	var selfSum float64
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.OnCritical && sp.SelfCritMS <= 0 {
			t.Fatalf("span %s on critical path but no self time", sp.Name)
		}
		if !sp.OnCritical && sp.SelfCritMS != 0 {
			t.Fatalf("span %s off critical path but self=%.4fms", sp.Name, sp.SelfCritMS)
		}
		selfSum += sp.SelfCritMS
	}
	if math.Abs(selfSum-tr.WallMS) > 1e-6 {
		t.Fatalf("span self sum %.4fms != wall %.4fms", selfSum, tr.WallMS)
	}
}

func TestAssembleOrphansAndGaps(t *testing.T) {
	// Two fragments whose parents never arrived, with a hole between
	// them: both become roots, the hole lands on the virtual root as an
	// "other" gap, and the partition invariant still holds.
	e := New(Options{})
	e.Ingest("http://be-a", []telemetry.SpanData{
		mkSpan(7, 1, 99, "http.measure", 0, 10),
		mkSpan(7, 2, 98, "http.measure", 30, 20),
	})
	tr := e.Trace(7)
	if tr == nil {
		t.Fatal("trace not assembled")
	}
	if tr.WallMS != 50 {
		t.Fatalf("wall = %.2fms, want 50 (union extent)", tr.WallMS)
	}
	checkPartition(t, tr)
	var gap float64
	for _, seg := range tr.Critical {
		if seg.Span == "" {
			gap += seg.DurMS
		}
	}
	if math.Abs(gap-20) > 1e-6 {
		t.Fatalf("virtual-root gap = %.4fms, want 20", gap)
	}
}

func TestAssembleSelfLoopAndZeroDur(t *testing.T) {
	// A span naming itself as parent must not recurse forever, and a
	// zero-duration trace still gets a positive wall.
	e := New(Options{})
	e.Ingest("x", []telemetry.SpanData{
		mkSpan(3, 5, 5, "weird.self", 0, 4),
		mkSpan(4, 6, 0, "instant", 0, 0),
	})
	if tr := e.Trace(3); tr == nil || tr.WallMS != 4 {
		t.Fatalf("self-loop trace: %+v", tr)
	}
	tr := e.Trace(4)
	if tr == nil || tr.WallMS <= 0 {
		t.Fatalf("zero-duration trace must have positive wall, got %+v", tr)
	}
	checkPartition(t, tr)
}

func TestStageOf(t *testing.T) {
	cases := []struct {
		span Span
		want string
	}{
		{Span{SpanData: mkSpan(1, 1, 0, "service.cell", 0, 1, telemetry.String("outcome", "hit"))}, StageCacheLookup},
		{Span{SpanData: mkSpan(1, 1, 0, "service.cell", 0, 1, telemetry.String("outcome", "miss"))}, StageKernel},
		{Span{SpanData: mkSpan(1, 1, 0, "service.cell", 0, 1)}, StageKernel},
		{Span{SpanData: mkSpan(1, 1, 0, "service.queue", 0, 1)}, StageQueueWait},
		{Span{SpanData: mkSpan(1, 1, 0, "service.ingest", 0, 1)}, StageIngest},
		{Span{SpanData: mkSpan(1, 1, 0, "scheduler.lease", 0, 1, telemetry.String("kind", "first"))}, StageLease},
		{Span{SpanData: mkSpan(1, 1, 0, "scheduler.lease", 0, 1, telemetry.String("kind", "steal"))}, StageSteal},
		{Span{SpanData: mkSpan(1, 1, 0, "scheduler.lease", 0, 1, telemetry.String("kind", "redispatch"))}, StageSteal},
		{Span{SpanData: mkSpan(1, 1, 0, "cluster.hedge", 0, 1)}, StageHedgeWait},
		{Span{SpanData: mkSpan(1, 1, 0, "cluster.attempt", 0, 1)}, StageNetwork},
		{Span{SpanData: mkSpan(1, 1, 0, "scheduler.MeasureBatch", 0, 1)}, StageNetwork},
		{Span{SpanData: mkSpan(1, 1, 0, "http.measure", 0, 1)}, StageNetwork},
		{Span{SpanData: mkSpan(1, 1, 0, "study.commit", 0, 1)}, StageOther},
	}
	for _, c := range cases {
		if got := StageOf(c.span); got != c.want {
			t.Errorf("StageOf(%s %v) = %s, want %s", c.span.Name, c.span.Attrs, got, c.want)
		}
	}
	// Every stage name StageOf can produce must be in Stages().
	known := map[string]bool{}
	for _, s := range Stages() {
		known[s] = true
	}
	for _, c := range cases {
		if !known[c.want] {
			t.Errorf("stage %s missing from Stages()", c.want)
		}
	}
}

func TestIngestDedupTruncationEviction(t *testing.T) {
	e := New(Options{MaxTraces: 2, MaxSpansPerTrace: 3})
	spans := []telemetry.SpanData{
		mkSpan(1, 1, 0, "a", 0, 1),
		mkSpan(1, 2, 1, "b", 0, 1),
	}
	if n := e.Ingest("src", spans); n != 2 {
		t.Fatalf("first ingest added %d, want 2", n)
	}
	// Re-scrape: everything deduped.
	if n := e.Ingest("src", spans); n != 0 {
		t.Fatalf("re-ingest added %d, want 0", n)
	}
	// Overflow the per-trace cap: 3rd accepted, 4th dropped + truncated.
	e.Ingest("src", []telemetry.SpanData{
		mkSpan(1, 3, 1, "c", 0, 1),
		mkSpan(1, 4, 1, "d", 0, 1),
	})
	tr := e.Trace(1)
	if tr == nil || !tr.Truncated || tr.SpanCount != 3 {
		t.Fatalf("truncation: got %+v", tr)
	}
	// Zero ids are ignored.
	if n := e.Ingest("src", []telemetry.SpanData{mkSpan(0, 9, 0, "z", 0, 1), mkSpan(9, 0, 0, "z", 0, 1)}); n != 0 {
		t.Fatalf("zero-id spans added %d, want 0", n)
	}
	// Third distinct trace evicts the oldest (trace 1).
	e.Ingest("src", []telemetry.SpanData{mkSpan(2, 1, 0, "a", 0, 1)})
	e.Ingest("src", []telemetry.SpanData{mkSpan(5, 1, 0, "a", 0, 1)})
	if e.Trace(1) != nil {
		t.Fatal("trace 1 should have been evicted")
	}
	st := e.Stats()
	if st.Evicted != 1 || st.Duplicates != 2 || st.Traces != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestREDStats(t *testing.T) {
	e := New(Options{})
	var spans []telemetry.SpanData
	// 100 spans, 1..100ms, one per 10ms of start time; 5 errors.
	for i := 1; i <= 100; i++ {
		attrs := []telemetry.Attr{}
		if i%20 == 0 {
			attrs = append(attrs, telemetry.String("error", "boom"))
		}
		spans = append(spans, mkSpan(uint64(i), uint64(i), 0, "op", float64(i)*10, float64(i), attrs...))
	}
	e.Ingest("http://be-a", spans)
	red := e.RED()
	if len(red) != 1 {
		t.Fatalf("RED rows = %d, want 1", len(red))
	}
	r := red[0]
	if r.Name != "op" || r.Backend != "http://be-a" {
		t.Fatalf("key = %s/%s", r.Name, r.Backend)
	}
	if r.Count != 100 || r.Errors != 5 {
		t.Fatalf("count=%d errors=%d, want 100/5", r.Count, r.Errors)
	}
	// Starts span 10ms..1000ms => 99 intervals over 0.99s => 100/s.
	if math.Abs(r.RatePerSec-100) > 1e-6 {
		t.Fatalf("rate = %.4f/s, want 100", r.RatePerSec)
	}
	if math.Abs(r.MeanMS-50.5) > 1e-6 {
		t.Fatalf("mean = %.4fms, want 50.5", r.MeanMS)
	}
	if math.Abs(r.P50MS-50.5) > 1e-6 || math.Abs(r.P90MS-90.1) > 1e-6 {
		t.Fatalf("p50=%.4f p90=%.4f, want 50.5/90.1", r.P50MS, r.P90MS)
	}
	if r.P99MS < r.P90MS || r.P99MS > 100 {
		t.Fatalf("p99 = %.4f out of range", r.P99MS)
	}
}

func TestSearchFilters(t *testing.T) {
	e := New(Options{})
	e.Ingest("http://be-a", []telemetry.SpanData{
		mkSpan(1, 1, 0, "scheduler.MeasureBatch", 0, 50, telemetry.String("seed", "42")),
		mkSpan(1, 2, 1, "service.cell", 5, 20),
	})
	e.Ingest("http://be-b", []telemetry.SpanData{
		mkSpan(2, 1, 0, "http.measure", 0, 120, telemetry.String("seed", "7")),
	})
	if got := len(e.Search(Query{})); got != 2 {
		t.Fatalf("unfiltered = %d, want 2", got)
	}
	if got := e.Search(Query{Seed: "42"}); len(got) != 1 || got[0].ID != telemetry.TraceID(1).String() {
		t.Fatalf("seed filter: %v", got)
	}
	if got := e.Search(Query{Backend: "http://be-b"}); len(got) != 1 || got[0].ID != telemetry.TraceID(2).String() {
		t.Fatalf("backend filter: %v", got)
	}
	if got := e.Search(Query{Op: "service.cell"}); len(got) != 1 || got[0].ID != telemetry.TraceID(1).String() {
		t.Fatalf("op filter: %v", got)
	}
	if got := e.Search(Query{MinDur: 100 * time.Millisecond}); len(got) != 1 || got[0].ID != telemetry.TraceID(2).String() {
		t.Fatalf("min-dur filter: %v", got)
	}
	// Slowest first.
	got := e.Search(Query{Limit: 1})
	if len(got) != 1 || got[0].WallMS != 120 {
		t.Fatalf("limit+order: %v", got)
	}
}

func TestStageSharesAndSummary(t *testing.T) {
	e := New(Options{ShareWindow: 8})
	e.Ingest("http://be-a", []telemetry.SpanData{
		mkSpan(1, 1, 0, "http.measure", 0, 40),
		mkSpan(1, 2, 1, "service.cell", 10, 20, telemetry.String("outcome", "miss")),
	})
	shares := e.StageShares(0)
	var total float64
	for _, v := range shares {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("stage shares sum to %.6f, want 1", total)
	}
	if math.Abs(shares[StageKernel]-0.5) > 1e-9 || math.Abs(shares[StageNetwork]-0.5) > 1e-9 {
		t.Fatalf("shares = %v, want kernel 0.5 / network 0.5", shares)
	}
	sum := e.Summary(3)
	if sum.Stats.Traces != 1 || len(sum.TopCritical) != 1 || len(sum.RED) != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.TopCritical[0].TopStage == "" {
		t.Fatal("digest missing dominant stage")
	}
}

func TestFlameMerge(t *testing.T) {
	e := New(Options{})
	for trace := uint64(1); trace <= 3; trace++ {
		e.Ingest("src", []telemetry.SpanData{
			mkSpan(trace, 1, 0, "root.op", 0, 30),
			mkSpan(trace, 2, 1, "child.op", 5, 10),
		})
	}
	root := e.Flame()
	if root == nil || root.Count != 3 {
		t.Fatalf("flame root: %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "root.op" || root.Children[0].Count != 3 {
		t.Fatalf("flame level 1: %+v", root.Children)
	}
	lvl1 := root.Children[0]
	if len(lvl1.Children) != 1 || lvl1.Children[0].Name != "child.op" || lvl1.Children[0].Count != 3 {
		t.Fatalf("flame level 2: %+v", lvl1.Children)
	}
	if lvl1.TotalMS != 90 || lvl1.Children[0].TotalMS != 30 {
		t.Fatalf("flame totals: parent %.1f child %.1f", lvl1.TotalMS, lvl1.Children[0].TotalMS)
	}
}

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	if e.Ingest("x", []telemetry.SpanData{mkSpan(1, 1, 0, "a", 0, 1)}) != 0 {
		t.Fatal("nil Ingest")
	}
	if e.Trace(1) != nil || e.Search(Query{}) != nil || e.Flame() != nil {
		t.Fatal("nil reads")
	}
	if e.Stats() != (Stats{}) {
		t.Fatal("nil Stats")
	}
	_ = e.StageShares(0)
	_ = e.Summary(1)
	_ = e.RED()
}
