package traceanalytics

import "strings"

// Stage names. Critical-path segments are attributed to a small fixed
// vocabulary of pipeline stages so shares are comparable across
// studies, backends, and PRs; the monitor exports one
// trace_stage_share series per name and alerts on shifts.
const (
	StageQueueWait   = "queue_wait"        // service.queue: waiting for a worker lane
	StageCacheLookup = "cache_lookup"      // service.cell that hit the cache
	StageKernel      = "kernel_compute"    // service.cell that filled (kernel measure)
	StageLease       = "lease_acquisition" // scheduler.lease, first dispatch
	StageSteal       = "steal_redispatch"  // scheduler.lease, stolen or re-dispatched
	StageHedgeWait   = "hedge_wait"        // cluster.hedge: duplicate racing a straggler
	StageNetwork     = "network"           // cluster transport + http serving overhead
	StageIngest      = "ingest"            // service.ingest: durable study commit
	StageOther       = "other"             // everything else, incl. assembly gaps
)

// Stages returns the full stage vocabulary in display order. The
// monitor pushes one fleet series per entry every sweep, so the set
// (and its order) is part of the series contract.
func Stages() []string {
	return []string{
		StageQueueWait, StageCacheLookup, StageKernel, StageLease,
		StageSteal, StageHedgeWait, StageNetwork, StageIngest, StageOther,
	}
}

// StageOf maps one span to its pipeline stage using the span name and
// the stage-relevant attrs minted at the instrumentation sites.
func StageOf(s Span) string {
	switch s.Name {
	case "service.cell":
		if s.Attr("outcome") == "hit" {
			return StageCacheLookup
		}
		return StageKernel
	case "service.queue":
		return StageQueueWait
	case "service.ingest":
		return StageIngest
	case "scheduler.lease":
		switch s.Attr("kind") {
		case "steal", "redispatch":
			return StageSteal
		default:
			return StageLease
		}
	case "cluster.hedge":
		return StageHedgeWait
	case "cluster.attempt", "cluster.route", "cluster.failover",
		"cluster.backoff", "cluster.breaker_open",
		"cluster.MeasureBatch", "scheduler.MeasureBatch":
		return StageNetwork
	}
	if strings.HasPrefix(s.Name, "http.") {
		// Server-side self time around the cells: decode, fan-out,
		// encode — transport-adjacent overhead.
		return StageNetwork
	}
	return StageOther
}
