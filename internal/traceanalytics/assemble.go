package traceanalytics

// Trace assembly and critical-path attribution.
//
// Spans harvested from several processes share a trace id but arrive
// as flat fragments: the coordinator's scheduler spans from one
// tracer, each backend's http/cell spans from its own. assemble
// stitches them into one tree via parent ids, treats spans whose
// parent never arrived as roots under a virtual root spanning the
// whole trace extent, and walks the tree backward from the end picking
// at every step the latest-ending overlapping child. The emitted
// segments partition [start, end] exactly — every nanosecond of wall
// time is attributed to exactly one span's self time — so per-stage
// self-times sum to the trace wall time by construction, which is the
// invariant TestCriticalPathUnderChaos checks to 1%.

import (
	"sort"
	"time"

	"repro/internal/telemetry"
)

// Span is one harvested span plus the backend that reported it.
type Span struct {
	telemetry.SpanData
	Source string `json:"source"`
}

// SpanNode is one span in an assembled waterfall, flattened pre-order.
type SpanNode struct {
	Name          string           `json:"name"`
	ID            string           `json:"span_id"`
	Parent        string           `json:"parent_id,omitempty"`
	Source        string           `json:"source"`
	Stage         string           `json:"stage"`
	Depth         int              `json:"depth"`
	StartOffsetMS float64          `json:"start_offset_ms"`
	DurMS         float64          `json:"duration_ms"`
	SelfCritMS    float64          `json:"self_critical_ms"`
	OnCritical    bool             `json:"on_critical_path"`
	Attrs         []telemetry.Attr `json:"attrs,omitempty"`
}

// Segment is one critical-path interval attributed to a span's self
// time (or, with an empty span id, to an assembly gap no span covers).
type Segment struct {
	Span     string  `json:"span_id,omitempty"`
	Name     string  `json:"name"`
	Source   string  `json:"source,omitempty"`
	Stage    string  `json:"stage"`
	OffsetMS float64 `json:"offset_ms"`
	DurMS    float64 `json:"duration_ms"`
}

// StageShare is one stage's slice of a critical path.
type StageShare struct {
	Stage string  `json:"stage"`
	MS    float64 `json:"ms"`
	Frac  float64 `json:"frac"`
}

// Trace is an assembled cross-process trace with its critical path.
type Trace struct {
	ID        string       `json:"trace_id"`
	Root      string       `json:"root"`
	Start     time.Time    `json:"start"`
	WallMS    float64      `json:"wall_ms"`
	Seed      string       `json:"seed,omitempty"`
	Sources   []string     `json:"sources"`
	SpanCount int          `json:"span_count"`
	Truncated bool         `json:"truncated,omitempty"`
	Spans     []SpanNode   `json:"spans"`
	Critical  []Segment    `json:"critical_path"`
	Stages    []StageShare `json:"stages"`

	id   telemetry.TraceID
	wall time.Duration
	// stageNS mirrors Stages keyed by name, for fleet aggregation.
	stageNS map[string]int64
}

type asmNode struct {
	span     Span
	start    time.Time
	end      time.Time
	children []int
	selfNS   int64
	critical bool
}

type asmState struct {
	nodes    []asmNode
	segments []Segment
	stageNS  map[string]int64
	origin   time.Time
}

func minT(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func maxT(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// assemble builds the tree and critical path for one trace's spans.
func assemble(id telemetry.TraceID, spans []Span, truncated bool) *Trace {
	if len(spans) == 0 {
		return nil
	}
	a := &asmState{
		nodes:   make([]asmNode, len(spans)),
		stageNS: make(map[string]int64, 9),
	}
	byID := make(map[telemetry.SpanID]int, len(spans))
	for i, s := range spans {
		a.nodes[i] = asmNode{span: s, start: s.Start, end: s.Start.Add(s.Dur)}
		byID[s.SpanData.ID] = i
	}
	var roots []int
	for i, s := range spans {
		if p, ok := byID[s.SpanData.Parent]; ok && s.SpanData.Parent != 0 && p != i {
			a.nodes[p].children = append(a.nodes[p].children, i)
		} else {
			roots = append(roots, i)
		}
	}
	sortByStart := func(idx []int) {
		sort.SliceStable(idx, func(x, y int) bool {
			nx, ny := &a.nodes[idx[x]], &a.nodes[idx[y]]
			if !nx.start.Equal(ny.start) {
				return nx.start.Before(ny.start)
			}
			return nx.span.SpanData.ID < ny.span.SpanData.ID
		})
	}
	sortByStart(roots)
	for i := range a.nodes {
		sortByStart(a.nodes[i].children)
	}

	// Trace extent: the union of every span, not just the first root —
	// partial assemblies (coordinator unharvested, clock skew) must
	// still partition their full observed window.
	lo, hi := a.nodes[0].start, a.nodes[0].end
	for _, n := range a.nodes[1:] {
		lo, hi = minT(lo, n.start), maxT(hi, n.end)
	}
	if !hi.After(lo) {
		hi = lo.Add(time.Nanosecond)
	}
	a.origin = lo
	a.walk(roots, -1, lo, hi)
	// The backward walk emits segments end-first; present them in
	// timeline order.
	sort.SliceStable(a.segments, func(i, j int) bool {
		return a.segments[i].OffsetMS < a.segments[j].OffsetMS
	})

	tr := &Trace{
		ID:        id.String(),
		Start:     lo,
		WallMS:    float64(hi.Sub(lo)) / 1e6,
		SpanCount: len(spans),
		Truncated: truncated,
		Critical:  a.segments,
		id:        id,
		wall:      hi.Sub(lo),
		stageNS:   a.stageNS,
	}
	if len(roots) > 0 {
		tr.Root = a.nodes[roots[0]].span.Name
	}
	srcSet := map[string]struct{}{}
	for i := range a.nodes {
		n := &a.nodes[i]
		if _, ok := srcSet[n.span.Source]; !ok {
			srcSet[n.span.Source] = struct{}{}
			tr.Sources = append(tr.Sources, n.span.Source)
		}
		if tr.Seed == "" {
			if v := n.span.Attr("seed"); v != "" {
				tr.Seed = v
			}
		}
	}
	sort.Strings(tr.Sources)
	var flatten func(idx, depth int)
	flatten = func(idx, depth int) {
		n := &a.nodes[idx]
		tr.Spans = append(tr.Spans, SpanNode{
			Name:          n.span.Name,
			ID:            n.span.SpanData.ID.String(),
			Parent:        parentString(n.span.SpanData.Parent),
			Source:        n.span.Source,
			Stage:         StageOf(n.span),
			Depth:         depth,
			StartOffsetMS: float64(n.start.Sub(lo)) / 1e6,
			DurMS:         float64(n.span.Dur) / 1e6,
			SelfCritMS:    float64(n.selfNS) / 1e6,
			OnCritical:    n.critical,
			Attrs:         n.span.Attrs,
		})
		for _, c := range n.children {
			flatten(c, depth+1)
		}
	}
	for _, r := range roots {
		flatten(r, 0)
	}
	for _, st := range Stages() {
		ns := a.stageNS[st]
		if ns == 0 {
			continue
		}
		tr.Stages = append(tr.Stages, StageShare{
			Stage: st,
			MS:    float64(ns) / 1e6,
			Frac:  float64(ns) / float64(tr.wall),
		})
	}
	sort.SliceStable(tr.Stages, func(i, j int) bool { return tr.Stages[i].MS > tr.Stages[j].MS })
	return tr
}

func parentString(p telemetry.SpanID) string {
	if p == 0 {
		return ""
	}
	return p.String()
}

// walk attributes [from, to) on the critical path. owner is the node
// whose self time absorbs intervals no child covers (-1 = the virtual
// root: gaps between orphan roots). The backward scan picks, at every
// point, the child whose clamped interval ends latest — the span whose
// completion gated that moment — recurses into it, then jumps to its
// start. Each child is consumed at most once, so the recursion emits
// at most one segment per span plus one per parent gap.
func (a *asmState) walk(children []int, owner int, from, to time.Time) {
	cur := to
	for cur.After(from) {
		best := -1
		var bs, be time.Time
		for _, ci := range children {
			c := &a.nodes[ci]
			cs, ce := maxT(c.start, from), minT(c.end, cur)
			if !ce.After(cs) {
				continue
			}
			if best == -1 || ce.After(be) || (ce.Equal(be) && cs.Before(bs)) {
				best, bs, be = ci, cs, ce
			}
		}
		if best == -1 {
			a.emit(owner, from, cur)
			return
		}
		if be.Before(cur) {
			a.emit(owner, be, cur)
		}
		a.walk(a.nodes[best].children, best, bs, be)
		cur = bs
	}
}

// emit records one self-time segment for owner (or the virtual root).
func (a *asmState) emit(owner int, from, to time.Time) {
	dur := to.Sub(from)
	if dur <= 0 {
		return
	}
	seg := Segment{
		Name:     "(gap)",
		Stage:    StageOther,
		OffsetMS: float64(from.Sub(a.origin)) / 1e6,
		DurMS:    float64(dur) / 1e6,
	}
	stage := StageOther
	if owner >= 0 {
		n := &a.nodes[owner]
		stage = StageOf(n.span)
		seg.Span = n.span.SpanData.ID.String()
		seg.Name = n.span.Name
		seg.Source = n.span.Source
		seg.Stage = stage
		n.selfNS += int64(dur)
		n.critical = true
	}
	a.stageNS[stage] += int64(dur)
	a.segments = append(a.segments, seg)
}

// Digest is the list-view form of an assembled trace: everything but
// the per-span waterfall.
type Digest struct {
	ID           string       `json:"trace_id"`
	Root         string       `json:"root"`
	Start        time.Time    `json:"start"`
	WallMS       float64      `json:"wall_ms"`
	Seed         string       `json:"seed,omitempty"`
	Sources      []string     `json:"sources"`
	SpanCount    int          `json:"span_count"`
	TopStage     string       `json:"top_stage,omitempty"`
	TopStageFrac float64      `json:"top_stage_frac,omitempty"`
	Stages       []StageShare `json:"stages,omitempty"`
}

// Digest summarizes the trace for search results and top-N panels.
func (t *Trace) Digest() Digest {
	d := Digest{
		ID:        t.ID,
		Root:      t.Root,
		Start:     t.Start,
		WallMS:    t.WallMS,
		Seed:      t.Seed,
		Sources:   t.Sources,
		SpanCount: t.SpanCount,
		Stages:    t.Stages,
	}
	if len(t.Stages) > 0 {
		d.TopStage = t.Stages[0].Stage
		d.TopStageFrac = t.Stages[0].Frac
	}
	return d
}
