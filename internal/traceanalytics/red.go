package traceanalytics

// Per-operation RED (rate / errors / duration) aggregation. Every
// harvested span feeds the aggregate for its (span name, source
// backend) pair; percentiles come from a bounded ring of recent
// durations, rate from the observed span-start extent.

import (
	"sort"
	"time"
)

type redKey struct {
	name   string
	source string
}

type redAgg struct {
	count  int64
	errors int64
	durs   []float64 // milliseconds, ring
	next   int
	full   bool
	first  time.Time // earliest span start seen
	last   time.Time // latest span start seen
}

func (r *redAgg) observe(s Span, capDurs int) {
	r.count++
	if s.Attr("error") != "" {
		r.errors++
	}
	ms := float64(s.Dur) / 1e6
	if len(r.durs) < capDurs {
		r.durs = append(r.durs, ms)
	} else {
		r.durs[r.next] = ms
		r.full = true
	}
	if capDurs > 0 {
		r.next = (r.next + 1) % capDurs
	}
	if r.first.IsZero() || s.Start.Before(r.first) {
		r.first = s.Start
	}
	if s.Start.After(r.last) {
		r.last = s.Start
	}
}

// REDStat is one operation's aggregate on one backend.
type REDStat struct {
	Name       string  `json:"name"`
	Backend    string  `json:"backend"`
	Count      int64   `json:"count"`
	Errors     int64   `json:"errors"`
	RatePerSec float64 `json:"rate_per_sec"`
	MeanMS     float64 `json:"mean_ms"`
	P50MS      float64 `json:"p50_ms"`
	P90MS      float64 `json:"p90_ms"`
	P99MS      float64 `json:"p99_ms"`
}

func (r *redAgg) stat(k redKey) REDStat {
	st := REDStat{Name: k.name, Backend: k.source, Count: r.count, Errors: r.errors}
	if span := r.last.Sub(r.first); span > 0 && r.count > 1 {
		st.RatePerSec = float64(r.count-1) / span.Seconds()
	}
	if len(r.durs) == 0 {
		return st
	}
	sorted := make([]float64, len(r.durs))
	copy(sorted, r.durs)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	st.MeanMS = sum / float64(len(sorted))
	st.P50MS = quantile(sorted, 0.50)
	st.P90MS = quantile(sorted, 0.90)
	st.P99MS = quantile(sorted, 0.99)
	return st
}

// quantile interpolates q in [0,1] over an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
