package traceanalytics

// Engine is the fleet trace-assembly store: the monitor feeds it raw
// span harvests (one Ingest per backend scrape, plus coordinator
// self-reports), it dedups and groups them per trace, and serves
// assembled waterfalls, critical paths, per-operation RED stats, a
// merged flame hierarchy, and fleet stage shares for the detector.
// All methods are safe for concurrent use.

import (
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Options bound the engine's memory. The zero value selects defaults.
type Options struct {
	// MaxTraces bounds retained traces; oldest-first eviction
	// (<=0 selects 256).
	MaxTraces int
	// MaxSpansPerTrace bounds one trace's span set; excess spans are
	// dropped and the trace marked truncated (<=0 selects 1024).
	MaxSpansPerTrace int
	// MaxDurSamples bounds each RED key's duration ring (<=0: 512).
	MaxDurSamples int
	// ShareWindow is how many recent traces feed StageShares (<=0: 32).
	ShareWindow int
}

func (o Options) withDefaults() Options {
	if o.MaxTraces <= 0 {
		o.MaxTraces = 256
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 1024
	}
	if o.MaxDurSamples <= 0 {
		o.MaxDurSamples = 512
	}
	if o.ShareWindow <= 0 {
		o.ShareWindow = 32
	}
	return o
}

type traceBuf struct {
	ids       map[telemetry.SpanID]struct{}
	spans     []Span
	truncated bool
	dirty     bool
	asm       *Trace
}

// Engine assembles and retains fleet traces.
type Engine struct {
	mu     sync.Mutex
	opts   Options
	traces map[telemetry.TraceID]*traceBuf
	order  []telemetry.TraceID // first-seen order, for eviction
	red    map[redKey]*redAgg

	spansSeen int64
	dups      int64
	evicted   int64
}

// New builds an engine.
func New(opts Options) *Engine {
	return &Engine{
		opts:   opts.withDefaults(),
		traces: make(map[telemetry.TraceID]*traceBuf),
		red:    make(map[redKey]*redAgg),
	}
}

// Ingest merges one process's span harvest, tagged with the backend
// (or "coordinator") that reported it. Re-scraping the same retention
// is the common case; spans already seen are deduped by id. Returns
// how many spans were new.
func (e *Engine) Ingest(source string, spans []telemetry.SpanData) int {
	if e == nil || len(spans) == 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	added := 0
	for _, d := range spans {
		e.spansSeen++
		if d.Trace == 0 || d.ID == 0 {
			continue
		}
		tb := e.traces[d.Trace]
		if tb == nil {
			if len(e.traces) >= e.opts.MaxTraces {
				e.evictOldestLocked()
			}
			tb = &traceBuf{ids: make(map[telemetry.SpanID]struct{})}
			e.traces[d.Trace] = tb
			e.order = append(e.order, d.Trace)
		}
		if _, dup := tb.ids[d.ID]; dup {
			e.dups++
			continue
		}
		if len(tb.spans) >= e.opts.MaxSpansPerTrace {
			tb.truncated = true
			continue
		}
		tb.ids[d.ID] = struct{}{}
		sp := Span{SpanData: d, Source: source}
		tb.spans = append(tb.spans, sp)
		tb.dirty = true
		e.redFor(d.Name, source).observe(sp, e.opts.MaxDurSamples)
		added++
	}
	return added
}

func (e *Engine) redFor(name, source string) *redAgg {
	k := redKey{name: name, source: source}
	r := e.red[k]
	if r == nil {
		r = &redAgg{}
		e.red[k] = r
	}
	return r
}

func (e *Engine) evictOldestLocked() {
	for len(e.order) > 0 {
		id := e.order[0]
		e.order = e.order[1:]
		if _, ok := e.traces[id]; ok {
			delete(e.traces, id)
			e.evicted++
			return
		}
	}
}

// assembleLocked returns the cached assembly, rebuilding when new
// spans arrived since the last build.
func (e *Engine) assembleLocked(id telemetry.TraceID, tb *traceBuf) *Trace {
	if tb.dirty || tb.asm == nil {
		tb.asm = assemble(id, tb.spans, tb.truncated)
		tb.dirty = false
	}
	return tb.asm
}

// Trace returns the assembled trace, or nil when unknown.
func (e *Engine) Trace(id telemetry.TraceID) *Trace {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	tb := e.traces[id]
	if tb == nil {
		return nil
	}
	return e.assembleLocked(id, tb)
}

// Query filters assembled traces. Zero fields match everything.
type Query struct {
	Trace   telemetry.TraceID // exact trace id
	Seed    string            // study seed attr
	Backend string            // reported by this source
	Op      string            // contains a span with this name
	MinDur  time.Duration     // wall time at least this long
	Limit   int               // max results (<=0: 20)
}

// Search returns assembled traces matching q, slowest first.
func (e *Engine) Search(q Query) []*Trace {
	if e == nil {
		return nil
	}
	limit := q.Limit
	if limit <= 0 {
		limit = 20
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []*Trace
	for _, id := range e.order {
		tb := e.traces[id]
		if tb == nil {
			continue
		}
		if q.Trace != 0 && id != q.Trace {
			continue
		}
		tr := e.assembleLocked(id, tb)
		if tr == nil {
			continue
		}
		if q.Seed != "" && tr.Seed != q.Seed {
			continue
		}
		if q.MinDur > 0 && tr.wall < q.MinDur {
			continue
		}
		if q.Backend != "" && !containsString(tr.Sources, q.Backend) {
			continue
		}
		if q.Op != "" && !traceHasOp(tr, q.Op) {
			continue
		}
		out = append(out, tr)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallMS > out[j].WallMS })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func traceHasOp(tr *Trace, op string) bool {
	for i := range tr.Spans {
		if tr.Spans[i].Name == op {
			return true
		}
	}
	return false
}

// StageShares returns each stage's fraction of critical-path time
// summed over the most recent n retained traces (n<=0 selects the
// configured window). Fractions sum to 1 when any trace is retained.
func (e *Engine) StageShares(n int) map[string]float64 {
	if e == nil {
		return nil
	}
	if n <= 0 {
		n = e.opts.ShareWindow
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	totals := make(map[string]int64, 9)
	var wall int64
	taken := 0
	for i := len(e.order) - 1; i >= 0 && taken < n; i-- {
		tb := e.traces[e.order[i]]
		if tb == nil {
			continue
		}
		tr := e.assembleLocked(e.order[i], tb)
		if tr == nil {
			continue
		}
		for st, ns := range tr.stageNS {
			totals[st] += ns
		}
		wall += int64(tr.wall)
		taken++
	}
	out := make(map[string]float64, len(totals))
	if wall == 0 {
		return out
	}
	for st, ns := range totals {
		out[st] = float64(ns) / float64(wall)
	}
	return out
}

// RED returns every (operation, backend) aggregate, sorted by name
// then backend.
func (e *Engine) RED() []REDStat {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]REDStat, 0, len(e.red))
	for k, r := range e.red {
		out = append(out, r.stat(k))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Backend < out[j].Backend
	})
	return out
}

// Flame merges every retained trace into one name-keyed hierarchy.
// SelfMS aggregates critical-path self time, TotalMS raw span time.
func (e *Engine) Flame() *FlameNode {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	root := &FlameNode{Name: "fleet"}
	for _, id := range e.order {
		tb := e.traces[id]
		if tb == nil {
			continue
		}
		if tr := e.assembleLocked(id, tb); tr != nil {
			root.mergeTrace(tr)
			root.Count++
			root.TotalMS += tr.WallMS
		}
	}
	root.sortDesc()
	return root
}

// Stats counts the engine's intake.
type Stats struct {
	Traces     int   `json:"traces"`
	SpansSeen  int64 `json:"spans_seen"`
	SpansHeld  int64 `json:"spans_held"`
	Duplicates int64 `json:"duplicates"`
	Evicted    int64 `json:"evicted_traces"`
}

// Stats returns intake counters.
func (e *Engine) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{Traces: len(e.traces), SpansSeen: e.spansSeen, Duplicates: e.dups, Evicted: e.evicted}
	for _, tb := range e.traces {
		st.SpansHeld += int64(len(tb.spans))
	}
	return st
}

// Summary is the one-call overview behind /v1/traceview and the
// dashboard panel.
type Summary struct {
	Stats       Stats        `json:"stats"`
	StageShares []StageShare `json:"stage_shares,omitempty"`
	TopCritical []Digest     `json:"top_critical,omitempty"`
	RED         []REDStat    `json:"red,omitempty"`
}

// Summary assembles the overview: fleet stage shares over the share
// window, the topTraces slowest traces, and every RED aggregate.
func (e *Engine) Summary(topTraces int) Summary {
	if e == nil {
		return Summary{}
	}
	if topTraces <= 0 {
		topTraces = 5
	}
	s := Summary{Stats: e.Stats(), RED: e.RED()}
	shares := e.StageShares(0)
	for _, st := range Stages() {
		if shares[st] <= 0 {
			continue
		}
		s.StageShares = append(s.StageShares, StageShare{Stage: st, Frac: shares[st]})
	}
	sort.SliceStable(s.StageShares, func(i, j int) bool { return s.StageShares[i].Frac > s.StageShares[j].Frac })
	for _, tr := range e.Search(Query{Limit: topTraces}) {
		s.TopCritical = append(s.TopCritical, tr.Digest())
	}
	return s
}
