package fastrand

import (
	"math"
	"math/rand"
	"testing"
)

// TestSourceMatchesStdlib replays long raw streams against math/rand's
// default source for a spread of seeds, including the special cases the
// stdlib normalizes (zero, negative, beyond int32max).
func TestSourceMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 77, 89482311, int32max, int32max + 1,
		-int32max, math.MaxInt64, math.MinInt64, 0x1091}
	for s := int64(2); s < 1000; s += 97 {
		seeds = append(seeds, s, -s, s*1e9)
	}
	for _, seed := range seeds {
		want := rand.NewSource(seed).(rand.Source64)
		got := NewSource(seed)
		for i := 0; i < 2000; i++ {
			if w, g := want.Uint64(), got.Uint64(); w != g {
				t.Fatalf("seed %d draw %d: %d != stdlib %d", seed, i, g, w)
			}
		}
	}
}

// TestReseedMatchesFreshSource checks Seed fully resets the register:
// a reused, advanced source re-seeded to s must continue exactly like a
// fresh one.
func TestReseedMatchesFreshSource(t *testing.T) {
	src := NewSource(1)
	for i := 0; i < 1234; i++ {
		src.Uint64()
	}
	src.Seed(42)
	fresh := NewSource(42)
	for i := 0; i < 2000; i++ {
		if a, b := src.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("draw %d after reseed: %d != %d", i, a, b)
		}
	}
}

// TestDerivedDrawsMatchStdlib exercises the rand.Rand adapters the
// simulator actually uses (NormFloat64, Float64, Intn) — these must be
// bit-identical, not merely statistically equivalent, for the study's
// seeded runs to reproduce.
func TestDerivedDrawsMatchStdlib(t *testing.T) {
	for _, seed := range []int64{1, 42, -3, 1 << 40} {
		want := rand.New(rand.NewSource(seed))
		got := New(seed)
		for i := 0; i < 5000; i++ {
			switch i % 3 {
			case 0:
				if w, g := want.NormFloat64(), got.NormFloat64(); w != g {
					t.Fatalf("seed %d NormFloat64 %d: %v != %v", seed, i, g, w)
				}
			case 1:
				if w, g := want.Float64(), got.Float64(); w != g {
					t.Fatalf("seed %d Float64 %d: %v != %v", seed, i, g, w)
				}
			case 2:
				if w, g := want.Intn(1<<30), got.Intn(1<<30); w != g {
					t.Fatalf("seed %d Intn %d: %v != %v", seed, i, g, w)
				}
			}
		}
	}
}

// BenchmarkSeed measures the fast path this package exists for.
func BenchmarkSeed(b *testing.B) {
	b.ReportAllocs()
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

// BenchmarkSeedStdlib is the stdlib baseline for BenchmarkSeed.
func BenchmarkSeedStdlib(b *testing.B) {
	b.ReportAllocs()
	s := rand.NewSource(1)
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}
