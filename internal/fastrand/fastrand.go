// Package fastrand provides a drop-in replacement for math/rand's
// default source that produces bit-identical output streams but seeds
// roughly an order of magnitude faster.
//
// The study's determinism contract derives a fresh seed for every run
// from the run's identity, so the full grid re-seeds its generators
// hundreds of thousands of times; profiling showed the stdlib's
// rngSource.Seed — a serial chain of ~1,880 Lehmer steps filling a
// 607-word lagged-Fibonacci register — was the single largest consumer
// of the study's CPU time. This package removes the serial dependency:
// the i-th register word needs the Lehmer stream at fixed positions
// 3i+21, 3i+22, 3i+23, and x_j = 48271^j * x_0 mod (2^31-1), so all 607
// words are computed from precomputed multiplier powers as independent
// multiply-mods.
//
// The stdlib XORs each word with an unexported "cooked" constant table.
// Rather than copying that table, init recovers it from math/rand
// itself: the additive generator's first 667 outputs form a solvable
// system for the seeded register, and XOR-ing out the computable Lehmer
// part leaves the constants. The recovery — and the generator's exact
// equivalence — is locked down by tests that replay math/rand streams.
package fastrand

import "math/rand"

const (
	rngLen   = 607
	rngTap   = 273
	rngMax   = 1 << 63
	rngMask  = rngMax - 1
	int32max = (1 << 31) - 1

	lehmerA = 48271 // the Lehmer multiplier of the stdlib's seed chain
)

// pow[j] is lehmerA^(j+1) mod int32max: the multiplier taking the
// normalized seed to Lehmer position j+1. Seeding needs positions 1
// through 3*rngLen+20+3.
var pow [3*rngLen + 23]uint64

// cooked mirrors math/rand's unexported rngCooked table, recovered from
// the stdlib at init (see recoverCooked).
var cooked [rngLen]int64

func init() {
	x := uint64(1)
	for j := range pow {
		x = x * lehmerA % int32max
		pow[j] = x
	}
	recoverCooked()
}

// lehmerAt returns the seed chain value at position j >= 1 for the
// normalized seed x0: 48271^j * x0 mod (2^31-1).
func lehmerAt(j int, x0 uint64) int64 {
	return int64(mulmod31(pow[j-1], x0))
}

// mulmod31 computes a*b mod (2^31-1) for a, b < 2^31 by Mersenne-prime
// folding: the product is < 2^62, two shift-add folds bring it under
// 2^31+1, and one conditional subtract finishes the reduction. This
// avoids the hardware divide a % would cost in the seeding loop.
func mulmod31(a, b uint64) uint64 {
	v := a * b
	v = (v >> 31) + (v & int32max)
	v = (v >> 31) + (v & int32max)
	if v >= int32max {
		v -= int32max
	}
	return v
}

// recoverCooked reconstructs the stdlib's cooked table. Seeding with s
// sets vec[i] = u_i(s) ^ cooked[i], where u_i is the computable Lehmer
// part, and the additive generator's output stream reveals the seeded
// register: writes walk cells 333..0 then wrap to 606..334, taps walk
// 606..273 then 272..0, so
//
//	out_k = vec[333-k] + vec[606-k]      k =   0..272 (both unwritten)
//	out_k = vec[333-k] + out_{k-273}     k = 273..333 (tap was written)
//	out_k = vec[940-k] + out_{k-273}     k = 334..606 (feed wraps high)
//
// which back-substitutes into the full register, high words first. The
// cooked table then follows by XOR-ing out the Lehmer part for s = 1.
func recoverCooked() {
	src := rand.NewSource(1).(rand.Source64)
	var out [rngLen]int64
	for k := range out {
		out[k] = int64(src.Uint64())
	}
	var vec [rngLen]int64
	for c := 334; c <= 606; c++ {
		vec[c] = out[940-c] - out[667-c]
	}
	for c := 61; c <= 333; c++ {
		vec[c] = out[333-c] - vec[c+273]
	}
	for c := 0; c <= 60; c++ {
		vec[c] = out[333-c] - out[60-c]
	}
	for i := range cooked {
		j := 3*i + 21
		u := lehmerAt(j, 1) << 40
		u ^= lehmerAt(j+1, 1) << 20
		u ^= lehmerAt(j+2, 1)
		cooked[i] = vec[i] ^ u
	}
}

// Source is a re-seedable generator emitting exactly math/rand's default
// source stream. It implements rand.Source64, so rand.New(NewSource(s))
// behaves identically to rand.New(rand.NewSource(s)) for every derived
// draw (Float64, NormFloat64, Intn, ...). Not safe for concurrent use.
//
// Seeding is lazy: Seed only records the normalized Lehmer seed, and each
// of the first rngLen-rngTap outputs fills exactly the register words it
// is about to consume. The generator's access pattern makes this exact:
// output k reads the seeded words at positions rngLen-rngTap-1-k (the
// feed) and, for k < rngTap, rngLen-1-k (the tap); every later read hits
// a word the stream already wrote or filled. A run that consumes only a
// few dozen draws — the common case for the study's short segments —
// therefore computes a few dozen seeded words instead of all 607.
type Source struct {
	tap, feed int
	// raw counts outputs since Seed, saturating at rngLen-rngTap: while
	// raw is below the cap the next output must fill its seeded words.
	raw int
	x0  uint64
	vec [rngLen]int64
}

// NewSource returns a Source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the generator to the state rand.NewSource(seed) starts in.
// The register fills lazily as outputs are drawn, so Seed itself is O(1).
func (s *Source) Seed(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap

	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	s.x0 = uint64(seed)
	s.raw = 0
}

// word computes seeded register word i: the three Lehmer positions packed
// into 63 bits, XOR the stdlib's cooked constant.
func (s *Source) word(i int) int64 {
	j := 3*i + 21
	u := lehmerAt(j, s.x0) << 40
	u ^= lehmerAt(j+1, s.x0) << 20
	u ^= lehmerAt(j+2, s.x0)
	return u ^ cooked[i]
}

// Uint64 advances the lagged-Fibonacci register one step.
func (s *Source) Uint64() uint64 {
	if k := s.raw; k < rngLen-rngTap {
		// Output k is the first reader of feed word rngLen-rngTap-1-k and
		// (while the tap still points at unwritten cells) of tap word
		// rngLen-1-k; fill them now. High words stay valid for their
		// second read after the feed wraps — fills write the same value
		// eager seeding would have.
		s.vec[rngLen-rngTap-1-k] = s.word(rngLen - rngTap - 1 - k)
		if k < rngTap {
			s.vec[rngLen-1-k] = s.word(rngLen - 1 - k)
		}
		s.raw = k + 1
	}
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns the low 63 bits of the next step.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}

// New returns a rand.Rand over a fast source, equivalent to
// rand.New(rand.NewSource(seed)); its Seed method hits the fast path.
func New(seed int64) *rand.Rand {
	return rand.New(NewSource(seed))
}
