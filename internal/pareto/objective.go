package pareto

import (
	"errors"
	"fmt"
	"math"
)

// Objective selects the efficiency metric that defines the tradeoff
// space. The paper plots normalized energy against performance; the
// design-space literature it engages (Azizi et al., Horowitz et al.)
// also ranks designs by energy-delay products, which weight performance
// more heavily. Since normalized delay is 1/perf:
//
//	Energy:  E
//	EDP:     E / perf
//	ED2P:    E / perf^2
type Objective int

const (
	// Energy is the paper's metric: normalized energy.
	Energy Objective = iota
	// EDP is the energy-delay product.
	EDP
	// ED2P is the energy-delay-squared product, the voltage-scaling-
	// invariant metric.
	ED2P
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case Energy:
		return "energy"
	case EDP:
		return "EDP"
	case ED2P:
		return "ED2P"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Eval computes the objective for a point. Points must have positive
// performance.
func (o Objective) Eval(p Point) (float64, error) {
	if p.Perf <= 0 {
		return 0, errors.New("pareto: non-positive performance")
	}
	switch o {
	case Energy:
		return p.Energy, nil
	case EDP:
		return p.Energy / p.Perf, nil
	case ED2P:
		return p.Energy / (p.Perf * p.Perf), nil
	default:
		return 0, fmt.Errorf("pareto: unknown objective %d", int(o))
	}
}

// Best returns the point minimizing the objective, with its score.
// Unlike Frontier (which keeps every non-dominated tradeoff), a scalar
// objective picks a single winner.
func (o Objective) Best(points []Point) (Point, float64, error) {
	if len(points) == 0 {
		return Point{}, 0, errors.New("pareto: no points")
	}
	best := Point{}
	bestScore := math.Inf(1)
	for _, p := range points {
		score, err := o.Eval(p)
		if err != nil {
			return Point{}, 0, err
		}
		if score < bestScore {
			best, bestScore = p, score
		}
	}
	return best, bestScore, nil
}

// Rank returns the points sorted ascending by the objective, paired
// with their scores. The input is not modified.
func (o Objective) Rank(points []Point) ([]Point, []float64, error) {
	out := make([]Point, len(points))
	copy(out, points)
	scores := make([]float64, len(out))
	for i, p := range out {
		s, err := o.Eval(p)
		if err != nil {
			return nil, nil, err
		}
		scores[i] = s
	}
	// Insertion sort keeps ties stable and avoids a comparator closure
	// over two parallel slices.
	for i := 1; i < len(out); i++ {
		p, s := out[i], scores[i]
		j := i - 1
		for j >= 0 && scores[j] > s {
			out[j+1], scores[j+1] = out[j], scores[j]
			j--
		}
		out[j+1], scores[j+1] = p, s
	}
	return out, scores, nil
}
