package pareto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	a := Point{Perf: 2, Energy: 0.5}
	cases := []struct {
		q    Point
		want bool
	}{
		{Point{Perf: 1, Energy: 0.6}, true},  // worse in both
		{Point{Perf: 2, Energy: 0.6}, true},  // equal perf, worse energy
		{Point{Perf: 1, Energy: 0.5}, true},  // worse perf, equal energy
		{Point{Perf: 2, Energy: 0.5}, false}, // identical: no domination
		{Point{Perf: 3, Energy: 0.4}, false}, // better in both
		{Point{Perf: 3, Energy: 0.6}, false}, // tradeoff
		{Point{Perf: 1, Energy: 0.4}, false}, // tradeoff
	}
	for i, c := range cases {
		if got := a.Dominates(c.q); got != c.want {
			t.Errorf("case %d: Dominates(%+v) = %v, want %v", i, c.q, got, c.want)
		}
	}
}

func TestFrontierSimple(t *testing.T) {
	pts := []Point{
		{Label: "slow-efficient", Perf: 1, Energy: 0.2},
		{Label: "dominated", Perf: 1, Energy: 0.5},
		{Label: "fast-hungry", Perf: 4, Energy: 0.6},
		{Label: "middle", Perf: 2, Energy: 0.3},
		{Label: "dominated2", Perf: 1.5, Energy: 0.4},
	}
	front := Frontier(pts)
	if len(front) != 3 {
		t.Fatalf("frontier size = %d, want 3: %v", len(front), front)
	}
	want := []string{"slow-efficient", "middle", "fast-hungry"}
	for i, p := range front {
		if p.Label != want[i] {
			t.Errorf("frontier[%d] = %s, want %s", i, p.Label, want[i])
		}
	}
}

func TestFrontierEmpty(t *testing.T) {
	if got := Frontier(nil); got != nil {
		t.Fatalf("empty frontier = %v", got)
	}
}

func TestFrontierDuplicatesRetained(t *testing.T) {
	pts := []Point{
		{Label: "a", Perf: 1, Energy: 0.5},
		{Label: "b", Perf: 1, Energy: 0.5},
	}
	front := Frontier(pts)
	if len(front) != 2 {
		t.Fatalf("duplicate points must both survive, got %d", len(front))
	}
}

func TestFrontierSortedByPerf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts []Point
	for i := 0; i < 50; i++ {
		pts = append(pts, Point{Perf: rng.Float64() * 10, Energy: rng.Float64()})
	}
	front := Frontier(pts)
	for i := 1; i < len(front); i++ {
		if front[i].Perf < front[i-1].Perf {
			t.Fatal("frontier not sorted by performance")
		}
		// Along a frontier, more performance must cost more energy.
		if front[i].Energy < front[i-1].Energy {
			t.Fatal("frontier energy not monotone: an earlier point is dominated")
		}
	}
}

func TestFitCurveQuadratic(t *testing.T) {
	// Points on y = 0.1 + 0.05x^2 form their own frontier.
	var pts []Point
	for x := 1.0; x <= 5; x++ {
		pts = append(pts, Point{Perf: x, Energy: 0.1 + 0.05*x*x})
	}
	curve, err := FitCurve(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := curve.Eval(3); got < 0.54 || got > 0.56 {
		t.Fatalf("Eval(3) = %v, want ~0.55", got)
	}
	// Clamping outside the range.
	if curve.Eval(0) != curve.Eval(curve.MinX) {
		t.Fatal("Eval below range must clamp")
	}
	if curve.Eval(100) != curve.Eval(curve.MaxX) {
		t.Fatal("Eval above range must clamp")
	}
	if len(curve.Labels()) != len(curve.Points) {
		t.Fatal("labels must match points")
	}
}

func TestFitCurveInsufficientPoints(t *testing.T) {
	pts := []Point{{Perf: 1, Energy: 1}, {Perf: 2, Energy: 2}}
	if _, err := FitCurve(pts, 3); err == nil {
		t.Fatal("want error for degree above point count")
	}
}

// Property: no frontier point is dominated by any input point, and every
// non-frontier point is dominated by some frontier point.
func TestQuickFrontierCorrectness(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 2
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Perf: rng.Float64() * 5, Energy: rng.Float64()}
		}
		front := Frontier(pts)
		inFront := map[Point]bool{}
		for _, p := range front {
			inFront[p] = true
			for _, q := range pts {
				if q.Dominates(p) {
					return false
				}
			}
		}
		for _, p := range pts {
			if inFront[p] {
				continue
			}
			dominated := false
			for _, q := range front {
				if q.Dominates(p) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectiveEval(t *testing.T) {
	p := Point{Perf: 2, Energy: 0.4}
	cases := []struct {
		o    Objective
		want float64
	}{
		{Energy, 0.4},
		{EDP, 0.2},
		{ED2P, 0.1},
	}
	for _, c := range cases {
		got, err := c.o.Eval(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.o, got, c.want)
		}
	}
	if _, err := Energy.Eval(Point{Perf: 0, Energy: 1}); err == nil {
		t.Fatal("zero perf accepted")
	}
	if _, err := Objective(9).Eval(p); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

func TestObjectiveBestShifts(t *testing.T) {
	// The slow-efficient point wins on energy; the fast point wins on
	// ED2P — the classic reason the metrics disagree.
	pts := []Point{
		{Label: "slow", Perf: 1, Energy: 0.2},
		{Label: "fast", Perf: 4, Energy: 0.6},
	}
	bestE, _, err := Energy.Best(pts)
	if err != nil {
		t.Fatal(err)
	}
	if bestE.Label != "slow" {
		t.Fatalf("energy winner = %s", bestE.Label)
	}
	bestD, _, err := ED2P.Best(pts)
	if err != nil {
		t.Fatal(err)
	}
	if bestD.Label != "fast" {
		t.Fatalf("ED2P winner = %s", bestD.Label)
	}
	if _, _, err := Energy.Best(nil); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestObjectiveRank(t *testing.T) {
	pts := []Point{
		{Label: "c", Perf: 1, Energy: 0.9},
		{Label: "a", Perf: 1, Energy: 0.1},
		{Label: "b", Perf: 1, Energy: 0.5},
	}
	ranked, scores, err := Energy.Rank(pts)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Label != "a" || ranked[1].Label != "b" || ranked[2].Label != "c" {
		t.Fatalf("rank order wrong: %v", ranked)
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] < scores[i-1] {
			t.Fatal("scores not ascending")
		}
	}
	// Input untouched.
	if pts[0].Label != "c" {
		t.Fatal("Rank mutated its input")
	}
}

// Property: every Frontier member is optimal for SOME objective weighting
// is too strong a claim for discrete sets, but the objective winners are
// always on the frontier.
func TestQuickObjectiveWinnersOnFrontier(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, 12)
		for i := range pts {
			pts[i] = Point{
				Label:  string(rune('a' + i)),
				Perf:   rng.Float64()*4 + 0.2,
				Energy: rng.Float64() + 0.05,
			}
		}
		front := map[string]bool{}
		for _, p := range Frontier(pts) {
			front[p.Label] = true
		}
		for _, o := range []Objective{Energy, EDP, ED2P} {
			best, _, err := o.Best(pts)
			if err != nil {
				return false
			}
			if !front[best.Label] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
