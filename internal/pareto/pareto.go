// Package pareto implements the measured Pareto-efficiency analysis of
// Section 4.2: given the energy and performance of many processor
// configurations, it identifies the configurations not dominated in
// either dimension and fits the frontier curve of Figure 12.
package pareto

import (
	"errors"
	"sort"

	"repro/internal/stats"
)

// Point is one processor configuration's position in the
// energy/performance tradeoff space.
type Point struct {
	// Label identifies the configuration, e.g. "i7 (45) 4C2T@2.7GHz".
	Label string
	// Perf is normalized performance: higher is better (x-axis).
	Perf float64
	// Energy is normalized energy: lower is better (y-axis).
	Energy float64
}

// Dominates reports whether p is at least as good as q in both
// dimensions and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	if p.Perf < q.Perf || p.Energy > q.Energy {
		return false
	}
	return p.Perf > q.Perf || p.Energy < q.Energy
}

// Frontier returns the Pareto-efficient subset of points — those not
// dominated by any other — sorted by ascending performance. Duplicate
// positions are all retained (neither dominates the other).
func Frontier(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Perf != out[j].Perf {
			return out[i].Perf < out[j].Perf
		}
		return out[i].Energy < out[j].Energy
	})
	return out
}

// Curve is a fitted polynomial frontier, as drawn in Figure 12.
type Curve struct {
	Fit    stats.PolyFit
	MinX   float64
	MaxX   float64
	Points []Point // the efficient points the curve passes through
}

// FitCurve fits a polynomial through the Pareto-efficient points. The
// paper fits such curves per workload group; degree 2 or 3 matches its
// figures. At least degree+1 efficient points are required.
func FitCurve(points []Point, degree int) (*Curve, error) {
	front := Frontier(points)
	if len(front) < degree+1 {
		return nil, errors.New("pareto: not enough efficient points for the requested degree")
	}
	xs := make([]float64, len(front))
	ys := make([]float64, len(front))
	for i, p := range front {
		xs[i] = p.Perf
		ys[i] = p.Energy
	}
	fit, err := stats.Polyfit(xs, ys, degree)
	if err != nil {
		return nil, err
	}
	return &Curve{
		Fit:    fit,
		MinX:   xs[0],
		MaxX:   xs[len(xs)-1],
		Points: front,
	}, nil
}

// Eval evaluates the frontier curve at performance x, clamped to the
// fitted range.
func (c *Curve) Eval(x float64) float64 {
	if x < c.MinX {
		x = c.MinX
	}
	if x > c.MaxX {
		x = c.MaxX
	}
	return c.Fit.Predict(x)
}

// Labels returns the labels of the efficient points in frontier order.
func (c *Curve) Labels() []string {
	out := make([]string, len(c.Points))
	for i, p := range c.Points {
		out[i] = p.Label
	}
	return out
}
