package power

import (
	"testing"

	"repro/internal/proc"
)

func benchProc(b *testing.B) *proc.Processor {
	b.Helper()
	p, err := proc.ByName(proc.I7Name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkPowerChip measures the full analytic chip-power evaluation —
// the model the simulator used to call on every integration step before
// segment kernels were compiled.
func BenchmarkPowerChip(b *testing.B) {
	p := benchProc(b)
	op := stockOp(p)
	loads := fullLoads(p, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Chip(p, op, loads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelEval measures the compiled per-step path that replaced
// Chip in the integration loop: a handful of multiply-adds, with the
// returned Breakdown passed by value so the loop never allocates.
func BenchmarkKernelEval(b *testing.B) {
	p := benchProc(b)
	op := stockOp(p)
	k, err := Compile(p, op, fullLoads(p, 0.7))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var watts float64
	for i := 0; i < b.N; i++ {
		bd := k.Eval(55+float64(i%20), 1.0)
		watts += bd.TotalWatts
	}
	_ = watts
}

// BenchmarkKernelCompile measures the one-time per-segment compilation
// cost the planner pays to buy the Eval fast path.
func BenchmarkKernelCompile(b *testing.B) {
	p := benchProc(b)
	op := stockOp(p)
	loads := fullLoads(p, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(p, op, loads); err != nil {
			b.Fatal(err)
		}
	}
}
