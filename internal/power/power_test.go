package power

import (
	"testing"
	"testing/quick"

	"repro/internal/proc"
)

func i7(t *testing.T) *proc.Processor {
	t.Helper()
	p, err := proc.ByName(proc.I7Name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func stockOp(p *proc.Processor) Operating {
	return Operating{ClockGHz: p.MaxClock(), Volts: p.VoltsAt(p.MaxClock()), TempC: nominalTempC}
}

func fullLoads(p *proc.Processor, activity float64) []CoreLoad {
	loads := make([]CoreLoad, p.Spec.Cores)
	for i := range loads {
		loads[i] = CoreLoad{Active: true, Activity: activity, Utilization: 0.8}
	}
	return loads
}

func idleLoads(p *proc.Processor, active int) []CoreLoad {
	loads := make([]CoreLoad, p.Spec.Cores)
	for i := 0; i < active; i++ {
		loads[i] = CoreLoad{Active: true, Activity: 0.7, Utilization: 0.6}
	}
	return loads
}

func TestChipBreakdownSums(t *testing.T) {
	p := i7(t)
	bd, err := Chip(p, stockOp(p), fullLoads(p, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	sum := bd.UncoreWatts + bd.CoreDynWatts + bd.CoreStaticWatts + bd.GatedWatts
	if diff := bd.TotalWatts - sum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("breakdown does not sum: %v vs %v", bd.TotalWatts, sum)
	}
	if bd.TotalWatts <= 0 {
		t.Fatal("non-positive chip power")
	}
}

func TestChipBelowTDP(t *testing.T) {
	// Figure 2: measured power is strictly below TDP for every part,
	// even fully loaded at high activity.
	for _, p := range proc.Fleet() {
		bd, err := Chip(p, stockOp(p), fullLoads(p, 1.0))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if bd.TotalWatts >= p.Spec.TDPWatts {
			t.Errorf("%s: full-load power %.1fW exceeds TDP %.0fW",
				p.Name, bd.TotalWatts, p.Spec.TDPWatts)
		}
	}
}

func TestIdleCoresDrawLess(t *testing.T) {
	p := i7(t)
	one, err := Chip(p, stockOp(p), idleLoads(p, 1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Chip(p, stockOp(p), idleLoads(p, 4))
	if err != nil {
		t.Fatal(err)
	}
	if one.TotalWatts >= four.TotalWatts {
		t.Fatal("enabling cores must increase power")
	}
	if one.GatedWatts <= 0 {
		t.Fatal("idle cores must still leak")
	}
	if four.GatedWatts != 0 {
		t.Fatal("fully active chip must have no gated leakage")
	}
}

func TestVoltageScalesQuadratically(t *testing.T) {
	p := i7(t)
	op := stockOp(p)
	lo := op
	lo.Volts = op.Volts / 2
	high, err := Chip(p, op, fullLoads(p, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	low, err := Chip(p, lo, fullLoads(p, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	ratio := high.TotalWatts / low.TotalWatts
	if ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("halving V scaled power by %v, want ~4x", ratio)
	}
}

func TestFrequencyScalesDynamicOnly(t *testing.T) {
	p := i7(t)
	op := stockOp(p)
	half := op
	half.ClockGHz = op.ClockGHz / 2
	hi, err := Chip(p, op, fullLoads(p, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Chip(p, half, fullLoads(p, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if lo.CoreDynWatts*2-hi.CoreDynWatts > 1e-9 || hi.CoreDynWatts-lo.CoreDynWatts*2 > 1e-9 {
		t.Fatalf("dynamic power not linear in f: %v vs %v", lo.CoreDynWatts, hi.CoreDynWatts)
	}
	if lo.CoreStaticWatts != hi.CoreStaticWatts {
		t.Fatal("static power must not depend on frequency")
	}
	if lo.UncoreWatts != hi.UncoreWatts {
		t.Fatal("uncore power must not depend on frequency at fixed V")
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	p := i7(t)
	cool := stockOp(p)
	hot := cool
	hot.TempC = 90
	a, err := Chip(p, cool, fullLoads(p, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chip(p, hot, fullLoads(p, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if b.CoreStaticWatts <= a.CoreStaticWatts {
		t.Fatal("leakage must grow with temperature")
	}
	if b.CoreDynWatts != a.CoreDynWatts {
		t.Fatal("dynamic power must not depend on temperature")
	}
}

func TestSMTRaisesCorePower(t *testing.T) {
	p := i7(t)
	base := idleLoads(p, 1)
	smt := idleLoads(p, 1)
	smt[0].SMTActive = true
	a, err := Chip(p, stockOp(p), base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chip(p, stockOp(p), smt)
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalWatts <= a.TotalWatts {
		t.Fatal("SMT activity must raise power")
	}
	// But by far less than a whole extra core (Section 3.2).
	twoCores, err := Chip(p, stockOp(p), idleLoads(p, 2))
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalWatts-a.TotalWatts >= twoCores.TotalWatts-a.TotalWatts {
		t.Fatal("SMT power cost must be below an extra core's")
	}
}

func TestStalledCoreDrawsLess(t *testing.T) {
	p := i7(t)
	busy := []CoreLoad{{Active: true, Activity: 0.9, Utilization: 1}, {}, {}, {}}
	stalled := []CoreLoad{{Active: true, Activity: 0.9, Utilization: 0.1}, {}, {}, {}}
	a, err := Chip(p, stockOp(p), busy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chip(p, stockOp(p), stalled)
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalWatts >= a.TotalWatts {
		t.Fatal("memory-stalled core must draw less than a retiring one")
	}
	if b.CoreDynWatts <= 0 {
		t.Fatal("stalled core must still clock its front end")
	}
}

func TestChipErrors(t *testing.T) {
	p := i7(t)
	if _, err := Chip(nil, stockOp(p), nil); err == nil {
		t.Fatal("nil processor accepted")
	}
	if _, err := Chip(p, stockOp(p), make([]CoreLoad, 2)); err == nil {
		t.Fatal("mismatched load count accepted")
	}
	if _, err := Chip(p, Operating{}, make([]CoreLoad, 4)); err == nil {
		t.Fatal("zero operating point accepted")
	}
}

func TestTurboPointSteps(t *testing.T) {
	p := i7(t)
	cfg := p.Stock()
	// Multi-core load: one step.
	op, err := TurboPoint(p, cfg, 4, fullLoads(p, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	wantAll := cfg.ClockGHz + p.Model.TurboStepGHz
	if op.ClockGHz != wantAll {
		t.Fatalf("all-core turbo clock = %v, want %v", op.ClockGHz, wantAll)
	}
	// Single active core: two steps.
	op1, err := TurboPoint(p, cfg, 1, idleLoads(p, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantOne := cfg.ClockGHz + 2*p.Model.TurboStepGHz
	if op1.ClockGHz != wantOne {
		t.Fatalf("single-core turbo clock = %v, want %v", op1.ClockGHz, wantOne)
	}
	if op1.Volts <= p.VoltsAt(cfg.ClockGHz) {
		t.Fatal("turbo must raise voltage")
	}
}

func TestTurboDisabledIsBase(t *testing.T) {
	p := i7(t)
	cfg := p.Stock()
	cfg.Turbo = false
	op, err := TurboPoint(p, cfg, 4, fullLoads(p, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if op.ClockGHz != cfg.ClockGHz || op.Volts != p.VoltsAt(cfg.ClockGHz) {
		t.Fatalf("no-turbo point = %+v", op)
	}
}

func TestTurboRespectsTDP(t *testing.T) {
	p := i7(t)
	// Shrink the TDP so even one step busts it: turbo must not engage.
	clone := *p
	clone.Spec.TDPWatts = 1
	op, err := TurboPoint(&clone, clone.Stock(), 4, fullLoads(&clone, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if op.ClockGHz != clone.Stock().ClockGHz {
		t.Fatalf("turbo engaged past TDP: %v", op.ClockGHz)
	}
}

func TestTurboPointValidatesConfig(t *testing.T) {
	p := i7(t)
	bad := proc.Config{Cores: 9, SMTWays: 1, ClockGHz: 2.67}
	if _, err := TurboPoint(p, bad, 1, idleLoads(p, 1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// Property: chip power is monotone in activity.
func TestQuickPowerMonotoneInActivity(t *testing.T) {
	p := i7(t)
	op := stockOp(p)
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%100)/100 + 0.01
		b := float64(bRaw%100)/100 + 0.01
		if a > b {
			a, b = b, a
		}
		la, err1 := Chip(p, op, fullLoads(p, a))
		lb, err2 := Chip(p, op, fullLoads(p, b))
		if err1 != nil || err2 != nil {
			return false
		}
		return la.TotalWatts <= lb.TotalWatts+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
