// Package power computes chip power from a processor's model parameters,
// its operating point (frequency, voltage), and the per-core load the
// simulator reports.
//
// The model is the standard CMOS decomposition the paper's analysis
// leans on: dynamic power scales with activity, frequency, and the square
// of voltage (alpha * C * V^2 * f); static leakage scales with voltage
// and temperature; the uncore draws a chip-wide floor; and idle cores are
// partially power gated, with gating effectiveness improving across
// generations (weak on NetBurst, strong on Nehalem). Those four terms are
// what make the paper's observed shapes emerge: the i5's flat
// energy-versus-clock curve (Figure 7), the die shrink's power savings at
// matched clocks (Figure 8), and the workload-dependent spread below TDP
// (Figure 2).
package power

import (
	"errors"
	"fmt"

	"repro/internal/proc"
)

// CoreLoad describes one physical core's load during an interval. A core
// is in one of three states: active (Active set), idle but enabled
// (Enabled set, Active clear — it sits in a C-state but keeps part of its
// clock grid and leakage), or BIOS-disabled (both clear — nearly fully
// power gated, the state of the paper's core-count experiments).
type CoreLoad struct {
	// Active indicates the core has at least one runnable thread.
	Active bool
	// Enabled indicates the BIOS exposes the core even if it is idle.
	Enabled bool
	// Activity is the workload's switching-activity factor (0..1.2).
	Activity float64
	// Utilization is achieved IPC over issue width (0..1]; stalled
	// cores burn less dynamic power.
	Utilization float64
	// SMTActive indicates a second hardware thread is executing, which
	// raises core activity by the model's SMTActivity factor.
	SMTActive bool
}

// Breakdown decomposes chip power by structure, the decomposition the
// paper argues should be exposed by per-structure power meters.
type Breakdown struct {
	UncoreWatts     float64 // shared fabric, LLC, memory controller, I/O
	CoreDynWatts    float64 // active cores' switching power
	CoreStaticWatts float64 // active cores' leakage
	GatedWatts      float64 // residual leakage of gated/disabled cores
	TotalWatts      float64
}

// Operating describes the chip-wide operating point for an interval.
type Operating struct {
	ClockGHz float64 // actual clock, including any turbo steps
	Volts    float64 // actual voltage, including any turbo kick
	TempC    float64 // junction temperature, from the thermal model
}

// nominalTempC is the junction temperature at which CoreStatWatts is
// specified; leakage grows above it.
const nominalTempC = 55

// leakTempCoeff is the fractional leakage increase per degree above
// nominal.
const leakTempCoeff = 0.006

// Chip computes the chip's power breakdown for one interval.
//
// The model's reference operating point is the part's stock maximum
// clock and the voltage at that clock: CoreDynWatts, CoreStatWatts, and
// UncoreWatts are all specified there. Everything scales by
// (V/Vstock)^2; dynamic terms additionally scale by f/fstock.
func Chip(p *proc.Processor, op Operating, loads []CoreLoad) (Breakdown, error) {
	if p == nil {
		return Breakdown{}, errors.New("power: nil processor")
	}
	if len(loads) != p.Spec.Cores {
		return Breakdown{}, fmt.Errorf("power: %d core loads for %d-core %s",
			len(loads), p.Spec.Cores, p.Name)
	}
	if op.ClockGHz <= 0 || op.Volts <= 0 {
		return Breakdown{}, fmt.Errorf("power: non-positive operating point %+v", op)
	}
	m := p.Model
	fStock := p.MaxClock()
	vStock := p.VoltsAt(fStock)
	vScale := (op.Volts / vStock) * (op.Volts / vStock)
	fScale := op.ClockGHz / fStock
	leakT := 1 + leakTempCoeff*(op.TempC-nominalTempC)
	if leakT < 0.5 {
		leakT = 0.5
	}

	var b Breakdown
	b.UncoreWatts = m.UncoreWatts * vScale
	for _, ld := range loads {
		if !ld.Active {
			if ld.Enabled {
				// Idle enabled cores leak past their gates; pre-Nehalem
				// parts also keep part of the clock grid switching.
				b.GatedWatts += m.CoreStatWatts * (1 - m.GatingEff) * leakT * vScale
				b.GatedWatts += m.CoreDynWatts * m.IdleDynFrac * fScale * vScale
			} else {
				// BIOS-disabled cores are nearly fully gated.
				b.GatedWatts += m.CoreStatWatts * (1 - m.GatingEff) * 0.5 * leakT * vScale
			}
			continue
		}
		act := effectiveActivity(m, ld)
		b.CoreDynWatts += m.CoreDynWatts * act * fScale * vScale
		b.CoreStaticWatts += m.CoreStatWatts * leakT * vScale
	}
	b.TotalWatts = b.UncoreWatts + b.CoreDynWatts + b.CoreStaticWatts + b.GatedWatts
	return b, nil
}

// effectiveActivity converts workload activity and achieved utilization
// into the fraction of the core's dynamic capacitance switched: a stalled
// core still clocks its front end (the IdleActivity floor) but switches
// far less than one retiring at full rate.
func effectiveActivity(m proc.Model, ld CoreLoad) float64 {
	util := ld.Utilization
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	act := ld.Activity * (m.IdleActivity + (1-m.IdleActivity)*util)
	if ld.SMTActive {
		act *= m.SMTActivity
	}
	return act
}

// TurboPoint resolves the operating point for a configuration, applying
// Turbo Boost steps when enabled: one step with more than one active
// core, two steps with exactly one, per the paper's Section 3.6, with the
// chip-wide voltage kick that makes boosting power-hungry on the i7.
// The boost is suppressed when the resulting power would exceed TDP
// headroom; the caller passes a representative load for that check.
func TurboPoint(p *proc.Processor, cfg proc.Config, activeCores int, loads []CoreLoad) (Operating, error) {
	if err := p.Validate(cfg); err != nil {
		return Operating{}, err
	}
	base := Operating{ClockGHz: cfg.ClockGHz, Volts: p.VoltsAt(cfg.ClockGHz), TempC: nominalTempC}
	if !cfg.Turbo || !p.HasTurbo() {
		return base, nil
	}
	steps := p.Model.TurboStepsAll
	if activeCores <= 1 {
		steps = p.Model.TurboStepsOne
	}
	for ; steps > 0; steps-- {
		boosted := Operating{
			ClockGHz: cfg.ClockGHz + float64(steps)*p.Model.TurboStepGHz,
			Volts:    p.VoltsAt(cfg.ClockGHz) + float64(steps)*p.Model.TurboVoltsBoost,
			TempC:    base.TempC,
		}
		bd, err := Chip(p, boosted, loads)
		if err != nil {
			return Operating{}, err
		}
		if bd.TotalWatts <= p.Spec.TDPWatts {
			return boosted, nil
		}
	}
	return base, nil
}
