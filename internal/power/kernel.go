package power

import "repro/internal/proc"

// Activity clamp bounds for the simulator's per-step load modulation: a
// phase- and jitter-scaled core never switches less than a stalled front
// end or more than 120% of nominal (the CoreLoad.Activity range).
const (
	ActivityFloor = 0.05
	ActivityCeil  = 1.2
)

// Kernel is one operating point's power model compiled to flat
// coefficients, so the simulator's integration loop can evaluate chip
// power with a handful of multiply-adds instead of re-validating inputs
// and re-deriving voltage/clock scaling and leakage terms on every 20 ms
// step. A Kernel is compiled once per steady-state segment (Compile) and
// evaluated once per step (Eval); Eval allocates nothing.
//
// The decomposition mirrors Chip exactly. With leakT(T) the temperature
// leakage factor and s the per-step activity scale (phase x jitter):
//
//	Uncore = UncoreWatts
//	Static = StaticCoeff * leakT(T)
//	Gated  = GatedLeakCoeff * leakT(T) + GatedFixedWatts
//	Dyn    = sum_j DynCoeff[j] * clamp(BaseAct[j]*s, floor, ceil)
//
// Only active cores contribute DynCoeff/BaseAct entries; idle and
// BIOS-disabled cores fold into the gated constants because their load
// never changes within a segment.
type Kernel struct {
	// ClockGHz and Volts record the compiled operating point.
	ClockGHz float64
	Volts    float64

	// UncoreWatts is the shared-fabric power at this voltage.
	UncoreWatts float64
	// StaticCoeff scales with leakT: active-core leakage.
	StaticCoeff float64
	// GatedLeakCoeff scales with leakT: idle/disabled core residual leakage.
	GatedLeakCoeff float64
	// GatedFixedWatts is the temperature-independent clock-grid residual
	// of idle enabled cores (pre-Nehalem parts).
	GatedFixedWatts float64

	// BaseAct and DynCoeff hold, per active core, the pre-jitter activity
	// factor and the dynamic watts per unit of clamped activity.
	BaseAct  []float64
	DynCoeff []float64
}

// Compile validates the inputs once and flattens the power model for the
// given operating point and per-core load picture. The temperature in op
// is ignored: Eval takes the junction temperature per step.
func Compile(p *proc.Processor, op Operating, loads []CoreLoad) (Kernel, error) {
	// Reuse Chip's validation so a kernel can exist only for inputs Chip
	// would accept.
	if _, err := Chip(p, op, loads); err != nil {
		return Kernel{}, err
	}
	m := p.Model
	fStock := p.MaxClock()
	vStock := p.VoltsAt(fStock)
	vScale := (op.Volts / vStock) * (op.Volts / vStock)
	fScale := op.ClockGHz / fStock

	k := Kernel{
		ClockGHz:    op.ClockGHz,
		Volts:       op.Volts,
		UncoreWatts: m.UncoreWatts * vScale,
	}
	for _, ld := range loads {
		if !ld.Active {
			if ld.Enabled {
				k.GatedLeakCoeff += m.CoreStatWatts * (1 - m.GatingEff) * vScale
				k.GatedFixedWatts += m.CoreDynWatts * m.IdleDynFrac * fScale * vScale
			} else {
				k.GatedLeakCoeff += m.CoreStatWatts * (1 - m.GatingEff) * 0.5 * vScale
			}
			continue
		}
		k.StaticCoeff += m.CoreStatWatts * vScale
		// effectiveActivity is linear in ld.Activity, so the whole
		// utilization/SMT product compiles into one coefficient.
		unit := effectiveActivity(m, CoreLoad{
			Active: true, Enabled: ld.Enabled, Activity: 1,
			Utilization: ld.Utilization, SMTActive: ld.SMTActive,
		})
		k.BaseAct = append(k.BaseAct, ld.Activity)
		k.DynCoeff = append(k.DynCoeff, m.CoreDynWatts*unit*fScale*vScale)
	}
	return k, nil
}

// Eval computes the chip's power breakdown at the given junction
// temperature with every active core's activity scaled by actScale and
// clamped to [ActivityFloor, ActivityCeil], matching the simulator's
// per-step load modulation. It performs no validation and no allocation.
func (k *Kernel) Eval(tempC, actScale float64) Breakdown {
	var b Breakdown
	k.EvalInto(&b, tempC, actScale)
	return b
}

// EvalInto is Eval writing into a caller-owned Breakdown, the form the
// simulator's integration loop uses: one Breakdown lives for a whole
// block of steps and is overwritten per step, so the hot loop moves no
// structs. Arithmetic is identical to Eval's — the two produce
// bit-identical breakdowns.
func (k *Kernel) EvalInto(b *Breakdown, tempC, actScale float64) {
	leakT := 1 + leakTempCoeff*(tempC-nominalTempC)
	if leakT < 0.5 {
		leakT = 0.5
	}
	b.UncoreWatts = k.UncoreWatts
	b.CoreStaticWatts = k.StaticCoeff * leakT
	b.GatedWatts = k.GatedLeakCoeff*leakT + k.GatedFixedWatts
	b.CoreDynWatts = 0
	dyn := k.DynCoeff
	act := k.BaseAct
	for i, c := range dyn {
		a := act[i] * actScale
		if a > ActivityCeil {
			a = ActivityCeil
		}
		if a < ActivityFloor {
			a = ActivityFloor
		}
		b.CoreDynWatts += c * a
	}
	b.TotalWatts = b.UncoreWatts + b.CoreDynWatts + b.CoreStaticWatts + b.GatedWatts
}
