// Golden coverage for every experiment generator: each of the paper's
// artifacts (T2-T5, F1-F12, and the Section 3/7 analyses) is rendered at
// seed 42 and compared field-by-field against recorded values at 1e-9
// relative tolerance. This file is an external test package so it can
// import experiments (which imports harness) without a cycle.
//
// Regenerate the recorded values after an intentional model change with:
//
//	go test ./internal/harness/ -run TestExperimentGoldens -update
package harness_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/experiments"
)

var updateGoldens = flag.Bool("update", false, "rewrite testdata/experiments_golden.json from the current model")

const expGoldenTol = 1e-9

const expGoldenPath = "testdata/experiments_golden.json"

// experimentGenerators mirrors the powerperfd registry: every artifact
// the repository can produce, keyed by its service id.
var experimentGenerators = map[string]func(*experiments.Context) (any, error){
	"table2":          func(c *experiments.Context) (any, error) { return experiments.Table2(c, nil) },
	"table3":          func(*experiments.Context) (any, error) { return experiments.Table3(), nil },
	"table4":          func(c *experiments.Context) (any, error) { return experiments.Table4(c) },
	"table5":          func(c *experiments.Context) (any, error) { return experiments.Table5(c) },
	"figure1":         func(c *experiments.Context) (any, error) { return experiments.Figure1(c) },
	"figure2":         func(c *experiments.Context) (any, error) { return experiments.Figure2(c) },
	"figure3":         func(c *experiments.Context) (any, error) { return experiments.Figure3(c) },
	"figure4":         func(c *experiments.Context) (any, error) { return experiments.Figure4(c) },
	"figure5":         func(c *experiments.Context) (any, error) { return experiments.Figure5(c) },
	"figure6":         func(c *experiments.Context) (any, error) { return experiments.Figure6(c) },
	"figure7":         func(c *experiments.Context) (any, error) { return experiments.Figure7(c) },
	"figure8":         func(c *experiments.Context) (any, error) { return experiments.Figure8(c) },
	"figure9":         func(c *experiments.Context) (any, error) { return experiments.Figure9(c) },
	"figure10":        func(c *experiments.Context) (any, error) { return experiments.Figure10(c) },
	"figure11":        func(c *experiments.Context) (any, error) { return experiments.Figure11(c) },
	"figure12":        func(c *experiments.Context) (any, error) { return experiments.Figure12(c) },
	"section31":       func(c *experiments.Context) (any, error) { return experiments.Section31(c) },
	"findings":        func(c *experiments.Context) (any, error) { return experiments.Findings(c) },
	"jvmcomparison":   func(c *experiments.Context) (any, error) { return experiments.JVMComparison(c) },
	"metercomparison": func(c *experiments.Context) (any, error) { return experiments.MeterComparison(c) },
	"kernelbug":       func(c *experiments.Context) (any, error) { return experiments.KernelBug(c) },
	"heapsweep":       func(c *experiments.Context) (any, error) { return experiments.HeapSweep(c) },
	"scaling":         func(c *experiments.Context) (any, error) { return experiments.ScalingAnalysis(c) },
	"breakdown":       func(c *experiments.Context) (any, error) { return experiments.PowerBreakdown(c) },
}

// renderExperiments produces the golden document: every artifact at seed
// 42, decoded back from JSON so the comparison sees exactly the persisted
// representation.
func renderExperiments(t *testing.T) map[string]any {
	t.Helper()
	c, err := experiments.NewContext(42)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(experimentGenerators))
	for id := range experimentGenerators {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make(map[string]any, len(ids))
	for _, id := range ids {
		res, err := experimentGenerators[id](c)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%s: marshal: %v", id, err)
		}
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("%s: unmarshal: %v", id, err)
		}
		out[id] = v
	}
	return out
}

// compareJSON walks two decoded JSON trees, requiring identical shape,
// exact equality for strings/bools/nulls, and expGoldenTol relative
// agreement for numbers.
func compareJSON(t *testing.T, path string, got, want any) {
	t.Helper()
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			t.Errorf("%s: got %T, want object", path, got)
			return
		}
		if len(g) != len(w) {
			t.Errorf("%s: got %d keys, want %d", path, len(g), len(w))
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				t.Errorf("%s.%s: missing", path, k)
				continue
			}
			compareJSON(t, path+"."+k, gv, wv)
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			t.Errorf("%s: got %T, want array", path, got)
			return
		}
		if len(g) != len(w) {
			t.Errorf("%s: got len %d, want %d", path, len(g), len(w))
			return
		}
		for i := range w {
			compareJSON(t, fmt.Sprintf("%s[%d]", path, i), g[i], w[i])
		}
	case float64:
		g, ok := got.(float64)
		if !ok {
			t.Errorf("%s: got %T, want number", path, got)
			return
		}
		denom := math.Abs(w)
		if denom == 0 {
			denom = 1
		}
		if rel := math.Abs(g-w) / denom; rel > expGoldenTol {
			t.Errorf("%s: got %.17g, want %.17g (rel err %.3g > %.0g)", path, g, w, rel, expGoldenTol)
		}
	default:
		if got != want {
			t.Errorf("%s: got %v, want %v", path, got, want)
		}
	}
}

// TestExperimentGoldens pins every experiment generator against the
// recorded seed-42 values.
func TestExperimentGoldens(t *testing.T) {
	got := renderExperiments(t)

	if *updateGoldens {
		doc, err := json.MarshalIndent(struct {
			Seed        int64          `json:"seed"`
			Experiments map[string]any `json:"experiments"`
		}{42, got}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(expGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(expGoldenPath, append(doc, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d experiments)", expGoldenPath, len(got))
		return
	}

	raw, err := os.ReadFile(expGoldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want struct {
		Seed        int64          `json:"seed"`
		Experiments map[string]any `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if want.Seed != 42 {
		t.Fatalf("golden seed %d, want 42", want.Seed)
	}
	if len(want.Experiments) != len(experimentGenerators) {
		t.Fatalf("golden records %d experiments, registry has %d (regenerate with -update)",
			len(want.Experiments), len(experimentGenerators))
	}
	for id := range experimentGenerators {
		wv, ok := want.Experiments[id]
		if !ok {
			t.Errorf("%s: not recorded (regenerate with -update)", id)
			continue
		}
		compareJSON(t, id, got[id], wv)
	}
}
