package harness

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/workload"
)

// TestMeasureBatchCanceledBeforeStart pins the contract that a batch
// launched under an already-dead context does no measurement work and
// reports the context's error.
func TestMeasureBatchCanceledBeforeStart(t *testing.T) {
	h, err := New(91)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := h.MeasureBatch(ctx, GridJobs(nil, nil), 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("canceled batch returned %d results", len(res))
	}
}

// TestMeasureBatchReturnsPromptlyOnCancel is the regression test for the
// mid-batch abort: before MeasureBatch took a context, a caller had no
// way to stop a running grid. The full 45x61 grid takes seconds on a cold
// harness; cancelling a few milliseconds in must return well before the
// grid could complete.
func TestMeasureBatchReturnsPromptlyOnCancel(t *testing.T) {
	h, err := New(92)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := h.MeasureBatch(ctx, GridJobs(proc.ConfigSpace(), nil), 2)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled (after %s)", err, time.Since(start))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("MeasureBatch did not return after cancellation")
	}
}

// determinismCells samples the (benchmark, processor, config) space
// across suites (SPEC int, PARSEC, SPECjvm, DaCapo), microarchitectures,
// and non-stock configurations.
func determinismCells(t *testing.T) []Job {
	t.Helper()
	cells := []struct {
		bench string
		proc  string
		cfg   *proc.Config // nil selects stock
	}{
		{"perlbench", proc.Pentium4Name, nil},
		{"mcf", proc.I7Name, nil},
		{"vips", proc.Atom45Name, nil},
		{"jess", proc.I5Name, nil},
		{"lusearch", proc.Core2Q65Name, nil},
		{"pmd", proc.Core2D45Name, nil},
		{"db", proc.AtomD45Name, nil},
		{"compress", proc.I7Name, &proc.Config{Cores: 2, SMTWays: 1, ClockGHz: 2.67, Turbo: false}},
		{"xalan", proc.I7Name, &proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 1.60, Turbo: false}},
		{"fluidanimate", proc.Core2D65Name, nil},
	}
	jobs := make([]Job, 0, len(cells))
	for _, c := range cells {
		p, err := proc.ByName(c.proc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := workload.ByName(c.bench)
		if err != nil {
			t.Fatal(err)
		}
		cfg := p.Stock()
		if c.cfg != nil {
			cfg = *c.cfg
		}
		if err := p.Validate(cfg); err != nil {
			t.Fatalf("%s %s: %v", c.proc, cfg, err)
		}
		jobs = append(jobs, Job{Bench: b, CP: proc.ConfiguredProcessor{Proc: p, Config: cfg}})
	}
	return jobs
}

// sameMeasurement asserts bit-identity (==, not tolerance) of two
// measurements including every underlying run sample.
func sameMeasurement(t *testing.T, what string, a, b *Measurement) {
	t.Helper()
	if a.Seconds != b.Seconds || a.Watts != b.Watts || a.EnergyJ != b.EnergyJ {
		t.Fatalf("%s: aggregates differ: %v/%v/%v vs %v/%v/%v",
			what, a.Seconds, a.Watts, a.EnergyJ, b.Seconds, b.Watts, b.EnergyJ)
	}
	if a.TimeCI != b.TimeCI || a.PowerCI != b.PowerCI {
		t.Fatalf("%s: confidence intervals differ", what)
	}
	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("%s: %d vs %d runs", what, len(a.Runs), len(b.Runs))
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Fatalf("%s: run %d differs: %+v vs %+v", what, i, a.Runs[i], b.Runs[i])
		}
	}
}

// TestDeterminismContract is the property test behind the service cache:
// for a spread of cells, serial Measure, parallel MeasureBatch, and the
// uncached path on independent same-seed harnesses are bit-identical.
// The (benchmark, processor, config, seed) tuple fully determines the
// result, which is what lets powerperfd treat it as a cache key.
func TestDeterminismContract(t *testing.T) {
	const seed = 42
	jobs := determinismCells(t)

	serial, err := New(seed)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(seed)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(seed)
	if err != nil {
		t.Fatal(err)
	}

	batch, err := parallel.MeasureBatch(context.Background(), jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		id := j.Bench.Name + " on " + j.CP.String()
		want, err := serial.Measure(j.Bench, j.CP)
		if err != nil {
			t.Fatal(err)
		}
		sameMeasurement(t, id+" (serial vs parallel)", want, batch[i])
		got, err := fresh.MeasureUncached(j.Bench, j.CP)
		if err != nil {
			t.Fatal(err)
		}
		sameMeasurement(t, id+" (serial vs uncached)", want, got)
		again, err := fresh.MeasureUncached(j.Bench, j.CP)
		if err != nil {
			t.Fatal(err)
		}
		sameMeasurement(t, id+" (uncached twice)", got, again)
	}
}
