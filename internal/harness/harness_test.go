package harness

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/jvm"
	"repro/internal/proc"
	"repro/internal/workload"
)

// sharedHarness caches one harness + reference across the test binary;
// the measurement cache makes the suite fast.
var (
	once      sync.Once
	shared    *Harness
	sharedRef *Reference
	setupErr  error
)

func testHarness(t *testing.T) (*Harness, *Reference) {
	t.Helper()
	once.Do(func() {
		shared, setupErr = New(42)
		if setupErr != nil {
			return
		}
		sharedRef, setupErr = shared.Reference()
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return shared, sharedRef
}

func stockCP(t *testing.T, name string) proc.ConfiguredProcessor {
	t.Helper()
	p, err := proc.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return proc.ConfiguredProcessor{Proc: p, Config: p.Stock()}
}

func TestMeasureNativeRunCount(t *testing.T) {
	h, _ := testHarness(t)
	b, err := workload.ByName("perlbench")
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Measure(b, stockCP(t, proc.Core2D65Name))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 3 {
		t.Fatalf("SPEC benchmark measured %d runs, want 3", len(m.Runs))
	}
	if m.Seconds <= 0 || m.Watts <= 0 || m.EnergyJ <= 0 {
		t.Fatalf("degenerate measurement %+v", m)
	}
}

func TestMeasureParsecRunCount(t *testing.T) {
	h, _ := testHarness(t)
	b, err := workload.ByName("vips")
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Measure(b, stockCP(t, proc.Atom45Name))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 5 {
		t.Fatalf("PARSEC benchmark measured %d runs, want 5", len(m.Runs))
	}
}

func TestMeasureJavaInvocations(t *testing.T) {
	h, _ := testHarness(t)
	b, err := workload.ByName("jess")
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Measure(b, stockCP(t, proc.I5Name))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != jvm.Invocations {
		t.Fatalf("Java benchmark measured %d invocations, want %d", len(m.Runs), jvm.Invocations)
	}
	// The paper needs twenty invocations because Java runs vary; the
	// samples must not be identical.
	allSame := true
	for _, r := range m.Runs[1:] {
		if r.Seconds != m.Runs[0].Seconds {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("Java invocations show no run-to-run variation")
	}
}

func TestMeasureIsCachedAndDeterministic(t *testing.T) {
	h, _ := testHarness(t)
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	cp := stockCP(t, proc.I7Name)
	a, err := h.Measure(b, cp)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := h.Measure(b, cp)
	if err != nil {
		t.Fatal(err)
	}
	if a != bm {
		t.Fatal("cache returned a different measurement object")
	}
	// A fresh harness with the same seed reproduces the numbers.
	h2, err := New(42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := h2.Measure(b, cp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Seconds-a.Seconds) > 1e-12 || math.Abs(c.Watts-a.Watts) > 1e-12 {
		t.Fatalf("same seed, different results: %v/%v vs %v/%v", a.Seconds, a.Watts, c.Seconds, c.Watts)
	}
}

func TestMeasureErrors(t *testing.T) {
	h, _ := testHarness(t)
	if _, err := h.Measure(nil, stockCP(t, proc.I7Name)); err == nil {
		t.Fatal("nil benchmark accepted")
	}
}

func TestReferenceCoversAllBenchmarks(t *testing.T) {
	_, ref := testHarness(t)
	if len(ref.Seconds) != 61 || len(ref.EnergyJ) != 61 {
		t.Fatalf("reference covers %d/%d benchmarks, want 61", len(ref.Seconds), len(ref.EnergyJ))
	}
	for name, s := range ref.Seconds {
		if s <= 0 || ref.EnergyJ[name] <= 0 {
			t.Errorf("%s: degenerate reference (%v s, %v J)", name, s, ref.EnergyJ[name])
		}
	}
}

func TestNormalizeAgainstReference(t *testing.T) {
	h, ref := testHarness(t)
	b, err := workload.ByName("povray")
	if err != nil {
		t.Fatal(err)
	}
	// The i5 is the fastest reference machine: it must beat the
	// reference average (normalized perf > 1); the Atom must fall below.
	fast, err := h.Measure(b, stockCP(t, proc.I5Name))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := h.Measure(b, stockCP(t, proc.Atom45Name))
	if err != nil {
		t.Fatal(err)
	}
	nf, err := ref.Normalize(fast)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := ref.Normalize(slow)
	if err != nil {
		t.Fatal(err)
	}
	if nf.Perf <= 1 {
		t.Fatalf("i5 normalized perf = %v, want > 1", nf.Perf)
	}
	if ns.Perf >= 1 {
		t.Fatalf("Atom normalized perf = %v, want < 1", ns.Perf)
	}
	if ns.Energy <= 0 || nf.Energy <= 0 {
		t.Fatal("degenerate normalized energy")
	}
}

func TestNormalizeUnknownBenchmark(t *testing.T) {
	_, ref := testHarness(t)
	m := &Measurement{Bench: &workload.Benchmark{Name: "nope"}}
	if _, err := ref.Normalize(m); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMeasureConfigAggregation(t *testing.T) {
	h, ref := testHarness(t)
	res, err := h.MeasureConfig(stockCP(t, proc.Core2D65Name), ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Four groups, correct sizes, weighted average equals the mean of
	// group means.
	var sumPerf float64
	wantN := map[workload.Group]int{
		workload.NativeNonScalable: 27, workload.NativeScalable: 11,
		workload.JavaNonScalable: 18, workload.JavaScalable: 5,
	}
	for _, g := range workload.Groups() {
		gr := res.Groups[int(g)]
		if gr.N != wantN[g] {
			t.Errorf("%s: %d benchmarks, want %d", g, gr.N, wantN[g])
		}
		sumPerf += gr.Perf
	}
	if math.Abs(res.PerfW-sumPerf/4) > 1e-12 {
		t.Fatalf("weighted perf %v != mean of groups %v", res.PerfW, sumPerf/4)
	}
	if res.WattsMin > res.WattsB || res.WattsB > res.WattsMax {
		t.Fatal("min/avg/max power ordering broken")
	}
	if res.PerfMin > res.PerfB || res.PerfB > res.PerfMax {
		t.Fatal("min/avg/max perf ordering broken")
	}
}

func TestMeasureConfigGroupSubset(t *testing.T) {
	h, ref := testHarness(t)
	res, err := h.MeasureConfig(stockCP(t, proc.Atom45Name), ref, []workload.Group{workload.JavaScalable})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[int(workload.JavaScalable)].N != 5 {
		t.Fatal("subset group not measured")
	}
	if res.Groups[int(workload.NativeNonScalable)].N != 0 {
		t.Fatal("unrequested group measured")
	}
}

func TestMeasureConfigNilReference(t *testing.T) {
	h, _ := testHarness(t)
	if _, err := h.MeasureConfig(stockCP(t, proc.Atom45Name), nil, nil); err == nil {
		t.Fatal("nil reference accepted")
	}
}

func TestConfidenceTableMatchesTable2Shape(t *testing.T) {
	h, _ := testHarness(t)
	tbl, err := h.ConfidenceTable(proc.StockConfigs())
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: overall average CIs are small (~1-2%), maxima below ~15%.
	if tbl.Overall.TimeAvg <= 0 || tbl.Overall.TimeAvg > 0.04 {
		t.Errorf("overall time CI avg = %v, want ~1-2%%", tbl.Overall.TimeAvg)
	}
	if tbl.Overall.PowerAvg <= 0 || tbl.Overall.PowerAvg > 0.04 {
		t.Errorf("overall power CI avg = %v, want ~1-2%%", tbl.Overall.PowerAvg)
	}
	if tbl.Overall.TimeMax > 0.2 || tbl.Overall.PowerMax > 0.2 {
		t.Errorf("maximum CIs implausibly large: %+v", tbl.Overall)
	}
	// Java's twenty JIT/GC-jittered invocations must show larger time
	// CIs than native's three near-deterministic runs (Table 2's key
	// contrast).
	nn := tbl.Groups[int(workload.NativeNonScalable)]
	jn := tbl.Groups[int(workload.JavaNonScalable)]
	if jn.TimeAvg <= nn.TimeAvg {
		t.Errorf("Java time CI %v not above native %v", jn.TimeAvg, nn.TimeAvg)
	}
	if _, err := h.ConfidenceTable(nil); err == nil {
		t.Fatal("empty configuration list accepted")
	}
}

func TestMeasureBatchParallelMatchesSerial(t *testing.T) {
	// Parallel scheduling must not change a single number: every run
	// seeds its own noise and jitter streams from its identity.
	serial, err := New(77)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(77)
	if err != nil {
		t.Fatal(err)
	}
	jobs := GridJobs(proc.StockConfigs()[:3], workload.ByGroup(workload.JavaScalable))
	var want []*Measurement
	for _, j := range jobs {
		m, err := serial.Measure(j.Bench, j.CP)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, m)
	}
	got, err := parallel.MeasureBatch(context.Background(), jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seconds != want[i].Seconds || got[i].Watts != want[i].Watts {
			t.Fatalf("job %d (%s on %s): parallel %v/%v vs serial %v/%v",
				i, jobs[i].Bench.Name, jobs[i].CP,
				got[i].Seconds, got[i].Watts, want[i].Seconds, want[i].Watts)
		}
	}
}

func TestMeasureBatchEdgeCases(t *testing.T) {
	h, _ := testHarness(t)
	if res, err := h.MeasureBatch(context.Background(), nil, 4); err != nil || res != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	// Workers clamped to job count; default workers.
	jobs := GridJobs(proc.StockConfigs()[:1], workload.ByGroup(workload.JavaScalable)[:2])
	res, err := h.MeasureBatch(context.Background(), jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
}

func TestMeasureBatchFailingJobsDoNotDeadlock(t *testing.T) {
	// Regression: the old producer-channel feed deadlocked when every
	// worker exited early on an error, because nothing drained the
	// producer's remaining sends. A batch where every job fails, driven
	// by a single worker, is the sharpest reproducer: the worker bails
	// on job 0 and the batch must still return promptly with the error.
	h, _ := testHarness(t)
	valid := GridJobs(proc.StockConfigs()[:1], workload.ByGroup(workload.JavaScalable)[:1])
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Bench: nil, CP: valid[0].CP} // nil benchmark always fails
	}
	done := make(chan error, 1)
	go func() {
		_, err := h.MeasureBatch(context.Background(), jobs, 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("failing batch returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("MeasureBatch deadlocked on a failing batch")
	}
}

func TestGridJobsDefaults(t *testing.T) {
	jobs := GridJobs(nil, nil)
	if len(jobs) != 8*61 {
		t.Fatalf("%d jobs, want 488", len(jobs))
	}
}

func TestMeasureConcurrentSameKey(t *testing.T) {
	// Concurrent requests for the same measurement share one run of the
	// methodology and one result object.
	h, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByName("jess")
	if err != nil {
		t.Fatal(err)
	}
	cp := stockCP(t, proc.I5Name)
	const n = 8
	results := make([]*Measurement, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := h.Measure(b, cp)
			if err == nil {
				results[i] = m
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent same-key measurements returned different objects")
		}
	}
}
