package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proc"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Batch and cell latency distributions, exported as Prometheus
// histogram families through the process-global registry (the service
// renders them in /metricsz). Histograms are always on — an Observe is
// two atomic adds, invisible next to a millisecond-scale cell.
var (
	batchHist = telemetry.Default.Histogram("powerperf_measure_batch_seconds",
		"Wall time of harness.MeasureBatch calls.")
	cellHist = telemetry.Default.Histogram("powerperf_measure_cell_seconds",
		"Wall time of one measurement cell (cache hits included).")
)

// Job names one measurement of the study's grid.
type Job struct {
	Bench *workload.Benchmark
	CP    proc.ConfiguredProcessor
}

// DefaultBlockSize picks the automatic block for a batch: big enough to
// amortize per-cell scheduling and setup, small enough that every worker
// stays busy until the tail.
func DefaultBlockSize(jobs, workers int) int {
	block := jobs / (4 * workers)
	if block > 16 {
		block = 16
	}
	if block < 1 {
		block = 1
	}
	return block
}

// SetBlockSize fixes the block MeasureBatch workers claim per scheduling
// step; n <= 0 restores the automatic size. Blocking is pure scheduling:
// any block size produces byte-identical measurements (pinned by the
// golden determinism tests), it only changes how work is handed out and
// how often per-block setup (machine and meter resolution) is repeated.
func (h *Harness) SetBlockSize(n int) {
	if n < 0 {
		n = 0
	}
	h.blockSize = n
}

// BlockSize reports the configured block size (0 = automatic).
func (h *Harness) BlockSize() int { return h.blockSize }

// MeasureBatch runs a set of measurements across a worker pool and
// returns them in job order. Measurements are deterministic in the
// harness seed and independent of scheduling order (each run derives its
// own seed from its identity), so parallel and serial execution produce
// byte-identical results — the property that lets the full 45x61 study
// regenerate quickly without giving up the paper's reproducibility.
//
// workers <= 0 selects GOMAXPROCS. The first error cancels the batch, as
// does ctx: workers stop claiming jobs once the context is done and the
// batch returns ctx.Err() promptly (in-flight cells finish their current
// measurement first — a cell is the cancellation granularity).
func (h *Harness) MeasureBatch(ctx context.Context, jobs []Job, workers int) ([]*Measurement, error) {
	return h.MeasureBatchBlocks(ctx, jobs, workers, h.blockSize)
}

// MeasureBatchBlocks is MeasureBatch with an explicit scheduling block:
// one dispatch claims `block` consecutive jobs. GridJobs order is
// configuration-major, so a block's cells share a machine — and through
// the machine memo and the simulator's plan cache, one set of compiled
// segment kernels — keeping per-cell setup off the hot path. block <= 0
// selects the automatic size.
func (h *Harness) MeasureBatchBlocks(ctx context.Context, jobs []Job, workers, block int) ([]*Measurement, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if block <= 0 {
		block = DefaultBlockSize(len(jobs), workers)
	}

	// Telemetry is a pure side channel: the span and histograms observe
	// wall time only, never seeds or measured values, so traced and
	// untraced batches produce byte-identical results.
	batchStart := time.Now()
	ctx, batchSpan := h.tracer.StartSpan(ctx, "harness.MeasureBatch",
		telemetry.Int("jobs", len(jobs)), telemetry.Int("workers", workers),
		telemetry.Int("block", block))
	defer func() {
		batchHist.Observe(time.Since(batchStart))
		batchSpan.End()
	}()

	// Workers claim blocks of jobs from an atomic index rather than a
	// producer channel: a channel feed deadlocks the producer if every
	// worker exits early on an error, since nothing drains the remaining
	// sends. Blocks amortize the claim and per-configuration setup.
	results := make([]*Measurement, len(jobs))
	errCh := make(chan error, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(block))) - block
				if lo >= len(jobs) || failed.Load() || ctx.Err() != nil {
					return
				}
				hi := lo + block
				if hi > len(jobs) {
					hi = len(jobs)
				}
				for i := lo; i < hi; i++ {
					if failed.Load() || ctx.Err() != nil {
						return
					}
					m, err := h.measureCellTraced(ctx, jobs[i])
					if err != nil {
						failed.Store(true)
						select {
						case errCh <- err:
						default:
						}
						return
					}
					results[i] = m
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, m := range results {
		if m == nil {
			return nil, fmt.Errorf("harness: job %d (%s on %s) not measured",
				i, jobs[i].Bench.Name, jobs[i].CP)
		}
	}
	return results, nil
}

// measureCellTraced wraps one cell measurement in a span and the cell
// latency histogram. The span parents under the batch span in ctx, so
// a trace shows each batch fanning into its cells.
func (h *Harness) measureCellTraced(ctx context.Context, j Job) (*Measurement, error) {
	start := time.Now()
	// Malformed jobs (nil benchmark) must reach Measure's validation and
	// come back as errors, not panic in the instrumentation.
	bench, processor := "<nil>", "<nil>"
	if j.Bench != nil {
		bench = j.Bench.Name
	}
	if j.CP.Proc != nil {
		processor = j.CP.Proc.Name
	}
	_, span := h.tracer.StartSpan(ctx, "harness.cell",
		telemetry.String("benchmark", bench),
		telemetry.String("processor", processor))
	m, err := h.Measure(j.Bench, j.CP)
	if err != nil {
		span.Annotate(telemetry.String("error", err.Error()))
	}
	span.End()
	cellHist.Observe(time.Since(start))
	return m, err
}

// GridJobs builds the full cross product of configurations and
// benchmarks in deterministic order. Nil arguments select the eight
// stock configurations and all 61 benchmarks respectively.
func GridJobs(cps []proc.ConfiguredProcessor, benches []*workload.Benchmark) []Job {
	if cps == nil {
		cps = proc.StockConfigs()
	}
	if benches == nil {
		benches = workload.All()
	}
	jobs := make([]Job, 0, len(cps)*len(benches))
	for _, cp := range cps {
		for _, b := range benches {
			jobs = append(jobs, Job{Bench: b, CP: cp})
		}
	}
	return jobs
}
