package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/proc"
	"repro/internal/workload"
)

// Job names one measurement of the study's grid.
type Job struct {
	Bench *workload.Benchmark
	CP    proc.ConfiguredProcessor
}

// MeasureBatch runs a set of measurements across a worker pool and
// returns them in job order. Measurements are deterministic in the
// harness seed and independent of scheduling order (each run derives its
// own seed from its identity), so parallel and serial execution produce
// byte-identical results — the property that lets the full 45x61 study
// regenerate quickly without giving up the paper's reproducibility.
//
// workers <= 0 selects GOMAXPROCS. The first error cancels the batch, as
// does ctx: workers stop claiming jobs once the context is done and the
// batch returns ctx.Err() promptly (in-flight cells finish their current
// measurement first — a cell is the cancellation granularity).
func (h *Harness) MeasureBatch(ctx context.Context, jobs []Job, workers int) ([]*Measurement, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Workers claim jobs from an atomic index rather than a producer
	// channel: a channel feed deadlocks the producer if every worker
	// exits early on an error, since nothing drains the remaining sends.
	results := make([]*Measurement, len(jobs))
	errCh := make(chan error, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || failed.Load() || ctx.Err() != nil {
					return
				}
				m, err := h.Measure(jobs[i].Bench, jobs[i].CP)
				if err != nil {
					failed.Store(true)
					select {
					case errCh <- err:
					default:
					}
					return
				}
				results[i] = m
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, m := range results {
		if m == nil {
			return nil, fmt.Errorf("harness: job %d (%s on %s) not measured",
				i, jobs[i].Bench.Name, jobs[i].CP)
		}
	}
	return results, nil
}

// GridJobs builds the full cross product of configurations and
// benchmarks in deterministic order. Nil arguments select the eight
// stock configurations and all 61 benchmarks respectively.
func GridJobs(cps []proc.ConfiguredProcessor, benches []*workload.Benchmark) []Job {
	if cps == nil {
		cps = proc.StockConfigs()
	}
	if benches == nil {
		benches = workload.All()
	}
	jobs := make([]Job, 0, len(cps)*len(benches))
	for _, cp := range cps {
		for _, b := range benches {
			jobs = append(jobs, Job{Bench: b, CP: cp})
		}
	}
	return jobs
}
