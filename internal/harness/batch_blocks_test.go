package harness

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/proc"
	"repro/internal/workload"
)

// TestBatchBlocksGoldenAcrossSchedules is the block-scheduling half of
// the determinism contract: at a given seed, serial measurement, the
// default parallel schedule, and every block size — including the edge
// cases where the block does not divide the cell count, a degenerate
// block of 1, and a block larger than the whole batch — must produce
// identical measurements. Batching is pure scheduling; it may never
// change a number.
func TestBatchBlocksGoldenAcrossSchedules(t *testing.T) {
	jobs := GridJobs(proc.StockConfigs()[:2], workload.ByGroup(workload.JavaScalable))
	if len(jobs)%7 == 0 {
		t.Fatalf("test wants a block size that does not divide %d jobs", len(jobs))
	}
	for _, seed := range []int64{42, 0} {
		ref, err := New(seed)
		if err != nil {
			t.Fatal(err)
		}
		var want []*Measurement
		for _, j := range jobs {
			m, err := ref.Measure(j.Bench, j.CP)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, m)
		}

		check := func(name string, got []*Measurement) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: %d results, want %d", seed, name, len(got), len(want))
			}
			for i := range got {
				if got[i].Seconds != want[i].Seconds || got[i].Watts != want[i].Watts ||
					got[i].EnergyJ != want[i].EnergyJ {
					t.Fatalf("seed %d %s: job %d (%s on %s) diverged from serial",
						seed, name, i, jobs[i].Bench.Name, jobs[i].CP)
				}
			}
		}

		h, err := New(seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.MeasureBatch(context.Background(), jobs, 8)
		if err != nil {
			t.Fatal(err)
		}
		check("parallel workers=8", got)

		for _, block := range []int{1, 7, len(jobs) + 10} {
			hb, err := New(seed)
			if err != nil {
				t.Fatal(err)
			}
			got, err := hb.MeasureBatchBlocks(context.Background(), jobs, 4, block)
			if err != nil {
				t.Fatal(err)
			}
			check("block size "+strconv.Itoa(block), got)
		}
	}
}

// TestSetBlockSizeSticks verifies the harness-level knob MeasureBatch
// reads, which Study.SetBlockSize and fullstudy -batch-size feed.
func TestSetBlockSizeSticks(t *testing.T) {
	h, err := New(42)
	if err != nil {
		t.Fatal(err)
	}
	if h.BlockSize() != 0 {
		t.Fatalf("fresh harness block size %d, want 0 (automatic)", h.BlockSize())
	}
	h.SetBlockSize(17)
	if h.BlockSize() != 17 {
		t.Fatalf("block size %d after SetBlockSize(17)", h.BlockSize())
	}
	h.SetBlockSize(-3)
	if h.BlockSize() != 0 {
		t.Fatalf("negative block size should reset to automatic, got %d", h.BlockSize())
	}
	jobs := GridJobs(proc.StockConfigs()[:1], workload.ByGroup(workload.JavaScalable)[:3])
	h.SetBlockSize(2) // does not divide 3
	got, err := h.MeasureBatch(context.Background(), jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("%d results, want %d", len(got), len(jobs))
	}
}
