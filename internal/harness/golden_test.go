package harness

import (
	"math"
	"testing"

	"repro/internal/jvm"
	"repro/internal/native"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// goldenTol is the relative tolerance for the recorded golden values.
// The compiled power kernel reassociates floating-point sums, so results
// may drift from the recorded values by a few ulps (~1e-16 relative);
// anything approaching 1e-9 indicates a real change to the model.
const goldenTol = 1e-9

func relClose(t *testing.T, what string, got, want float64) {
	t.Helper()
	denom := math.Abs(want)
	if denom == 0 {
		denom = 1
	}
	if rel := math.Abs(got-want) / denom; rel > goldenTol {
		t.Errorf("%s: got %.17g, want %.17g (rel err %.3g > %.0g)",
			what, got, want, rel, goldenTol)
	}
}

// simGoldens records Machine.Run results at seed 42 captured before the
// power model was compiled into flat kernels. They pin the simulator's
// numerical behavior: the kernel refactor and every later optimization
// must reproduce these to within goldenTol.
var simGoldens = []struct {
	proc    string
	bench   string
	cfg     proc.Config
	seconds float64
	watts   float64
	energyJ float64
}{
	{"Pentium4 (130)", "perlbench", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 2.4, Turbo: false}, 907.48001313043505, 40.6170714583997, 36859.180540388377},
	{"Pentium4 (130)", "mcf", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 2.4, Turbo: false}, 4103.2000072422079, 34.275443131279346, 140638.99850449531},
	{"Pentium4 (130)", "vips", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 2.4, Turbo: false}, 167.31256239096615, 49.189853408176397, 8230.0804173579927},
	{"Pentium4 (130)", "jess", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 2.4, Turbo: false}, 1.5070081196765672, 45.55754122198649, 68.655584534033565},
	{"Pentium4 (130)", "db", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 2.4, Turbo: false}, 22.164181588967274, 41.066954708340319, 910.2154414615494},
	{"Pentium4 (130)", "lusearch", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 2.4, Turbo: false}, 13.857243791302055, 47.248081475897997, 654.72818368282117},
	{"Pentium4 (130)", "pmd", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 2.4, Turbo: false}, 12.202871101004785, 42.772789686665661, 521.95083917676789},
	{"Core2Q (65)", "perlbench", proc.Config{Cores: 4, SMTWays: 1, ClockGHz: 2.4, Turbo: false}, 352.81058944386825, 54.940569522065474, 19383.614717461744},
	{"Core2Q (65)", "mcf", proc.Config{Cores: 4, SMTWays: 1, ClockGHz: 2.4, Turbo: false}, 2582.274234445094, 51.470995580084541, 132912.22570768962},
	{"Core2Q (65)", "vips", proc.Config{Cores: 4, SMTWays: 1, ClockGHz: 2.4, Turbo: false}, 28.581931009527207, 69.155743775563209, 1976.6046975056881},
	{"Core2Q (65)", "jess", proc.Config{Cores: 4, SMTWays: 1, ClockGHz: 2.4, Turbo: false}, 0.50283801169572029, 52.152253851945744, 26.224135632362866},
	{"Core2Q (65)", "db", proc.Config{Cores: 4, SMTWays: 1, ClockGHz: 2.4, Turbo: false}, 5.9892644210237975, 51.252884481023621, 306.96707749703751},
	{"Core2Q (65)", "lusearch", proc.Config{Cores: 4, SMTWays: 1, ClockGHz: 2.4, Turbo: false}, 2.7783551185427884, 59.480822045612754, 165.25884638556093},
	{"Core2Q (65)", "pmd", proc.Config{Cores: 4, SMTWays: 1, ClockGHz: 2.4, Turbo: false}, 4.3249767580384635, 49.01102146578117, 211.97152872722779},
	{"i7 (45)", "perlbench", proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 2.67, Turbo: true}, 242.62026342374637, 27.009768486017684, 6553.1171450920137},
	{"i7 (45)", "mcf", proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 2.67, Turbo: true}, 1399.3948882985749, 21.254352455595171, 29743.232180456143},
	{"i7 (45)", "vips", proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 2.67, Turbo: true}, 18.988185293189883, 62.654721605599953, 1189.6994633403594},
	{"i7 (45)", "jess", proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 2.67, Turbo: true}, 0.38024859207736367, 27.263464863099603, 10.366894129344299},
	{"i7 (45)", "db", proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 2.67, Turbo: true}, 3.9079461824722523, 25.492116333668971, 99.6218187093002},
	{"i7 (45)", "lusearch", proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 2.67, Turbo: true}, 1.5099502867179138, 49.139776857311965, 74.198620154952508},
	{"i7 (45)", "pmd", proc.Config{Cores: 4, SMTWays: 2, ClockGHz: 2.67, Turbo: true}, 2.754069476242722, 33.999479810875755, 93.636929555263592},
	{"i7 (45)", "perlbench", proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.67, Turbo: true}, 242.62026342374637, 20.805383589383787, 5047.8076470883843},
	{"i7 (45)", "mcf", proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.67, Turbo: true}, 1399.3948882985749, 15.069085069833724, 21087.600618061686},
	{"i7 (45)", "vips", proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.67, Turbo: true}, 58.360252032198943, 25.187385272019544, 1469.9421525071564},
	{"i7 (45)", "jess", proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.67, Turbo: true}, 0.41005631082867022, 24.014554848179625, 9.847319767237293},
	{"i7 (45)", "db", proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.67, Turbo: true}, 4.9382749078702437, 19.836633853222249, 97.958751213976853},
	{"i7 (45)", "lusearch", proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.67, Turbo: true}, 4.5211294703450022, 21.904537198310134, 99.033248661548299},
	{"i7 (45)", "pmd", proc.Config{Cores: 1, SMTWays: 1, ClockGHz: 2.67, Turbo: true}, 3.7737574910407563, 20.032055211149292, 75.596118414016658},
	{"Atom (45)", "perlbench", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 1.7, Turbo: false}, 1623.3580124891685, 2.2965155211497366, 3728.0668720641634},
	{"Atom (45)", "mcf", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 1.7, Turbo: false}, 4756.4591070842343, 2.0659131124614554, 9826.4312382120261},
	{"Atom (45)", "vips", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 1.7, Turbo: false}, 280.80460983676977, 2.7024351203160033, 758.85623956951929},
	{"Atom (45)", "jess", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 1.7, Turbo: false}, 2.774398488621252, 2.580094885752763, 7.1582113515318877},
	{"Atom (45)", "db", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 1.7, Turbo: false}, 26.52229255587493, 2.4093497769835959, 63.90147965459095},
	{"Atom (45)", "lusearch", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 1.7, Turbo: false}, 15.644577260014234, 2.6527504607856245, 41.50115953529906},
	{"Atom (45)", "pmd", proc.Config{Cores: 1, SMTWays: 2, ClockGHz: 1.7, Turbo: false}, 16.627866065990844, 2.4823344709441906, 41.275925113852239},
	{"i5 (32)", "perlbench", proc.Config{Cores: 2, SMTWays: 2, ClockGHz: 1.2, Turbo: false}, 575.07404409596984, 8.1486011950821471, 4686.0490429811434},
	{"i5 (32)", "mcf", proc.Config{Cores: 2, SMTWays: 2, ClockGHz: 1.2, Turbo: false}, 2284.7042842650189, 7.3991868526678033, 16904.953902367532},
	{"i5 (32)", "vips", proc.Config{Cores: 2, SMTWays: 2, ClockGHz: 1.2, Turbo: false}, 68.622400057563198, 11.995257381714405, 823.14335084144398},
	{"i5 (32)", "jess", proc.Config{Cores: 2, SMTWays: 2, ClockGHz: 1.2, Turbo: false}, 0.87473648626000466, 9.7304806866420854, 8.511606485454136},
	{"i5 (32)", "db", proc.Config{Cores: 2, SMTWays: 2, ClockGHz: 1.2, Turbo: false}, 8.6207520987924937, 9.468025585896946, 81.621501441042128},
	{"i5 (32)", "lusearch", proc.Config{Cores: 2, SMTWays: 2, ClockGHz: 1.2, Turbo: false}, 4.2788857510105132, 11.178945357124999, 47.83342999992729},
	{"i5 (32)", "pmd", proc.Config{Cores: 2, SMTWays: 2, ClockGHz: 1.2, Turbo: false}, 5.6543978727343474, 9.6174626746298113, 54.380960488528792},
}

// TestKernelMatchesGoldenRuns replays seed-42 simulator runs across a
// spread of parts (hot Pentium 4, quad Core 2, Turbo-capable i7, low-power
// Atom, downclocked i5) and workload types (SPEC int, PARSEC, SPECjvm,
// DaCapo) against results recorded from the pre-kernel simulator.
func TestKernelMatchesGoldenRuns(t *testing.T) {
	for _, g := range simGoldens {
		p, err := proc.ByName(g.proc)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.NewMachine(p, g.cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := workload.ByName(g.bench)
		if err != nil {
			t.Fatal(err)
		}
		var spec sim.ExecSpec
		if b.Managed() {
			plan, err := jvm.NewPlan(b, g.cfg.Contexts())
			if err != nil {
				t.Fatal(err)
			}
			spec = plan.Specs[plan.MeasuredIndex()]
		} else {
			spec, err = native.Spec(b, g.cfg.Contexts())
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.Run(spec, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		id := g.proc + "/" + g.bench + "/" + g.cfg.String()
		relClose(t, id+" Seconds", res.Seconds, g.seconds)
		relClose(t, id+" AvgWatts", res.AvgWatts, g.watts)
		relClose(t, id+" EnergyJ", res.EnergyJ, g.energyJ)
	}
}

// TestHarnessMatchesGoldenMeasurements pins the full methodology — JVM
// warmup plan, sensor chain, logger, confidence intervals — at the study
// seed against values recorded before the optimization work.
func TestHarnessMatchesGoldenMeasurements(t *testing.T) {
	goldens := []struct {
		proc    string
		bench   string
		seconds float64
		watts   float64
		energyJ float64
	}{
		{"i7 (45)", "mcf", 1410.4102898920762, 21.131724888172933, 29804.172104354959},
		{"i5 (32)", "lusearch", 2.4547282712228311, 25.747147378307524, 63.201858181177023},
		{"Core2D (65)", "perlbench", 363.78043694136232, 24.639220124097022, 8963.2887869498245},
	}
	h, err := New(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range goldens {
		p, err := proc.ByName(g.proc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := workload.ByName(g.bench)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := h.Measure(b, proc.ConfiguredProcessor{Proc: p, Config: p.Stock()})
		if err != nil {
			t.Fatal(err)
		}
		id := g.proc + "/" + g.bench
		relClose(t, id+" Seconds", meas.Seconds, g.seconds)
		relClose(t, id+" Watts", meas.Watts, g.watts)
		relClose(t, id+" EnergyJ", meas.EnergyJ, g.energyJ)
	}
}
