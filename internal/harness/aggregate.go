package harness

import (
	"errors"
	"fmt"

	"repro/internal/proc"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Reference holds the normalization baselines of Section 2.6: for each
// benchmark, the mean execution time across the four reference processors
// (one per microarchitecture and technology generation) and the reference
// energy (mean power across those four times the mean time).
type Reference struct {
	Seconds map[string]float64
	EnergyJ map[string]float64
}

// MeasureFunc is a measurement source: the harness's own Measure, or a
// remote source (the cluster client) that returns bit-identical
// measurements by the determinism contract.
type MeasureFunc func(b *workload.Benchmark, cp proc.ConfiguredProcessor) (*Measurement, error)

// ReferenceCells lists the (benchmark, reference processor) grid the
// normalization table is built from, in the order BuildReference
// consumes it.
func ReferenceCells() ([]proc.ConfiguredProcessor, error) {
	refs := make([]proc.ConfiguredProcessor, 0, 4)
	for _, name := range proc.ReferenceNames() {
		p, err := proc.ByName(name)
		if err != nil {
			return nil, err
		}
		refs = append(refs, proc.ConfiguredProcessor{Proc: p, Config: p.Stock()})
	}
	return refs, nil
}

// BuildReference builds the Section 2.6 normalization table from any
// measurement source. The accumulation order is fixed (benchmarks outer,
// reference processors in ReferenceNames order inner), so every source
// that returns bit-identical measurements produces a bit-identical
// table.
func BuildReference(measure MeasureFunc) (*Reference, error) {
	refs, err := ReferenceCells()
	if err != nil {
		return nil, err
	}
	out := &Reference{
		Seconds: make(map[string]float64, 61),
		EnergyJ: make(map[string]float64, 61),
	}
	for _, b := range workload.All() {
		var times, watts []float64
		for _, cp := range refs {
			m, err := measure(b, cp)
			if err != nil {
				return nil, err
			}
			times = append(times, m.Seconds)
			watts = append(watts, m.Watts)
		}
		t := stats.Mean(times)
		out.Seconds[b.Name] = t
		out.EnergyJ[b.Name] = stats.Mean(watts) * t
	}
	return out, nil
}

// Reference measures all 61 benchmarks on the four stock reference
// processors and builds the normalization table. The harness cache makes
// repeated calls cheap.
func (h *Harness) Reference() (*Reference, error) {
	return BuildReference(h.Measure)
}

// Normalized is one benchmark's reference-normalized result.
type Normalized struct {
	Bench *workload.Benchmark
	// Perf is reference time over measured time: higher is better.
	Perf float64
	// Watts is measured average power, reported directly (power is not
	// biased by execution time).
	Watts float64
	// Energy is measured energy over reference energy: lower is better.
	Energy float64
}

// Normalize converts a measurement using the reference table.
func (r *Reference) Normalize(m *Measurement) (Normalized, error) {
	refT, ok := r.Seconds[m.Bench.Name]
	if !ok {
		return Normalized{}, fmt.Errorf("harness: no reference time for %s", m.Bench.Name)
	}
	refE := r.EnergyJ[m.Bench.Name]
	if refT <= 0 || refE <= 0 {
		return Normalized{}, fmt.Errorf("harness: degenerate reference for %s", m.Bench.Name)
	}
	return Normalized{
		Bench:  m.Bench,
		Perf:   refT / m.Seconds,
		Watts:  m.Watts,
		Energy: m.EnergyJ / refE,
	}, nil
}

// GroupResult aggregates one workload group on one configuration.
type GroupResult struct {
	Group  workload.Group
	Perf   float64 // arithmetic mean of normalized performance
	Watts  float64 // arithmetic mean of average power
	Energy float64 // arithmetic mean of normalized energy
	N      int
}

// ConfigResult aggregates a full configuration: the four group results,
// the equally weighted average the paper reports (Avg_w), the simple
// per-benchmark average (Avg_b), and extremes.
type ConfigResult struct {
	CP     proc.ConfiguredProcessor
	Groups [4]GroupResult

	// Weighted averages: mean of the four group means.
	PerfW, WattsW, EnergyW float64
	// Simple per-benchmark averages.
	PerfB, WattsB, EnergyB float64

	PerfMin, PerfMax   float64
	WattsMin, WattsMax float64
}

// MeasureConfig measures every benchmark of the given groups on one
// configuration and aggregates per Section 2.6. Passing nil groups
// selects all four.
func (h *Harness) MeasureConfig(cp proc.ConfiguredProcessor, ref *Reference, groups []workload.Group) (*ConfigResult, error) {
	return AggregateConfig(cp, h.Measure, ref, groups)
}

// AggregateConfig aggregates one configuration per Section 2.6 from any
// measurement source, with the same accumulation order as MeasureConfig
// (groups outer, each group's benchmarks in workload order inner) so
// results are bit-identical across sources.
func AggregateConfig(cp proc.ConfiguredProcessor, measure MeasureFunc, ref *Reference, groups []workload.Group) (*ConfigResult, error) {
	if ref == nil {
		return nil, errors.New("harness: nil reference")
	}
	if groups == nil {
		groups = workload.Groups()
	}
	res := &ConfigResult{CP: cp}
	var allPerf, allWatts, allEnergy []float64
	var groupPerf, groupWatts, groupEnergy []float64
	for _, g := range groups {
		var perfs, watts, energies []float64
		for _, b := range workload.ByGroup(g) {
			m, err := measure(b, cp)
			if err != nil {
				return nil, err
			}
			n, err := ref.Normalize(m)
			if err != nil {
				return nil, err
			}
			perfs = append(perfs, n.Perf)
			watts = append(watts, n.Watts)
			energies = append(energies, n.Energy)
		}
		gr := GroupResult{
			Group:  g,
			Perf:   stats.Mean(perfs),
			Watts:  stats.Mean(watts),
			Energy: stats.Mean(energies),
			N:      len(perfs),
		}
		res.Groups[int(g)] = gr
		groupPerf = append(groupPerf, gr.Perf)
		groupWatts = append(groupWatts, gr.Watts)
		groupEnergy = append(groupEnergy, gr.Energy)
		allPerf = append(allPerf, perfs...)
		allWatts = append(allWatts, watts...)
		allEnergy = append(allEnergy, energies...)
	}
	res.PerfW = stats.Mean(groupPerf)
	res.WattsW = stats.Mean(groupWatts)
	res.EnergyW = stats.Mean(groupEnergy)
	res.PerfB = stats.Mean(allPerf)
	res.WattsB = stats.Mean(allWatts)
	res.EnergyB = stats.Mean(allEnergy)
	res.PerfMin = stats.Min(allPerf)
	res.PerfMax = stats.Max(allPerf)
	res.WattsMin = stats.Min(allWatts)
	res.WattsMax = stats.Max(allWatts)
	return res, nil
}

// CITable summarizes measurement error per group the way Table 2 does:
// average and maximum relative 95% confidence intervals for execution
// time and power across a set of configurations.
type CITable struct {
	Groups  [4]CIRow
	Overall CIRow
}

// CIRow is one row of Table 2.
type CIRow struct {
	TimeAvg, TimeMax   float64
	PowerAvg, PowerMax float64
}

// ConfidenceTable computes Table 2 over the given configurations.
func (h *Harness) ConfidenceTable(cps []proc.ConfiguredProcessor) (*CITable, error) {
	if len(cps) == 0 {
		return nil, errors.New("harness: no configurations")
	}
	var tbl CITable
	var perGroup [4][]float64 // relative time CIs
	var perGroupP [4][]float64
	for _, cp := range cps {
		for _, b := range workload.All() {
			m, err := h.Measure(b, cp)
			if err != nil {
				return nil, err
			}
			g := int(b.Group)
			perGroup[g] = append(perGroup[g], m.TimeCI.Relative())
			perGroupP[g] = append(perGroupP[g], m.PowerCI.Relative())
		}
	}
	var allT, allP []float64
	for g := 0; g < 4; g++ {
		tbl.Groups[g] = CIRow{
			TimeAvg:  stats.Mean(perGroup[g]),
			TimeMax:  stats.Max(perGroup[g]),
			PowerAvg: stats.Mean(perGroupP[g]),
			PowerMax: stats.Max(perGroupP[g]),
		}
		allT = append(allT, perGroup[g]...)
		allP = append(allP, perGroupP[g]...)
	}
	tbl.Overall = CIRow{
		TimeAvg:  stats.Mean(allT),
		TimeMax:  stats.Max(allT),
		PowerAvg: stats.Mean(allP),
		PowerMax: stats.Max(allP),
	}
	return &tbl, nil
}
