// Package harness implements the paper's measurement methodology end to
// end: it executes each benchmark on a configured machine the prescribed
// number of times (three for SPEC, five for PARSEC, twenty JVM
// invocations measuring the fifth in-process iteration for Java), logs
// chip power through the calibrated Hall-effect sensor substrate at the
// rig's sampling rate, computes 95% confidence intervals (Table 2),
// normalizes to the four-processor reference (Section 2.6), and
// aggregates the four workload groups with equal weight.
package harness

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/counters"
	"repro/internal/jvm"
	"repro/internal/native"
	"repro/internal/proc"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ConfidenceLevel is the paper's reporting level.
const ConfidenceLevel = 0.95

// RunSample is one measured invocation.
type RunSample struct {
	Seconds  float64 // measured execution time
	Watts    float64 // sensor-calibrated average power over the run
	Counters counters.Counters
}

// Measurement is the aggregated result of measuring one benchmark on one
// configured processor.
type Measurement struct {
	Bench *workload.Benchmark
	CP    proc.ConfiguredProcessor

	Runs []RunSample

	Seconds float64 // mean execution time
	Watts   float64 // mean average power
	EnergyJ float64 // mean energy (power x time per run, averaged)

	// Counters holds the mean architectural event counts per run,
	// the paper's counter-power pairing (Section 3.1).
	Counters counters.Counters

	TimeCI  stats.CI
	PowerCI stats.CI
}

// Harness owns the sensor rig and a measurement cache; a single Harness
// reproduces the entire study deterministically from its seed. All
// methods are safe for concurrent use: every run derives its own seed
// from its identity (not from shared RNG state), so parallel and serial
// execution produce identical numbers.
type Harness struct {
	rig  *sensor.Rig
	seed int64

	// tracer records batch and cell spans when set; nil (the default)
	// disables span capture. Tracing never touches the measurement
	// pipeline — results are byte-identical either way.
	tracer *telemetry.Tracer

	mu    sync.Mutex
	cache map[string]*cacheEntry

	// machines memoizes validated simulator machines per configuration:
	// the study's grid re-measures each configuration dozens of times (61
	// benchmarks), and a Machine is immutable once built.
	mmu      sync.Mutex
	machines map[string]*sim.Machine

	// blockSize is the default block MeasureBatch workers claim per
	// scheduling step; 0 selects the automatic size. Set via
	// SetBlockSize before issuing work.
	blockSize int
}

// cacheEntry memoizes one measurement; the Once arbitrates concurrent
// first requests so the methodology runs exactly once per key.
type cacheEntry struct {
	once sync.Once
	m    *Measurement
	err  error
}

// New builds a harness: it fabricates and calibrates one current sensor
// per fleet machine (the i7 gets the 30A part) and fails if any sensor
// misses the paper's R^2 threshold.
func New(seed int64) (*Harness, error) {
	names := make([]string, 0, 8)
	for _, p := range proc.Fleet() {
		names = append(names, p.Name)
	}
	rig, err := sensor.NewRig(names, map[string]float64{proc.I7Name: 30}, seed)
	if err != nil {
		return nil, fmt.Errorf("harness: rig construction: %w", err)
	}
	return &Harness{
		rig:      rig,
		seed:     seed,
		cache:    make(map[string]*cacheEntry),
		machines: make(map[string]*sim.Machine),
	}, nil
}

// machine returns the cached simulator machine for a configuration,
// building and validating it on first use. Machines are read-only after
// construction, so one instance serves concurrent measurements.
func (h *Harness) machine(cp proc.ConfiguredProcessor) (*sim.Machine, error) {
	key := cp.String()
	h.mmu.Lock()
	defer h.mmu.Unlock()
	if m, ok := h.machines[key]; ok {
		return m, nil
	}
	m, err := sim.NewMachine(cp.Proc, cp.Config)
	if err != nil {
		return nil, err
	}
	h.machines[key] = m
	return m, nil
}

// Rig exposes the calibrated sensor rig (for validation reporting).
func (h *Harness) Rig() *sensor.Rig { return h.rig }

// SetTracer attaches a span tracer; nil disables tracing. Set before
// issuing work — the tracer is read concurrently by batch workers.
func (h *Harness) SetTracer(t *telemetry.Tracer) { h.tracer = t }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (h *Harness) Tracer() *telemetry.Tracer { return h.tracer }

// Measure runs the full methodology for one benchmark on one configured
// processor. Results are cached by benchmark name and configuration: the
// same measurement is reused across experiments, as the paper's dataset
// is. Callers constructing their own benchmark variants must therefore
// give each variant a distinct name.
func (h *Harness) Measure(b *workload.Benchmark, cp proc.ConfiguredProcessor) (*Measurement, error) {
	if b == nil {
		return nil, errors.New("harness: nil benchmark")
	}
	key := b.Name + "|" + cp.String()
	h.mu.Lock()
	e, ok := h.cache[key]
	if !ok {
		e = &cacheEntry{}
		h.cache[key] = e
	}
	h.mu.Unlock()
	e.once.Do(func() { e.m, e.err = h.measure(b, cp) })
	return e.m, e.err
}

// MeasureUncached runs the full methodology without consulting or
// populating the harness's internal memo. Long-running callers that
// manage their own bounded cache (the powerperfd service) use it so the
// harness does not grow an unbounded shadow copy of every measurement;
// results are bit-identical to Measure's because every run seeds its own
// noise streams from its identity, not from shared state.
func (h *Harness) MeasureUncached(b *workload.Benchmark, cp proc.ConfiguredProcessor) (*Measurement, error) {
	if b == nil {
		return nil, errors.New("harness: nil benchmark")
	}
	return h.measure(b, cp)
}

// measure runs the methodology uncached.
func (h *Harness) measure(b *workload.Benchmark, cp proc.ConfiguredProcessor) (*Measurement, error) {
	machine, err := h.machine(cp)
	if err != nil {
		return nil, err
	}
	meter, err := h.rig.Meter(cp.Proc.Name)
	if err != nil {
		return nil, err
	}

	var runs []RunSample
	if b.Managed() {
		runs, err = h.measureManaged(b, machine, meter)
	} else {
		runs, err = h.measureNative(b, machine, meter)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", b.Name, cp, err)
	}

	m := &Measurement{Bench: b, CP: cp, Runs: runs}
	buf := make([]float64, 2*len(runs))
	times, watts := buf[:len(runs)], buf[len(runs):]
	energy := 0.0
	for i, r := range runs {
		times[i] = r.Seconds
		watts[i] = r.Watts
		energy += r.Seconds * r.Watts
	}
	m.Seconds = stats.Mean(times)
	m.Watts = stats.Mean(watts)
	m.EnergyJ = energy / float64(len(runs))
	for _, r := range runs {
		m.Counters.Add(r.Counters)
	}
	m.Counters.Scale(1 / float64(len(runs)))
	if m.TimeCI, err = stats.ConfidenceInterval(times, ConfidenceLevel); err != nil {
		return nil, err
	}
	if m.PowerCI, err = stats.ConfidenceInterval(watts, ConfidenceLevel); err != nil {
		return nil, err
	}
	return m, nil
}

// measureNative performs the prescribed successive executions of an
// ahead-of-time compiled benchmark.
func (h *Harness) measureNative(b *workload.Benchmark, machine *sim.Machine, meter *sensor.Meter) ([]RunSample, error) {
	n, err := native.Runs(b)
	if err != nil {
		return nil, err
	}
	spec, err := native.Spec(b, machine.Cfg.Contexts())
	if err != nil {
		return nil, err
	}
	// Plan once, replay per invocation: the prescribed runs differ only
	// in their seeds, so they share one compiled Runner.
	runner, err := machine.NewRunner(spec)
	if err != nil {
		return nil, err
	}
	defer runner.Release()
	base := h.seedBase(b.Name, machine)
	runs := make([]RunSample, 0, n)
	for r := 0; r < n; r++ {
		seed := runSeedFrom(base, r, 0)
		lg, err := meter.AcquireLogger(seed ^ 0x1091)
		if err != nil {
			return nil, err
		}
		res, err := runner.Run(seed, lg.Sample)
		if err != nil {
			return nil, err
		}
		tr, err := lg.Finish()
		meter.ReleaseLogger(lg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, RunSample{Seconds: res.Seconds, Watts: tr.AvgWatts, Counters: res.Counters})
	}
	return runs, nil
}

// measureManaged performs twenty JVM invocations, each running five
// in-process iterations and measuring the fifth (Section 2.2).
func (h *Harness) measureManaged(b *workload.Benchmark, machine *sim.Machine, meter *sensor.Meter) ([]RunSample, error) {
	plan, err := jvm.NewPlan(b, machine.Cfg.Contexts())
	if err != nil {
		return nil, err
	}
	// Only the measured (fifth) iteration of each invocation contributes
	// to the reported sample. The warm-up iterations are still part of
	// the methodology's model — the plan carries their specs — but
	// executing them is provably dead work: every run seeds its RNG and
	// resets its thermal state from its own identity, takes no sample
	// callback, and has its result discarded, so eliding the replay
	// leaves the measured iteration's bytes untouched. The elision is
	// pinned by the golden determinism tests.
	mi := plan.MeasuredIndex()
	runner, err := machine.NewRunner(plan.Specs[mi])
	if err != nil {
		return nil, err
	}
	defer runner.Release()
	base := h.seedBase(b.Name, machine)
	runs := make([]RunSample, 0, jvm.Invocations)
	for inv := 0; inv < jvm.Invocations; inv++ {
		seed := runSeedFrom(base, inv, mi)
		lg, err := meter.AcquireLogger(seed ^ 0x1091)
		if err != nil {
			return nil, err
		}
		res, err := runner.Run(seed, lg.Sample)
		if err != nil {
			return nil, err
		}
		tr, err := lg.Finish()
		meter.ReleaseLogger(lg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, RunSample{Seconds: res.Seconds, Watts: tr.AvgWatts, Counters: res.Counters})
	}
	return runs, nil
}

// FNV-1a parameters, inlined so seed derivation allocates nothing. The
// hashed byte stream is exactly what the original hash/fnv +
// fmt.Fprintf("%d|%s|%s|%s|%d|%d", ...) implementation consumed, so
// every derived seed — and therefore every measured number — is
// unchanged.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

func fnvInt(h uint64, v int64) uint64 {
	var buf [20]byte
	for _, c := range strconv.AppendInt(buf[:0], v, 10) {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// seedBase hashes the identity prefix shared by every run of one cell
// ("seed|bench|proc|cfg|"), so the per-run tail hashes only the run and
// iteration digits. Computed once per cell instead of once per run.
func (h *Harness) seedBase(bench string, machine *sim.Machine) uint64 {
	f := fnvInt(fnvOffset64, h.seed)
	f = fnvByte(f, '|')
	f = fnvString(f, bench)
	f = fnvByte(f, '|')
	f = fnvString(f, machine.Proc.Name)
	f = fnvByte(f, '|')
	f = fnvString(f, machine.Cfg.String())
	f = fnvByte(f, '|')
	return f
}

// runSeedFrom finishes a seed derivation started by seedBase.
func runSeedFrom(base uint64, run, iter int) int64 {
	f := fnvInt(base, int64(run))
	f = fnvByte(f, '|')
	f = fnvInt(f, int64(iter))
	return int64(f)
}

// runSeed derives a stable per-run seed from the harness seed and the
// run's identity, keeping the whole study reproducible.
func (h *Harness) runSeed(bench string, machine *sim.Machine, run, iter int) int64 {
	return runSeedFrom(h.seedBase(bench, machine), run, iter)
}
