package scaling

import (
	"math"
	"testing"
)

func TestGenerationsPath(t *testing.T) {
	gens := Generations()
	if len(gens) != 5 || gens[0] != N130 || gens[4] != N32 {
		t.Fatalf("generations = %v", gens)
	}
	for i := 1; i < len(gens); i++ {
		if gens[i] >= gens[i-1] {
			t.Fatal("generations not shrinking")
		}
	}
}

func TestDennardIdeal(t *testing.T) {
	d := Dennard()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Constant-field scaling: frequency x1/0.7, power and area x0.49.
	if math.Abs(d.Frequency-1/0.7) > 1e-9 {
		t.Fatalf("Dennard frequency = %v", d.Frequency)
	}
	if math.Abs(d.Power-0.49) > 1e-9 {
		t.Fatalf("Dennard power = %v", d.Power)
	}
}

func TestRegimesOrdering(t *testing.T) {
	// The whole point of the paper's decade: post-Dennard delivers far
	// less than Dennard promised.
	if PostDennard().Frequency >= Dennard().Frequency {
		t.Fatal("post-Dennard frequency not below Dennard")
	}
	if PostDennard().Power <= Dennard().Power {
		t.Fatal("post-Dennard power savings not worse than Dennard")
	}
	// ITRS's 45->32 prediction sits in the post-Dennard regime.
	if ITRS4532().Frequency > 1.2 || ITRS4532().Power < 0.7 {
		t.Fatalf("ITRS factors implausible: %+v", ITRS4532())
	}
}

func TestProjectSingleStep(t *testing.T) {
	tr, err := Project("itrs", ITRS4532(), N45, N32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Frequency-1.09) > 1e-9 || math.Abs(tr.Power-0.80) > 1e-9 {
		t.Fatalf("single-step projection wrong: %+v", tr)
	}
}

func TestProjectMultiStep(t *testing.T) {
	// Four Dennard generations: power x0.49^4 ~ 0.058, freq x(1/0.7)^4 ~ 4.16.
	tr, err := Project("dennard", Dennard(), N130, N32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Frequency-math.Pow(1/0.7, 4)) > 1e-9 {
		t.Fatalf("4-step frequency = %v", tr.Frequency)
	}
	if math.Abs(tr.Power-math.Pow(0.49, 4)) > 1e-9 {
		t.Fatalf("4-step power = %v", tr.Power)
	}
	if tr.Perf != tr.Frequency {
		t.Fatal("first-order perf must track frequency")
	}
}

func TestProjectErrors(t *testing.T) {
	if _, err := Project("x", Factors{}, N65, N45); err == nil {
		t.Fatal("invalid factors accepted")
	}
	if _, err := Project("x", Dennard(), N45, N65); err == nil {
		t.Fatal("reverse shrink accepted")
	}
	if _, err := Project("x", Dennard(), Node(22), N45); err == nil {
		t.Fatal("off-path node accepted")
	}
}

func TestAgainst(t *testing.T) {
	measured := Transition{Label: "m", From: N45, To: N32, Frequency: 1.26, Power: 0.77}
	pred, err := Project("itrs", ITRS4532(), N45, N32)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := measured.Against(pred)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's observation: the measured shrink beat ITRS on both
	// axes (more frequency, comparable-or-better power).
	if math.Abs(cmp.FreqError-1.26/1.09) > 1e-9 {
		t.Fatalf("freq error = %v", cmp.FreqError)
	}
	if cmp.Framework != "itrs" {
		t.Fatalf("framework label lost: %q", cmp.Framework)
	}
	// Node mismatch is rejected.
	other, err := Project("d", Dennard(), N65, N45)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := measured.Against(other); err == nil {
		t.Fatal("node mismatch accepted")
	}
}
