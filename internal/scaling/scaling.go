// Package scaling models the technology-scaling frameworks the paper's
// historical analysis leans on: classical Dennard scaling, its
// leakage-limited post-2005 slowdown (Bohr's retrospective, cited as
// [6]), and the ITRS roadmap projections the paper compares its measured
// die shrinks against ("ITRS predicted a 9% increase in frequency and
// 20% reduction in power from 45nm to 32nm", Section 3.4).
//
// The package answers two questions the paper poses:
//
//   - how do the measured Core (65→45 nm) and Nehalem (45→32 nm) shrinks
//     compare with Dennard-ideal and ITRS-predicted scaling; and
//   - what would the Pentium 4 look like shrunk across four generations
//     (the Section 4.1 thought experiment: "reduce power four fold and
//     increase performance two fold").
package scaling

import (
	"errors"
	"fmt"
	"math"
)

// Node is a process technology node in nanometres.
type Node int

// The paper's five generations.
const (
	N130 Node = 130
	N90  Node = 90
	N65  Node = 65
	N45  Node = 45
	N32  Node = 32
)

// Generations lists the scaling path from 130 nm to 32 nm.
func Generations() []Node { return []Node{N130, N90, N65, N45, N32} }

// Factors describes the per-generation change a scaling regime predicts
// at constant die complexity (same design, shrunk).
type Factors struct {
	// Frequency is the clock multiplier per generation.
	Frequency float64
	// Power is the power multiplier per generation at the new clock.
	Power float64
	// Area is the die-area multiplier per generation.
	Area float64
}

// Validate checks the factors.
func (f Factors) Validate() error {
	if f.Frequency <= 0 || f.Power <= 0 || f.Area <= 0 {
		return errors.New("scaling: factors must be positive")
	}
	return nil
}

// Dennard returns classical (constant-field) scaling for a linear shrink
// factor s ≈ 0.7 per generation: frequency up by 1/s ≈ 1.4x, area and
// power down by s² ≈ 0.5x at constant complexity.
func Dennard() Factors {
	const s = 0.7
	return Factors{Frequency: 1 / s, Power: s * s, Area: s * s}
}

// PostDennard returns the leakage-limited regime the paper's decade
// actually delivered: the area shrink continues but voltage barely
// scales, so frequency gains stall (~10%) and power drops far less than
// s² (~25% per generation) — the numbers behind "Dennard scaling slowed
// significantly" (Section 1).
func PostDennard() Factors {
	return Factors{Frequency: 1.10, Power: 0.75, Area: 0.5}
}

// ITRS4532 returns the roadmap's prediction for the 45→32 nm step the
// paper quotes: +9% frequency, −20% power.
func ITRS4532() Factors {
	return Factors{Frequency: 1.09, Power: 0.80, Area: 0.5}
}

// Transition is a measured (or predicted) generation-to-generation
// change for one design.
type Transition struct {
	Label string
	From  Node
	To    Node
	// Frequency, Power, and Perf are new/old ratios. Perf may be zero
	// for frameworks that do not predict it directly.
	Frequency float64
	Power     float64
	Perf      float64
}

// steps returns the number of generations between two nodes along the
// paper's path, or an error if the nodes are not on it.
func steps(from, to Node) (int, error) {
	gens := Generations()
	fi, ti := -1, -1
	for i, n := range gens {
		if n == from {
			fi = i
		}
		if n == to {
			ti = i
		}
	}
	if fi < 0 || ti < 0 {
		return 0, fmt.Errorf("scaling: nodes %d/%d not on the 130..32 path", from, to)
	}
	if ti <= fi {
		return 0, fmt.Errorf("scaling: %dnm is not a shrink of %dnm", to, from)
	}
	return ti - fi, nil
}

// Project applies a scaling regime across the generations between two
// nodes and returns the predicted transition.
func Project(label string, f Factors, from, to Node) (Transition, error) {
	if err := f.Validate(); err != nil {
		return Transition{}, err
	}
	n, err := steps(from, to)
	if err != nil {
		return Transition{}, err
	}
	return Transition{
		Label:     label,
		From:      from,
		To:        to,
		Frequency: math.Pow(f.Frequency, float64(n)),
		Power:     math.Pow(f.Power, float64(n)),
		// To first order a shrunk design's performance tracks its clock.
		Perf: math.Pow(f.Frequency, float64(n)),
	}, nil
}

// Compare quantifies how close a measured transition lands to a
// framework's prediction, as multiplicative errors (measured/predicted).
type Compare struct {
	Framework string
	FreqError float64
	PowError  float64
}

// Against compares a measured transition with a prediction over the
// same nodes.
func (m Transition) Against(pred Transition) (Compare, error) {
	if m.From != pred.From || m.To != pred.To {
		return Compare{}, fmt.Errorf("scaling: node mismatch %d->%d vs %d->%d",
			m.From, m.To, pred.From, pred.To)
	}
	if pred.Frequency <= 0 || pred.Power <= 0 {
		return Compare{}, errors.New("scaling: degenerate prediction")
	}
	return Compare{
		Framework: pred.Label,
		FreqError: m.Frequency / pred.Frequency,
		PowError:  m.Power / pred.Power,
	}, nil
}
