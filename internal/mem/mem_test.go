package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func testHierarchy() Hierarchy {
	return Hierarchy{
		L2KBPerCore:  2048,
		LLCKB:        8192,
		LatencyNs:    60,
		BandwidthGBs: 16,
		MLPHiding:    0.45,
	}
}

func TestValidate(t *testing.T) {
	h := testHierarchy()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Hierarchy{
		{L2KBPerCore: 0, LLCKB: 1, LatencyNs: 1, BandwidthGBs: 1},
		{L2KBPerCore: 1, LLCKB: 1, LatencyNs: 0, BandwidthGBs: 1},
		{L2KBPerCore: 1, LLCKB: 1, LatencyNs: 1, BandwidthGBs: 0},
		{L2KBPerCore: 1, LLCKB: 1, LatencyNs: 1, BandwidthGBs: 1, MLPHiding: 1},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: bad hierarchy validated", i)
		}
	}
}

func TestEffectiveCacheSharing(t *testing.T) {
	h := testHierarchy()
	solo, err := h.EffectiveCacheKB(Share{ThreadsOnCore: 1, ActiveCores: 1, ThreadsTotal: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2048 + 8192.0; solo != want {
		t.Fatalf("solo share = %v, want %v", solo, want)
	}
	smt, err := h.EffectiveCacheKB(Share{ThreadsOnCore: 2, ActiveCores: 1, ThreadsTotal: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1024 + 4096.0; smt != want {
		t.Fatalf("SMT share = %v, want %v", smt, want)
	}
	if smt >= solo {
		t.Fatal("sharing must shrink the per-thread cache")
	}
}

func TestEffectiveCacheRejectsBadShare(t *testing.T) {
	h := testHierarchy()
	bad := []Share{
		{ThreadsOnCore: 0, ActiveCores: 1, ThreadsTotal: 1},
		{ThreadsOnCore: 1, ActiveCores: 0, ThreadsTotal: 1},
		{ThreadsOnCore: 1, ActiveCores: 1, ThreadsTotal: 0},
	}
	for i, s := range bad {
		if _, err := h.EffectiveCacheKB(s); err == nil {
			t.Errorf("case %d: bad share accepted", i)
		}
	}
}

func TestMissPerInstrFitsInCache(t *testing.T) {
	h := testHierarchy()
	s := Share{ThreadsOnCore: 1, ActiveCores: 1, ThreadsTotal: 1}
	// 1 MB working set fits the 10 MB share: only the compulsory floor.
	m, err := h.MissPerInstr(10, 1024, s)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / 1000 * compulsoryFrac
	if math.Abs(m-want) > 1e-12 {
		t.Fatalf("fitting miss rate = %v, want %v", m, want)
	}
}

func TestMissPerInstrGrowsWithWorkingSet(t *testing.T) {
	h := testHierarchy()
	s := Share{ThreadsOnCore: 1, ActiveCores: 1, ThreadsTotal: 1}
	prev := -1.0
	for _, ws := range []float64{1 << 10, 16 << 10, 64 << 10, 512 << 10} {
		m, err := h.MissPerInstr(10, ws, s)
		if err != nil {
			t.Fatal(err)
		}
		if m < prev {
			t.Fatalf("miss rate decreased at ws=%v", ws)
		}
		prev = m
	}
	// A working set vastly larger than cache approaches the full MPKI.
	huge, err := h.MissPerInstr(10, 1<<30, s)
	if err != nil {
		t.Fatal(err)
	}
	if huge < 0.0099 {
		t.Fatalf("huge working set miss rate = %v, want ~0.01", huge)
	}
}

func TestMissPerInstrSharingHurts(t *testing.T) {
	h := testHierarchy()
	ws := 8192.0 // 8 MB: fits alone, contends when shared
	alone, err := h.MissPerInstr(10, ws, Share{ThreadsOnCore: 1, ActiveCores: 1, ThreadsTotal: 1})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := h.MissPerInstr(10, ws, Share{ThreadsOnCore: 2, ActiveCores: 4, ThreadsTotal: 8})
	if err != nil {
		t.Fatal(err)
	}
	if shared <= alone {
		t.Fatalf("sharing did not increase misses: %v <= %v", shared, alone)
	}
}

func TestMissPerInstrErrors(t *testing.T) {
	h := testHierarchy()
	s := Share{ThreadsOnCore: 1, ActiveCores: 1, ThreadsTotal: 1}
	if _, err := h.MissPerInstr(-1, 100, s); err == nil {
		t.Fatal("negative MPKI accepted")
	}
	if _, err := h.MissPerInstr(1, 0, s); err == nil {
		t.Fatal("zero working set accepted")
	}
}

func TestStallCPIScalesWithClock(t *testing.T) {
	h := testHierarchy()
	// Fixed latency in ns costs more cycles at higher clocks: the root
	// of the paper's sub-linear clock scaling (Figure 7).
	lo := h.StallCPI(0.005, 1.6, 1)
	hi := h.StallCPI(0.005, 3.2, 1)
	if math.Abs(hi-2*lo) > 1e-12 {
		t.Fatalf("stall CPI not linear in clock: %v vs %v", lo, hi)
	}
	if got := h.StallCPI(0, 3.0, 1); got != 0 {
		t.Fatalf("zero misses produced stall %v", got)
	}
}

func TestStallCPIMLPHidingReduces(t *testing.T) {
	strong := testHierarchy()
	weak := strong
	weak.MLPHiding = 0.05
	if strong.StallCPI(0.01, 2.4, 1) >= weak.StallCPI(0.01, 2.4, 1) {
		t.Fatal("more MLP hiding must mean fewer stall cycles")
	}
}

func TestStallCPIMLPFactor(t *testing.T) {
	h := testHierarchy()
	neutral := h.StallCPI(0.01, 2.4, 0) // zero means 1
	explicit := h.StallCPI(0.01, 2.4, 1)
	if neutral != explicit {
		t.Fatalf("zero factor %v != explicit 1 %v", neutral, explicit)
	}
	// Dependent pointer-chasing misses (< 1) stall more; streaming
	// prefetchable misses (> 1) stall less.
	dependent := h.StallCPI(0.01, 2.4, 0.5)
	streaming := h.StallCPI(0.01, 2.4, 1.3)
	if !(dependent > neutral && streaming < neutral) {
		t.Fatalf("MLP factor ordering wrong: %v / %v / %v", dependent, neutral, streaming)
	}
	// Extreme factors clamp: stall never goes negative.
	if got := h.StallCPI(0.01, 2.4, 10); got < 0 {
		t.Fatalf("clamped stall = %v", got)
	}
}

func TestTrafficAndThrottle(t *testing.T) {
	h := testHierarchy()
	// 1e9 instr/s at 0.01 miss/instr = 10M misses/s * 64B = 0.64 GB/s.
	gbs := h.TrafficGBs(1e9, 0.01)
	if math.Abs(gbs-0.64) > 1e-12 {
		t.Fatalf("traffic = %v, want 0.64", gbs)
	}
	if got := h.BandwidthThrottle(8, 0.5); got != 1 {
		t.Fatalf("under-ceiling throttle = %v, want 1", got)
	}
	th := h.BandwidthThrottle(32, 0.5)
	if th >= 1 || th <= 0 {
		t.Fatalf("over-ceiling throttle = %v, want in (0,1)", th)
	}
	// 2x over ceiling with fully memory-bound execution halves the rate.
	full := h.BandwidthThrottle(32, 1)
	if math.Abs(full-0.5) > 1e-12 {
		t.Fatalf("fully memory-bound 2x throttle = %v, want 0.5", full)
	}
	// Compute-bound execution is immune.
	if got := h.BandwidthThrottle(32, 0); got != 1 {
		t.Fatalf("compute-bound throttle = %v, want 1", got)
	}
}

func TestFromModel(t *testing.T) {
	h, err := FromModel(2048, 8<<20, 60, 16, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if h.LLCKB != 8192 {
		t.Fatalf("LLCKB = %v, want 8192", h.LLCKB)
	}
	if _, err := FromModel(0, 1, 1, 1, 0); err == nil {
		t.Fatal("bad model accepted")
	}
}

// Property: miss rate is monotone non-increasing in cache share and never
// exceeds MPKI/1000 or drops below the compulsory floor.
func TestQuickMissRateBounds(t *testing.T) {
	h := testHierarchy()
	f := func(mpkiRaw, wsRaw uint16, threads, cores uint8) bool {
		mpki := float64(mpkiRaw%50) + 0.1
		ws := float64(wsRaw%2048)*1024 + 64
		tc := int(threads%2) + 1
		ac := int(cores%4) + 1
		s := Share{ThreadsOnCore: tc, ActiveCores: ac, ThreadsTotal: ac * tc}
		m, err := h.MissPerInstr(mpki, ws, s)
		if err != nil {
			return false
		}
		lo := mpki / 1000 * compulsoryFrac
		hi := mpki / 1000
		return m >= lo-1e-15 && m <= hi+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: throttle output is always in (0, 1].
func TestQuickThrottleBounds(t *testing.T) {
	h := testHierarchy()
	f := func(demandRaw, fracRaw uint16) bool {
		demand := float64(demandRaw) / 100
		frac := float64(fracRaw%101) / 100
		th := h.BandwidthThrottle(demand, frac)
		return th > 0 && th <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
