// Package mem models the memory hierarchy seen by the fleet: a mid-level
// cache per core, a shared last-level cache, and DRAM with a fixed access
// latency in nanoseconds and a sustainable bandwidth ceiling.
//
// Two properties of this model drive the paper's findings:
//
//   - DRAM latency is constant in *time*, so its cost in *cycles* grows
//     with clock frequency. That is why doubling the clock yields only
//     ~80% more performance (Figure 7) and why the Nehalem parts, with
//     their integrated memory controllers, outperform Core at matched
//     clocks (Figure 9).
//
//   - Cache capacity is shared: SMT threads split a core's share and
//     active cores split the LLC, so adding contexts can add misses. This
//     is the conflict side of the SMT tradeoff (Section 3.2).
package mem

import (
	"errors"
	"fmt"
)

// Hierarchy describes one processor's memory system in the model's terms.
type Hierarchy struct {
	// L2KBPerCore is the effective per-core mid-level capacity.
	L2KBPerCore float64
	// LLCKB is the shared last-level capacity.
	LLCKB float64
	// LatencyNs is the effective DRAM access latency seen by a miss.
	LatencyNs float64
	// BandwidthGBs is the sustainable memory bandwidth.
	BandwidthGBs float64
	// MLPHiding is the fraction of miss latency hidden by out-of-order
	// overlap and memory-level parallelism, in [0, 1).
	MLPHiding float64
}

// Validate checks the hierarchy's physical plausibility.
func (h Hierarchy) Validate() error {
	switch {
	case h.L2KBPerCore <= 0 || h.LLCKB < 0:
		return errors.New("mem: cache capacities must be positive")
	case h.LatencyNs <= 0:
		return errors.New("mem: DRAM latency must be positive")
	case h.BandwidthGBs <= 0:
		return errors.New("mem: bandwidth must be positive")
	case h.MLPHiding < 0 || h.MLPHiding >= 1:
		return fmt.Errorf("mem: MLP hiding %v outside [0,1)", h.MLPHiding)
	}
	return nil
}

// compulsoryFrac is the floor on the miss attenuation: even a working set
// that fits entirely in cache suffers cold and coherence misses.
const compulsoryFrac = 0.08

// Share describes how many contexts divide the cache capacity.
type Share struct {
	// ThreadsOnCore is the number of SMT threads sharing the core's
	// mid-level capacity (>= 1).
	ThreadsOnCore int
	// ActiveCores is the number of cores sharing the LLC (>= 1).
	ActiveCores int
	// ThreadsTotal is the total active threads sharing the LLC (>= 1).
	ThreadsTotal int
}

func (s Share) validate() error {
	// ThreadsTotal may be below ActiveCores: a core can be active with a
	// duty-cycled runtime service thread whose cache footprint does not
	// count as an LLC sharer.
	if s.ThreadsOnCore < 1 || s.ActiveCores < 1 || s.ThreadsTotal < 1 {
		return fmt.Errorf("mem: share counts must be >= 1: %+v", s)
	}
	return nil
}

// EffectiveCacheKB returns the cache capacity available to one thread
// under the given sharing.
func (h Hierarchy) EffectiveCacheKB(s Share) (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	return h.L2KBPerCore/float64(s.ThreadsOnCore) + h.LLCKB/float64(s.ThreadsTotal), nil
}

// MissPerInstr returns the per-instruction DRAM miss rate for a thread
// with the given raw MPKI and working set under the given cache sharing.
// The raw MPKI is attenuated toward the compulsory floor as the working
// set fits into the thread's cache share.
func (h Hierarchy) MissPerInstr(mpki, workingSetKB float64, s Share) (float64, error) {
	if mpki < 0 {
		return 0, errors.New("mem: negative MPKI")
	}
	if workingSetKB <= 0 {
		return 0, errors.New("mem: working set must be positive")
	}
	share, err := h.EffectiveCacheKB(s)
	if err != nil {
		return 0, err
	}
	attenuation := 1.0
	if share >= workingSetKB {
		attenuation = compulsoryFrac
	} else {
		// Linear capacity-miss model between the compulsory floor and
		// the full miss rate.
		attenuation = compulsoryFrac + (1-compulsoryFrac)*(1-share/workingSetKB)
	}
	return mpki / 1000 * attenuation, nil
}

// StallCPI returns the memory stall cycles per instruction at the given
// clock: misses cost LatencyNs each, converted to cycles at clockGHz, with
// the hierarchy's MLP overlap subtracted. mlpFactor scales how much of the
// hierarchy's overlap applies to this workload: dependent pointer-chasing
// misses (managed heaps) overlap poorly (< 1), streaming prefetchable
// misses overlap better (> 1). Zero means the neutral 1.
func (h Hierarchy) StallCPI(missPerInstr, clockGHz, mlpFactor float64) float64 {
	if missPerInstr <= 0 || clockGHz <= 0 {
		return 0
	}
	if mlpFactor == 0 {
		mlpFactor = 1
	}
	hidden := h.MLPHiding * mlpFactor
	if hidden > 0.95 {
		hidden = 0.95
	}
	if hidden < 0 {
		hidden = 0
	}
	return missPerInstr * h.LatencyNs * clockGHz * (1 - hidden)
}

// LineBytes is the transfer size per miss.
const LineBytes = 64

// TrafficGBs returns the DRAM bandwidth demand of threads executing at
// the given aggregate instruction rate (instructions/second) with the
// given per-instruction miss rate.
func (h Hierarchy) TrafficGBs(aggInstrPerSec, missPerInstr float64) float64 {
	return aggInstrPerSec * missPerInstr * LineBytes / 1e9
}

// BandwidthThrottle returns the factor (<= 1) by which execution slows
// when the demanded bandwidth exceeds the sustainable ceiling. memFrac is
// the fraction of execution time already attributable to memory; only
// that portion stretches.
func (h Hierarchy) BandwidthThrottle(demandGBs, memFrac float64) float64 {
	if demandGBs <= h.BandwidthGBs || demandGBs <= 0 {
		return 1
	}
	if memFrac < 0 {
		memFrac = 0
	}
	if memFrac > 1 {
		memFrac = 1
	}
	over := demandGBs/h.BandwidthGBs - 1
	return 1 / (1 + memFrac*over)
}

// FromModel builds a Hierarchy from a processor's model parameters and
// LLC size in bytes.
func FromModel(l2KBPerCore, llcBytes, latencyNs, bwGBs, mlpHiding float64) (Hierarchy, error) {
	h := Hierarchy{
		L2KBPerCore:  l2KBPerCore,
		LLCKB:        llcBytes / 1024,
		LatencyNs:    latencyNs,
		BandwidthGBs: bwGBs,
		MLPHiding:    mlpHiding,
	}
	if err := h.Validate(); err != nil {
		return Hierarchy{}, err
	}
	return h, nil
}
