// Package report renders experiment results as aligned text tables, CSV
// files (the format the paper's companion dataset ships in), and ASCII
// scatter plots for terminal inspection.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table builder.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 render with 2 decimals, ints as integers.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}

// WriteCSV emits the table as CSV, matching the paper's companion-data
// format.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}
