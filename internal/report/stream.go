package report

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"io"
)

// CSVStream writes CSV incrementally: header first, then one row at a
// time. Unlike Table, which buffers every row to compute column widths,
// a stream holds nothing, so a long-running producer (the powerperfd
// dataset endpoint, the full-study generator) can emit rows as they are
// measured. Output is byte-identical to Table.WriteCSV fed the same
// header and rows.
type CSVStream struct {
	cw     *csv.Writer
	ncols  int
	closed bool
}

// NewCSVStream writes the header immediately and returns the stream.
func NewCSVStream(w io.Writer, header ...string) (*CSVStream, error) {
	if len(header) == 0 {
		return nil, errors.New("report: CSV stream needs a header")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return nil, err
	}
	return &CSVStream{cw: cw, ncols: len(header)}, nil
}

// WriteRow appends one row. Row width must match the header: a stream
// cannot pad retroactively the way Table does, so a mismatch is an error
// rather than silent misalignment.
func (s *CSVStream) WriteRow(cells ...string) error {
	if s.closed {
		return errors.New("report: write to closed CSV stream")
	}
	if len(cells) != s.ncols {
		return errors.New("report: CSV row width does not match header")
	}
	return s.cw.Write(cells)
}

// Flush pushes buffered rows to the underlying writer; callers streaming
// over HTTP flush at row-group boundaries so clients see progress.
func (s *CSVStream) Flush() error {
	s.cw.Flush()
	return s.cw.Error()
}

// Close flushes and marks the stream done. Further writes fail.
func (s *CSVStream) Close() error {
	s.closed = true
	s.cw.Flush()
	return s.cw.Error()
}

// JSONStream writes newline-delimited JSON (one document per line), the
// streaming-friendly JSON framing: each record is valid on its own, so a
// consumer can process a partial transfer.
type JSONStream struct {
	enc *json.Encoder
}

// NewJSONStream wraps w as an NDJSON record stream.
func NewJSONStream(w io.Writer) *JSONStream {
	return &JSONStream{enc: json.NewEncoder(w)}
}

// Write emits one record followed by a newline.
func (s *JSONStream) Write(record any) error { return s.enc.Encode(record) }
