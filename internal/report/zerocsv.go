package report

import (
	"errors"
	"io"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// ZeroCSVStream writes CSV byte-identically to encoding/csv's Writer
// (comma separator, LF line endings, the same quoting rules) while
// allocating nothing on the row path: fields append into one reused
// byte buffer, and numbers render through strconv's appenders instead
// of fmt. It exists for the dataset row path, where the classic
// CSVStream's []string rows and fmt.Sprintf cells dominated the
// serving-path allocation profile.
//
// Usage: NewZeroCSVStream writes the header; each row is a sequence of
// Field/Int/FloatG6 calls closed by EndRow, which validates the column
// count against the header. Byte-identity with encoding/csv is pinned
// by TestZeroCSVMatchesEncodingCSV.
type ZeroCSVStream struct {
	w      io.Writer
	buf    []byte
	ncols  int
	col    int
	closed bool
}

// zeroCSVFlushAt bounds the row buffer: EndRow hands the buffer to the
// writer once it grows past this, keeping memory flat on long streams
// while batching small writes.
const zeroCSVFlushAt = 16 << 10

// NewZeroCSVStream writes the header immediately and returns the stream.
func NewZeroCSVStream(w io.Writer, header ...string) (*ZeroCSVStream, error) {
	if len(header) == 0 {
		return nil, errors.New("report: CSV stream needs a header")
	}
	s := &ZeroCSVStream{w: w, ncols: len(header), buf: make([]byte, 0, zeroCSVFlushAt+1024)}
	for _, h := range header {
		s.Field(h)
	}
	return s, s.EndRow()
}

// Field appends one string field, quoting exactly as encoding/csv does.
func (s *ZeroCSVStream) Field(v string) {
	if s.col > 0 {
		s.buf = append(s.buf, ',')
	}
	s.col++
	if !csvNeedsQuotes(v) {
		s.buf = append(s.buf, v...)
		return
	}
	s.buf = append(s.buf, '"')
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '"' {
			s.buf = append(s.buf, '"', '"')
			continue
		}
		s.buf = append(s.buf, c)
	}
	s.buf = append(s.buf, '"')
}

// Int appends one integer field.
func (s *ZeroCSVStream) Int(v int) {
	if s.col > 0 {
		s.buf = append(s.buf, ',')
	}
	s.col++
	s.buf = strconv.AppendInt(s.buf, int64(v), 10)
}

// FloatG6 appends one float rendered as fmt's %.6g — the dataset's
// number format. strconv.AppendFloat with 'g'/6 produces the same bytes
// fmt.Sprintf("%.6g", v) does for every float64, including NaN and the
// infinities (pinned by TestFloatG6MatchesSprintf).
func (s *ZeroCSVStream) FloatG6(v float64) {
	if s.col > 0 {
		s.buf = append(s.buf, ',')
	}
	s.col++
	s.buf = strconv.AppendFloat(s.buf, v, 'g', 6, 64)
}

// EndRow terminates the row, enforcing the header's column count, and
// hands the buffer to the writer when it has grown past the flush bound.
func (s *ZeroCSVStream) EndRow() error {
	if s.closed {
		return errors.New("report: write to closed CSV stream")
	}
	if s.col != s.ncols {
		s.col = 0
		return errors.New("report: CSV row width does not match header")
	}
	s.col = 0
	s.buf = append(s.buf, '\n')
	if len(s.buf) >= zeroCSVFlushAt {
		return s.Flush()
	}
	return nil
}

// Flush writes the buffered rows to the underlying writer; callers
// streaming over HTTP flush at row-group boundaries so clients see
// progress.
func (s *ZeroCSVStream) Flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	_, err := s.w.Write(s.buf)
	s.buf = s.buf[:0]
	return err
}

// Close flushes and marks the stream done. Further writes fail.
func (s *ZeroCSVStream) Close() error {
	s.closed = true
	return s.Flush()
}

// csvNeedsQuotes mirrors encoding/csv's fieldNeedsQuotes for the
// default comma separator without CRLF translation.
func csvNeedsQuotes(f string) bool {
	if f == "" {
		return false
	}
	if f == `\.` {
		return true
	}
	for i := 0; i < len(f); i++ {
		switch f[i] {
		case ',', '"', '\r', '\n':
			return true
		}
	}
	r, _ := utf8.DecodeRuneInString(f)
	return unicode.IsSpace(r)
}
