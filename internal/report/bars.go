package report

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// BarChart renders grouped horizontal bars, the shape of the paper's
// feature-analysis figures (4, 5, 9, 10): one label per comparison, one
// bar per metric.
type BarChart struct {
	Title string
	// Baseline draws a reference mark at this value (1.0 for the ratio
	// figures); zero disables it.
	Baseline float64
	// Width is the bar area in characters (default 48).
	Width int

	labels []string
	series []barSeries
}

type barSeries struct {
	name   string
	values []float64
}

// AddSeries registers a named metric with one value per label. All
// series must be the same length; labels are taken from the first call
// to SetLabels.
func (b *BarChart) AddSeries(name string, values ...float64) {
	vals := make([]float64, len(values))
	copy(vals, values)
	b.series = append(b.series, barSeries{name: name, values: vals})
}

// SetLabels names the comparison groups.
func (b *BarChart) SetLabels(labels ...string) {
	b.labels = append([]string(nil), labels...)
}

// Write renders the chart.
func (b *BarChart) Write(w io.Writer) error {
	if len(b.series) == 0 || len(b.labels) == 0 {
		return errors.New("report: empty bar chart")
	}
	for _, s := range b.series {
		if len(s.values) != len(b.labels) {
			return fmt.Errorf("report: series %q has %d values for %d labels",
				s.name, len(s.values), len(b.labels))
		}
	}
	width := b.Width
	if width <= 0 {
		width = 48
	}
	// Scale to the maximum value (and the baseline, so its mark fits).
	max := b.Baseline
	for _, s := range b.series {
		for _, v := range s.values {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		return errors.New("report: no positive values to plot")
	}
	labelW, nameW := 0, 0
	for _, l := range b.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for _, s := range b.series {
		if len(s.name) > nameW {
			nameW = len(s.name)
		}
	}

	if b.Title != "" {
		if _, err := fmt.Fprintln(w, b.Title); err != nil {
			return err
		}
	}
	baseCol := -1
	if b.Baseline > 0 {
		baseCol = int(b.Baseline / max * float64(width-1))
	}
	for li, label := range b.labels {
		for si, s := range b.series {
			head := strings.Repeat(" ", labelW)
			if si == 0 {
				head = pad(label, labelW)
			}
			v := s.values[li]
			n := int(v / max * float64(width-1))
			if n < 0 {
				n = 0
			}
			bar := []byte(strings.Repeat("#", n) + strings.Repeat(" ", width-n))
			if baseCol >= 0 && baseCol < len(bar) && bar[baseCol] == ' ' {
				bar[baseCol] = '|'
			}
			if _, err := fmt.Fprintf(w, "%s  %s %s %.2f\n",
				head, pad(s.name, nameW), string(bar), v); err != nil {
				return err
			}
		}
		if li < len(b.labels)-1 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	if baseCol >= 0 {
		if _, err := fmt.Fprintf(w, "%s  %s ('|' marks %.2f)\n",
			strings.Repeat(" ", labelW), strings.Repeat(" ", nameW), b.Baseline); err != nil {
			return err
		}
	}
	return nil
}

// String renders the chart to a string.
func (b *BarChart) String() string {
	var sb strings.Builder
	_ = b.Write(&sb)
	return sb.String()
}
