package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Scatter renders an ASCII scatter plot, used by the CLI to sketch the
// paper's figures (power versus TDP, the Pareto frontiers, the historical
// overview) in a terminal.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // plot columns (default 64)
	Height int  // plot rows (default 20)
	LogX   bool // logarithmic x axis (Figures 2 and 11 use log/log)
	LogY   bool

	xs, ys []float64
	marks  []rune
}

// Add places a point with the given mark.
func (s *Scatter) Add(x, y float64, mark rune) {
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
	s.marks = append(s.marks, mark)
}

// Write renders the plot.
func (s *Scatter) Write(w io.Writer) error {
	if len(s.xs) == 0 {
		return errors.New("report: empty scatter plot")
	}
	width, height := s.Width, s.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	tx := func(v float64) (float64, error) {
		if !s.LogX {
			return v, nil
		}
		if v <= 0 {
			return 0, fmt.Errorf("report: non-positive x %v on log axis", v)
		}
		return math.Log10(v), nil
	}
	ty := func(v float64) (float64, error) {
		if !s.LogY {
			return v, nil
		}
		if v <= 0 {
			return 0, fmt.Errorf("report: non-positive y %v on log axis", v)
		}
		return math.Log10(v), nil
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	txs := make([]float64, len(s.xs))
	tys := make([]float64, len(s.ys))
	for i := range s.xs {
		var err error
		if txs[i], err = tx(s.xs[i]); err != nil {
			return err
		}
		if tys[i], err = ty(s.ys[i]); err != nil {
			return err
		}
		minX = math.Min(minX, txs[i])
		maxX = math.Max(maxX, txs[i])
		minY = math.Min(minY, tys[i])
		maxY = math.Max(maxY, tys[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for i := range txs {
		col := int((txs[i] - minX) / (maxX - minX) * float64(width-1))
		row := int((tys[i] - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-row][col] = s.marks[i]
	}

	if s.Title != "" {
		if _, err := fmt.Fprintln(w, s.Title); err != nil {
			return err
		}
	}
	for r, line := range grid {
		label := "         "
		if r == 0 {
			label = fmt.Sprintf("%8.2f ", s.ys[argmaxF(tys)])
		}
		if r == height-1 {
			label = fmt.Sprintf("%8.2f ", s.ys[argminF(tys)])
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%sx: %s [%.2f .. %.2f]  y: %s\n",
		strings.Repeat(" ", 10), s.XLabel, s.xs[argminF(txs)], s.xs[argmaxF(txs)], s.YLabel)
	return err
}

func argminF(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

func argmaxF(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
