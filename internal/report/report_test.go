package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Processor", "Perf", "Watts")
	tbl.AddRowf("Pentium4 (130)", 0.82, 44.1)
	tbl.AddRowf("i7 (45)", 4.46, 47)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + rule + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Processor") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "0.82") || !strings.Contains(lines[2], "44.10") {
		t.Fatalf("row formatting wrong: %q", lines[2])
	}
	// Columns align: "Perf" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "Perf")
	if !strings.HasPrefix(lines[2][idx:], "0.82") {
		t.Fatalf("column misaligned: %q", lines[2])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tbl := NewTable("a", "b", "c")
	tbl.AddRow("only")
	out := tbl.String()
	if !strings.Contains(out, "only") {
		t.Fatal("short row lost")
	}
}

func TestTableAddRowfTypes(t *testing.T) {
	tbl := NewTable("s", "f", "i", "other")
	tbl.AddRowf("str", 1.5, 7, []int{1})
	out := tbl.String()
	for _, want := range []string{"str", "1.50", "7", "[1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("a,b", "1") // embedded comma must be quoted
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "name,value\n") {
		t.Fatalf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Fatalf("comma not quoted: %q", out)
	}
}

func TestScatterBasic(t *testing.T) {
	s := &Scatter{Title: "demo", XLabel: "perf", YLabel: "watts", Width: 20, Height: 5}
	s.Add(1, 10, 'a')
	s.Add(2, 20, 'b')
	s.Add(3, 15, 'c')
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, mark := range []string{"a", "b", "c", "demo", "perf", "watts"} {
		if !strings.Contains(out, mark) {
			t.Errorf("plot missing %q:\n%s", mark, out)
		}
	}
}

func TestScatterLogAxes(t *testing.T) {
	s := &Scatter{LogX: true, LogY: true, Width: 30, Height: 8}
	s.Add(1, 2, 'x')
	s.Add(100, 90, 'y')
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	bad := &Scatter{LogX: true}
	bad.Add(-1, 1, 'z')
	if err := bad.Write(&sb); err == nil {
		t.Fatal("negative value on log axis accepted")
	}
}

func TestScatterEmpty(t *testing.T) {
	s := &Scatter{}
	var sb strings.Builder
	if err := s.Write(&sb); err == nil {
		t.Fatal("empty plot accepted")
	}
}

func TestScatterDegenerateRange(t *testing.T) {
	s := &Scatter{Width: 10, Height: 4}
	s.Add(5, 5, 'p')
	s.Add(5, 5, 'q')
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestBarChartBasic(t *testing.T) {
	b := &BarChart{Title: "Effect of SMT", Baseline: 1.0, Width: 20}
	b.SetLabels("Atom (45)", "i5 (32)")
	b.AddSeries("perf", 1.26, 1.11)
	b.AddSeries("energy", 0.81, 0.92)
	out := b.String()
	for _, want := range []string{"Effect of SMT", "Atom (45)", "perf", "energy", "1.26", "0.92", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Larger values render longer bars.
	lines := strings.Split(out, "\n")
	count := func(s string) int { return strings.Count(s, "#") }
	var perfAtom, perfI5 int
	for _, l := range lines {
		if strings.Contains(l, "perf") {
			if perfAtom == 0 {
				perfAtom = count(l)
			} else {
				perfI5 = count(l)
			}
		}
	}
	if perfAtom <= perfI5 {
		t.Fatalf("bar lengths not ordered: %d vs %d", perfAtom, perfI5)
	}
}

func TestBarChartErrors(t *testing.T) {
	var sb strings.Builder
	empty := &BarChart{}
	if err := empty.Write(&sb); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := &BarChart{}
	bad.SetLabels("a", "b")
	bad.AddSeries("s", 1) // wrong length
	if err := bad.Write(&sb); err == nil {
		t.Fatal("mismatched series accepted")
	}
	zero := &BarChart{}
	zero.SetLabels("a")
	zero.AddSeries("s", 0)
	if err := zero.Write(&sb); err == nil {
		t.Fatal("all-zero chart accepted")
	}
}
