package report

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestZeroCSVMatchesEncodingCSV pins the byte-identity contract: the
// zero-alloc stream must render exactly what encoding/csv renders for
// the same rows, including every quoting edge the stdlib implements.
func TestZeroCSVMatchesEncodingCSV(t *testing.T) {
	rows := [][]string{
		{"configuration", "benchmark", "value"},
		{"4C2T@2.7GHz TB", "avrora", "1.234"},
		{"plain", "with,comma", "with\"quote"},
		{"", " leadingspace", "trailingspace "},
		{"\ttab", "multi\nline", "cr\rhere"},
		{`\.`, `\..`, "."},
		{" nbsp", "unicode ☃", "-1e+06"},
	}

	var want bytes.Buffer
	cw := csv.NewWriter(&want)
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()

	var got bytes.Buffer
	zs, err := NewZeroCSVStream(&got, rows[0]...)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[1:] {
		for _, f := range r {
			zs.Field(f)
		}
		if err := zs.EndRow(); err != nil {
			t.Fatal(err)
		}
	}
	if err := zs.Close(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("zero-alloc CSV diverged from encoding/csv:\ngot:  %q\nwant: %q",
			got.String(), want.String())
	}
}

// TestFloatG6MatchesSprintf pins FloatG6 to fmt's %.6g across the value
// shapes the dataset emits (and the awkward ones it doesn't).
func TestFloatG6MatchesSprintf(t *testing.T) {
	vals := []float64{
		0, 1, -1, 0.5, 2.0 / 3.0, 1e-9, 123456789, 1.0000004,
		3.062282, 66.78151, 0.007315633, 2745, 1e21, -1e-21,
		math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(),
	}
	for _, v := range vals {
		var got bytes.Buffer
		zs, err := NewZeroCSVStream(&got, "v")
		if err != nil {
			t.Fatal(err)
		}
		zs.FloatG6(v)
		if err := zs.EndRow(); err != nil {
			t.Fatal(err)
		}
		if err := zs.Close(); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%.6g", v)
		line := strings.TrimSuffix(strings.Split(got.String(), "\n")[1], "\n")
		if line != want {
			t.Errorf("FloatG6(%v) = %q, want %q", v, line, want)
		}
	}
}

// TestZeroCSVRowPathAllocs asserts the row path itself stays
// allocation-free once the stream is warm: the whole point of the type.
func TestZeroCSVRowPathAllocs(t *testing.T) {
	var sink bytes.Buffer
	zs, err := NewZeroCSVStream(&sink, "a", "b", "c", "d")
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		zs.Field("4C2T@2.7GHz TB")
		zs.Int(5)
		zs.FloatG6(3.062282)
		zs.FloatG6(66.78151)
		if err := zs.EndRow(); err != nil {
			t.Fatal(err)
		}
		sink.Reset()
	})
	if allocs > 0 {
		t.Fatalf("row path allocates %.1f times per row, want 0", allocs)
	}
}

func TestZeroCSVErrors(t *testing.T) {
	if _, err := NewZeroCSVStream(&bytes.Buffer{}); err == nil {
		t.Fatal("empty header accepted")
	}
	var buf bytes.Buffer
	zs, err := NewZeroCSVStream(&buf, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	zs.Field("only-one")
	if err := zs.EndRow(); err == nil {
		t.Fatal("short row accepted")
	}
	if err := zs.Close(); err != nil {
		t.Fatal(err)
	}
	zs.Field("x")
	zs.Field("y")
	if err := zs.EndRow(); err == nil {
		t.Fatal("write after Close accepted")
	}
}
