package report

import (
	"strings"
	"testing"
)

// TestCSVStreamMatchesTable pins the byte-identity contract: a stream fed
// the same header and rows as a buffered Table produces the same CSV.
// The powerperfd dataset endpoint relies on this to serve the committed
// dataset files byte-for-byte.
func TestCSVStreamMatchesTable(t *testing.T) {
	header := []string{"configuration", "benchmark", "watts"}
	rows := [][]string{
		{"i7 (45) 4C2T@2.67GHz+T", "mcf", "21.1317"},
		{"Atom (45) 1C2T@1.7GHz", "with,comma", "2.0659"},
		{"i5 (32) 2C2T@1.2GHz", `with"quote`, "9.4680"},
	}

	tbl := NewTable(header...)
	for _, r := range rows {
		tbl.AddRow(r...)
	}
	var want strings.Builder
	if err := tbl.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	var got strings.Builder
	s, err := NewCSVStream(&got, header...)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := s.WriteRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("stream output differs from Table.WriteCSV:\n%q\nvs\n%q", got.String(), want.String())
	}
}

func TestCSVStreamErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := NewCSVStream(&sb); err == nil {
		t.Fatal("headerless stream accepted")
	}
	s, err := NewCSVStream(&sb, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRow("only-one"); err == nil {
		t.Fatal("short row accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRow("x", "y"); err == nil {
		t.Fatal("write after Close accepted")
	}
}

func TestJSONStreamNDJSON(t *testing.T) {
	var sb strings.Builder
	js := NewJSONStream(&sb)
	type rec struct {
		Name  string  `json:"name"`
		Watts float64 `json:"watts"`
	}
	if err := js.Write(rec{"mcf", 21.25}); err != nil {
		t.Fatal(err)
	}
	if err := js.Write(rec{"jess", 27.26}); err != nil {
		t.Fatal(err)
	}
	want := "{\"name\":\"mcf\",\"watts\":21.25}\n{\"name\":\"jess\",\"watts\":27.26}\n"
	if sb.String() != want {
		t.Fatalf("NDJSON output %q, want %q", sb.String(), want)
	}
}
