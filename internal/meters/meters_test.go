package meters

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPSUValidation(t *testing.T) {
	if err := (PSU{RatedWatts: 400, PeakEfficiency: 0.82}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PSU{
		{RatedWatts: 0, PeakEfficiency: 0.8},
		{RatedWatts: 400, PeakEfficiency: 0},
		{RatedWatts: 400, PeakEfficiency: 1.2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad PSU validated", i)
		}
	}
}

func TestPSUEfficiencyCurve(t *testing.T) {
	psu := PSU{RatedWatts: 400, PeakEfficiency: 0.82}
	light, err := psu.Efficiency(20)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := psu.Efficiency(200)
	if err != nil {
		t.Fatal(err)
	}
	full, err := psu.Efficiency(400)
	if err != nil {
		t.Fatal(err)
	}
	if !(light < mid && full < mid) {
		t.Fatalf("efficiency curve not peaked: %v / %v / %v", light, mid, full)
	}
	if math.Abs(mid-0.82) > 1e-9 {
		t.Fatalf("peak efficiency = %v, want 0.82 at half load", mid)
	}
	if _, err := psu.Efficiency(0); err == nil {
		t.Fatal("zero load accepted")
	}
	// Over-rated loads clamp rather than explode.
	over, err := psu.Efficiency(1000)
	if err != nil {
		t.Fatal(err)
	}
	if over <= 0 || over > 0.82 {
		t.Fatalf("over-rated efficiency = %v", over)
	}
}

func TestACWattsAboveDC(t *testing.T) {
	psu := PSU{RatedWatts: 400, PeakEfficiency: 0.82}
	ac, err := psu.ACWatts(100)
	if err != nil {
		t.Fatal(err)
	}
	if ac <= 100 {
		t.Fatalf("AC %v not above DC 100 (conversion loss missing)", ac)
	}
}

func TestClampAmmeterDilutesChipPower(t *testing.T) {
	clamp := ClampAmmeter{Sys: DefaultSystem()}
	// An Atom-class chip disappears into the system floor...
	fracAtom, err := clamp.ChipFraction(2.4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if fracAtom > 0.06 {
		t.Fatalf("Atom chip fraction = %v, want tiny", fracAtom)
	}
	// ...while an i7-class chip is still under half the wall reading.
	fracI7, err := clamp.ChipFraction(60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fracI7 < 0.3 || fracI7 > 0.6 {
		t.Fatalf("i7 chip fraction = %v, want ~0.4-0.5", fracI7)
	}
	// A 2x chip-power difference shows up as much less at the wall: the
	// paper's reason for isolating the processor rail.
	sysA, err := clamp.SystemWatts(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := clamp.SystemWatts(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := sysB / sysA; ratio > 1.6 {
		t.Fatalf("wall ratio %v for a 2.0x chip difference: no dilution", ratio)
	}
}

func TestClampAmmeterTrafficCounts(t *testing.T) {
	clamp := ClampAmmeter{Sys: DefaultSystem()}
	quiet, err := clamp.SystemWatts(30, 0)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := clamp.SystemWatts(30, 10)
	if err != nil {
		t.Fatal(err)
	}
	if busy <= quiet {
		t.Fatal("DRAM traffic must add wall power")
	}
}

func TestClampAmmeterErrors(t *testing.T) {
	clamp := ClampAmmeter{Sys: DefaultSystem()}
	if _, err := clamp.SystemWatts(0, 0); err == nil {
		t.Fatal("zero chip power accepted")
	}
	if _, err := clamp.SystemWatts(10, -1); err == nil {
		t.Fatal("negative traffic accepted")
	}
	bad := ClampAmmeter{}
	if _, err := bad.SystemWatts(10, 0); err == nil {
		t.Fatal("invalid system accepted")
	}
}

func TestSeriesResistor(t *testing.T) {
	sr := SeriesResistor{ShuntOhms: 0.01}
	reading, loss, err := sr.Measured(48) // 4A on the 12V rail
	if err != nil {
		t.Fatal(err)
	}
	if reading != 48 {
		t.Fatalf("reading = %v, want the chip power", reading)
	}
	// 4A through 10 mOhm dissipates 160 mW.
	if math.Abs(loss-0.16) > 1e-9 {
		t.Fatalf("shunt loss = %v, want 0.16", loss)
	}
	if _, _, err := sr.Measured(0); err == nil {
		t.Fatal("zero power accepted")
	}
	if _, _, err := (SeriesResistor{}).Measured(48); err == nil {
		t.Fatal("zero shunt accepted")
	}
}

// Property: the wall reading is monotone in chip power and always above
// the DC sum.
func TestQuickWallMonotone(t *testing.T) {
	clamp := ClampAmmeter{Sys: DefaultSystem()}
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%120) + 1
		b := float64(bRaw%120) + 1
		if a > b {
			a, b = b, a
		}
		wa, err1 := clamp.SystemWatts(a, 1)
		wb, err2 := clamp.SystemWatts(b, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return wa <= wb+1e-9 && wa > a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
