// Package meters models the alternative power-measurement methodologies
// the paper contrasts with its own on-chip approach (Section 5):
//
//   - whole-system AC measurement with a clamp ammeter (Isci &
//     Martonosi; Le Sueur & Heiser; Fan et al.), which folds the power
//     supply's conversion loss, the motherboard, DRAM, fans, and disks
//     into every reading; and
//   - a series shunt resistor on the processor rail sampled at 1 kHz
//     (Bircher & John), which measures the same rail as the paper's Hall
//     sensor but by a different mechanism.
//
// The paper isolates the processor's own 12 V rail precisely because
// whole-system numbers hide chip-level trends; this package makes that
// argument quantitative on the simulated fleet.
package meters

import (
	"errors"
	"fmt"
)

// PSU models a switching power supply's load-dependent efficiency: poor
// at light load, peaking near 80-90% in the middle of its range — the
// classic efficiency curve of the pre-80plus units in the paper's
// machines.
type PSU struct {
	// RatedWatts is the supply's DC capacity.
	RatedWatts float64
	// PeakEfficiency is the best-case conversion efficiency (0..1).
	PeakEfficiency float64
}

// Validate checks the PSU parameters.
func (p PSU) Validate() error {
	if p.RatedWatts <= 0 {
		return errors.New("meters: PSU rating must be positive")
	}
	if p.PeakEfficiency <= 0 || p.PeakEfficiency > 1 {
		return errors.New("meters: PSU efficiency outside (0,1]")
	}
	return nil
}

// Efficiency returns conversion efficiency at the given DC load. The
// curve rises steeply from light load, peaks around half rating, and
// rolls off gently toward full load.
func (p PSU) Efficiency(dcWatts float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if dcWatts <= 0 {
		return 0, errors.New("meters: non-positive DC load")
	}
	load := dcWatts / p.RatedWatts
	if load > 1 {
		load = 1
	}
	// Quadratic around the peak at 50% load: eff = peak - k*(load-0.5)^2,
	// floored well below peak at the extremes.
	eff := p.PeakEfficiency - 0.5*p.PeakEfficiency*(load-0.5)*(load-0.5)
	min := p.PeakEfficiency * 0.55
	if eff < min {
		eff = min
	}
	return eff, nil
}

// ACWatts returns the wall power drawn for a DC load.
func (p PSU) ACWatts(dcWatts float64) (float64, error) {
	eff, err := p.Efficiency(dcWatts)
	if err != nil {
		return 0, err
	}
	return dcWatts / eff, nil
}

// System describes everything on the DC side other than the processor,
// the components a whole-system measurement cannot separate out.
type System struct {
	PSU PSU
	// BoardWatts is the motherboard's chipset, VRM loss, and glue.
	BoardWatts float64
	// DRAMIdleWatts is the memory subsystem's standing power.
	DRAMIdleWatts float64
	// DRAMWattsPerGBs is the activation/IO power per GB/s of traffic.
	DRAMWattsPerGBs float64
	// FanDiskWatts covers fans and storage.
	FanDiskWatts float64
}

// Validate checks the system parameters.
func (s System) Validate() error {
	if err := s.PSU.Validate(); err != nil {
		return err
	}
	if s.BoardWatts < 0 || s.DRAMIdleWatts < 0 || s.DRAMWattsPerGBs < 0 || s.FanDiskWatts < 0 {
		return errors.New("meters: negative system component power")
	}
	return nil
}

// DefaultSystem returns a desktop system plausible for the paper's era,
// sized so the non-processor floor is a few tens of watts.
func DefaultSystem() System {
	return System{
		PSU:             PSU{RatedWatts: 400, PeakEfficiency: 0.82},
		BoardWatts:      28,
		DRAMIdleWatts:   6,
		DRAMWattsPerGBs: 1.1,
		FanDiskWatts:    14,
	}
}

// ClampAmmeter is the whole-system AC methodology.
type ClampAmmeter struct {
	Sys System
}

// SystemWatts converts a chip power and memory traffic level into the
// AC reading a clamp ammeter reports.
func (c ClampAmmeter) SystemWatts(chipWatts, trafficGBs float64) (float64, error) {
	if err := c.Sys.Validate(); err != nil {
		return 0, err
	}
	if chipWatts <= 0 || trafficGBs < 0 {
		return 0, fmt.Errorf("meters: bad load chip=%v traffic=%v", chipWatts, trafficGBs)
	}
	dc := chipWatts + c.Sys.BoardWatts + c.Sys.DRAMIdleWatts +
		c.Sys.DRAMWattsPerGBs*trafficGBs + c.Sys.FanDiskWatts
	return c.Sys.PSU.ACWatts(dc)
}

// ChipFraction reports what fraction of the AC reading the chip itself
// contributes — the quantity that determines how badly whole-system
// measurement dilutes chip-level effects.
func (c ClampAmmeter) ChipFraction(chipWatts, trafficGBs float64) (float64, error) {
	sys, err := c.SystemWatts(chipWatts, trafficGBs)
	if err != nil {
		return 0, err
	}
	return chipWatts / sys, nil
}

// SeriesResistor is the shunt-on-the-rail methodology of Bircher & John:
// same rail as the paper's Hall sensor, but the shunt inserts a small
// series loss and its 1 kHz sampling sees a slightly different average
// on phase-heavy workloads (modeled as a fixed small bias).
type SeriesResistor struct {
	// ShuntOhms is the sense resistance on the 12 V rail.
	ShuntOhms float64
}

// Measured returns the chip power a shunt-based meter reports, and the
// power dissipated in the shunt itself.
func (s SeriesResistor) Measured(chipWatts float64) (reading, shuntLoss float64, err error) {
	if s.ShuntOhms <= 0 {
		return 0, 0, errors.New("meters: shunt resistance must be positive")
	}
	if chipWatts <= 0 {
		return 0, 0, errors.New("meters: non-positive chip power")
	}
	const rail = 12.0
	amps := chipWatts / rail
	shuntLoss = amps * amps * s.ShuntOhms
	// The shunt sits upstream of the chip: the meter integrates the
	// true chip current, so the reading tracks chip power closely; the
	// loss itself is the methodology's perturbation.
	return chipWatts, shuntLoss, nil
}
