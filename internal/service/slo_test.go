package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/slo"
	"repro/internal/telemetry"
)

// sloTestOptions compresses the SLO windows so a unit test can walk
// burn rates without waiting on wall-clock minutes.
func sloTestOptions(threshold time.Duration) Options {
	return Options{
		Seed: 42,
		SLO: &slo.Config{
			Objectives: []slo.Objective{
				{Name: SLOLatency, Kind: slo.KindLatency, Target: 0.99, LatencyThreshold: threshold},
				{Name: SLOAvailability, Kind: slo.KindAvailability, Target: 0.95},
			},
			Resolution:   10 * time.Millisecond,
			BudgetWindow: time.Minute,
			FastShort:    50 * time.Millisecond,
			FastLong:     200 * time.Millisecond,
			SlowShort:    time.Second,
			SlowLong:     2 * time.Second,
		},
	}
}

// TestSlozEndpointAndMiddlewareFeed: traffic through the observe
// middleware lands in the SLO engine and comes back out of /v1/sloz.
func TestSlozEndpointAndMiddlewareFeed(t *testing.T) {
	srv := NewServer(sloTestOptions(2 * time.Second))
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// API traffic (counts), monitoring-plane traffic (must not).
	for i := 0; i < 5; i++ {
		if st, _ := get(t, ts.URL+"/v1/experiments"); st != http.StatusOK {
			t.Fatalf("experiments status %d", st)
		}
		get(t, ts.URL+"/healthz")
	}
	// A 4xx is still "available" (the server answered).
	if st, _ := postMeasure(t, ts.URL, `{"cells":[{"benchmark":"nope","processor":"nope"}]}`); st != http.StatusBadRequest {
		t.Fatalf("bad cell status %d", st)
	}

	st, body := get(t, ts.URL+"/v1/sloz")
	if st != http.StatusOK {
		t.Fatalf("sloz status %d: %s", st, body)
	}
	var snap slo.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("sloz unparseable: %v", err)
	}
	var avail *slo.ObjectiveStatus
	for i := range snap.Objectives {
		if snap.Objectives[i].Name == SLOAvailability {
			avail = &snap.Objectives[i]
		}
	}
	if avail == nil {
		t.Fatalf("availability objective missing: %s", body)
	}
	// 5 experiments + 1 measure = 6 observed; healthz and sloz reads are
	// monitoring plane and must not count.
	if avail.Total != 6 {
		t.Fatalf("availability total = %d, want 6 (monitoring plane leaked in?)", avail.Total)
	}
	if avail.Good != 6 {
		t.Fatalf("availability good = %d (a 4xx must not burn budget)", avail.Good)
	}

	// /metricsz carries the slo_* gauges and stays lint-clean with them.
	st, page := get(t, ts.URL+"/metricsz")
	if st != http.StatusOK {
		t.Fatalf("metricsz status %d", st)
	}
	text := string(page)
	for _, want := range []string{"slo_error_budget_remaining{objective=", "slo_burn_rate{objective=", "slo_alert_state{objective="} {
		if !strings.Contains(text, want) {
			t.Fatalf("metricsz missing %q", want)
		}
	}
	if problems := telemetry.LintPrometheus(text); len(problems) != 0 {
		t.Fatalf("metricsz with SLO gauges fails lint: %v", problems)
	}
}

// TestMeasureLatencyExemplarFlow: a slow measure request burns the
// latency SLO and leaves an exemplar whose trace resolves at
// /v1/traces — the page-to-trace link the burn alerts promise.
func TestMeasureLatencyExemplarFlow(t *testing.T) {
	opts := sloTestOptions(time.Nanosecond) // every request breaches
	srv := NewServer(opts)
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if st, body := postMeasure(t, ts.URL, `{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`); st != http.StatusOK {
		t.Fatalf("measure status %d: %s", st, body)
	}

	snap := srv.SLOEngine().Snapshot(time.Now())
	var lat *slo.ObjectiveStatus
	for i := range snap.Objectives {
		if snap.Objectives[i].Name == SLOLatency {
			lat = &snap.Objectives[i]
		}
	}
	if lat == nil || lat.Total == 0 {
		t.Fatalf("latency objective not fed: %+v", snap.Objectives)
	}
	if len(lat.Exemplars) == 0 {
		t.Fatal("latency breach left no exemplar")
	}
	trace := lat.Exemplars[0].TraceID
	if trace == "" {
		t.Fatal("exemplar has empty trace id")
	}
	st, body := get(t, ts.URL+"/v1/traces?trace="+trace)
	if st != http.StatusOK {
		t.Fatalf("traces status %d", st)
	}
	if !strings.Contains(string(body), "http.measure") {
		t.Fatalf("exemplar trace %s does not resolve to the measure span: %s", trace, body)
	}

	// The same trace id must appear as an OpenMetrics exemplar on the
	// http latency histogram.
	_, page := get(t, ts.URL+"/metricsz")
	if !strings.Contains(string(page), `# {trace_id="`+trace+`"`) {
		// Another measure-family request may have overwritten the slot;
		// any trace_id exemplar on the family is still proof of wiring.
		if !strings.Contains(string(page), "# {trace_id=") {
			t.Fatalf("metricsz carries no exemplars:\n%.2000s", page)
		}
	}
}

// TestSlozAbsentWithoutConfig: no Options.SLO, no /v1/sloz route, no
// slo_* gauges — the feature is strictly opt-in.
func TestSlozAbsentWithoutConfig(t *testing.T) {
	srv, ts := testServer(t)
	if srv.SLOEngine() != nil {
		t.Fatal("engine attached without config")
	}
	st, _ := get(t, ts.URL+"/v1/sloz")
	if st != http.StatusNotFound {
		t.Fatalf("sloz without engine: status %d", st)
	}
	_, page := get(t, ts.URL+"/metricsz")
	if strings.Contains(string(page), "slo_error_budget_remaining") {
		t.Fatal("slo gauges leaked into an engine-less daemon")
	}
}

// TestTailSamplingThinsTraces: with a tail policy, healthy traces are
// sampled while slow ones survive.
func TestTailSamplingThinsTraces(t *testing.T) {
	opts := Options{
		Seed: 42,
		TailSampling: &telemetry.TailPolicy{
			SlowSpan:   time.Hour, // nothing is slow
			KeepErrors: true,
			SampleRate: 0, // drop every healthy trace
		},
	}
	srv := NewServer(opts)
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 8; i++ {
		get(t, ts.URL+"/v1/experiments")
	}
	kept, dropped := srv.Tracer().TailStats()
	if dropped == 0 {
		t.Fatalf("tail sampler dropped nothing (kept=%d dropped=%d)", kept, dropped)
	}
	if kept != 0 {
		t.Fatalf("healthy traces kept at rate 0 (kept=%d)", kept)
	}
}
