package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrDraining is returned for work submitted after shutdown began.
var ErrDraining = errors.New("service: draining, not accepting new work")

// lane selects a work-pool priority class. Interactive work (ad-hoc
// /v1/measure requests, experiment fills) is dequeued before bulk work
// (study traffic from the cluster scheduler), so a human poking one cell
// is never stuck behind a five-thousand-cell study. Preemption is at
// dequeue granularity: a bulk cell already executing runs to completion,
// but every idle worker drains the interactive lane dry before touching
// the bulk lane again.
type lane int

const (
	laneInteractive lane = iota
	laneBulk
	laneCount
)

// workPool executes submitted closures on a fixed set of workers fed by
// two bounded queues, one per priority lane. The queue bounds are the
// daemon's admission control: when a lane is full, DoLane blocks with
// the caller's context, so overload turns into request latency (and
// eventually client timeouts) rather than unbounded goroutine or memory
// growth.
type workPool struct {
	queues [laneCount]chan func()
	wg     sync.WaitGroup

	mu       sync.RWMutex
	draining bool

	inflight atomic.Int64 // closures currently executing
	workers  int
}

func newWorkPool(workers, depth int) *workPool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &workPool{workers: workers}
	for l := range p.queues {
		p.queues[l] = make(chan func(), depth)
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.work()
	}
	return p
}

// work is one worker: a biased two-lane consumer. The non-blocking
// first select gives the interactive lane strict priority whenever it
// has work; only an empty interactive lane lets the worker block on
// both. A closed, drained lane reads as ok=false and is retired by
// nilling its channel (a nil channel case is never ready in a select),
// so the worker exits once both lanes are closed and empty.
func (p *workPool) work() {
	defer p.wg.Done()
	qi, qb := p.queues[laneInteractive], p.queues[laneBulk]
	run := func(fn func()) {
		p.inflight.Add(1)
		fn()
		p.inflight.Add(-1)
	}
	for qi != nil || qb != nil {
		select {
		case fn, ok := <-qi:
			if !ok {
				qi = nil
				continue
			}
			run(fn)
			continue
		default:
		}
		select {
		case fn, ok := <-qi:
			if !ok {
				qi = nil
				continue
			}
			run(fn)
		case fn, ok := <-qb:
			if !ok {
				qb = nil
				continue
			}
			run(fn)
		}
	}
}

type poolResult struct {
	val any
	err error
}

// doneChans recycles Do's single-use result channels. A channel is
// returned to the pool only on paths where no send can still be
// pending: after the result is received, or when the task was never
// enqueued (ctx expired first), so a recycled channel is always empty.
var doneChans = sync.Pool{New: func() any { return make(chan poolResult, 1) }}

// Do runs fn on the interactive lane; see DoLane.
func (p *workPool) Do(ctx context.Context, fn func() (any, error)) (any, error) {
	return p.DoLane(ctx, laneInteractive, fn)
}

// DoLane runs fn on the pool's given lane and waits for its result.
// Enqueueing respects ctx (a caller can give up while the queue is
// full); once enqueued the closure always runs to completion and DoLane
// waits for it — the fills this pool exists for are deterministic and
// cacheable, so abandoning one mid-flight would only waste the work.
func (p *workPool) DoLane(ctx context.Context, l lane, fn func() (any, error)) (any, error) {
	done := doneChans.Get().(chan poolResult)
	task := func() {
		val, err := fn()
		done <- poolResult{val, err}
	}

	// The read lock is held across the (possibly blocking) send: Close
	// closes the queues only under the write lock, which it cannot take
	// while any sender is in flight, so a send on a closed channel is
	// impossible. Readers do not starve each other, and the workers keep
	// consuming, so a full queue resolves to space or to ctx expiry.
	p.mu.RLock()
	if p.draining {
		p.mu.RUnlock()
		doneChans.Put(done)
		return nil, ErrDraining
	}
	select {
	case p.queues[l] <- task:
		p.mu.RUnlock()
	case <-ctx.Done():
		p.mu.RUnlock()
		doneChans.Put(done)
		return nil, ctx.Err()
	}
	r := <-done
	doneChans.Put(done)
	return r.val, r.err
}

// QueueDepth reports queued (not yet executing) tasks across both lanes.
func (p *workPool) QueueDepth() int {
	return len(p.queues[laneInteractive]) + len(p.queues[laneBulk])
}

// LaneDepth reports queued tasks in one lane.
func (p *workPool) LaneDepth(l lane) int { return len(p.queues[l]) }

// Inflight reports closures currently executing.
func (p *workPool) Inflight() int64 { return p.inflight.Load() }

// Close drains the pool: new DoLane calls fail with ErrDraining, queued
// and in-flight closures run to completion, then the workers exit.
func (p *workPool) Close() {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return
	}
	p.draining = true
	for _, q := range p.queues {
		close(q)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
