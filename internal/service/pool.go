package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrDraining is returned for work submitted after shutdown began.
var ErrDraining = errors.New("service: draining, not accepting new work")

// workPool executes submitted closures on a fixed set of workers fed by
// a bounded queue. The queue bound is the daemon's admission control:
// when it is full, Do blocks with the caller's context, so overload
// turns into request latency (and eventually client timeouts) rather
// than unbounded goroutine or memory growth.
type workPool struct {
	queue chan func()
	wg    sync.WaitGroup

	mu       sync.RWMutex
	draining bool

	inflight atomic.Int64 // closures currently executing
	workers  int
}

func newWorkPool(workers, depth int) *workPool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &workPool{queue: make(chan func(), depth), workers: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				p.inflight.Add(1)
				fn()
				p.inflight.Add(-1)
			}
		}()
	}
	return p
}

type poolResult struct {
	val any
	err error
}

// doneChans recycles Do's single-use result channels. A channel is
// returned to the pool only on paths where no send can still be
// pending: after the result is received, or when the task was never
// enqueued (ctx expired first), so a recycled channel is always empty.
var doneChans = sync.Pool{New: func() any { return make(chan poolResult, 1) }}

// Do runs fn on the pool and waits for its result. Enqueueing respects
// ctx (a caller can give up while the queue is full); once enqueued the
// closure always runs to completion and Do waits for it — the fills this
// pool exists for are deterministic and cacheable, so abandoning one
// mid-flight would only waste the work.
func (p *workPool) Do(ctx context.Context, fn func() (any, error)) (any, error) {
	done := doneChans.Get().(chan poolResult)
	task := func() {
		val, err := fn()
		done <- poolResult{val, err}
	}

	// The read lock is held across the (possibly blocking) send: Close
	// closes the queue only under the write lock, which it cannot take
	// while any sender is in flight, so a send on a closed channel is
	// impossible. Readers do not starve each other, and the workers keep
	// consuming, so a full queue resolves to space or to ctx expiry.
	p.mu.RLock()
	if p.draining {
		p.mu.RUnlock()
		doneChans.Put(done)
		return nil, ErrDraining
	}
	select {
	case p.queue <- task:
		p.mu.RUnlock()
	case <-ctx.Done():
		p.mu.RUnlock()
		doneChans.Put(done)
		return nil, ctx.Err()
	}
	r := <-done
	doneChans.Put(done)
	return r.val, r.err
}

// QueueDepth reports queued (not yet executing) tasks.
func (p *workPool) QueueDepth() int { return len(p.queue) }

// Inflight reports closures currently executing.
func (p *workPool) Inflight() int64 { return p.inflight.Load() }

// Close drains the pool: new Do calls fail with ErrDraining, queued and
// in-flight closures run to completion, then the workers exit.
func (p *workPool) Close() {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return
	}
	p.draining = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}
