package service

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// handleMetricsz renders the server counters in the Prometheus text
// exposition format, so cluster tests and fleet operators can scrape
// backend load with stock tooling. Families are emitted in a fixed
// order; everything here is also in /statsz as JSON.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	var b strings.Builder

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
	}

	// Build identity first: one constant-1 gauge whose labels carry the
	// version stamp, the stock Prometheus idiom for joining every other
	// series to the code that produced it.
	bi := telemetry.BuildInfo()
	name := "powerperf_build_info"
	fmt.Fprintf(&b, "# HELP %s Build identity of this process; the value is always 1.\n# TYPE %s gauge\n", name, name)
	fmt.Fprintf(&b, "%s{version=%s,commit=%s,go=%s} 1\n",
		name, telemetry.PromQuote(bi.Version), telemetry.PromQuote(bi.Commit), telemetry.PromQuote(bi.GoVersion))

	gauge("powerperfd_uptime_seconds", "Seconds since the daemon started.", st.UptimeS)
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	gauge("powerperfd_draining", "1 while graceful shutdown is in progress.", draining)

	counter("powerperfd_cache_hits_total", "Measure cells served from a completed cache entry.", st.Cache.Hits)
	counter("powerperfd_cache_misses_total", "Measure cell fills started.", st.Cache.Misses)
	counter("powerperfd_cache_coalesced_total", "Measure cells that waited on another requester's fill (duplicate suppression).", st.Cache.Coalesced)
	counter("powerperfd_cache_evictions_total", "Completed cache entries evicted by the LRU bound.", st.Cache.Evictions)
	gauge("powerperfd_cache_entries", "Resident cache entries.", float64(st.Cache.Entries))
	gauge("powerperfd_cache_capacity", "Cache capacity in cells.", float64(st.Cache.Capacity))

	name = "powerperfd_cache_shard_entries"
	fmt.Fprintf(&b, "# HELP %s Resident entries per cache shard.\n# TYPE %s gauge\n", name, name)
	for i, l := range st.Cache.Shards {
		fmt.Fprintf(&b, "%s{shard=\"%d\"} %d\n", name, i, l)
	}

	gauge("powerperfd_queue_depth", "Measurement tasks queued, not yet executing.", float64(st.Queue.Depth))
	gauge("powerperfd_queue_capacity", "Bounded measurement queue capacity.", float64(st.Queue.Capacity))
	gauge("powerperfd_inflight_workers", "Measurement closures currently executing.", float64(st.Queue.Inflight))
	gauge("powerperfd_workers", "Measurement worker count.", float64(st.Queue.Workers))

	name = "powerperfd_requests_total"
	fmt.Fprintf(&b, "# HELP %s Requests per endpoint family.\n# TYPE %s counter\n", name, name)
	fmt.Fprintf(&b, "%s{endpoint=\"measure\"} %d\n", name, st.Requests.Measure)
	fmt.Fprintf(&b, "%s{endpoint=\"experiments\"} %d\n", name, st.Requests.Experiments)
	fmt.Fprintf(&b, "%s{endpoint=\"dataset\"} %d\n", name, st.Requests.Dataset)

	// Latency distributions: every histogram family in the process-global
	// registry (cell fills, harness batches/cells, HTTP request times,
	// cluster per-backend exchanges when a coordinator shares the
	// process) renders as a Prometheus histogram after the counters.
	telemetry.Default.WritePrometheus(&b)

	// SLO state last: error budgets, burn rates, and alert states per
	// objective, which the fleet monitor federates onto the dashboard.
	// Rendering advances the engine, so scrapes double as its clock.
	if s.sloEng != nil {
		s.sloEng.WriteMetrics(&b, time.Now())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
