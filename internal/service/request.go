package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/counters"
	"repro/internal/proc"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MaxCells bounds one measure request to two full study grids: enough to
// regenerate the whole dataset in one call, small enough that a single
// request cannot queue unbounded work.
const MaxCells = 2 * 45 * 61

// ConfigJSON is the wire form of a BIOS-style hardware configuration.
type ConfigJSON struct {
	Cores    int     `json:"cores"`
	SMTWays  int     `json:"smt"`
	ClockGHz float64 `json:"clock_ghz"`
	Turbo    bool    `json:"turbo"`
}

// CellRequest names one measurement cell. A nil Config selects the
// processor's stock configuration.
type CellRequest struct {
	Benchmark string      `json:"benchmark"`
	Processor string      `json:"processor"`
	Config    *ConfigJSON `json:"config,omitempty"`
}

// MeasureRequest is the POST /v1/measure body: a batch of cells measured
// under one study seed. A nil Seed selects the daemon's seed. Detail
// selects the response shape: "" or "summary" returns the aggregated
// outputs only; "full" additionally returns every run sample, the mean
// counters, and both confidence intervals — enough for a client to
// reconstruct the harness Measurement bit-identically. Lane selects the
// worker-pool priority class: "" or "interactive" for ad-hoc requests,
// "bulk" for study traffic that must yield to interactive callers.
type MeasureRequest struct {
	Seed   *int64        `json:"seed,omitempty"`
	Detail string        `json:"detail,omitempty"`
	Lane   string        `json:"lane,omitempty"`
	Cells  []CellRequest `json:"cells"`
}

// DetailFull requests the reconstruction-grade response shape.
const DetailFull = "full"

// Wire lane names. The scheduler marks its study traffic LaneBulk so a
// human poking one cell preempts a five-thousand-cell study at the
// backend's dequeue point.
const (
	LaneInteractive = "interactive"
	LaneBulk        = "bulk"
)

// CellResult is one measured cell as served to clients: the request
// identity echoed back (with the resolved configuration) plus the
// aggregated methodology outputs. Field order is fixed, so two servers
// answering the same request produce byte-identical JSON. Full is only
// populated for detail=full requests; Go's JSON float encoding is
// shortest-round-trip, so the float64s a full-detail client decodes are
// bit-identical to the ones the backend measured.
type CellResult struct {
	Benchmark  string      `json:"benchmark"`
	Processor  string      `json:"processor"`
	Config     ConfigJSON  `json:"config"`
	Suite      string      `json:"suite"`
	Group      string      `json:"group"`
	Runs       int         `json:"runs"`
	Seconds    float64     `json:"seconds"`
	Watts      float64     `json:"watts"`
	EnergyJ    float64     `json:"energy_j"`
	TimeCIRel  float64     `json:"time_ci_rel"`
	PowerCIRel float64     `json:"power_ci_rel"`
	Full       *CellDetail `json:"full,omitempty"`
}

// CellDetail is the reconstruction-grade tail of a full-detail cell: the
// complete methodology output beyond the summary fields.
type CellDetail struct {
	RunSamples []RunJSON    `json:"run_samples"`
	Counters   CountersJSON `json:"counters"`
	TimeCI     CIJSON       `json:"time_ci"`
	PowerCI    CIJSON       `json:"power_ci"`
}

// RunJSON is one measured invocation on the wire.
type RunJSON struct {
	Seconds  float64      `json:"seconds"`
	Watts    float64      `json:"watts"`
	Counters CountersJSON `json:"counters"`
}

// CountersJSON is the wire form of the architectural event counters.
type CountersJSON struct {
	Cycles              float64 `json:"cycles"`
	Instructions        float64 `json:"instructions"`
	AppInstructions     float64 `json:"app_instructions"`
	ServiceInstructions float64 `json:"service_instructions"`
	LLCMisses           float64 `json:"llc_misses"`
	DTLBMisses          float64 `json:"dtlb_misses"`
	BranchInstructions  float64 `json:"branch_instructions"`
}

// CIJSON is the wire form of a confidence interval.
type CIJSON struct {
	Mean  float64 `json:"mean"`
	Half  float64 `json:"half"`
	Level float64 `json:"level"`
	N     int     `json:"n"`
}

// MeasureResponse is the POST /v1/measure reply, cells in request order.
type MeasureResponse struct {
	Seed  int64        `json:"seed"`
	Cells []CellResult `json:"cells"`
}

// cell is a validated, resolved measurement cell.
type cell struct {
	bench *workload.Benchmark
	cp    proc.ConfiguredProcessor
}

// DecodeMeasureRequest strictly parses and validates a measure request
// body: unknown fields are rejected, every cell must name a known
// benchmark and processor, and explicit configurations must pass the
// part's BIOS validation. It never panics on arbitrary input (fuzzed by
// FuzzConfigParse).
func DecodeMeasureRequest(r io.Reader) (*MeasureRequest, []cell, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req MeasureRequest
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("service: decode request: %w", err)
	}
	// A second document in the body is as malformed as a bad first one.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, nil, errors.New("service: trailing data after request body")
	}
	switch req.Detail {
	case "", "summary", DetailFull:
	default:
		return nil, nil, fmt.Errorf("service: unknown detail %q (want summary or full)", req.Detail)
	}
	switch req.Lane {
	case "", LaneInteractive, LaneBulk:
	default:
		return nil, nil, fmt.Errorf("service: unknown lane %q (want interactive or bulk)", req.Lane)
	}
	cells, err := resolveCells(req.Cells)
	if err != nil {
		return nil, nil, err
	}
	return &req, cells, nil
}

// resolveCells validates request cells against the fleet and workload.
// Name lookups go through per-request maps built from one workload.All
// and proc.Fleet call: both return fresh mutation-isolated copies, so
// resolving a full 5490-cell study through ByName used to construct
// 61 benchmarks + 8 processors per cell. One request never mutates its
// cells, so sharing the copies within the request is safe.
func resolveCells(reqs []CellRequest) ([]cell, error) {
	if len(reqs) == 0 {
		return nil, errors.New("service: request names no cells")
	}
	if len(reqs) > MaxCells {
		return nil, fmt.Errorf("service: %d cells exceeds the %d-cell request bound", len(reqs), MaxCells)
	}
	benches := workload.All()
	benchByName := make(map[string]*workload.Benchmark, len(benches))
	for _, b := range benches {
		benchByName[b.Name] = b
	}
	fleet := proc.Fleet()
	procByName := make(map[string]*proc.Processor, len(fleet))
	for _, p := range fleet {
		procByName[p.Name] = p
	}
	cells := make([]cell, 0, len(reqs))
	for i, cr := range reqs {
		b, ok := benchByName[cr.Benchmark]
		if !ok {
			return nil, fmt.Errorf("service: cell %d: workload: unknown benchmark %q", i, cr.Benchmark)
		}
		p, ok := procByName[cr.Processor]
		if !ok {
			return nil, fmt.Errorf("service: cell %d: proc: unknown processor %q", i, cr.Processor)
		}
		cfg := p.Stock()
		if cr.Config != nil {
			cfg = proc.Config{
				Cores:    cr.Config.Cores,
				SMTWays:  cr.Config.SMTWays,
				ClockGHz: cr.Config.ClockGHz,
				Turbo:    cr.Config.Turbo,
			}
			if !isFinite(cfg.ClockGHz) {
				return nil, fmt.Errorf("service: cell %d: non-finite clock", i)
			}
			if err := p.Validate(cfg); err != nil {
				return nil, fmt.Errorf("service: cell %d: %w", i, err)
			}
		}
		cells = append(cells, cell{bench: b, cp: proc.ConfiguredProcessor{Proc: p, Config: cfg}})
	}
	return cells, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// cellKey is the cache key of one cell: exactly the determinism
// contract's tuple. The clock is rendered round-trip exact so two
// configurations differing below the display precision cannot collide.
// Rendered with strconv appends — byte-identical to the former
// fmt.Sprintf("m|%d|%s|%s|%d|%d|%.17g|%t", ...) form ('g'/17 is %.17g,
// AppendBool is %t) at one allocation instead of fmt's boxing.
func cellKey(seed int64, c cell) string {
	b := make([]byte, 0, 64)
	b = append(b, 'm', '|')
	b = strconv.AppendInt(b, seed, 10)
	b = append(b, '|')
	b = append(b, c.bench.Name...)
	b = append(b, '|')
	b = append(b, c.cp.Proc.Name...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(c.cp.Config.Cores), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(c.cp.Config.SMTWays), 10)
	b = append(b, '|')
	b = strconv.AppendFloat(b, c.cp.Config.ClockGHz, 'g', 17, 64)
	b = append(b, '|')
	b = strconv.AppendBool(b, c.cp.Config.Turbo)
	return string(b)
}

// configJSON renders a resolved configuration back to the wire form.
func configJSON(cfg proc.Config) ConfigJSON {
	return ConfigJSON{Cores: cfg.Cores, SMTWays: cfg.SMTWays, ClockGHz: cfg.ClockGHz, Turbo: cfg.Turbo}
}

// CountersToJSON converts counters to the wire form.
func CountersToJSON(c counters.Counters) CountersJSON {
	return CountersJSON{
		Cycles:              c.Cycles,
		Instructions:        c.Instructions,
		AppInstructions:     c.AppInstructions,
		ServiceInstructions: c.ServiceInstructions,
		LLCMisses:           c.LLCMisses,
		DTLBMisses:          c.DTLBMisses,
		BranchInstructions:  c.BranchInstructions,
	}
}

// Counters converts the wire form back to counters.
func (c CountersJSON) Counters() counters.Counters {
	return counters.Counters{
		Cycles:              c.Cycles,
		Instructions:        c.Instructions,
		AppInstructions:     c.AppInstructions,
		ServiceInstructions: c.ServiceInstructions,
		LLCMisses:           c.LLCMisses,
		DTLBMisses:          c.DTLBMisses,
		BranchInstructions:  c.BranchInstructions,
	}
}

// CIToJSON converts a confidence interval to the wire form.
func CIToJSON(ci stats.CI) CIJSON {
	return CIJSON{Mean: ci.Mean, Half: ci.Half, Level: ci.Level, N: ci.N}
}

// CI converts the wire form back to a confidence interval.
func (c CIJSON) CI() stats.CI {
	return stats.CI{Mean: c.Mean, Half: c.Half, Level: c.Level, N: c.N}
}
