package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/monitor"
	"repro/internal/proc"
	"repro/internal/slo"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Fill-duration distribution: how long uncached cell computations take
// on this backend, the latency the cache exists to amortize. Exported
// through /metricsz alongside the harness's batch/cell families.
var fillHist = telemetry.Default.Histogram("powerperfd_cell_fill_seconds",
	"Wall time of uncached measurement cell fills (cache misses only).")

// Options configures a Server. The zero value selects sane defaults.
type Options struct {
	// Seed is the daemon's study seed: the default for measure requests,
	// and the seed of the experiments and dataset endpoints. Defaults to
	// 42, the committed dataset's seed.
	Seed int64
	// Workers is the measurement worker count; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the measurement queue; <= 0 selects 1024.
	QueueDepth int
	// CacheCapacity bounds the measurement cache in cells; <= 0 selects
	// 4 full study grids (about 11k cells).
	CacheCapacity int
	// CacheShards sets the measurement cache's shard count; <= 0 selects
	// the default (16). Purely a contention knob — the auto-tuner sweeps
	// it, values never change.
	CacheShards int
	// HarnessCapacity bounds how many per-seed harnesses stay resident;
	// <= 0 selects 4.
	HarnessCapacity int
	// TraceBuffer bounds the tracer's completed-span ring served at
	// /v1/traces; <= 0 selects telemetry.DefaultSpanBuffer.
	TraceBuffer int
	// StreamKeepAlive is the heartbeat cadence of /v1/measure?stream=1
	// responses while no cell is ready; <= 0 selects the 5s default.
	// Tests shorten it to exercise keep-alive handling quickly.
	StreamKeepAlive time.Duration
	// Store, when non-nil, attaches the persistent study store: every
	// completed /v1/measure batch is durably recorded through an async
	// ingest queue, and the /v1/studies query API mounts. The server
	// does not own the store; the caller closes it after Drain returns.
	Store *store.Store
	// SLO, when non-nil, attaches the service-level-objective engine:
	// the observe middleware feeds the stock objectives (see
	// DefaultSLOConfig), burn-rate alerts walk the monitor's detector
	// lifecycle, /v1/sloz mounts, and slo_* gauges join /metricsz. A
	// durability objective with no Source is bound to the study-ingest
	// counters automatically when a store is attached.
	SLO *slo.Config
	// TailSampling, when non-nil, switches the tracer to tail-based
	// sampling: whole traces are kept when any span is slow or errored,
	// probabilistically otherwise. Nil keeps every span (the
	// pre-sampling behavior).
	TailSampling *telemetry.TailPolicy
	// Hooks injects faults and latency into the measurement path for
	// tests; nil in production.
	Hooks *Hooks
}

// Hooks are test seams. BeforeMeasure runs inside the worker pool before
// each uncached cell computation: sleeping there simulates a straggling
// backend, returning an error simulates a failing one. It is never
// called on cache hits, mirroring where real latency and faults live.
type Hooks struct {
	BeforeMeasure func(seed int64, benchmark, processor string) error
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = 4 * 45 * 61
	}
	if o.HarnessCapacity <= 0 {
		o.HarnessCapacity = 4
	}
	return o
}

// Server is the powerperfd core: the measurement cache, the worker pool,
// per-seed harnesses, and the lazily built experiments context. It is
// wired to HTTP by Handler (handlers.go).
type Server struct {
	opts  Options
	cache *Cache
	pool  *workPool

	harnesses *harnessCache

	// tracer retains recent request spans for /v1/traces; logger is the
	// daemon's structured log. Both are always on — the ring is bounded
	// and a span is two clock reads plus a ring slot.
	tracer *telemetry.Tracer
	logger *slog.Logger

	// expOnce builds the experiments context (harness + normalization
	// reference at the daemon seed) on first use; experiments and
	// dataset requests share it the way the paper's analyses share one
	// dataset.
	expOnce sync.Once
	expCtx  *experiments.Context
	expErr  error

	start    time.Time
	draining atomic.Bool

	reqMeasure       atomic.Int64
	reqMeasureStream atomic.Int64
	reqExperiments   atomic.Int64
	reqDataset       atomic.Int64
	reqStudies       atomic.Int64

	// ingest is the async write path into opts.Store; nil when no store
	// is attached.
	ingest *studyIngest

	// mon, when attached, contributes /v1/alertz and /debug/dashboard to
	// the handler — the daemon's own view of the fleet it belongs to.
	mon *monitor.Monitor

	// sloEng, when attached, is fed by the observe middleware and served
	// at /v1/sloz; nil when Options.SLO was not set.
	sloEng *slo.Engine
}

// NewServer builds a server; no measurement work happens until the first
// request.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:      opts,
		cache:     NewCacheShards(opts.CacheCapacity, opts.CacheShards),
		pool:      newWorkPool(opts.Workers, opts.QueueDepth),
		harnesses: newHarnessCache(opts.HarnessCapacity),
		tracer:    telemetry.NewTracer(opts.TraceBuffer),
		logger:    telemetry.Logger("powerperfd"),
		start:     time.Now(),
	}
	if opts.Store != nil {
		s.ingest = newStudyIngest(opts.Store, s.logger)
	}
	if opts.TailSampling != nil {
		s.tracer.SetTailPolicy(opts.TailSampling)
	}
	if opts.SLO != nil {
		cfg := *opts.SLO
		cfg.Objectives = append([]slo.Objective(nil), cfg.Objectives...)
		if cfg.Pinner == nil {
			// Breach exemplars link to traces in this tracer's ring; pin
			// them there so the links outlive ring eviction and
			// tail-sampling drops for as long as their alerts are live.
			cfg.Pinner = s.tracer
		}
		for i := range cfg.Objectives {
			o := &cfg.Objectives[i]
			if o.Kind == slo.KindDurability && o.Source == nil && s.ingest != nil {
				ing := s.ingest
				o.Source = func() (good, total int64) {
					st := ing.stats()
					return st.Recorded, st.Recorded + st.Dropped + st.WriteErrors
				}
			}
		}
		eng, err := slo.New(cfg)
		if err != nil {
			// A bad objective set must not take the serving path down;
			// the daemon runs without SLO tracking and says so.
			s.logger.Error("slo engine disabled", slog.Any("error", err))
		} else {
			s.sloEng = eng
		}
	}
	return s
}

// AttachMonitor hands the server a fleet monitor; the next Handler()
// call mounts GET /v1/alertz (the alert list, JSON) and
// GET /debug/dashboard (the self-contained HTML fleet view). Attach
// before building the handler.
func (s *Server) AttachMonitor(m *monitor.Monitor) { s.mon = m }

// Tracer exposes the server's span recorder (tests inspect it; the
// /v1/traces endpoint serves it).
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// Drain begins graceful shutdown: health goes unhealthy, new API work is
// rejected, queued and in-flight cells run to completion, and only then
// does the study ingest flush and fsync — so a SIGTERM mid-study either
// records the whole study or none of it, never a partial one. It
// returns once the pool is idle and the store is sealed. Safe to call
// more than once.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.pool.Close()
	s.ingest.close()
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// measureCell computes (or serves from cache) one cell under one seed,
// admitting uncached fills through the given worker-pool lane. The
// cache holds the full harness Measurement, so one resident entry
// serves both summary and full-detail requests. Each cell records a
// span annotated with its cache outcome and study seed; uncached fills
// also record a service.queue child covering the time spent waiting
// for a worker lane (critical-path analytics split queue wait from
// kernel compute with it), and feed the fill-duration histogram.
func (s *Server) measureCell(ctx context.Context, seed int64, l lane, c cell) (*harness.Measurement, error) {
	cellCtx, span := s.tracer.StartSpan(ctx, "service.cell",
		telemetry.String("benchmark", c.bench.Name),
		telemetry.String("processor", c.cp.Proc.Name),
		telemetry.String("seed", strconv.FormatInt(seed, 10)))
	v, outcome, err := s.cache.GetOrComputeOutcome(ctx, cellKey(seed, c), func() (any, error) {
		fillStart := time.Now()
		_, qspan := s.tracer.StartSpan(cellCtx, "service.queue")
		v, err := s.pool.DoLane(ctx, l, func() (any, error) {
			// The worker has picked this cell up: queue wait ends here.
			// End is first-call-wins, so the safety net below is a no-op
			// on this path.
			qspan.End()
			if s.opts.Hooks != nil && s.opts.Hooks.BeforeMeasure != nil {
				if err := s.opts.Hooks.BeforeMeasure(seed, c.bench.Name, c.cp.Proc.Name); err != nil {
					return nil, err
				}
			}
			h, err := s.harnesses.get(seed)
			if err != nil {
				return nil, err
			}
			return h.MeasureUncached(c.bench, c.cp)
		})
		// Admission failures (queue full, draining, canceled context)
		// never run the worker fn; close the queue span on their behalf.
		qspan.End()
		fillHist.Observe(time.Since(fillStart))
		return v, err
	})
	span.Annotate(telemetry.String("outcome", outcome.String()))
	if err != nil {
		span.Annotate(telemetry.String("error", err.Error()))
		span.End()
		return nil, err
	}
	span.End()
	return v.(*harness.Measurement), nil
}

// cellResult flattens a measurement into the wire form; full selects the
// reconstruction-grade shape.
func cellResult(c cell, m *harness.Measurement, full bool) *CellResult {
	res := &CellResult{
		Benchmark:  c.bench.Name,
		Processor:  c.cp.Proc.Name,
		Config:     configJSON(c.cp.Config),
		Suite:      string(c.bench.Suite),
		Group:      c.bench.Group.String(),
		Runs:       len(m.Runs),
		Seconds:    m.Seconds,
		Watts:      m.Watts,
		EnergyJ:    m.EnergyJ,
		TimeCIRel:  m.TimeCI.Relative(),
		PowerCIRel: m.PowerCI.Relative(),
	}
	if full {
		d := &CellDetail{
			RunSamples: make([]RunJSON, len(m.Runs)),
			Counters:   CountersToJSON(m.Counters),
			TimeCI:     CIToJSON(m.TimeCI),
			PowerCI:    CIToJSON(m.PowerCI),
		}
		for i, r := range m.Runs {
			d.RunSamples[i] = RunJSON{Seconds: r.Seconds, Watts: r.Watts, Counters: CountersToJSON(r.Counters)}
		}
		res.Full = d
	}
	return res
}

// experimentsContext returns the shared daemon-seed experiments context,
// building it (rig calibration plus the 61x4 normalization reference) on
// first use.
func (s *Server) experimentsContext() (*experiments.Context, error) {
	s.expOnce.Do(func() {
		s.expCtx, s.expErr = experiments.NewContext(s.opts.Seed)
	})
	return s.expCtx, s.expErr
}

// Stats is the /statsz payload.
type Stats struct {
	Seed     int64           `json:"seed"`
	UptimeS  float64         `json:"uptime_s"`
	Build    telemetry.Build `json:"build"`
	Draining bool            `json:"draining"`
	Cache    CacheStats      `json:"cache"`
	HitRate  float64         `json:"cache_hit_rate"`
	Queue    QueueStats      `json:"queue"`
	Requests ReqStats        `json:"requests"`
	// Store reports the persistent study store; omitted when the daemon
	// runs without one.
	Store *StoreStats `json:"store,omitempty"`
}

// QueueStats reports worker-pool pressure, split by priority lane so an
// operator can see bulk study traffic queueing behind interactive work
// (never the reverse — interactive preempts at dequeue).
type QueueStats struct {
	Depth            int   `json:"depth"`
	InteractiveDepth int   `json:"interactive_depth"`
	BulkDepth        int   `json:"bulk_depth"`
	Capacity         int   `json:"capacity"`
	Inflight         int64 `json:"inflight_workers"`
	Workers          int   `json:"workers"`
}

// ReqStats counts requests per endpoint family. MeasureStreams counts
// the subset of measure requests served over chunked NDJSON.
type ReqStats struct {
	Measure        int64 `json:"measure"`
	MeasureStreams int64 `json:"measure_streams"`
	Experiments    int64 `json:"experiments"`
	Dataset        int64 `json:"dataset"`
	Studies        int64 `json:"studies"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	cs := s.cache.Stats()
	return Stats{
		Seed:     s.opts.Seed,
		UptimeS:  time.Since(s.start).Seconds(),
		Build:    telemetry.BuildInfo(),
		Draining: s.draining.Load(),
		Cache:    cs,
		HitRate:  cs.HitRate(),
		Queue: QueueStats{
			Depth:            s.pool.QueueDepth(),
			InteractiveDepth: s.pool.LaneDepth(laneInteractive),
			BulkDepth:        s.pool.LaneDepth(laneBulk),
			Capacity:         s.opts.QueueDepth,
			Inflight:         s.pool.Inflight(),
			Workers:          s.pool.workers,
		},
		Requests: ReqStats{
			Measure:        s.reqMeasure.Load(),
			MeasureStreams: s.reqMeasureStream.Load(),
			Experiments:    s.reqExperiments.Load(),
			Dataset:        s.reqDataset.Load(),
			Studies:        s.reqStudies.Load(),
		},
		Store: s.ingest.stats(),
	}
}

// harnessCache is a small LRU of per-seed harnesses. Building a harness
// calibrates the whole sensor rig, so residents are worth keeping, but
// seeds arrive from requests and must not accumulate without bound.
type harnessCache struct {
	mu  sync.Mutex
	cap int
	ent map[int64]*list.Element
	lru list.List // values are *harnessEntry
}

type harnessEntry struct {
	seed int64
	once sync.Once
	h    *harness.Harness
	err  error
}

func newHarnessCache(capacity int) *harnessCache {
	return &harnessCache{cap: capacity, ent: make(map[int64]*list.Element)}
}

func (hc *harnessCache) get(seed int64) (*harness.Harness, error) {
	hc.mu.Lock()
	el, ok := hc.ent[seed]
	if ok {
		hc.lru.MoveToFront(el)
	} else {
		el = hc.lru.PushFront(&harnessEntry{seed: seed})
		hc.ent[seed] = el
		for hc.lru.Len() > hc.cap {
			tail := hc.lru.Back()
			delete(hc.ent, tail.Value.(*harnessEntry).seed)
			hc.lru.Remove(tail)
		}
	}
	e := el.Value.(*harnessEntry)
	hc.mu.Unlock()
	// Calibration happens outside the lock; Once arbitrates concurrent
	// first users of a seed.
	e.once.Do(func() { e.h, e.err = harness.New(e.seed) })
	if e.err != nil {
		return nil, fmt.Errorf("service: harness for seed %d: %w", e.seed, e.err)
	}
	return e.h, nil
}

// Guard: the stock config space and workload must stay consistent with
// MaxCells (two full grids); a drift here would silently shrink the
// request bound.
var _ = func() struct{} {
	if MaxCells < len(proc.ConfigSpace())*len(workload.All()) {
		panic("service: MaxCells below one full study grid")
	}
	return struct{}{}
}()

// errNotFound marks unknown experiment ids for a 404 rather than 500.
var errNotFound = errors.New("service: not found")
