package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/workload"
)

// sharedSrv amortizes one daemon (and its measurement cache) across the
// package's endpoint tests, the way a real powerperfd amortizes across
// requests. Tests that need fresh counters build their own Server.
var (
	sharedOnce sync.Once
	sharedSrv  *Server
	sharedHTTP *httptest.Server
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sharedOnce.Do(func() {
		sharedSrv = NewServer(Options{Seed: 42})
		sharedHTTP = httptest.NewServer(sharedSrv.Handler())
	})
	return sharedSrv, sharedHTTP
}

func postMeasure(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/measure", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func statsOf(t *testing.T, url string) Stats {
	t.Helper()
	code, b := get(t, url+"/statsz")
	if code != http.StatusOK {
		t.Fatalf("statsz: %d %s", code, b)
	}
	var st Stats
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

const twoCellBody = `{"cells":[
	{"benchmark":"mcf","processor":"i7 (45)"},
	{"benchmark":"jess","processor":"i5 (32)","config":{"cores":2,"smt":2,"clock_ghz":1.2,"turbo":false}}
]}`

// TestMeasureRepeatServedFromCache pins the acceptance criterion: a
// repeated POST /v1/measure for the same cells is served from cache (no
// recomputation, observed via the statsz miss counter) and is
// byte-identical to the first response.
func TestMeasureRepeatServedFromCache(t *testing.T) {
	srv := NewServer(Options{Seed: 42, Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	code, first := postMeasure(t, ts.URL, twoCellBody)
	if code != http.StatusOK {
		t.Fatalf("first POST: %d %s", code, first)
	}
	st1 := statsOf(t, ts.URL)
	if st1.Cache.Misses != 2 || st1.Cache.Hits != 0 {
		t.Fatalf("after first POST: %+v", st1.Cache)
	}

	code, second := postMeasure(t, ts.URL, twoCellBody)
	if code != http.StatusOK {
		t.Fatalf("second POST: %d %s", code, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("repeat response differs:\n%s\nvs\n%s", first, second)
	}
	st2 := statsOf(t, ts.URL)
	if st2.Cache.Misses != 2 {
		t.Fatalf("repeat recomputed: misses %d -> %d", st1.Cache.Misses, st2.Cache.Misses)
	}
	if st2.Cache.Hits != 2 {
		t.Fatalf("repeat not served from cache: hits = %d, want 2", st2.Cache.Hits)
	}
	if st2.HitRate <= 0 {
		t.Fatalf("hit rate %v, want > 0", st2.HitRate)
	}
}

// TestTwoServersBitIdentical is the service half of the determinism
// property: two independent daemons (separate rigs, separate caches)
// filling their caches for the same cells serve byte-identical bodies.
func TestTwoServersBitIdentical(t *testing.T) {
	var bodies [2][]byte
	for i := range bodies {
		srv := NewServer(Options{Seed: 42, Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		code, b := postMeasure(t, ts.URL, twoCellBody)
		if code != http.StatusOK {
			t.Fatalf("server %d: %d %s", i, code, b)
		}
		bodies[i] = b
		ts.Close()
		srv.Drain()
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("independent cache fills differ:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
}

// TestMeasureMatchesHarness cross-checks the service path against a
// direct harness measurement at the same seed: the wire numbers are the
// measurement's numbers, bit-identical through JSON round-trip.
func TestMeasureMatchesHarness(t *testing.T) {
	_, ts := testServer(t)
	body := `{"seed":7,"cells":[{"benchmark":"vips","processor":"Atom (45)"}]}`
	code, b := postMeasure(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("%d %s", code, b)
	}
	var resp MeasureResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seed != 7 || len(resp.Cells) != 1 {
		t.Fatalf("response %+v", resp)
	}

	h, err := harness.New(7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := proc.ByName("Atom (45)")
	if err != nil {
		t.Fatal(err)
	}
	bench, err := workload.ByName("vips")
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Measure(bench, proc.ConfiguredProcessor{Proc: p, Config: p.Stock()})
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Cells[0]
	if got.Seconds != m.Seconds || got.Watts != m.Watts || got.EnergyJ != m.EnergyJ {
		t.Fatalf("service %v/%v/%v vs harness %v/%v/%v",
			got.Seconds, got.Watts, got.EnergyJ, m.Seconds, m.Watts, m.EnergyJ)
	}
	if got.Runs != len(m.Runs) || got.TimeCIRel != m.TimeCI.Relative() || got.PowerCIRel != m.PowerCI.Relative() {
		t.Fatalf("wire metadata mismatch: %+v", got)
	}
}

// TestConcurrentLoadOverlappingKeys is the race-lane acceptance test: 32
// goroutines hammer one daemon with overlapping keys; every identical
// request must observe a byte-identical body, the singleflight path must
// coalesce concurrent fills, and /statsz must report a positive hit rate
// afterwards.
func TestConcurrentLoadOverlappingKeys(t *testing.T) {
	srv := NewServer(Options{Seed: 42, Workers: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	// Four distinct bodies over a pool of cells; 32 goroutines x 3
	// rounds means every body is requested ~24 times concurrently.
	cells := []string{
		`{"benchmark":"jess","processor":"i5 (32)"}`,
		`{"benchmark":"db","processor":"AtomD (45)"}`,
		`{"benchmark":"vips","processor":"Core2Q (65)"}`,
		`{"benchmark":"pmd","processor":"Core2D (45)"}`,
		`{"benchmark":"lusearch","processor":"i7 (45)"}`,
	}
	bodies := make([]string, 4)
	for i := range bodies {
		// Overlapping subsets: body i holds cells i and i+1.
		bodies[i] = fmt.Sprintf(`{"cells":[%s,%s]}`, cells[i], cells[i+1])
	}

	const goroutines = 32
	const rounds = 3
	got := make([][rounds][]byte, goroutines)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := http.Post(ts.URL+"/v1/measure", "application/json",
					strings.NewReader(bodies[(g+r)%len(bodies)]))
				if err != nil {
					errs <- err
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d round %d: %d %s", g, r, resp.StatusCode, b)
					return
				}
				got[g][r] = b
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Same body index -> byte-identical response, across all goroutines
	// and rounds.
	want := make(map[int][]byte)
	for g := 0; g < goroutines; g++ {
		for r := 0; r < rounds; r++ {
			idx := (g + r) % len(bodies)
			if want[idx] == nil {
				want[idx] = got[g][r]
				continue
			}
			if !bytes.Equal(got[g][r], want[idx]) {
				t.Fatalf("goroutine %d round %d: body %d diverged", g, r, idx)
			}
		}
	}

	st := statsOf(t, ts.URL)
	if st.HitRate <= 0 {
		t.Fatalf("hit rate %v after concurrent load, want > 0", st.HitRate)
	}
	// 5 distinct cells total; everything else must have been coalesced
	// or served from cache.
	if st.Cache.Misses != 5 {
		t.Fatalf("%d fills for 5 distinct cells", st.Cache.Misses)
	}
}

func TestMeasureValidation(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"cells":`},
		{"unknown field", `{"cellz":[]}`},
		{"no cells", `{"cells":[]}`},
		{"unknown benchmark", `{"cells":[{"benchmark":"nope","processor":"i7 (45)"}]}`},
		{"unknown processor", `{"cells":[{"benchmark":"mcf","processor":"i9 (7)"}]}`},
		{"invalid config", `{"cells":[{"benchmark":"mcf","processor":"i7 (45)","config":{"cores":9,"smt":1,"clock_ghz":2.67,"turbo":false}}]}`},
		{"turbo below max clock", `{"cells":[{"benchmark":"mcf","processor":"i7 (45)","config":{"cores":4,"smt":2,"clock_ghz":1.6,"turbo":true}}]}`},
		{"trailing garbage", `{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]} {"again":true}`},
	}
	for _, tc := range cases {
		code, b := postMeasure(t, ts.URL, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, code, b)
		}
		var eb errorBody
		if err := json.Unmarshal(b, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q not JSON", tc.name, b)
		}
	}

	// Cell-count bound.
	var sb strings.Builder
	sb.WriteString(`{"cells":[`)
	for i := 0; i <= MaxCells; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"benchmark":"mcf","processor":"i7 (45)"}`)
	}
	sb.WriteString(`]}`)
	if code, _ := postMeasure(t, ts.URL, sb.String()); code != http.StatusBadRequest {
		t.Errorf("oversized request: status %d, want 400", code)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	_, ts := testServer(t)

	code, b := get(t, ts.URL+"/v1/experiments")
	if code != http.StatusOK {
		t.Fatalf("index: %d %s", code, b)
	}
	var idx struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.Unmarshal(b, &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Experiments) != len(experimentRegistry) {
		t.Fatalf("index lists %d ids, registry has %d", len(idx.Experiments), len(experimentRegistry))
	}

	if code, b := get(t, ts.URL+"/v1/experiments/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d %s", code, b)
	}

	// table3 is static specification data; table2 measures through the
	// shared context. Both must be valid JSON and stable across fetches.
	for _, id := range []string{"table3", "table2"} {
		code, first := get(t, ts.URL+"/v1/experiments/"+id)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %s", id, code, first)
		}
		var doc struct {
			ID     string          `json:"id"`
			Seed   int64           `json:"seed"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(first, &doc); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if doc.ID != id || doc.Seed != 42 || len(doc.Result) == 0 {
			t.Fatalf("%s: doc %+v", id, doc)
		}
		_, second := get(t, ts.URL+"/v1/experiments/"+id)
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: repeated fetch differs", id)
		}
	}
}

// TestDatasetEndpointMatchesCommittedDataset pins the acceptance
// criterion: the dataset regenerated through the service path is
// byte-identical to the committed seed-42 companion files.
func TestDatasetEndpointMatchesCommittedDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("full 45x61 grid in -short mode")
	}
	_, ts := testServer(t)
	for table, file := range map[string]string{
		"measurements": "measurements.csv",
		"aggregates":   "aggregates.csv",
	} {
		code, got := get(t, ts.URL+"/v1/dataset?table="+table)
		if code != http.StatusOK {
			t.Fatalf("%s: %d", table, code)
		}
		want, err := os.ReadFile(filepath.Join("..", "..", "dataset", file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: service bytes differ from committed dataset/%s (%d vs %d bytes)",
				table, file, len(got), len(want))
		}
	}
	if code, _ := get(t, ts.URL+"/v1/dataset?table=nope"); code != http.StatusBadRequest {
		t.Fatalf("unknown table accepted: %d", code)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	srv := NewServer(Options{Seed: 42, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", code)
	}
	code, b := postMeasure(t, ts.URL, `{"cells":[{"benchmark":"jess","processor":"i5 (32)"}]}`)
	if code != http.StatusOK {
		t.Fatalf("measure before drain: %d %s", code, b)
	}

	srv.Drain()
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", code)
	}
	if code, _ = postMeasure(t, ts.URL, `{"cells":[{"benchmark":"jess","processor":"i5 (32)"}]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("measure while draining: %d, want 503", code)
	}
	if code, _ := get(t, ts.URL+"/v1/experiments/table3"); code != http.StatusServiceUnavailable {
		t.Fatalf("experiment while draining: %d, want 503", code)
	}
	if code, _ := get(t, ts.URL+"/v1/dataset"); code != http.StatusServiceUnavailable {
		t.Fatalf("dataset while draining: %d, want 503", code)
	}
	// statsz stays observable for post-mortem.
	st := statsOf(t, ts.URL)
	if !st.Draining {
		t.Fatal("statsz does not report draining")
	}
}

// TestHarnessCacheEviction exercises the per-seed harness LRU: more
// distinct seeds than capacity must still serve correct results.
func TestHarnessCacheEviction(t *testing.T) {
	hc := newHarnessCache(2)
	for _, seed := range []int64{1, 2, 3, 1, 2} {
		h, err := hc.get(seed)
		if err != nil {
			t.Fatal(err)
		}
		if h == nil {
			t.Fatalf("seed %d: nil harness", seed)
		}
	}
	if n := hc.lru.Len(); n != 2 {
		t.Fatalf("%d harnesses resident, capacity 2", n)
	}
}

// TestMeasureFullDetail verifies the reconstruction-grade response
// shape: detail=full carries every run sample, the mean counters, and
// both confidence intervals, while the default shape stays unchanged
// (no "full" key on the wire).
func TestMeasureFullDetail(t *testing.T) {
	_, ts := testServer(t)

	code, body := postMeasure(t, ts.URL, `{"detail":"full","cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`)
	if code != http.StatusOK {
		t.Fatalf("full-detail POST: %d %s", code, body)
	}
	var resp MeasureResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	cell := resp.Cells[0]
	if cell.Full == nil {
		t.Fatal("detail=full response lacks the full block")
	}
	if len(cell.Full.RunSamples) != cell.Runs || cell.Runs == 0 {
		t.Fatalf("full detail has %d run samples, summary says %d runs", len(cell.Full.RunSamples), cell.Runs)
	}
	if cell.Full.TimeCI.N != cell.Runs || cell.Full.TimeCI.Level != 0.95 {
		t.Fatalf("time CI %+v inconsistent with %d runs", cell.Full.TimeCI, cell.Runs)
	}
	if cell.Full.Counters.Instructions <= 0 {
		t.Fatalf("full detail counters empty: %+v", cell.Full.Counters)
	}

	code, body = postMeasure(t, ts.URL, `{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`)
	if code != http.StatusOK {
		t.Fatalf("summary POST: %d %s", code, body)
	}
	if bytes.Contains(body, []byte(`"full"`)) {
		t.Fatalf("summary response leaks the full block: %s", body)
	}

	if code, body := postMeasure(t, ts.URL, `{"detail":"nope","cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`); code != http.StatusBadRequest {
		t.Fatalf("bad detail: %d %s, want 400", code, body)
	}
}

// TestMetricsz verifies the Prometheus exposition endpoint serves the
// cache, shard, queue, and request families with parseable lines.
func TestMetricsz(t *testing.T) {
	_, ts := testServer(t)
	// Ensure at least one measured cell so counters are nonzero.
	if code, b := postMeasure(t, ts.URL, `{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`); code != http.StatusOK {
		t.Fatalf("measure: %d %s", code, b)
	}

	code, body := get(t, ts.URL+"/metricsz")
	if code != http.StatusOK {
		t.Fatalf("metricsz: %d", code)
	}
	text := string(body)
	for _, family := range []string{
		"powerperfd_uptime_seconds",
		"powerperfd_cache_hits_total",
		"powerperfd_cache_misses_total",
		"powerperfd_cache_coalesced_total",
		"powerperfd_cache_shard_entries{shard=\"0\"}",
		"powerperfd_cache_shard_entries{shard=\"15\"}",
		"powerperfd_queue_depth",
		"powerperfd_requests_total{endpoint=\"measure\"}",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metricsz missing %s", family)
		}
	}
	// Spot-check a value: the shard entries must sum to the statsz
	// entry count.
	st := statsOf(t, ts.URL)
	sum := 0
	for _, n := range st.Cache.Shards {
		sum += n
	}
	if len(st.Cache.Shards) != 16 || sum != st.Cache.Entries {
		t.Errorf("statsz shard occupancy %v (sum %d) inconsistent with %d entries",
			st.Cache.Shards, sum, st.Cache.Entries)
	}
}

// TestHooksInjectFaults verifies the test seam: a hook error surfaces
// as a 500 and is not cached, so the next request recomputes cleanly.
func TestHooksInjectFaults(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	srv := NewServer(Options{Seed: 42, Workers: 2, Hooks: &Hooks{
		BeforeMeasure: func(seed int64, bench, processor string) error {
			if fail.Load() {
				return fmt.Errorf("injected fault for %s on %s", bench, processor)
			}
			return nil
		},
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	body := `{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`
	if code, b := postMeasure(t, ts.URL, body); code != http.StatusInternalServerError {
		t.Fatalf("faulted measure: %d %s, want 500", code, b)
	}
	fail.Store(false)
	if code, b := postMeasure(t, ts.URL, body); code != http.StatusOK {
		t.Fatalf("post-fault measure: %d %s, want 200 (errors must not be cached)", code, b)
	}
}
